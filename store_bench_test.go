package repro_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/workload"

	_ "repro/internal/workload/apps" // register grid
)

// ---------------------------------------------------------------------------
// Checkpoint-store tier benchmarks. With -benchdir they leave
// BENCH_store.json: bytes-at-rest rows for the plain and compressed
// directory backends on the same grid delta run (CI gates compressed <
// plain), and storm put-wait percentiles from the FIFO gate's registry
// histogram.
//
//	go test -bench Store -benchtime 1x -benchdir . .

// dirBytes sums the sizes of every file in dir — what the backend
// actually holds at rest.
func dirBytes(b *testing.B, dir string) int64 {
	b.Helper()
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return total
}

// benchStoreAtRest runs the grid workload in delta mode against a
// directory-backed store and measures the bytes left at rest.
func benchStoreAtRest(b *testing.B, scheme string) {
	w, err := workload.Get("grid")
	if err != nil {
		b.Fatal(err)
	}
	p := benchWorkloadParams("grid")
	p.Ckpt = "delta"
	p, err = workload.Normalize(w, p)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Program(p)
	if err != nil {
		b.Fatal(err)
	}
	var atRest, ckpts uint64
	var mem memProbe
	b.ReportAllocs()
	b.ResetTimer()
	mem.start()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir() // fresh backend per op: at-rest bytes are per run
		b.StartTimer()
		st, err := store.Open(scheme+":"+dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.Run(w, p, workload.RunConfig{
			Timeout: 2 * time.Minute, Program: prog, Store: st,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Verify(p, res.Nodes); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		atRest += uint64(dirBytes(b, dir))
		ckpts += res.Ckpt.Checkpoints
		b.StartTimer()
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(b.N)
	b.ReportMetric(float64(atRest)/float64(b.N), "at-rest-B/op")
	rec := BenchRecord{
		App:              "store",
		Name:             b.Name(),
		Engine:           "vm",
		Iterations:       b.N,
		NsPerOp:          float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:      allocs,
		BytesPerOp:       bytes,
		Nodes:            p.Nodes,
		Size:             p.Size,
		Aux:              p.Aux,
		Steps:            p.Steps,
		CkInterval:       p.CheckpointInterval,
		Workers:          p.Workers,
		CkptMode:         "delta",
		CkptPerOp:        float64(ckpts) / float64(b.N),
		StoreSpec:        scheme,
		StoreBytesAtRest: float64(atRest) / float64(b.N),
	}
	if ckpts > 0 {
		rec.StoreBytesPerCkpt = float64(atRest) / float64(ckpts)
	}
	recordBench(rec)
}

// BenchmarkStoreAtRest compares what the plain and compressed directory
// backends leave on disk for the identical grid delta run. CI gates
// the compressed row strictly below the plain one.
func BenchmarkStoreAtRest(b *testing.B) {
	b.Run("plain", func(b *testing.B) { benchStoreAtRest(b, "dir") })
	b.Run("compressed", func(b *testing.B) { benchStoreAtRest(b, "zdir") })
}

// BenchmarkStoreStorm drives checkpoint storms — many concurrent
// writers, one FIFO admission gate, a directory backend doing real file
// I/O — and records the put-wait percentiles the gate's registry
// histogram observed. One op is one whole storm (stormPuts puts), so
// even a -benchtime 1x CI smoke run produces real contention and
// meaningful percentiles. The backend must actually block (the dir
// store's write + rename + parent fsync): against an in-memory store a
// single-core scheduler serializes the writers and the gate never
// queues.
func BenchmarkStoreStorm(b *testing.B) {
	const (
		writers   = 32
		gateLimit = 4
		stormPuts = 256
	)
	reg := obs.NewRegistry()
	st, err := store.Open("dir:"+b.TempDir(), store.Options{Registry: reg, GateLimit: gateLimit})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i / 997)
	}
	var mem memProbe
	b.ReportAllocs()
	b.ResetTimer()
	mem.start()
	var errCount atomic.Int64
	for i := 0; i < b.N; i++ {
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for {
					k := next.Add(1) - 1
					if k >= stormPuts {
						return
					}
					if err := st.Put(fmt.Sprintf("storm-%d-%d@%d", i, g, k), payload); err != nil {
						b.Error(err)
						errCount.Add(1)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
	b.StopTimer()
	if errCount.Load() > 0 {
		b.Fatal("storm puts failed")
	}
	allocs, bytes := mem.perOp(b.N)
	sum := reg.Histogram("store.gate.wait_ns").Summary()
	if sum.Count == 0 {
		b.Fatal("gate histogram recorded nothing: the storm never hit the gate")
	}
	b.ReportMetric(float64(sum.P95), "p95-wait-ns")
	recordBench(BenchRecord{
		App:               "store",
		Name:              b.Name(),
		Engine:            "none",
		Iterations:        b.N,
		NsPerOp:           float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:       allocs,
		BytesPerOp:        bytes,
		Workers:           writers,
		StoreSpec:         fmt.Sprintf("dir+gate:%d", gateLimit),
		StorePutWaitP50Ns: float64(sum.P50),
		StorePutWaitP95Ns: float64(sum.P95),
		StorePutWaitP99Ns: float64(sum.P99),
	})
}
