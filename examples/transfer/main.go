// Transfer reproduces Figure 1: an atomic funds transfer between two
// account objects over operations that may fail. The speculative version
// needs no hand-written undo code — when any step fails, abort() rolls the
// whole transfer back, and the error-recovery path is cleanly separated
// from the transfer logic.
//
// The account objects live in the speculative heap (the paper's MojaveFS
// future work extends the same guarantee to file I/O). Failures are
// injected from the host as a flaky io_ok() device signal that rejects
// every third operation. The program itself verifies the invariant the
// traditional version of Figure 1 struggles with: the total balance is
// conserved no matter where a failure lands.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
)

const src = `
// Swap the balances of obj1 and obj2, k words each, atomically. Each
// read/write consults the flaky device; any failure aborts the
// speculation, undoing every partial write.
int transfer(ptr obj1, ptr obj2, int k) {
	ptr buf1 = alloc(k);
	ptr buf2 = alloc(k);
	int specid = speculate();
	if (specid > 0) {
		for (int i = 0; i < k; i += 1) {          // read obj1
			if (io_ok() == 0) { abort(specid); }
			buf1[i] = obj1[i];
		}
		for (int i = 0; i < k; i += 1) {          // read obj2
			if (io_ok() == 0) { abort(specid); }
			buf2[i] = obj2[i];
		}
		for (int i = 0; i < k; i += 1) {          // write obj1
			if (io_ok() == 0) { abort(specid); }  // may fail MID-SWAP
			obj1[i] = buf2[i];
		}
		for (int i = 0; i < k; i += 1) {          // write obj2
			if (io_ok() == 0) { abort(specid); }
			obj2[i] = buf1[i];
		}
		commit(specid); // Speculation committed
		return 1;
	}
	// Speculation aborted: state as if the transfer never started.
	return 0;
}

int main() {
	int k = 4;
	ptr a = alloc(k);
	ptr b = alloc(k);
	a[0] = 100; a[1] = 11; a[2] = 12; a[3] = 13;
	b[0] = 50;  b[1] = 21; b[2] = 22; b[3] = 23;
	int total = a[0] + b[0];

	int attempts = getarg(0);
	int committed = 0;
	for (int t = 0; t < attempts; t += 1) {
		committed += transfer(a, b, k);
		if (a[0] + b[0] != total) {
			print_str("CONSERVATION VIOLATED");
			return -1;
		}
	}
	print_str("balances after all attempts:");
	print_int(a[0]);
	print_int(b[0]);
	return committed;
}
`

func main() {
	prog, err := core.Compile(src, map[string]fir.ExternSig{
		"io_ok": {Result: fir.TyInt},
	})
	if err != nil {
		fatal(err)
	}

	const attempts = 10
	ops, failures := 0, 0
	p, err := core.NewProcess(prog, core.ProcessConfig{
		Stdout: os.Stdout, Fuel: 10_000_000, Args: []int64{attempts},
	})
	if err != nil {
		fatal(err)
	}
	// The flaky device: every 23rd operation fails, landing failures at
	// varying positions inside the swap (including mid-write).
	p.RegisterExtern("io_ok", fir.ExternSig{Result: fir.TyInt},
		func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
			ops++
			if ops%23 == 0 {
				failures++
				return heap.IntVal(0), nil
			}
			return heap.IntVal(1), nil
		})

	if err := p.Start(); err != nil {
		fatal(err)
	}
	st, err := p.Run()
	if st != rt.StatusHalted {
		fatal(fmt.Errorf("process %s: %v", st, err))
	}
	if p.HaltCode() < 0 {
		fatal(fmt.Errorf("the program observed a conservation violation"))
	}
	fmt.Printf("attempts: %d, committed: %d, injected failures: %d (of %d device ops)\n",
		attempts, p.HaltCode(), failures, ops)
	if failures == 0 || p.HaltCode() == attempts {
		fatal(fmt.Errorf("no failures were injected; the demonstration is vacuous"))
	}
	fmt.Println("transfer: every aborted transfer rolled back cleanly; total balance conserved")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "transfer:", err)
	os.Exit(1)
}
