// Quickstart: compile a MojC program that uses the speculation primitives
// and run it on both runtime backends through the public core API.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

const src = `
// Sum the squares 1..n speculatively: enter a speculation, do the work,
// and commit. If anything inside had trapped or aborted, the heap would
// roll back to the state at speculate().
int sumsq(int n) {
	ptr acc = alloc(1);
	int specid = speculate();
	if (specid > 0) {
		for (int i = 1; i <= n; i += 1) {
			acc[0] += i * i;
		}
		commit(specid);
		return acc[0];
	}
	return -1;
}

int main() {
	int r = sumsq(10);
	print_str("speculative sum of squares 1..10:");
	print_int(r);
	return r;
}
`

func main() {
	prog, err := core.Compile(src, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	for _, b := range []struct {
		name    string
		backend core.Backend
	}{
		{"interpreter", core.BackendVM},
		{"risc simulator", core.BackendRISC},
	} {
		p, err := core.NewProcess(prog, core.ProcessConfig{
			Backend: b.backend, Stdout: os.Stdout, Fuel: 1_000_000,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := p.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, err := p.Run()
		fmt.Printf("[%s] status=%s halt=%d err=%v\n", b.name, st, p.HaltCode(), err)
		if p.HaltCode() != 385 {
			fmt.Fprintln(os.Stderr, "unexpected result")
			os.Exit(1)
		}
	}
}
