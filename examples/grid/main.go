// Grid runs the paper's Figure 2 application end to end: a MojC grid
// computation compiled by the MCC frontend, executing on a simulated
// cluster of three nodes with border exchange, per-interval commits and
// checkpoints — then kills a node mid-run, resurrects it from its
// checkpoint, and shows the final answer is bit-identical to the
// failure-free sequential reference.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/grid"
)

func main() {
	p := grid.Params{
		Nodes: 3, RowsPerNode: 4, Cols: 8,
		Steps: 20, CheckpointInterval: 4,
	}

	fmt.Println("== failure-free run ==")
	clean, err := grid.Run(p, nil, 2*time.Minute)
	if err != nil {
		fatal(err)
	}
	report(p, clean)

	fmt.Println("== run with node 1 killed after its 2nd checkpoint ==")
	fail := &grid.FailurePlan{Node: 1, AfterCheckpoints: 2, RestartDelay: 25 * time.Millisecond}
	faulty, err := grid.Run(p, fail, 2*time.Minute)
	if err != nil {
		fatal(err)
	}
	report(p, faulty)
	fmt.Printf("   (survivor rollbacks: %d, resurrections: %d)\n",
		faulty.Rollbacks, faulty.Resurrections)

	for n := range clean.Checksums {
		if clean.Checksums[n] != faulty.Checksums[n] {
			fatal(fmt.Errorf("node %d: failure changed the answer (%d vs %d)",
				n, faulty.Checksums[n], clean.Checksums[n]))
		}
	}
	fmt.Println("grid: the failure was fully masked — identical results")
}

func report(p grid.Params, r *grid.Result) {
	want := grid.Reference(p)
	for n, got := range r.Checksums {
		status := "ok"
		if got != want[n] {
			status = "MISMATCH"
		}
		fmt.Printf("   node %d: checksum %d (reference %d) %s\n", n, got, want[n], status)
	}
	fmt.Printf("   elapsed: %s\n", r.Elapsed.Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grid:", err)
	os.Exit(1)
}
