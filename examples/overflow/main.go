// Overflow demonstrates §2's Rx-style bug survival: a program with an
// unchecked buffer overflow is instrumented with a speculation around the
// allocation. When the overflow trips the runtime bounds check, the
// process — instead of crashing — rolls back to where the allocation
// occurred and takes a different execution path that allocates more
// memory and retries.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/rt"
)

const src = `
// fill writes n values through buf. If buf is too small, the store traps:
// with speculation trapping enabled, the innermost speculation rolls back
// instead of the process dying.
void fill(ptr buf, int n) {
	for (int i = 0; i < n; i += 1) {
		buf[i] = i * 3;
	}
}

int main() {
	int need = getarg(0);      // how many items the input "really" has
	int capacity = 4;          // the buggy guess
	int specid = speculate();
	// After a trap-triggered rollback, speculate() yields -2 (the trap
	// status, negated); grow the buffer and retry on a fresh speculation.
	while (specid < 0) {
		capacity = capacity * 2;
		print_str("overflow detected; retrying with larger buffer:");
		print_int(capacity);
		specid = speculate();
	}
	ptr buf = alloc(capacity);
	fill(buf, need);           // may overflow and roll back
	commit(specid);
	int sum = 0;
	for (int i = 0; i < need; i += 1) {
		sum += buf[i];
	}
	return sum;
}
`

func main() {
	const need = 25 // needs capacity 32: two doublings from 4
	prog, err := core.Compile(src, nil)
	if err != nil {
		fatal(err)
	}
	p, err := core.NewProcess(prog, core.ProcessConfig{
		Stdout:          os.Stdout,
		Fuel:            10_000_000,
		Args:            []int64{need},
		TrapSpeculation: true, // the §2 instrumentation
	})
	if err != nil {
		fatal(err)
	}
	if err := p.Start(); err != nil {
		fatal(err)
	}
	st, err := p.Run()
	if st != rt.StatusHalted {
		fatal(fmt.Errorf("process %s: %v", st, err))
	}
	want := int64(0)
	for i := int64(0); i < need; i++ {
		want += i * 3
	}
	fmt.Printf("overflow: survived the bug; sum = %d (want %d)\n", p.HaltCode(), want)
	if p.HaltCode() != want {
		fatal(fmt.Errorf("wrong result after recovery"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overflow:", err)
	os.Exit(1)
}
