package workload

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/fir"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/rt"
)

// Result summarizes one cluster run of a workload, on either execution
// path (in-process engine or distributed transport).
type Result struct {
	// Nodes holds every node's final disposition (including migrated-away
	// source nodes; the workload's Verify knows which must have halted).
	Nodes map[int64]NodeResult
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Rollbacks is the number of MSG_ROLL deliveries (survivor rollbacks).
	Rollbacks uint64
	// Resurrections counts checkpoint restores performed by the fault
	// script.
	Resurrections int
	// Ckpt holds the checkpoint pipeline counters (bytes written, pause,
	// recovery time). Only the in-process runner fills it: distributed
	// workers keep their own committers.
	Ckpt ckpt.Stats
}

// RunConfig tunes a run beyond the workload parameters.
type RunConfig struct {
	// Script, when set, is the fault scenario to drive the run through.
	Script *FaultScript
	// Timeout bounds the run (default 2m).
	Timeout time.Duration
	// Stdout receives process output (default: discard).
	Stdout io.Writer
	// Program, when set, overrides w.Program(p) — benchmarks compile once
	// and reuse.
	Program *fir.Program
	// Quantum overrides the engine's kill-check granularity in steps.
	// Zero picks the engine default for failure-free runs and a small
	// quantum (500) when a fault script is present — without it, a small
	// program can halt cleanly inside the quantum the kill was posted in,
	// and the "failure" would miss its victim.
	Quantum uint64
	// Store, when set, backs the run's checkpoints instead of a private
	// MemStore. A multi-tenant server hands every run a namespaced view
	// of one shared store.
	Store migrate.Store
	// Slots, when set, is a shared worker semaphore (see
	// cluster.EngineConfig.Slots): concurrent runs draw their quanta from
	// one bounded machine-wide pool. Overrides Params.Workers.
	Slots chan struct{}
	// Trace, when set, records the run's lifecycle events (see
	// cluster.EngineConfig.Trace). Nil keeps every event site a
	// predictable nop.
	Trace *obs.Tracer
	// Metrics, when set, has the run's engine register its stats surfaces
	// ("msg.*", "ckpt.*", "spec.*") as snapshot sources.
	Metrics *obs.Registry
	// NoInlinePrune disables the committer's best-effort inline prune —
	// set when the store tier's retention GC owns dead-object cleanup.
	NoInlinePrune bool
	// StallTimeout overrides the fault script's put-count trigger
	// fallback bound (see DefaultStallTimeout).
	StallTimeout time.Duration
}

// observableStore wraps a checkpoint store with a put callback: the
// trigger fault scripts key on (failures land at checkpoint boundaries).
type observableStore struct {
	migrate.Store
	mu    sync.Mutex
	onPut func(name string, count int)
	puts  map[string]int
}

// Delete forwards to the wrapped store when it supports pruning; the
// interface embedding alone would hide the optional method.
func (s *observableStore) Delete(name string) error {
	if d, ok := s.Store.(interface{ Delete(string) error }); ok {
		return d.Delete(name)
	}
	return nil
}

func (s *observableStore) Put(name string, data []byte) error {
	if err := s.Store.Put(name, data); err != nil {
		return err
	}
	s.mu.Lock()
	if s.puts == nil {
		s.puts = make(map[string]int)
	}
	s.puts[name]++
	n := s.puts[name]
	cb := s.onPut
	s.mu.Unlock()
	if cb != nil {
		cb(name, n)
	}
	return nil
}

// Run executes a workload on the in-process simulated cluster, driving
// it through the fault script (if any), and returns every node's final
// state. Callers check the result with w.Verify (or use RunVerified).
func Run(w Workload, p Params, cfg RunConfig) (*Result, error) {
	p, err := Normalize(w, p)
	if err != nil {
		return nil, err
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Minute
	}
	prog := cfg.Program
	if prog == nil {
		if prog, err = w.Program(p); err != nil {
			return nil, err
		}
	}

	quantum := cfg.Quantum
	if quantum == 0 && cfg.Script != nil && len(cfg.Script.Events) > 0 {
		quantum = 500
	}
	ckptOpts, err := p.CkptOptions()
	if err != nil {
		return nil, err
	}
	ckptOpts.NoInlinePrune = cfg.NoInlinePrune
	backing := cfg.Store
	if backing == nil {
		backing = cluster.NewMemStore()
	}
	store := &observableStore{Store: backing}
	eng := cluster.NewEngine(cluster.EngineConfig{
		Engine:  p.Engine,
		Store:   store,
		Stdout:  cfg.Stdout,
		Quantum: quantum,
		Workers: p.Workers,
		Slots:   cfg.Slots,
		Ckpt:    ckptOpts,
		Trace:   cfg.Trace,
		// The target of a node://K handoff may never have been started
		// explicitly; the factory binds its externs on arrival.
		Extra: func(node int64) rt.Registry { return w.Externs(p, node) },
	})
	defer eng.Close()
	if cfg.Metrics != nil {
		eng.RegisterMetrics(cfg.Metrics)
	}

	driver := newScriptDriver(cfg.Script, w.CheckpointName,
		eng.Fail,
		func(node int64, checkpoint string) error {
			return eng.Resurrect(node, checkpoint, w.Externs(p, node))
		})
	store.onPut = driver.OnPut
	wireStoreFaults(driver, backing)
	driver.setPartitioner(eng.Router.Partition, eng.Router.HealPartition)
	driver.setCrashResurrect(func(node int64, checkpoint string) error {
		// Re-kill the node inside its own resurrection window — after the
		// checkpoint image is unpacked, before the new incarnation runs a
		// step — then resurrect the dead-on-arrival incarnation again.
		eng.SetResurrectWindowHook(func(n int64, _ string) {
			if n == node {
				eng.Fail(n)
			}
		})
		err := eng.Resurrect(node, checkpoint, w.Externs(p, node))
		eng.SetResurrectWindowHook(nil)
		if err != nil {
			return err
		}
		return eng.Resurrect(node, checkpoint, w.Externs(p, node))
	})
	if cfg.StallTimeout > 0 {
		driver.setStallTimeout(cfg.StallTimeout)
	}

	start := time.Now()
	deadline := start.Add(cfg.Timeout)
	args := w.NodeArgs(p)
	for _, n := range w.StartNodes(p) {
		if err := eng.StartProcess(n, prog, args, w.Externs(p, n)); err != nil {
			return nil, fmt.Errorf("workload %s: starting node %d: %w", w.Name(), n, err)
		}
	}
	states, err := eng.Wait(cfg.Timeout)
	// The cluster going quiet does not end the run while a scripted kill
	// is mid-resurrection — the revived node is about to wake it again.
	// (A kill can land at the very end of the run: checkpoint triggers
	// trail capture under async commit.)
	for err == nil && !driver.idle() && driver.inFlightNow() && time.Now().Before(deadline) {
		driver.waitNotInFlight(deadline)
		states, err = eng.Wait(time.Until(deadline) + time.Second)
	}
	res := &Result{Elapsed: time.Since(start)}
	if err != nil {
		return nil, err
	}
	res.Resurrections, err = driver.finish()
	if err != nil {
		return nil, err
	}

	res.Nodes = make(map[int64]NodeResult, len(states))
	for n, st := range states {
		if st.Killed {
			return nil, fmt.Errorf("workload %s: node %d still marked killed at exit", w.Name(), n)
		}
		nr := NodeResult{Node: n, Status: st.Status, Halt: st.Halt, Steps: st.Steps}
		if st.Err != nil {
			nr.Err = st.Err.Error()
		}
		res.Nodes[n] = nr
	}
	res.Rollbacks = eng.Router.Stats().Rolls
	res.Ckpt = eng.CkptStats()
	return res, nil
}

// RunVerified is Run followed by the workload's own bit-exact
// verification against its sequential reference.
func RunVerified(w Workload, p Params, cfg RunConfig) (*Result, error) {
	p, err := Normalize(w, p)
	if err != nil {
		return nil, err
	}
	res, err := Run(w, p, cfg)
	if err != nil {
		return nil, err
	}
	if err := w.Verify(p, res.Nodes); err != nil {
		return res, err
	}
	return res, nil
}
