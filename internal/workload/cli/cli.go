// Package cli implements the mojrun command (and its gridrun alias):
// run any registered workload on the in-process simulated cluster or
// distributed across OS processes, drive it through a declarative fault
// script, and verify the result bit-exactly against the workload's
// sequential reference.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/workload"
)

// failFlags collects repeatable -fail specifications.
type failFlags struct {
	events []workload.FaultEvent
}

func (f *failFlags) String() string {
	var parts []string
	for _, e := range f.events {
		parts = append(parts, fmt.Sprintf("%d@%d", e.Node, e.AfterCheckpoints))
	}
	return strings.Join(parts, ",")
}

func (f *failFlags) Set(spec string) error {
	ev, err := workload.ParseFailSpec(spec)
	if err != nil {
		return err
	}
	f.events = append(f.events, ev)
	return nil
}

// options is the parsed flag set.
type options struct {
	app     string
	list    bool
	params  workload.Params
	fails   failFlags
	script  string
	timeout time.Duration
	verbose bool
	trace   string
	metrics string
	cpuprof string

	distributed bool
	coordOnly   bool
	listen      string
	storeDir    string
	storeSpec   string
	storeGate   int
	storeGC     time.Duration
	join        string
	node        int64
	resume      string
}

// storeOpenSpec resolves the effective -store spec: -store wins, the
// legacy -storedir is sugar for "dir:PATH", and the empty string means
// "no shared store configured" (runners default to a private MemStore).
func (o *options) storeOpenSpec() string {
	if o.storeSpec != "" {
		return o.storeSpec
	}
	if o.storeDir != "" {
		return "dir:" + o.storeDir
	}
	return ""
}

// openStore builds the checkpoint store tier from the flags, nil when
// none is configured and no gate is requested.
func openStore(opt options, tracer *obs.Tracer, reg *obs.Registry) (migrate.Store, error) {
	spec := opt.storeOpenSpec()
	if spec == "" && opt.storeGate == 0 {
		return nil, nil
	}
	return store.Open(spec, store.Options{
		Registry:  reg,
		Trace:     tracer,
		GateLimit: opt.storeGate,
	})
}

// Main is the shared entry point: prog names the binary in messages
// ("mojrun" or "gridrun"), defaultApp is the -app default (gridrun pins
// "grid"). It returns the process exit code; a worker ordered to die by
// the coordinator's fault injection returns 3 (simulated crash, not an
// error).
func Main(argv []string, prog, defaultApp string, stdout, stderr io.Writer) int {
	var (
		opt  options
		rows int
		cols int
	)
	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&opt.app, "app", defaultApp, "workload to run (see -list)")
	fs.BoolVar(&opt.list, "list", false, "list registered workloads and exit")
	fs.IntVar(&opt.params.Nodes, "nodes", 0, "cluster nodes (0 = workload default)")
	fs.IntVar(&opt.params.Size, "size", 0, "per-node problem size (0 = workload default)")
	fs.IntVar(&opt.params.Aux, "aux", 0, "workload-specific secondary knob (0 = workload default)")
	fs.IntVar(&rows, "rows", 0, "rows per node (grid alias for -size)")
	fs.IntVar(&cols, "cols", 0, "columns (grid alias for -aux)")
	fs.IntVar(&opt.params.Steps, "steps", 0, "timesteps / rounds / batches (0 = workload default)")
	fs.IntVar(&opt.params.CheckpointInterval, "ck", 0, "checkpoint interval (0 = workload default)")
	fs.IntVar(&opt.params.Workers, "workers", 0, "concurrently executing node quanta (0 = unbounded)")
	fs.StringVar(&opt.params.Ckpt, "ckpt", "", `checkpoint pipeline mode: "full" (default), "delta", or "async"`)
	fs.IntVar(&opt.params.CkptK, "ckptk", 0, "force a full image every K delta checkpoints (0 = pipeline default)")
	fs.StringVar(&opt.params.Engine, "engine", "", `execution engine: "vm" (slot-resolved interpreter, default), "risc" (compiled RISC simulator), or "jit" (threaded code with fused superinstructions); see -list`)
	fs.Var(&opt.fails, "fail", `inject a failure: "node@checkpoints[@delay]", e.g. "1@2" (repeatable)`)
	fs.StringVar(&opt.script, "script", "", "fault-scenario script file (fail/storekill/partition/crashresurrect lines; see README)")
	fs.DurationVar(&opt.timeout, "timeout", 2*time.Minute, "run timeout")
	fs.BoolVar(&opt.verbose, "v", false, "print per-node halt codes")
	fs.StringVar(&opt.trace, "trace", "", `write the run's event trace as JSONL to this file ("-" for stdout; see cmd/mojtrace)`)
	fs.StringVar(&opt.metrics, "metrics", "", `write the run's metrics snapshot as JSON to this file ("-" for stdout)`)
	fs.StringVar(&opt.cpuprof, "cpuprofile", "", "write a CPU profile of the run to this file (flushed even when the run fails)")

	fs.BoolVar(&opt.distributed, "distributed", false, "spawn one worker OS process per node over loopback TCP")
	fs.BoolVar(&opt.coordOnly, "coordinator", false, "coordinate externally started -join workers")
	fs.StringVar(&opt.listen, "listen", "127.0.0.1:0", "coordinator listen address")
	fs.StringVar(&opt.storeDir, "storedir", "", `directory for the shared checkpoint store (sugar for -store dir:PATH)`)
	fs.StringVar(&opt.storeSpec, "store", "", `checkpoint store backend spec: "mem", "dir:PATH", "zdir:PATH" (compressed at rest), "tcp:ADDR", or "repl:N,SPEC,..." (N-way quorum replication)`)
	fs.IntVar(&opt.storeGate, "storegate", 0, "bound concurrent checkpoint Puts through a FIFO admission gate (0 = unbounded)")
	fs.DurationVar(&opt.storeGC, "storegc", 0, "run background retention GC over the store at this interval (0 = off; disables the committer's inline prune)")
	fs.StringVar(&opt.join, "join", "", "run as a worker joined to this coordinator address")
	fs.Int64Var(&opt.node, "node", 0, "node id hosted by this worker (with -join)")
	fs.StringVar(&opt.resume, "resume", "", "checkpoint name to resurrect from (with -join)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if opt.params.Size == 0 {
		opt.params.Size = rows
	}
	if opt.params.Aux == 0 {
		opt.params.Aux = cols
	}

	// Reject an unknown -engine before any work starts; the error lists
	// what is registered.
	if opt.params.Engine != "" {
		if _, err := engine.Get(opt.params.Engine); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", prog, err)
			return 2
		}
	}

	if opt.list {
		for _, name := range workload.Names() {
			w, err := workload.Get(name)
			if err != nil {
				continue
			}
			d := w.Defaults()
			fmt.Fprintf(stdout, "%-10s %s\n%-10s defaults: nodes %d, size %d, aux %d, steps %d, ck %d\n",
				name, w.Description(), "", d.Nodes, d.Size, d.Aux, d.Steps, d.CheckpointInterval)
		}
		fmt.Fprintf(stdout, "engines:\n")
		for _, name := range engine.Names() {
			f, err := engine.Get(name)
			if err != nil {
				continue
			}
			def := ""
			if name == engine.DefaultName {
				def = " (default)"
			}
			fmt.Fprintf(stdout, "%-10s %s%s\n", name, f.Description(), def)
		}
		return 0
	}

	w, err := workload.Get(opt.app)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return 1
	}

	if opt.join != "" {
		return runWorker(w, opt, prog, stdout, stderr)
	}

	script, err := buildScript(opt)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return 1
	}
	p, err := workload.Normalize(w, opt.params)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return 1
	}

	mode := p.Ckpt
	if mode == "" {
		mode = "full"
	}
	eng := p.Engine
	if eng == "" {
		eng = engine.DefaultName
	}
	fmt.Fprintf(stdout, "%s: nodes %d, size %d, aux %d, steps %d, checkpoint every %d (%s), workers %d, engine %s\n",
		opt.app, p.Nodes, p.Size, p.Aux, p.Steps, p.CheckpointInterval, mode, p.Workers, eng)
	if script != nil {
		for _, ev := range script.Events {
			switch {
			case ev.Kind == workload.KindStoreKill && ev.NoRevive:
				fmt.Fprintf(stdout, "%s: will kill store replica %d after store write %d and leave it down\n",
					opt.app, ev.Node, ev.AfterCheckpoints)
			case ev.Kind == workload.KindStoreKill:
				fmt.Fprintf(stdout, "%s: will kill store replica %d after store write %d and revive it after %s\n",
					opt.app, ev.Node, ev.AfterCheckpoints, ev.Delay)
			default:
				fmt.Fprintf(stdout, "%s: will kill node %d after checkpoint %d and resurrect it after %s\n",
					opt.app, ev.Node, ev.AfterCheckpoints, ev.Delay)
			}
		}
	}

	// Observability sinks are strictly opt-in: without the flags both
	// stay nil and every instrumented site is a predictable nop.
	var tracer *obs.Tracer
	var reg *obs.Registry
	if opt.trace != "" {
		tracer = obs.NewTracer(0)
	}
	if opt.metrics != "" {
		reg = obs.NewRegistry()
	}

	// The checkpoint store tier: built from -store/-storedir/-storegate,
	// shared by the in-process and distributed paths. Retention GC, when
	// enabled, sweeps in the background during the run and once more at
	// the end, and replaces the committer's inline prune.
	st, err := openStore(opt, tracer, reg)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return 1
	}
	var gcStop func()
	if opt.storeGC > 0 {
		if st == nil {
			fmt.Fprintf(stderr, "%s: -storegc needs a shared store (-store or -storedir)\n", prog)
			return 1
		}
		g := store.StartGC(st, opt.storeGC, store.Options{Registry: reg, Trace: tracer})
		gcStop = g.Stop
	}

	// The CPU profile brackets the run itself (not flag parsing or store
	// setup) and is stopped — and therefore flushed — before any early
	// error return below, so a failed run still leaves a usable profile.
	if opt.cpuprof != "" {
		f, perr := os.Create(opt.cpuprof)
		if perr != nil {
			fmt.Fprintf(stderr, "%s: %v\n", prog, perr)
			return 1
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			f.Close()
			fmt.Fprintf(stderr, "%s: %v\n", prog, perr)
			return 1
		}
		defer f.Close()
	}

	var res *workload.Result
	switch {
	case opt.distributed, opt.coordOnly:
		res, err = runCoordinator(w, p, script, opt, st, tracer, prog, stderr)
	default:
		res, err = workload.Run(w, p, workload.RunConfig{
			Script: script, Timeout: opt.timeout, Trace: tracer, Metrics: reg,
			Store: st, NoInlinePrune: opt.storeGC > 0,
		})
	}
	if opt.cpuprof != "" {
		pprof.StopCPUProfile()
	}
	if gcStop != nil {
		gcStop()
		stats, gerr := store.RunGC(st, store.Options{Registry: reg, Trace: tracer})
		if gerr != nil {
			fmt.Fprintf(stderr, "%s: final retention sweep: %v\n", prog, gerr)
		} else if opt.verbose {
			fmt.Fprintf(stdout, "%s: retention GC: %d live, %d swept (%d bytes), %d failures\n",
				opt.app, stats.Live, stats.Swept, stats.SweptBytes, stats.Failures)
		}
	}
	// Flush the artifacts even when the run errored — a trace of a
	// failed run is exactly what the analyzer is for.
	if derr := dumpObs(tracer, reg, opt, stdout); derr != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, derr)
		if err == nil {
			return 1
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return 1
	}

	verr := w.Verify(p, res.Nodes)
	if opt.verbose || verr != nil {
		want := w.Reference(p)
		for _, n := range sortedNodes(want) {
			got, ok := res.Nodes[n]
			state := "missing"
			if ok {
				state = fmt.Sprintf("%d", got.Halt)
			}
			match := "ok"
			if !ok || got.Halt != want[n] {
				match = "MISMATCH"
			}
			fmt.Fprintf(stdout, "  node %d: halt %s (reference %d) %s\n", n, state, want[n], match)
		}
	}
	fmt.Fprintf(stdout, "%s: elapsed %s, rollbacks %d, resurrections %d\n",
		opt.app, res.Elapsed.Round(time.Millisecond), res.Rollbacks, res.Resurrections)
	if ck := res.Ckpt; ck.Checkpoints > 0 {
		fmt.Fprintf(stdout, "%s: checkpoints %d (%d full, %d delta), %d bytes written, pause %s, recoveries %d in %s\n",
			opt.app, ck.Checkpoints, ck.Fulls, ck.Deltas, ck.BytesWritten,
			time.Duration(ck.PauseNs).Round(time.Microsecond),
			ck.Recoveries, time.Duration(ck.RecoveryNs).Round(time.Microsecond))
	}
	if verr != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, verr)
		return 1
	}
	fmt.Fprintf(stdout, "%s: result matches the sequential reference exactly\n", opt.app)
	return 0
}

// dumpObs writes the opt-in observability artifacts: the event trace as
// JSONL (one event per line, cmd/mojtrace's input) and the metrics
// snapshot as a single JSON document.
func dumpObs(tracer *obs.Tracer, reg *obs.Registry, opt options, stdout io.Writer) error {
	if tracer != nil {
		if err := writeSink(opt.trace, stdout, func(w io.Writer) error {
			return obs.WriteJSONL(w, tracer.Snapshot())
		}); err != nil {
			return fmt.Errorf("writing trace %s: %w", opt.trace, err)
		}
	}
	if reg != nil {
		if err := writeSink(opt.metrics, stdout, reg.WriteJSON); err != nil {
			return fmt.Errorf("writing metrics %s: %w", opt.metrics, err)
		}
	}
	return nil
}

// writeSink writes through the callback to a file, or to stdout for "-".
func writeSink(path string, stdout io.Writer, write func(io.Writer) error) error {
	if path == "-" {
		return write(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sortedNodes(want map[int64]int64) []int64 {
	out := make([]int64, 0, len(want))
	for n := range want {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildScript merges the -script file (first) with repeatable -fail
// events (after), preserving order.
func buildScript(opt options) (*workload.FaultScript, error) {
	var events []workload.FaultEvent
	if opt.script != "" {
		f, err := os.Open(opt.script)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, err := workload.ParseScript(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", opt.script, err)
		}
		events = append(events, s.Events...)
	}
	events = append(events, opt.fails.events...)
	if len(events) == 0 {
		return nil, nil
	}
	return &workload.FaultScript{Events: events}, nil
}

// runWorker is the -join mode: host one node, exit 0 on a clean finish
// and 3 when the coordinator's failure injection killed us.
func runWorker(w workload.Workload, opt options, prog string, stdout, stderr io.Writer) int {
	var tracer *obs.Tracer
	if opt.trace != "" {
		tracer = obs.NewTracer(0)
	}
	st, err := workload.RunWorker(w, workload.WorkerConfig{
		Join: opt.join, Node: opt.node, Params: opt.params, Resume: opt.resume,
		Timeout: opt.timeout, Stdout: stdout, Trace: tracer,
	})
	// The trace is a debugging artifact, not run state: flush it even for
	// an incarnation the coordinator killed (its last events show what the
	// node was doing when the failure landed).
	if tracer != nil {
		if derr := writeSink(opt.trace, stdout, func(w io.Writer) error {
			return obs.WriteJSONL(w, tracer.Snapshot())
		}); derr != nil {
			fmt.Fprintf(stderr, "%s: worker %d: writing trace: %v\n", prog, opt.node, derr)
		}
	}
	if err == workload.ErrNodeFailed {
		fmt.Fprintf(stderr, "%s: worker %d: killed by coordinator (simulated crash)\n", prog, opt.node)
		return 3
	}
	if err != nil {
		fmt.Fprintf(stderr, "%s: worker %d: %v\n", prog, opt.node, err)
		return 1
	}
	if st != nil {
		fmt.Fprintf(stderr, "%s: worker %d: %s (halt %d, %d steps)\n",
			prog, opt.node, st.Status, st.Halt, st.Steps)
	}
	return 0
}

// runCoordinator is the -distributed / -coordinator mode. The store
// tier lives in the coordinator: workers reach it through the
// transport's remote-store protocol, so compression, replication and
// the admission gate apply to every worker's checkpoints.
func runCoordinator(w workload.Workload, p workload.Params, script *workload.FaultScript,
	opt options, st migrate.Store, tracer *obs.Tracer, prog string, stderr io.Writer) (*workload.Result, error) {
	cfg := workload.DistributedConfig{
		Listen: opt.listen,
		Store:  st,
		Trace:  tracer,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, prog+": "+format+"\n", args...)
		},
	}
	if opt.distributed {
		self, err := os.Executable()
		if err != nil {
			return nil, err
		}
		cfg.Spawn = func(join string, node int64, resume string) error {
			args := []string{
				"-app", w.Name(),
				"-join", join,
				"-node", strconv.FormatInt(node, 10),
				"-resume", resume,
				"-nodes", strconv.Itoa(p.Nodes),
				"-size", strconv.Itoa(p.Size),
				"-aux", strconv.Itoa(p.Aux),
				"-steps", strconv.Itoa(p.Steps),
				"-ck", strconv.Itoa(p.CheckpointInterval),
				"-ckpt", p.Ckpt,
				"-ckptk", strconv.Itoa(p.CkptK),
				"-engine", p.Engine,
				"-timeout", opt.timeout.String(),
			}
			if opt.trace != "" && opt.trace != "-" {
				// Per-process trace files next to the coordinator's own:
				// FILE.node<N> for the first incarnation, FILE.node<N>.resumed
				// for a resurrection (the latest resurrection wins).
				tf := fmt.Sprintf("%s.node%d", opt.trace, node)
				if resume != "" {
					tf += ".resumed"
				}
				args = append(args, "-trace", tf)
			}
			cmd := exec.Command(self, args...)
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return err
			}
			// Reap in the background; exit code 3 is the injected crash.
			go func() { _ = cmd.Wait() }()
			return nil
		}
	}
	return workload.RunDistributed(w, p, script, cfg, opt.timeout)
}
