// Distributed mode for any registered workload: the same program,
// speculation/MSG_ROLL semantics and checkpoint recovery as the
// in-process engine, but with every node in its own OS process joined
// over TCP through a transport.Hub. RunDistributed is the coordinator
// half; RunWorker is the per-process worker half (cmd/mojrun wires both
// to flags). The split is engine-shaped, not process-shaped, so tests
// run "workers" as goroutines against a real loopback hub — including
// with fault-injected links — and assert bit-identical results.
package workload

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/migrate"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrNodeFailed is returned by RunWorker when the coordinator declared
// this worker's node failed: the process must die without flushing
// anything (crash semantics); a resurrection worker takes over from the
// shared store.
var ErrNodeFailed = errors.New("workload: node declared failed by coordinator")

// WorkerConfig configures one distributed worker process.
type WorkerConfig struct {
	// Join is the coordinator hub address.
	Join string
	// Node is the node this process hosts. A node listed by the
	// workload's SpareNodes starts no process: the worker idles, ready to
	// adopt a migrate("node://K") handoff.
	Node int64
	// Params are the workload parameters (identical on every worker —
	// SPMD).
	Params Params
	// Resume, when non-empty, resurrects the node from this checkpoint in
	// the shared store instead of starting fresh.
	Resume string
	// Timeout bounds the node's run (default 2m).
	Timeout time.Duration
	// Stdout receives process output (default: discard).
	Stdout io.Writer
	// Fault, when set, wraps the worker's link with the frame-level fault
	// injector (tests only).
	Fault *transport.FaultSpec
	// RetryBase overrides the client reconnect backoff (tests).
	RetryBase time.Duration
	// Trace, when set, records this worker's engine lifecycle and wire
	// events (see cluster.EngineConfig.Trace, transport.ClientConfig.Trace).
	Trace *obs.Tracer
}

// RunWorker hosts one node of a workload in this OS process: a
// single-node cluster.Engine whose router uplinks to the coordinator and
// whose checkpoint store is served remotely. It reports every terminal
// node state to the coordinator and returns this node's own final state
// (nil for a spare that adopted nothing before shutdown).
func RunWorker(w Workload, cfg WorkerConfig) (*cluster.ProcState, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Minute
	}
	p, err := Normalize(w, cfg.Params)
	if err != nil {
		return nil, err
	}
	spare := false
	for _, s := range w.SpareNodes(p) {
		if s == cfg.Node {
			spare = true
		}
	}

	router := msg.NewRouter()
	router.SetLocal(cfg.Node)

	var (
		engine      *cluster.Engine
		engineReady = make(chan struct{})
		failedCh    = make(chan struct{})
		failOnce    sync.Once
		adoptedCh   = make(chan struct{})
		adoptOnce   sync.Once
	)
	clientCfg := transport.ClientConfig{
		Addr:   cfg.Join,
		Node:   cfg.Node,
		Router: router,
		OnFail: func() { failOnce.Do(func() { close(failedCh) }) },
		OnAdopt: func(dst, seen int64, img *wire.Image) error {
			<-engineReady
			router.SetLocal(dst)
			if err := engine.Adopt(dst, img, seen, w.Externs(p, dst)); err != nil {
				return err
			}
			adoptOnce.Do(func() { close(adoptedCh) })
			return nil
		},
		Resurrect: cfg.Resume != "",
		RetryBase: cfg.RetryBase,
		Trace:     cfg.Trace,
	}
	if cfg.Fault != nil {
		clientCfg.Wrap = cfg.Fault.Wrap
	}
	client, err := transport.Dial(clientCfg)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	router.SetUplink(client)

	ckptOpts, err := p.CkptOptions()
	if err != nil {
		return nil, err
	}
	engine = cluster.NewEngine(cluster.EngineConfig{
		Engine:        p.Engine,
		Store:         client.RemoteStore(),
		Router:        router,
		Stdout:        cfg.Stdout,
		RemoteHandoff: client.Handoff,
		Extra:         func(node int64) rt.Registry { return w.Externs(p, node) },
		Ckpt:          ckptOpts,
		Trace:         cfg.Trace,
	})
	defer engine.Close()
	close(engineReady)

	switch {
	case cfg.Resume != "":
		// Resurrect from the shared store. Dial already synced the
		// rollback epoch, and Engine.Resurrect marks the checkpoint as
		// the rollback point (Router.Restore), so this incarnation does
		// not re-observe the failure that killed its predecessor.
		if err := engine.Resurrect(cfg.Node, cfg.Resume, w.Externs(p, cfg.Node)); err != nil {
			return nil, fmt.Errorf("workload %s: resurrecting node %d from %q: %w", w.Name(), cfg.Node, cfg.Resume, err)
		}
	case spare:
		// A spare hosts no initial process: it waits for a cross-process
		// node://K handoff to adopt, then runs the adopted incarnation.
		select {
		case <-adoptedCh:
		case <-failedCh:
			engine.Close()
			return nil, ErrNodeFailed
		case <-time.After(cfg.Timeout):
			return nil, fmt.Errorf("workload %s: spare node %d was never migrated to within %s", w.Name(), cfg.Node, cfg.Timeout)
		}
	default:
		prog, err := w.Program(p)
		if err != nil {
			return nil, err
		}
		if err := engine.StartProcess(cfg.Node, prog, w.NodeArgs(p), w.Externs(p, cfg.Node)); err != nil {
			return nil, err
		}
	}

	type waited struct {
		states map[int64]*cluster.ProcState
		err    error
	}
	done := make(chan waited, 1)
	go func() {
		states, err := engine.Wait(cfg.Timeout)
		done <- waited{states, err}
	}()

	select {
	case <-failedCh:
		// Crash semantics: report nothing, flush nothing. The coordinator
		// already advanced the epoch; survivors are rolling back.
		engine.Close()
		return nil, ErrNodeFailed
	case w2 := <-done:
		if w2.err != nil {
			return nil, w2.err
		}
		rolls := router.Stats().Rolls
		var own *cluster.ProcState
		first := true
		for node, st := range w2.states {
			res := transport.Result{
				Node: node, Status: st.Status, Halt: st.Halt,
				Steps: st.Steps,
			}
			if first {
				// The Rolls counter is router-wide; attach it to exactly
				// one hosted node so the coordinator's sum counts each
				// MSG_ROLL delivery once.
				res.Rolls = rolls
				first = false
			}
			if st.Err != nil {
				res.Err = st.Err.Error()
			}
			if err := client.Exit(res); err != nil {
				return nil, err
			}
			if node == cfg.Node {
				own = st
			}
		}
		return own, nil
	}
}

// SpawnFunc launches a worker process for a node; resume is empty for a
// fresh start or a checkpoint name for a resurrection. cmd/mojrun
// re-executes its own binary; in-process tests start a goroutine.
type SpawnFunc func(join string, node int64, resume string) error

// DistributedConfig configures the coordinator side of a distributed
// run.
type DistributedConfig struct {
	// Listen is the hub's listen address (default "127.0.0.1:0").
	Listen string
	// Store backs the shared checkpoint store (default in-memory; real
	// deployments pass a cluster.DirStore on the shared mount).
	Store migrate.Store
	// Spawn launches workers. When nil, the coordinator spawns nothing
	// and waits for externally started workers to join (mojrun
	// -coordinator); a fault script then cannot resurrect and is
	// rejected.
	Spawn SpawnFunc
	// Logf, when set, receives coordinator progress lines.
	Logf func(format string, args ...any)
	// Trace, when set, records the hub's relay activity on the "hub"
	// stream (coordinator-side view of the run).
	Trace *obs.Tracer
}

// RunDistributed executes a workload across worker processes joined
// through a TCP hub, driving the run through the fault script (multiple
// timed failures, each killing the worker process and resurrecting a
// fresh one from the shared checkpoint store), and returns the
// aggregated result. Callers check it with w.Verify.
func RunDistributed(w Workload, p Params, script *FaultScript, cfg DistributedConfig, timeout time.Duration) (*Result, error) {
	p, err := Normalize(w, p)
	if err != nil {
		return nil, err
	}
	if script != nil && len(script.Events) > 0 && cfg.Spawn == nil {
		return nil, errors.New("workload: a fault script needs a spawner to resurrect nodes")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Store == nil {
		cfg.Store = cluster.NewMemStore()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	hub, err := transport.Listen(cfg.Listen, cfg.Store)
	if err != nil {
		return nil, err
	}
	defer hub.Close()
	hub.Trace = cfg.Trace

	driver := newScriptDriver(script, w.CheckpointName,
		func(node int64) {
			logf("coordinator: killing node %d (fault script)", node)
			hub.Fail(node)
		},
		func(node int64, checkpoint string) error {
			logf("coordinator: resurrecting node %d from %q", node, checkpoint)
			// If the killed incarnation had already reported (the kill landed
			// after it finished), drop the stale result so the coordinator
			// waits for the resurrected incarnation's report.
			hub.ClearResult(node)
			return cfg.Spawn(hub.Addr(), node, checkpoint)
		})
	hub.OnPut = driver.OnPut
	wireStoreFaults(driver, cfg.Store)
	driver.setPartitioner(hub.Partition, hub.HealPartition)
	driver.setCrashResurrect(func(node int64, checkpoint string) error {
		logf("coordinator: crash-resurrecting node %d from %q", node, checkpoint)
		hub.ClearResult(node)
		if err := cfg.Spawn(hub.Addr(), node, checkpoint); err != nil {
			return err
		}
		// Re-kill the resurrection worker once it has joined — the closest
		// a coordinator gets to the in-process engine's unpack window. If
		// it never joins in time, fall through to a plain resurrect.
		deadline := time.Now().Add(DefaultStallTimeout)
		for !hub.HasSession(node) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if !hub.HasSession(node) {
			return nil
		}
		hub.Fail(node)
		hub.ClearResult(node)
		return cfg.Spawn(hub.Addr(), node, checkpoint)
	})

	starts := w.StartNodes(p)
	spares := w.SpareNodes(p)
	expect := len(starts) + len(spares)

	start := time.Now()
	deadline := start.Add(timeout)
	if cfg.Spawn != nil {
		for _, n := range append(append([]int64{}, starts...), spares...) {
			if err := cfg.Spawn(hub.Addr(), n, ""); err != nil {
				return nil, fmt.Errorf("workload %s: spawning node %d: %w", w.Name(), n, err)
			}
		}
	} else {
		logf("coordinator: waiting for %d workers to join %s", expect, hub.Addr())
	}

	results, err := hub.WaitResults(expect, timeout)
	// Same end-of-run care as the in-process runner: a scripted kill that
	// landed after its node finished is still resurrecting — wait for the
	// revived worker's fresh report rather than returning stale results.
	for err == nil && !driver.idle() && driver.inFlightNow() && time.Now().Before(deadline) {
		driver.waitNotInFlight(deadline)
		results, err = hub.WaitResults(expect, time.Until(deadline)+time.Second)
	}
	res := &Result{Elapsed: time.Since(start)}
	if err != nil {
		return nil, err
	}
	res.Resurrections, err = driver.finish()
	if err != nil {
		return nil, err
	}

	res.Nodes = make(map[int64]NodeResult, len(results))
	for n, r := range results {
		res.Nodes[n] = NodeResult{Node: n, Status: r.Status, Halt: r.Halt, Steps: r.Steps, Err: r.Err}
		res.Rollbacks += r.Rolls
	}
	return res, nil
}
