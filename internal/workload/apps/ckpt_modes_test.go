package apps

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/workload"
)

// modes is the checkpoint pipeline matrix every app must be bit-exact
// across.
var modes = []string{"full", "delta", "async"}

// TestCkptModesMatchReference: every app × every checkpoint mode ×
// worker widths 0/1/2/4 produces results bit-identical to the
// sequential reference, and the incremental modes actually write deltas
// with fewer bytes than full mode.
func TestCkptModesMatchReference(t *testing.T) {
	for _, w := range all(t) {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			fullBytes := make(map[int]uint64)
			for _, mode := range modes {
				for _, workers := range []int{0, 1, 2, 4} {
					t.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(t *testing.T) {
						p := smallParams(w)
						p.Workers = workers
						p.Ckpt = mode
						p.CkptK = 3
						res, err := workload.RunVerified(w, p, workload.RunConfig{Timeout: time.Minute})
						if err != nil {
							t.Fatal(err)
						}
						ck := res.Ckpt
						if ck.Checkpoints == 0 {
							t.Fatal("no checkpoints recorded")
						}
						switch mode {
						case "full":
							if ck.Deltas != 0 {
								t.Fatalf("full mode wrote %d deltas", ck.Deltas)
							}
							fullBytes[workers] = ck.BytesWritten
						default:
							if ck.Deltas == 0 {
								t.Fatalf("%s mode wrote no deltas: %+v", mode, ck)
							}
							if base := fullBytes[workers]; base > 0 && ck.BytesWritten >= base {
								t.Fatalf("%s mode wrote %d bytes, not fewer than full mode's %d",
									mode, ck.BytesWritten, base)
							}
						}
					})
				}
			}
		})
	}
}

// TestCkptModesMultiFailureConverges: the two-failure fault scripts
// converge bit-exactly in the incremental modes too — including kills
// that land while an async commit is in flight (the async committer is
// always mid-flight somewhere with these small checkpoint intervals).
func TestCkptModesMultiFailureConverges(t *testing.T) {
	for _, w := range all(t) {
		for _, mode := range []string{"delta", "async"} {
			w, mode := w, mode
			t.Run(fmt.Sprintf("%s/%s", w.Name(), mode), func(t *testing.T) {
				t.Parallel()
				p := smallParams(w)
				p.Workers = 2
				p.Ckpt = mode
				p.CkptK = 2
				script := multiFailureScript(w)
				res, err := workload.RunVerified(w, p, workload.RunConfig{Script: script, Timeout: 2 * time.Minute})
				if err != nil {
					t.Fatal(err)
				}
				if res.Resurrections != len(script.Events) {
					t.Fatalf("resurrections = %d, want %d", res.Resurrections, len(script.Events))
				}
				if res.Ckpt.Recoveries == 0 {
					t.Fatal("no recovery time recorded")
				}
			})
		}
	}
}

// TestCkptModesDistributedConverges: grid and pipeline across OS-process
// stand-ins over the TCP transport, in delta and async modes, through
// their multi-failure scripts — resurrect-from-delta-chain over the
// remote store, with kills landing mid-commit under async.
func TestCkptModesDistributedConverges(t *testing.T) {
	for _, name := range []string{"grid", "pipeline"} {
		for _, mode := range []string{"delta", "async"} {
			name, mode := name, mode
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				t.Parallel()
				w, err := workload.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				p := smallParams(w)
				p.Ckpt = mode
				p.CkptK = 2
				script := multiFailureScript(w)
				res, err := workload.RunDistributed(w, p, script,
					workload.DistributedConfig{Spawn: goSpawn(t, w, p)}, 2*time.Minute)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Verify(p, res.Nodes); err != nil {
					t.Fatal(err)
				}
				if res.Resurrections != len(script.Events) {
					t.Fatalf("resurrections = %d, want %d", res.Resurrections, len(script.Events))
				}
			})
		}
	}
}
