package apps

import (
	"fmt"

	"repro/internal/fir"
	"repro/internal/lang"
	"repro/internal/rt"
	"repro/internal/workload"
)

// pipeline is a multi-stage dataflow pipeline: stage 0 generates items,
// middle stages transform them, the last stage folds a checksum. Its
// point is live migration: at the batch given by Aux (a checkpoint
// boundary), the middle stage executes migrate("node://K") and hands
// itself off to a spare node — heap, locals and speculation state
// intact — while both neighbours reroute to the spare at the same batch,
// and the run keeps going. Works identically on the in-process engine
// (engine handoff) and distributed (the image ships through the hub and
// a spare worker process adopts it).
//
// Nodes counts the spare: stages = Nodes-1, spare node id = Nodes-1, the
// migrating stage is stages/2. Size = items per batch; Aux = the batch
// after which the stage moves (must be a checkpoint boundary).
type pipeline struct{}

func (pipeline) Name() string { return "pipeline" }

func (pipeline) Description() string {
	return "multi-stage pipeline that live-migrates its middle stage to a spare node mid-run (Size=items/batch, Aux=migration batch)"
}

func (pipeline) Defaults() workload.Params {
	return workload.Params{Nodes: 4, Size: 3, Aux: 4, Steps: 8, CheckpointInterval: 2}
}

func (pipeline) Validate(p workload.Params) error {
	stages := p.Nodes - 1
	switch {
	case stages < 2:
		return fmt.Errorf("pipeline: need at least two stages plus a spare, have %d nodes", p.Nodes)
	case p.Size < 1:
		return fmt.Errorf("pipeline: batch size %d too small", p.Size)
	case p.Steps < 1:
		return fmt.Errorf("pipeline: need at least one batch, have %d", p.Steps)
	case p.CheckpointInterval < 1:
		return fmt.Errorf("pipeline: checkpoint interval %d must be positive", p.CheckpointInterval)
	case p.Aux < 1 || p.Aux > p.Steps:
		return fmt.Errorf("pipeline: migration batch %d must be within the %d batches", p.Aux, p.Steps)
	case p.Aux%p.CheckpointInterval != 0:
		return fmt.Errorf("pipeline: migration batch %d must be a checkpoint boundary (interval %d)", p.Aux, p.CheckpointInterval)
	}
	return nil
}

// pipelineSource is the per-node MojC program. Arguments: getarg(0)=
// nodes (including the spare), 1=items per batch, 2=batches,
// 3=checkpoint_interval, 4=migration batch. Tags are global item
// indices; stage_node maps a stage to the node hosting it for a given
// batch, which is how every stage reroutes around the migration without
// any coordination beyond the shared parameters.
const pipelineSource = `
// The node hosting stage s during batch b: the migrating stage moves to
// the spare after the migration batch.
int stage_node(int s, int b, int mstage, int spare, int mb) {
	if (s == mstage) {
		if (b > mb) {
			return spare;
		}
	}
	return s;
}

int main() {
	int nodes = getarg(0);
	int size = getarg(1);
	int batches = getarg(2);
	int cki = getarg(3);
	int mb = getarg(4);
	int stages = nodes - 1;
	int spare = nodes - 1;
	int mstage = stages / 2;
	int stage = node_id(); // stage identity: stable across the handoff

	ptr buf = alloc(1);
	int checksum = 0;
	int items = 0;
	int specid = speculate();
	int b = 1;
	while (b <= batches) {
		int err = 0;
		for (int j = 0; j < size; j += 1) {
			int t = (b - 1) * size + j;
			int v = 0;
			if (stage == 0) {
				v = (t * 7 + 13) % 1000; // source: generate
			} else {
				int up = stage_node(stage - 1, b, mstage, spare, mb);
				err = msg_recv(up, t, buf, 0, 1);
				if (err != 0) { break; }
				v = (buf[0] * (stage + 2) + t) % 1000003; // transform
			}
			if (stage < stages - 1) {
				int down = stage_node(stage + 1, b, mstage, spare, mb);
				buf[0] = v;
				err = msg_send(down, t, buf, 0, 1);
				if (err != 0) { break; }
			} else {
				checksum = (checksum * 31 + v) % 1000000007; // sink
			}
			items += 1;
		}
		if (err == 1) {
			retry(specid); // MSG_ROLL: re-run the batch from the speculation
		}
		if (err == 2) {
			return -1; // shutdown
		}
		if (b % cki == 0) {
			commit(specid);
			if (stage == mstage) {
				if (b == mb) {
					// Hand this stage off to the spare node mid-run. The
					// post-migration speculation below is the rollback
					// point, so no retry ever re-crosses the migrate.
					migrate(spare_target());
				}
			}
			ptr name = ck_name();
			migrate(name);
			msg_gc(b * size); // items before the next batch are dead
			specid = speculate();
		}
		b += 1;
	}
	commit(specid);
	if (stage == stages - 1) {
		return checksum;
	}
	return (stage + 1) * 1000000 + items;
}
`

func (pipeline) Program(p workload.Params) (*fir.Program, error) {
	return lang.Compile(pipelineSource, externSigs("spare_target"))
}

func (pipeline) NodeArgs(p workload.Params) []int64 {
	return []int64{int64(p.Nodes), int64(p.Size), int64(p.Steps), int64(p.CheckpointInterval), int64(p.Aux)}
}

// StartNodes are the stage nodes; the spare exists only to be migrated
// to.
func (pipeline) StartNodes(p workload.Params) []int64 { return workload.Range(p.Nodes - 1) }

func (pipeline) SpareNodes(p workload.Params) []int64 { return []int64{int64(p.Nodes - 1)} }

func (pipeline) CheckpointName(node int64) string {
	return fmt.Sprintf("pipeline-ck-%d", node)
}

func (pl pipeline) Externs(p workload.Params, node int64) rt.Registry {
	reg := workload.CkExtern(pl.CheckpointName(node))
	reg["spare_target"] = workload.StrExtern(fmt.Sprintf("node://%d", p.Nodes-1))
	return reg
}

// migratingStage returns the stage that hands off, and the spare node.
func (pipeline) migratingStage(p workload.Params) (stage, spare int64) {
	stages := p.Nodes - 1
	return int64(stages / 2), int64(p.Nodes - 1)
}

// Reference replays the pipeline sequentially. The migrating stage's
// halt code is expected on the spare node; the stage's original node is
// checked by Verify to have migrated.
func (pl pipeline) Reference(p workload.Params) map[int64]int64 {
	stages := p.Nodes - 1
	items := int64(p.Steps * p.Size)
	sink := int64(0)
	for t := int64(0); t < items; t++ {
		v := (t*7 + 13) % 1000
		for s := int64(1); s < int64(stages); s++ {
			v = (v*(s+2) + t) % 1000003
		}
		sink = (sink*31 + v) % 1000000007
	}
	halt := func(stage int64) int64 {
		if stage == int64(stages-1) {
			return sink
		}
		return (stage+1)*1000000 + items
	}
	mstage, spare := pl.migratingStage(p)
	out := make(map[int64]int64, stages)
	for s := int64(0); s < int64(stages); s++ {
		if s == mstage {
			out[spare] = halt(s)
		} else {
			out[s] = halt(s)
		}
	}
	return out
}

func (pl pipeline) Verify(p workload.Params, nodes map[int64]workload.NodeResult) error {
	if err := workload.VerifyHalted(pl.Reference(p), nodes); err != nil {
		return err
	}
	mstage, spare := pl.migratingStage(p)
	st, ok := nodes[mstage]
	if !ok {
		return fmt.Errorf("pipeline: migrating stage node %d reported no final state", mstage)
	}
	if st.Status != rt.StatusMigrated {
		return fmt.Errorf("pipeline: stage node %d finished %s, want migrated to spare node %d", mstage, st.Status, spare)
	}
	return nil
}
