package apps

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/migrate"
	"repro/internal/store"
	"repro/internal/workload"
)

// isMember reports whether a store object name has the chain-member
// form "head@seq".
func isMember(name string) bool {
	i := strings.LastIndexByte(name, '@')
	if i < 0 {
		return false
	}
	_, err := strconv.Atoi(name[i+1:])
	return err == nil
}

// storeKillScript is the store-tier fault drill: replica 1 dies after
// the very first store write — between a chain member landing and its
// head ref being published, i.e. mid-commit — and never comes back.
// Then node 1 itself dies after its 2nd checkpoint and must be
// resurrected from the surviving two-replica quorum.
func storeKillScript() *workload.FaultScript {
	return &workload.FaultScript{Events: []workload.FaultEvent{
		{Kind: workload.KindStoreKill, Node: 1, AfterCheckpoints: 1, NoRevive: true},
		{Node: 1, AfterCheckpoints: 2, Delay: 20 * time.Millisecond},
	}}
}

// checkGCLeavesLiveSet runs retention GC over st and verifies the
// acceptance property: afterwards every head ref still resolves, every
// resolved chain member is readable, and the store holds exactly the
// live set (no dead chain members or orphaned fulls survive).
func checkGCLeavesLiveSet(t *testing.T, st migrate.Store) {
	t.Helper()
	stats, err := store.RunGC(st, store.Options{})
	if err != nil {
		t.Fatalf("RunGC: %v", err)
	}
	if stats.Failures != 0 {
		t.Fatalf("GC failures = %d, want 0", stats.Failures)
	}
	if stats.Swept == 0 {
		t.Fatal("GC swept nothing: the run left no dead chain members, test proves nothing")
	}

	names, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	live := make(map[string]bool)
	for _, n := range names {
		if isMember(n) {
			continue
		}
		live[n] = true
		chain, err := migrate.ResolveChain(st, n)
		if err != nil {
			t.Fatalf("post-GC ResolveChain(%q): %v", n, err)
		}
		for _, m := range chain {
			if _, err := st.Get(m); err != nil {
				t.Fatalf("post-GC chain member %q of %q unreadable: %v", m, n, err)
			}
			live[m] = true
		}
	}
	for _, n := range names {
		if !live[n] {
			t.Errorf("post-GC store still holds %q, which no head ref reaches", n)
		}
	}

	// Steady state: a second sweep finds nothing.
	again, err := store.RunGC(st, store.Options{})
	if err != nil {
		t.Fatalf("second RunGC: %v", err)
	}
	if again.Swept != 0 || again.Failures != 0 {
		t.Fatalf("second GC sweep = %+v, want nothing to do", again)
	}
}

// TestStoreKillMidCommitResurrection: with checkpoints on a 3-way
// quorum-replicated store, a replica killed mid-commit (after a chain
// member's write, before its head ref publishes) and never revived
// does not break the run — a node killed afterwards resurrects
// bit-exactly from the surviving quorum — and retention GC afterwards
// leaves exactly the live chain set.
func TestStoreKillMidCommitResurrection(t *testing.T) {
	for _, app := range []string{"grid", "allreduce"} {
		for _, mode := range []string{"delta", "async"} {
			app, mode := app, mode
			t.Run(app+"/"+mode, func(t *testing.T) {
				t.Parallel()
				w, err := workload.Get(app)
				if err != nil {
					t.Fatal(err)
				}
				st, err := store.Open("repl:3,mem,mem,mem", store.Options{})
				if err != nil {
					t.Fatal(err)
				}
				rep := store.FindReplicated(st)
				if rep == nil {
					t.Fatal("no replicated layer in repl:3 store")
				}

				p := smallParams(w)
				p.Ckpt = mode
				p.CkptK = 1 // force fulls often: guarantees dead members for GC
				script := storeKillScript()
				res, err := workload.RunVerified(w, p, workload.RunConfig{
					Script:        script,
					Timeout:       2 * time.Minute,
					Store:         st,
					NoInlinePrune: true, // retention GC owns cleanup here
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Resurrections != len(script.Events) {
					t.Fatalf("fired events = %d, want %d", res.Resurrections, len(script.Events))
				}
				if !rep.ReplicaDown(1) {
					t.Fatal("replica 1 came back: delay=never must leave it down")
				}
				rep.Wait() // drain background straggler writes before inspecting

				checkGCLeavesLiveSet(t, st)
			})
		}
	}
}

// TestDistributedStoreKillMidCommit: the same drill over the TCP
// transport — workers write checkpoints through the coordinator to the
// replicated store; a replica dies mid-commit and a fresh worker
// process resurrects the killed node from the surviving quorum.
func TestDistributedStoreKillMidCommit(t *testing.T) {
	w, err := workload.Get("grid")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open("repl:3,mem,mem,mem", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := store.FindReplicated(st)
	p := smallParams(w)
	p.Ckpt = "delta"
	p.CkptK = 1
	script := storeKillScript()
	res, err := workload.RunDistributed(w, p, script,
		workload.DistributedConfig{Spawn: goSpawn(t, w, p), Store: st}, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(p, res.Nodes); err != nil {
		t.Fatal(err)
	}
	if res.Resurrections != len(script.Events) {
		t.Fatalf("fired events = %d, want %d", res.Resurrections, len(script.Events))
	}
	if !rep.ReplicaDown(1) {
		t.Fatal("replica 1 came back: delay=never must leave it down")
	}
	rep.Wait()
	checkGCLeavesLiveSet(t, st)
}
