package apps

// Observability-layer guarantees at the workload level: the event trace
// of a seeded failure-free run is logically deterministic (identical
// per-stream sequences run to run, wall clocks excluded), a fault-script
// run's trace carries the full failure cascade with consistent epochs,
// and the metrics registry's snapshot agrees with the run's own result
// counters.

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// tracedRun executes one verified run with a tracer (and optional
// registry) attached and returns the run result plus the trace.
func tracedRun(t *testing.T, w workload.Workload, p workload.Params,
	script *workload.FaultScript, reg *obs.Registry) (*workload.Result, []obs.Event) {
	t.Helper()
	tr := obs.NewTracer(0)
	res, err := workload.RunVerified(w, p, workload.RunConfig{
		Script: script, Timeout: time.Minute, Trace: tr, Metrics: reg,
	})
	if err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	return res, tr.Snapshot()
}

// logicalKey reduces an event to its deterministic skeleton: stream, seq
// and the logical fields. Wall time goes; so do the payloads that carry
// measured durations (checkpoint pause, commit latency, recovery time) —
// those are real time, not logical time.
func logicalKey(ev obs.Event) obs.Event {
	ev.Wall = 0
	switch ev.Kind {
	case obs.EvCkptCapture.String(), obs.EvCkptPublish.String(), obs.EvResurrect.String():
		ev.B = 0
	}
	return ev
}

// byStream groups a trace into per-stream logical sequences.
func byStream(events []obs.Event) map[string][]obs.Event {
	out := make(map[string][]obs.Event)
	for _, ev := range events {
		out[ev.Stream] = append(out[ev.Stream], logicalKey(ev))
	}
	return out
}

// TestTraceDeterminism: two identical failure-free runs produce
// identical logical event sequences on every stream. This is the
// observability pledge that matters most: attaching a tracer must not
// perturb the run, and the trace itself must be replay-stable so two
// traces can be diffed.
func TestTraceDeterminism(t *testing.T) {
	for _, w := range all(t) {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			p := smallParams(w)
			p.Workers = 2
			_, first := tracedRun(t, w, p, nil, nil)
			_, second := tracedRun(t, w, p, nil, nil)
			a, b := byStream(first), byStream(second)
			if len(a) != len(b) {
				t.Fatalf("stream sets differ: %d vs %d", len(a), len(b))
			}
			for name, evs := range a {
				other, ok := b[name]
				if !ok {
					t.Fatalf("stream %q missing from second run", name)
				}
				if len(evs) != len(other) {
					t.Fatalf("stream %q: %d events vs %d", name, len(evs), len(other))
				}
				for i := range evs {
					if evs[i] != other[i] {
						t.Fatalf("stream %q event %d diverged:\n  %+v\n  %+v", name, i, evs[i], other[i])
					}
				}
			}
		})
	}
}

// TestTraceCascadeInvariants: a two-failure grid run's trace contains
// the complete cascade for every failure — the fail event opening a new
// rollback epoch, MSG_ROLL deliveries and speculation rollbacks carrying
// that epoch on the affected nodes, and a resurrection closing it — with
// logically consistent timestamps throughout.
func TestTraceCascadeInvariants(t *testing.T) {
	w, err := workload.Get("grid")
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams(w)
	p.Steps = 24
	script := multiFailureScript(w)
	res, events := tracedRun(t, w, p, script, nil)
	if res.Resurrections != len(script.Events) {
		t.Fatalf("resurrections %d, want %d", res.Resurrections, len(script.Events))
	}

	fails := map[uint64]int{}      // epoch → victim node
	rolls := map[uint64][]int{}    // epoch → nodes that observed MSG_ROLL
	specRB := map[uint64][]int{}   // epoch → nodes that rolled back speculation
	resurrects := map[uint64]int{} // epoch → resurrected node
	for _, ev := range events {
		switch ev.Kind {
		case obs.EvFail.String():
			if _, dup := fails[ev.Epoch]; dup {
				t.Fatalf("two fail events claim epoch %d", ev.Epoch)
			}
			fails[ev.Epoch] = ev.Node
		case obs.EvMsgRoll.String():
			rolls[ev.Epoch] = append(rolls[ev.Epoch], ev.Node)
		case obs.EvSpecRollback.String():
			specRB[ev.Epoch] = append(specRB[ev.Epoch], ev.Node)
		case obs.EvResurrect.String():
			resurrects[ev.Epoch] = ev.Node
			if ev.Name == "" {
				t.Fatalf("resurrect event without a checkpoint name: %+v", ev)
			}
		}
	}
	if len(fails) != len(script.Events) {
		t.Fatalf("fail events for epochs %v, want %d failures", fails, len(script.Events))
	}
	for epoch, victim := range fails {
		if epoch == 0 {
			t.Fatal("failure recorded in epoch 0 — failures must advance the epoch")
		}
		survivorRolled := false
		for _, n := range rolls[epoch] {
			if n != victim {
				survivorRolled = true
			}
		}
		if !survivorRolled {
			t.Errorf("epoch %d (victim %d): no survivor observed MSG_ROLL; rolls %v", epoch, victim, rolls[epoch])
		}
		if len(specRB[epoch]) == 0 {
			t.Errorf("epoch %d: no speculation rollback recorded", epoch)
		}
		if n, ok := resurrects[epoch]; !ok {
			t.Errorf("epoch %d: no resurrection recorded (have %v)", epoch, resurrects)
		} else if n != victim {
			t.Errorf("epoch %d: resurrected node %d, victim was %d", epoch, n, victim)
		}
	}
	// Epochs outside the failures' must not roll anything back.
	for epoch := range rolls {
		if _, ok := fails[epoch]; !ok {
			t.Errorf("MSG_ROLL in epoch %d without a recorded failure", epoch)
		}
	}
}

// TestMetricsRegistryAgreesWithResult: the registry snapshot a run feeds
// ("msg.*", "ckpt.*", "spec.*" sources) is consistent with the result
// counters the runner itself reports.
func TestMetricsRegistryAgreesWithResult(t *testing.T) {
	w, err := workload.Get("grid")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, _ := tracedRun(t, w, smallParams(w), multiFailureScript(w), reg)
	snap := reg.Snapshot()
	if got := snap["msg.rolls"].(uint64); got != res.Rollbacks {
		t.Errorf("msg.rolls %d, result rollbacks %d", got, res.Rollbacks)
	}
	if got := snap["ckpt.checkpoints"].(uint64); got != res.Ckpt.Checkpoints {
		t.Errorf("ckpt.checkpoints %d, result %d", got, res.Ckpt.Checkpoints)
	}
	if got := snap["ckpt.recoveries"].(uint64); got != res.Ckpt.Recoveries {
		t.Errorf("ckpt.recoveries %d, result %d", got, res.Ckpt.Recoveries)
	}
	if got := snap["spec.rollbacks"].(uint64); got == 0 {
		t.Error("spec.rollbacks is zero although the fault script forced rollbacks")
	}
	if got := snap["msg.failures"].(uint64); got != uint64(len(multiFailureScript(w).Events)) {
		t.Errorf("msg.failures %d, want %d", got, len(multiFailureScript(w).Events))
	}
}
