package apps

import (
	"fmt"

	"repro/internal/fir"
	"repro/internal/lang"
	"repro/internal/rt"
	"repro/internal/workload"
)

// taskfarm is a master–worker farm: node 0 scatters task seeds to the
// workers round-robin and gathers results in deterministic task order;
// workers solve each task speculatively — speculate/abort Figure-1
// style: the fast iterative path runs inside a speculation and a
// deterministic "divergence" aborts it, restoring the scratch heap and
// falling back to the slow path. Task retry after a node loss is
// idempotent by construction: the keyed (src, dst, task) send/recv pairs
// replay bit-exactly when the master and survivors roll back and a
// resurrected worker resumes from its checkpoint.
//
// Size = tasks per batch; Aux unused. Node 0 is the master.
type taskfarm struct{}

func (taskfarm) Name() string { return "taskfarm" }

func (taskfarm) Description() string {
	return "master-worker task farm: speculative per-task solve with abort fallback, idempotent retry after node loss (Size=tasks/batch)"
}

func (taskfarm) Defaults() workload.Params {
	return workload.Params{Nodes: 3, Size: 6, Steps: 6, CheckpointInterval: 2}
}

func (taskfarm) Validate(p workload.Params) error {
	switch {
	case p.Nodes < 2:
		return fmt.Errorf("taskfarm: need a master and at least one worker, have %d nodes", p.Nodes)
	case p.Size < 1:
		return fmt.Errorf("taskfarm: batch size %d too small", p.Size)
	case p.Steps < 1:
		return fmt.Errorf("taskfarm: need at least one batch, have %d", p.Steps)
	case p.CheckpointInterval < 1:
		return fmt.Errorf("taskfarm: checkpoint interval %d must be positive", p.CheckpointInterval)
	}
	return nil
}

// taskfarmSource is the per-node MojC program. Arguments: getarg(0)=
// nodes, 1=tasks per batch, 2=batches, 3=checkpoint_interval. Node 0 is
// the master; tags are global task indices (identical for the task send
// and its result, distinguished by direction).
const taskfarmSource = `
// Solve one task. The fast path runs inside a speculation writing its
// iteration chain to scratch; a deterministic divergence aborts it
// (Figure 1 style: the heap rolls back and speculate() re-enters
// non-positive), taking the slow fallback instead.
int solve(int seed, ptr scratch) {
	int id = speculate();
	if (id > 0) {
		scratch[0] = seed;
		for (int k = 1; k < 8; k += 1) {
			scratch[k] = (scratch[k - 1] * 1103515245 + 12345) % 2147483647;
		}
		int v = scratch[7] % 100000;
		if ((v % 7) == 0) {
			abort(id); // divergence: discard the scratch writes, re-enter
		}
		commit(id);
		return v;
	}
	// Fallback after the abort path.
	int acc = seed;
	for (int k = 0; k < 20; k += 1) {
		acc = (acc * 31 + k) % 999983;
	}
	return acc;
}

int main() {
	int nodes = getarg(0);
	int batch = getarg(1);
	int batches = getarg(2);
	int cki = getarg(3);
	int me = node_id();
	int workers = nodes - 1;

	ptr buf = alloc(1);
	ptr scratch = alloc(8);
	int checksum = 0;
	int specid = speculate();
	int b = 1;
	while (b <= batches) {
		int err = 0;
		if (me == 0) {
			// Master: scatter this batch's task seeds round-robin...
			for (int j = 0; j < batch; j += 1) {
				int t = (b - 1) * batch + j;
				int w = 1 + (t % workers);
				buf[0] = (t * 2654435761) % 1000003;
				err = msg_send(w, t, buf, 0, 1);
				if (err != 0) { break; }
			}
			// ...then gather results in deterministic task order.
			if (err == 0) {
				for (int j = 0; j < batch; j += 1) {
					int t = (b - 1) * batch + j;
					int w = 1 + (t % workers);
					err = msg_recv(w, t, buf, 0, 1);
					if (err != 0) { break; }
					checksum = (checksum * 31 + buf[0]) % 1000000007;
				}
			}
		} else {
			// Worker: serve my share of the batch, in task order.
			for (int j = 0; j < batch; j += 1) {
				int t = (b - 1) * batch + j;
				if ((1 + (t % workers)) == me) {
					err = msg_recv(0, t, buf, 0, 1);
					if (err != 0) { break; }
					int v = solve(buf[0], scratch);
					buf[0] = v;
					checksum = (checksum * 17 + v) % 1000000007;
					err = msg_send(0, t, buf, 0, 1);
					if (err != 0) { break; }
				}
			}
		}
		if (err == 1) {
			retry(specid); // MSG_ROLL: re-run the batch from the speculation
		}
		if (err == 2) {
			return -1; // shutdown
		}
		if (b % cki == 0) {
			commit(specid);
			ptr name = ck_name();
			migrate(name);
			msg_gc(b * batch); // tasks before the next batch are dead
			specid = speculate();
		}
		b += 1;
	}
	commit(specid);
	return checksum;
}
`

func (taskfarm) Program(p workload.Params) (*fir.Program, error) {
	return lang.Compile(taskfarmSource, externSigs())
}

func (taskfarm) NodeArgs(p workload.Params) []int64 {
	return []int64{int64(p.Nodes), int64(p.Size), int64(p.Steps), int64(p.CheckpointInterval)}
}

func (taskfarm) StartNodes(p workload.Params) []int64 { return workload.Range(p.Nodes) }
func (taskfarm) SpareNodes(p workload.Params) []int64 { return nil }

func (taskfarm) CheckpointName(node int64) string {
	return fmt.Sprintf("taskfarm-ck-%d", node)
}

func (t taskfarm) Externs(p workload.Params, node int64) rt.Registry {
	return workload.CkExtern(t.CheckpointName(node))
}

// solveRef mirrors the MojC solve exactly: fast path unless the
// deterministic divergence fires, then the slow fallback.
func solveRef(seed int64) int64 {
	x := seed
	for k := 1; k < 8; k++ {
		x = (x*1103515245 + 12345) % 2147483647
	}
	v := x % 100000
	if v%7 != 0 {
		return v
	}
	acc := seed
	for k := int64(0); k < 20; k++ {
		acc = (acc*31 + k) % 999983
	}
	return acc
}

// Reference replays the farm sequentially: the master's checksum folds
// every result in task order; each worker's checksum folds its own
// results in its serving order.
func (taskfarm) Reference(p workload.Params) map[int64]int64 {
	workers := int64(p.Nodes - 1)
	out := make(map[int64]int64, p.Nodes)
	sums := make(map[int64]int64, p.Nodes)
	for t := int64(0); t < int64(p.Steps*p.Size); t++ {
		w := 1 + t%workers
		seed := (t * 2654435761) % 1000003
		v := solveRef(seed)
		sums[0] = (sums[0]*31 + v) % 1000000007
		sums[w] = (sums[w]*17 + v) % 1000000007
	}
	for n := int64(0); n < int64(p.Nodes); n++ {
		out[n] = sums[n]
	}
	return out
}

func (t taskfarm) Verify(p workload.Params, nodes map[int64]workload.NodeResult) error {
	return workload.VerifyHalted(t.Reference(p), nodes)
}
