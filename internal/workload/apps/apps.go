// Package apps is the workload library: it registers every shipped
// application with the workload registry. Importing it (usually blank,
// from a main or a test) makes grid, allreduce, taskfarm and pipeline
// available to workload.Get / cmd/mojrun -app.
//
// Each workload is a named package of {MojC program, typed parameters,
// bit-exact sequential Go reference, result verifier}; the three
// non-grid applications deliberately exercise machinery the paper's §2
// grid program never touches:
//
//   - allreduce: a ring global reduction — a failure mid-collective rolls
//     every node back to the last speculation and the keyed idempotent
//     phases replay bit-exactly.
//   - taskfarm: a master–worker farm whose workers solve each task
//     speculatively (speculate/abort Figure-1 style: a deterministic
//     divergence aborts the fast path and falls back), and whose task
//     retry after a node loss is idempotent by construction.
//   - pipeline: a multi-stage dataflow pipeline whose middle stage
//     executes migrate("node://K") mid-run, handing itself off to a spare
//     node while both neighbours reroute at the same batch boundary.
//   - kvserve: a replicated key-value serving tier — a front-end drives
//     a deterministic request stream at shard servers that replicate
//     every write to a ring-successor backup, and the hot shard
//     live-migrates to a spare mid-run.
package apps

import (
	"repro/internal/cluster"
	"repro/internal/fir"
	"repro/internal/grid"
	"repro/internal/workload"
)

func init() {
	workload.Register(grid.W{})
	workload.Register(allreduce{})
	workload.Register(taskfarm{})
	workload.Register(pipeline{})
	workload.Register(kvserve{})
}

// externSigs returns the cluster extern signatures plus ck_name and any
// extra ptr-returning externs the app declares.
func externSigs(extra ...string) map[string]fir.ExternSig {
	sigs := cluster.Externs()
	sigs["ck_name"] = fir.ExternSig{Result: fir.TyPtr}
	for _, n := range extra {
		sigs[n] = fir.ExternSig{Result: fir.TyPtr}
	}
	return sigs
}
