package apps

import (
	"fmt"

	"repro/internal/fir"
	"repro/internal/lang"
	"repro/internal/rt"
	"repro/internal/workload"
)

// kvserve is a replicated key-value serving workload: node 0 is the
// front-end driving a deterministic client request stream, nodes
// 1..Nodes-2 are shard servers, node Nodes-1 is a spare. Every request
// targets a key; the owning shard applies it (writes update the primary
// store, reads return the current value), replies to the front-end, and
// forwards each write to the key's backup shard, which applies it to its
// replica store — so the digests prove both the serving order and the
// replication traffic were bit-exact. speculate/commit wraps request
// batches; at the batch given by Aux (a checkpoint boundary) the hot
// shard — shard 1, which the skewed key distribution sends about half of
// all traffic to — live-migrates to the spare node while the front-end
// and the other shards reroute to it, mid-run, without dropping a
// request.
//
// Size = requests per batch; Steps = batches; Aux = migration batch.
// The key space is fixed at 16 keys; key k is owned by shard
// 1 + (k % shards) and backed up by the next shard in the ring.
type kvserve struct{}

func (kvserve) Name() string { return "kvserve" }

func (kvserve) Description() string {
	return "replicated KV store under a deterministic client stream: speculative request batches, write replication, hot-shard migration to a spare (Size=requests/batch, Aux=migration batch)"
}

func (kvserve) Defaults() workload.Params {
	return workload.Params{Nodes: 4, Size: 6, Aux: 4, Steps: 8, CheckpointInterval: 2}
}

func (kvserve) Validate(p workload.Params) error {
	shards := p.Nodes - 2
	switch {
	case shards < 2:
		return fmt.Errorf("kvserve: need a front-end, at least two shards and a spare, have %d nodes", p.Nodes)
	case p.Size < 1:
		return fmt.Errorf("kvserve: batch size %d too small", p.Size)
	case p.Steps < 1:
		return fmt.Errorf("kvserve: need at least one batch, have %d", p.Steps)
	case p.CheckpointInterval < 1:
		return fmt.Errorf("kvserve: checkpoint interval %d must be positive", p.CheckpointInterval)
	case p.Aux < 1 || p.Aux > p.Steps:
		return fmt.Errorf("kvserve: migration batch %d must be within the %d batches", p.Aux, p.Steps)
	case p.Aux%p.CheckpointInterval != 0:
		return fmt.Errorf("kvserve: migration batch %d must be a checkpoint boundary (interval %d)", p.Aux, p.CheckpointInterval)
	}
	return nil
}

// kvserveSource is the per-node MojC program. Arguments: getarg(0)=
// nodes, 1=requests per batch, 2=batches, 3=checkpoint_interval,
// 4=migration batch. Request t occupies three tags: t*3 (request),
// t*3+1 (reply), t*3+2 (write replication). Every node recomputes the
// request stream locally (SPMD), so shards know which requests they own
// or back up without any coordination traffic.
const kvserveSource = `
// The node hosting shard s during batch b: the hot shard (1) moves to
// the spare after the migration batch.
int shard_node(int s, int b, int spare, int mb) {
	if (s == 1) {
		if (b > mb) {
			return spare;
		}
	}
	return s;
}

int req_x(int t) {
	return ((t * 2654435761) + 12345) % 1000003;
}

// Request t's key: skewed so about half of all requests land on keys
// owned by shard 1 — the hot shard the migration moves.
int req_key(int t, int shards) {
	int x = req_x(t);
	int k = x % 16;
	if ((x % 4) < 2) {
		k = k - (k % shards);
	}
	return k;
}

// 1 = write, 0 = read.
int req_wr(int t) {
	if ((req_x(t) % 3) == 0) {
		return 1;
	}
	return 0;
}

int req_val(int t) {
	return ((req_x(t) * 7) + 3) % 100003;
}

int main() {
	int nodes = getarg(0);
	int size = getarg(1);
	int batches = getarg(2);
	int cki = getarg(3);
	int mb = getarg(4);
	int shards = nodes - 2;
	int spare = nodes - 1;
	int me = node_id(); // shard identity: stable across the migration

	ptr buf = alloc(3);
	ptr store = alloc(16);
	ptr replica = alloc(16);
	for (int k = 0; k < 16; k += 1) {
		store[k] = 0;
		replica[k] = 0;
	}
	int served = 0;
	int replicated = 0;
	int respsum = 0;
	int specid = speculate();
	int b = 1;
	while (b <= batches) {
		int err = 0;
		if (me == 0) {
			// Front-end: scatter this batch's requests to their owners...
			for (int j = 0; j < size; j += 1) {
				int t = ((b - 1) * size) + j;
				int k = req_key(t, shards);
				int ow = 1 + (k % shards);
				buf[0] = req_wr(t);
				buf[1] = k;
				buf[2] = req_val(t);
				err = msg_send(shard_node(ow, b, spare, mb), t * 3, buf, 0, 3);
				if (err != 0) { break; }
			}
			// ...then gather replies in request order.
			if (err == 0) {
				for (int j = 0; j < size; j += 1) {
					int t = ((b - 1) * size) + j;
					int k = req_key(t, shards);
					int ow = 1 + (k % shards);
					err = msg_recv(shard_node(ow, b, spare, mb), (t * 3) + 1, buf, 0, 1);
					if (err != 0) { break; }
					respsum = ((respsum * 31) + buf[0]) % 1000000007;
				}
			}
		} else {
			// Shard: serve owned requests, apply replicated writes, in
			// global request order.
			for (int j = 0; j < size; j += 1) {
				int t = ((b - 1) * size) + j;
				int k = req_key(t, shards);
				int ow = 1 + (k % shards);
				int bk = 1 + (((k % shards) + 1) % shards);
				int wr = req_wr(t);
				if (ow == me) {
					err = msg_recv(0, t * 3, buf, 0, 3);
					if (err != 0) { break; }
					if (buf[0] == 1) {
						store[buf[1]] = buf[2];
					}
					buf[0] = store[k];
					err = msg_send(0, (t * 3) + 1, buf, 0, 1);
					if (err != 0) { break; }
					served += 1;
					if (wr == 1) {
						buf[0] = k;
						buf[1] = req_val(t);
						err = msg_send(shard_node(bk, b, spare, mb), (t * 3) + 2, buf, 0, 2);
						if (err != 0) { break; }
					}
				} else {
					if (bk == me) {
						if (wr == 1) {
							err = msg_recv(shard_node(ow, b, spare, mb), (t * 3) + 2, buf, 0, 2);
							if (err != 0) { break; }
							replica[buf[0]] = buf[1];
							replicated += 1;
						}
					}
				}
			}
		}
		if (err == 1) {
			retry(specid); // MSG_ROLL: re-run the batch from the speculation
		}
		if (err == 2) {
			return -1; // shutdown
		}
		if (b % cki == 0) {
			commit(specid);
			if (me == 1) {
				if (b == mb) {
					// Hand the hot shard off to the spare node mid-run. The
					// post-migration speculation below is the rollback
					// point, so no retry ever re-crosses the migrate.
					migrate(spare_target());
				}
			}
			ptr name = ck_name();
			migrate(name);
			msg_gc(b * size * 3); // requests before the next batch are dead
			specid = speculate();
		}
		b += 1;
	}
	commit(specid);
	if (me == 0) {
		return respsum;
	}
	int digest = (served * 131) + (replicated * 17);
	for (int k = 0; k < 16; k += 1) {
		digest = ((digest * 31) + store[k] + (7 * replica[k]) + 1) % 1000000007;
	}
	return digest;
}
`

func (kvserve) Program(p workload.Params) (*fir.Program, error) {
	return lang.Compile(kvserveSource, externSigs("spare_target"))
}

func (kvserve) NodeArgs(p workload.Params) []int64 {
	return []int64{int64(p.Nodes), int64(p.Size), int64(p.Steps), int64(p.CheckpointInterval), int64(p.Aux)}
}

// StartNodes are the front-end and the shard nodes; the spare exists
// only to be migrated to.
func (kvserve) StartNodes(p workload.Params) []int64 { return workload.Range(p.Nodes - 1) }

func (kvserve) SpareNodes(p workload.Params) []int64 { return []int64{int64(p.Nodes - 1)} }

func (kvserve) CheckpointName(node int64) string {
	return fmt.Sprintf("kvserve-ck-%d", node)
}

func (k kvserve) Externs(p workload.Params, node int64) rt.Registry {
	reg := workload.CkExtern(k.CheckpointName(node))
	reg["spare_target"] = workload.StrExtern(fmt.Sprintf("node://%d", p.Nodes-1))
	return reg
}

// kvReq mirrors the MojC request-stream functions exactly.
func kvReq(t, shards int64) (key, wr, val int64) {
	x := ((t*2654435761)+12345) % 1000003
	key = x % 16
	if x%4 < 2 {
		key -= key % shards
	}
	wr = 0
	if x%3 == 0 {
		wr = 1
	}
	val = ((x*7)+3) % 100003
	return key, wr, val
}

// Reference replays the serving run sequentially: per-shard primary and
// replica stores, serve/replication counters, and the front-end's reply
// checksum, all folded in global request order.
func (kvserve) Reference(p workload.Params) map[int64]int64 {
	shards := int64(p.Nodes - 2)
	spare := int64(p.Nodes - 1)
	stores := make(map[int64][]int64, shards)
	replicas := make(map[int64][]int64, shards)
	served := make(map[int64]int64, shards)
	replicated := make(map[int64]int64, shards)
	for s := int64(1); s <= shards; s++ {
		stores[s] = make([]int64, 16)
		replicas[s] = make([]int64, 16)
	}
	respsum := int64(0)
	for t := int64(0); t < int64(p.Steps*p.Size); t++ {
		key, wr, val := kvReq(t, shards)
		ow := 1 + key%shards
		bk := 1 + ((key%shards)+1)%shards
		if wr == 1 {
			stores[ow][key] = val
			replicas[bk][key] = val
			replicated[bk]++
		}
		served[ow]++
		respsum = ((respsum * 31) + stores[ow][key]) % 1000000007
	}
	out := make(map[int64]int64, p.Nodes-1)
	out[0] = respsum
	for s := int64(1); s <= shards; s++ {
		digest := (served[s] * 131) + (replicated[s] * 17)
		for k := 0; k < 16; k++ {
			digest = ((digest * 31) + stores[s][k] + (7 * replicas[s][k]) + 1) % 1000000007
		}
		node := s
		if s == 1 {
			node = spare // the hot shard halts on the spare it migrated to
		}
		out[node] = digest
	}
	return out
}

func (k kvserve) Verify(p workload.Params, nodes map[int64]workload.NodeResult) error {
	if err := workload.VerifyHalted(k.Reference(p), nodes); err != nil {
		return err
	}
	st, ok := nodes[1]
	if !ok {
		return fmt.Errorf("kvserve: hot shard node 1 reported no final state")
	}
	if st.Status != rt.StatusMigrated {
		return fmt.Errorf("kvserve: hot shard node 1 finished %s, want migrated to spare node %d", st.Status, p.Nodes-1)
	}
	return nil
}
