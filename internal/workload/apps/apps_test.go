package apps

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/transport"
	"repro/internal/workload"
)

// every registered workload, fetched through the registry like any
// embedder would.
func all(t *testing.T) []workload.Workload {
	t.Helper()
	names := workload.Names()
	if len(names) < 5 {
		t.Fatalf("registry has %v, want at least grid, allreduce, taskfarm, pipeline, kvserve", names)
	}
	out := make([]workload.Workload, 0, len(names))
	for _, n := range names {
		w, err := workload.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

// smallParams shrinks each app's defaults so the matrix stays fast.
func smallParams(w workload.Workload) workload.Params {
	switch w.Name() {
	case "grid":
		return workload.Params{Nodes: 3, Size: 4, Aux: 8, Steps: 12, CheckpointInterval: 4}
	case "allreduce":
		return workload.Params{Nodes: 3, Size: 4, Steps: 8, CheckpointInterval: 2}
	case "taskfarm":
		return workload.Params{Nodes: 3, Size: 4, Steps: 6, CheckpointInterval: 2}
	case "pipeline":
		return workload.Params{Nodes: 4, Size: 3, Aux: 4, Steps: 8, CheckpointInterval: 2}
	case "kvserve":
		return workload.Params{Nodes: 4, Size: 4, Aux: 4, Steps: 6, CheckpointInterval: 2}
	}
	return workload.Params{}
}

// multiFailureScript is each app's two-failure scenario: two different
// nodes die at different checkpoint counts, strictly in sequence.
func multiFailureScript(w workload.Workload) *workload.FaultScript {
	d := 20 * time.Millisecond
	switch w.Name() {
	case "grid":
		return &workload.FaultScript{Events: []workload.FaultEvent{
			{Node: 1, AfterCheckpoints: 1, Delay: d},
			{Node: 0, AfterCheckpoints: 2, Delay: d},
		}}
	case "allreduce":
		return &workload.FaultScript{Events: []workload.FaultEvent{
			{Node: 2, AfterCheckpoints: 1, Delay: d},
			{Node: 1, AfterCheckpoints: 2, Delay: d},
		}}
	case "taskfarm":
		// Kill a worker, then the master itself.
		return &workload.FaultScript{Events: []workload.FaultEvent{
			{Node: 1, AfterCheckpoints: 1, Delay: d},
			{Node: 0, AfterCheckpoints: 2, Delay: d},
		}}
	case "pipeline":
		// Kill the source, then the spare after the stage migrated to it.
		return &workload.FaultScript{Events: []workload.FaultEvent{
			{Node: 0, AfterCheckpoints: 1, Delay: d},
			{Node: 3, AfterCheckpoints: 1, Delay: d},
		}}
	case "kvserve":
		// Kill the hot shard before it migrates, then the spare hosting it
		// afterwards.
		return &workload.FaultScript{Events: []workload.FaultEvent{
			{Node: 1, AfterCheckpoints: 1, Delay: d},
			{Node: 3, AfterCheckpoints: 1, Delay: d},
		}}
	}
	return nil
}

// TestProgramsCompile: every registered workload's MojC program
// compiles.
func TestProgramsCompile(t *testing.T) {
	for _, w := range all(t) {
		if _, err := w.Program(w.Defaults()); err != nil {
			t.Errorf("%s: Program: %v", w.Name(), err)
		}
	}
}

// TestDefaultsValidate: every workload's defaults pass its own
// validation.
func TestDefaultsValidate(t *testing.T) {
	for _, w := range all(t) {
		if _, err := workload.Normalize(w, workload.Params{}); err != nil {
			t.Errorf("%s: defaults do not validate: %v", w.Name(), err)
		}
	}
}

// TestInProcessMatchesReference: every app, on every registered
// execution engine, with worker-pool widths 0 (unbounded), 1, 2 and 4,
// produces halt codes bit-identical to its sequential reference.
func TestInProcessMatchesReference(t *testing.T) {
	for _, w := range all(t) {
		w := w
		for _, eng := range engine.Names() {
			eng := eng
			for _, workers := range []int{0, 1, 2, 4} {
				workers := workers
				t.Run(fmt.Sprintf("%s/%s/workers=%d", w.Name(), eng, workers), func(t *testing.T) {
					t.Parallel()
					p := smallParams(w)
					p.Workers = workers
					p.Engine = eng
					if _, err := workload.RunVerified(w, p, workload.RunConfig{Timeout: time.Minute}); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestMultiFailureScriptConverges: every app survives a two-failure
// fault script — sequential kills of two different nodes, each
// resurrected from its checkpoint — and still matches its reference
// bit-exactly.
func TestMultiFailureScriptConverges(t *testing.T) {
	for _, w := range all(t) {
		w := w
		for _, eng := range engine.Names() {
			eng := eng
			for _, workers := range []int{0, 2} {
				workers := workers
				t.Run(fmt.Sprintf("%s/%s/workers=%d", w.Name(), eng, workers), func(t *testing.T) {
					t.Parallel()
					p := smallParams(w)
					p.Workers = workers
					p.Engine = eng
					script := multiFailureScript(w)
					res, err := workload.RunVerified(w, p, workload.RunConfig{Script: script, Timeout: 2 * time.Minute})
					if err != nil {
						t.Fatal(err)
					}
					if res.Resurrections != len(script.Events) {
						t.Fatalf("resurrections = %d, want %d", res.Resurrections, len(script.Events))
					}
					if res.Rollbacks == 0 {
						t.Fatal("no MSG_ROLL deliveries: survivors never rolled back")
					}
				})
			}
		}
	}
}

// goSpawn runs distributed workers as goroutines against a real
// loopback hub — process-shaped in every way that matters (own router,
// own engine, own TCP connection) but cheap enough for unit tests.
func goSpawn(t *testing.T, w workload.Workload, p workload.Params) workload.SpawnFunc {
	t.Helper()
	return func(join string, node int64, resume string) error {
		go func() {
			cfg := workload.WorkerConfig{
				Join: join, Node: node, Params: p, Resume: resume,
				Timeout: time.Minute, RetryBase: 5 * time.Millisecond,
			}
			if _, err := workload.RunWorker(w, cfg); err != nil && err != workload.ErrNodeFailed {
				t.Errorf("%s worker %d (resume %q): %v", w.Name(), node, resume, err)
			}
		}()
		return nil
	}
}

// TestDistributedMatchesReference: every app over the TCP transport —
// one worker per node (plus spares for adoption) — produces results
// bit-identical to the sequential reference.
func TestDistributedMatchesReference(t *testing.T) {
	for _, w := range all(t) {
		w := w
		for _, eng := range engine.Names() {
			eng := eng
			t.Run(w.Name()+"/"+eng, func(t *testing.T) {
				t.Parallel()
				p := smallParams(w)
				p.Engine = eng
				res, err := workload.RunDistributed(w, p, nil,
					workload.DistributedConfig{Spawn: goSpawn(t, w, p)}, time.Minute)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Verify(p, res.Nodes); err != nil {
					t.Fatal(err)
				}
				if res.Resurrections != 0 {
					t.Fatalf("failure-free run saw %d resurrections", res.Resurrections)
				}
			})
		}
	}
}

// TestDistributedMultiFailureConverges: every app over the TCP
// transport survives its two-failure fault script (worker OS-process
// stand-ins killed and fresh ones resurrected from the shared store)
// and still matches the reference bit-exactly.
func TestDistributedMultiFailureConverges(t *testing.T) {
	for _, w := range all(t) {
		w := w
		for _, eng := range engine.Names() {
			eng := eng
			t.Run(w.Name()+"/"+eng, func(t *testing.T) {
				t.Parallel()
				p := smallParams(w)
				p.Engine = eng
				script := multiFailureScript(w)
				res, err := workload.RunDistributed(w, p, script,
					workload.DistributedConfig{Spawn: goSpawn(t, w, p)}, 2*time.Minute)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Verify(p, res.Nodes); err != nil {
					t.Fatal(err)
				}
				if res.Resurrections != len(script.Events) {
					t.Fatalf("resurrections = %d, want %d", res.Resurrections, len(script.Events))
				}
			})
		}
	}
}

// TestPipelineDistributedWithLinkFaults: the pipeline's cross-process
// stage handoff composes with frame-level link faults (every frame
// duplicated, small reorder window) — keyed idempotent delivery makes
// the result bit-identical anyway.
func TestPipelineDistributedWithLinkFaults(t *testing.T) {
	w, err := workload.Get("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams(w)
	spawn := func(join string, node int64, resume string) error {
		go func() {
			cfg := workload.WorkerConfig{
				Join: join, Node: node, Params: p, Resume: resume,
				Timeout: time.Minute, RetryBase: 5 * time.Millisecond,
				Fault: &transport.FaultSpec{
					Dup:           func(src, dst, tag int64, occ int) bool { return true },
					ReorderWindow: 2,
				},
			}
			if _, err := workload.RunWorker(w, cfg); err != nil && err != workload.ErrNodeFailed {
				t.Errorf("pipeline worker %d: %v", node, err)
			}
		}()
		return nil
	}
	res, err := workload.RunDistributed(w, p, nil,
		workload.DistributedConfig{Spawn: spawn}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(p, res.Nodes); err != nil {
		t.Fatal(err)
	}
}
