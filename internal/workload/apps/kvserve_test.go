package apps

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/transport"
	"repro/internal/workload"
)

func kvserveW(t *testing.T) workload.Workload {
	t.Helper()
	w, err := workload.Get("kvserve")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestKvservePartitionScriptConverges: the serving tier rides out a
// network partition that cuts the front-end off from half the shards.
// Deliveries crossing the cut are held, the cluster stalls, the heal
// releases them, and the result is still bit-identical to the reference.
func TestKvservePartitionScriptConverges(t *testing.T) {
	w := kvserveW(t)
	for _, eng := range engine.Names() {
		eng := eng
		t.Run(eng, func(t *testing.T) {
			t.Parallel()
			p := smallParams(w)
			p.Engine = eng
			script, err := workload.ParseScriptString("partition 0,1|2,3 after=2 heal=3\n")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := workload.RunVerified(w, p, workload.RunConfig{
				Script: script, Timeout: 2 * time.Minute,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestKvservePartitionPlusFailureConverges: a partition and a shard
// kill in the same script — the partition heals, then the hot shard
// dies and resurrects from its checkpoint.
func TestKvservePartitionPlusFailureConverges(t *testing.T) {
	w := kvserveW(t)
	p := smallParams(w)
	// The hot shard writes only one checkpoint under its own name before
	// migrating to the spare, so the kill must trigger on its first.
	script, err := workload.ParseScriptString(
		"partition 0,2|1,3 after=1 heal=2\n" +
			"fail 1@1 delay=10ms\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.RunVerified(w, p, workload.RunConfig{
		Script: script, Timeout: 2 * time.Minute, StallTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resurrections != 1 {
		t.Fatalf("resurrections = %d, want 1", res.Resurrections)
	}
}

// TestKvserveCrashResurrectConverges: the hot shard is re-killed inside
// its own resurrection window — the first revived incarnation is dead on
// arrival and a second resurrection completes the run bit-exactly.
func TestKvserveCrashResurrectConverges(t *testing.T) {
	w := kvserveW(t)
	for _, eng := range engine.Names() {
		eng := eng
		t.Run(eng, func(t *testing.T) {
			t.Parallel()
			p := smallParams(w)
			p.Engine = eng
			script, err := workload.ParseScriptString("crashresurrect 1@1 delay=10ms\n")
			if err != nil {
				t.Fatal(err)
			}
			res, err := workload.RunVerified(w, p, workload.RunConfig{
				Script: script, Timeout: 2 * time.Minute,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Resurrections != 1 {
				t.Fatalf("resurrections = %d, want 1", res.Resurrections)
			}
		})
	}
}

// TestKvserveCkDelayConverges: a kill whose resurrection is triggered by
// checkpoint progress (delay=ck:2) instead of wall-clock time — the
// fuzzer's scheduling-insensitive revive trigger.
func TestKvserveCkDelayConverges(t *testing.T) {
	w := kvserveW(t)
	p := smallParams(w)
	script, err := workload.ParseScriptString("fail 2@1 delay=ck:2\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.RunVerified(w, p, workload.RunConfig{
		Script: script, Timeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resurrections != 1 {
		t.Fatalf("resurrections = %d, want 1", res.Resurrections)
	}
}

// TestKvserveDistributedPartitionConverges: the same partition scenario
// over the TCP transport — the hub suppresses forwarding across the cut
// (its keyed buffer retains the frames) and the heal replays them.
func TestKvserveDistributedPartitionConverges(t *testing.T) {
	w := kvserveW(t)
	p := smallParams(w)
	script, err := workload.ParseScriptString("partition 0,1|2,3 after=2 heal=3\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.RunDistributed(w, p, script,
		workload.DistributedConfig{Spawn: goSpawn(t, w, p)}, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(p, res.Nodes); err != nil {
		t.Fatal(err)
	}
}

// TestKvserveDistributedCrashResurrectConverges: the crash-resurrect
// event over the TCP transport — the resurrection worker is re-killed
// right after it joins and a second worker finishes the run.
func TestKvserveDistributedCrashResurrectConverges(t *testing.T) {
	w := kvserveW(t)
	p := smallParams(w)
	script, err := workload.ParseScriptString("crashresurrect 1@1 delay=10ms\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.RunDistributed(w, p, script,
		workload.DistributedConfig{Spawn: goSpawn(t, w, p)}, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(p, res.Nodes); err != nil {
		t.Fatal(err)
	}
	if res.Resurrections != 1 {
		t.Fatalf("resurrections = %d, want 1", res.Resurrections)
	}
}

// TestKvserveDistributedKillWithHeldFrames: a scripted worker kill lands
// while that worker's fault injector is withholding frames (reorder
// window + latency skew on every link). Close-time flushing pushes the
// held frames into the socket before teardown; keyed idempotent delivery
// and the resurrection make the run converge bit-exactly anyway.
func TestKvserveDistributedKillWithHeldFrames(t *testing.T) {
	w := kvserveW(t)
	p := smallParams(w)
	specs := make(map[int64]*transport.FaultSpec)
	spawn := func(join string, node int64, resume string) error {
		spec := &transport.FaultSpec{
			ReorderWindow: 2,
			Hold: func(src, dst, tag int64, occ int) int {
				if tag%5 == 0 {
					return 2
				}
				return 0
			},
		}
		specs[node] = spec
		go func() {
			cfg := workload.WorkerConfig{
				Join: join, Node: node, Params: p, Resume: resume,
				Timeout: time.Minute, RetryBase: 5 * time.Millisecond,
				Fault: spec,
			}
			if _, err := workload.RunWorker(w, cfg); err != nil && err != workload.ErrNodeFailed {
				t.Errorf("kvserve worker %d (resume %q): %v", node, resume, err)
			}
		}()
		return nil
	}
	script, err := workload.ParseScriptString("fail 1@1 delay=5ms\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.RunDistributed(w, p, script,
		workload.DistributedConfig{Spawn: spawn}, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(p, res.Nodes); err != nil {
		t.Fatal(err)
	}
	held := 0
	for _, s := range specs {
		held += s.Held()
	}
	if held == 0 {
		t.Fatal("no frames were ever held: the latency-skew leg did not engage")
	}
}

// TestKvserveHotShardStaysHot sanity-checks the generator skew the
// workload's migration story depends on: shard 1 owns the majority
// request share.
func TestKvserveHotShardStaysHot(t *testing.T) {
	w := kvserveW(t)
	p, err := workload.Normalize(w, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	shards := int64(p.Nodes - 2)
	perShard := make(map[int64]int)
	total := p.Steps * p.Size
	for tt := int64(0); tt < int64(total); tt++ {
		key, _, _ := kvReq(tt, shards)
		perShard[1+key%shards]++
	}
	if hot := perShard[1]; hot*2 < total {
		t.Fatalf("shard 1 served %d of %d requests (%v): not hot", hot, total, perShard)
	}
}
