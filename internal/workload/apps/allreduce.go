package apps

import (
	"fmt"

	"repro/internal/fir"
	"repro/internal/lang"
	"repro/internal/rt"
	"repro/internal/workload"
)

// allreduce is a ring global reduction: every round, each node computes
// a local contribution vector and the ring circulates partial vectors
// for nodes-1 phases, each node accumulating what passes through — the
// classic allreduce, with a per-node floating-point accumulation order
// that the sequential reference replays bit-exactly. A failure
// mid-collective leaves some nodes holding partial phase state; MSG_ROLL
// rolls them back to the last speculation and the keyed idempotent
// phases replay, which is exactly the machinery the paper claims a few
// annotations buy.
//
// Size = vector length; Aux unused.
type allreduce struct{}

func (allreduce) Name() string { return "allreduce" }

func (allreduce) Description() string {
	return "ring allreduce: global vector reduction with rollback mid-collective (Size=vector length)"
}

func (allreduce) Defaults() workload.Params {
	return workload.Params{Nodes: 3, Size: 6, Steps: 8, CheckpointInterval: 2}
}

func (allreduce) Validate(p workload.Params) error {
	switch {
	case p.Nodes < 1:
		return fmt.Errorf("allreduce: need at least one node, have %d", p.Nodes)
	case p.Size < 1:
		return fmt.Errorf("allreduce: vector length %d too small", p.Size)
	case p.Steps < 1:
		return fmt.Errorf("allreduce: need at least one round, have %d", p.Steps)
	case p.CheckpointInterval < 1:
		return fmt.Errorf("allreduce: checkpoint interval %d must be positive", p.CheckpointInterval)
	}
	return nil
}

// allreduceSource is the per-node MojC program. Arguments: getarg(0)=
// nodes, 1=vector length, 2=rounds, 3=checkpoint_interval.
const allreduceSource = `
int main() {
	int nodes = getarg(0);
	int size = getarg(1);
	int rounds = getarg(2);
	int cki = getarg(3);
	int me = node_id();
	int next = (me + 1) % nodes;
	int prev = (me + nodes - 1) % nodes;

	fptr acc = falloc(size);
	fptr pass = falloc(size);
	fptr sum = falloc(size);
	for (int i = 0; i < size; i += 1) {
		acc[i] = float((me * 31 + i * 17) % 100);
	}
	float w = 0.5 / float(nodes);

	int specid = speculate();
	int round = 1;
	while (round <= rounds) {
		// Local contribution for this round.
		for (int i = 0; i < size; i += 1) {
			pass[i] = acc[i] + float((me + round + i) % 13);
			sum[i] = pass[i];
		}
		// Ring allreduce: circulate partials for nodes-1 phases. A failure
		// anywhere in the ring surfaces as MSG_ROLL mid-collective.
		int err = 0;
		for (int phase = 0; phase < nodes - 1; phase += 1) {
			err = msg_send(next, round * nodes + phase, pass, 0, size);
			if (err != 0) { break; }
			err = msg_recv(prev, round * nodes + phase, pass, 0, size);
			if (err != 0) { break; }
			for (int i = 0; i < size; i += 1) {
				sum[i] += pass[i];
			}
		}
		if (err == 1) {
			retry(specid); // MSG_ROLL: roll back to the last speculation
		}
		if (err == 2) {
			return -1; // shutdown
		}
		// Fold the global sum into the local state (kept bounded).
		for (int i = 0; i < size; i += 1) {
			acc[i] = acc[i] * 0.5 + sum[i] * w;
		}
		if (round % cki == 0) {
			commit(specid);
			ptr name = ck_name();
			migrate(name);
			msg_gc((round + 1) * nodes); // phases before the next round are dead
			specid = speculate();
		}
		round += 1;
	}
	commit(specid);
	float total = 0.0;
	for (int i = 0; i < size; i += 1) {
		total += acc[i];
	}
	return int(total / float(size) * 1000.0);
}
`

func (allreduce) Program(p workload.Params) (*fir.Program, error) {
	return lang.Compile(allreduceSource, externSigs())
}

func (allreduce) NodeArgs(p workload.Params) []int64 {
	return []int64{int64(p.Nodes), int64(p.Size), int64(p.Steps), int64(p.CheckpointInterval)}
}

func (allreduce) StartNodes(p workload.Params) []int64 { return workload.Range(p.Nodes) }
func (allreduce) SpareNodes(p workload.Params) []int64 { return nil }

func (allreduce) CheckpointName(node int64) string {
	return fmt.Sprintf("allreduce-ck-%d", node)
}

func (a allreduce) Externs(p workload.Params, node int64) rt.Registry {
	return workload.CkExtern(a.CheckpointName(node))
}

// Reference replays the identical floating-point operations in the same
// per-node order sequentially in Go.
func (allreduce) Reference(p workload.Params) map[int64]int64 {
	nodes, size := p.Nodes, p.Size
	acc := make([][]float64, nodes)
	for n := range acc {
		acc[n] = make([]float64, size)
		for i := 0; i < size; i++ {
			acc[n][i] = float64((n*31 + i*17) % 100)
		}
	}
	w := 0.5 / float64(nodes)
	for round := 1; round <= p.Steps; round++ {
		pass := make([][]float64, nodes)
		sum := make([][]float64, nodes)
		for n := 0; n < nodes; n++ {
			pass[n] = make([]float64, size)
			sum[n] = make([]float64, size)
			for i := 0; i < size; i++ {
				pass[n][i] = acc[n][i] + float64((n+round+i)%13)
				sum[n][i] = pass[n][i]
			}
		}
		for phase := 0; phase < nodes-1; phase++ {
			next := make([][]float64, nodes)
			for n := 0; n < nodes; n++ {
				prev := (n + nodes - 1) % nodes
				cp := make([]float64, size)
				copy(cp, pass[prev])
				next[n] = cp
			}
			pass = next
			for n := 0; n < nodes; n++ {
				for i := 0; i < size; i++ {
					sum[n][i] += pass[n][i]
				}
			}
		}
		for n := 0; n < nodes; n++ {
			for i := 0; i < size; i++ {
				// Separate statements mirror the interpreter's discrete FP
				// ops (no fused multiply-add).
				t1 := acc[n][i] * 0.5
				t2 := sum[n][i] * w
				acc[n][i] = t1 + t2
			}
		}
	}
	out := make(map[int64]int64, nodes)
	for n := 0; n < nodes; n++ {
		total := 0.0
		for i := 0; i < size; i++ {
			total += acc[n][i]
		}
		out[int64(n)] = int64(total / float64(size) * 1000.0)
	}
	return out
}

func (a allreduce) Verify(p workload.Params, nodes map[int64]workload.NodeResult) error {
	return workload.VerifyHalted(a.Reference(p), nodes)
}
