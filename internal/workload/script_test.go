package workload

import (
	"strings"
	"testing"
	"time"
)

func TestParseFailSpec(t *testing.T) {
	cases := []struct {
		spec string
		want FaultEvent
	}{
		{"1@2", FaultEvent{Node: 1, AfterCheckpoints: 2, Delay: DefaultRestartDelay}},
		{"0@4", FaultEvent{Node: 0, AfterCheckpoints: 4, Delay: DefaultRestartDelay}},
		{"3@1@50ms", FaultEvent{Node: 3, AfterCheckpoints: 1, Delay: 50 * time.Millisecond}},
		{"2@7@0s", FaultEvent{Node: 2, AfterCheckpoints: 7, Delay: 0}},
	}
	for _, c := range cases {
		got, err := ParseFailSpec(c.spec)
		if err != nil {
			t.Errorf("ParseFailSpec(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseFailSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseFailSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",        // empty
		"1",       // no separator
		"@",       // both halves empty
		"x@2",     // bad node
		"-1@2",    // negative node
		"1@y",     // bad count
		"1@0",     // count must be positive
		"1@-2",    // negative count
		"1@2@zz",  // bad delay
		"1@2@3@4", // too many fields
		"1@2@-5s", // negative delay
	} {
		if ev, err := ParseFailSpec(spec); err == nil {
			t.Errorf("ParseFailSpec(%q) accepted: %+v", spec, ev)
		}
	}
}

func TestParseScript(t *testing.T) {
	src := `
# a two-failure scenario
fail 1@2

fail 0@4 delay=50ms   # trailing comment
`
	s, err := ParseScriptString(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{Node: 1, AfterCheckpoints: 2, Delay: DefaultRestartDelay},
		{Node: 0, AfterCheckpoints: 4, Delay: 50 * time.Millisecond},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("events = %+v, want %+v", s.Events, want)
	}
	for i := range want {
		if s.Events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, s.Events[i], want[i])
		}
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, src := range []string{
		"resurrect 1",             // unknown verb
		"fail",                    // missing spec
		"fail 1@2 delay",          // malformed option
		"fail 1@2 after=5ms",      // unknown option
		"fail 1@2 delay=xx",       // bad duration
		"fail 1@2 delay=1s extra", // too many fields
	} {
		if s, err := ParseScriptString(src); err == nil {
			t.Errorf("ParseScriptString(%q) accepted: %+v", src, s.Events)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("ParseScriptString(%q) error lacks line number: %v", src, err)
		}
	}
}

func TestOneFailureSugar(t *testing.T) {
	s := OneFailure(2, 3, time.Second)
	if len(s.Events) != 1 || s.Events[0] != (FaultEvent{Node: 2, AfterCheckpoints: 3, Delay: time.Second}) {
		t.Fatalf("OneFailure = %+v", s.Events)
	}
}

// TestScriptDriverSequencing pins the scenario engine's ordering
// contract: event i+1 arms only after event i's resurrection completed,
// even when its own trigger count was reached earlier.
func TestScriptDriverSequencing(t *testing.T) {
	script := &FaultScript{Events: []FaultEvent{
		{Node: 1, AfterCheckpoints: 1},
		{Node: 2, AfterCheckpoints: 1},
	}}
	var mu struct {
		failed      []int64
		resurrected []int64
	}
	release := make(chan struct{})
	d := newScriptDriver(script,
		func(n int64) string { return "ck" + string(rune('0'+n)) },
		func(n int64) { mu.failed = append(mu.failed, n) },
		func(n int64, ck string) error {
			<-release
			mu.resurrected = append(mu.resurrected, n)
			return nil
		})

	// Both triggers satisfied immediately; only event 0 may fire.
	d.OnPut("ck1", 1)
	d.OnPut("ck2", 1)
	if len(mu.failed) != 1 || mu.failed[0] != 1 {
		t.Fatalf("failed = %v, want just node 1", mu.failed)
	}
	close(release) // let both resurrections run
	deadline := time.Now().Add(5 * time.Second)
	for {
		fired, err := d.finish()
		if err == nil && fired == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("script never completed: fired=%d err=%v (failed=%v resurrected=%v)",
				fired, err, mu.failed, mu.resurrected)
		}
		time.Sleep(time.Millisecond)
	}
	if len(mu.failed) != 2 || mu.failed[1] != 2 {
		t.Fatalf("failed = %v, want [1 2]", mu.failed)
	}
	if len(mu.resurrected) != 2 || mu.resurrected[0] != 1 || mu.resurrected[1] != 2 {
		t.Fatalf("resurrected = %v, want [1 2]", mu.resurrected)
	}
}
