package workload

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseFailSpec(t *testing.T) {
	cases := []struct {
		spec string
		want FaultEvent
	}{
		{"1@2", FaultEvent{Node: 1, AfterCheckpoints: 2, Delay: DefaultRestartDelay}},
		{"0@4", FaultEvent{Node: 0, AfterCheckpoints: 4, Delay: DefaultRestartDelay}},
		{"3@1@50ms", FaultEvent{Node: 3, AfterCheckpoints: 1, Delay: 50 * time.Millisecond}},
		{"2@7@0s", FaultEvent{Node: 2, AfterCheckpoints: 7, Delay: 0}},
	}
	for _, c := range cases {
		got, err := ParseFailSpec(c.spec)
		if err != nil {
			t.Errorf("ParseFailSpec(%q): %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseFailSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseFailSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",        // empty
		"1",       // no separator
		"@",       // both halves empty
		"x@2",     // bad node
		"-1@2",    // negative node
		"1@y",     // bad count
		"1@0",     // count must be positive
		"1@-2",    // negative count
		"1@2@zz",  // bad delay
		"1@2@3@4", // too many fields
		"1@2@-5s", // negative delay
	} {
		if ev, err := ParseFailSpec(spec); err == nil {
			t.Errorf("ParseFailSpec(%q) accepted: %+v", spec, ev)
		}
	}
}

func TestParseScript(t *testing.T) {
	src := `
# a two-failure scenario
fail 1@2

fail 0@4 delay=50ms   # trailing comment
`
	s, err := ParseScriptString(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{Node: 1, AfterCheckpoints: 2, Delay: DefaultRestartDelay},
		{Node: 0, AfterCheckpoints: 4, Delay: 50 * time.Millisecond},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("events = %+v, want %+v", s.Events, want)
	}
	for i := range want {
		if !reflect.DeepEqual(s.Events[i], want[i]) {
			t.Errorf("event %d = %+v, want %+v", i, s.Events[i], want[i])
		}
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, src := range []string{
		"resurrect 1",             // unknown verb
		"fail",                    // missing spec
		"fail 1@2 delay",          // malformed option
		"fail 1@2 after=5ms",      // unknown option
		"fail 1@2 delay=xx",       // bad duration
		"fail 1@2 delay=1s extra", // too many fields
	} {
		if s, err := ParseScriptString(src); err == nil {
			t.Errorf("ParseScriptString(%q) accepted: %+v", src, s.Events)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("ParseScriptString(%q) error lacks line number: %v", src, err)
		}
	}
}

func TestOneFailureSugar(t *testing.T) {
	s := OneFailure(2, 3, time.Second)
	if len(s.Events) != 1 || !reflect.DeepEqual(s.Events[0], FaultEvent{Node: 2, AfterCheckpoints: 3, Delay: time.Second}) {
		t.Fatalf("OneFailure = %+v", s.Events)
	}
}

// TestScriptDriverSequencing pins the scenario engine's ordering
// contract: event i+1 arms only after event i's resurrection completed,
// even when its own trigger count was reached earlier.
func TestScriptDriverSequencing(t *testing.T) {
	script := &FaultScript{Events: []FaultEvent{
		{Node: 1, AfterCheckpoints: 1},
		{Node: 2, AfterCheckpoints: 1},
	}}
	var mu struct {
		failed      []int64
		resurrected []int64
	}
	release := make(chan struct{})
	d := newScriptDriver(script,
		func(n int64) string { return "ck" + string(rune('0'+n)) },
		func(n int64) { mu.failed = append(mu.failed, n) },
		func(n int64, ck string) error {
			<-release
			mu.resurrected = append(mu.resurrected, n)
			return nil
		})

	// Both triggers satisfied immediately; only event 0 may fire.
	d.OnPut("ck1", 1)
	d.OnPut("ck2", 1)
	if len(mu.failed) != 1 || mu.failed[0] != 1 {
		t.Fatalf("failed = %v, want just node 1", mu.failed)
	}
	close(release) // let both resurrections run
	deadline := time.Now().Add(5 * time.Second)
	for {
		fired, err := d.finish()
		if err == nil && fired == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("script never completed: fired=%d err=%v (failed=%v resurrected=%v)",
				fired, err, mu.failed, mu.resurrected)
		}
		time.Sleep(time.Millisecond)
	}
	if len(mu.failed) != 2 || mu.failed[1] != 2 {
		t.Fatalf("failed = %v, want [1 2]", mu.failed)
	}
	if len(mu.resurrected) != 2 || mu.resurrected[0] != 1 || mu.resurrected[1] != 2 {
		t.Fatalf("resurrected = %v, want [1 2]", mu.resurrected)
	}
}

// TestParseScriptNewKinds covers the crashresurrect / partition /
// delay=ck: grammar.
func TestParseScriptNewKinds(t *testing.T) {
	src := `
fail 2@1 delay=ck:2
crashresurrect 1@3 delay=ck:1
crashresurrect 0@2 delay=10ms
partition 0,1|2 after=2 heal=4
partition 3|0,1,2 heal=1
storekill 1@5 delay=never
`
	s, err := ParseScriptString(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{Node: 2, AfterCheckpoints: 1, DelayCk: 2},
		{Node: 1, AfterCheckpoints: 3, Kind: KindCrashResurrect, DelayCk: 1},
		{Node: 0, AfterCheckpoints: 2, Kind: KindCrashResurrect, Delay: 10 * time.Millisecond},
		{Kind: KindPartition, SetA: []int64{0, 1}, SetB: []int64{2}, AfterCheckpoints: 2, HealWrites: 4},
		{Kind: KindPartition, SetA: []int64{3}, SetB: []int64{0, 1, 2}, AfterCheckpoints: 1, HealWrites: 1},
		{Node: 1, AfterCheckpoints: 5, Kind: KindStoreKill, NoRevive: true, Delay: DefaultRestartDelay},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("events = %+v, want %+v", s.Events, want)
	}
	for i := range want {
		if !reflect.DeepEqual(s.Events[i], want[i]) {
			t.Errorf("event %d = %+v, want %+v", i, s.Events[i], want[i])
		}
	}
}

// TestParseScriptMalformed: every malformed form is rejected with its
// line number, including the new partition / crashresurrect grammar.
func TestParseScriptMalformed(t *testing.T) {
	cases := []struct {
		src  string
		line string // expected "line N" fragment
	}{
		{"resurrect 1", "line 1"},                        // unknown event kind
		{"fail 1@2\nnuke 0@1", "line 2"},                 // unknown kind, later line
		{"fail 1@2 delay=ck:", "line 1"},                 // empty ck count
		{"fail 1@2 delay=ck:0", "line 1"},                // ck count must be positive
		{"fail 1@2 delay=ck:x", "line 1"},                // ck count not a number
		{"\n\nfail 1@2 delay=zz", "line 3"},              // bad duration, line 3
		{"crashresurrect 1", "line 1"},                   // missing spec
		{"crashresurrect 1@2 delay=never", "line 1"},     // never is storekill-only
		{"crashresurrect x@2", "line 1"},                 // bad node
		{"storekill 1@2 delay=ck:3", "line 1"},           // ck delay is not for storekill
		{"partition 0,1", "line 1"},                      // missing heal=
		{"partition 0,1|2", "line 1"},                    // still missing heal=
		{"partition 0,1|2 heal=", "line 1"},              // malformed heal arg
		{"partition 0,1|2 heal=x", "line 1"},             // heal not a number
		{"partition 0,1|2 heal=0", "line 1"},             // heal must be positive
		{"partition 0,1|2 heal=-3", "line 1"},            // negative heal
		{"partition 0,1|2 after=0 heal=2", "line 1"},     // after must be positive
		{"partition 0,1|2 after=x heal=2", "line 1"},     // after not a number
		{"partition 0|1 wedge=3 heal=2", "line 1"},       // unknown option
		{"partition 0,x|2 heal=2", "line 1"},             // bad node in set
		{"partition |2 heal=2", "line 1"},                // empty left set
		{"partition 0,1 2 heal=2", "line 1"},             // no | separator
		{"partition 0,1|1,2 heal=2", "line 1"},           // overlapping sets
		{"fail 1@2\npartition 0|1,x heal=2", "line 2"},   // bad set, line 2
	}
	for _, c := range cases {
		s, err := ParseScriptString(c.src)
		if err == nil {
			t.Errorf("ParseScriptString(%q) accepted: %+v", c.src, s.Events)
			continue
		}
		if !strings.Contains(err.Error(), c.line) {
			t.Errorf("ParseScriptString(%q) error lacks %q: %v", c.src, c.line, err)
		}
	}
}

// TestFormatScriptRoundTrip: FormatScript output re-parses to the same
// events — the contract repro files rely on.
func TestFormatScriptRoundTrip(t *testing.T) {
	src := &FaultScript{Events: []FaultEvent{
		{Node: 1, AfterCheckpoints: 2, Delay: DefaultRestartDelay},
		{Node: 2, AfterCheckpoints: 1, DelayCk: 3},
		{Node: 0, AfterCheckpoints: 1, Kind: KindCrashResurrect, DelayCk: 1},
		{Kind: KindPartition, SetA: []int64{0, 2}, SetB: []int64{1}, AfterCheckpoints: 2, HealWrites: 4},
		{Node: 1, AfterCheckpoints: 4, Kind: KindStoreKill, NoRevive: true, Delay: DefaultRestartDelay},
		{Node: 0, AfterCheckpoints: 3, Kind: KindStoreKill, Delay: 10 * time.Millisecond},
	}}
	text := FormatScript(src)
	back, err := ParseScriptString(text)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", text, err)
	}
	if !reflect.DeepEqual(back.Events, src.Events) {
		t.Fatalf("round trip:\n%s\ngot  %+v\nwant %+v", text, back.Events, src.Events)
	}
}

// TestScriptDriverCkDelay: a delay=ck:N resurrection fires once N further
// store writes land, not on a wall clock.
func TestScriptDriverCkDelay(t *testing.T) {
	script := &FaultScript{Events: []FaultEvent{
		{Node: 1, AfterCheckpoints: 1, DelayCk: 2},
	}}
	resurrected := make(chan int64, 1)
	d := newScriptDriver(script,
		func(n int64) string { return "ck1" },
		func(n int64) {},
		func(n int64, ck string) error { resurrected <- n; return nil })
	d.setStallTimeout(30 * time.Second) // the puts below must be the trigger
	d.OnPut("ck1", 1)                   // fires the kill; resurrect waits for 2 more puts
	select {
	case n := <-resurrected:
		t.Fatalf("node %d resurrected before the ck trigger", n)
	case <-time.After(20 * time.Millisecond):
	}
	d.OnPut("ck0", 1)
	d.OnPut("ck0", 2)
	select {
	case <-resurrected:
	case <-time.After(5 * time.Second):
		t.Fatal("resurrection never fired after 2 further puts")
	}
}

// TestScriptDriverPartition: a partition event cuts at after=, heals at
// heal= further store writes, and only then arms the next event.
func TestScriptDriverPartition(t *testing.T) {
	script := &FaultScript{Events: []FaultEvent{
		{Kind: KindPartition, SetA: []int64{0}, SetB: []int64{1}, AfterCheckpoints: 2, HealWrites: 2},
		{Node: 1, AfterCheckpoints: 1},
	}}
	var mu sync.Mutex
	var cuts, heals int
	failed := make(chan int64, 1)
	d := newScriptDriver(script,
		func(n int64) string { return "ck1" },
		func(n int64) { failed <- n },
		func(n int64, ck string) error { return nil })
	d.setStallTimeout(30 * time.Second)
	d.setPartitioner(
		func(a, b []int64) { mu.Lock(); cuts++; mu.Unlock() },
		func() { mu.Lock(); heals++; mu.Unlock() })

	d.OnPut("ck1", 1)
	mu.Lock()
	if cuts != 0 {
		mu.Unlock()
		t.Fatal("partition fired before after=2")
	}
	mu.Unlock()
	d.OnPut("ck1", 2) // cut fires here
	mu.Lock()
	if cuts != 1 {
		mu.Unlock()
		t.Fatalf("cuts = %d after 2 puts, want 1", cuts)
	}
	mu.Unlock()
	d.OnPut("ck1", 3)
	d.OnPut("ck1", 4) // heal trigger reached
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		h := heals
		mu.Unlock()
		if h == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heals = %d, want 1", h)
		}
		time.Sleep(time.Millisecond)
	}
	// Event 2 (fail of node 1, already past its trigger) arms after heal.
	select {
	case n := <-failed:
		if n != 1 {
			t.Fatalf("failed node %d, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fail event never armed after the heal")
	}
}
