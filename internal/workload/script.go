package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultRestartDelay is the restart delay a fault event without an
// explicit delay uses: the time a failure detector plus resurrection
// daemon would need.
const DefaultRestartDelay = 25 * time.Millisecond

// FaultEvent is one scripted failure: kill Node after it has written
// AfterCheckpoints checkpoints (cumulative since run start), then
// resurrect it from its latest checkpoint after Delay.
type FaultEvent struct {
	Node             int64
	AfterCheckpoints int
	Delay            time.Duration
}

// FaultScript is a declarative fault scenario: an ordered list of
// events. Events fire strictly in order — event i+1 arms only once event
// i's resurrection has completed — so "multiple sequential failures in
// one run" is well-defined and the run converges.
type FaultScript struct {
	Events []FaultEvent
}

// OneFailure is the single-event sugar the old grid.FailurePlan form
// maps onto.
func OneFailure(node int64, afterCheckpoints int, delay time.Duration) *FaultScript {
	return &FaultScript{Events: []FaultEvent{{Node: node, AfterCheckpoints: afterCheckpoints, Delay: delay}}}
}

// ParseFailSpec parses one -fail specification:
//
//	"node@checkpoints"          e.g. "1@2"
//	"node@checkpoints@delay"    e.g. "0@4@50ms"
//
// It returns an error instead of exiting, so callers (flag parsing,
// script files) can report context.
func ParseFailSpec(spec string) (FaultEvent, error) {
	parts := strings.Split(spec, "@")
	if len(parts) < 2 || len(parts) > 3 {
		return FaultEvent{}, fmt.Errorf(`bad fail spec %q, want "node@checkpoints" or "node@checkpoints@delay"`, spec)
	}
	node, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil || node < 0 {
		return FaultEvent{}, fmt.Errorf("bad fail spec %q: node %q must be a non-negative integer", spec, parts[0])
	}
	after, err := strconv.Atoi(parts[1])
	if err != nil || after < 1 {
		return FaultEvent{}, fmt.Errorf("bad fail spec %q: checkpoint count %q must be a positive integer", spec, parts[1])
	}
	ev := FaultEvent{Node: node, AfterCheckpoints: after, Delay: DefaultRestartDelay}
	if len(parts) == 3 {
		d, err := time.ParseDuration(parts[2])
		if err != nil {
			return FaultEvent{}, fmt.Errorf("bad fail spec %q: delay %q: %v", spec, parts[2], err)
		}
		if d < 0 {
			return FaultEvent{}, fmt.Errorf("bad fail spec %q: delay %q must be non-negative", spec, parts[2])
		}
		ev.Delay = d
	}
	return ev, nil
}

// ParseScript reads a scenario script: one event per line, in firing
// order. Blank lines and '#' comments are skipped.
//
//	# kill node 1 after its 2nd checkpoint, resurrect after the default delay
//	fail 1@2
//	# then kill node 0 after its 4th checkpoint, resurrect after 50ms
//	fail 0@4 delay=50ms
func ParseScript(r io.Reader) (*FaultScript, error) {
	s := &FaultScript{}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "fail" || len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("script line %d: want \"fail node@checkpoints [delay=D]\", got %q", lineno, line)
		}
		ev, err := ParseFailSpec(fields[1])
		if err != nil {
			return nil, fmt.Errorf("script line %d: %v", lineno, err)
		}
		if len(fields) == 3 {
			val, ok := strings.CutPrefix(fields[2], "delay=")
			if !ok {
				return nil, fmt.Errorf("script line %d: unknown option %q", lineno, fields[2])
			}
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("script line %d: bad delay %q", lineno, val)
			}
			ev.Delay = d
		}
		s.Events = append(s.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseScriptString is ParseScript over a string.
func ParseScriptString(text string) (*FaultScript, error) {
	return ParseScript(strings.NewReader(text))
}

// ---------------------------------------------------------------------------
// Scenario engine

// scriptDriver fires a FaultScript against a running cluster. It is
// triggered by checkpoint writes (the observable the paper's failure
// plans key on): OnPut feeds it every successful checkpoint store write
// with a per-name cumulative count; when the armed event's node has
// written enough checkpoints, the driver kills it and schedules the
// resurrection. Events fire strictly in script order.
type scriptDriver struct {
	ckName    func(node int64) string
	fail      func(node int64)
	resurrect func(node int64, checkpoint string) error

	mu       sync.Mutex
	events   []FaultEvent
	next     int  // index of the armed event
	inFlight bool // armed event fired, resurrection pending
	counts   map[string]int
	errs     []error
	fired    int
}

func newScriptDriver(script *FaultScript, ckName func(int64) string,
	fail func(int64), resurrect func(int64, string) error) *scriptDriver {
	d := &scriptDriver{
		ckName:    ckName,
		fail:      fail,
		resurrect: resurrect,
		counts:    make(map[string]int),
	}
	if script != nil {
		d.events = script.Events
	}
	return d
}

// OnPut observes one successful checkpoint write. Safe for concurrent
// use; may fire an event.
func (d *scriptDriver) OnPut(name string, count int) {
	d.mu.Lock()
	if count > d.counts[name] {
		d.counts[name] = count
	}
	d.maybeFireLocked()
	d.mu.Unlock()
}

// maybeFireLocked fires the armed event if its trigger is satisfied and
// no earlier event is still resurrecting.
func (d *scriptDriver) maybeFireLocked() {
	if d.inFlight || d.next >= len(d.events) {
		return
	}
	ev := d.events[d.next]
	name := d.ckName(ev.Node)
	if d.counts[name] < ev.AfterCheckpoints {
		return
	}
	d.inFlight = true
	d.fail(ev.Node)
	go func() {
		time.Sleep(ev.Delay)
		err := d.resurrect(ev.Node, name)
		d.mu.Lock()
		d.fired++
		if err != nil {
			d.errs = append(d.errs, fmt.Errorf("workload: resurrecting node %d (event %d): %w", ev.Node, d.next, err))
		}
		d.next++
		d.inFlight = false
		// The next event's trigger may already be satisfied by
		// checkpoints written while this one was resurrecting.
		d.maybeFireLocked()
		d.mu.Unlock()
	}()
}

// idle reports whether every scripted event has fully completed (fired
// and finished resurrecting).
func (d *scriptDriver) idle() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.next >= len(d.events) && !d.inFlight
}

// inFlightNow reports whether an event has fired but its resurrection has
// not completed yet.
func (d *scriptDriver) inFlightNow() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inFlight
}

// waitNotInFlight blocks until the pending resurrection completes or the
// deadline passes. Runners call it when the cluster goes quiet while an
// event is mid-flight: a kill that landed at (or after) the end of the
// run — likelier with asynchronous checkpoint commits, whose triggers
// trail capture — revives its node only after the resurrection delay.
func (d *scriptDriver) waitNotInFlight(deadline time.Time) {
	for d.inFlightNow() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
}

// finish reports the script's outcome once the run is over: an error if
// any resurrection failed or any event never triggered.
func (d *scriptDriver) finish() (fired int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.errs) > 0 {
		return d.fired, d.errs[0]
	}
	if d.next < len(d.events) || d.inFlight {
		ev := d.events[d.next]
		return d.fired, fmt.Errorf("workload: fault event %d never completed (node %d after %d checkpoints; run too short for the script?)",
			d.next, ev.Node, ev.AfterCheckpoints)
	}
	return d.fired, nil
}
