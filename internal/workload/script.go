package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/migrate"
)

// DefaultRestartDelay is the restart delay a fault event without an
// explicit delay uses: the time a failure detector plus resurrection
// daemon would need.
const DefaultRestartDelay = 25 * time.Millisecond

// FaultEvent is one scripted failure. The default kind kills Node after
// it has written AfterCheckpoints checkpoints (cumulative since run
// start), then resurrects it from its latest checkpoint after Delay.
// KindStoreKill instead kills store replica Node (an index into the
// replicated store's replica set) after AfterCheckpoints total store
// writes, reviving it after Delay unless NoRevive is set.
type FaultEvent struct {
	Node             int64
	AfterCheckpoints int
	Delay            time.Duration
	// Kind is "" / KindFail for a node kill, KindStoreKill for a store
	// replica kill.
	Kind string
	// NoRevive leaves a killed store replica down for the rest of the
	// run — the surviving quorum must carry it.
	NoRevive bool
}

// Fault event kinds.
const (
	KindFail      = "fail"
	KindStoreKill = "storekill"
)

// FaultScript is a declarative fault scenario: an ordered list of
// events. Events fire strictly in order — event i+1 arms only once event
// i's resurrection has completed — so "multiple sequential failures in
// one run" is well-defined and the run converges.
type FaultScript struct {
	Events []FaultEvent
}

// OneFailure is the single-event sugar the old grid.FailurePlan form
// maps onto.
func OneFailure(node int64, afterCheckpoints int, delay time.Duration) *FaultScript {
	return &FaultScript{Events: []FaultEvent{{Node: node, AfterCheckpoints: afterCheckpoints, Delay: delay}}}
}

// ParseFailSpec parses one -fail specification:
//
//	"node@checkpoints"          e.g. "1@2"
//	"node@checkpoints@delay"    e.g. "0@4@50ms"
//
// It returns an error instead of exiting, so callers (flag parsing,
// script files) can report context.
func ParseFailSpec(spec string) (FaultEvent, error) {
	parts := strings.Split(spec, "@")
	if len(parts) < 2 || len(parts) > 3 {
		return FaultEvent{}, fmt.Errorf(`bad fail spec %q, want "node@checkpoints" or "node@checkpoints@delay"`, spec)
	}
	node, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil || node < 0 {
		return FaultEvent{}, fmt.Errorf("bad fail spec %q: node %q must be a non-negative integer", spec, parts[0])
	}
	after, err := strconv.Atoi(parts[1])
	if err != nil || after < 1 {
		return FaultEvent{}, fmt.Errorf("bad fail spec %q: checkpoint count %q must be a positive integer", spec, parts[1])
	}
	ev := FaultEvent{Node: node, AfterCheckpoints: after, Delay: DefaultRestartDelay}
	if len(parts) == 3 {
		d, err := time.ParseDuration(parts[2])
		if err != nil {
			return FaultEvent{}, fmt.Errorf("bad fail spec %q: delay %q: %v", spec, parts[2], err)
		}
		if d < 0 {
			return FaultEvent{}, fmt.Errorf("bad fail spec %q: delay %q must be non-negative", spec, parts[2])
		}
		ev.Delay = d
	}
	return ev, nil
}

// ParseScript reads a scenario script: one event per line, in firing
// order. Blank lines and '#' comments are skipped.
//
//	# kill node 1 after its 2nd checkpoint, resurrect after the default delay
//	fail 1@2
//	# then kill node 0 after its 4th checkpoint, resurrect after 50ms
//	fail 0@4 delay=50ms
//	# kill store replica 2 after the 3rd store write, revive after 10ms
//	storekill 2@3 delay=10ms
//	# kill store replica 1 after the 5th store write, leave it down
//	storekill 1@5 delay=never
func ParseScript(r io.Reader) (*FaultScript, error) {
	s := &FaultScript{}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if (fields[0] != "fail" && fields[0] != "storekill") || len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("script line %d: want \"fail node@checkpoints [delay=D]\" or \"storekill replica@puts [delay=D|delay=never]\", got %q", lineno, line)
		}
		ev, err := ParseFailSpec(fields[1])
		if err != nil {
			return nil, fmt.Errorf("script line %d: %v", lineno, err)
		}
		if fields[0] == "storekill" {
			ev.Kind = KindStoreKill
		}
		if len(fields) == 3 {
			val, ok := strings.CutPrefix(fields[2], "delay=")
			if !ok {
				return nil, fmt.Errorf("script line %d: unknown option %q", lineno, fields[2])
			}
			if val == "never" {
				if ev.Kind != KindStoreKill {
					return nil, fmt.Errorf("script line %d: delay=never only applies to storekill (a dead node would hang the run)", lineno)
				}
				ev.NoRevive = true
			} else {
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("script line %d: bad delay %q", lineno, val)
				}
				ev.Delay = d
			}
		}
		s.Events = append(s.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseScriptString is ParseScript over a string.
func ParseScriptString(text string) (*FaultScript, error) {
	return ParseScript(strings.NewReader(text))
}

// ---------------------------------------------------------------------------
// Scenario engine

// scriptDriver fires a FaultScript against a running cluster. It is
// triggered by checkpoint writes (the observable the paper's failure
// plans key on): OnPut feeds it every successful checkpoint store write
// with a per-name cumulative count; when the armed event's node has
// written enough checkpoints, the driver kills it and schedules the
// resurrection. Events fire strictly in script order.
type scriptDriver struct {
	ckName    func(node int64) string
	fail      func(node int64)
	resurrect func(node int64, checkpoint string) error

	// killReplica/reviveReplica drive storekill events against the
	// replicated store layer, when the run's store has one (see
	// setStoreFaults). Nil until set; a storekill event with no
	// controller is reported by finish.
	killReplica   func(replica int) error
	reviveReplica func(replica int) error

	mu        sync.Mutex
	events    []FaultEvent
	next      int  // index of the armed event
	inFlight  bool // armed event fired, resurrection pending
	counts    map[string]int
	totalPuts int // cumulative store writes across all names
	errs      []error
	fired     int
}

func newScriptDriver(script *FaultScript, ckName func(int64) string,
	fail func(int64), resurrect func(int64, string) error) *scriptDriver {
	d := &scriptDriver{
		ckName:    ckName,
		fail:      fail,
		resurrect: resurrect,
		counts:    make(map[string]int),
	}
	if script != nil {
		d.events = script.Events
	}
	return d
}

// replicaFaults is the replica fault-injection surface storekill events
// drive. The quorum-replicated store layer (internal/store.Replicated)
// implements it; matching structurally keeps workload decoupled from
// the store package.
type replicaFaults interface {
	KillReplica(i int)
	ReviveReplica(i int)
	NReplicas() int
}

// wireStoreFaults finds the replica fault surface inside s — walking
// Unwrap wrappers (gate, instrumentation) down the store tier — and
// arms the driver's storekill controls against it. No-op when s has no
// replicated layer; a storekill event then fails with a clear error
// instead of wedging the script.
func wireStoreFaults(d *scriptDriver, s migrate.Store) {
	for s != nil {
		if rf, ok := s.(replicaFaults); ok {
			n := rf.NReplicas()
			check := func(i int) error {
				if i < 0 || i >= n {
					return fmt.Errorf("replica %d out of range (store has %d replicas)", i, n)
				}
				return nil
			}
			d.setStoreFaults(
				func(i int) error {
					if err := check(i); err != nil {
						return err
					}
					rf.KillReplica(i)
					return nil
				},
				func(i int) error {
					if err := check(i); err != nil {
						return err
					}
					rf.ReviveReplica(i)
					return nil
				})
			return
		}
		u, ok := s.(interface{ Unwrap() migrate.Store })
		if !ok {
			return
		}
		s = u.Unwrap()
	}
}

// setStoreFaults hands the driver the replica kill/revive controls of
// the run's replicated store layer. Runners call it after construction
// when (and only when) the configured store has such a layer.
func (d *scriptDriver) setStoreFaults(kill, revive func(replica int) error) {
	d.mu.Lock()
	d.killReplica = kill
	d.reviveReplica = revive
	d.mu.Unlock()
}

// OnPut observes one successful checkpoint write. Safe for concurrent
// use; may fire an event.
func (d *scriptDriver) OnPut(name string, count int) {
	d.mu.Lock()
	if count > d.counts[name] {
		d.counts[name] = count
	}
	d.totalPuts++
	d.maybeFireLocked()
	d.mu.Unlock()
}

// maybeFireLocked fires the armed event if its trigger is satisfied and
// no earlier event is still resurrecting.
func (d *scriptDriver) maybeFireLocked() {
	if d.inFlight || d.next >= len(d.events) {
		return
	}
	ev := d.events[d.next]
	if ev.Kind == KindStoreKill {
		d.maybeFireStoreKillLocked(ev)
		return
	}
	name := d.ckName(ev.Node)
	if d.counts[name] < ev.AfterCheckpoints {
		return
	}
	d.inFlight = true
	d.fail(ev.Node)
	go func() {
		time.Sleep(ev.Delay)
		err := d.resurrect(ev.Node, name)
		d.mu.Lock()
		d.fired++
		if err != nil {
			d.errs = append(d.errs, fmt.Errorf("workload: resurrecting node %d (event %d): %w", ev.Node, d.next, err))
		}
		d.next++
		d.inFlight = false
		// The next event's trigger may already be satisfied by
		// checkpoints written while this one was resurrecting.
		d.maybeFireLocked()
		d.mu.Unlock()
	}()
}

// maybeFireStoreKillLocked fires an armed storekill event once enough
// total store writes have landed. The replica dies mid-commit from the
// committer's point of view: the next Put fans out to one fewer
// replica and must still reach the write quorum.
func (d *scriptDriver) maybeFireStoreKillLocked(ev FaultEvent) {
	if d.totalPuts < ev.AfterCheckpoints {
		return
	}
	if d.killReplica == nil {
		// No replicated layer to kill into; finish will report the
		// unfired event. Advance so later events are not wedged behind
		// a permanently unsatisfiable one.
		d.errs = append(d.errs, fmt.Errorf("workload: storekill event %d: store has no replicated layer (need -store repl:N,...)", d.next))
		d.next++
		return
	}
	if err := d.killReplica(int(ev.Node)); err != nil {
		d.errs = append(d.errs, fmt.Errorf("workload: storekill event %d: killing replica %d: %w", d.next, ev.Node, err))
		d.next++
		return
	}
	d.fired++
	if ev.NoRevive {
		d.next++
		return
	}
	d.inFlight = true
	go func() {
		time.Sleep(ev.Delay)
		err := d.reviveReplica(int(ev.Node))
		d.mu.Lock()
		if err != nil {
			d.errs = append(d.errs, fmt.Errorf("workload: storekill event %d: reviving replica %d: %w", d.next, ev.Node, err))
		}
		d.next++
		d.inFlight = false
		d.maybeFireLocked()
		d.mu.Unlock()
	}()
}

// idle reports whether every scripted event has fully completed (fired
// and finished resurrecting).
func (d *scriptDriver) idle() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.next >= len(d.events) && !d.inFlight
}

// inFlightNow reports whether an event has fired but its resurrection has
// not completed yet.
func (d *scriptDriver) inFlightNow() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inFlight
}

// waitNotInFlight blocks until the pending resurrection completes or the
// deadline passes. Runners call it when the cluster goes quiet while an
// event is mid-flight: a kill that landed at (or after) the end of the
// run — likelier with asynchronous checkpoint commits, whose triggers
// trail capture — revives its node only after the resurrection delay.
func (d *scriptDriver) waitNotInFlight(deadline time.Time) {
	for d.inFlightNow() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
}

// finish reports the script's outcome once the run is over: an error if
// any resurrection failed or any event never triggered.
func (d *scriptDriver) finish() (fired int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.errs) > 0 {
		return d.fired, d.errs[0]
	}
	if d.next < len(d.events) || d.inFlight {
		ev := d.events[d.next]
		what := fmt.Sprintf("node %d after %d checkpoints", ev.Node, ev.AfterCheckpoints)
		if ev.Kind == KindStoreKill {
			what = fmt.Sprintf("store replica %d after %d puts", ev.Node, ev.AfterCheckpoints)
		}
		return d.fired, fmt.Errorf("workload: fault event %d never completed (%s; run too short for the script?)",
			d.next, what)
	}
	return d.fired, nil
}
