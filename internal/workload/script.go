package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/migrate"
)

// DefaultRestartDelay is the restart delay a fault event without an
// explicit delay uses: the time a failure detector plus resurrection
// daemon would need. Timing-sensitive scripts (fuzzer repros, CI) should
// prefer the checkpoint-count trigger (delay=ck:<n>) instead, which is
// independent of wall-clock speed.
const DefaultRestartDelay = 25 * time.Millisecond

// DefaultStallTimeout bounds how long a put-count trigger (delay=ck:<n>,
// partition heal) waits for further checkpoint writes before firing
// anyway. It is an anti-wedge fallback only: if every survivor is parked
// on the dead node (or inside the partition), no more checkpoints land
// and the trigger would otherwise never fire.
const DefaultStallTimeout = 2 * time.Second

// FaultEvent is one scripted failure. The default kind kills Node after
// it has written AfterCheckpoints checkpoints (cumulative since run
// start), then resurrects it from its latest checkpoint after Delay (or
// after DelayCk further store writes, when set). KindStoreKill instead
// kills store replica Node (an index into the replicated store's replica
// set) after AfterCheckpoints total store writes, reviving it after Delay
// unless NoRevive is set. KindCrashResurrect is a fail whose node is
// killed a second time during its own resurrection — before the revived
// incarnation runs a single step — and then resurrected again.
// KindPartition cuts the network between SetA and SetB after
// AfterCheckpoints total store writes and heals it HealWrites store
// writes later; frames crossing the cut are withheld, not lost.
type FaultEvent struct {
	Node             int64
	AfterCheckpoints int
	Delay            time.Duration
	// Kind is "" / KindFail for a node kill, or one of the kinds below.
	Kind string
	// NoRevive leaves a killed store replica down for the rest of the
	// run — the surviving quorum must carry it.
	NoRevive bool
	// DelayCk, when > 0, replaces the wall-clock Delay with a
	// store-write-count trigger: the resurrection starts after this many
	// further checkpoint-store writes (script form delay=ck:<n>). Repros
	// using it are timing-independent and CI-stable.
	DelayCk int
	// SetA, SetB are a partition event's node sets.
	SetA, SetB []int64
	// HealWrites is a partition's heal trigger: heal after this many
	// further checkpoint-store writes.
	HealWrites int
}

// Fault event kinds.
const (
	KindFail           = "fail"
	KindStoreKill      = "storekill"
	KindPartition      = "partition"
	KindCrashResurrect = "crashresurrect"
)

// FaultScript is a declarative fault scenario: an ordered list of
// events. Events fire strictly in order — event i+1 arms only once event
// i's resurrection has completed — so "multiple sequential failures in
// one run" is well-defined and the run converges.
type FaultScript struct {
	Events []FaultEvent
}

// OneFailure is the single-event sugar the old grid.FailurePlan form
// maps onto.
func OneFailure(node int64, afterCheckpoints int, delay time.Duration) *FaultScript {
	return &FaultScript{Events: []FaultEvent{{Node: node, AfterCheckpoints: afterCheckpoints, Delay: delay}}}
}

// ParseFailSpec parses one -fail specification:
//
//	"node@checkpoints"          e.g. "1@2"
//	"node@checkpoints@delay"    e.g. "0@4@50ms" or "0@4@ck:2"
//
// It returns an error instead of exiting, so callers (flag parsing,
// script files) can report context.
func ParseFailSpec(spec string) (FaultEvent, error) {
	parts := strings.Split(spec, "@")
	if len(parts) < 2 || len(parts) > 3 {
		return FaultEvent{}, fmt.Errorf(`bad fail spec %q, want "node@checkpoints" or "node@checkpoints@delay"`, spec)
	}
	node, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil || node < 0 {
		return FaultEvent{}, fmt.Errorf("bad fail spec %q: node %q must be a non-negative integer", spec, parts[0])
	}
	after, err := strconv.Atoi(parts[1])
	if err != nil || after < 1 {
		return FaultEvent{}, fmt.Errorf("bad fail spec %q: checkpoint count %q must be a positive integer", spec, parts[1])
	}
	ev := FaultEvent{Node: node, AfterCheckpoints: after, Delay: DefaultRestartDelay}
	if len(parts) == 3 {
		if err := parseDelayArg(parts[2], &ev); err != nil {
			return FaultEvent{}, fmt.Errorf("bad fail spec %q: %v", spec, err)
		}
	}
	return ev, nil
}

// parseDelayArg parses the value of a delay= option ("50ms" or "ck:<n>")
// into ev. "never" is handled by the caller (it is storekill-only).
func parseDelayArg(val string, ev *FaultEvent) error {
	if n, ok := strings.CutPrefix(val, "ck:"); ok {
		k, err := strconv.Atoi(n)
		if err != nil || k < 1 {
			return fmt.Errorf("delay %q: checkpoint count after \"ck:\" must be a positive integer", val)
		}
		ev.DelayCk = k
		ev.Delay = 0
		return nil
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return fmt.Errorf("delay %q: %v", val, err)
	}
	if d < 0 {
		return fmt.Errorf("delay %q must be non-negative", val)
	}
	ev.Delay = d
	return nil
}

// parseNodeSet parses a comma-separated node list ("0,1,3").
func parseNodeSet(s string) ([]int64, error) {
	if s == "" {
		return nil, fmt.Errorf("empty node set")
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("node %q must be a non-negative integer", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parsePartition parses a partition event's arguments:
//
//	partition A|B [after=N] heal=M
//
// A and B are comma-separated node sets; the cut starts after N total
// store writes (default 1) and heals M store writes later.
func parsePartition(fields []string) (FaultEvent, error) {
	if len(fields) < 3 || len(fields) > 4 {
		return FaultEvent{}, fmt.Errorf(`want "partition A|B [after=N] heal=M" (A, B comma-separated node sets)`)
	}
	halves := strings.Split(fields[1], "|")
	if len(halves) != 2 {
		return FaultEvent{}, fmt.Errorf(`node sets %q: want two sets separated by "|", e.g. "0,1|2"`, fields[1])
	}
	a, err := parseNodeSet(halves[0])
	if err != nil {
		return FaultEvent{}, fmt.Errorf("node sets %q: %v", fields[1], err)
	}
	b, err := parseNodeSet(halves[1])
	if err != nil {
		return FaultEvent{}, fmt.Errorf("node sets %q: %v", fields[1], err)
	}
	seen := make(map[int64]bool)
	for _, n := range a {
		seen[n] = true
	}
	for _, n := range b {
		if seen[n] {
			return FaultEvent{}, fmt.Errorf("node sets %q: node %d appears on both sides", fields[1], n)
		}
	}
	ev := FaultEvent{Kind: KindPartition, AfterCheckpoints: 1, SetA: a, SetB: b}
	healSet := false
	for _, f := range fields[2:] {
		switch {
		case strings.HasPrefix(f, "after="):
			n, err := strconv.Atoi(f[len("after="):])
			if err != nil || n < 1 {
				return FaultEvent{}, fmt.Errorf("malformed %q: after= wants a positive integer (total store writes)", f)
			}
			ev.AfterCheckpoints = n
		case strings.HasPrefix(f, "heal="):
			n, err := strconv.Atoi(f[len("heal="):])
			if err != nil || n < 1 {
				return FaultEvent{}, fmt.Errorf("malformed %q: heal= wants a positive integer (store writes until heal)", f)
			}
			ev.HealWrites = n
			healSet = true
		default:
			return FaultEvent{}, fmt.Errorf("unknown option %q", f)
		}
	}
	if !healSet {
		return FaultEvent{}, fmt.Errorf(`missing heal= (a partition that never heals would wedge the run)`)
	}
	return ev, nil
}

// ParseScript reads a scenario script: one event per line, in firing
// order. Blank lines and '#' comments are skipped. Errors carry the line
// number.
//
//	# kill node 1 after its 2nd checkpoint, resurrect after the default delay
//	fail 1@2
//	# then kill node 0 after its 4th checkpoint, resurrect after 50ms
//	fail 0@4 delay=50ms
//	# kill node 2 after its 1st checkpoint, resurrect after 2 more store writes
//	fail 2@1 delay=ck:2
//	# kill node 1 again DURING its own resurrection, then resurrect again
//	crashresurrect 1@3 delay=ck:1
//	# cut nodes {0,1} off from {2} after 2 store writes, heal 4 writes later
//	partition 0,1|2 after=2 heal=4
//	# kill store replica 2 after the 3rd store write, revive after 10ms
//	storekill 2@3 delay=10ms
//	# kill store replica 1 after the 5th store write, leave it down
//	storekill 1@5 delay=never
func ParseScript(r io.Reader) (*FaultScript, error) {
	s := &FaultScript{}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		var ev FaultEvent
		var err error
		switch fields[0] {
		case KindFail, KindStoreKill, KindCrashResurrect:
			ev, err = parseKillLine(fields)
		case KindPartition:
			ev, err = parsePartition(fields)
		default:
			err = fmt.Errorf("unknown event kind %q (want fail, storekill, crashresurrect or partition)", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("script line %d: %v", lineno, err)
		}
		s.Events = append(s.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseKillLine parses a fail/storekill/crashresurrect line.
func parseKillLine(fields []string) (FaultEvent, error) {
	kind := fields[0]
	if len(fields) < 2 || len(fields) > 3 {
		usage := kind + " node@checkpoints [delay=D|delay=ck:N]"
		if kind == KindStoreKill {
			usage = "storekill replica@puts [delay=D|delay=never]"
		}
		return FaultEvent{}, fmt.Errorf("want %q", usage)
	}
	ev, err := ParseFailSpec(fields[1])
	if err != nil {
		return FaultEvent{}, err
	}
	if kind != KindFail {
		ev.Kind = kind
	}
	if len(fields) == 3 {
		val, ok := strings.CutPrefix(fields[2], "delay=")
		if !ok {
			return FaultEvent{}, fmt.Errorf("unknown option %q", fields[2])
		}
		switch {
		case val == "never":
			if ev.Kind != KindStoreKill {
				return FaultEvent{}, fmt.Errorf("delay=never only applies to storekill (a dead node would hang the run)")
			}
			ev.NoRevive = true
		default:
			if err := parseDelayArg(val, &ev); err != nil {
				return FaultEvent{}, err
			}
			if ev.DelayCk > 0 && ev.Kind == KindStoreKill {
				return FaultEvent{}, fmt.Errorf("delay=ck: does not apply to storekill (replica revival is not checkpoint-triggered)")
			}
		}
	}
	return ev, nil
}

// ParseScriptString is ParseScript over a string.
func ParseScriptString(text string) (*FaultScript, error) {
	return ParseScript(strings.NewReader(text))
}

// String renders the event in script-line form, round-trippable through
// ParseScript.
func (ev FaultEvent) String() string {
	switch ev.Kind {
	case KindPartition:
		return fmt.Sprintf("partition %s|%s after=%d heal=%d",
			joinNodes(ev.SetA), joinNodes(ev.SetB), ev.AfterCheckpoints, ev.HealWrites)
	case KindStoreKill:
		d := "delay=" + ev.Delay.String()
		if ev.NoRevive {
			d = "delay=never"
		}
		return fmt.Sprintf("storekill %d@%d %s", ev.Node, ev.AfterCheckpoints, d)
	default:
		kind := ev.Kind
		if kind == "" {
			kind = KindFail
		}
		d := "delay=" + ev.Delay.String()
		if ev.DelayCk > 0 {
			d = fmt.Sprintf("delay=ck:%d", ev.DelayCk)
		}
		return fmt.Sprintf("%s %d@%d %s", kind, ev.Node, ev.AfterCheckpoints, d)
	}
}

func joinNodes(nodes []int64) string {
	sorted := append([]int64{}, nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	parts := make([]string, len(sorted))
	for i, n := range sorted {
		parts[i] = strconv.FormatInt(n, 10)
	}
	return strings.Join(parts, ",")
}

// FormatScript renders a script in the -script file format, one event per
// line.
func FormatScript(s *FaultScript) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, ev := range s.Events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Scenario engine

// scriptDriver fires a FaultScript against a running cluster. It is
// triggered by checkpoint writes (the observable the paper's failure
// plans key on): OnPut feeds it every successful checkpoint store write
// with a per-name cumulative count; when the armed event's node has
// written enough checkpoints, the driver kills it and schedules the
// resurrection. Events fire strictly in script order.
type scriptDriver struct {
	ckName    func(node int64) string
	fail      func(node int64)
	resurrect func(node int64, checkpoint string) error

	// killReplica/reviveReplica drive storekill events against the
	// replicated store layer, when the run's store has one (see
	// setStoreFaults). Nil until set; a storekill event with no
	// controller is reported by finish.
	killReplica   func(replica int) error
	reviveReplica func(replica int) error

	// partition/heal drive partition events; runners wire them to the
	// router (in-process) or the hub (distributed).
	partition func(a, b []int64)
	heal      func()

	// crashResurrect performs a resurrect-with-rekill: the node is failed
	// again during its own resurrection, then resurrected a second time.
	// Runners wire it (run.go arms the engine's resurrection-window hook;
	// distributed.go re-kills the resurrection worker after it joins).
	crashResurrect func(node int64, checkpoint string) error

	// stall bounds put-count triggers (delay=ck:, partition heal): if no
	// further store writes land within it, the trigger fires anyway.
	stall time.Duration

	mu        sync.Mutex
	events    []FaultEvent
	next      int  // index of the armed event
	inFlight  bool // armed event fired, resurrection pending
	counts    map[string]int
	totalPuts int // cumulative store writes across all names
	errs      []error
	fired     int
}

func newScriptDriver(script *FaultScript, ckName func(int64) string,
	fail func(int64), resurrect func(int64, string) error) *scriptDriver {
	d := &scriptDriver{
		ckName:    ckName,
		fail:      fail,
		resurrect: resurrect,
		counts:    make(map[string]int),
		stall:     DefaultStallTimeout,
	}
	if script != nil {
		d.events = script.Events
	}
	return d
}

// replicaFaults is the replica fault-injection surface storekill events
// drive. The quorum-replicated store layer (internal/store.Replicated)
// implements it; matching structurally keeps workload decoupled from
// the store package.
type replicaFaults interface {
	KillReplica(i int)
	ReviveReplica(i int)
	NReplicas() int
}

// wireStoreFaults finds the replica fault surface inside s — walking
// Unwrap wrappers (gate, instrumentation) down the store tier — and
// arms the driver's storekill controls against it. No-op when s has no
// replicated layer; a storekill event then fails with a clear error
// instead of wedging the script.
func wireStoreFaults(d *scriptDriver, s migrate.Store) {
	for s != nil {
		if rf, ok := s.(replicaFaults); ok {
			n := rf.NReplicas()
			check := func(i int) error {
				if i < 0 || i >= n {
					return fmt.Errorf("replica %d out of range (store has %d replicas)", i, n)
				}
				return nil
			}
			d.setStoreFaults(
				func(i int) error {
					if err := check(i); err != nil {
						return err
					}
					rf.KillReplica(i)
					return nil
				},
				func(i int) error {
					if err := check(i); err != nil {
						return err
					}
					rf.ReviveReplica(i)
					return nil
				})
			return
		}
		u, ok := s.(interface{ Unwrap() migrate.Store })
		if !ok {
			return
		}
		s = u.Unwrap()
	}
}

// setStoreFaults hands the driver the replica kill/revive controls of
// the run's replicated store layer. Runners call it after construction
// when (and only when) the configured store has such a layer.
func (d *scriptDriver) setStoreFaults(kill, revive func(replica int) error) {
	d.mu.Lock()
	d.killReplica = kill
	d.reviveReplica = revive
	d.mu.Unlock()
}

// setPartitioner hands the driver the runner's partition controls.
func (d *scriptDriver) setPartitioner(partition func(a, b []int64), heal func()) {
	d.mu.Lock()
	d.partition = partition
	d.heal = heal
	d.mu.Unlock()
}

// setCrashResurrect hands the driver the runner's resurrect-with-rekill
// implementation.
func (d *scriptDriver) setCrashResurrect(fn func(node int64, checkpoint string) error) {
	d.mu.Lock()
	d.crashResurrect = fn
	d.mu.Unlock()
}

// setStallTimeout overrides the put-count trigger fallback bound.
func (d *scriptDriver) setStallTimeout(t time.Duration) {
	d.mu.Lock()
	if t > 0 {
		d.stall = t
	}
	d.mu.Unlock()
}

// OnPut observes one successful checkpoint write. Safe for concurrent
// use; may fire an event.
func (d *scriptDriver) OnPut(name string, count int) {
	d.mu.Lock()
	if count > d.counts[name] {
		d.counts[name] = count
	}
	d.totalPuts++
	d.maybeFireLocked()
	d.mu.Unlock()
}

// waitPuts blocks until the cumulative store-write count reaches target
// or the stall deadline passes (the anti-wedge fallback: survivors may
// all be parked on the event's victim, writing nothing).
func (d *scriptDriver) waitPuts(target int, deadline time.Time) {
	for {
		d.mu.Lock()
		n := d.totalPuts
		d.mu.Unlock()
		if n >= target || !time.Now().Before(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// waitDelay waits out an event's resurrection delay: DelayCk further
// store writes when set, the wall-clock Delay otherwise.
func (d *scriptDriver) waitDelay(ev FaultEvent, basePuts int) {
	if ev.DelayCk > 0 {
		d.mu.Lock()
		stall := d.stall
		d.mu.Unlock()
		d.waitPuts(basePuts+ev.DelayCk, time.Now().Add(stall))
		return
	}
	time.Sleep(ev.Delay)
}

// maybeFireLocked fires the armed event if its trigger is satisfied and
// no earlier event is still resurrecting.
func (d *scriptDriver) maybeFireLocked() {
	if d.inFlight || d.next >= len(d.events) {
		return
	}
	ev := d.events[d.next]
	switch ev.Kind {
	case KindStoreKill:
		d.maybeFireStoreKillLocked(ev)
		return
	case KindPartition:
		d.maybeFirePartitionLocked(ev)
		return
	}
	name := d.ckName(ev.Node)
	if d.counts[name] < ev.AfterCheckpoints {
		return
	}
	d.inFlight = true
	basePuts := d.totalPuts
	eventIdx := d.next
	revive := d.resurrect
	if ev.Kind == KindCrashResurrect {
		if d.crashResurrect == nil {
			d.errs = append(d.errs, fmt.Errorf("workload: crashresurrect event %d: this runner has no resurrect-with-rekill control", d.next))
			d.inFlight = false
			d.next++
			return
		}
		revive = d.crashResurrect
	}
	d.fail(ev.Node)
	go func() {
		d.waitDelay(ev, basePuts)
		err := revive(ev.Node, name)
		d.mu.Lock()
		d.fired++
		if err != nil {
			d.errs = append(d.errs, fmt.Errorf("workload: resurrecting node %d (event %d): %w", ev.Node, eventIdx, err))
		}
		d.next++
		d.inFlight = false
		// The next event's trigger may already be satisfied by
		// checkpoints written while this one was resurrecting.
		d.maybeFireLocked()
		d.mu.Unlock()
	}()
}

// maybeFirePartitionLocked fires an armed partition event once enough
// total store writes have landed; the heal fires HealWrites writes later
// (or at the stall fallback).
func (d *scriptDriver) maybeFirePartitionLocked(ev FaultEvent) {
	if d.totalPuts < ev.AfterCheckpoints {
		return
	}
	if d.partition == nil || d.heal == nil {
		d.errs = append(d.errs, fmt.Errorf("workload: partition event %d: this runner has no partition control", d.next))
		d.next++
		return
	}
	d.inFlight = true
	healAt := d.totalPuts + ev.HealWrites
	stall := d.stall
	d.partition(ev.SetA, ev.SetB)
	// Not counted in fired: a partition heals, it does not restore a
	// checkpoint, and fired is the run's resurrection count.
	go func() {
		d.waitPuts(healAt, time.Now().Add(stall))
		d.heal()
		d.mu.Lock()
		d.next++
		d.inFlight = false
		d.maybeFireLocked()
		d.mu.Unlock()
	}()
}

// maybeFireStoreKillLocked fires an armed storekill event once enough
// total store writes have landed. The replica dies mid-commit from the
// committer's point of view: the next Put fans out to one fewer
// replica and must still reach the write quorum.
func (d *scriptDriver) maybeFireStoreKillLocked(ev FaultEvent) {
	if d.totalPuts < ev.AfterCheckpoints {
		return
	}
	if d.killReplica == nil {
		// No replicated layer to kill into; finish will report the
		// unfired event. Advance so later events are not wedged behind
		// a permanently unsatisfiable one.
		d.errs = append(d.errs, fmt.Errorf("workload: storekill event %d: store has no replicated layer (need -store repl:N,...)", d.next))
		d.next++
		return
	}
	if err := d.killReplica(int(ev.Node)); err != nil {
		d.errs = append(d.errs, fmt.Errorf("workload: storekill event %d: killing replica %d: %w", d.next, ev.Node, err))
		d.next++
		return
	}
	d.fired++
	if ev.NoRevive {
		d.next++
		return
	}
	d.inFlight = true
	go func() {
		time.Sleep(ev.Delay)
		err := d.reviveReplica(int(ev.Node))
		d.mu.Lock()
		if err != nil {
			d.errs = append(d.errs, fmt.Errorf("workload: storekill event %d: reviving replica %d: %w", d.next, ev.Node, err))
		}
		d.next++
		d.inFlight = false
		d.maybeFireLocked()
		d.mu.Unlock()
	}()
}

// idle reports whether every scripted event has fully completed (fired
// and finished resurrecting).
func (d *scriptDriver) idle() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.next >= len(d.events) && !d.inFlight
}

// inFlightNow reports whether an event has fired but its resurrection has
// not completed yet.
func (d *scriptDriver) inFlightNow() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inFlight
}

// waitNotInFlight blocks until the pending resurrection completes or the
// deadline passes. Runners call it when the cluster goes quiet while an
// event is mid-flight: a kill that landed at (or after) the end of the
// run — likelier with asynchronous checkpoint commits, whose triggers
// trail capture — revives its node only after the resurrection delay.
func (d *scriptDriver) waitNotInFlight(deadline time.Time) {
	for d.inFlightNow() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
}

// finish reports the script's outcome once the run is over: an error if
// any resurrection failed or any event never triggered.
func (d *scriptDriver) finish() (fired int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.errs) > 0 {
		return d.fired, d.errs[0]
	}
	if d.next < len(d.events) || d.inFlight {
		ev := d.events[d.next]
		var what string
		switch ev.Kind {
		case KindStoreKill:
			what = fmt.Sprintf("store replica %d after %d puts", ev.Node, ev.AfterCheckpoints)
		case KindPartition:
			what = fmt.Sprintf("partition %s|%s after %d puts", joinNodes(ev.SetA), joinNodes(ev.SetB), ev.AfterCheckpoints)
		default:
			what = fmt.Sprintf("node %d after %d checkpoints", ev.Node, ev.AfterCheckpoints)
		}
		return d.fired, fmt.Errorf("workload: fault event %d never completed (%s; run too short for the script?)",
			d.next, what)
	}
	return d.fired, nil
}
