// Package workload is the pluggable application layer of the cluster
// runtime: a workload is a named package of {MojC program generator,
// typed parameters, bit-exact sequential reference, result verifier}
// that the generic harness can drive through any fault scenario — on the
// in-process cluster.Engine or distributed across OS processes over the
// TCP transport — without knowing anything about the application itself.
//
// The paper's claim (conf_ipps_SmithTH07) is that speculate/commit/abort
// and migrate turn fault tolerance into a handful of source annotations
// for *any* long-running cluster application; this package is where
// "any" stops being hypothetical. internal/grid registers the paper's §2
// grid computation as the first workload; internal/workload/apps adds a
// ring allreduce, a master–worker task farm, and a multi-stage pipeline
// that migrates a stage mid-run.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
)

// Params is the common tuning surface every workload accepts. Each
// workload documents how it interprets Size and Aux; zero values are
// replaced by the workload's defaults before Validate runs.
type Params struct {
	// Nodes is the number of cluster node IDs the workload occupies,
	// including any spare nodes that exist only as migration targets.
	Nodes int
	// Size is the per-node problem size (grid: rows per node; allreduce:
	// vector length; taskfarm: tasks per batch; pipeline: items per batch).
	Size int
	// Aux is the workload's secondary knob (grid: columns; pipeline: the
	// batch after which the migrating stage hands off; others ignore it).
	Aux int
	// Steps is the number of timesteps / rounds / batches.
	Steps int
	// CheckpointInterval is the paper's checkpoint_interval: commit +
	// checkpoint every this many steps.
	CheckpointInterval int
	// Workers bounds concurrently executing node quanta on the in-process
	// engine (0 = unbounded). Results are bit-identical for every width.
	Workers int
	// Ckpt selects the checkpoint pipeline mode: "" or "full" (classic
	// synchronous full images), "delta" (synchronous incremental), or
	// "async" (incremental with write-behind commit). Results are
	// bit-identical in every mode.
	Ckpt string
	// CkptK bounds delta chains: a full image is forced every CkptK
	// deltas (0 = the pipeline default).
	CkptK int
	// Engine names the execution engine node processes run on: "" or
	// "vm" (slot-resolved interpreter), or "risc" (compiled RISC
	// simulator). Results are bit-identical on every engine.
	Engine string
}

// CkptOptions parses the checkpoint-pipeline fields.
func (p Params) CkptOptions() (ckpt.Options, error) {
	mode, err := ckpt.ParseMode(p.Ckpt)
	if err != nil {
		return ckpt.Options{}, err
	}
	return ckpt.Options{Mode: mode, K: p.CkptK}, nil
}

// withDefaults fills zero fields from d.
func (p Params) withDefaults(d Params) Params {
	if p.Nodes == 0 {
		p.Nodes = d.Nodes
	}
	if p.Size == 0 {
		p.Size = d.Size
	}
	if p.Aux == 0 {
		p.Aux = d.Aux
	}
	if p.Steps == 0 {
		p.Steps = d.Steps
	}
	if p.CheckpointInterval == 0 {
		p.CheckpointInterval = d.CheckpointInterval
	}
	return p
}

// Normalize fills zero-valued fields of p from the workload's defaults
// and validates the result.
func Normalize(w Workload, p Params) (Params, error) {
	p = p.withDefaults(w.Defaults())
	if p.Workers < 0 {
		return p, fmt.Errorf("workload: worker count %d must be non-negative", p.Workers)
	}
	if _, err := engine.Get(p.Engine); err != nil {
		return p, err
	}
	if _, err := p.CkptOptions(); err != nil {
		return p, err
	}
	if err := w.Validate(p); err != nil {
		return p, err
	}
	return p, nil
}

// NodeResult is one node's final disposition, backend-independent: the
// in-process engine and the distributed transport both reduce to it.
type NodeResult struct {
	Node   int64
	Status rt.Status
	Halt   int64
	Steps  uint64
	Err    string
}

// Workload is one registered application. Implementations must be
// stateless values: the harness calls them from multiple goroutines.
type Workload interface {
	// Name is the registry key (and the -app flag value).
	Name() string
	// Description is one line for -list.
	Description() string
	// Defaults returns the parameter defaults (also the documentation of
	// how Size and Aux are interpreted).
	Defaults() Params
	// Validate checks fully-defaulted parameters.
	Validate(p Params) error
	// Program compiles the per-node MojC/FIR program (SPMD: the same
	// program runs on every node; roles derive from node_id()).
	Program(p Params) (*fir.Program, error)
	// NodeArgs builds the process arguments (getarg) — identical on every
	// node.
	NodeArgs(p Params) []int64
	// StartNodes lists the node IDs that get an initial process.
	StartNodes(p Params) []int64
	// SpareNodes lists node IDs that exist only as migration targets: the
	// distributed runner spawns an idle worker for each, waiting to adopt.
	SpareNodes(p Params) []int64
	// CheckpointName is the shared-store name a node checkpoints to.
	CheckpointName(node int64) string
	// Externs returns the application externs bound to a node (at minimum
	// ck_name; see CkExtern).
	Externs(p Params, node int64) rt.Registry
	// Reference replays the identical computation sequentially in Go and
	// returns the expected halt code for every node expected to halt.
	// Nodes absent from the map (e.g. a migrated-away source node) are
	// checked by Verify instead.
	Reference(p Params) map[int64]int64
	// Verify checks a run's final node states against the sequential
	// reference, bit-exactly.
	Verify(p Params, nodes map[int64]NodeResult) error
}

// ---------------------------------------------------------------------------
// Registry

var registry struct {
	mu sync.Mutex
	m  map[string]Workload
}

// Register installs a workload under its name. Registering the same name
// twice panics: it is a wiring bug, not a runtime condition.
func Register(w Workload) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]Workload)
	}
	name := w.Name()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("workload: %q registered twice", name))
	}
	registry.m[name] = w
}

// Get returns a registered workload.
func Get(name string) (Workload, error) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	w, ok := registry.m[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown application %q (have %v)", name, namesLocked())
	}
	return w, nil
}

// Names lists registered workloads, sorted.
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Shared helpers for implementations

// CkExtern builds the ck_name extern: the checkpoint:// target string a
// node's migrate pseudo-instruction writes to.
func CkExtern(name string) rt.Registry {
	return rt.Registry{
		"ck_name": {
			Sig: fir.ExternSig{Result: fir.TyPtr},
			Fn: func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
				return r.Heap().AllocString("checkpoint://" + name)
			},
		},
	}
}

// StrExtern builds a no-argument extern returning a fixed string — the
// idiom for migration targets the program cannot format itself.
func StrExtern(s string) rt.Extern {
	return rt.Extern{
		Sig: fir.ExternSig{Result: fir.TyPtr},
		Fn: func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
			return r.Heap().AllocString(s)
		},
	}
}

// Range returns the node IDs [0, n).
func Range(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// VerifyHalted is the default verifier: every node in want must have
// halted with exactly the reference halt code.
func VerifyHalted(want map[int64]int64, nodes map[int64]NodeResult) error {
	order := make([]int64, 0, len(want))
	for n := range want {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, n := range order {
		st, ok := nodes[n]
		if !ok {
			return fmt.Errorf("workload: node %d reported no final state", n)
		}
		if st.Status != rt.StatusHalted {
			return fmt.Errorf("workload: node %d finished %s (err: %s)", n, st.Status, st.Err)
		}
		if st.Halt != want[n] {
			return fmt.Errorf("workload: node %d halt %d, want %d (diverged from the sequential reference)", n, st.Halt, want[n])
		}
	}
	return nil
}
