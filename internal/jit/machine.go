package jit

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/fir"
	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/ops"
	"repro/internal/rt"
	"repro/internal/spec"
)

// Errors returned by the machine.
var (
	ErrFuelExhausted = errors.New("jit: fuel exhausted")
	ErrNotRunning    = errors.New("jit: machine is not running")
	ErrNoMigration   = errors.New("jit: no migration handler installed")
)

// RuntimeError is a trapped execution error, mirroring vm.RuntimeError:
// inside a speculation with TrapSpeculation enabled it triggers an
// automatic rollback of the innermost level instead of killing the machine.
type RuntimeError struct {
	Fn  string
	Err error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("jit: runtime error in %s: %v", e.Fn, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// TrapC mirrors vm.TrapC: the c value used for error-triggered rollbacks.
const TrapC = 2

// Config configures a machine. It mirrors vm.Config so the backends are
// interchangeable.
type Config struct {
	Heap            heap.Config
	Collector       heap.Collector
	Stdout          io.Writer
	Fuel            uint64
	TrapSpeculation bool
	Name            string
	Args            []int64
	Seed            int64
	// Compiled, when set, is the precompiled threaded code for the
	// machine's program (Precompile); Start/StartAt then skip compilation.
	// It is ignored when it was built from a different program.
	Compiled *Compiled
}

// stdExterns returns the shared standard extern registry. The standard
// externs are stateless closures over rt.Runtime, so one table serves
// every machine; per-machine registrations land in a small overlay map
// (Machine.extra) so machine construction never clones this table.
var stdExterns = sync.OnceValue(func() rt.Registry { return rt.StdExterns() })

// Machine executes threaded code against the runtime heap. It implements
// rt.Exec; externals, migration, speculation and GC behave exactly as on
// the interpreter backend.
type Machine struct {
	name    string
	prog    *fir.Program
	h       *heap.Heap
	mgr     *spec.Manager
	externs rt.Registry // shared standard table; never mutated
	extra   rt.Registry // per-machine registrations overriding externs; nil until first use
	migrate rt.MigrateHandler

	compiled *Compiled
	adopted  *Compiled
	code     []ins
	frame    []heap.Value
	extVals  []rt.Extern
	pc       int
	curFn    string
	status   rt.Status
	halt     int64
	err      error

	stdout io.Writer
	fuel   uint64
	fuelOn bool
	steps  uint64
	pins   []heap.Value
	args   []int64
	rng    uint64
	yield  bool

	// Hot-path scratch, reused across steps; callees never retain these
	// slices (rt.ExternFn documents the contract). Paths that hand values
	// to retaining components (speculation, migration) copy fresh.
	evalbuf [3]heap.Value
	argbuf  []heap.Value
	callbuf []heap.Value

	// Migrate-target interning: checkpoint loops load the same target
	// string every iteration, so one cached copy serves the whole run.
	targetBuf []byte
	targetStr string

	trapSpec bool
}

var _ rt.Exec = (*Machine)(nil)

// NewMachine creates a machine for prog. The program is not type-checked
// until Start, so externs can still be registered.
func NewMachine(prog *fir.Program, cfg Config) *Machine {
	h := heap.New(cfg.Heap)
	if cfg.Collector != nil {
		h.SetCollector(cfg.Collector)
	} else {
		h.SetCollector(gc.New())
	}
	m := newMachine(prog, h, cfg)
	return m
}

// ResumeMachine builds a machine around a restored heap and speculation
// continuation stack — the unpack resume path.
func ResumeMachine(prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (*Machine, error) {
	if cfg.Collector != nil {
		h.SetCollector(cfg.Collector)
	} else {
		h.SetCollector(gc.New())
	}
	m := newMachine(prog, h, cfg)
	if err := m.mgr.RestoreStack(conts); err != nil {
		return nil, err
	}
	return m, nil
}

func newMachine(prog *fir.Program, h *heap.Heap, cfg Config) *Machine {
	out := cfg.Stdout
	if out == nil {
		out = io.Discard
	}
	m := &Machine{
		name:     cfg.Name,
		prog:     prog,
		h:        h,
		mgr:      spec.New(h),
		externs:  stdExterns(),
		stdout:   out,
		fuel:     cfg.Fuel,
		fuelOn:   cfg.Fuel > 0,
		args:     cfg.Args,
		rng:      uint64(cfg.Seed)*2862933555777941757 + 3037000493,
		trapSpec: cfg.TrapSpeculation,
		compiled: cfg.Compiled,
		argbuf:   make([]heap.Value, 0, 8),
		callbuf:  make([]heap.Value, 0, 8),
	}
	h.AddRoots(m.yieldRoots)
	return m
}

// yieldRoots enumerates the machine's GC roots: the live frame slots of
// the current instruction plus the extern pins — the same depth-windowed
// root set as the interpreter's, so collection liveness matches it.
func (m *Machine) yieldRoots(yield func(heap.Value)) {
	if m.code != nil && m.pc < len(m.code) {
		for _, v := range m.frame[:m.code[m.pc].depth] {
			yield(v)
		}
	}
	for _, v := range m.pins {
		yield(v)
	}
}

// rt.Runtime implementation.

// Name returns the machine name.
func (m *Machine) Name() string { return m.name }

// Program returns the FIR program being executed.
func (m *Machine) Program() *fir.Program { return m.prog }

// Heap returns the machine heap.
func (m *Machine) Heap() *heap.Heap { return m.h }

// Spec returns the speculation manager.
func (m *Machine) Spec() *spec.Manager { return m.mgr }

// Stdout returns the writer print externs use.
func (m *Machine) Stdout() io.Writer { return m.stdout }

// Pin registers a temporary GC root; pins are cleared after every extern.
func (m *Machine) Pin(v heap.Value) { m.pins = append(m.pins, v) }

// Arg returns the i-th process argument, or 0 when out of range.
func (m *Machine) Arg(i int64) int64 {
	if i < 0 || i >= int64(len(m.args)) {
		return 0
	}
	return m.args[i]
}

// NArgs returns the process argument count.
func (m *Machine) NArgs() int64 { return int64(len(m.args)) }

// Rand returns a deterministic pseudo-random integer in [0, n) from the
// process-seeded xorshift* stream (identical across backends).
func (m *Machine) Rand(n int64) int64 {
	if n <= 0 {
		return 0
	}
	m.rng ^= m.rng >> 12
	m.rng ^= m.rng << 25
	m.rng ^= m.rng >> 27
	v := (m.rng * 2685821657736338717) >> 1
	return int64(v) % n
}

// Lifecycle accessors.

// Status returns the lifecycle state.
func (m *Machine) Status() rt.Status { return m.status }

// HaltCode returns the exit code after StatusHalted.
func (m *Machine) HaltCode() int64 { return m.halt }

// Err returns the terminal error after StatusFailed.
func (m *Machine) Err() error { return m.err }

// Steps returns the number of FIR nodes executed.
func (m *Machine) Steps() uint64 { return m.steps }

// SetMigrateHandler installs the migration implementation.
func (m *Machine) SetMigrateHandler(h rt.MigrateHandler) { m.migrate = h }

// RegisterExtern adds or replaces an external function. Must be called
// before Start so the type checker sees its signature.
func (m *Machine) RegisterExtern(name string, sig fir.ExternSig, fn rt.ExternFn) {
	if m.extra == nil {
		m.extra = make(rt.Registry, 8)
	}
	m.extra[name] = rt.Extern{Sig: sig, Fn: fn}
	if m.adopted != nil {
		for i, n := range m.adopted.extNames {
			if n == name {
				m.extVals[i] = m.extra[name]
			}
		}
	}
}

// lookupExtern resolves a name against the per-machine overlay first, then
// the shared standard table.
func (m *Machine) lookupExtern(name string) (rt.Extern, bool) {
	if e, ok := m.extra[name]; ok {
		return e, true
	}
	e, ok := m.externs[name]
	return e, ok
}

// ExternSigs returns the signature registry for type checking.
func (m *Machine) ExternSigs() map[string]fir.ExternSig {
	sigs := m.externs.Sigs()
	for n, e := range m.extra {
		sigs[n] = e.Sig
	}
	return sigs
}

// Start type-checks the program (through the per-program check cache),
// compiles it to threaded code, and positions the machine at its entry.
func (m *Machine) Start() error {
	if m.status != rt.StatusReady {
		return fmt.Errorf("jit: Start on a %s machine", m.status)
	}
	if err := checkCached(m.prog, m.externs, m.extra); err != nil {
		return err
	}
	if err := m.prepare(); err != nil {
		return err
	}
	_, idx := m.prog.Lookup(m.prog.Entry)
	f := &m.fns()[idx]
	m.pc = f.entry
	m.curFn = f.fn.Name
	m.status = rt.StatusRunning
	return nil
}

// prepare compiles the program (or adopts the precompiled artifact) and
// sizes the frame and extern table.
func (m *Machine) prepare() error {
	var c *Compiled
	if m.compiled != nil && m.compiled.prog == m.prog {
		c = m.compiled
	} else {
		var err error
		if c, err = compile(m.prog); err != nil {
			return err
		}
	}
	m.adopted = c
	m.code = c.code
	m.frame = make([]heap.Value, c.slots)
	m.extVals = make([]rt.Extern, len(c.extNames))
	for i, n := range c.extNames {
		if e, ok := m.lookupExtern(n); ok {
			m.extVals[i] = e
		}
	}
	return nil
}

func (m *Machine) fns() []jitFn { return m.adopted.fns }

// StartAt positions the machine to invoke the function at table index
// fnIdx with the given argument values — the unpack resume path. The
// caller is responsible for having type-checked the program when it came
// from an untrusted peer.
func (m *Machine) StartAt(fnIdx int64, args []heap.Value) error {
	if m.status != rt.StatusReady {
		return fmt.Errorf("jit: StartAt on a %s machine", m.status)
	}
	if err := m.prepare(); err != nil {
		m.status = rt.StatusFailed
		m.err = err
		return err
	}
	m.status = rt.StatusRunning
	if err := m.invoke(fnIdx, args); err != nil {
		m.status = rt.StatusFailed
		m.err = err
		return err
	}
	return nil
}

// invoke positions the machine at function fnIdx with args bound to its
// parameter slots, applying the runtime type checks on every value. args
// may be a scratch buffer: the values are copied into the frame.
func (m *Machine) invoke(fnIdx int64, args []heap.Value) error {
	fns := m.fns()
	if fnIdx < 0 || fnIdx >= int64(len(fns)) {
		_, err := m.prog.FuncByIndex(int(fnIdx))
		return err
	}
	f := &fns[fnIdx]
	fn := f.fn
	if len(args) != len(fn.Params) {
		return fmt.Errorf("jit: %s takes %d arguments, given %d", fn.Name, len(fn.Params), len(args))
	}
	for i, a := range args {
		if k := f.kinds[i]; a.Kind != k || k == kindSlow {
			if err := ops.CheckKind(a, fn.Params[i].Type); err != nil {
				return fmt.Errorf("jit: %s argument %d (%s): %w", fn.Name, i, fn.Params[i].Name, err)
			}
		}
	}
	copy(m.frame[:len(args)], args)
	m.pc = f.entry
	m.curFn = fn.Name
	return nil
}

// Run executes until the machine leaves StatusRunning or fuel runs out.
func (m *Machine) Run() (rt.Status, error) { return m.RunSteps(0) }

// Yield requests that the current bounded RunSteps quantum end after the
// active step. Called from inside externs on the executing goroutine.
func (m *Machine) Yield() { m.yield = true }

// RunSteps executes at most n FIR nodes (0 = unlimited). It returns the
// resulting status; StatusRunning means the quantum expired — the
// scheduler's context-switch point. Fuel is checked before every node and
// one step is charged per node, exactly as on the interpreter; the
// threaded-code loop merely accounts for whole segments at once.
func (m *Machine) RunSteps(n uint64) (rt.Status, error) {
	if m.status != rt.StatusRunning {
		return m.status, fmt.Errorf("%w (%s)", ErrNotRunning, m.status)
	}
	var done uint64
	for n == 0 || done < n {
		budget := ^uint64(0)
		if n != 0 {
			budget = n - done
		}
		if m.fuelOn && m.fuel < budget {
			budget = m.fuel
			if budget == 0 {
				m.status = rt.StatusFailed
				m.err = ErrFuelExhausted
				return m.status, m.err
			}
		}
		exec, err := m.runSeg(budget)
		done += exec
		m.steps += exec
		if m.fuelOn {
			m.fuel -= exec
		}
		if err != nil {
			if m.trap(err) {
				continue
			}
			m.status = rt.StatusFailed
			m.err = err
			return m.status, err
		}
		if m.status != rt.StatusRunning {
			return m.status, nil
		}
		if m.yield {
			// A yield ends a bounded quantum early; an unbounded Run has
			// no scheduler to yield to, so the request is dropped.
			m.yield = false
			if n != 0 {
				return m.status, nil
			}
		}
	}
	return m.status, nil
}

// trap converts a trappable runtime error into an automatic rollback of
// the innermost speculation level when TrapSpeculation is on. It reports
// whether execution continues.
func (m *Machine) trap(err error) bool {
	var rte *RuntimeError
	if !m.trapSpec || !errors.As(err, &rte) || m.mgr.Depth() == 0 {
		return false
	}
	cont, rbErr := m.mgr.Rollback(m.mgr.Depth())
	if rbErr != nil {
		return false
	}
	args := append([]heap.Value{heap.IntVal(TrapC)}, cont.Args...)
	if ivErr := m.invoke(cont.FnIndex, args); ivErr != nil {
		return false
	}
	return true
}

func (m *Machine) rterr(err error) error {
	return &RuntimeError{Fn: m.curFn, Err: err}
}

func (m *Machine) rterrf(format string, args ...any) error {
	return &RuntimeError{Fn: m.curFn, Err: fmt.Errorf(format, args...)}
}

// ld reads one resolved operand: a live frame slot or an interned
// immediate.
func ld(frame []heap.Value, a *operand) heap.Value {
	if a.slot >= 0 {
		return frame[a.slot]
	}
	return a.imm
}

// gatherIns reads an instruction's operand list into the reused scratch
// buffer; valid until the next gather.
func (m *Machine) gatherIns(in *ins) []heap.Value {
	if in.args == nil {
		for i := 0; i < int(in.nargs); i++ {
			switch i {
			case 0:
				m.evalbuf[0] = ld(m.frame, &in.a)
			case 1:
				m.evalbuf[1] = ld(m.frame, &in.b)
			case 2:
				m.evalbuf[2] = ld(m.frame, &in.c)
			}
		}
		return m.evalbuf[:in.nargs]
	}
	return m.gather(in.args)
}

// loadTarget reads the migrate target string at ptr, interning the result:
// the common case is a loop migrating to the same target every iteration,
// which then costs no allocation after the first read.
func (m *Machine) loadTarget(ptr heap.Value) (string, error) {
	b, err := m.h.AppendString(m.targetBuf[:0], ptr)
	if err != nil {
		return "", err
	}
	m.targetBuf = b[:0]
	if string(b) != m.targetStr {
		m.targetStr = string(b)
	}
	return m.targetStr, nil
}

func (m *Machine) gather(args []operand) []heap.Value {
	if cap(m.argbuf) < len(args) {
		m.argbuf = make([]heap.Value, len(args))
	}
	buf := m.argbuf[:len(args)]
	for i := range args {
		buf[i] = ld(m.frame, &args[i])
	}
	return buf
}

// evalGen executes one Let node through the generic ops.Eval path — the
// fallback whenever a fast-path precondition fails, reproducing the
// interpreter's evaluation order and error text exactly.
func (m *Machine) evalGen(in *ins) error {
	args := m.gatherIns(in)
	v, err := ops.Eval(m.h, in.alu, args, in.dstTy)
	if err != nil {
		return m.rterr(err)
	}
	m.frame[in.dst] = v
	return nil
}
