package jit

import (
	"fmt"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/ops"
	"repro/internal/rt"
	"repro/internal/spec"
)

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// runSeg executes up to budget FIR nodes starting at m.pc and returns how
// many were executed (including a node that errored — the interpreter
// charges failed steps too). m.pc is kept current for every node that can
// reach the collector or trap, so GC root windows match the interpreter's
// exactly; on return m.pc points at the next node (or the failed one).
//
// Fast paths handle the common well-typed cases inline; any precondition
// miss (wrong operand kind, division by zero, shift range) falls back to
// the generic ops.Eval path so error text and evaluation order stay
// identical to the interpreter's. Fused superinstructions execute only
// when the remaining budget covers all their nodes and their runtime
// preconditions hold; otherwise they delegate to their unfused component
// instructions, which immediately follow them in the stream.
func (m *Machine) runSeg(budget uint64) (uint64, error) {
	code := m.code
	frame := m.frame
	fns := m.fns()
	h := m.h
	pc := m.pc
	var exec uint64

	for exec < budget {
		m.pc = pc
		in := &code[pc]
		switch in.op {

		case jAdd, jSub, jMul, jAnd, jOr, jXor, jEq, jNe, jLt, jLe, jGt, jGe:
			a, b := ld(frame, &in.a), ld(frame, &in.b)
			if a.Kind == heap.KInt && b.Kind == heap.KInt {
				var v int64
				switch in.op {
				case jAdd:
					v = a.I + b.I
				case jSub:
					v = a.I - b.I
				case jMul:
					v = a.I * b.I
				case jAnd:
					v = a.I & b.I
				case jOr:
					v = a.I | b.I
				case jXor:
					v = a.I ^ b.I
				case jEq:
					v = b2i(a.I == b.I)
				case jNe:
					v = b2i(a.I != b.I)
				case jLt:
					v = b2i(a.I < b.I)
				case jLe:
					v = b2i(a.I <= b.I)
				case jGt:
					v = b2i(a.I > b.I)
				case jGe:
					v = b2i(a.I >= b.I)
				}
				frame[in.dst] = heap.IntVal(v)
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jDiv, jMod, jShl, jShr:
			a, b := ld(frame, &in.a), ld(frame, &in.b)
			ok := a.Kind == heap.KInt && b.Kind == heap.KInt
			if ok {
				switch in.op {
				case jDiv, jMod:
					ok = b.I != 0
				case jShl, jShr:
					ok = b.I >= 0 && b.I <= 63
				}
			}
			if ok {
				var v int64
				switch in.op {
				case jDiv:
					v = a.I / b.I
				case jMod:
					v = a.I % b.I
				case jShl:
					v = a.I << uint(b.I)
				case jShr:
					v = a.I >> uint(b.I)
				}
				frame[in.dst] = heap.IntVal(v)
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jNeg, jNot:
			a := ld(frame, &in.a)
			if a.Kind == heap.KInt {
				if in.op == jNeg {
					frame[in.dst] = heap.IntVal(-a.I)
				} else {
					frame[in.dst] = heap.IntVal(b2i(a.I == 0))
				}
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jFAdd, jFSub, jFMul, jFDiv, jFEq, jFNe, jFLt, jFLe, jFGt, jFGe:
			a, b := ld(frame, &in.a), ld(frame, &in.b)
			if a.Kind == heap.KFloat && b.Kind == heap.KFloat {
				switch in.op {
				case jFAdd:
					frame[in.dst] = heap.FloatVal(a.F + b.F)
				case jFSub:
					frame[in.dst] = heap.FloatVal(a.F - b.F)
				case jFMul:
					frame[in.dst] = heap.FloatVal(a.F * b.F)
				case jFDiv:
					frame[in.dst] = heap.FloatVal(a.F / b.F)
				case jFEq:
					frame[in.dst] = heap.BoolVal(a.F == b.F)
				case jFNe:
					frame[in.dst] = heap.BoolVal(a.F != b.F)
				case jFLt:
					frame[in.dst] = heap.BoolVal(a.F < b.F)
				case jFLe:
					frame[in.dst] = heap.BoolVal(a.F <= b.F)
				case jFGt:
					frame[in.dst] = heap.BoolVal(a.F > b.F)
				case jFGe:
					frame[in.dst] = heap.BoolVal(a.F >= b.F)
				}
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jFNeg:
			a := ld(frame, &in.a)
			if a.Kind == heap.KFloat {
				frame[in.dst] = heap.FloatVal(-a.F)
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jItoF:
			a := ld(frame, &in.a)
			if a.Kind == heap.KInt {
				frame[in.dst] = heap.FloatVal(float64(a.I))
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jFtoI:
			a := ld(frame, &in.a)
			if a.Kind == heap.KFloat {
				frame[in.dst] = heap.IntVal(int64(a.F))
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jMove:
			frame[in.dst] = ld(frame, &in.a)
			pc++
			exec++

		case jAlloc:
			if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jLoad:
			a, b := ld(frame, &in.a), ld(frame, &in.b)
			if a.Kind == heap.KPtr && b.Kind == heap.KInt && in.want != kindSlow {
				v, err := h.Load(a, b.I)
				if err != nil {
					return exec + 1, m.rterr(err)
				}
				if v.Kind != in.want {
					return exec + 1, m.rterr(ops.CheckKind(v, in.dstTy))
				}
				frame[in.dst] = v
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jStore:
			a, b := ld(frame, &in.a), ld(frame, &in.b)
			if a.Kind == heap.KPtr && b.Kind == heap.KInt {
				if err := h.Store(a, b.I, ld(frame, &in.c)); err != nil {
					return exec + 1, m.rterr(err)
				}
				frame[in.dst] = heap.UnitVal()
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jLen:
			a := ld(frame, &in.a)
			if a.Kind == heap.KPtr {
				n, err := h.BlockSize(a)
				if err != nil {
					return exec + 1, m.rterr(err)
				}
				frame[in.dst] = heap.IntVal(n)
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jPtrAdd:
			a, b := ld(frame, &in.a), ld(frame, &in.b)
			if a.Kind == heap.KPtr && b.Kind == heap.KInt {
				a.Off += b.I
				frame[in.dst] = a
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jPtrBase:
			a := ld(frame, &in.a)
			if a.Kind == heap.KPtr {
				a.Off = 0
				frame[in.dst] = a
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jPtrOff:
			a := ld(frame, &in.a)
			if a.Kind == heap.KPtr {
				frame[in.dst] = heap.IntVal(a.Off)
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jPtrEq:
			a, b := ld(frame, &in.a), ld(frame, &in.b)
			if a.Kind == heap.KPtr && b.Kind == heap.KPtr {
				frame[in.dst] = heap.BoolVal(a.Equal(b))
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		case jPtrNull:
			frame[in.dst] = heap.Null()
			pc++
			exec++

		case jPtrIsNil:
			a := ld(frame, &in.a)
			if a.Kind == heap.KPtr {
				frame[in.dst] = heap.BoolVal(a.IsNull())
			} else if err := m.evalGen(in); err != nil {
				return exec + 1, err
			}
			pc++
			exec++

		// --- fused superinstructions ---

		case jCmpBr:
			// Covers the compare and the branch. Delegate to the components
			// (immediately following) when the quantum cannot cover both
			// nodes or an operand is not an int.
			if uint64(in.nodes) > budget-exec {
				pc++
				continue
			}
			a, b := ld(frame, &in.a), ld(frame, &in.b)
			if a.Kind != heap.KInt || b.Kind != heap.KInt {
				pc++
				continue
			}
			var t bool
			switch in.alu {
			case fir.OpEq:
				t = a.I == b.I
			case fir.OpNe:
				t = a.I != b.I
			case fir.OpLt:
				t = a.I < b.I
			case fir.OpLe:
				t = a.I <= b.I
			case fir.OpGt:
				t = a.I > b.I
			case fir.OpGe:
				t = a.I >= b.I
			}
			frame[in.dst] = heap.IntVal(b2i(t))
			exec += 2
			if t {
				pc += 3 // skip the two components
			} else {
				pc = int(in.target)
			}

		case jLoadRun:
			n := uint64(in.nodes)
			if n > budget-exec {
				pc++
				continue
			}
			base := frame[in.a.slot]
			if base.Kind != heap.KPtr {
				pc++
				continue
			}
			for i := range in.run {
				el := &in.run[i]
				v, err := h.Load(base, el.off)
				if err != nil {
					m.pc = pc + 1 + i
					return exec + uint64(i) + 1, m.rterr(err)
				}
				if v.Kind != el.want {
					m.pc = pc + 1 + i
					return exec + uint64(i) + 1, m.rterr(ops.CheckKind(v, el.ty))
				}
				frame[el.dst] = v
			}
			pc += 1 + len(in.run)
			exec += n

		case jStoreRun:
			n := uint64(in.nodes)
			if n > budget-exec {
				pc++
				continue
			}
			base := frame[in.a.slot]
			if base.Kind != heap.KPtr {
				pc++
				continue
			}
			for i := range in.run {
				el := &in.run[i]
				// A store may trigger a collection (copy-on-write clone):
				// point pc at the component so the root window matches.
				m.pc = pc + 1 + i
				v := ld(frame, &el.val)
				if err := h.Store(base, el.off, v); err != nil {
					return exec + uint64(i) + 1, m.rterr(err)
				}
				frame[el.dst] = heap.UnitVal()
			}
			pc += 1 + len(in.run)
			exec += n

		// --- control ---

		case jExtern:
			ext := &m.extVals[in.extIdx]
			if ext.Fn == nil {
				return exec + 1, m.rterrf("unknown extern %q", m.adopted.extNames[in.extIdx])
			}
			args := m.gather(in.args)
			v, err := ext.Fn(m, args)
			m.pins = m.pins[:0]
			if err != nil {
				return exec + 1, m.rterr(err)
			}
			if err := ops.CheckKind(v, ext.Sig.Result); err != nil {
				return exec + 1, m.rterrf("extern %q result: %v", m.adopted.extNames[in.extIdx], err)
			}
			frame[in.dst] = v
			pc++
			exec++
			if m.yield {
				m.pc = pc
				return exec, nil
			}

		case jIf:
			c := ld(frame, &in.a)
			if c.Kind != heap.KInt {
				return exec + 1, m.rterrf("if condition is %s, want int", c.Kind)
			}
			if c.I != 0 {
				pc++
			} else {
				pc = int(in.target)
			}
			exec++

		case jCall:
			fnv := ld(frame, &in.a)
			if fnv.Kind != heap.KFun {
				return exec + 1, m.rterrf("call target is %s, want fun", fnv)
			}
			if err := m.invoke(fnv.I, m.gather(in.args)); err != nil {
				return exec + 1, m.rterr(err)
			}
			pc = m.pc
			exec++

		case jCallKnown:
			// Arity and callee were validated at compile time; arguments
			// write straight into the callee frame (knownCall guarantees
			// no clobbered reads). Kind checks and their error text match
			// invoke exactly.
			f := &fns[in.target]
			args := in.args
			for i := range args {
				v := ld(frame, &args[i])
				if k := f.kinds[i]; v.Kind != k || k == kindSlow {
					if err := ops.CheckKind(v, f.fn.Params[i].Type); err != nil {
						return exec + 1, m.rterr(fmt.Errorf("jit: %s argument %d (%s): %w", f.fn.Name, i, f.fn.Params[i].Name, err))
					}
				}
				frame[i] = v
			}
			m.curFn = f.fn.Name
			pc = f.entry
			exec++

		case jHalt:
			c := ld(frame, &in.a)
			if c.Kind != heap.KInt {
				return exec + 1, m.rterrf("halt code is %s, want int", c.Kind)
			}
			m.status = rt.StatusHalted
			m.halt = c.I
			return exec + 1, nil

		case jSpeculate:
			fnv := ld(frame, &in.a)
			if fnv.Kind != heap.KFun {
				return exec + 1, m.rterrf("speculate target is %s, want fun", fnv)
			}
			// The continuation's arguments outlive this step inside the
			// speculation manager: fresh slice, never scratch.
			saved := make([]heap.Value, len(in.args))
			for i := range in.args {
				saved[i] = ld(frame, &in.args[i])
			}
			m.mgr.Enter(spec.Continuation{FnIndex: fnv.I, Args: saved})
			call := append(m.callbuf[:0], heap.IntVal(0))
			call = append(call, saved...)
			m.callbuf = call
			if err := m.invoke(fnv.I, call); err != nil {
				return exec + 1, m.rterr(err)
			}
			pc = m.pc
			exec++

		case jCommit:
			lv := ld(frame, &in.a)
			if lv.Kind != heap.KInt {
				return exec + 1, m.rterrf("commit level is %s, want int", lv.Kind)
			}
			fnv := ld(frame, &in.b)
			if fnv.Kind != heap.KFun {
				return exec + 1, m.rterrf("commit target is %s, want fun", fnv)
			}
			args := m.gather(in.args)
			if err := m.mgr.Commit(int(lv.I)); err != nil {
				return exec + 1, m.rterr(err)
			}
			if err := m.invoke(fnv.I, args); err != nil {
				return exec + 1, m.rterr(err)
			}
			pc = m.pc
			exec++

		case jRollback:
			lv := ld(frame, &in.a)
			cv := ld(frame, &in.b)
			if lv.Kind != heap.KInt || cv.Kind != heap.KInt {
				return exec + 1, m.rterrf("rollback operands must be int")
			}
			cont, err := m.mgr.Rollback(int(lv.I))
			if err != nil {
				return exec + 1, m.rterr(err)
			}
			call := append(m.callbuf[:0], cv)
			call = append(call, cont.Args...)
			m.callbuf = call
			if err := m.invoke(cont.FnIndex, call); err != nil {
				return exec + 1, m.rterr(err)
			}
			pc = m.pc
			exec++

		case jMigrate:
			tp := ld(frame, &in.a)
			toff := ld(frame, &in.b)
			if tp.Kind != heap.KPtr || toff.Kind != heap.KInt {
				return exec + 1, m.rterrf("migrate target must be (ptr, int)")
			}
			eff := tp
			eff.Off += toff.I
			target, err := m.loadTarget(eff)
			if err != nil {
				return exec + 1, m.rterr(err)
			}
			fnv := ld(frame, &in.c)
			if fnv.Kind != heap.KFun {
				return exec + 1, m.rterrf("migrate continuation is %s, want fun", fnv)
			}
			// Migration handlers may retain the arguments (pack, remote
			// handoff): fresh slice, never scratch.
			args := make([]heap.Value, len(in.args))
			for i := range in.args {
				args[i] = ld(frame, &in.args[i])
			}
			if m.migrate == nil {
				return exec + 1, m.rterr(ErrNoMigration)
			}
			outcome, merr := m.migrate(&rt.MigrationRequest{
				Rt: m, Label: int(in.target), Target: target, FnIndex: fnv.I, Args: args,
			})
			m.pins = m.pins[:0]
			if merr != nil {
				// Failed migrations continue locally, as on the interpreter.
				outcome = rt.OutcomeContinueLocal
			}
			switch outcome {
			case rt.OutcomeMigrated:
				m.status = rt.StatusMigrated
				return exec + 1, nil
			case rt.OutcomeSuspended:
				m.status = rt.StatusSuspended
				return exec + 1, nil
			default:
				if err := m.invoke(fnv.I, args); err != nil {
					return exec + 1, m.rterr(err)
				}
				pc = m.pc
				exec++
			}

		default:
			return exec + 1, m.rterrf("unknown opcode %d", in.op)
		}
	}
	m.pc = pc
	return exec, nil
}
