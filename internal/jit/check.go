package jit

import (
	"sort"
	"sync"

	"repro/internal/fir"
	"repro/internal/rt"
)

// checkCacheMax bounds the memoized type-check results. Entries pin their
// program, so the cache evicts FIFO like the engine artifact cache.
const checkCacheMax = 16

type checkKey struct {
	prog *fir.Program
	sigs string
}

var (
	checkMu sync.Mutex
	// checkSeen is keyed program-first so the hot-path lookup can index the
	// inner map with string(fpScratch) — a conversion the compiler elides.
	checkSeen  = map[*fir.Program]map[string]error{}
	checkOrder []checkKey

	// Fingerprint scratch, reused across calls (guarded by checkMu).
	fpNames []string
	fpBuf   []byte
)

// fingerprint canonicalizes the signature set of std overlaid with extra
// into fpBuf so machines with identical registries share a type-check
// verdict. Requires checkMu; the result is valid until the next call.
func fingerprint(std, extra rt.Registry) []byte {
	fpNames = fpNames[:0]
	for n := range std {
		if _, shadowed := extra[n]; !shadowed {
			fpNames = append(fpNames, n)
		}
	}
	for n := range extra {
		fpNames = append(fpNames, n)
	}
	sort.Strings(fpNames)
	b := fpBuf[:0]
	for _, n := range fpNames {
		e, ok := extra[n]
		if !ok {
			e = std[n]
		}
		s := e.Sig
		b = append(b, n...)
		b = append(b, '(')
		for i, a := range s.Args {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, a.String()...)
		}
		b = append(b, ")->"...)
		b = append(b, s.Result.String()...)
		b = append(b, ';')
	}
	fpBuf = b
	return b
}

// checkCached runs fir.Check once per (program, signature set). Programs
// are immutable after construction (the compiler and the engine artifact
// cache already rely on this), so a verdict never goes stale. Every
// machine in a multi-worker run starts the same program with the same
// std extern registry; without the cache each Start re-walks the whole
// program, which dominated short-run latency.
func checkCached(prog *fir.Program, std, extra rt.Registry) error {
	checkMu.Lock()
	fp := fingerprint(std, extra)
	if inner := checkSeen[prog]; inner != nil {
		if err, ok := inner[string(fp)]; ok {
			checkMu.Unlock()
			return err
		}
	}
	checkMu.Unlock()

	sigs := std.Sigs()
	for n, e := range extra {
		sigs[n] = e.Sig
	}
	err := fir.Check(prog, sigs)

	checkMu.Lock()
	defer checkMu.Unlock()
	fp = fingerprint(std, extra) // recompute: the scratch may have been reused
	inner := checkSeen[prog]
	if inner == nil {
		inner = map[string]error{}
		checkSeen[prog] = inner
	}
	if _, ok := inner[string(fp)]; !ok {
		if len(checkOrder) >= checkCacheMax {
			old := checkOrder[0]
			checkOrder = checkOrder[1:]
			if in := checkSeen[old.prog]; in != nil {
				delete(in, old.sigs)
				if len(in) == 0 {
					delete(checkSeen, old.prog)
				}
			}
		}
		key := string(fp)
		inner[key] = err
		checkOrder = append(checkOrder, checkKey{prog, key})
	}
	return err
}
