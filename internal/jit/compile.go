// Package jit implements the threaded-code execution engine: the third
// backend behind internal/engine's registry, next to the slot-resolved
// interpreter ("vm") and the RISC simulator ("risc").
//
// The compiler lowers FIR to the same slot-resolved linear shape as the
// interpreter — one instruction per FIR node, variables resolved to dense
// frame slots, literal operands interned into the instruction stream at
// compile time — but with two executable differences:
//
//   - every instruction carries a specialized opcode resolved at compile
//     time (one per FIR operator), so the machine's next-instruction loop
//     dispatches straight to an inlined body instead of re-deciding the
//     operator per step through ops.Eval;
//   - a fusion pass rewrites the hot sequences the workload kernels
//     actually emit — integer compare-and-branch pairs, and the runs of
//     constant-offset loads (closure environment unpacking) and stores
//     (closure construction) against a single base pointer — into single
//     superinstructions covering several FIR nodes each.
//
// Bit-exactness contract (shared with vm and risc): a fused instruction
// still charges exactly one step and one fuel unit per FIR node it covers,
// and can only begin when the remaining quantum covers all of its nodes.
// Each fused superinstruction is therefore emitted in front of its
// unfused component instructions: when the quantum or the fuel would
// expire mid-fusion, or a runtime precondition fails, execution drops into
// the components and proceeds one node at a time, yielding, failing and
// resuming at exactly the boundaries the interpreter would. Branches into
// the middle of a fused region land on the components as well, so control
// transfers never observe the fusion.
package jit

import (
	"fmt"
	"maps"

	"repro/internal/fir"
	"repro/internal/heap"
)

// jop is a specialized opcode. The first block mirrors fir.Op value for
// value, so Let bindings translate by cast; the rest are control and the
// fused superinstructions.
type jop uint8

const (
	jAdd jop = iota // mirrors fir.OpAdd…fir.OpMove
	jSub
	jMul
	jDiv
	jMod
	jNeg
	jAnd
	jOr
	jXor
	jNot
	jShl
	jShr
	jEq
	jNe
	jLt
	jLe
	jGt
	jGe
	jFAdd
	jFSub
	jFMul
	jFDiv
	jFNeg
	jFEq
	jFNe
	jFLt
	jFLe
	jFGt
	jFGe
	jItoF
	jFtoI
	jAlloc
	jLoad
	jStore
	jLen
	jPtrAdd
	jPtrBase
	jPtrOff
	jPtrEq
	jPtrNull
	jPtrIsNil
	jMove

	jExtern
	jIf
	jCall
	jHalt
	jSpeculate
	jCommit
	jRollback
	jMigrate

	// Fused superinstructions. Each precedes its unfused components in
	// the stream and covers nodes FIR nodes.
	jCmpBr    // integer compare + branch on the result
	jLoadRun  // ≥2 constant-offset loads off one base pointer
	jStoreRun // ≥2 constant-offset stores against one base pointer

	// jCallKnown is a jCall whose callee is a function literal with
	// matching arity and whose arguments can be written into the callee
	// frame in place (no clobbered reads). FIR lowers loops to tail
	// calls, so this is the hot call form; target holds the function
	// index resolved at compile time.
	jCallKnown
)

// kindSlow marks a load destination type the fast path cannot reduce to a
// single runtime tag; the generic ops.Eval path handles it.
const kindSlow heap.Kind = 0xFF

// operand is a resolved operand: a frame slot or an interned immediate.
type operand struct {
	slot int32 // >= 0: frame slot; < 0: immediate
	imm  heap.Value
}

// runElem is one element of a fused load or store run.
type runElem struct {
	off  int64     // constant word offset
	dst  int32     // destination slot (load: the value; store: the unit binding)
	val  operand   // store: the value operand, read at element time
	want heap.Kind // load: expected result tag (kindSlow: check generically)
	ty   fir.Type  // load: declared type, for exact error text
}

// ins is one instruction. nodes is the number of FIR nodes it covers
// (fused forms > 1); depth is the live-slot window while it executes —
// the GC root set, exactly as in the interpreter.
type ins struct {
	op      jop
	nodes   uint8
	nargs   uint8
	want    heap.Kind // jLoad: expected result tag
	alu     fir.Op
	dstTy   fir.Type
	dst     int32
	depth   int32
	target  int32 // jIf/jCmpBr: branch-not-taken pc; jMigrate: label
	extIdx  int32
	a, b, c operand
	args    []operand
	run     []runElem
}

// jitFn is one function's compiled view. kinds caches each parameter's
// expected runtime tag so invoke checks arguments without re-deriving the
// tag from the FIR type per call (kindSlow delegates to ops.CheckKind).
type jitFn struct {
	entry int
	fn    *fir.Function
	kinds []heap.Kind
}

// Compiled is an opaque compiled program. It is immutable after
// construction and may be shared by any number of machines created from
// the same (unmutated) fir.Program — the cluster engine compiles once and
// fans the artifact out to every node.
type Compiled struct {
	prog     *fir.Program
	code     []ins
	fns      []jitFn
	extNames []string
	slots    int
}

// Precompile lowers prog to threaded code without building a machine.
// Pass the result through Config.Compiled to skip per-machine compilation.
func Precompile(prog *fir.Program) (*Compiled, error) {
	c, err := compile(prog)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// compile runs the two lowering passes: the slot-resolving walk (one
// instruction per FIR node, identical structure to the interpreter's) and
// the fusion rewrite.
func compile(prog *fir.Program) (*Compiled, error) {
	c := &Compiled{prog: prog, fns: make([]jitFn, len(prog.Funcs))}
	extIdx := make(map[string]int32)
	for i, f := range prog.Funcs {
		kinds := make([]heap.Kind, len(f.Params))
		for j, prm := range f.Params {
			kinds[j] = wantKind(prm.Type)
		}
		c.fns[i] = jitFn{entry: len(c.code), fn: f, kinds: kinds}
		fc := &fnCompiler{prog: prog, c: c, fn: f, extIdx: extIdx}
		env := make(map[string]int32, len(f.Params))
		for j, prm := range f.Params {
			env[prm.Name] = int32(j)
		}
		if err := fc.expr(f.Body, env, int32(len(f.Params))); err != nil {
			return nil, err
		}
	}
	fuse(c)
	return c, nil
}

type fnCompiler struct {
	prog   *fir.Program
	c      *Compiled
	fn     *fir.Function
	extIdx map[string]int32 // shared across functions: extern table is per program
}

func (fc *fnCompiler) extern(name string) int32 {
	if i, ok := fc.extIdx[name]; ok {
		return i
	}
	i := int32(len(fc.c.extNames))
	fc.c.extNames = append(fc.c.extNames, name)
	fc.extIdx[name] = i
	return i
}

func (fc *fnCompiler) grow(depth int32) {
	if int(depth) > fc.c.slots {
		fc.c.slots = int(depth)
	}
}

func (fc *fnCompiler) atom(a fir.Atom, env map[string]int32) (operand, error) {
	switch a := a.(type) {
	case fir.Var:
		s, ok := env[a.Name]
		if !ok {
			return operand{}, fmt.Errorf("jit: unbound variable %q in %s", a.Name, fc.fn.Name)
		}
		return operand{slot: s}, nil
	case fir.IntLit:
		return operand{slot: -1, imm: heap.IntVal(a.V)}, nil
	case fir.FloatLit:
		return operand{slot: -1, imm: heap.FloatVal(a.V)}, nil
	case fir.FunLit:
		_, idx := fc.prog.Lookup(a.Name)
		if idx < 0 {
			return operand{}, fmt.Errorf("jit: undefined function %q in %s", a.Name, fc.fn.Name)
		}
		return operand{slot: -1, imm: heap.FunVal(int64(idx))}, nil
	case fir.UnitLit:
		return operand{slot: -1, imm: heap.UnitVal()}, nil
	default:
		return operand{}, fmt.Errorf("jit: unknown atom %T in %s", a, fc.fn.Name)
	}
}

// knownCall reports whether a call can use the jCallKnown fast path: the
// callee is a function literal with matching arity, and writing argument
// i into frame slot i never clobbers a slot a later argument still reads
// — every operand is an immediate or reads a slot at or above its own
// argument position. Tail calls that pass loop state forward in the same
// slots satisfy this by construction.
func (fc *fnCompiler) knownCall(fa operand, args []operand) (int32, bool) {
	if fa.slot >= 0 || fa.imm.Kind != heap.KFun {
		return 0, false
	}
	idx := fa.imm.I
	if idx < 0 || idx >= int64(len(fc.prog.Funcs)) {
		return 0, false
	}
	if len(fc.prog.Funcs[idx].Params) != len(args) {
		return 0, false
	}
	for i, a := range args {
		if a.slot >= 0 && a.slot < int32(i) {
			return 0, false
		}
	}
	return int32(idx), true
}

func (fc *fnCompiler) atoms(as []fir.Atom, env map[string]int32) ([]operand, error) {
	if len(as) == 0 {
		return nil, nil
	}
	out := make([]operand, len(as))
	for i, a := range as {
		fa, err := fc.atom(a, env)
		if err != nil {
			return nil, err
		}
		out[i] = fa
	}
	return out, nil
}

// bind assigns the destination slot for a binding. A rebound name reuses
// its existing slot, so the shadowed value leaves the GC root window
// exactly when the interpreter's map overwrite would drop it.
func (fc *fnCompiler) bind(env map[string]int32, name string, depth int32) (map[string]int32, int32, int32) {
	if s, ok := env[name]; ok {
		return env, s, depth
	}
	env[name] = depth
	return env, depth, depth + 1
}

func (in *ins) setABC(i int, fa operand) {
	switch i {
	case 0:
		in.a = fa
	case 1:
		in.b = fa
	case 2:
		in.c = fa
	}
}

// wantKind reduces a FIR type to the runtime tag a load result must carry.
func wantKind(t fir.Type) heap.Kind {
	switch t.Kind {
	case fir.KindInt:
		return heap.KInt
	case fir.KindFloat:
		return heap.KFloat
	case fir.KindPtr:
		return heap.KPtr
	case fir.KindFun:
		return heap.KFun
	case fir.KindUnit:
		return heap.KUnit
	default:
		return kindSlow
	}
}

func (fc *fnCompiler) expr(e fir.Expr, env map[string]int32, depth int32) error {
	fc.grow(depth)
	for {
		switch e2 := e.(type) {
		case fir.Let:
			in := ins{op: jop(e2.Op), nodes: 1, alu: e2.Op, dstTy: e2.DstType, depth: depth}
			if e2.Op == fir.OpLoad {
				in.want = wantKind(e2.DstType)
			}
			if n := len(e2.Args); n <= 3 {
				in.nargs = uint8(n)
				for i, a := range e2.Args {
					fa, err := fc.atom(a, env)
					if err != nil {
						return err
					}
					in.setABC(i, fa)
				}
			} else {
				args, err := fc.atoms(e2.Args, env)
				if err != nil {
					return err
				}
				in.args = args
			}
			env, in.dst, depth = fc.bind(env, e2.Dst, depth)
			fc.grow(depth)
			fc.emit(in)
			e = e2.Body

		case fir.Extern:
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			in := ins{op: jExtern, nodes: 1, dstTy: e2.DstType, depth: depth, extIdx: fc.extern(e2.Name), args: args}
			env, in.dst, depth = fc.bind(env, e2.Dst, depth)
			fc.grow(depth)
			fc.emit(in)
			e = e2.Body

		case fir.If:
			ca, err := fc.atom(e2.Cond, env)
			if err != nil {
				return err
			}
			pos := len(fc.c.code)
			fc.emit(ins{op: jIf, nodes: 1, a: ca, depth: depth})
			// The then branch gets a clone so its bindings stay invisible
			// to the else branch; bind can then mutate in place.
			if err := fc.expr(e2.Then, maps.Clone(env), depth); err != nil {
				return err
			}
			fc.c.code[pos].target = int32(len(fc.c.code))
			e = e2.Else

		case fir.Call:
			fa, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			if idx, ok := fc.knownCall(fa, args); ok {
				fc.emit(ins{op: jCallKnown, nodes: 1, target: idx, a: fa, args: args, depth: depth})
			} else {
				fc.emit(ins{op: jCall, nodes: 1, a: fa, args: args, depth: depth})
			}
			return nil

		case fir.Halt:
			ca, err := fc.atom(e2.Code, env)
			if err != nil {
				return err
			}
			fc.emit(ins{op: jHalt, nodes: 1, a: ca, depth: depth})
			return nil

		case fir.Speculate:
			fa, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(ins{op: jSpeculate, nodes: 1, a: fa, args: args, depth: depth})
			return nil

		case fir.Commit:
			la, err := fc.atom(e2.Level, env)
			if err != nil {
				return err
			}
			fa, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(ins{op: jCommit, nodes: 1, a: la, b: fa, args: args, depth: depth})
			return nil

		case fir.Rollback:
			la, err := fc.atom(e2.Level, env)
			if err != nil {
				return err
			}
			ca, err := fc.atom(e2.C, env)
			if err != nil {
				return err
			}
			fc.emit(ins{op: jRollback, nodes: 1, a: la, b: ca, depth: depth})
			return nil

		case fir.Migrate:
			ta, err := fc.atom(e2.Target, env)
			if err != nil {
				return err
			}
			oa, err := fc.atom(e2.TargetOff, env)
			if err != nil {
				return err
			}
			fa, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(ins{op: jMigrate, nodes: 1, a: ta, b: oa, c: fa, target: int32(e2.Label), args: args, depth: depth})
			return nil

		default:
			return fmt.Errorf("jit: unknown expression %T in %s", e2, fc.fn.Name)
		}
	}
}

func (fc *fnCompiler) emit(in ins) {
	fc.c.code = append(fc.c.code, in)
}

// ---------------------------------------------------------------------------
// Fusion pass.

// maxRun bounds fused load/store runs so a single superinstruction never
// out-sizes a scheduling quantum by orders of magnitude.
const maxRun = 64

func isIntCmp(op jop) bool { return op >= jEq && op <= jGe }

// cmpBrAt reports whether the two instructions starting at pc form a
// fusible integer compare-and-branch pair: the branch tests exactly the
// slot the compare wrote.
func cmpBrAt(code []ins, pc int) bool {
	if pc+1 >= len(code) {
		return false
	}
	cmp, br := &code[pc], &code[pc+1]
	return isIntCmp(cmp.op) && br.op == jIf && br.a.slot == cmp.dst
}

// loadRunAt returns the length (≥2) of the maximal fusible load run
// starting at pc, or 0. Elements load constant offsets off one base slot;
// an element whose destination overwrites the base ends the run with it.
func loadRunAt(code []ins, pc int) int {
	first := &code[pc]
	if first.op != jLoad || first.a.slot < 0 || first.b.slot >= 0 || first.b.imm.Kind != heap.KInt || first.want == kindSlow || first.want == heap.KUnit {
		return 0
	}
	base := first.a.slot
	n := 0
	for pc+n < len(code) && n < maxRun {
		in := &code[pc+n]
		if in.op != jLoad || in.a.slot != base || in.b.slot >= 0 || in.b.imm.Kind != heap.KInt || in.want == kindSlow || in.want == heap.KUnit {
			break
		}
		n++
		if in.dst == base {
			break
		}
	}
	if n < 2 {
		return 0
	}
	return n
}

// storeRunAt returns the length (≥2) of the maximal fusible store run
// starting at pc, or 0. Value operands are read per element at execution
// time, so stores may consume slots earlier elements bound.
func storeRunAt(code []ins, pc int) int {
	first := &code[pc]
	if first.op != jStore || first.a.slot < 0 || first.b.slot >= 0 || first.b.imm.Kind != heap.KInt {
		return 0
	}
	base := first.a.slot
	n := 0
	for pc+n < len(code) && n < maxRun {
		in := &code[pc+n]
		if in.op != jStore || in.a.slot != base || in.b.slot >= 0 || in.b.imm.Kind != heap.KInt {
			break
		}
		n++
		if in.dst == base {
			break
		}
	}
	if n < 2 {
		return 0
	}
	return n
}

// fuse rewrites the linear stream, emitting superinstructions ahead of
// their unfused components and remapping branch targets and function
// entries. The old→new map points every old node at the first slot
// emitted for it, so branches into a fused region land on components and
// execute node by node.
func fuse(c *Compiled) {
	old := c.code
	out := make([]ins, 0, len(old)+len(old)/8)
	remap := make([]int32, len(old)+1)

	for pc := 0; pc < len(old); {
		switch {
		case cmpBrAt(old, pc):
			cmp, br := old[pc], old[pc+1]
			fusedTo := len(out)
			fused := cmp
			fused.op = jCmpBr
			fused.nodes = 2
			fused.target = br.target // remapped below, in old coordinates
			out = append(out, fused)
			remap[pc] = int32(fusedTo)
			remap[pc+1] = int32(len(out) + 1) // the branch component
			out = append(out, cmp, br)
			pc += 2

		case loadRunAt(old, pc) > 0:
			n := loadRunAt(old, pc)
			fused := ins{op: jLoadRun, nodes: uint8(n), a: old[pc].a, depth: old[pc].depth, run: make([]runElem, n)}
			for i := 0; i < n; i++ {
				el := &old[pc+i]
				fused.run[i] = runElem{off: el.b.imm.I, dst: el.dst, want: el.want, ty: el.dstTy}
				remap[pc+i] = int32(len(out) + 1 + i)
			}
			remap[pc] = int32(len(out))
			out = append(out, fused)
			out = append(out, old[pc:pc+n]...)
			pc += n

		case storeRunAt(old, pc) > 0:
			n := storeRunAt(old, pc)
			fused := ins{op: jStoreRun, nodes: uint8(n), a: old[pc].a, depth: old[pc].depth, run: make([]runElem, n)}
			for i := 0; i < n; i++ {
				el := &old[pc+i]
				fused.run[i] = runElem{off: el.b.imm.I, dst: el.dst, val: el.c}
				remap[pc+i] = int32(len(out) + 1 + i)
			}
			remap[pc] = int32(len(out))
			out = append(out, fused)
			out = append(out, old[pc:pc+n]...)
			pc += n

		default:
			remap[pc] = int32(len(out))
			out = append(out, old[pc])
			pc++
		}
	}
	remap[len(old)] = int32(len(out))

	// Rewrite branch targets (migrate's target is a label, not a pc) and
	// function entries into new coordinates.
	for i := range out {
		switch out[i].op {
		case jIf, jCmpBr:
			out[i].target = remap[out[i].target]
		}
	}
	for i := range c.fns {
		c.fns[i].entry = int(remap[c.fns[i].entry])
	}
	c.code = out
}
