package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObsAndTraceRPCs: the 'O' snapshot RPC exposes the daemon's
// admission counters and latency histograms, the 'D' drain RPC streams
// the admission-lifecycle events exactly once, and the submit reply
// carries the queue wait the daemon measured.
func TestObsAndTraceRPCs(t *testing.T) {
	s, c := startServer(t, Config{PoolWorkers: 2, MaxRuns: 2, QueueDepth: 8})
	reply, err := c.Submit(SubmitRequest{Tenant: "alice", App: "grid", Params: smallParams("grid")})
	if err != nil {
		t.Fatal(err)
	}
	if reply.QueueWaitNs < 0 {
		t.Fatalf("negative queue wait %d", reply.QueueWaitNs)
	}

	snap, err := c.ObsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var accepted uint64
	if err := json.Unmarshal(snap["serve.accepted"], &accepted); err != nil || accepted != 1 {
		t.Fatalf("serve.accepted = %s (%v), want 1", snap["serve.accepted"], err)
	}
	var qw obs.LatencySummary
	if err := json.Unmarshal(snap["serve.tenant.alice.queue_wait_ns"], &qw); err != nil || qw.Count != 1 {
		t.Fatalf("tenant queue-wait summary %+v (%v), want one sample", qw, err)
	}
	var rd obs.LatencySummary
	if err := json.Unmarshal(snap["serve.tenant.alice.run_ns"], &rd); err != nil || rd.Count != 1 || rd.Max == 0 {
		t.Fatalf("tenant run-duration summary %+v (%v), want one non-zero sample", rd, err)
	}

	// The wire Metrics snapshot carries the same aggregates (satellite
	// cross-check surface for mojload).
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueueWait.Count != 1 || m.RunDuration.Count != 1 {
		t.Fatalf("metrics aggregates %+v / %+v, want one sample each", m.QueueWait, m.RunDuration)
	}
	if tm := m.Tenants["alice"]; tm.QueueWait.Count != 1 || tm.RunDuration.Count != 1 {
		t.Fatalf("tenant aggregates %+v", tm)
	}

	events, err := c.TraceDrain()
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	var queueWaitFromTrace int64 = -1
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.Kind == obs.EvServeStart.String() {
			queueWaitFromTrace = ev.A
		}
	}
	for _, want := range []obs.Kind{obs.EvServeAdmit, obs.EvServeStart, obs.EvServeVerify, obs.EvServeSweep} {
		if kinds[want.String()] != 1 {
			t.Errorf("drained %v, want exactly one %q", kinds, want)
		}
	}
	if queueWaitFromTrace != reply.QueueWaitNs {
		t.Errorf("trace queue wait %d, reply %d", queueWaitFromTrace, reply.QueueWaitNs)
	}
	// Drains are destructive: a second drain returns nothing new.
	again, err := c.TraceDrain()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second drain returned %d events, want 0", len(again))
	}
	_ = s
}

// TestRejectIsTraced: an admission refusal leaves a serve.reject event
// with the throttle flag.
func TestRejectIsTraced(t *testing.T) {
	s, c := startServer(t, Config{PoolWorkers: 1, MaxRuns: 1, QueueDepth: 1})
	if _, err := c.Submit(SubmitRequest{Tenant: "bob", App: "no-such-app"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	found := false
	for _, ev := range s.Tracer().Drain() {
		if ev.Kind == obs.EvServeReject.String() {
			found = true
			if ev.A != 0 {
				t.Errorf("invalid submission traced as throttled: %+v", ev)
			}
			if ev.Name != "bob/no-such-app" {
				t.Errorf("reject event name %q", ev.Name)
			}
		}
	}
	if !found {
		t.Fatal("no serve.reject event recorded")
	}
}

// TestMetricsScrapeUnderLoad: every observability surface — the wire
// Metrics snapshot, the registry snapshot, and the destructive trace
// drain — is scraped continuously while submissions run. Run under
// -race, this is the regression test for scrape-vs-serve data races.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	s, c := startServer(t, Config{PoolWorkers: 4, MaxRuns: 4, QueueDepth: 32})
	c.SubmitTimeout = 2 * time.Minute

	const jobs = 12
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 3; i++ {
		scrapers.Add(1)
		go func(i int) {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch i {
				case 0:
					if _, err := c.Metrics(); err != nil {
						t.Errorf("metrics scrape: %v", err)
						return
					}
				case 1:
					if _, err := c.ObsSnapshot(); err != nil {
						t.Errorf("obs scrape: %v", err)
						return
					}
				case 2:
					if _, err := c.TraceDrain(); err != nil {
						t.Errorf("trace drain: %v", err)
						return
					}
				}
			}
		}(i)
	}

	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			app := allApps[i%len(allApps)]
			req := SubmitRequest{Tenant: fmt.Sprintf("t%d", i%3), App: app, Params: smallParams(app)}
			if i%4 == 0 {
				req.Script = "fail 1@1 delay=5ms"
			}
			if _, err := c.Submit(req); err != nil {
				errs <- fmt.Errorf("%s: %w", app, err)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Snapshot()
	if m.Completed != jobs {
		t.Fatalf("completed %d, want %d", m.Completed, jobs)
	}
	if m.QueueWait.Count != jobs || m.RunDuration.Count != jobs {
		t.Fatalf("latency aggregates %+v / %+v, want %d samples", m.QueueWait, m.RunDuration, jobs)
	}
}
