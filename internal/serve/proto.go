package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/workload"
)

// The serving protocol is one RPC per connection over the shared
// internal/frame codec (the same length-prefixed framing the cluster
// transport and the migration servers speak): the client writes a single
// request frame — a kind byte followed by a JSON body — and the server
// answers with a single reply frame. Submissions keep the connection
// open for the duration of the run; the reply is the verified result.
//
// Kinds:
//
//	'S' SubmitRequest  → 'R' RunReply | 'T' reject (throttled/invalid)
//	'M' (empty body)   → 'm' Metrics
//	'O' (empty body)   → 'o' metrics-registry snapshot (flat name → value)
//	'D' (empty body)   → 'd' trace drain ([]obs.Event, destructive)
//
// A 'T' reject is the explicit admission-control answer: an overloaded
// server refuses loudly and immediately instead of hanging the client or
// silently dropping the job.
const (
	frameSubmit     = 'S'
	frameMetrics    = 'M'
	frameResult     = 'R'
	frameReject     = 'T'
	frameStats      = 'm'
	frameObs        = 'O'
	frameObsReply   = 'o'
	frameTrace      = 'D'
	frameTraceReply = 'd'
)

// SubmitRequest asks the daemon to run one workload to completion and
// verify it bit-exactly against the sequential reference.
type SubmitRequest struct {
	// Tenant namespaces the submission in the daemon's metrics. Empty is
	// the anonymous tenant "".
	Tenant string `json:"tenant,omitempty"`
	// App is the registered workload name (grid, allreduce, ...).
	App string `json:"app"`
	// Params tunes the workload; zero fields take the app's defaults.
	// Workers is ignored: every run draws from the daemon's one shared
	// worker pool.
	Params workload.Params `json:"params"`
	// Script, when non-empty, is a fault scenario in the mojrun -script
	// syntax ("fail node@checkpoints [delay=D]" lines).
	Script string `json:"script,omitempty"`
}

// RunReply is the daemon's answer to an accepted submission.
type RunReply struct {
	// ID is the daemon-assigned run ID (also the checkpoint namespace
	// "r<ID>." inside the shared store while the run was live).
	ID uint64 `json:"id"`
	// Verified reports that the run completed AND matched the workload's
	// sequential reference bit-exactly.
	Verified bool `json:"verified"`
	// Err carries the failure when Verified is false.
	Err string `json:"err,omitempty"`
	// ElapsedNs is the run's wall-clock duration.
	ElapsedNs int64 `json:"elapsed_ns"`
	// QueueWaitNs is how long the submission sat admitted-but-queued
	// before a runner picked it up — the serving layer's own latency
	// contribution, separate from the run itself.
	QueueWaitNs int64 `json:"queue_wait_ns"`
	// Rollbacks / Resurrections / checkpoint counters echo the run result.
	Rollbacks     uint64 `json:"rollbacks"`
	Resurrections int    `json:"resurrections"`
	Checkpoints   uint64 `json:"checkpoints"`
	CkptBytes     uint64 `json:"ckpt_bytes"`
}

// rejectReply is the explicit admission refusal ('T').
type rejectReply struct {
	// Throttled distinguishes overload (retry later) from an invalid
	// submission (retrying is pointless).
	Throttled bool   `json:"throttled"`
	Reason    string `json:"reason"`
}

// TenantMetrics is one tenant's slice of the daemon counters.
type TenantMetrics struct {
	Submitted   uint64 `json:"submitted"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Rejected    uint64 `json:"rejected"`
	Rollbacks   uint64 `json:"rollbacks"`
	Checkpoints uint64 `json:"checkpoints"`
	CkptBytes   uint64 `json:"ckpt_bytes"`

	// QueueWait / RunDuration aggregate this tenant's admission-queue
	// wait and run wall time (nanoseconds), fed from the daemon's metrics
	// registry — the same histograms the 'O' snapshot RPC exposes, so a
	// load generator can cross-check its own measurements against the
	// daemon's.
	QueueWait   obs.LatencySummary `json:"queue_wait"`
	RunDuration obs.LatencySummary `json:"run_duration"`
}

// Metrics is the daemon status snapshot ('m').
type Metrics struct {
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`

	// QueueDepth / Running are instantaneous; the Cap fields echo the
	// daemon's configuration so a client can interpret them.
	QueueDepth  int `json:"queue_depth"`
	Running     int `json:"running"`
	QueueCap    int `json:"queue_cap"`
	MaxRuns     int `json:"max_runs"`
	PoolWorkers int `json:"pool_workers"`

	Rollbacks   uint64 `json:"rollbacks"`
	Checkpoints uint64 `json:"checkpoints"`
	CkptBytes   uint64 `json:"ckpt_bytes"`

	// GCObjects / GCFailures count the post-run checkpoint sweep: every
	// completed run's namespace is deleted from the shared store, and a
	// failed delete is an explicit error, not a silent leak.
	GCObjects  uint64 `json:"gc_objects"`
	GCFailures uint64 `json:"gc_failures"`

	// QueueWait / RunDuration are the daemon-wide latency aggregates
	// (nanoseconds) across every tenant.
	QueueWait   obs.LatencySummary `json:"queue_wait"`
	RunDuration obs.LatencySummary `json:"run_duration"`

	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
}

// writeMsg writes one kind-tagged JSON frame.
func writeMsg(w io.Writer, kind byte, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return frame.Write(w, append([]byte{kind}, body...))
}

// unmarshalStrict decodes JSON, refusing unknown fields: a client
// speaking a newer protocol gets a loud error, not silently ignored
// options.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// readMsg reads one frame and returns its kind and JSON body.
func readMsg(r io.Reader) (byte, []byte, error) {
	f, err := frame.Read(r)
	if err != nil {
		return 0, nil, err
	}
	if len(f) == 0 {
		return 0, nil, fmt.Errorf("serve: empty frame")
	}
	return f[0], f[1:], nil
}
