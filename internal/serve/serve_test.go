package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	_ "repro/internal/grid" // register grid
	"repro/internal/workload"
	_ "repro/internal/workload/apps" // register allreduce/taskfarm/pipeline
)

// startServer runs a daemon on loopback and tears it down with the test.
func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(l, cfg)
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { _ = s.Close() })
	return s, &Client{Addr: s.Addr()}
}

// smallParams is each app's shrunk problem shape (mirrors the apps
// package's own fast-matrix sizes).
func smallParams(app string) workload.Params {
	switch app {
	case "grid":
		return workload.Params{Nodes: 3, Size: 4, Aux: 8, Steps: 12, CheckpointInterval: 4}
	case "allreduce":
		return workload.Params{Nodes: 3, Size: 4, Steps: 8, CheckpointInterval: 2}
	case "taskfarm":
		return workload.Params{Nodes: 3, Size: 4, Steps: 6, CheckpointInterval: 2}
	case "pipeline":
		return workload.Params{Nodes: 4, Size: 3, Aux: 4, Steps: 8, CheckpointInterval: 2}
	}
	return workload.Params{}
}

var allApps = []string{"grid", "allreduce", "taskfarm", "pipeline"}

func TestSubmitRunsAndVerifies(t *testing.T) {
	s, c := startServer(t, Config{PoolWorkers: 2, MaxRuns: 2, QueueDepth: 4})
	reply, err := c.Submit(SubmitRequest{Tenant: "alice", App: "grid", Params: smallParams("grid")})
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Verified || reply.ID == 0 {
		t.Fatalf("reply %+v: want verified with a run ID", reply)
	}
	if reply.Checkpoints == 0 || reply.CkptBytes == 0 {
		t.Fatalf("reply %+v: grid checkpoints every 4 steps, counters must be non-zero", reply)
	}
	m := s.Snapshot()
	if m.Accepted != 1 || m.Completed != 1 || m.Failed != 0 {
		t.Fatalf("metrics %+v", m)
	}
	if tm := m.Tenants["alice"]; tm.Completed != 1 || tm.CkptBytes == 0 {
		t.Fatalf("tenant metrics %+v", tm)
	}
}

func TestSubmitInvalidIsExplicitlyRejected(t *testing.T) {
	_, c := startServer(t, Config{PoolWorkers: 1, MaxRuns: 1, QueueDepth: 1})
	if _, err := c.Submit(SubmitRequest{App: "no-such-app"}); !errors.Is(err, ErrRejected) {
		t.Fatalf("unknown app: %v, want ErrRejected", err)
	}
	if _, err := c.Submit(SubmitRequest{App: "grid", Script: "explode 1@2"}); !errors.Is(err, ErrRejected) {
		t.Fatalf("bad script: %v, want ErrRejected", err)
	}
	p := smallParams("grid")
	p.Engine = "quantum-annealer"
	if _, err := c.Submit(SubmitRequest{App: "grid", Params: p}); !errors.Is(err, ErrRejected) {
		t.Fatalf("bad engine: %v, want ErrRejected", err)
	}
}

// TestConcurrentTenants is the headline serving guarantee: 64 concurrent
// submissions — every app × both engines × a fault script on some —
// multiplexed over ONE shared worker pool and ONE shared checkpoint
// store, every single one verified bit-exact against its sequential
// reference.
func TestConcurrentTenants(t *testing.T) {
	store := cluster.NewMemStore()
	s, c := startServer(t, Config{
		PoolWorkers: 4,
		MaxRuns:     8,
		QueueDepth:  64,
		Store:       store,
	})
	c.SubmitTimeout = 3 * time.Minute

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		app := allApps[i%len(allApps)]
		req := SubmitRequest{
			Tenant: fmt.Sprintf("t%d", i%8),
			App:    app,
			Params: smallParams(app),
		}
		if i%2 == 1 {
			req.Params.Engine = "risc"
		}
		if i%4 == 0 {
			// Every grid submission also rides through a failure.
			req.Script = "fail 1@1 delay=5ms"
		}
		wg.Add(1)
		go func(req SubmitRequest) {
			defer wg.Done()
			reply, err := c.Submit(req)
			if err != nil {
				errs <- fmt.Errorf("%s/%s: %w", req.Tenant, req.App, err)
				return
			}
			if !reply.Verified {
				errs <- fmt.Errorf("%s/%s: unverified reply %+v", req.Tenant, req.App, reply)
			}
		}(req)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	m := s.Snapshot()
	if m.Accepted != n || m.Completed != n || m.Rejected != 0 || m.Failed != 0 {
		t.Fatalf("metrics %+v, want %d accepted+completed", m, n)
	}
	if len(m.Tenants) != 8 {
		t.Fatalf("tenant count %d, want 8", len(m.Tenants))
	}
	for name, tm := range m.Tenants {
		if tm.Completed != n/8 {
			t.Errorf("tenant %s completed %d, want %d", name, tm.Completed, n/8)
		}
	}
	// Every finished run's namespace was swept from the shared store.
	if names, err := store.List(); err != nil || len(names) != 0 {
		t.Fatalf("shared store holds %v after all runs finished (err %v)", names, err)
	}
	if m.GCObjects == 0 {
		t.Fatal("gc swept nothing although runs checkpointed")
	}
	if m.GCFailures != 0 {
		t.Fatalf("gc failures %d", m.GCFailures)
	}
}

// TestOverloadThrottlesExplicitly: with one run slot and a one-deep
// queue, a burst must get explicit, immediate throttle rejections —
// never a hang, never a silent drop — while everything accepted still
// completes verified.
func TestOverloadThrottlesExplicitly(t *testing.T) {
	s, c := startServer(t, Config{PoolWorkers: 1, MaxRuns: 1, QueueDepth: 1})
	c.SubmitTimeout = 2 * time.Minute

	// Occupy the run slot and the queue slot with runs that cannot finish
	// quickly: their fault scripts park them in a 400ms resurrection delay.
	slow := SubmitRequest{Tenant: "slow", App: "grid", Params: smallParams("grid"), Script: "fail 1@1 delay=400ms"}
	type outcome struct {
		reply *RunReply
		err   error
	}
	results := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			reply, err := c.Submit(slow)
			results <- outcome{reply, err}
		}()
	}
	// Wait until one slow run is actually running and the other is queued:
	// only then is the burst guaranteed to overflow.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := s.Snapshot()
		if m.Running >= 1 && m.Running+m.QueueDepth >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow runs never occupied the daemon: %+v", m)
		}
		time.Sleep(2 * time.Millisecond)
	}

	throttled := 0
	for i := 0; i < 4; i++ {
		start := time.Now()
		_, err := c.Submit(SubmitRequest{Tenant: "burst", App: "allreduce", Params: smallParams("allreduce")})
		if errors.Is(err, ErrThrottled) {
			throttled++
			if wait := time.Since(start); wait > 5*time.Second {
				t.Fatalf("throttle reply took %v — rejects must be immediate", wait)
			}
		} else if err != nil {
			t.Fatalf("burst submit: unexpected error %v", err)
		}
	}
	if throttled == 0 {
		t.Fatal("no burst submission was throttled although the daemon was saturated")
	}

	// The occupying runs still complete, verified.
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("slow run: %v", o.err)
		}
		if !o.reply.Verified || o.reply.Resurrections != 1 {
			t.Fatalf("slow run reply %+v, want verified with 1 resurrection", o.reply)
		}
	}
	m := s.Snapshot()
	if m.Rejected != uint64(throttled) {
		t.Fatalf("metrics rejected %d, throttled %d", m.Rejected, throttled)
	}
	if tm := m.Tenants["burst"]; tm.Rejected != uint64(throttled) {
		t.Fatalf("burst tenant metrics %+v", tm)
	}
}

// TestProgramCacheSharesCompilations: tenants submitting the same
// problem shape share one compiled program (pointer identity is what
// lets the engine artifact cache amortize compilation across tenants).
func TestProgramCacheSharesCompilations(t *testing.T) {
	s, c := startServer(t, Config{PoolWorkers: 2, MaxRuns: 2, QueueDepth: 8})
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(SubmitRequest{App: "allreduce", Params: smallParams("allreduce")}); err != nil {
			t.Fatal(err)
		}
	}
	p := smallParams("allreduce")
	p.Steps *= 2
	if _, err := c.Submit(SubmitRequest{App: "allreduce", Params: p}); err != nil {
		t.Fatal(err)
	}
	s.progMu.Lock()
	cached := len(s.progs)
	s.progMu.Unlock()
	if cached != 2 {
		t.Fatalf("program cache holds %d entries, want 2 (one per distinct shape)", cached)
	}
}

func TestMetricsRPC(t *testing.T) {
	_, c := startServer(t, Config{PoolWorkers: 2, MaxRuns: 3, QueueDepth: 5})
	if _, err := c.Submit(SubmitRequest{Tenant: "m", App: "taskfarm", Params: smallParams("taskfarm")}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 1 || m.MaxRuns != 3 || m.QueueCap != 5 || m.PoolWorkers != 2 {
		t.Fatalf("metrics over the wire %+v", m)
	}
	if tm, ok := m.Tenants["m"]; !ok || tm.Completed != 1 {
		t.Fatalf("tenant metrics over the wire %+v", m.Tenants)
	}
}

func TestPrefixStoreIsolatesAndSweeps(t *testing.T) {
	shared := cluster.NewMemStore()
	a := prefixStore{prefix: runPrefix(1), inner: shared}
	b := prefixStore{prefix: runPrefix(2), inner: shared}
	if err := a.Put("ck-0", []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ck-0", []byte("B")); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Get("ck-0"); err != nil || string(got) != "A" {
		t.Fatalf("a sees %q, %v", got, err)
	}
	if got, err := b.Get("ck-0"); err != nil || string(got) != "B" {
		t.Fatalf("b sees %q, %v", got, err)
	}
	if names, _ := a.List(); len(names) != 1 || names[0] != "ck-0" {
		t.Fatalf("a lists %v", names)
	}
	deleted, failed, err := a.sweep()
	if err != nil || deleted != 1 || failed != 0 {
		t.Fatalf("sweep: %d/%d, %v", deleted, failed, err)
	}
	// b's namespace is untouched.
	if got, err := b.Get("ck-0"); err != nil || string(got) != "B" {
		t.Fatalf("sweep of a touched b: %q, %v", got, err)
	}
	if names, _ := shared.List(); len(names) != 1 {
		t.Fatalf("shared store %v", names)
	}
}
