package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/obs"
)

// ErrThrottled is returned (wrapped, with the server's reason) when the
// daemon refused a submission because its admission queue was full. The
// submission was NOT run; retrying later is reasonable.
var ErrThrottled = errors.New("serve: submission throttled")

// ErrRejected is returned (wrapped) when the daemon refused a
// submission as invalid — retrying the identical request will fail the
// same way.
var ErrRejected = errors.New("serve: submission rejected")

// Client submits workloads to a serving daemon. One connection per
// request (the migrate-protocol convention); the zero value plus an
// Addr is usable, and a Client is safe for concurrent use.
type Client struct {
	// Addr is the daemon address.
	Addr string
	// Dial overrides net.Dial("tcp", addr) (tests, shaped links).
	Dial func(addr string) (net.Conn, error)
	// SubmitTimeout bounds a Submit round trip, INCLUDING the run itself
	// (default 5m).
	SubmitTimeout time.Duration
	// RPCTimeout bounds short round trips like Metrics (default 30s).
	RPCTimeout time.Duration
}

func (c *Client) dial(timeout time.Duration) (net.Conn, error) {
	dial := c.Dial
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	conn, err := dial(c.Addr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	return conn, nil
}

// Submit runs one workload on the daemon and returns its verified
// result. A non-nil RunReply with a non-nil error means the run executed
// but failed (or diverged from the reference); the reply still carries
// its counters.
func (c *Client) Submit(req SubmitRequest) (*RunReply, error) {
	timeout := c.SubmitTimeout
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	conn, err := c.dial(timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := writeMsg(conn, frameSubmit, req); err != nil {
		return nil, err
	}
	kind, body, err := readMsg(conn)
	if err != nil {
		return nil, err
	}
	switch kind {
	case frameResult:
		var reply RunReply
		if err := unmarshalStrict(body, &reply); err != nil {
			return nil, err
		}
		if !reply.Verified {
			return &reply, fmt.Errorf("serve: run %d failed: %s", reply.ID, reply.Err)
		}
		return &reply, nil
	case frameReject:
		var rej rejectReply
		if err := unmarshalStrict(body, &rej); err != nil {
			return nil, err
		}
		base := ErrRejected
		if rej.Throttled {
			base = ErrThrottled
		}
		return nil, fmt.Errorf("%w: %s", base, rej.Reason)
	default:
		return nil, fmt.Errorf("serve: unexpected reply kind %q", kind)
	}
}

// rpc performs one short empty-body round trip and returns the reply
// body after checking its kind.
func (c *Client) rpc(req, want byte) ([]byte, error) {
	timeout := c.RPCTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := c.dial(timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := writeMsg(conn, req, struct{}{}); err != nil {
		return nil, err
	}
	kind, body, err := readMsg(conn)
	if err != nil {
		return nil, err
	}
	if kind != want {
		return nil, fmt.Errorf("serve: unexpected reply kind %q", kind)
	}
	return body, nil
}

// Metrics fetches the daemon's status snapshot.
func (c *Client) Metrics() (*Metrics, error) {
	body, err := c.rpc(frameMetrics, frameStats)
	if err != nil {
		return nil, err
	}
	var m Metrics
	if err := unmarshalStrict(body, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ObsSnapshot fetches the daemon's full metrics-registry snapshot: one
// flat name → value document (counters and sources as numbers,
// histograms as latency-summary objects).
func (c *Client) ObsSnapshot() (map[string]json.RawMessage, error) {
	body, err := c.rpc(frameObs, frameObsReply)
	if err != nil {
		return nil, err
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// TraceDrain drains the daemon's trace rings: every buffered event is
// returned once and removed from the daemon (repeated drains stream the
// event log incrementally).
func (c *Client) TraceDrain() ([]obs.Event, error) {
	body, err := c.rpc(frameTrace, frameTraceReply)
	if err != nil {
		return nil, err
	}
	var events []obs.Event
	if err := json.Unmarshal(body, &events); err != nil {
		return nil, err
	}
	return events, nil
}
