package serve

import (
	"fmt"
	"strings"

	"repro/internal/migrate"
)

// prefixStore is a namespaced view of the daemon's one shared checkpoint
// store: run r sees only names under "r<id>.", so concurrent tenants can
// use identical checkpoint names (every app calls its chains "ck-<node>")
// without trampling each other. The "." separator keeps the composed
// names legal for every store implementation (DirStore rejects path
// separators, not dots).
type prefixStore struct {
	prefix string
	inner  migrate.Store
}

func runPrefix(id uint64) string { return fmt.Sprintf("r%d.", id) }

func (p prefixStore) Put(name string, data []byte) error {
	return p.inner.Put(p.prefix+name, data)
}

func (p prefixStore) Get(name string) ([]byte, error) {
	return p.inner.Get(p.prefix + name)
}

func (p prefixStore) List() ([]string, error) {
	names, err := p.inner.List()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		if rest, ok := strings.CutPrefix(n, p.prefix); ok {
			out = append(out, rest)
		}
	}
	return out, nil
}

// Delete forwards pruning into the namespace. A shared store without
// Delete support degrades to accumulate-until-GC.
func (p prefixStore) Delete(name string) error {
	if d, ok := p.inner.(interface{ Delete(string) error }); ok {
		return d.Delete(p.prefix + name)
	}
	return nil
}

// sweep deletes every object in the namespace from the shared store —
// the explicit (non-best-effort) delete path a finished run's chains go
// through. It reports how many objects it deleted and the FIRST delete
// error (every failure still counts in the daemon's gc_failures metric
// via the returned failed count).
func (p prefixStore) sweep() (deleted, failed int, first error) {
	d, ok := p.inner.(interface{ Delete(string) error })
	if !ok {
		return 0, 0, nil
	}
	names, err := p.inner.List()
	if err != nil {
		return 0, 0, fmt.Errorf("serve: listing store for gc: %w", err)
	}
	for _, n := range names {
		if !strings.HasPrefix(n, p.prefix) {
			continue
		}
		if err := d.Delete(n); err != nil {
			failed++
			if first == nil {
				first = fmt.Errorf("serve: gc %q: %w", n, err)
			}
			continue
		}
		deleted++
	}
	return deleted, failed, first
}
