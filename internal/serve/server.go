// Package serve is the multi-tenant serving layer: a long-lived daemon
// (cmd/mojd) that accepts workload submissions over the wire and
// multiplexes many concurrent cluster.Engine runs over ONE shared
// bounded worker pool and ONE shared checkpoint store. Each accepted run
// executes to completion, is verified bit-exactly against the workload's
// sequential reference, and answers with its result; an overloaded
// daemon refuses new submissions explicitly (never hangs them, never
// drops them silently).
//
// Isolation is by namespace, not by copy: run N's checkpoint chains live
// under "rN." inside the shared store, so hundreds of tenants running
// the same app (whose nodes all checkpoint under the same names) never
// collide, and a finished run's namespace is swept from the store with
// explicit error accounting. Programs compile once per distinct
// (app, shape) and are shared by pointer, so the execution-engine
// artifact cache amortizes compilation across tenants.
package serve

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fir"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Config tunes the daemon.
type Config struct {
	// PoolWorkers sizes the one shared worker pool: the maximum number of
	// node quanta executing concurrently across ALL runs (default:
	// GOMAXPROCS). Individual runs' Params.Workers is ignored.
	PoolWorkers int
	// MaxRuns bounds how many engines execute concurrently (default 16).
	MaxRuns int
	// QueueDepth bounds submissions waiting for a run slot, beyond the
	// MaxRuns already running (default 64). A full queue rejects.
	QueueDepth int
	// RunTimeout bounds each accepted run (default 2m).
	RunTimeout time.Duration
	// IdleTimeout bounds how long a connection may stall between frames
	// (default 60s). A submission waiting for its result is not idle —
	// the reply write refreshes the deadline.
	IdleTimeout time.Duration
	// Store is the shared checkpoint store (default: one MemStore for
	// the daemon's lifetime).
	Store migrate.Store
	// Stdout receives process output from every run (default: discard).
	Stdout io.Writer
	// Logf, when set, receives daemon events (accepts, rejects, gc
	// failures).
	Logf func(format string, args ...any)
	// Registry, when set, is the daemon's metrics registry; nil makes a
	// private one. Either way the daemon registers its admission counters
	// as the "serve" source and feeds per-tenant queue-wait / run-duration
	// histograms, all exposed over the 'O' snapshot RPC.
	Registry *obs.Registry
	// Trace, when set, is the daemon's event tracer; nil makes a private
	// one. Admission lifecycle events (admit, reject, start, verify,
	// sweep) land on the "serve" stream and drain over the 'D' RPC.
	Trace *obs.Tracer
}

// job is one accepted submission waiting for (or on) a runner.
type job struct {
	id       uint64
	req      SubmitRequest
	w        workload.Workload
	params   workload.Params
	script   *workload.FaultScript
	admitted time.Time     // when admit enqueued it
	wait     time.Duration // queue wait, stamped by the runner
	done     chan RunReply
}

// Server is the serving daemon.
type Server struct {
	cfg   Config
	l     net.Listener
	slots chan struct{} // THE worker pool, shared by every engine
	store migrate.Store
	queue chan *job

	reg     *obs.Registry
	trace   *obs.Tracer
	ev      *obs.Stream    // the "serve" admission-lifecycle stream
	qwAll   *obs.Histogram // daemon-wide queue wait (ns)
	runAll  *obs.Histogram // daemon-wide run duration (ns)

	mu      sync.Mutex
	closing bool
	nextID  uint64
	running int
	m       Metrics
	tenants map[string]*TenantMetrics

	progMu sync.Mutex
	progs  map[progKey]*fir.Program

	connWg sync.WaitGroup
	runWg  sync.WaitGroup
}

// progKey identifies a compiled program: the app plus every parameter
// its generator shapes code from. Execution-side knobs (engine, workers,
// checkpoint pipeline mode) deliberately do not split the cache — the
// same FIR runs on every engine, so tenants submitting the same problem
// shape share one *fir.Program and, through pointer identity, one
// compiled artifact per engine.
type progKey struct {
	app                             string
	nodes, size, aux, steps, ckIntv int
}

// NewServer wraps a listener; call Serve to accept.
func NewServer(l net.Listener, cfg Config) *Server {
	if cfg.PoolWorkers <= 0 {
		cfg.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 16
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RunTimeout <= 0 {
		cfg.RunTimeout = 2 * time.Minute
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.Store == nil {
		cfg.Store = cluster.NewMemStore()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Trace == nil {
		cfg.Trace = obs.NewTracer(0)
	}
	s := &Server{
		cfg:     cfg,
		l:       l,
		slots:   make(chan struct{}, cfg.PoolWorkers),
		store:   cfg.Store,
		queue:   make(chan *job, cfg.QueueDepth),
		tenants: make(map[string]*TenantMetrics),
		progs:   make(map[progKey]*fir.Program),
		reg:     cfg.Registry,
		trace:   cfg.Trace,
	}
	s.ev = s.trace.Stream("serve")
	s.qwAll = s.reg.Histogram("serve.queue_wait_ns")
	s.runAll = s.reg.Histogram("serve.run_ns")
	s.reg.AddSource("serve", func() map[string]uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return map[string]uint64{
			"accepted":    s.m.Accepted,
			"rejected":    s.m.Rejected,
			"completed":   s.m.Completed,
			"failed":      s.m.Failed,
			"rollbacks":   s.m.Rollbacks,
			"checkpoints": s.m.Checkpoints,
			"ckpt_bytes":  s.m.CkptBytes,
			"gc_objects":  s.m.GCObjects,
			"gc_failures": s.m.GCFailures,
			"queue_depth": uint64(len(s.queue)),
			"running":     uint64(s.running),
		}
	})
	for i := 0; i < cfg.MaxRuns; i++ {
		s.runWg.Add(1)
		go s.runner()
	}
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Registry returns the daemon's metrics registry (the 'O' RPC's source).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer returns the daemon's event tracer (the 'D' RPC's source).
func (s *Server) Tracer() *obs.Tracer { return s.trace }

// Serve accepts connections until the listener closes.
func (s *Server) Serve() error {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.connWg.Add(1)
		go func() {
			defer s.connWg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, waits for in-flight connections (and therefore
// the runs they are waiting on), then stops the runners.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	err := s.l.Close()
	s.connWg.Wait()
	close(s.queue)
	s.runWg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	kind, body, err := readMsg(conn)
	if err != nil {
		return
	}
	switch kind {
	case frameSubmit:
		s.handleSubmit(conn, body)
	case frameMetrics:
		_ = s.reply(conn, frameStats, s.Snapshot())
	case frameObs:
		_ = s.reply(conn, frameObsReply, s.reg.Snapshot())
	case frameTrace:
		_ = s.reply(conn, frameTraceReply, s.trace.Drain())
	default:
		_ = s.reply(conn, frameReject, rejectReply{Reason: fmt.Sprintf("unknown request kind %q", kind)})
	}
}

// reply writes one frame with a fresh write deadline: a submission's
// result may come minutes after the request frame, and only a stalled
// peer should trip the idle timeout.
func (s *Server) reply(conn net.Conn, kind byte, v any) error {
	_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IdleTimeout))
	return writeMsg(conn, kind, v)
}

func (s *Server) handleSubmit(conn net.Conn, body []byte) {
	j, rej := s.admit(body)
	if rej != nil {
		_ = s.reply(conn, frameReject, *rej)
		return
	}
	_ = s.reply(conn, frameResult, <-j.done)
}

// admit validates and enqueues one submission. It never blocks: a full
// queue is an immediate, explicit throttle.
func (s *Server) admit(body []byte) (*job, *rejectReply) {
	var req SubmitRequest
	reject := func(throttled bool, format string, args ...any) (*job, *rejectReply) {
		reason := fmt.Sprintf(format, args...)
		s.mu.Lock()
		s.m.Rejected++
		s.tenantLocked(req.Tenant).Rejected++
		s.mu.Unlock()
		var thr int64
		if throttled {
			thr = 1
		}
		s.ev.Emit(obs.EvServeReject, 0, 0, 0, thr, 0, req.Tenant+"/"+req.App)
		s.logf("reject tenant=%q app=%q throttled=%v: %s", req.Tenant, req.App, throttled, reason)
		return nil, &rejectReply{Throttled: throttled, Reason: reason}
	}
	if err := unmarshalStrict(body, &req); err != nil {
		return reject(false, "bad submit frame: %v", err)
	}
	w, err := workload.Get(req.App)
	if err != nil {
		return reject(false, "%v", err)
	}
	params, err := workload.Normalize(w, req.Params)
	if err != nil {
		return reject(false, "invalid parameters: %v", err)
	}
	var script *workload.FaultScript
	if req.Script != "" {
		if script, err = workload.ParseScriptString(req.Script); err != nil {
			return reject(false, "invalid fault script: %v", err)
		}
	}

	j := &job{req: req, w: w, params: params, script: script, done: make(chan RunReply, 1)}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return reject(false, "server shutting down")
	}
	s.nextID++
	j.id = s.nextID
	j.admitted = time.Now()
	select {
	case s.queue <- j:
		s.m.Accepted++
		s.tenantLocked(req.Tenant).Submitted++
		depth := len(s.queue)
		s.mu.Unlock()
		s.ev.Emit(obs.EvServeAdmit, int(j.id), 0, 0, int64(depth), 0, req.Tenant+"/"+req.App)
		return j, nil
	default:
		s.mu.Unlock()
		return reject(true, "queue full (%d queued, %d running)", s.cfg.QueueDepth, s.cfg.MaxRuns)
	}
}

// tenantLocked returns (creating if needed) a tenant's counter block.
// Callers hold s.mu.
func (s *Server) tenantLocked(tenant string) *TenantMetrics {
	tm := s.tenants[tenant]
	if tm == nil {
		tm = &TenantMetrics{}
		s.tenants[tenant] = tm
	}
	return tm
}

// tenantHists returns a tenant's registry-backed latency histograms
// (queue wait, run duration) — get-or-create, so the runner path and the
// Snapshot path always see the same instruments.
func (s *Server) tenantHists(tenant string) (queueWait, runDur *obs.Histogram) {
	return s.reg.Histogram("serve.tenant." + tenant + ".queue_wait_ns"),
		s.reg.Histogram("serve.tenant." + tenant + ".run_ns")
}

// runner executes queued jobs until the queue closes. MaxRuns runners
// bound how many engines are live at once; the engines themselves share
// s.slots, so aggregate quantum concurrency never exceeds PoolWorkers no
// matter how the runs overlap.
func (s *Server) runner() {
	defer s.runWg.Done()
	for j := range s.queue {
		j.wait = time.Since(j.admitted)
		qw, _ := s.tenantHists(j.req.Tenant)
		qw.Record(j.wait.Nanoseconds())
		s.qwAll.Record(j.wait.Nanoseconds())
		s.ev.Emit(obs.EvServeStart, int(j.id), 0, 0, j.wait.Nanoseconds(), 0, j.req.Tenant+"/"+j.req.App)
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		j.done <- s.execute(j)
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// execute runs one admitted job to completion and sweeps its checkpoint
// namespace from the shared store.
func (s *Server) execute(j *job) RunReply {
	reply := RunReply{ID: j.id, QueueWaitNs: j.wait.Nanoseconds()}
	store := prefixStore{prefix: runPrefix(j.id), inner: s.store}
	prog, err := s.program(j.w, j.params)
	if err == nil {
		var res *workload.Result
		res, err = workload.RunVerified(j.w, j.params, workload.RunConfig{
			Script:  j.script,
			Timeout: s.cfg.RunTimeout,
			Stdout:  s.cfg.Stdout,
			Program: prog,
			Store:   store,
			Slots:   s.slots,
		})
		if res != nil {
			reply.ElapsedNs = res.Elapsed.Nanoseconds()
			reply.Rollbacks = res.Rollbacks
			reply.Resurrections = res.Resurrections
			reply.Checkpoints = res.Ckpt.Checkpoints
			reply.CkptBytes = res.Ckpt.BytesWritten
		}
	}
	reply.Verified = err == nil
	if err != nil {
		reply.Err = err.Error()
	}
	if reply.ElapsedNs > 0 {
		_, rd := s.tenantHists(j.req.Tenant)
		rd.Record(reply.ElapsedNs)
		s.runAll.Record(reply.ElapsedNs)
	}
	var ok int64
	if reply.Verified {
		ok = 1
	}
	s.ev.Emit(obs.EvServeVerify, int(j.id), 0, 0, ok, reply.ElapsedNs, j.req.Tenant+"/"+j.req.App)

	deleted, failed, gcErr := store.sweep()
	if gcErr != nil {
		s.logf("run %d: checkpoint gc: %v (%d more failures)", j.id, gcErr, failed-1)
	}
	s.ev.Emit(obs.EvServeSweep, int(j.id), 0, 0, int64(deleted), int64(failed), "")

	s.mu.Lock()
	tm := s.tenantLocked(j.req.Tenant)
	if err == nil {
		s.m.Completed++
		tm.Completed++
	} else {
		s.m.Failed++
		tm.Failed++
	}
	s.m.Rollbacks += reply.Rollbacks
	s.m.Checkpoints += reply.Checkpoints
	s.m.CkptBytes += reply.CkptBytes
	tm.Rollbacks += reply.Rollbacks
	tm.Checkpoints += reply.Checkpoints
	tm.CkptBytes += reply.CkptBytes
	s.m.GCObjects += uint64(deleted)
	s.m.GCFailures += uint64(failed)
	s.mu.Unlock()
	return reply
}

// program returns the cached compiled program for a job's shape,
// compiling on first use. Sharing the *fir.Program pointer across runs
// is what lets the execution-engine registry reuse compiled artifacts
// across tenants.
func (s *Server) program(w workload.Workload, p workload.Params) (*fir.Program, error) {
	key := progKey{
		app: w.Name(), nodes: p.Nodes, size: p.Size, aux: p.Aux,
		steps: p.Steps, ckIntv: p.CheckpointInterval,
	}
	s.progMu.Lock()
	defer s.progMu.Unlock()
	if prog := s.progs[key]; prog != nil {
		return prog, nil
	}
	prog, err := w.Program(p)
	if err != nil {
		return nil, err
	}
	s.progs[key] = prog
	return prog, nil
}

// Snapshot returns a copy of the daemon metrics.
func (s *Server) Snapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.m
	m.QueueDepth = len(s.queue)
	m.Running = s.running
	m.QueueCap = s.cfg.QueueDepth
	m.MaxRuns = s.cfg.MaxRuns
	m.PoolWorkers = s.cfg.PoolWorkers
	m.QueueWait = s.qwAll.Summary()
	m.RunDuration = s.runAll.Summary()
	m.Tenants = make(map[string]TenantMetrics, len(s.tenants))
	for name, tm := range s.tenants {
		cp := *tm
		qw, rd := s.tenantHists(name)
		cp.QueueWait = qw.Summary()
		cp.RunDuration = rd.Summary()
		m.Tenants[name] = cp
	}
	return m
}
