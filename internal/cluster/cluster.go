// Package cluster simulates the paper's test bed: a set of compute nodes
// running MCC processes, connected by the message-passing router, with a
// shared reliable checkpoint store (the paper's NFS mount), per-node
// failure injection, resurrection of failed processes from checkpoint
// files, and a bandwidth-throttled network that models the 100 Mbps link
// of §5 for the migration experiments.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/migrate"
	"repro/internal/msg"
	"repro/internal/rt"
)

// MemStore is an in-memory migrate.Store: the degenerate "reliable
// distributed storage medium" for single-process simulations and tests.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Put stores a checkpoint. The copy overwrites the previous buffer for
// name when it fits: Get only ever hands out copies, so the old bytes
// are unaliased, and a steady checkpoint loop (same head name, same
// image size every interval) stores without allocating.
func (s *MemStore) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := s.m[name]
	if cap(cp) < len(data) {
		cp = make([]byte, len(data))
	}
	cp = cp[:len(data)]
	copy(cp, data)
	s.m[name] = cp
	return nil
}

// Get retrieves a checkpoint. A missing name reports os.ErrNotExist (so
// callers can tell "no checkpoint yet" from I/O failure), and the
// returned slice is a defensive copy — callers may retain or mutate it
// without aliasing the stored bytes.
func (s *MemStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	if !ok {
		return nil, fmt.Errorf("cluster: checkpoint %q: %w", name, os.ErrNotExist)
	}
	out := make([]byte, len(d))
	copy(out, d)
	return out, nil
}

// Delete removes a checkpoint; deleting a missing name is a no-op (the
// checkpoint pipeline prunes superseded chain members best-effort).
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, name)
	return nil
}

// List enumerates checkpoint names, sorted.
func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// DirStore is a directory-backed migrate.Store — checkpoint files are real
// executables-with-header on disk, visible to every "node" like the
// paper's NFS mount.
type DirStore struct{ Dir string }

// NewDirStore creates the directory if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{Dir: dir}, nil
}

func (s *DirStore) path(name string) (string, error) {
	if strings.ContainsAny(name, "/\\") || name == "" || name == "." || name == ".." {
		return "", fmt.Errorf("cluster: invalid checkpoint name %q", name)
	}
	return filepath.Join(s.Dir, name+".mcc"), nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. A package variable so tests can assert the call happens on the
// Put path (and simulate a store medium that fails the sync).
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// Put writes a checkpoint file (mode 0755: checkpoints are executables).
// The write is crash-safe: data goes to a uniquely named temp file in the
// store directory, is fsynced, is atomically renamed into place, and the
// directory itself is fsynced so the rename survives power loss (the
// temp-file fsync alone makes the *bytes* durable, not the entry) — a
// node that dies mid-checkpoint can never leave a truncated image behind
// to poison a later Resurrect, and concurrent writers of the same name
// never stomp each other's temp file.
func (s *DirStore) Put(name string, data []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(s.Dir, "."+name+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if werr == nil {
		werr = f.Chmod(0o755)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, p)
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return werr
	}
	return syncDir(s.Dir)
}

// Get reads a checkpoint file. A missing checkpoint keeps its
// os.ErrNotExist identity through the added context, so callers can
// distinguish "no checkpoint yet" from real I/O failure with errors.Is.
func (s *DirStore) Get(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("cluster: checkpoint %q: %w", name, err)
	}
	return data, nil
}

// Delete removes a checkpoint file; a missing file is a no-op.
func (s *DirStore) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// List enumerates checkpoint names, sorted. A store directory that has
// disappeared lists as empty (indistinguishable from "no checkpoints
// yet") rather than erroring: List gates best-effort recovery decisions,
// and callers that must distinguish probe with Get.
func (s *DirStore) List() ([]string, error) {
	ents, err := os.ReadDir(s.Dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if n, ok := strings.CutSuffix(e.Name(), ".mcc"); ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

// throttledConn rate-limits writes to model a fixed-bandwidth link. Reads
// are left unthrottled: migration traffic is overwhelmingly one-way, and
// the paper's transfer fraction is dominated by the state upload.
type throttledConn struct {
	net.Conn
	bytesPerSec float64
	mu          sync.Mutex
	debt        time.Duration
	last        time.Time
}

func (c *throttledConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 && c.bytesPerSec > 0 {
		c.mu.Lock()
		now := time.Now()
		if !c.last.IsZero() {
			// Pay down transmission debt accumulated since the last write.
			elapsed := now.Sub(c.last)
			if elapsed > c.debt {
				c.debt = 0
			} else {
				c.debt -= elapsed
			}
		}
		c.last = now
		c.debt += time.Duration(float64(n) / c.bytesPerSec * float64(time.Second))
		sleep := c.debt
		c.mu.Unlock()
		time.Sleep(sleep)
	}
	return n, err
}

// ThrottledDialer returns a migrate.Dialer whose connections model a link
// of the given bandwidth in bits per second (e.g. 100_000_000 for the
// paper's 100 Mbps network). Zero means unthrottled.
func ThrottledDialer(bitsPerSec int64) migrate.Dialer {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if bitsPerSec <= 0 {
			return conn, nil
		}
		return &throttledConn{Conn: conn, bytesPerSec: float64(bitsPerSec) / 8}, nil
	}
}

// ProcState is a node process's final disposition.
type ProcState struct {
	Node   int64
	Status rt.Status
	Halt   int64
	Err    error
	Killed bool
	Steps  uint64
}

// Config configures a simulated cluster.
type Config struct {
	// Store is the shared checkpoint store (default: a fresh MemStore).
	Store migrate.Store
	// Stdout receives process output (default: discard).
	Stdout io.Writer
	// Fuel bounds each process (default 500M steps).
	Fuel uint64
	// Heap configures per-process heaps.
	Heap heap.Config
	// Quantum is the kill-check granularity in steps (default 20_000).
	Quantum uint64
	// Workers bounds concurrently executing node quanta (0 = unbounded);
	// see EngineConfig.Workers.
	Workers int
	// Ckpt selects the checkpoint pipeline mode; see EngineConfig.Ckpt.
	Ckpt ckpt.Options
}

// Cluster is a set of simulated nodes sharing a router and a checkpoint
// store. It is a thin facade over Engine, which owns process lifecycle,
// the worker pool and migration handoff.
type Cluster struct {
	*Engine
}

// New creates a cluster.
func New(cfg Config) *Cluster {
	return &Cluster{Engine: NewEngine(EngineConfig{
		Store:   cfg.Store,
		Stdout:  cfg.Stdout,
		Fuel:    cfg.Fuel,
		Heap:    cfg.Heap,
		Quantum: cfg.Quantum,
		Workers: cfg.Workers,
		Ckpt:    cfg.Ckpt,
	})}
}

// Externs returns the extern signature set a program running on this
// cluster compiles against: the standard set plus message passing.
func Externs() map[string]fir.ExternSig {
	sigs := rt.StdExterns().Sigs()
	for n, s := range msg.Sigs() {
		sigs[n] = s
	}
	return sigs
}
