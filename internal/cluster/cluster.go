// Package cluster simulates the paper's test bed: a set of compute nodes
// running MCC processes, connected by the message-passing router, with a
// shared reliable checkpoint store (the paper's NFS mount), per-node
// failure injection, resurrection of failed processes from checkpoint
// files, and a bandwidth-throttled network that models the 100 Mbps link
// of §5 for the migration experiments.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/migrate"
	"repro/internal/msg"
	"repro/internal/rt"
	"repro/internal/vm"
)

// MemStore is an in-memory migrate.Store: the degenerate "reliable
// distributed storage medium" for single-process simulations and tests.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Put stores a checkpoint.
func (s *MemStore) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	s.m[name] = cp
	return nil
}

// Get retrieves a checkpoint.
func (s *MemStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	if !ok {
		return nil, fmt.Errorf("cluster: checkpoint %q not found", name)
	}
	out := make([]byte, len(d))
	copy(out, d)
	return out, nil
}

// List enumerates checkpoint names, sorted.
func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// DirStore is a directory-backed migrate.Store — checkpoint files are real
// executables-with-header on disk, visible to every "node" like the
// paper's NFS mount.
type DirStore struct{ Dir string }

// NewDirStore creates the directory if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{Dir: dir}, nil
}

func (s *DirStore) path(name string) (string, error) {
	if strings.ContainsAny(name, "/\\") || name == "" || name == "." || name == ".." {
		return "", fmt.Errorf("cluster: invalid checkpoint name %q", name)
	}
	return filepath.Join(s.Dir, name+".mcc"), nil
}

// Put writes a checkpoint file (mode 0755: checkpoints are executables).
func (s *DirStore) Put(name string, data []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o755); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// Get reads a checkpoint file.
func (s *DirStore) Get(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// List enumerates checkpoint names, sorted.
func (s *DirStore) List() ([]string, error) {
	ents, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if n, ok := strings.CutSuffix(e.Name(), ".mcc"); ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

// throttledConn rate-limits writes to model a fixed-bandwidth link. Reads
// are left unthrottled: migration traffic is overwhelmingly one-way, and
// the paper's transfer fraction is dominated by the state upload.
type throttledConn struct {
	net.Conn
	bytesPerSec float64
	mu          sync.Mutex
	debt        time.Duration
	last        time.Time
}

func (c *throttledConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 && c.bytesPerSec > 0 {
		c.mu.Lock()
		now := time.Now()
		if !c.last.IsZero() {
			// Pay down transmission debt accumulated since the last write.
			elapsed := now.Sub(c.last)
			if elapsed > c.debt {
				c.debt = 0
			} else {
				c.debt -= elapsed
			}
		}
		c.last = now
		c.debt += time.Duration(float64(n) / c.bytesPerSec * float64(time.Second))
		sleep := c.debt
		c.mu.Unlock()
		time.Sleep(sleep)
	}
	return n, err
}

// ThrottledDialer returns a migrate.Dialer whose connections model a link
// of the given bandwidth in bits per second (e.g. 100_000_000 for the
// paper's 100 Mbps network). Zero means unthrottled.
func ThrottledDialer(bitsPerSec int64) migrate.Dialer {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if bitsPerSec <= 0 {
			return conn, nil
		}
		return &throttledConn{Conn: conn, bytesPerSec: float64(bitsPerSec) / 8}, nil
	}
}

// ProcState is a node process's final disposition.
type ProcState struct {
	Node   int64
	Status rt.Status
	Halt   int64
	Err    error
	Killed bool
	Steps  uint64
}

// Config configures a simulated cluster.
type Config struct {
	// Store is the shared checkpoint store (default: a fresh MemStore).
	Store migrate.Store
	// Stdout receives process output (default: discard).
	Stdout io.Writer
	// Fuel bounds each process (default 500M steps).
	Fuel uint64
	// Heap configures per-process heaps.
	Heap heap.Config
	// Quantum is the kill-check granularity in steps (default 20_000).
	Quantum uint64
}

// Cluster is a set of simulated nodes sharing a router and a checkpoint
// store.
type Cluster struct {
	cfg    Config
	Router *msg.Router
	Store  migrate.Store

	mu     sync.Mutex
	killed map[int64]bool
	states map[int64]*ProcState
	done   map[int64]chan struct{}
	wg     sync.WaitGroup
}

// New creates a cluster.
func New(cfg Config) *Cluster {
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.Stdout == nil {
		cfg.Stdout = io.Discard
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = 500_000_000
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 20_000
	}
	return &Cluster{
		cfg:    cfg,
		Router: msg.NewRouter(),
		Store:  cfg.Store,
		killed: make(map[int64]bool),
		states: make(map[int64]*ProcState),
		done:   make(map[int64]chan struct{}),
	}
}

// Externs returns the extern signature set a program running on this
// cluster compiles against: the standard set plus message passing.
func Externs() map[string]fir.ExternSig {
	sigs := rt.StdExterns().Sigs()
	for n, s := range msg.Sigs() {
		sigs[n] = s
	}
	return sigs
}

// StartProcess launches prog as the process for `node`, wired to the
// router (message passing) and the shared store (checkpoints). args are
// the process arguments (getarg); extra adds application externs (the grid
// harness registers ck_name, for example).
func (c *Cluster) StartProcess(node int64, prog *fir.Program, args []int64, extra rt.Registry) error {
	p := vm.NewProcess(prog, vm.Config{
		Heap:   c.cfg.Heap,
		Stdout: c.cfg.Stdout,
		Fuel:   c.cfg.Fuel,
		Name:   fmt.Sprintf("node-%d", node),
		Args:   args,
		Seed:   node,
	})
	for n, e := range c.Router.Externs(node) {
		p.RegisterExtern(n, e.Sig, e.Fn)
	}
	for n, e := range extra {
		p.RegisterExtern(n, e.Sig, e.Fn)
	}
	mig := &migrate.Migrator{Store: c.Store}
	p.SetMigrateHandler(mig.Handle)
	if err := p.Start(); err != nil {
		return err
	}
	c.track(node, p)
	return nil
}

// track runs a started process in a goroutine with kill checks between
// quanta.
func (c *Cluster) track(node int64, p rt.Proc) {
	done := make(chan struct{})
	c.mu.Lock()
	c.states[node] = &ProcState{Node: node, Status: rt.StatusRunning}
	c.done[node] = done
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer close(done)
		for {
			if c.isKilled(node) {
				c.record(node, p, true)
				return
			}
			st, _ := p.RunSteps(c.cfg.Quantum)
			if st != rt.StatusRunning {
				c.record(node, p, false)
				return
			}
		}
	}()
}

func (c *Cluster) isKilled(node int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed[node]
}

func (c *Cluster) record(node int64, p rt.Proc, killed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states[node] = &ProcState{
		Node: node, Status: p.Status(), Halt: p.HaltCode(),
		Err: p.Err(), Killed: killed, Steps: p.Steps(),
	}
}

// Fail kills the process on a node (it stops at its next quantum boundary
// or pending receive) and notifies every other node through the router's
// rollback epoch.
func (c *Cluster) Fail(node int64) {
	c.mu.Lock()
	c.killed[node] = true
	c.mu.Unlock()
	c.Router.Fail(node)
}

// Resurrect loads a checkpoint from the shared store and revives it as the
// process for `node` — on a "different machine", which in this simulation
// means a fresh goroutine and heap. The router clears the node's failed
// mark; survivors have already rolled back to the matching speculation
// boundary.
func (c *Cluster) Resurrect(node int64, checkpoint string, extra rt.Registry) error {
	// Wait for the failed process's driver goroutine to observe the kill
	// and stop; resurrecting while a zombie of the old incarnation still
	// runs would give the node two processes.
	c.mu.Lock()
	done := c.done[node]
	c.mu.Unlock()
	if done != nil {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			return fmt.Errorf("cluster: node %d did not stop within 30s of failure", node)
		}
	}
	c.mu.Lock()
	delete(c.killed, node)
	c.mu.Unlock()

	externs := c.Router.Externs(node)
	for n, e := range extra {
		externs[n] = e
	}
	p, err := migrate.LoadCheckpoint(c.Store, checkpoint, migrate.Options{
		Externs: externs,
		Config: vm.Config{
			Heap:   c.cfg.Heap,
			Stdout: c.cfg.Stdout,
			Fuel:   c.cfg.Fuel,
			Name:   fmt.Sprintf("node-%d(r)", node),
			Args:   nil, // carried by the image
		},
	})
	if err != nil {
		return err
	}
	mig := &migrate.Migrator{Store: c.Store}
	p.SetMigrateHandler(mig.Handle)
	c.Router.Restore(node)
	c.track(node, p)
	return nil
}

// Wait blocks until every tracked process reaches a terminal state or the
// timeout expires; it returns the final states by node.
func (c *Cluster) Wait(timeout time.Duration) (map[int64]*ProcState, error) {
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		c.Router.Close() // release blocked receivers
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return c.snapshot(), errors.New("cluster: processes still running after router close")
		}
		return c.snapshot(), fmt.Errorf("cluster: timeout after %s", timeout)
	}
	return c.snapshot(), nil
}

func (c *Cluster) snapshot() map[int64]*ProcState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int64]*ProcState, len(c.states))
	for k, v := range c.states {
		cp := *v
		out[k] = &cp
	}
	return out
}

// Close shuts the router down, releasing any blocked process.
func (c *Cluster) Close() { c.Router.Close() }
