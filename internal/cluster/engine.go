package cluster

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/migrate"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/spec"
	"repro/internal/vm"
	"repro/internal/wire"
)

// EngineConfig configures a parallel cluster engine.
type EngineConfig struct {
	// Engine names the execution engine every node process runs on — any
	// name registered with internal/engine ("vm", "risc"; default "vm").
	// Both built-ins are bit-exact against each other, so the choice only
	// affects speed.
	Engine string
	// Store is the shared checkpoint store (default: a fresh MemStore).
	Store migrate.Store
	// Stdout receives process output (default: discard).
	Stdout io.Writer
	// Fuel bounds each process (default 500M steps).
	Fuel uint64
	// Heap configures per-process heaps.
	Heap heap.Config
	// Quantum is the per-dispatch step granularity (default 20_000): the
	// engine regains control of every node — for kill, quiesce and handoff
	// checks — at least this often.
	Quantum uint64
	// Workers bounds how many node quanta execute concurrently (the
	// paper's testbed had a fixed machine count; -workers models it).
	// 0 means one OS-scheduled goroutine per node, unbounded.
	// A node parked in a border receive does not hold a worker slot, so
	// Workers=1 serializes execution without deadlocking on the exchange.
	Workers int
	// Slots, when set, is a pre-made worker semaphore shared with other
	// engines: a multi-tenant server runs many engines against ONE
	// machine-wide pool, so the aggregate quantum concurrency stays
	// bounded no matter how many runs are in flight. Overrides Workers.
	// The channel's capacity is the pool size; it must be used empty-able
	// (the engine sends to acquire, receives to release).
	Slots chan struct{}
	// Extra, when set, supplies application externs for nodes the engine
	// creates itself (the target of a node://K handoff that was never
	// explicitly started).
	Extra func(node int64) rt.Registry
	// Router, when set, is used instead of a fresh private router. A
	// distributed worker passes a router that hosts this engine's nodes
	// locally and uplinks everything else to the cluster transport.
	Router *msg.Router
	// RemoteHandoff, when set, ships a packed image to another OS process
	// for a migrate("node://K") whose target the router does not host
	// locally. seen is the source's rollback-epoch cursor, which the
	// adopting engine must install (Adopt) so the migrated incarnation has
	// observed exactly the failures its source had.
	RemoteHandoff func(src, dst int64, img *wire.Image, seen int64) error
	// Ckpt selects the checkpoint pipeline mode (full/delta/async) and the
	// delta-chain bound K. The zero value is the classic synchronous
	// full-image path.
	Ckpt ckpt.Options
	// Trace, when set, records lifecycle events on per-node streams
	// ("node/<id>": spec enter/commit/rollback, MSG_ROLL observation,
	// checkpoint capture, handoff, halt) and a control stream ("ctl":
	// quiesce/resume/fail/resurrect/adopt), each stamped with logical time
	// (node, rollback epoch, step count). Nil disables tracing: every
	// event site degrades to one predictable branch with no allocation —
	// the execution hot path itself (RunSteps) is never touched either
	// way.
	Trace *obs.Tracer
}

// Engine is the parallel cluster execution runtime: each simulated node
// runs its process on a dedicated goroutine, dispatched one quantum at a
// time through a bounded worker pool, with per-node lifecycle control
// (start, step, quiesce, fail, resurrect) and migration-aware handoff —
// a process that executes migrate("node://K") is quiesced at its migrate
// point on the source node and resumed as node K on a fresh driver, while
// every other node keeps running.
type Engine struct {
	cfg       EngineConfig
	Router    *msg.Router
	Store     migrate.Store
	committer *ckpt.Committer
	trace     *obs.Tracer
	ctl       *obs.Stream // "ctl" stream; nil when tracing is off

	slots chan struct{} // worker semaphore; nil = unbounded

	mu      sync.Mutex
	drivers map[int64]*driver
	states  map[int64]*ProcState
	extras  map[int64]rt.Registry
	killed  map[int64]bool // failed marks, persisted until Resurrect

	// active counts live driver goroutines. A WaitGroup cannot express
	// this lifecycle: Resurrect and handoff add drivers while Wait is
	// blocked, which is the documented Add-during-Wait race.
	activeMu   sync.Mutex
	activeCond *sync.Cond
	active     int

	handoffMu sync.Mutex // serializes node://K handoffs

	// resurrectHook, when set, runs inside Resurrect after the checkpoint
	// image is unpacked but before the new incarnation's driver starts —
	// the re-kill window fault scripts aim crashresurrect events at.
	resurrectHook atomic.Value // func(node int64, checkpoint string)
}

// lockedWriter serializes process output: every node goroutine shares the
// engine's Stdout.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// NewEngine creates an engine with no nodes.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.Stdout == nil {
		cfg.Stdout = io.Discard
	} else {
		cfg.Stdout = &lockedWriter{w: cfg.Stdout}
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = 500_000_000
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 20_000
	}
	router := cfg.Router
	if router == nil {
		router = msg.NewRouter()
	}
	if cfg.Ckpt.Trace == nil {
		cfg.Ckpt.Trace = cfg.Trace
	}
	e := &Engine{
		cfg:       cfg,
		Router:    router,
		Store:     cfg.Store,
		committer: ckpt.New(cfg.Store, cfg.Ckpt),
		trace:     cfg.Trace,
		drivers:   make(map[int64]*driver),
		states:    make(map[int64]*ProcState),
		extras:    make(map[int64]rt.Registry),
		killed:    make(map[int64]bool),
	}
	e.activeCond = sync.NewCond(&e.activeMu)
	if e.trace != nil {
		e.ctl = e.trace.Stream("ctl")
		// MSG_ROLL observations land on the observing node's own stream:
		// the hook fires on that node's goroutine, inside its receive.
		tr := e.trace
		router.SetRollHook(func(node, epoch int64) {
			tr.Stream("node/"+strconv.FormatInt(node, 10)).
				Emit(obs.EvMsgRoll, int(node), uint64(epoch), 0, 0, 0, "")
		})
	}
	if cfg.Slots != nil {
		e.slots = cfg.Slots
	} else if cfg.Workers > 0 {
		e.slots = make(chan struct{}, cfg.Workers)
	}
	return e
}

func (e *Engine) acquire() {
	if e.slots != nil {
		e.slots <- struct{}{}
	}
}

func (e *Engine) release() {
	if e.slots != nil {
		<-e.slots
	}
}

// yielder is the optional cooperative-yield surface both backends expose.
type yielder interface{ Yield() }

// procBox carries the process reference into its block hooks; the process
// only exists after the externs (and therefore the hooks) are built.
type procBox struct{ proc rt.Proc }

// hooksFor returns the worker-pool notifications for a node's receives,
// or nil when the pool is unbounded (a parked goroutine then costs
// nothing anyone else needs).
func (e *Engine) hooksFor(box *procBox) *msg.BlockHooks {
	if e.slots == nil {
		return nil
	}
	return &msg.BlockHooks{
		OnBlock: e.release,
		OnUnblock: func() {
			e.acquire()
			// End the quantum after this receive so a kill or quiesce
			// posted while the node was parked is honoured promptly.
			if y, ok := box.proc.(yielder); ok {
				y.Yield()
			}
		},
	}
}

// nodeExterns binds the router externs (with pool hooks) plus the
// application extras for a node.
func (e *Engine) nodeExterns(node int64, box *procBox, extra rt.Registry) rt.Registry {
	externs := e.Router.ExternsHooked(node, e.hooksFor(box))
	if gc, ok := externs["msg_gc"]; ok && e.cfg.Ckpt.Mode != ckpt.ModeFull {
		// In the incremental modes a node's msg_gc can run ahead of its
		// checkpoint's publication: under write-behind commit the program
		// continues while the commit is in flight, and a zombie that
		// outruns its kill by a quantum checkpoints with the head ref
		// withheld. Pruning the message buffers at the program's call
		// point would strand the resurrection — it resumes from the last
		// *published* checkpoint, which may lie before the announced
		// floor, needing exactly the messages in between. Defer the prune
		// until everything captured so far is durable and published; a
		// floor behind an aborted (never-published) commit is dropped
		// with it.
		externs["msg_gc"] = rt.Extern{
			Sig: gc.Sig,
			Fn: func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
				below := a[0].I
				e.committer.AfterOwnerDurable(node, func() {
					e.Router.GC(node, below)
				})
				return heap.IntVal(0), nil
			},
		}
	}
	for n, x := range extra {
		externs[n] = x
	}
	return externs
}

// StartProcess launches prog as the process for `node` on the configured
// execution engine, wired to the router (message passing) and the shared
// store (checkpoints). args are the process arguments (getarg); extra adds
// application externs (the grid harness registers ck_name, for example).
func (e *Engine) StartProcess(node int64, prog *fir.Program, args []int64, extra rt.Registry) error {
	eng, err := engine.Get(e.cfg.Engine)
	if err != nil {
		return err
	}
	p, err := eng.New(prog, engine.Config{
		Heap:   e.heapConfig(),
		Stdout: e.cfg.Stdout,
		Fuel:   e.cfg.Fuel,
		Name:   fmt.Sprintf("node-%d", node),
		Args:   args,
		Seed:   node,
	})
	if err != nil {
		return err
	}
	box := &procBox{}
	for n, x := range e.nodeExterns(node, box, extra) {
		p.RegisterExtern(n, x.Sig, x.Fn)
	}
	p.SetMigrateHandler(e.migrateHandler(node))
	e.observeSpec(node, p)
	if err := p.Start(); err != nil {
		return err
	}
	box.proc = p
	e.mu.Lock()
	e.extras[node] = extra
	e.mu.Unlock()
	e.startDriver(node, p)
	return nil
}

// extraFor returns the remembered (or factory-supplied) application
// externs for a node.
func (e *Engine) extraFor(node int64) rt.Registry {
	e.mu.Lock()
	extra, ok := e.extras[node]
	e.mu.Unlock()
	if !ok && e.cfg.Extra != nil {
		extra = e.cfg.Extra(node)
	}
	return extra
}

// unpackAs reconstructs a process image as the process for `node`, on the
// engine's configured execution backend.
func (e *Engine) unpackAs(node int64, img *wire.Image, extra rt.Registry, tag string) (rt.Proc, error) {
	box := &procBox{}
	proc, _, err := migrate.Unpack(img, migrate.Options{
		Engine:  e.cfg.Engine,
		Externs: e.nodeExterns(node, box, extra),
		Config: vm.Config{
			Heap:   e.heapConfig(),
			Stdout: e.cfg.Stdout,
			Fuel:   e.cfg.Fuel,
			Name:   fmt.Sprintf("node-%d(%s)", node, tag),
			Args:   nil, // carried by the image
		},
	})
	if err != nil {
		return nil, err
	}
	proc.SetMigrateHandler(e.migrateHandler(node))
	e.observeSpec(node, proc)
	box.proc = proc
	return proc, nil
}

// heapConfig returns the per-process heap configuration: the engine's,
// with dirty tracking enabled whenever the incremental checkpoint
// pipeline may capture deltas.
func (e *Engine) heapConfig() heap.Config {
	hc := e.cfg.Heap
	if e.cfg.Ckpt.Mode != ckpt.ModeFull {
		hc.TrackDirty = true
	}
	return hc
}

// CkptStats returns the checkpoint pipeline counters.
func (e *Engine) CkptStats() ckpt.Stats { return e.committer.Stats() }

// stream returns the trace stream for a node, nil when tracing is off.
func (e *Engine) stream(node int64) *obs.Stream {
	if e.trace == nil {
		return nil
	}
	return e.trace.Stream("node/" + strconv.FormatInt(node, 10))
}

// stepsOf reads a node's step counter. Only safe from the node's own
// execution goroutine (a migrate handler or extern it is running) or
// while it is provably parked.
func (e *Engine) stepsOf(node int64) uint64 {
	if d := e.driver(node); d != nil {
		return d.proc.Steps()
	}
	return 0
}

// observeSpec wires a process's speculation lifecycle onto its node trace
// stream. The callbacks run on the node's own goroutine, so reading the
// step counter there is race-free.
func (e *Engine) observeSpec(node int64, p rt.Proc) {
	if e.trace == nil {
		return
	}
	s := e.stream(node)
	seen := func() uint64 { return uint64(e.Router.Seen(node)) }
	p.Spec().SetObserver(spec.Observer{
		Enter: func(ord int, id int64) {
			s.Emit(obs.EvSpecEnter, int(node), seen(), p.Steps(), int64(ord), id, "")
		},
		Commit: func(ord int, id int64) {
			s.Emit(obs.EvSpecCommit, int(node), seen(), p.Steps(), int64(ord), id, "")
		},
		Rollback: func(ord int, id int64, discarded int) {
			s.Emit(obs.EvSpecRollback, int(node), seen(), p.Steps(), int64(ord), int64(discarded), "")
		},
	})
}

// RegisterMetrics registers this engine's per-package Stats surfaces as
// snapshot sources on reg: "msg.*" (router), "ckpt.*" (checkpoint
// pipeline), "spec.*" (speculation counters aggregated across live
// node processes — race-free because the spec counters are atomics) and
// "engine.*" (execution-engine artifact-cache hit/miss/evict counters).
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	reg.AddSource("engine", engine.CacheStats)
	reg.AddSource("msg", func() map[string]uint64 {
		s := e.Router.Stats()
		return map[string]uint64{
			"sends": s.Sends, "recvs": s.Recvs, "rolls": s.Rolls,
			"failures": s.Failures, "gced": s.GCed, "words_sent": s.WordsSent,
		}
	})
	reg.AddSource("ckpt", func() map[string]uint64 {
		s := e.committer.Stats()
		return map[string]uint64{
			"checkpoints": s.Checkpoints, "fulls": s.Fulls, "deltas": s.Deltas,
			"bytes_written": s.BytesWritten, "pause_ns": s.PauseNs,
			"capture_ns": s.CaptureNs, "commit_ns": s.CommitNs,
			"aborted": s.Aborted, "recoveries": s.Recoveries,
			"recovery_ns": s.RecoveryNs, "pruned": s.Pruned,
			"prune_failures": s.PruneFailures,
		}
	})
	reg.AddSource("spec", func() map[string]uint64 {
		e.mu.Lock()
		procs := make([]rt.Proc, 0, len(e.drivers))
		for _, d := range e.drivers {
			procs = append(procs, d.proc)
		}
		e.mu.Unlock()
		var enters, commits, rollbacks, discarded, maxDepth uint64
		for _, p := range procs {
			st := p.Spec().Stats()
			enters += st.Enters
			commits += st.Commits
			rollbacks += st.Rollbacks
			discarded += st.LevelsDiscarded
			if d := uint64(st.MaxDepth); d > maxDepth {
				maxDepth = d
			}
		}
		return map[string]uint64{
			"enters": enters, "commits": commits, "rollbacks": rollbacks,
			"levels_discarded": discarded, "max_depth": maxDepth,
		}
	})
}

// migrateHandler routes migrate targets: "node://K" is an in-engine
// handoff to another simulated node; checkpoint:// goes through the
// engine's checkpoint pipeline (full, delta or async per EngineConfig);
// everything else (suspend://, migrate://…) goes through the standard
// Migrator against the shared store.
func (e *Engine) migrateHandler(node int64) rt.MigrateHandler {
	mig := &migrate.Migrator{Store: e.Store}
	return func(req *rt.MigrationRequest) (rt.MigrateOutcome, error) {
		if rest, ok := strings.CutPrefix(req.Target, "node://"); ok {
			dst, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return rt.OutcomeContinueLocal, fmt.Errorf("cluster: bad node target %q", req.Target)
			}
			return e.handoff(node, dst, req)
		}
		if proto, addr, err := migrate.ParseTarget(req.Target); err == nil && proto == migrate.ProtoCheckpoint {
			s := e.stream(node)
			var t0 time.Time
			if s != nil {
				t0 = time.Now()
			}
			if err := e.committer.Checkpoint(req, addr, node); err != nil {
				return rt.OutcomeContinueLocal, err
			}
			if s != nil {
				// B is the checkpoint pause as the node experienced it:
				// capture+commit in the synchronous modes, capture only
				// under write-behind. We run on the node's goroutine here.
				s.Emit(obs.EvCkptCapture, int(node), uint64(e.Router.Seen(node)),
					e.stepsOf(node), 0, time.Since(t0).Nanoseconds(), addr)
			}
			return rt.OutcomeContinueLocal, nil
		}
		return mig.Handle(req)
	}
}

// handoff performs a node-to-node migration without stopping the cluster:
// the source process is already quiesced (it sits at its migrate
// instruction, on its own driver goroutine), so pack, unpack and resume
// run while every other node continues. On any error the process simply
// continues on the source node (§4.2.1).
func (e *Engine) handoff(src, dst int64, req *rt.MigrationRequest) (rt.MigrateOutcome, error) {
	if dst == src {
		return rt.OutcomeContinueLocal, nil
	}
	if s := e.stream(src); s != nil {
		// On the source node's goroutine, at its migrate instruction.
		s.Emit(obs.EvHandoff, int(src), uint64(e.Router.Seen(src)),
			e.stepsOf(src), dst, 0, "")
	}
	if e.cfg.RemoteHandoff != nil && !e.Router.Local(dst) {
		// The target node lives in another OS process: pack here, ship the
		// image (plus the source's epoch cursor) through the transport, and
		// terminate locally only once the remote engine has adopted it.
		// Deliberately NOT under handoffMu: the ship blocks on a network
		// round trip, and two engines migrating into each other would
		// deadlock if each held its lock while waiting for the other's
		// adoption (which takes handoffMu in Adopt).
		e.mu.Lock()
		srcFailed := e.killed[src]
		e.mu.Unlock()
		if srcFailed {
			return rt.OutcomeContinueLocal, fmt.Errorf("cluster: node %d is failed; its state cannot migrate out", src)
		}
		img, err := migrate.Pack(req.Rt, req.Label, req.FnIndex, req.Args)
		if err != nil {
			return rt.OutcomeContinueLocal, err
		}
		if err := e.cfg.RemoteHandoff(src, dst, img, e.Router.Seen(src)); err != nil {
			return rt.OutcomeContinueLocal, err
		}
		return rt.OutcomeMigrated, nil
	}
	e.handoffMu.Lock()
	defer e.handoffMu.Unlock()
	e.mu.Lock()
	d := e.drivers[dst]
	dstFailed := e.killed[dst]
	srcFailed := e.killed[src]
	e.mu.Unlock()
	if srcFailed {
		// The source node failed while this process was migrating out: its
		// state must die with the node (survivors have already rolled back
		// for it; only a checkpoint may revive it). Continue-local lets the
		// driver deliver the kill at the next quantum boundary.
		return rt.OutcomeContinueLocal, fmt.Errorf("cluster: node %d is failed; its state cannot migrate out", src)
	}
	if dstFailed {
		return rt.OutcomeContinueLocal, fmt.Errorf("cluster: node %d is failed", dst)
	}
	if d != nil && !d.hasExited() {
		return rt.OutcomeContinueLocal, fmt.Errorf("cluster: node %d already has a live process", dst)
	}
	img, err := migrate.Pack(req.Rt, req.Label, req.FnIndex, req.Args)
	if err != nil {
		return rt.OutcomeContinueLocal, err
	}
	extra := e.extraFor(dst)
	proc, err := e.unpackAs(dst, img, extra, "m")
	if err != nil {
		return rt.OutcomeContinueLocal, err
	}
	e.mu.Lock()
	e.extras[dst] = extra
	e.mu.Unlock()
	// The incoming incarnation has observed exactly the rollback epochs
	// its source had.
	e.Router.InheritSeen(src, dst)
	e.ctl.Emit(obs.EvAdopt, int(dst), uint64(e.Router.Seen(dst)), 0, src, 0, "")
	e.startDriver(dst, proc)
	return rt.OutcomeMigrated, nil
}

// Adopt installs an inbound migrated image as the process for `node` —
// the receiving half of a cross-process node://K handoff. seen is the
// source incarnation's rollback-epoch cursor, installed before the driver
// starts so the adopted process neither re-observes a rollback it already
// joined nor misses one it had yet to see.
func (e *Engine) Adopt(node int64, img *wire.Image, seen int64, extra rt.Registry) error {
	e.handoffMu.Lock()
	defer e.handoffMu.Unlock()
	e.mu.Lock()
	d := e.drivers[node]
	failed := e.killed[node]
	e.mu.Unlock()
	if failed {
		return fmt.Errorf("cluster: node %d is failed", node)
	}
	if d != nil && !d.hasExited() {
		return fmt.Errorf("cluster: node %d already has a live process", node)
	}
	if extra == nil {
		extra = e.extraFor(node)
	}
	proc, err := e.unpackAs(node, img, extra, "m")
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.extras[node] = extra
	e.mu.Unlock()
	e.Router.SetSeen(node, seen)
	e.ctl.Emit(obs.EvAdopt, int(node), uint64(seen), 0, -1, 0, "")
	e.startDriver(node, proc)
	return nil
}

// driver runs one node's process: a goroutine stepping the process one
// quantum at a time through the worker pool, with park points for
// quiesce and kill between quanta.
type driver struct {
	eng  *Engine
	node int64
	proc rt.Proc

	mu       sync.Mutex
	cond     *sync.Cond
	pauses   int  // outstanding Quiesce requests
	parked   bool // true while waiting out a quiesce
	stepping bool // a Step() is executing the process synchronously
	killed   bool
	exited   bool
	done     chan struct{}
}

func (d *driver) hasExited() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.exited
}

// startDriver registers and launches a (new incarnation of a) node.
func (e *Engine) startDriver(node int64, proc rt.Proc) {
	d := &driver{eng: e, node: node, proc: proc, done: make(chan struct{})}
	d.cond = sync.NewCond(&d.mu)
	e.mu.Lock()
	// A node failed before (or while) its process started stays failed
	// until Resurrect: the new incarnation is dead on arrival.
	d.killed = e.killed[node]
	e.drivers[node] = d
	e.states[node] = &ProcState{Node: node, Status: rt.StatusRunning}
	e.mu.Unlock()
	e.activeMu.Lock()
	e.active++
	e.activeMu.Unlock()
	go d.loop()
}

func (d *driver) loop() {
	defer func() {
		d.eng.activeMu.Lock()
		d.eng.active--
		if d.eng.active == 0 {
			d.eng.activeCond.Broadcast()
		}
		d.eng.activeMu.Unlock()
	}()
	defer func() {
		d.mu.Lock()
		d.exited = true
		d.cond.Broadcast()
		d.mu.Unlock()
		close(d.done)
	}()
	for {
		d.mu.Lock()
		// Stay parked while a Step() is executing the process, even if a
		// kill arrives mid-step: the kill is handled once Step returns,
		// never concurrently with it.
		for d.stepping || (d.pauses > 0 && !d.killed) {
			d.parked = true
			d.cond.Broadcast()
			d.cond.Wait()
		}
		d.parked = false
		killed := d.killed
		d.mu.Unlock()
		if killed {
			d.eng.record(d.node, d.proc, true)
			return
		}
		if d.proc.Status() != rt.StatusRunning {
			// A Step() during a quiesce may have finished the process.
			d.eng.record(d.node, d.proc, false)
			return
		}
		d.eng.acquire()
		st, _ := d.proc.RunSteps(d.eng.cfg.Quantum)
		d.eng.release()
		if st != rt.StatusRunning {
			d.eng.record(d.node, d.proc, false)
			return
		}
	}
}

func (e *Engine) record(node int64, p rt.Proc, killed bool) {
	// Flush the node's async checkpoint commits before its terminal state
	// becomes visible: anything keyed on checkpoint durability (fault
	// scripts, benchmarks) must observe every checkpoint the node captured
	// no later than its result. A failed node's queued commits were
	// discarded by AbortOwner, so this never stalls a kill.
	e.committer.DrainOwner(node)
	if s := e.stream(node); s != nil {
		// On the exiting driver's own goroutine: the final state of this
		// incarnation, with A = halt code and B = 1 when it died to a kill.
		var k int64
		if killed {
			k = 1
		}
		s.Emit(obs.EvHalt, int(node), uint64(e.Router.Seen(node)),
			p.Steps(), p.HaltCode(), k, "")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.states[node] = &ProcState{
		Node: node, Status: p.Status(), Halt: p.HaltCode(),
		Err: p.Err(), Killed: killed, Steps: p.Steps(),
	}
}

func (e *Engine) driver(node int64) *driver {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.drivers[node]
}

// Fail kills the process on a node (it stops at its next quantum boundary
// or pending receive) and notifies every other node through the router's
// rollback epoch. The failed mark persists until Resurrect: failing a
// node whose process has not started yet kills that process on arrival.
func (e *Engine) Fail(node int64) {
	e.mu.Lock()
	e.killed[node] = true
	d := e.drivers[node]
	e.mu.Unlock()
	if d != nil {
		d.mu.Lock()
		d.killed = true
		d.cond.Broadcast()
		d.mu.Unlock()
	}
	// Durability watermark: commits the failed node still has in flight
	// must not become the checkpoint its resurrection resumes from — the
	// committer discards queued commits and withholds the head ref of an
	// in-flight one.
	e.committer.AbortOwner(node)
	e.Router.Fail(node)
	// Emitted after the epoch bump so the event carries the epoch this
	// failure created — survivors' msg.roll events reference it.
	e.ctl.Emit(obs.EvFail, int(node), uint64(e.Router.Epoch()), 0, 0, 0, "")
}

// Quiesce parks a node's driver at its next quantum boundary and returns
// once it is parked; the process makes no further progress until Resume.
// Quiesce calls nest. A node blocked in a border receive parks only after
// the receive returns (delivery, rollback epoch, or router close).
func (e *Engine) Quiesce(node int64) error {
	d := e.driver(node)
	if d == nil {
		return fmt.Errorf("cluster: node %d has no process", node)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pauses++
	for !d.parked && !d.exited {
		d.cond.Wait()
	}
	if d.exited {
		d.pauses--
		return fmt.Errorf("cluster: node %d terminated before quiescing", node)
	}
	if e.ctl != nil {
		// The driver is parked under d.mu, so its step counter is stable.
		e.ctl.Emit(obs.EvQuiesce, int(node), uint64(e.Router.Seen(node)),
			d.proc.Steps(), 0, 0, "")
	}
	return nil
}

// Resume releases one Quiesce on a node.
func (e *Engine) Resume(node int64) error {
	d := e.driver(node)
	if d == nil {
		return fmt.Errorf("cluster: node %d has no process", node)
	}
	d.mu.Lock()
	if e.ctl != nil {
		var step uint64
		if d.parked {
			step = d.proc.Steps()
		}
		e.ctl.Emit(obs.EvResume, int(node), uint64(e.Router.Seen(node)), step, 0, 0, "")
	}
	if d.pauses > 0 {
		d.pauses--
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	return nil
}

// Step synchronously runs up to `quanta` quanta of a quiesced node's
// process on the calling goroutine (through the worker pool) and returns
// the resulting status — single-stepped deterministic execution for tests
// and debugging. The node must be quiesced.
func (e *Engine) Step(node int64, quanta int) (rt.Status, error) {
	d := e.driver(node)
	if d == nil {
		return 0, fmt.Errorf("cluster: node %d has no process", node)
	}
	d.mu.Lock()
	if !d.parked || d.stepping {
		d.mu.Unlock()
		return 0, fmt.Errorf("cluster: Step requires node %d to be quiesced (and not already stepping)", node)
	}
	// While stepping is set the driver stays parked even if a kill or
	// Resume lands mid-step, so the process is never run concurrently.
	d.stepping = true
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.stepping = false
		d.cond.Broadcast()
		d.mu.Unlock()
	}()
	st := d.proc.Status()
	for i := 0; i < quanta && st == rt.StatusRunning; i++ {
		e.acquire()
		var err error
		st, err = d.proc.RunSteps(e.cfg.Quantum)
		e.release()
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// SetResurrectWindowHook installs fn, invoked on every Resurrect after the
// checkpoint image is unpacked and before the new incarnation starts. A
// hook calling Fail(node) in that window — a failure landing during the
// node's own resurrection — leaves the fresh incarnation dead on arrival,
// to be revived by a later Resurrect. Pass nil to clear.
func (e *Engine) SetResurrectWindowHook(fn func(node int64, checkpoint string)) {
	e.resurrectHook.Store(&fn)
}

// Resurrect loads a checkpoint from the shared store and revives it as the
// process for `node` — on a "different machine", which in this simulation
// means a fresh driver goroutine and heap. The router clears the node's
// failed mark; survivors have already rolled back to the matching
// speculation boundary.
func (e *Engine) Resurrect(node int64, checkpoint string, extra rt.Registry) error {
	// Wait for the failed incarnation's driver to observe the kill and
	// stop; resurrecting while a zombie of the old incarnation still runs
	// would give the node two processes.
	if d := e.driver(node); d != nil {
		select {
		case <-d.done:
		case <-time.After(30 * time.Second):
			return fmt.Errorf("cluster: node %d did not stop within 30s of failure", node)
		}
	}
	// Wait out the failed incarnation's background commits so the head
	// name read below is stable, then resolve it (transparently across a
	// delta chain) to the last durable checkpoint.
	e.committer.DrainOwner(node)
	// Clear the failed mark before the restore work begins, not after: a
	// new Fail landing anywhere in the resurrection window must mark THIS
	// incarnation dead (startDriver re-reads the mark), not be erased by a
	// clear that happens later.
	e.mu.Lock()
	delete(e.killed, node)
	e.mu.Unlock()
	t0 := time.Now()
	img, err := migrate.FetchImage(e.Store, checkpoint)
	if err != nil {
		return err
	}
	if extra == nil {
		extra = e.extraFor(node)
	}
	proc, err := e.unpackAs(node, img, extra, "r")
	if err != nil {
		return err
	}
	e.committer.RecordRecovery(time.Since(t0))
	e.committer.ResumeOwner(node)
	e.ctl.Emit(obs.EvResurrect, int(node), uint64(e.Router.Epoch()), 0,
		0, time.Since(t0).Nanoseconds(), checkpoint)
	if p := e.resurrectHook.Load(); p != nil {
		if fn := *p.(*func(node int64, checkpoint string)); fn != nil {
			fn(node, checkpoint)
		}
	}
	e.mu.Lock()
	e.extras[node] = extra // remembered for a later handoff or resurrect
	rekilled := e.killed[node]
	e.mu.Unlock()
	if !rekilled {
		// A node re-failed during its own resurrection keeps its router
		// failed mark; the next Resurrect restores it.
		e.Router.Restore(node)
	}
	e.startDriver(node, proc)
	return nil
}

// Wait blocks until every tracked process reaches a terminal state or the
// timeout expires; it returns the final states by node. Quiesced nodes
// never terminate — Resume them first.
func (e *Engine) Wait(timeout time.Duration) (map[int64]*ProcState, error) {
	done := e.idleChan()
	select {
	case <-done:
	case <-time.After(timeout):
		e.Router.Close() // release blocked receivers
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return e.snapshot(), fmt.Errorf("cluster: processes still running after router close")
		}
		return e.snapshot(), fmt.Errorf("cluster: timeout after %s", timeout)
	}
	return e.snapshot(), nil
}

// idleChan returns a channel closed once no driver goroutine is live.
// The watcher goroutine persists until that happens; a Wait timeout
// closes the router, which drives every process (and so the watcher) out.
func (e *Engine) idleChan() chan struct{} {
	done := make(chan struct{})
	go func() {
		e.activeMu.Lock()
		for e.active > 0 {
			e.activeCond.Wait()
		}
		e.activeMu.Unlock()
		close(done)
	}()
	return done
}

func (e *Engine) snapshot() map[int64]*ProcState {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[int64]*ProcState, len(e.states))
	for k, v := range e.states {
		cp := *v
		out[k] = &cp
	}
	return out
}

// Close shuts the router down, releasing any blocked process.
func (e *Engine) Close() { e.Router.Close() }
