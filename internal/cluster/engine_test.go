package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/lang"
	"repro/internal/migrate"
	"repro/internal/rt"
)

// TestWorkersOneNoDeadlock pins the worker pool's slot-lending contract:
// with a single worker slot, a node parked in msg_recv must release its
// slot so the node that will send to it can run.
func TestWorkersOneNoDeadlock(t *testing.T) {
	prog, err := lang.Compile(pingPongSrc, Externs())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := New(Config{Workers: workers})
			defer c.Close()
			for n := int64(0); n < 2; n++ {
				if err := c.StartProcess(n, prog, nil, nil); err != nil {
					t.Fatal(err)
				}
			}
			states, err := c.Wait(30 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if states[0].Halt != 21 || states[1].Halt != 21 {
				t.Fatalf("halt codes: %d, %d (want 21, 21)", states[0].Halt, states[1].Halt)
			}
		})
	}
}

const handoffSrc = `
int main() {
	int me = node_id();
	ptr buf = alloc(1);
	buf[0] = 41;
	if (me == 0) {
		migrate("node://5");
	}
	return buf[0] + node_id();
}`

// TestNodeHandoff exercises the migration-aware handoff: node 0 executes
// migrate("node://5") and must be quiesced at its migrate point, packed,
// and resumed as node 5 — heap intact, externs rebound to the new node id
// — while node 1 keeps running undisturbed.
func TestNodeHandoff(t *testing.T) {
	prog, err := lang.Compile(handoffSrc, Externs())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{Workers: 2})
	defer e.Close()
	for n := int64(0); n < 2; n++ {
		if err := e.StartProcess(n, prog, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	states, err := e.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st := states[0]; st.Status != rt.StatusMigrated {
		t.Fatalf("node 0 = %+v, want migrated", st)
	}
	if st := states[1]; st.Status != rt.StatusHalted || st.Halt != 42 {
		t.Fatalf("node 1 = %+v, want halt 42", st)
	}
	// The migrated-in incarnation sees node_id() == 5 and the heap it
	// packed on node 0.
	if st := states[5]; st == nil || st.Status != rt.StatusHalted || st.Halt != 46 {
		t.Fatalf("node 5 = %+v, want halt 46", st)
	}
}

// TestHandoffToOccupiedNodeContinuesLocal: migrating onto a node that
// already runs a process must fail the migration, and per §4.2.1 the
// process continues on the source machine.
func TestHandoffToOccupiedNodeContinuesLocal(t *testing.T) {
	src := `
int main() {
	migrate("node://1");
	return node_id() * 100 + 7;
}`
	prog, err := lang.Compile(src, Externs())
	if err != nil {
		t.Fatal(err)
	}
	blocked := `
int main() {
	ptr buf = alloc(1);
	int r = msg_recv(9, 1, buf, 0, 1); // parked for the whole run
	return r;
}`
	bprog, err := lang.Compile(blocked, Externs())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{})
	defer e.Close()
	if err := e.StartProcess(1, bprog, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.StartProcess(0, prog, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Node 0's migration to occupied node 1 fails; it continues locally
	// and halts with its own node id.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := e.snapshot()[0]; st.Status == rt.StatusHalted {
			if st.Halt != 7 {
				t.Fatalf("node 0 halt = %d, want 7 (continue-local)", st.Halt)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 0 never halted")
		}
		time.Sleep(time.Millisecond)
	}
	e.Close() // release node 1's parked receive
	if _, err := e.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestFailBeforeStartKillsOnArrival: a node's failed mark persists, so a
// process started (or migrated in) after the failure is dead on arrival
// until the node is resurrected.
func TestFailBeforeStartKillsOnArrival(t *testing.T) {
	prog, err := lang.Compile(helloSrc, Externs())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{})
	defer e.Close()
	e.Fail(3)
	if err := e.StartProcess(3, prog, nil, nil); err != nil {
		t.Fatal(err)
	}
	states, err := e.Wait(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st := states[3]; !st.Killed {
		t.Fatalf("state = %+v, want killed on arrival", st)
	}
}

// TestQuiesceStepResume drives a node's lifecycle by hand: quiesce parks
// it at a quantum boundary, Step executes it synchronously to completion,
// Resume lets the driver observe the terminal state.
func TestQuiesceStepResume(t *testing.T) {
	src := `
int main() {
	int acc = 0;
	for (int i = 0; i < 200000; i += 1) { acc += 1; }
	return 7;
}`
	prog, err := lang.Compile(src, Externs())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{Quantum: 500})
	defer e.Close()
	if err := e.StartProcess(0, prog, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Quiesce(0); err != nil {
		t.Fatal(err)
	}
	st, err := e.Step(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st != rt.StatusRunning {
		t.Fatalf("one quantum finished a 200k-iteration loop (status %s)", st)
	}
	for st == rt.StatusRunning {
		if st, err = e.Step(0, 100); err != nil {
			t.Fatal(err)
		}
	}
	if st != rt.StatusHalted {
		t.Fatalf("status = %s, want halted", st)
	}
	if err := e.Resume(0); err != nil {
		t.Fatal(err)
	}
	states, err := e.Wait(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if states[0].Status != rt.StatusHalted || states[0].Halt != 7 {
		t.Fatalf("state = %+v", states[0])
	}
}

// ringSrc is a miniature of the grid application: a ring all-exchange with
// speculation, periodic checkpoints, and MSG_ROLL-triggered retry. It is
// the failure-injection workload for the race-detector coverage below.
const ringSrc = `
int exchange(ptr buf, int me, int nodes, int step) {
	int right = (me + 1) % nodes;
	int left = (me + nodes - 1) % nodes;
	int s = msg_send(right, step, buf, 0, 1);
	if (s != 0) { return s; }
	return msg_recv(left, step, buf, 1, 1);
}

int main() {
	int nodes = getarg(0);
	int steps = getarg(1);
	int cki = getarg(2);
	int me = node_id();
	ptr buf = alloc(2);
	buf[0] = me + 1;
	int specid = speculate();
	int step = 1;
	while (step <= steps) {
		int err = exchange(buf, me, nodes, step);
		if (err == 1) { retry(specid); }
		if (err == 2) { return -1; }
		buf[0] = buf[0] + buf[1] * step;
		if (step % cki == 0) {
			commit(specid);
			ptr name = ck_name();
			migrate(name);
			msg_gc(step);
			specid = speculate();
		}
		step += 1;
	}
	commit(specid);
	return buf[0];
}`

// ringReference replays the ring computation sequentially in Go.
func ringReference(nodes, steps int) []int64 {
	vals := make([]int64, nodes)
	for n := range vals {
		vals[n] = int64(n) + 1
	}
	for step := 1; step <= steps; step++ {
		next := make([]int64, nodes)
		for n := range vals {
			left := (n + nodes - 1) % nodes
			next[n] = vals[n] + vals[left]*int64(step)
		}
		vals = next
	}
	return vals
}

func ringExterns() map[string]fir.ExternSig {
	sigs := Externs()
	sigs["ck_name"] = fir.ExternSig{Result: fir.TyPtr}
	return sigs
}

func ringCkExtern(node int64) rt.Registry {
	return rt.Registry{
		"ck_name": {
			Sig: fir.ExternSig{Result: fir.TyPtr},
			Fn: func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
				return r.Heap().AllocString(fmt.Sprintf("checkpoint://ring-ck-%d", node))
			},
		},
	}
}

// notifyStore triggers a callback on every checkpoint write.
type notifyStore struct {
	migrate.Store
	mu    sync.Mutex
	puts  map[string]int
	onPut func(name string, count int)
}

// Delete forwards pruning to the wrapped store (interface embedding
// would otherwise hide the optional method from the committer).
func (s *notifyStore) Delete(name string) error {
	if d, ok := s.Store.(interface{ Delete(string) error }); ok {
		return d.Delete(name)
	}
	return nil
}

func (s *notifyStore) Put(name string, data []byte) error {
	if err := s.Store.Put(name, data); err != nil {
		return err
	}
	s.mu.Lock()
	if s.puts == nil {
		s.puts = make(map[string]int)
	}
	s.puts[name]++
	n := s.puts[name]
	cb := s.onPut
	s.mu.Unlock()
	if cb != nil {
		cb(name, n)
	}
	return nil
}

// TestRingFailureRecovery runs the ring workload on a bounded worker pool,
// kills a node after its first checkpoint, resurrects it from the shared
// store, and requires the final values to match the sequential reference
// exactly. This test is the engine's race-detector workload: run it with
// `go test -race ./internal/cluster`.
func TestRingFailureRecovery(t *testing.T) {
	const (
		nodes = 4
		steps = 12
		cki   = 3
	)
	prog, err := lang.Compile(ringSrc, ringExterns())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			store := &notifyStore{Store: NewMemStore()}
			// A small quantum so the kill lands mid-run: the whole ring
			// program fits inside one default 20k-step quantum.
			e := NewEngine(EngineConfig{Store: store, Workers: workers, Quantum: 500})
			defer e.Close()

			const victim = int64(2)
			var failOnce sync.Once
			resurrected := make(chan error, 1)
			store.onPut = func(name string, count int) {
				if name != fmt.Sprintf("ring-ck-%d", victim) || count < 1 {
					return
				}
				failOnce.Do(func() {
					e.Fail(victim)
					go func() {
						time.Sleep(10 * time.Millisecond)
						resurrected <- e.Resurrect(victim, fmt.Sprintf("ring-ck-%d", victim), ringCkExtern(victim))
					}()
				})
			}

			args := []int64{nodes, steps, cki}
			for n := int64(0); n < nodes; n++ {
				if err := e.StartProcess(n, prog, args, ringCkExtern(n)); err != nil {
					t.Fatal(err)
				}
			}
			// The resurrection must be in flight before Wait: with the whole
			// run only a few quanta long, every node (including the doomed
			// incarnation) can go idle before the restart delay elapses.
			if err := <-resurrected; err != nil {
				t.Fatalf("resurrection: %v", err)
			}
			states, err := e.Wait(60 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			want := ringReference(nodes, steps)
			for n := int64(0); n < nodes; n++ {
				st := states[n]
				if st.Status != rt.StatusHalted {
					t.Fatalf("node %d: %+v", n, st)
				}
				if st.Halt != want[n] {
					t.Fatalf("node %d halt = %d, want %d (all want: %v)", n, st.Halt, want[n], want)
				}
			}
			if e.Router.Stats().Rolls == 0 {
				t.Fatal("no MSG_ROLL deliveries: survivors never rolled back")
			}
		})
	}
}
