package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/lang"
	"repro/internal/migrate"
	"repro/internal/rt"
	"repro/internal/wire"
)

// runRing executes the ring workload on an engine with the given
// checkpoint options and store, driving one failure + resurrection of
// `victim` after its checkpoint count reaches failAfter (0 = no failure),
// and verifies every node against the sequential reference.
func runRing(t *testing.T, store *notifyStore, opts ckpt.Options, workers int, victim int64, failAfter int, delay time.Duration) *Engine {
	t.Helper()
	const (
		nodes = 4
		steps = 12
		cki   = 3
	)
	prog, err := lang.Compile(ringSrc, ringExterns())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{Store: store, Workers: workers, Quantum: 500, Ckpt: opts})
	defer e.Close()

	resurrected := make(chan error, 1)
	if failAfter > 0 {
		var failOnce sync.Once
		head := fmt.Sprintf("ring-ck-%d", victim)
		store.onPut = func(name string, count int) {
			if name != head || count < failAfter {
				return
			}
			failOnce.Do(func() {
				e.Fail(victim)
				go func() {
					time.Sleep(delay)
					resurrected <- e.Resurrect(victim, head, ringCkExtern(victim))
				}()
			})
		}
	} else {
		close(resurrected)
	}

	args := []int64{nodes, steps, cki}
	for n := int64(0); n < nodes; n++ {
		if err := e.StartProcess(n, prog, args, ringCkExtern(n)); err != nil {
			t.Fatal(err)
		}
	}
	if failAfter > 0 {
		if err := <-resurrected; err != nil {
			t.Fatalf("resurrection: %v", err)
		}
	}
	states, err := e.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := ringReference(nodes, steps)
	for n := int64(0); n < nodes; n++ {
		st := states[n]
		if st.Status != rt.StatusHalted {
			t.Fatalf("node %d: %+v", n, st)
		}
		if st.Halt != want[n] {
			t.Fatalf("node %d halt = %d, want %d", n, st.Halt, want[n])
		}
	}
	return e
}

// TestCkptModesRingBitExact: the ring converges to the same reference
// values in every checkpoint pipeline mode, failure-free and across a
// failure + resurrection, on unbounded and bounded worker pools.
func TestCkptModesRingBitExact(t *testing.T) {
	for _, mode := range []ckpt.Mode{ckpt.ModeFull, ckpt.ModeDelta, ckpt.ModeAsync} {
		for _, workers := range []int{0, 2} {
			t.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(t *testing.T) {
				store := &notifyStore{Store: NewMemStore()}
				e := runRing(t, store, ckpt.Options{Mode: mode}, workers, 1, 1, 10*time.Millisecond)
				st := e.CkptStats()
				if st.Checkpoints == 0 {
					t.Fatal("no checkpoints recorded")
				}
				if mode != ckpt.ModeFull && st.Deltas == 0 {
					t.Fatalf("mode %s wrote no delta checkpoints: %+v", mode, st)
				}
				if st.Recoveries != 1 {
					t.Fatalf("recoveries = %d, want 1", st.Recoveries)
				}
			})
		}
	}
}

// slowStore delays chain-member writes so an async commit is reliably in
// flight when the fault script kills the node.
type slowStore struct {
	migrate.Store
	memberDelay time.Duration
}

func (s *slowStore) Put(name string, data []byte) error {
	if strings.Contains(name, "@") {
		time.Sleep(s.memberDelay)
	}
	return s.Store.Put(name, data)
}

// TestAsyncKillMidCommitRecovery is the durability-watermark race test
// (run under -race): the store is slow, so when the victim dies it still
// has an async commit in flight. The resurrection must come back from
// the last *durable* checkpoint — never the in-flight one — and the ring
// must still converge bit-exactly. Exercised across both kill points:
// after the first checkpoint (mostly-empty chain) and a later one.
func TestAsyncKillMidCommitRecovery(t *testing.T) {
	for _, failAfter := range []int{1, 2} {
		t.Run(fmt.Sprintf("failAfter=%d", failAfter), func(t *testing.T) {
			store := &notifyStore{Store: &slowStore{Store: NewMemStore(), memberDelay: 3 * time.Millisecond}}
			e := runRing(t, store, ckpt.Options{Mode: ckpt.ModeAsync, K: 2}, 2, 2, failAfter, 5*time.Millisecond)
			st := e.CkptStats()
			if st.Checkpoints == 0 || st.Deltas == 0 {
				t.Fatalf("async pipeline inactive: %+v", st)
			}
		})
	}
}

// TestDeltaChainResurrect pins the on-store chain layout: delta mode with
// a small K leaves immutable members under head@N plus a head ref, the
// head resolves through FetchImage to a full image, and resurrection
// from a mid-chain head converges.
func TestDeltaChainResurrect(t *testing.T) {
	store := &notifyStore{Store: NewMemStore()}
	// K=3 with 4 checkpoints/node: the survivors' heads land on a delta
	// (full@0 + deltas@1..3), so resolution walks a real chain.
	e := runRing(t, store, ckpt.Options{Mode: ckpt.ModeDelta, K: 3}, 0, 1, 2, 10*time.Millisecond)

	head := "ring-ck-0" // a survivor's chain, untouched by the failure
	data, err := e.Store.Get(head)
	if err != nil {
		t.Fatal(err)
	}
	target, ok := wire.DecodeRef(data)
	if !ok {
		t.Fatalf("head %q does not hold a ref record", head)
	}
	if !strings.HasPrefix(target, head+"@") {
		t.Fatalf("head ref %q does not name a chain member of %q", target, head)
	}
	chain, err := migrate.ResolveChain(e.Store, head)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) < 2 {
		t.Fatalf("chain %v too short to exercise delta resolution", chain)
	}
	if len(chain) > 4 {
		t.Fatalf("chain %v longer than K=3 allows (full + 3 deltas)", chain)
	}
	img, err := migrate.FetchImage(e.Store, head)
	if err != nil {
		t.Fatal(err)
	}
	if img.State.Heap == nil || len(img.State.Heap.Entries) == 0 {
		t.Fatal("rebuilt image has an empty heap")
	}
}

// TestDeltaChainPruning: publishing a full image deletes the chain
// members it supersedes, so the store does not grow without bound over
// a long run.
func TestDeltaChainPruning(t *testing.T) {
	store := &notifyStore{Store: NewMemStore()}
	// K=1 alternates full/delta, so several fulls publish (and prune)
	// during the run.
	runRing(t, store, ckpt.Options{Mode: ckpt.ModeDelta, K: 1}, 0, 0, 0, 0)

	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	byHead := make(map[string][]string)
	for _, n := range names {
		if i := strings.IndexByte(n, '@'); i >= 0 {
			byHead[n[:i]] = append(byHead[n[:i]], n)
		}
	}
	for head, members := range byHead {
		// Everything before the last published full is pruned: at most
		// the latest full plus the deltas after it (≤ K) may remain.
		if len(members) > 2 {
			t.Fatalf("chain %q kept %d members after pruning: %v", head, len(members), members)
		}
		chain, err := migrate.ResolveChain(store, head)
		if err != nil {
			t.Fatalf("chain %q unresolvable after pruning: %v", head, err)
		}
		if len(chain) == 0 {
			t.Fatalf("chain %q empty", head)
		}
	}
	if len(byHead) == 0 {
		t.Fatal("no chain members in the store at all")
	}
}
