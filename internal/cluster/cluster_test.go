package cluster

import (
	"bytes"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/lang"
	"repro/internal/rt"
)

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("a", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte{3}); err != nil {
		t.Fatal(err)
	}
	d, err := s.Get("a")
	if err != nil || len(d) != 2 {
		t.Fatalf("Get: %v %v", d, err)
	}
	// Mutating the returned slice must not corrupt the store.
	d[0] = 99
	d2, _ := s.Get("a")
	if d2[0] != 1 {
		t.Fatal("store aliased caller memory")
	}
	names, _ := s.List()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v", names)
	}
	if _, err := s.Get("ghost"); err == nil {
		t.Fatal("missing name returned data")
	}
}

func TestDirStore(t *testing.T) {
	s, err := NewDirStore(t.TempDir() + "/ckpts")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("grid-ck-0", []byte("#!mcc-run\nxyz")); err != nil {
		t.Fatal(err)
	}
	d, err := s.Get("grid-ck-0")
	if err != nil || string(d) != "#!mcc-run\nxyz" {
		t.Fatalf("Get: %q %v", d, err)
	}
	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "grid-ck-0" {
		t.Fatalf("List = %v, %v", names, err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a\\b"} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", bad)
		}
	}
}

// TestDirStorePutAtomic: concurrent writers of the same checkpoint name
// must each land a complete image (rename is atomic; temp files are
// unique), and no temp droppings may linger or show up in List.
func TestDirStorePutAtomic(t *testing.T) {
	s, err := NewDirStore(t.TempDir() + "/ckpts")
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	images := make([][]byte, writers)
	for i := range images {
		images[i] = bytes.Repeat([]byte{byte('A' + i)}, 64<<10)
	}
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		go func(i int) { errs <- s.Put("grid-ck-0", images[i]) }(i)
	}
	for i := 0; i < writers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Get("grid-ck-0")
	if err != nil {
		t.Fatal(err)
	}
	complete := false
	for _, img := range images {
		complete = complete || bytes.Equal(got, img)
	}
	if !complete {
		t.Fatalf("checkpoint is not any writer's complete image (%d bytes, first byte %q)", len(got), got[0])
	}
	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "grid-ck-0" {
		t.Fatalf("List = %v, %v (temp files must not leak into the namespace)", names, err)
	}
	ents, err := os.ReadDir(s.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		var left []string
		for _, e := range ents {
			left = append(left, e.Name())
		}
		t.Fatalf("store directory holds %v, want only the checkpoint", left)
	}
}

func TestThrottledDialerLimitsBandwidth(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(io.Discard, conn)
				conn.Close()
			}()
		}
	}()

	const payload = 1 << 18 // 256 KiB
	send := func(bps int64) time.Duration {
		dial := ThrottledDialer(bps)
		conn, err := dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		buf := make([]byte, 16384)
		start := time.Now()
		for sent := 0; sent < payload; sent += len(buf) {
			if _, err := conn.Write(buf); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	fast := send(0)
	// 256 KiB at 20 Mbps ≈ 105 ms.
	slow := send(20_000_000)
	if slow < 80*time.Millisecond {
		t.Fatalf("throttled send took %s, expected ≳100ms", slow)
	}
	if slow < fast {
		t.Fatalf("throttled (%s) faster than unthrottled (%s)", slow, fast)
	}
}

const helloSrc = `
int main() {
	print_int(node_id());
	return int(node_id()) * 10;
}`

func TestClusterRunsProcesses(t *testing.T) {
	prog, err := lang.Compile(helloSrc, Externs())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c := New(Config{Stdout: &out})
	defer c.Close()
	for n := int64(0); n < 3; n++ {
		if err := c.StartProcess(n, prog, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	states, err := c.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n < 3; n++ {
		st := states[n]
		if st.Status != rt.StatusHalted || st.Halt != n*10 {
			t.Fatalf("node %d: %+v", n, st)
		}
	}
}

const pingPongSrc = `
int main() {
	int me = node_id();
	ptr buf = alloc(1);
	if (me == 0) {
		buf[0] = 7;
		int s = msg_send(1, 1, buf, 0, 1);
		int r = msg_recv(1, 2, buf, 0, 1);
		if (r != 0) { return -1; }
		return buf[0]; // 7 * 3
	}
	int r = msg_recv(0, 1, buf, 0, 1);
	if (r != 0) { return -1; }
	buf[0] = buf[0] * 3;
	int s = msg_send(0, 2, buf, 0, 1);
	return buf[0];
}`

func TestClusterMessagePassing(t *testing.T) {
	prog, err := lang.Compile(pingPongSrc, Externs())
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	defer c.Close()
	for n := int64(0); n < 2; n++ {
		if err := c.StartProcess(n, prog, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	states, err := c.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if states[0].Halt != 21 || states[1].Halt != 21 {
		t.Fatalf("halt codes: %d, %d (want 21, 21)", states[0].Halt, states[1].Halt)
	}
}

func TestFailStopsProcess(t *testing.T) {
	// A process blocked on a receive that never comes is failed: it must
	// stop (killed) and be reported as such.
	src := `
int main() {
	ptr buf = alloc(1);
	int r = msg_recv(9, 1, buf, 0, 1); // nobody sends
	if (r == 1) {
		// MSG_ROLL with no open speculation: just exit distinctly.
		return 77;
	}
	return r;
}`
	prog, err := lang.Compile(src, Externs())
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	defer c.Close()
	if err := c.StartProcess(0, prog, nil, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	c.Fail(0)
	states, err := c.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st := states[0]
	// The process observed MSG_ROLL (fail epoch) and exited 77, or was
	// killed at a quantum boundary; both are acceptable terminal states.
	if !st.Killed && !(st.Status == rt.StatusHalted && st.Halt == 77) {
		t.Fatalf("state = %+v", st)
	}
}
