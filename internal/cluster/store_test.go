package cluster

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestMemStoreNotExistAndCopy: a missing checkpoint is os.ErrNotExist
// (not a bare string error), and Get returns a defensive copy — mutating
// it must not poison the stored bytes.
func TestMemStoreNotExistAndCopy(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Get("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint: %v, want os.ErrNotExist", err)
	}
	orig := []byte("checkpoint-bytes")
	if err := s.Put("ck", orig); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("ck")
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, err := s.Get("ck")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, orig) {
		t.Fatalf("stored bytes mutated through a returned slice: %q", again)
	}
	// Put must also copy: mutating the caller's slice afterwards is safe.
	mine := []byte("caller-owned")
	if err := s.Put("ck2", mine); err != nil {
		t.Fatal(err)
	}
	mine[0] = 'Z'
	got2, _ := s.Get("ck2")
	if string(got2) != "caller-owned" {
		t.Fatalf("store aliases the caller's slice: %q", got2)
	}
}

// TestDirStorePutSyncsDir: after the atomic rename, Put fsyncs the
// store directory so the entry itself — not just the file's bytes —
// survives a power loss; a failing directory sync surfaces as a Put
// error instead of a silent durability gap.
func TestDirStorePutSyncsDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	orig := syncDir
	defer func() { syncDir = orig }()

	var synced []string
	syncDir = func(d string) error {
		synced = append(synced, d)
		return orig(d)
	}
	if err := s.Put("ck", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("Put synced %v, want exactly [%q]", synced, dir)
	}

	wantErr := errors.New("medium failed the sync")
	syncDir = func(string) error { return wantErr }
	if err := s.Put("ck2", []byte("y")); !errors.Is(err, wantErr) {
		t.Fatalf("Put with failing directory sync: %v, want %v", err, wantErr)
	}

	// A failed Put still must not leave temp litter or a half-entry that
	// poisons List.
	syncDir = orig
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n != "ck" && n != "ck2" {
			t.Fatalf("unexpected leftover entry %q in %v", n, names)
		}
	}
}

// TestDirStoreNotExist: a missing checkpoint file keeps its
// os.ErrNotExist identity through the wrapping, and a vanished store
// directory lists as empty rather than erroring.
func TestDirStoreNotExist(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint: %v, want os.ErrNotExist", err)
	}
	if err := s.Put("ck", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("ck"); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatalf("List on a vanished directory: %v", err)
	}
	if len(names) != 0 {
		t.Fatalf("List on a vanished directory returned %v", names)
	}
	// Invalid names are rejected, not treated as missing files.
	if _, err := s.Get("../escape"); err == nil || errors.Is(err, os.ErrNotExist) {
		t.Fatalf("invalid name: %v, want a validation error", err)
	}
}
