package heap

import "fmt"

// Snapshot is the architecture-independent image of a heap used by the
// pack/unpack operations of process migration (§4.2.2). It preserves
// pointer-table order (indices in heap data stay valid), block contents,
// and the full speculation-level structure including checkpoint records,
// so a process can be migrated even while speculations are open.
type Snapshot struct {
	// TableLen is the pointer-table size; entry indices are preserved
	// exactly ("migration must be careful to preserve order in the pointer
	// and function tables").
	TableLen int
	// Entries holds the live blocks in index order. Level is the 1-based
	// ordinal of the speculation level owning the current copy, 0 when
	// committed.
	Entries []EntrySnap
	// Levels holds the open speculation levels, outermost first.
	Levels []LevelSnap
}

// EntrySnap is one live block in a snapshot.
type EntrySnap struct {
	Idx   int64
	Level int
	Words []Value
}

// LevelSnap is one speculation level in a snapshot.
type LevelSnap struct {
	Shadows []ShadowSnap
	Allocs  []int64
}

// ShadowSnap is one checkpoint record in a snapshot.
type ShadowSnap struct {
	Idx      int64
	OldLevel int
	Words    []Value
}

// ordOf maps a speculation-level ID to its current 1-based ordinal. IDs
// of committed (destroyed) levels map to 0: their ownership is
// semantically "committed" for every future comparison. The level stack
// is at most a few entries deep, so the linear scan replaces the
// per-capture id→ordinal map the old code allocated on every snapshot.
func (h *Heap) ordOf(id int64) int {
	for i := range h.levels {
		if h.levels[i].id == id {
			return i + 1
		}
	}
	return 0
}

// Snapshot captures the current heap state. Callers normally run a major
// collection first (the paper's pack operation begins with one), producing
// a minimal image.
func (h *Heap) Snapshot() *Snapshot {
	s := &Snapshot{TableLen: len(h.table)}
	live, total := 0, 0
	for i := range h.table {
		if h.table[i].Addr >= 0 {
			live++
			total += h.table[i].Size
		}
	}
	s.Entries = make([]EntrySnap, 0, live)
	// One backing array for every entry's words; three-index slicing keeps
	// the per-entry views from aliasing on append.
	backing := make([]Value, 0, total)
	for i := range h.table {
		e := &h.table[i]
		if e.Addr < 0 {
			continue
		}
		lo := len(backing)
		backing = append(backing, h.arena[e.Addr:e.Addr+e.Size]...)
		words := backing[lo:len(backing):len(backing)]
		s.Entries = append(s.Entries, EntrySnap{Idx: int64(i), Level: h.ordOf(e.Level), Words: words})
	}
	for _, lv := range h.levels {
		ls := LevelSnap{}
		for _, sh := range lv.shadows {
			words := make([]Value, sh.OldSize)
			copy(words, h.arena[sh.OldAddr:sh.OldAddr+sh.OldSize])
			ls.Shadows = append(ls.Shadows, ShadowSnap{Idx: sh.Idx, OldLevel: h.ordOf(sh.OldLevel), Words: words})
		}
		for _, r := range lv.allocs {
			if h.refValid(r) {
				ls.Allocs = append(ls.Allocs, r.idx)
			}
		}
		s.Levels = append(s.Levels, ls)
	}
	return s
}

// Restore builds a fresh heap from a snapshot. This is the unpack
// operation: block data is laid out in a new arena (entry order), the
// pointer table is rebuilt at the original size with original indices, and
// the speculation-level stack is reconstructed with fresh level IDs.
func Restore(s *Snapshot, cfg Config) (*Heap, error) {
	cfg = cfg.withDefaults()
	need := 0
	for _, e := range s.Entries {
		need += len(e.Words)
	}
	for _, lv := range s.Levels {
		for _, sh := range lv.Shadows {
			need += len(sh.Words)
		}
	}
	if cfg.InitialWords < need {
		cfg.InitialWords = need
	}
	if cfg.MaxWords < cfg.InitialWords {
		cfg.MaxWords = cfg.InitialWords
	}
	h := New(cfg)
	h.table = make([]entry, s.TableLen)
	for i := range h.table {
		h.table[i].Addr = -1
	}

	// Fresh level IDs 1..N for the restored stack; ordinal 0 maps to
	// committed state.
	ordinalID := make([]int64, len(s.Levels)+1)
	for i := 1; i <= len(s.Levels); i++ {
		ordinalID[i] = int64(i)
	}
	h.nextLevel = int64(len(s.Levels)) + 1

	for _, es := range s.Entries {
		if es.Idx < 0 || es.Idx >= int64(s.TableLen) {
			return nil, fmt.Errorf("heap: snapshot entry index %d outside table of %d", es.Idx, s.TableLen)
		}
		if h.table[es.Idx].Addr >= 0 {
			return nil, fmt.Errorf("heap: snapshot entry index %d duplicated", es.Idx)
		}
		if es.Level < 0 || es.Level > len(s.Levels) {
			return nil, fmt.Errorf("heap: snapshot entry %d has level %d of %d", es.Idx, es.Level, len(s.Levels))
		}
		addr, err := h.allocRun(len(es.Words))
		if err != nil {
			return nil, err
		}
		copy(h.arena[addr:addr+len(es.Words)], es.Words)
		h.seq++
		e := &h.table[es.Idx]
		e.Addr = addr
		e.Size = len(es.Words)
		e.Gen = genOld
		e.Level = ordinalID[es.Level]
		e.Seq = h.seq
	}
	// Rebuild the free list for slots with no live entry.
	for i := range h.table {
		if h.table[i].Addr < 0 {
			h.freeList = append(h.freeList, int64(i))
		}
	}

	for li, ls := range s.Levels {
		lv := level{id: ordinalID[li+1]}
		for _, sh := range ls.Shadows {
			if sh.Idx < 0 || sh.Idx >= int64(s.TableLen) || h.table[sh.Idx].Addr < 0 {
				return nil, fmt.Errorf("heap: snapshot shadow refers to missing entry %d", sh.Idx)
			}
			if sh.OldLevel < 0 || sh.OldLevel > len(s.Levels) {
				return nil, fmt.Errorf("heap: snapshot shadow has level %d of %d", sh.OldLevel, len(s.Levels))
			}
			addr, err := h.allocRun(len(sh.Words))
			if err != nil {
				return nil, err
			}
			copy(h.arena[addr:addr+len(sh.Words)], sh.Words)
			lv.shadows = append(lv.shadows, Shadow{
				Idx:      sh.Idx,
				OldAddr:  addr,
				OldSize:  len(sh.Words),
				OldGen:   genOld,
				OldLevel: ordinalID[sh.OldLevel],
			})
		}
		for _, idx := range ls.Allocs {
			if idx < 0 || idx >= int64(s.TableLen) {
				return nil, fmt.Errorf("heap: snapshot alloc list refers to index %d outside table", idx)
			}
			if h.table[idx].Addr >= 0 {
				lv.allocs = append(lv.allocs, ref{idx: idx, ver: h.table[idx].Version})
			}
		}
		// Ownership is reconstructible: a level owns its in-level
		// allocations plus every entry whose current copy it created.
		for i := range h.table {
			if h.table[i].Addr >= 0 && h.table[i].Level == lv.id {
				lv.owned = append(lv.owned, ref{idx: int64(i), ver: h.table[i].Version})
			}
		}
		h.levels = append(h.levels, lv)
	}
	// Everything restored is old generation.
	h.watermark = h.allocPtr
	return h, nil
}

// Equal reports whether two snapshots describe identical heap states.
// Used by tests to verify pack/unpack and speculation rollback fidelity.
func (s *Snapshot) Equal(t *Snapshot) bool {
	if s.TableLen != t.TableLen || len(s.Entries) != len(t.Entries) || len(s.Levels) != len(t.Levels) {
		return false
	}
	for i := range s.Entries {
		a, b := s.Entries[i], t.Entries[i]
		if a.Idx != b.Idx || a.Level != b.Level || len(a.Words) != len(b.Words) {
			return false
		}
		for j := range a.Words {
			if !a.Words[j].Equal(b.Words[j]) {
				return false
			}
		}
	}
	for i := range s.Levels {
		la, lb := s.Levels[i], t.Levels[i]
		if len(la.Shadows) != len(lb.Shadows) || len(la.Allocs) != len(lb.Allocs) {
			return false
		}
		for j := range la.Shadows {
			a, b := la.Shadows[j], lb.Shadows[j]
			if a.Idx != b.Idx || a.OldLevel != b.OldLevel || len(a.Words) != len(b.Words) {
				return false
			}
			for k := range a.Words {
				if !a.Words[k].Equal(b.Words[k]) {
					return false
				}
			}
		}
		for j := range la.Allocs {
			if la.Allocs[j] != lb.Allocs[j] {
				return false
			}
		}
	}
	return true
}
