// Package heap implements the MCC runtime heap: an arena of blocks
// indirected through a pointer table, with tagged words that give the
// runtime type checking the paper's §3 promises, copy-on-write speculation
// levels (§4.3), and the mark-sweep compacting collection mechanism the
// collector policy in internal/gc drives.
//
// The pointer table (§4.1.1) is the load-bearing idea: source-level
// pointers are (base, offset) pairs where base is an index into the table,
// never a machine address. Because no real addresses are ever stored in
// heap data, the heap can be relocated (compaction), preserved and restored
// (speculation) or serialized and rebuilt on another machine (migration)
// without rewriting block contents.
package heap

import "fmt"

// Kind tags a heap word or register value.
type Kind uint8

const (
	// KUnit is the unit value (not storable in blocks).
	KUnit Kind = iota
	// KInt is a 64-bit signed integer (also used for booleans and chars).
	KInt
	// KFloat is a 64-bit IEEE-754 float.
	KFloat
	// KPtr is a (pointer-table index, word offset) pair. Index -1 is the
	// null pointer.
	KPtr
	// KFun is an index into the function table.
	KFun
)

func (k Kind) String() string {
	switch k {
	case KUnit:
		return "unit"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KPtr:
		return "ptr"
	case KFun:
		return "fun"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a tagged runtime word. For KInt, I holds the integer; for KPtr,
// I holds the pointer-table index and Off the word offset within the
// block; for KFun, I holds the function-table index; for KFloat, F holds
// the payload.
type Value struct {
	Kind Kind
	I    int64
	Off  int64
	F    float64
}

// Constructors for each value kind.

// IntVal returns an integer value.
func IntVal(v int64) Value { return Value{Kind: KInt, I: v} }

// BoolVal returns 1 for true and 0 for false as an integer value.
func BoolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// FloatVal returns a float value.
func FloatVal(v float64) Value { return Value{Kind: KFloat, F: v} }

// PtrVal returns a pointer value referencing table entry idx at offset off.
func PtrVal(idx, off int64) Value { return Value{Kind: KPtr, I: idx, Off: off} }

// FunVal returns a function value referencing function-table index idx.
func FunVal(idx int64) Value { return Value{Kind: KFun, I: idx} }

// UnitVal returns the unit value.
func UnitVal() Value { return Value{Kind: KUnit} }

// Null returns the null pointer.
func Null() Value { return Value{Kind: KPtr, I: -1} }

// IsNull reports whether v is the null pointer.
func (v Value) IsNull() bool { return v.Kind == KPtr && v.I < 0 }

// Truthy reports whether an integer value is non-zero.
func (v Value) Truthy() bool { return v.Kind == KInt && v.I != 0 }

func (v Value) String() string {
	switch v.Kind {
	case KUnit:
		return "()"
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KFloat:
		return fmt.Sprintf("%g", v.F)
	case KPtr:
		if v.I < 0 {
			return "null"
		}
		return fmt.Sprintf("ptr(%d+%d)", v.I, v.Off)
	case KFun:
		return fmt.Sprintf("fun(%d)", v.I)
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.Kind))
	}
}

// Equal reports exact equality of two values (kind and payload).
func (v Value) Equal(u Value) bool {
	if v.Kind != u.Kind {
		return false
	}
	switch v.Kind {
	case KUnit:
		return true
	case KFloat:
		return v.F == u.F
	case KPtr:
		if v.I < 0 && u.I < 0 {
			return true
		}
		return v.I == u.I && v.Off == u.Off
	default:
		return v.I == u.I
	}
}
