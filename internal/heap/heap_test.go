package heap

import (
	"errors"
	"testing"
)

func mustAlloc(t *testing.T, h *Heap, n int64) Value {
	t.Helper()
	v, err := h.Alloc(n)
	if err != nil {
		t.Fatalf("Alloc(%d): %v", n, err)
	}
	return v
}

func mustStore(t *testing.T, h *Heap, p Value, off int64, v Value) {
	t.Helper()
	if err := h.Store(p, off, v); err != nil {
		t.Fatalf("Store(%s, %d, %s): %v", p, off, v, err)
	}
}

func mustLoad(t *testing.T, h *Heap, p Value, off int64) Value {
	t.Helper()
	v, err := h.Load(p, off)
	if err != nil {
		t.Fatalf("Load(%s, %d): %v", p, off, err)
	}
	return v
}

func checkInv(t *testing.T, h *Heap) {
	t.Helper()
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestAllocLoadStore(t *testing.T) {
	h := New(Config{})
	p := mustAlloc(t, h, 4)
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(0)) {
		t.Fatalf("fresh block word = %s, want 0", got)
	}
	mustStore(t, h, p, 2, IntVal(42))
	if got := mustLoad(t, h, p, 2); !got.Equal(IntVal(42)) {
		t.Fatalf("load = %s, want 42", got)
	}
	mustStore(t, h, p, 3, FloatVal(2.5))
	if got := mustLoad(t, h, p, 3); !got.Equal(FloatVal(2.5)) {
		t.Fatalf("load = %s, want 2.5", got)
	}
	checkInv(t, h)
}

func TestPointerOffsetAccess(t *testing.T) {
	h := New(Config{})
	p := mustAlloc(t, h, 8)
	q := p
	q.Off = 3
	mustStore(t, h, q, 2, IntVal(7)) // effective offset 5
	if got := mustLoad(t, h, p, 5); !got.Equal(IntVal(7)) {
		t.Fatalf("load via base = %s, want 7", got)
	}
}

func TestSafetyChecks(t *testing.T) {
	h := New(Config{})
	p := mustAlloc(t, h, 2)

	cases := []struct {
		name string
		do   func() error
		want error
	}{
		{"load out of bounds", func() error { _, err := h.Load(p, 2); return err }, ErrBounds},
		{"load negative", func() error { _, err := h.Load(p, -1); return err }, ErrBounds},
		{"store out of bounds", func() error { return h.Store(p, 99, IntVal(1)) }, ErrBounds},
		{"null deref", func() error { _, err := h.Load(Null(), 0); return err }, ErrNullPointer},
		{"bad index", func() error { _, err := h.Load(PtrVal(999, 0), 0); return err }, ErrBadIndex},
		{"not a pointer", func() error { _, err := h.Load(IntVal(3), 0); return err }, ErrNotPointer},
		{"store unit", func() error { return h.Store(p, 0, UnitVal()) }, ErrBadStore},
	}
	for _, tc := range cases {
		if err := tc.do(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestFreeEntryDetected(t *testing.T) {
	h := New(Config{})
	p := mustAlloc(t, h, 2)
	// Drop the block and collect: entry becomes free.
	h.CollectMajor()
	if _, err := h.Load(p, 0); !errors.Is(err, ErrFreeEntry) {
		t.Fatalf("load from collected block: err = %v, want ErrFreeEntry", err)
	}
}

func TestSpeculationRollbackRestoresState(t *testing.T) {
	h := New(Config{})
	p := mustAlloc(t, h, 3)
	mustStore(t, h, p, 0, IntVal(10))
	mustStore(t, h, p, 1, IntVal(20))

	n := h.EnterLevel()
	if n != 1 {
		t.Fatalf("EnterLevel = %d, want 1", n)
	}
	mustStore(t, h, p, 0, IntVal(999))
	q := mustAlloc(t, h, 5) // allocated inside the level
	mustStore(t, h, q, 0, IntVal(1))
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(999)) {
		t.Fatalf("in-level load = %s, want 999", got)
	}
	checkInv(t, h)

	if err := h.RollbackLevel(1); err != nil {
		t.Fatalf("RollbackLevel: %v", err)
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(10)) {
		t.Fatalf("post-rollback load = %s, want 10", got)
	}
	if got := mustLoad(t, h, p, 1); !got.Equal(IntVal(20)) {
		t.Fatalf("post-rollback load = %s, want 20", got)
	}
	if _, err := h.Load(q, 0); !errors.Is(err, ErrFreeEntry) {
		t.Fatalf("in-level allocation survived rollback: err = %v", err)
	}
	if h.LevelCount() != 0 {
		t.Fatalf("LevelCount = %d, want 0", h.LevelCount())
	}
	checkInv(t, h)
}

func TestSpeculationCommitKeepsChanges(t *testing.T) {
	h := New(Config{})
	p := mustAlloc(t, h, 2)
	mustStore(t, h, p, 0, IntVal(1))

	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(2))
	if err := h.CommitLevel(1); err != nil {
		t.Fatalf("CommitLevel: %v", err)
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(2)) {
		t.Fatalf("post-commit load = %s, want 2", got)
	}
	if h.LevelCount() != 0 {
		t.Fatalf("LevelCount = %d, want 0", h.LevelCount())
	}
	checkInv(t, h)
}

func TestNestedLevelsRollbackInner(t *testing.T) {
	h := New(Config{})
	p := mustAlloc(t, h, 1)
	mustStore(t, h, p, 0, IntVal(1))

	h.EnterLevel() // level 1
	mustStore(t, h, p, 0, IntVal(2))
	h.EnterLevel() // level 2
	mustStore(t, h, p, 0, IntVal(3))

	if err := h.RollbackLevel(2); err != nil {
		t.Fatalf("RollbackLevel(2): %v", err)
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(2)) {
		t.Fatalf("after inner rollback load = %s, want 2", got)
	}
	// Level 1 still open (rollback pops to 1, but heap-level rollback
	// leaves the stack at n-1 levels; the spec manager re-enters).
	if h.LevelCount() != 1 {
		t.Fatalf("LevelCount = %d, want 1", h.LevelCount())
	}
	if err := h.RollbackLevel(1); err != nil {
		t.Fatalf("RollbackLevel(1): %v", err)
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(1)) {
		t.Fatalf("after outer rollback load = %s, want 1", got)
	}
	checkInv(t, h)
}

func TestOuterRollbackDiscardsInnerLevels(t *testing.T) {
	h := New(Config{})
	p := mustAlloc(t, h, 1)
	mustStore(t, h, p, 0, IntVal(1))
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(2))
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(3))
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(4))

	if err := h.RollbackLevel(1); err != nil {
		t.Fatalf("RollbackLevel(1): %v", err)
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(1)) {
		t.Fatalf("load = %s, want 1", got)
	}
	if h.LevelCount() != 0 {
		t.Fatalf("LevelCount = %d, want 0", h.LevelCount())
	}
	checkInv(t, h)
}

func TestOutOfOrderCommit(t *testing.T) {
	// Enter levels 1 and 2, modify the same block in both, then commit
	// level 1 first (out of order) and roll back what is now level 1
	// (formerly level 2): the level-2 changes must revert to the state at
	// entry of level 2.
	h := New(Config{})
	p := mustAlloc(t, h, 1)
	mustStore(t, h, p, 0, IntVal(1))
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(2))
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(3))

	if err := h.CommitLevel(1); err != nil {
		t.Fatalf("CommitLevel(1): %v", err)
	}
	if h.LevelCount() != 1 {
		t.Fatalf("LevelCount = %d, want 1", h.LevelCount())
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(3)) {
		t.Fatalf("load = %s, want 3", got)
	}
	if err := h.RollbackLevel(1); err != nil {
		t.Fatalf("RollbackLevel: %v", err)
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(2)) {
		t.Fatalf("post-rollback load = %s, want 2 (state at entry of old level 2)", got)
	}
	checkInv(t, h)
}

func TestCommitFoldsShadowsDownward(t *testing.T) {
	// Modify a block in level 1 and again in level 2; commit level 2.
	// Rolling back level 1 must restore the pre-speculation state.
	h := New(Config{})
	p := mustAlloc(t, h, 1)
	mustStore(t, h, p, 0, IntVal(1))
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(2))
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(3))

	if err := h.CommitLevel(2); err != nil {
		t.Fatalf("CommitLevel(2): %v", err)
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(3)) {
		t.Fatalf("load = %s, want 3", got)
	}
	if err := h.RollbackLevel(1); err != nil {
		t.Fatalf("RollbackLevel: %v", err)
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(1)) {
		t.Fatalf("post-rollback load = %s, want 1", got)
	}
	checkInv(t, h)
}

func TestCommitMovesShadowWhenBelowHasNone(t *testing.T) {
	// Block modified only in level 2; commit level 2; rollback level 1
	// must still restore the original value (the shadow moved down).
	h := New(Config{})
	p := mustAlloc(t, h, 1)
	mustStore(t, h, p, 0, IntVal(7))
	h.EnterLevel()
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(8))
	if err := h.CommitLevel(2); err != nil {
		t.Fatalf("CommitLevel(2): %v", err)
	}
	if err := h.RollbackLevel(1); err != nil {
		t.Fatalf("RollbackLevel(1): %v", err)
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(7)) {
		t.Fatalf("load = %s, want 7", got)
	}
	checkInv(t, h)
}

func TestCowOnlyOnFirstWritePerLevel(t *testing.T) {
	h := New(Config{})
	p := mustAlloc(t, h, 4)
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(1))
	c1 := h.Stats().Clones
	mustStore(t, h, p, 1, IntVal(2))
	mustStore(t, h, p, 2, IntVal(3))
	if c2 := h.Stats().Clones; c2 != c1 {
		t.Fatalf("clones went %d -> %d on repeat stores in same level", c1, c2)
	}
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(9))
	if c3 := h.Stats().Clones; c3 != c1+1 {
		t.Fatalf("clones = %d, want %d (one clone per level)", c3, c1+1)
	}
	checkInv(t, h)
}

func TestStringRoundTrip(t *testing.T) {
	h := New(Config{})
	for _, s := range []string{"", "a", "checkpoint://ckpt-1", "héllo wörld", "migrate://host:9000"} {
		p, err := h.AllocString(s)
		if err != nil {
			t.Fatalf("AllocString(%q): %v", s, err)
		}
		got, err := h.LoadString(p)
		if err != nil {
			t.Fatalf("LoadString(%q): %v", s, err)
		}
		if got != s {
			t.Fatalf("round trip = %q, want %q", got, s)
		}
	}
}

func TestStringWithOffset(t *testing.T) {
	h := New(Config{})
	p, err := h.AllocString("abcdef")
	if err != nil {
		t.Fatal(err)
	}
	q := p
	q.Off = 2
	got, err := h.LoadString(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != "cdef" {
		t.Fatalf("offset string = %q, want %q", got, "cdef")
	}
}

func TestMutateFraction(t *testing.T) {
	h := New(Config{})
	var ptrs []Value
	for i := 0; i < 10; i++ {
		ptrs = append(ptrs, mustAlloc(t, h, 2))
	}
	if f := h.MutateFraction(); f != 0 {
		t.Fatalf("MutateFraction = %v, want 0", f)
	}
	h.EnterLevel()
	for i := 0; i < 5; i++ {
		mustStore(t, h, ptrs[i], 0, IntVal(int64(i)))
	}
	if f := h.MutateFraction(); f != 0.5 {
		t.Fatalf("MutateFraction = %v, want 0.5", f)
	}
}
