package heap

import (
	"fmt"
	"unicode/utf8"
)

// Strings in the MCC runtime are heap blocks of character words terminated
// by a zero word, the representation the migration target string of §4.2.1
// uses ("a string describing the migration target"). One character per
// word is deliberately simple and, critically, architecture-independent:
// there is no byte-order or alignment question to answer when the block
// crosses machines.

// AllocString allocates a NUL-terminated string block and returns a
// pointer to it.
func (h *Heap) AllocString(s string) (Value, error) {
	n := int64(utf8.RuneCountInString(s))
	ptr, err := h.Alloc(n + 1)
	if err != nil {
		return Value{}, err
	}
	i := int64(0)
	for _, r := range s {
		if err := h.Store(ptr, i, IntVal(int64(r))); err != nil {
			return Value{}, err
		}
		i++
	}
	if err := h.Store(ptr, n, IntVal(0)); err != nil {
		return Value{}, err
	}
	return ptr, nil
}

// LoadString reads a NUL-terminated string starting at ptr (honouring the
// pointer's offset component). Reading stops at the first zero word or the
// end of the block.
func (h *Heap) LoadString(ptr Value) (string, error) {
	b, err := h.AppendString(nil, ptr)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// AppendString appends the string at ptr to buf and returns the extended
// slice. Hot callers that read the same target repeatedly (the migrate
// loop) use this with a reusable buffer to avoid per-call allocation.
func (h *Heap) AppendString(buf []byte, ptr Value) ([]byte, error) {
	size, err := h.BlockSize(ptr)
	if err != nil {
		return nil, err
	}
	for i := int64(0); ptr.Off+i < size; i++ {
		w, err := h.Load(ptr, i)
		if err != nil {
			return nil, err
		}
		if w.Kind != KInt {
			return nil, fmt.Errorf("heap: string block holds %s word at offset %d", w.Kind, ptr.Off+i)
		}
		if w.I == 0 {
			break
		}
		buf = utf8.AppendRune(buf, rune(w.I))
	}
	return buf, nil
}
