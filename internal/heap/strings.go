package heap

import (
	"fmt"
	"strings"
)

// Strings in the MCC runtime are heap blocks of character words terminated
// by a zero word, the representation the migration target string of §4.2.1
// uses ("a string describing the migration target"). One character per
// word is deliberately simple and, critically, architecture-independent:
// there is no byte-order or alignment question to answer when the block
// crosses machines.

// AllocString allocates a NUL-terminated string block and returns a
// pointer to it.
func (h *Heap) AllocString(s string) (Value, error) {
	runes := []rune(s)
	ptr, err := h.Alloc(int64(len(runes)) + 1)
	if err != nil {
		return Value{}, err
	}
	for i, r := range runes {
		if err := h.Store(ptr, int64(i), IntVal(int64(r))); err != nil {
			return Value{}, err
		}
	}
	if err := h.Store(ptr, int64(len(runes)), IntVal(0)); err != nil {
		return Value{}, err
	}
	return ptr, nil
}

// LoadString reads a NUL-terminated string starting at ptr (honouring the
// pointer's offset component). Reading stops at the first zero word or the
// end of the block.
func (h *Heap) LoadString(ptr Value) (string, error) {
	size, err := h.BlockSize(ptr)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i := int64(0); ptr.Off+i < size; i++ {
		w, err := h.Load(ptr, i)
		if err != nil {
			return "", err
		}
		if w.Kind != KInt {
			return "", fmt.Errorf("heap: string block holds %s word at offset %d", w.Kind, ptr.Off+i)
		}
		if w.I == 0 {
			return b.String(), nil
		}
		b.WriteRune(rune(w.I))
	}
	return b.String(), nil
}
