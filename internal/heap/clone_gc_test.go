package heap

import "testing"

// TestMinorGCKeepsCommittedClones pins a write-barrier hole the
// incremental-checkpoint property harness exposed: a copy-on-write clone
// turns an old entry young *in place*, so an old block that referenced it
// from before the clone carries an old→young edge no barrier recorded.
// Once the speculation level commits (ending the owned-entry pinning), a
// minor collection must still keep the clone alive.
func TestMinorGCKeepsCommittedClones(t *testing.T) {
	h := New(Config{})
	r, err := h.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	// R references A while both are young: the generational barrier only
	// records stores into old blocks, so nothing is remembered.
	if err := h.Store(r, 0, a); err != nil {
		t.Fatal(err)
	}
	// Root only R; A stays reachable solely through R's word.
	h.AddRoots(func(yield func(Value)) { yield(r) })
	h.CollectMajor() // promotes both to the old generation

	// Modify A inside a level: the clone is young at the arena tail.
	h.EnterLevel()
	if err := h.Store(a, 0, IntVal(42)); err != nil {
		t.Fatal(err)
	}
	if err := h.CommitLevel(1); err != nil {
		t.Fatal(err)
	}

	// The commit ended speculation ownership; only R's stale old→young
	// edge keeps A alive now.
	h.CollectMinor()
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants after minor collection: %v", err)
	}
	got, err := h.Load(a, 0)
	if err != nil {
		t.Fatalf("committed clone was collected: %v", err)
	}
	if got.I != 42 {
		t.Fatalf("committed clone holds %s, want 42", got)
	}
}
