package heap

import (
	"errors"
	"testing"
	"testing/quick"
)

// rootSet is a mutable root list registered with a heap under test.
type rootSet struct{ vals []Value }

func (r *rootSet) attach(h *Heap) {
	h.AddRoots(func(yield func(Value)) {
		for _, v := range r.vals {
			yield(v)
		}
	})
}

func TestMajorCollectFreesUnreachable(t *testing.T) {
	h := New(Config{})
	roots := &rootSet{}
	roots.attach(h)

	keep := mustAlloc(t, h, 4)
	mustStore(t, h, keep, 0, IntVal(11))
	roots.vals = append(roots.vals, keep)
	for i := 0; i < 100; i++ {
		mustAlloc(t, h, 8) // garbage
	}
	used := h.UsedWords()
	h.CollectMajor()
	if h.UsedWords() >= used {
		t.Fatalf("used words %d did not shrink from %d", h.UsedWords(), used)
	}
	if h.LiveBlocks() != 1 {
		t.Fatalf("LiveBlocks = %d, want 1", h.LiveBlocks())
	}
	if got := mustLoad(t, h, keep, 0); !got.Equal(IntVal(11)) {
		t.Fatalf("survivor word = %s, want 11", got)
	}
	checkInv(t, h)
}

func TestMajorCollectFollowsPointerChains(t *testing.T) {
	h := New(Config{})
	roots := &rootSet{}
	roots.attach(h)

	// Build a linked list of 50 nodes rooted at the head.
	head := Null()
	for i := 0; i < 50; i++ {
		n := mustAlloc(t, h, 2)
		mustStore(t, h, n, 0, IntVal(int64(i)))
		if !head.IsNull() {
			mustStore(t, h, n, 1, head)
		}
		head = n
		roots.vals = []Value{head}
	}
	for i := 0; i < 30; i++ {
		mustAlloc(t, h, 16) // garbage
	}
	h.CollectMajor()
	if h.LiveBlocks() != 50 {
		t.Fatalf("LiveBlocks = %d, want 50", h.LiveBlocks())
	}
	// Walk the list verifying contents survived compaction.
	p, want := head, int64(49)
	for !p.IsNull() {
		if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(want)) {
			t.Fatalf("node value = %s, want %d", got, want)
		}
		next := mustLoad(t, h, p, 1)
		if next.Kind == KInt { // tail node's next slot holds the 0 fill
			break
		}
		p, want = next, want-1
	}
	checkInv(t, h)
}

func TestMinorCollectPromotesAndFrees(t *testing.T) {
	h := New(Config{})
	roots := &rootSet{}
	roots.attach(h)

	keep := mustAlloc(t, h, 4)
	roots.vals = []Value{keep}
	for i := 0; i < 20; i++ {
		mustAlloc(t, h, 4)
	}
	h.CollectMinor()
	if h.LiveBlocks() != 1 {
		t.Fatalf("LiveBlocks = %d, want 1", h.LiveBlocks())
	}
	checkInv(t, h)

	// keep is now old generation; storing a pointer to a fresh young block
	// must put keep in the remembered set so the young block survives the
	// next minor collection even though no root references it directly.
	young := mustAlloc(t, h, 2)
	mustStore(t, h, young, 0, IntVal(77))
	mustStore(t, h, keep, 0, young)
	h.CollectMinor()
	if h.LiveBlocks() != 2 {
		t.Fatalf("LiveBlocks = %d, want 2 (write barrier lost the young block)", h.LiveBlocks())
	}
	got := mustLoad(t, h, keep, 0)
	if got.Kind != KPtr {
		t.Fatalf("keep[0] = %s, want pointer", got)
	}
	if v := mustLoad(t, h, got, 0); !v.Equal(IntVal(77)) {
		t.Fatalf("young survivor word = %s, want 77", v)
	}
	checkInv(t, h)
}

func TestCollectPreservesShadows(t *testing.T) {
	h := New(Config{})
	roots := &rootSet{}
	roots.attach(h)

	p := mustAlloc(t, h, 4)
	mustStore(t, h, p, 0, IntVal(5))
	roots.vals = []Value{p}
	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(6))

	h.CollectMajor()
	checkInv(t, h)
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(6)) {
		t.Fatalf("post-GC load = %s, want 6", got)
	}
	if err := h.RollbackLevel(1); err != nil {
		t.Fatalf("RollbackLevel: %v", err)
	}
	if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(5)) {
		t.Fatalf("post-rollback load = %s, want 5 (shadow lost in GC)", got)
	}
	checkInv(t, h)
}

func TestShadowContentsKeepReferentsAlive(t *testing.T) {
	h := New(Config{})
	roots := &rootSet{}
	roots.attach(h)

	inner := mustAlloc(t, h, 1)
	mustStore(t, h, inner, 0, IntVal(42))
	outer := mustAlloc(t, h, 1)
	mustStore(t, h, outer, 0, inner)
	roots.vals = []Value{outer}

	h.EnterLevel()
	// Overwrite the only reference to inner inside the speculation. The
	// shadow of outer still references inner; rollback must find it intact.
	mustStore(t, h, outer, 0, IntVal(0))
	h.CollectMajor()
	checkInv(t, h)
	if err := h.RollbackLevel(1); err != nil {
		t.Fatalf("RollbackLevel: %v", err)
	}
	ref := mustLoad(t, h, outer, 0)
	if ref.Kind != KPtr {
		t.Fatalf("outer[0] = %s, want pointer", ref)
	}
	if got := mustLoad(t, h, ref, 0); !got.Equal(IntVal(42)) {
		t.Fatalf("restored referent = %s, want 42", got)
	}
	checkInv(t, h)
}

func TestAllocationTriggersCollector(t *testing.T) {
	h := New(Config{InitialWords: 256, MaxWords: 256})
	roots := &rootSet{}
	roots.attach(h)
	calls := 0
	h.SetCollector(collectorFunc(func(h *Heap, need int) error {
		calls++
		h.CollectMajor()
		return nil
	}))
	// Allocate far more garbage than the arena holds; the collector must
	// recycle it.
	for i := 0; i < 100; i++ {
		mustAlloc(t, h, 16)
	}
	if calls == 0 {
		t.Fatal("collector was never invoked")
	}
	checkInv(t, h)
}

type collectorFunc func(h *Heap, need int) error

func (f collectorFunc) Collect(h *Heap, need int) error { return f(h, need) }

func TestOutOfMemory(t *testing.T) {
	h := New(Config{InitialWords: 64, MaxWords: 64})
	if _, err := h.Alloc(65); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("Alloc beyond cap: err = %v, want ErrOutOfMemory", err)
	}
}

func TestBFSCompactionCorrectness(t *testing.T) {
	h := New(Config{})
	roots := &rootSet{}
	roots.attach(h)

	var ptrs []Value
	for i := 0; i < 40; i++ {
		p := mustAlloc(t, h, 3)
		mustStore(t, h, p, 0, IntVal(int64(i*i)))
		ptrs = append(ptrs, p)
	}
	// Link even-indexed blocks into a chain rooted at ptrs[0]; odd blocks
	// are rooted directly.
	for i := 0; i+2 < len(ptrs); i += 2 {
		mustStore(t, h, ptrs[i], 1, ptrs[i+2])
	}
	roots.vals = []Value{ptrs[0]}
	for i := 1; i < len(ptrs); i += 2 {
		roots.vals = append(roots.vals, ptrs[i])
	}
	h.CollectMajorBFS()
	checkInv(t, h)
	for i, p := range ptrs {
		if got := mustLoad(t, h, p, 0); !got.Equal(IntVal(int64(i * i))) {
			t.Fatalf("block %d word = %s, want %d", i, got, i*i)
		}
	}
}

func TestSlidingPreservesTemporalLocalityVsBFS(t *testing.T) {
	build := func() (*Heap, *rootSet) {
		h := New(Config{})
		roots := &rootSet{}
		roots.attach(h)
		// Allocate a binary-tree-ish structure where BFS order diverges
		// strongly from allocation order: children allocated depth-first.
		var build func(depth int) Value
		build = func(depth int) Value {
			n := mustAlloc(t, h, 3)
			roots.vals = append(roots.vals, n) // pin during construction
			if depth > 0 {
				l := build(depth - 1)
				r := build(depth - 1)
				mustStore(t, h, n, 1, l)
				mustStore(t, h, n, 2, r)
			}
			roots.vals = roots.vals[:len(roots.vals)-1]
			return n
		}
		root := build(7)
		roots.vals = []Value{root}
		return h, roots
	}

	h1, _ := build()
	h1.CollectMajor()
	slide := h1.TemporalLocalityScore()

	h2, _ := build()
	h2.CollectMajorBFS()
	bfs := h2.TemporalLocalityScore()

	if slide >= bfs {
		t.Fatalf("sliding locality score %v should beat (be lower than) BFS %v", slide, bfs)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	h := New(Config{})
	p := mustAlloc(t, h, 4)
	mustStore(t, h, p, 0, IntVal(1))
	mustStore(t, h, p, 1, FloatVal(2.5))
	q := mustAlloc(t, h, 2)
	mustStore(t, h, q, 0, p)
	mustStore(t, h, p, 2, FunVal(3))

	h.EnterLevel()
	mustStore(t, h, p, 0, IntVal(100))
	r := mustAlloc(t, h, 1)
	mustStore(t, h, r, 0, IntVal(7))

	snap := h.Snapshot()
	h2, err := Restore(snap, Config{})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := h2.CheckInvariants(); err != nil {
		t.Fatalf("restored invariants: %v", err)
	}
	snap2 := h2.Snapshot()
	if !snap.Equal(snap2) {
		t.Fatal("snapshot -> restore -> snapshot is not a fixed point")
	}
	// The restored heap must honour the open level: rollback restores the
	// pre-speculation value.
	if got := mustLoad(t, h2, p, 0); !got.Equal(IntVal(100)) {
		t.Fatalf("restored speculative value = %s, want 100", got)
	}
	if err := h2.RollbackLevel(1); err != nil {
		t.Fatalf("RollbackLevel on restored heap: %v", err)
	}
	if got := mustLoad(t, h2, p, 0); !got.Equal(IntVal(1)) {
		t.Fatalf("restored+rolled-back value = %s, want 1", got)
	}
	if _, err := h2.Load(r, 0); !errors.Is(err, ErrFreeEntry) {
		t.Fatalf("in-level alloc survived restore+rollback: %v", err)
	}
	checkInv(t, h2)
}

func TestSnapshotAfterGCPreservesIndices(t *testing.T) {
	h := New(Config{})
	roots := &rootSet{}
	roots.attach(h)
	a := mustAlloc(t, h, 1)
	b := mustAlloc(t, h, 1)
	c := mustAlloc(t, h, 1)
	mustStore(t, h, a, 0, c) // a -> c; b is garbage
	_ = b
	roots.vals = []Value{a}
	h.CollectMajor()
	snap := h.Snapshot()
	h2, err := Restore(snap, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Pointer a (by index) must still resolve and reference c's index.
	got := mustLoad(t, h2, a, 0)
	if got.Kind != KPtr || got.I != c.I {
		t.Fatalf("restored a[0] = %s, want pointer to index %d", got, c.I)
	}
}

// quickHeapOps drives a randomized sequence of heap operations and checks
// invariants afterwards — the property-based safety net for the
// COW/GC/level machinery.
func TestQuickHeapInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		h := New(Config{InitialWords: 512, MaxWords: 1 << 16})
		roots := &rootSet{}
		roots.attach(h)
		h.SetCollector(collectorFunc(func(h *Heap, need int) error {
			h.CollectMinor()
			if h.UsedWords()+need > h.ArenaWords() {
				h.CollectMajor()
			}
			return nil
		}))
		var ptrs []Value
		syncRoots := func() {
			roots.vals = append(roots.vals[:0], ptrs...)
		}
		for _, op := range ops {
			switch op % 8 {
			case 0, 1: // alloc
				p, err := h.Alloc(int64(op%16) + 1)
				if err != nil {
					return false
				}
				ptrs = append(ptrs, p)
				if len(ptrs) > 64 {
					ptrs = ptrs[1:]
				}
				syncRoots()
			case 2, 3: // store
				if len(ptrs) > 0 {
					p := ptrs[int(op/8)%len(ptrs)]
					sz, err := h.BlockSize(p)
					if err != nil || sz == 0 {
						continue
					}
					_ = h.Store(p, int64(op)%sz, IntVal(int64(op)))
				}
			case 4: // store a pointer (exercises barriers and mark)
				if len(ptrs) > 1 {
					p := ptrs[int(op/8)%len(ptrs)]
					q := ptrs[int(op/16)%len(ptrs)]
					sz, err := h.BlockSize(p)
					if err != nil || sz == 0 {
						continue
					}
					_ = h.Store(p, int64(op)%sz, q)
				}
			case 5: // enter level
				if h.LevelCount() < 6 {
					h.EnterLevel()
				}
			case 6: // commit or rollback a random level
				if n := h.LevelCount(); n > 0 {
					l := int(op/8)%n + 1
					if op%2 == 0 {
						if err := h.CommitLevel(l); err != nil {
							return false
						}
					} else {
						if err := h.RollbackLevel(l); err != nil {
							return false
						}
					}
				}
			case 7: // collect
				if op%2 == 0 {
					h.CollectMinor()
				} else {
					h.CollectMajor()
				}
			}
			if err := h.CheckInvariants(); err != nil {
				t.Logf("invariant violated after op %d: %v", op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
