package heap

import (
	"fmt"
	"slices"
)

// This file implements incremental snapshots: the heap tracks which
// pointer-table entries were dirtied (content written, cloned, level-moved,
// allocated or freed) since the last snapshot baseline and emits a
// DeltaSnapshot holding only those entries. A delta applied to its base
// with RebuildSnapshot reconstructs a Snapshot bit-identical to what a
// full Snapshot() at the same moment would have produced — the checkpoint
// pipeline (internal/ckpt) relies on this to write small incremental
// checkpoints on the hot path while recovery stays exact.
//
// Tracking is opt-in (Config.TrackDirty or EnableDeltaTracking): the
// bookkeeping is one map write per dirtying operation, which the default
// full-snapshot mode should not pay.

// DeltaSnapshot is the heap's change set since the previous snapshot
// baseline (the base a delta checkpoint names). Entries carry their full
// words — the unit of incrementality is the block, matching the paper's
// copy-on-write granularity — so applying a delta never needs the base
// block's bytes.
type DeltaSnapshot struct {
	// TableLen is the pointer-table size at capture time.
	TableLen int
	// Changed holds every live entry dirtied since the baseline (new
	// blocks and modified blocks alike), in index order.
	Changed []EntrySnap
	// Freed lists table indices that may have held a live entry at the
	// baseline and hold none now. Indices that were never live in the base
	// are permitted; rebuilding ignores them.
	Freed []int64
	// Levels is the complete speculation-level structure at capture time.
	// Levels are not diffed: they are small (shadows exist only for blocks
	// modified inside an open level) and their ordinal numbering shifts
	// whenever a level commits, so wholesale replacement is both cheaper
	// and simpler to prove correct.
	Levels []LevelSnap
}

// EnableDeltaTracking turns dirty-entry tracking on. It is idempotent.
// Tracking starts with no baseline: SnapshotDelta returns nil until a
// baseline is established with MarkSnapshotBase.
func (h *Heap) EnableDeltaTracking() {
	if h.dirty == nil {
		h.dirty = make(map[int64]struct{})
	}
}

// DeltaTracking reports whether dirty tracking is enabled.
func (h *Heap) DeltaTracking() bool { return h.dirty != nil }

// DeltaReady reports whether a snapshot baseline exists, i.e. whether
// SnapshotDelta would produce a usable delta.
func (h *Heap) DeltaReady() bool { return h.dirty != nil && h.hasBase }

// MarkSnapshotBase declares the heap's current state to be the snapshot
// baseline future deltas are relative to: the caller has just captured a
// full Snapshot it will retain (or persist) under a name deltas can refer
// to. The dirty set is cleared in place, not reallocated: across a run's
// delta chain the set's capacity is reused capture after capture.
func (h *Heap) MarkSnapshotBase() {
	h.EnableDeltaTracking()
	clear(h.dirty)
	h.levelsChanged = false
	h.hasBase = true
}

// dirtied records a table index as changed since the baseline. It is a
// no-op unless tracking is enabled.
func (h *Heap) dirtied(idx int64) {
	if h.dirty != nil {
		h.dirty[idx] = struct{}{}
	}
}

// SnapshotDelta captures the change set since the last baseline and makes
// the captured state the new baseline (deltas chain). It returns nil when
// tracking is disabled or no baseline exists — the caller must then fall
// back to a full Snapshot (and MarkSnapshotBase).
func (h *Heap) SnapshotDelta() *DeltaSnapshot {
	if !h.DeltaReady() {
		return nil
	}
	d := &DeltaSnapshot{TableLen: len(h.table)}

	// A committed or rolled-back level renumbers the ordinals every other
	// open level's entries snapshot as: conservatively re-emit every entry
	// currently owned by an open level. (Entries that LEFT speculation
	// ownership were dirtied explicitly by CommitLevel/RollbackLevel.)
	// The index list reuses per-heap scratch: delta captures recur every
	// checkpoint interval with similar change-set sizes, so the common
	// no-level-change path performs no per-capture bookkeeping allocation.
	idxs := h.deltaIdxScratch[:0]
	if h.levelsChanged {
		owned := make(map[int64]struct{}, len(h.dirty))
		for idx := range h.dirty {
			owned[idx] = struct{}{}
		}
		for i := range h.table {
			if h.table[i].Addr >= 0 && h.table[i].Level != 0 {
				owned[int64(i)] = struct{}{}
			}
		}
		for idx := range owned {
			idxs = append(idxs, idx)
		}
	} else {
		for idx := range h.dirty {
			idxs = append(idxs, idx)
		}
	}
	slices.Sort(idxs)
	for _, idx := range idxs {
		if idx < 0 || idx >= int64(len(h.table)) {
			continue // the table never shrinks; this is unreachable, but stay safe
		}
		e := &h.table[idx]
		if e.Addr < 0 {
			d.Freed = append(d.Freed, idx)
			continue
		}
		words := make([]Value, e.Size)
		copy(words, h.arena[e.Addr:e.Addr+e.Size])
		d.Changed = append(d.Changed, EntrySnap{Idx: idx, Level: h.ordOf(e.Level), Words: words})
	}
	for _, lv := range h.levels {
		ls := LevelSnap{}
		for _, sh := range lv.shadows {
			words := make([]Value, sh.OldSize)
			copy(words, h.arena[sh.OldAddr:sh.OldAddr+sh.OldSize])
			ls.Shadows = append(ls.Shadows, ShadowSnap{Idx: sh.Idx, OldLevel: h.ordOf(sh.OldLevel), Words: words})
		}
		for _, r := range lv.allocs {
			if h.refValid(r) {
				ls.Allocs = append(ls.Allocs, r.idx)
			}
		}
		d.Levels = append(d.Levels, ls)
	}

	// The captured state is the next baseline; scratch and the dirty set
	// keep their capacity for the next capture.
	h.deltaIdxScratch = idxs[:0]
	clear(h.dirty)
	h.levelsChanged = false
	return d
}

// RebuildSnapshot reconstructs the full Snapshot a delta chain describes:
// base, then each delta applied in order. The result is Equal to the full
// Snapshot captured at the moment the last delta was. The inputs are not
// mutated.
func RebuildSnapshot(base *Snapshot, deltas ...*DeltaSnapshot) (*Snapshot, error) {
	if base == nil {
		return nil, fmt.Errorf("heap: rebuild needs a base snapshot")
	}
	byIdx := make(map[int64]EntrySnap, len(base.Entries))
	for _, e := range base.Entries {
		byIdx[e.Idx] = e
	}
	out := &Snapshot{TableLen: base.TableLen, Levels: base.Levels}
	for di, d := range deltas {
		if d == nil {
			return nil, fmt.Errorf("heap: rebuild delta %d is nil", di)
		}
		if d.TableLen < out.TableLen {
			return nil, fmt.Errorf("heap: rebuild delta %d shrinks the table (%d < %d)", di, d.TableLen, out.TableLen)
		}
		for _, idx := range d.Freed {
			delete(byIdx, idx)
		}
		for _, e := range d.Changed {
			if e.Idx < 0 || e.Idx >= int64(d.TableLen) {
				return nil, fmt.Errorf("heap: rebuild delta %d entry index %d outside table of %d", di, e.Idx, d.TableLen)
			}
			byIdx[e.Idx] = e
		}
		out.TableLen = d.TableLen
		out.Levels = d.Levels
	}
	out.Entries = make([]EntrySnap, 0, len(byIdx))
	for _, e := range byIdx {
		out.Entries = append(out.Entries, e)
	}
	slices.SortFunc(out.Entries, func(a, b EntrySnap) int {
		switch {
		case a.Idx < b.Idx:
			return -1
		case a.Idx > b.Idx:
			return 1
		}
		return 0
	})
	return out, nil
}
