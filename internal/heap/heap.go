package heap

import (
	"errors"
	"fmt"
)

// Generation tags for the generational collector.
const (
	genYoung uint8 = 0
	genOld   uint8 = 1
)

// Errors reported by the runtime safety checks (§4.1.1). These are the
// checks the compiler promises: a process can never read or write outside a
// valid block, use a freed table entry, or treat a word as the wrong type.
var (
	ErrNotPointer   = errors.New("heap: value is not a pointer")
	ErrNullPointer  = errors.New("heap: null pointer dereference")
	ErrBadIndex     = errors.New("heap: pointer-table index out of range")
	ErrFreeEntry    = errors.New("heap: pointer refers to a free table entry")
	ErrBounds       = errors.New("heap: offset outside block bounds")
	ErrBadStore     = errors.New("heap: unit is not a storable value")
	ErrOutOfMemory  = errors.New("heap: out of memory")
	ErrBadLevel     = errors.New("heap: no such speculation level")
	ErrNoSpec       = errors.New("heap: no speculation in progress")
	ErrBadAllocSize = errors.New("heap: invalid allocation size")
)

// Collector is the policy hook invoked when an allocation cannot be
// satisfied. Implementations (internal/gc) decide whether to run a minor or
// major collection using the mechanism methods CollectMinor/CollectMajor.
// need is the number of words the failed allocation requires.
type Collector interface {
	Collect(h *Heap, need int) error
}

// Config configures a heap instance.
type Config struct {
	// InitialWords is the starting arena capacity in words (default 1024).
	// The arena doubles on demand up to MaxWords, so the default only
	// decides how much zeroed memory a short-lived heap pays for up front.
	InitialWords int
	// MaxWords caps arena growth (default 1<<24 words).
	MaxWords int
	// DisableChecks turns off the pointer-table safety checks, for
	// measuring their cost (ablation A3). Never set in production use.
	DisableChecks bool
	// TrackDirty enables dirty-entry tracking from birth so the heap can
	// emit incremental DeltaSnapshots (see delta.go). Off by default: the
	// bookkeeping costs one map write per dirtying operation.
	TrackDirty bool
}

func (c Config) withDefaults() Config {
	if c.InitialWords <= 0 {
		c.InitialWords = 1024
	}
	if c.MaxWords <= 0 {
		c.MaxWords = 1 << 24
	}
	if c.MaxWords < c.InitialWords {
		c.MaxWords = c.InitialWords
	}
	return c
}

// entry is a pointer-table entry: the block header of §4.1.1. Addr is the
// word offset of the block's current copy in the arena (-1 when the slot is
// free). Level is the ID of the speculation level that created the current
// copy (0 = committed state). Version increments whenever the slot is
// freed, protecting stale index references held by speculation bookkeeping.
type entry struct {
	Addr    int
	Size    int
	Gen     uint8
	Mark    bool
	Level   int64
	Version uint32
	Seq     uint64
}

// Shadow is a checkpoint record (§4.1): it preserves the pre-modification
// copy of a block that was cloned by copy-on-write inside a speculation
// level. The pointer-table entry for Idx currently refers to the clone; the
// shadow keeps the original alive so rollback can restore it.
type Shadow struct {
	Idx      int64
	OldAddr  int
	OldSize  int
	OldGen   uint8
	OldLevel int64
}

// ref is a versioned reference to a table slot, immune to slot reuse.
type ref struct {
	idx int64
	ver uint32
}

// level is one speculation level's heap-side state: its checkpoint records,
// the blocks allocated while it was the current level, and the set of
// blocks whose current copy it owns.
type level struct {
	id      int64
	shadows []Shadow
	allocs  []ref
	owned   []ref
}

// Stats counts heap activity for the benchmark harness.
type Stats struct {
	Allocs          uint64 // blocks allocated
	AllocWords      uint64 // words allocated (incl. clones)
	Clones          uint64 // copy-on-write clones
	CloneWords      uint64
	Checks          uint64 // pointer-table safety checks executed
	MinorGCs        uint64
	MajorGCs        uint64
	WordsMoved      uint64 // words moved by compaction
	EntriesFreed    uint64
	Grows           uint64
	ShadowsCreated  uint64
	ShadowsRestored uint64
	ShadowsDropped  uint64
}

// Heap is a runtime heap instance: one per process context.
type Heap struct {
	cfg       Config
	arena     []Value
	allocPtr  int
	watermark int // start of the young region; everything below is old gen
	table     []entry
	freeList  []int64
	levels    []level
	nextLevel int64
	seq       uint64

	remembered map[int64]bool // old entries that may hold young pointers
	// clonedOld pins entries whose current copy is a young clone of a
	// previously old block. Old blocks may reference such an entry from
	// before the clone (no write barrier fired — the referencing word never
	// changed), so minor collections must treat it as a root until the next
	// promotion makes it old again.
	clonedOld map[int64]bool

	// Incremental-snapshot state (delta.go). dirty is nil when tracking is
	// off; levelsChanged notes an ordinal-shifting level commit since the
	// baseline; hasBase notes that a baseline snapshot exists.
	// deltaIdxScratch is reused across SnapshotDelta captures.
	dirty           map[int64]struct{}
	levelsChanged   bool
	hasBase         bool
	deltaIdxScratch []int64

	// runsScratch and markScratch are reused across collections (the run
	// list by liveRuns, the mark stack by the mark phases); both are
	// consumed within the same collection, never retained.
	runsScratch []run
	markScratch []int64
	// markRootMajor/Minor are the persistent root callbacks the mark phases
	// hand to gatherRoots, built once in New so collections allocate no
	// closures.
	markRootMajor func(Value)
	markRootMinor func(Value)

	// levelPool recycles the slice backing of removed speculation levels:
	// a checkpointing loop enters and commits one level per interval, and
	// without reuse every level regrows its shadow/alloc/owned lists from
	// scratch. Pooled levels hold zero-length slices with retained capacity.
	levelPool []level

	collector Collector
	roots     []func(yield func(Value))

	stats Stats
}

// New creates a heap with the given configuration.
func New(cfg Config) *Heap {
	cfg = cfg.withDefaults()
	h := &Heap{
		cfg:        cfg,
		arena:      make([]Value, cfg.InitialWords),
		nextLevel:  1,
		remembered: make(map[int64]bool),
		clonedOld:  make(map[int64]bool),
		// Pre-size the pointer table and its free list: short-lived heaps
		// (one per node per run) otherwise spend a handful of allocations
		// each just growing these from nil.
		table:    make([]entry, 0, 64),
		freeList: make([]int64, 0, 64),
	}
	if cfg.TrackDirty {
		h.EnableDeltaTracking()
	}
	h.markRootMajor = func(v Value) {
		if v.Kind == KPtr && v.I >= 0 {
			h.markFrom(v.I, false)
		}
	}
	h.markRootMinor = func(v Value) {
		if v.Kind == KPtr && v.I >= 0 {
			h.markFrom(v.I, true)
		}
	}
	return h
}

// SetCollector installs the collection policy invoked on allocation
// pressure. A nil collector means the heap only ever grows.
func (h *Heap) SetCollector(c Collector) { h.collector = c }

// AddRoots registers a root provider. Collections call every provider and
// treat each yielded value as a GC root. The VM registers its live
// registers; the speculation manager registers saved continuation
// arguments.
func (h *Heap) AddRoots(fn func(yield func(Value))) {
	h.roots = append(h.roots, fn)
}

// Stats returns a copy of the activity counters.
func (h *Heap) Stats() Stats { return h.stats }

// ArenaWords returns current arena capacity in words.
func (h *Heap) ArenaWords() int { return len(h.arena) }

// UsedWords returns the number of arena words currently allocated
// (including garbage not yet collected).
func (h *Heap) UsedWords() int { return h.allocPtr }

// TableLen returns the pointer-table size (§4.1.1: indices are validated
// against this bound on every dereference).
func (h *Heap) TableLen() int { return len(h.table) }

// LiveBlocks returns the number of non-free pointer-table entries.
func (h *Heap) LiveBlocks() int { return len(h.table) - len(h.freeList) }

// curLevelID returns the ID of the innermost speculation level, or 0 when
// no speculation is active.
func (h *Heap) curLevelID() int64 {
	if len(h.levels) == 0 {
		return 0
	}
	return h.levels[len(h.levels)-1].id
}

// LevelCount returns the number of open speculation levels (the paper's N).
func (h *Heap) LevelCount() int { return len(h.levels) }

// Alloc allocates a block of size words, zero-initialized to integer 0,
// and returns a pointer value to it. The block is tagged with the current
// speculation level: blocks allocated inside a level vanish when the level
// rolls back.
func (h *Heap) Alloc(size int64) (Value, error) {
	if size < 0 {
		return Value{}, fmt.Errorf("%w: %d", ErrBadAllocSize, size)
	}
	if size > int64(h.cfg.MaxWords) {
		return Value{}, fmt.Errorf("%w: block of %d words exceeds cap %d", ErrOutOfMemory, size, h.cfg.MaxWords)
	}
	addr, err := h.allocRun(int(size))
	if err != nil {
		return Value{}, err
	}
	zero := IntVal(0)
	for i := 0; i < int(size); i++ {
		h.arena[addr+i] = zero
	}
	idx := h.allocEntry()
	h.seq++
	e := &h.table[idx]
	e.Addr = addr
	e.Size = int(size)
	e.Gen = genYoung
	e.Level = h.curLevelID()
	e.Seq = h.seq
	if n := len(h.levels); n > 0 {
		lv := &h.levels[n-1]
		lv.allocs = append(lv.allocs, ref{idx: idx, ver: e.Version})
		lv.owned = append(lv.owned, ref{idx: idx, ver: e.Version})
	}
	h.stats.Allocs++
	h.stats.AllocWords += uint64(size)
	h.dirtied(idx)
	return PtrVal(idx, 0), nil
}

// allocRun reserves size words at the arena tail, collecting or growing as
// needed.
func (h *Heap) allocRun(size int) (int, error) {
	if h.allocPtr+size <= len(h.arena) {
		a := h.allocPtr
		h.allocPtr += size
		return a, nil
	}
	if h.collector != nil {
		if err := h.collector.Collect(h, size); err != nil {
			return 0, err
		}
		if h.allocPtr+size <= len(h.arena) {
			a := h.allocPtr
			h.allocPtr += size
			return a, nil
		}
	}
	// Grow: double until it fits, capped at MaxWords.
	want := h.allocPtr + size
	if want > h.cfg.MaxWords {
		return 0, fmt.Errorf("%w: need %d words, cap %d", ErrOutOfMemory, want, h.cfg.MaxWords)
	}
	newCap := len(h.arena)
	if newCap == 0 {
		newCap = 1
	}
	for newCap < want {
		newCap *= 2
	}
	if newCap > h.cfg.MaxWords {
		newCap = h.cfg.MaxWords
	}
	na := make([]Value, newCap)
	copy(na, h.arena[:h.allocPtr])
	h.arena = na
	h.stats.Grows++
	a := h.allocPtr
	h.allocPtr += size
	return a, nil
}

// allocEntry takes a pointer-table slot from the free list or extends the
// table.
func (h *Heap) allocEntry() int64 {
	if n := len(h.freeList); n > 0 {
		idx := h.freeList[n-1]
		h.freeList = h.freeList[:n-1]
		return idx
	}
	h.table = append(h.table, entry{Addr: -1})
	return int64(len(h.table) - 1)
}

// freeEntry releases a table slot and bumps its version so stale refs are
// detectable.
func (h *Heap) freeEntry(idx int64) {
	e := &h.table[idx]
	e.Addr = -1
	e.Size = 0
	e.Mark = false
	e.Level = 0
	e.Version++
	h.freeList = append(h.freeList, idx)
	delete(h.remembered, idx)
	delete(h.clonedOld, idx)
	h.dirtied(idx)
	h.stats.EntriesFreed++
}

// check validates a pointer value and an effective offset against the
// pointer table, returning the entry index. These are the per-access
// safety checks of §4.1.1.
func (h *Heap) check(ptr Value, off int64) (int64, error) {
	if !h.cfg.DisableChecks {
		h.stats.Checks++
		if ptr.Kind != KPtr {
			return 0, fmt.Errorf("%w: %s", ErrNotPointer, ptr)
		}
		if ptr.I < 0 {
			return 0, ErrNullPointer
		}
		if ptr.I >= int64(len(h.table)) {
			return 0, fmt.Errorf("%w: %d >= %d", ErrBadIndex, ptr.I, len(h.table))
		}
	}
	e := &h.table[ptr.I]
	if !h.cfg.DisableChecks {
		if e.Addr < 0 {
			return 0, fmt.Errorf("%w: index %d", ErrFreeEntry, ptr.I)
		}
		eff := ptr.Off + off
		if eff < 0 || eff >= int64(e.Size) {
			return 0, fmt.Errorf("%w: offset %d, block size %d (index %d)", ErrBounds, eff, e.Size, ptr.I)
		}
	}
	return ptr.I, nil
}

// Load reads the word at ptr.Off+off in the block ptr refers to.
func (h *Heap) Load(ptr Value, off int64) (Value, error) {
	idx, err := h.check(ptr, off)
	if err != nil {
		return Value{}, err
	}
	e := &h.table[idx]
	return h.arena[e.Addr+int(ptr.Off+off)], nil
}

// Store writes v at ptr.Off+off in the block ptr refers to, applying
// copy-on-write when the block's current copy belongs to an older
// speculation level (§4.3: "when a block in the heap is modified, the block
// is cloned and the pointer table updated to point to the new copy").
func (h *Heap) Store(ptr Value, off int64, v Value) error {
	idx, err := h.check(ptr, off)
	if err != nil {
		return err
	}
	if v.Kind == KUnit {
		return ErrBadStore
	}
	cur := h.curLevelID()
	if h.table[idx].Level < cur {
		if err := h.cowClone(idx); err != nil {
			return err
		}
	}
	e := &h.table[idx]
	// Generational write barrier: an old block may now reference a young
	// one; remember it so minor collections can find the young block.
	if v.Kind == KPtr && v.I >= 0 && e.Gen == genOld {
		h.remembered[idx] = true
	}
	h.arena[e.Addr+int(ptr.Off+off)] = v
	h.dirtied(idx)
	return nil
}

// cowClone clones the current copy of entry idx into the current
// speculation level, recording a checkpoint record (shadow) that preserves
// the original for rollback.
func (h *Heap) cowClone(idx int64) error {
	size := h.table[idx].Size
	newAddr, err := h.allocRun(size)
	if err != nil {
		return err
	}
	// allocRun may have compacted the arena; re-read the entry after it.
	e := &h.table[idx]
	copy(h.arena[newAddr:newAddr+size], h.arena[e.Addr:e.Addr+size])
	lv := &h.levels[len(h.levels)-1]
	lv.shadows = append(lv.shadows, Shadow{
		Idx:      idx,
		OldAddr:  e.Addr,
		OldSize:  e.Size,
		OldGen:   e.Gen,
		OldLevel: e.Level,
	})
	lv.owned = append(lv.owned, ref{idx: idx, ver: e.Version})
	if e.Gen == genOld {
		// The entry turns young in place: old blocks referencing it from
		// before the clone have an old→young edge no barrier recorded.
		h.clonedOld[idx] = true
	}
	e.Addr = newAddr
	e.Gen = genYoung // the clone lives in the young region at the tail
	e.Level = lv.id
	h.stats.Clones++
	h.stats.CloneWords += uint64(size)
	h.stats.ShadowsCreated++
	return nil
}

// BlockSize returns the size in words of the block ptr refers to.
func (h *Heap) BlockSize(ptr Value) (int64, error) {
	if ptr.Kind != KPtr {
		return 0, fmt.Errorf("%w: %s", ErrNotPointer, ptr)
	}
	if ptr.I < 0 {
		return 0, ErrNullPointer
	}
	if ptr.I >= int64(len(h.table)) {
		return 0, fmt.Errorf("%w: %d >= %d", ErrBadIndex, ptr.I, len(h.table))
	}
	e := &h.table[ptr.I]
	if e.Addr < 0 {
		return 0, fmt.Errorf("%w: index %d", ErrFreeEntry, ptr.I)
	}
	return int64(e.Size), nil
}

// EnterLevel starts a new speculation level nested inside the current one
// and returns its ordinal (1-based; the paper numbers levels 1..N).
func (h *Heap) EnterLevel() int {
	id := h.nextLevel
	h.nextLevel++
	lv := level{id: id}
	if n := len(h.levelPool); n > 0 {
		p := h.levelPool[n-1]
		h.levelPool = h.levelPool[:n-1]
		lv.shadows, lv.allocs, lv.owned = p.shadows, p.allocs, p.owned
	} else {
		// Pre-size the ref slices so a fresh level doesn't pay the
		// append-doubling ladder on its first few allocations.
		lv.allocs = make([]ref, 0, 16)
		lv.owned = make([]ref, 0, 16)
	}
	h.levels = append(h.levels, lv)
	return len(h.levels)
}

// recycleLevel returns a removed level's slice backing to the pool. The
// caller must have copied out (or abandoned) the contents already.
func (h *Heap) recycleLevel(lv level) {
	if len(h.levelPool) >= 8 {
		return
	}
	h.levelPool = append(h.levelPool, level{
		shadows: lv.shadows[:0], allocs: lv.allocs[:0], owned: lv.owned[:0],
	})
}

// ordinalToPos validates a 1-based level ordinal.
func (h *Heap) ordinalToPos(n int) (int, error) {
	if n < 1 || n > len(h.levels) {
		return 0, fmt.Errorf("%w: %d (have %d levels)", ErrBadLevel, n, len(h.levels))
	}
	return n - 1, nil
}

// CommitLevel commits level n (1-based ordinal), folding all changes from
// that level into the level below it (§4.3.1). Commits may occur out of
// order: n need not be the innermost level.
func (h *Heap) CommitLevel(n int) error {
	pos, err := h.ordinalToPos(n)
	if err != nil {
		return err
	}
	lv := h.levels[pos]
	if pos == 0 {
		// Fold into committed state (level 0): the speculation's changes
		// become permanent. Shadows are discarded; their old copies become
		// garbage for the collector to reclaim.
		for _, s := range lv.shadows {
			_ = s
			h.stats.ShadowsDropped++
		}
		for _, r := range lv.owned {
			if h.refValid(r) && h.table[r.idx].Level == lv.id {
				h.table[r.idx].Level = 0
				h.dirtied(r.idx)
			}
		}
	} else {
		below := &h.levels[pos-1]
		// An entry already shadowed by the level below keeps that (older)
		// shadow; this level's shadow preserved state-at-entry-of-n, which
		// is no longer a rollback point once n commits.
		shadowed := make(map[int64]bool, len(below.shadows))
		for _, s := range below.shadows {
			shadowed[s.Idx] = true
		}
		for _, s := range lv.shadows {
			if shadowed[s.Idx] {
				h.stats.ShadowsDropped++
				continue
			}
			below.shadows = append(below.shadows, s)
			shadowed[s.Idx] = true
		}
		for _, r := range lv.owned {
			if h.refValid(r) && h.table[r.idx].Level == lv.id {
				h.table[r.idx].Level = below.id
				h.dirtied(r.idx)
			}
		}
		below.allocs = append(below.allocs, lv.allocs...)
		below.owned = append(below.owned, lv.owned...)
	}
	if pos != len(h.levels)-1 {
		// Removing a non-innermost level shifts the ordinals of every level
		// above it, and with them the snapshot Level of entries those levels
		// own; the next delta must re-emit them (see SnapshotDelta).
		h.levelsChanged = true
	}
	h.levels = append(h.levels[:pos], h.levels[pos+1:]...)
	h.recycleLevel(lv)
	return nil
}

// RollbackLevel reverts every change made in level n (1-based ordinal) and
// all later levels, restoring the heap to its state at entry into level n.
// The level stack is left at n-1 levels; the caller (the speculation
// manager) re-enters the level to implement the paper's retry semantics.
func (h *Heap) RollbackLevel(n int) error {
	pos, err := h.ordinalToPos(n)
	if err != nil {
		return err
	}
	for p := len(h.levels) - 1; p >= pos; p-- {
		lv := &h.levels[p]
		// Restore shadows in reverse creation order.
		for i := len(lv.shadows) - 1; i >= 0; i-- {
			s := lv.shadows[i]
			e := &h.table[s.Idx]
			e.Addr = s.OldAddr
			e.Size = s.OldSize
			e.Gen = s.OldGen
			e.Level = s.OldLevel
			if e.Gen == genOld {
				delete(h.clonedOld, s.Idx) // the old copy is current again
			}
			h.dirtied(s.Idx)
			h.stats.ShadowsRestored++
		}
		// Blocks allocated inside the level never existed at the rollback
		// point: free their table entries.
		for i := len(lv.allocs) - 1; i >= 0; i-- {
			r := lv.allocs[i]
			if h.refValid(r) {
				h.freeEntry(r.idx)
			}
		}
	}
	for p := len(h.levels) - 1; p >= pos; p-- {
		h.recycleLevel(h.levels[p])
	}
	h.levels = h.levels[:pos]
	return nil
}

// refValid reports whether a versioned slot reference still refers to the
// same allocation (the slot may have been freed and reused by the GC).
func (h *Heap) refValid(r ref) bool {
	return r.idx >= 0 && r.idx < int64(len(h.table)) &&
		h.table[r.idx].Version == r.ver && h.table[r.idx].Addr >= 0
}

// MutateFraction returns the fraction of live blocks whose current copy is
// owned by an open speculation level — the paper's "mutation percentile of
// the heap during the life of the speculation" (§5).
func (h *Heap) MutateFraction() float64 {
	live := h.LiveBlocks()
	if live == 0 {
		return 0
	}
	owned := 0
	for i := range h.table {
		if h.table[i].Addr >= 0 && h.table[i].Level != 0 {
			owned++
		}
	}
	return float64(owned) / float64(live)
}
