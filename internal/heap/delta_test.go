package heap

import (
	"math/rand"
	"testing"
)

// deltaHarness drives a tracked heap through randomized operations while
// holding a mutating root set, so GC, speculation and copy-on-write all
// participate.
type deltaHarness struct {
	t     *testing.T
	h     *Heap
	rng   *rand.Rand
	roots []Value
}

func newDeltaHarness(t *testing.T, seed int64) *deltaHarness {
	dh := &deltaHarness{
		t:   t,
		h:   New(Config{InitialWords: 256, TrackDirty: true}),
		rng: rand.New(rand.NewSource(seed)),
	}
	dh.h.AddRoots(func(yield func(Value)) {
		for _, v := range dh.roots {
			yield(v)
		}
	})
	return dh
}

// step applies one random operation.
func (dh *deltaHarness) step() {
	h, rng := dh.h, dh.rng
	switch op := rng.Intn(10); {
	case op < 3: // alloc a small block, usually rooted
		ptr, err := h.Alloc(int64(1 + rng.Intn(6)))
		if err != nil {
			dh.t.Fatalf("alloc: %v", err)
		}
		dh.roots = append(dh.roots, ptr)
	case op < 6: // store into a random rooted block
		if len(dh.roots) == 0 {
			return
		}
		ptr := dh.roots[rng.Intn(len(dh.roots))]
		var v Value
		if rng.Intn(4) == 0 && len(dh.roots) > 1 {
			v = dh.roots[rng.Intn(len(dh.roots))]
			if _, err := h.BlockSize(v); err != nil {
				// A rollback or collection freed the pointee; a live program
				// could not still hold this pointer. Store a scalar instead.
				v = IntVal(rng.Int63n(1000))
			}
		} else {
			v = IntVal(rng.Int63n(1000))
		}
		// The offset may be out of bounds or the entry freed by a rollback;
		// both are legitimate no-ops for this harness.
		_ = h.Store(ptr, int64(rng.Intn(6)), v)
	case op < 7: // drop a root (makes garbage for the next collection)
		if len(dh.roots) > 2 {
			i := rng.Intn(len(dh.roots))
			dh.roots = append(dh.roots[:i], dh.roots[i+1:]...)
		}
	case op < 8: // speculation-level traffic
		switch {
		case h.LevelCount() == 0 || rng.Intn(3) == 0:
			h.EnterLevel()
		case rng.Intn(2) == 0:
			if err := h.CommitLevel(1 + rng.Intn(h.LevelCount())); err != nil {
				dh.t.Fatalf("commit: %v", err)
			}
		default:
			if err := h.RollbackLevel(1 + rng.Intn(h.LevelCount())); err != nil {
				dh.t.Fatalf("rollback: %v", err)
			}
		}
	case op < 9:
		h.CollectMinor()
	default:
		h.CollectMajor()
	}
}

// TestDeltaSnapshotRebuild is the central incremental-checkpoint property:
// for random operation sequences, a base snapshot plus the chain of deltas
// captured along the way rebuilds to exactly the full snapshot taken at
// the end — including under GC, copy-on-write, commits and rollbacks.
func TestDeltaSnapshotRebuild(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		dh := newDeltaHarness(t, seed)
		base := dh.h.Snapshot()
		dh.h.MarkSnapshotBase()
		var deltas []*DeltaSnapshot
		for round := 0; round < 6; round++ {
			for i := 0; i < 40; i++ {
				dh.step()
			}
			d := dh.h.SnapshotDelta()
			if d == nil {
				t.Fatalf("seed %d round %d: tracked heap returned nil delta", seed, round)
			}
			deltas = append(deltas, d)

			full := dh.h.Snapshot()
			rebuilt, err := RebuildSnapshot(base, deltas...)
			if err != nil {
				t.Fatalf("seed %d round %d: rebuild: %v", seed, round, err)
			}
			if !rebuilt.Equal(full) {
				t.Fatalf("seed %d round %d: rebuilt snapshot diverges from full snapshot", seed, round)
			}
			// The rebuilt snapshot must also restore into a valid heap.
			h2, err := Restore(rebuilt, Config{})
			if err != nil {
				t.Fatalf("seed %d round %d: restore of rebuilt snapshot: %v", seed, round, err)
			}
			if err := h2.CheckInvariants(); err != nil {
				t.Fatalf("seed %d round %d: restored heap invariants: %v", seed, round, err)
			}
		}
		if err := dh.h.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: final invariants: %v", seed, err)
		}
	}
}

// TestDeltaSnapshotNeedsBase pins the fall-back contract: without
// tracking, or without a baseline, SnapshotDelta returns nil.
func TestDeltaSnapshotNeedsBase(t *testing.T) {
	h := New(Config{})
	if h.SnapshotDelta() != nil {
		t.Fatal("untracked heap produced a delta")
	}
	h.EnableDeltaTracking()
	if h.SnapshotDelta() != nil {
		t.Fatal("tracked heap without a baseline produced a delta")
	}
	if h.DeltaReady() {
		t.Fatal("DeltaReady before any baseline")
	}
	h.MarkSnapshotBase()
	if !h.DeltaReady() {
		t.Fatal("DeltaReady false after MarkSnapshotBase")
	}
	if d := h.SnapshotDelta(); d == nil || len(d.Changed) != 0 || len(d.Freed) != 0 {
		t.Fatalf("empty delta expected, got %+v", d)
	}
}

// TestDeltaTrackingFromRestore pins that a heap restored from a snapshot
// with TrackDirty set tracks but has no baseline: the checkpoint pipeline
// must write a full image first after resurrect or migration.
func TestDeltaTrackingFromRestore(t *testing.T) {
	h := New(Config{TrackDirty: true})
	ptr, err := h.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	h.AddRoots(func(yield func(Value)) { yield(ptr) })
	if err := h.Store(ptr, 0, IntVal(7)); err != nil {
		t.Fatal(err)
	}
	h2, err := Restore(h.Snapshot(), Config{TrackDirty: true})
	if err != nil {
		t.Fatal(err)
	}
	if !h2.DeltaTracking() {
		t.Fatal("restored heap does not track")
	}
	if h2.DeltaReady() {
		t.Fatal("restored heap claims a baseline it cannot have")
	}
}
