package heap

import (
	"fmt"
	"slices"
)

// This file implements the collection *mechanism*: generational mark-sweep
// with sliding compaction (the paper's minor/major phases, §4), plus a
// breadth-first copying order used as the ablation baseline for the
// temporal-locality claim. The collection *policy* — when to run which
// phase — lives in internal/gc, which drives these methods through the
// Collector interface.
//
// The paper's claim reproduced here: sliding compaction preserves temporal
// allocation order, so blocks allocated near each other in time stay near
// each other in memory, unlike breadth-first copying collectors.

// gatherRoots yields every root value from the registered providers.
func (h *Heap) gatherRoots(yield func(Value)) {
	for _, fn := range h.roots {
		fn(yield)
	}
}

// validLive reports whether idx names a live (non-free) table entry.
func (h *Heap) validLive(idx int64) bool {
	return idx >= 0 && idx < int64(len(h.table)) && h.table[idx].Addr >= 0
}

// markFrom marks entries transitively reachable from idx. When youngOnly is
// set, traversal stops at old-generation entries (minor collection relies
// on the remembered set and pinning to cover old→young edges).
func (h *Heap) markFrom(idx int64, youngOnly bool) {
	if !h.validLive(idx) || h.table[idx].Mark {
		return
	}
	if youngOnly && h.table[idx].Gen == genOld {
		return
	}
	h.table[idx].Mark = true
	h.markScratch = append(h.markScratch, idx)
}

// scanRun pushes every pointer word in an arena run onto the mark stack.
func (h *Heap) scanRun(addr, size int, youngOnly bool) {
	for i := addr; i < addr+size; i++ {
		if w := h.arena[i]; w.Kind == KPtr && w.I >= 0 {
			h.markFrom(w.I, youngOnly)
		}
	}
}

func (h *Heap) drainMarkStack(youngOnly bool) {
	for n := len(h.markScratch); n > 0; n = len(h.markScratch) {
		idx := h.markScratch[n-1]
		h.markScratch = h.markScratch[:n-1]
		e := &h.table[idx]
		h.scanRun(e.Addr, e.Size, youngOnly)
	}
}

// run is a contiguous live region of the arena due to be relocated:
// either an entry's current copy or a shadow's preserved original.
type run struct {
	addr, size int
	entry      int64 // table index when >= 0
	levelPos   int   // shadow owner when entry < 0
	shadowPos  int
}

// liveRuns collects every live run at or above the floor address, sorted by
// address. Runs never overlap: every run is a distinct allocation.
func (h *Heap) liveRuns(floor int) []run {
	runs := h.runsScratch[:0]
	for i := range h.table {
		e := &h.table[i]
		if e.Addr >= floor && e.Mark {
			runs = append(runs, run{addr: e.Addr, size: e.Size, entry: int64(i)})
		}
	}
	for lp := range h.levels {
		for sp := range h.levels[lp].shadows {
			s := &h.levels[lp].shadows[sp]
			if s.OldAddr >= floor {
				runs = append(runs, run{addr: s.OldAddr, size: s.OldSize, entry: -1, levelPos: lp, shadowPos: sp})
			}
		}
	}
	slices.SortFunc(runs, func(a, b run) int { return a.addr - b.addr })
	h.runsScratch = runs
	return runs
}

// relocate moves a run to dst and updates its owner's address.
func (h *Heap) relocate(r run, dst int) {
	if dst != r.addr {
		copy(h.arena[dst:dst+r.size], h.arena[r.addr:r.addr+r.size])
		h.stats.WordsMoved += uint64(r.size)
	}
	if r.entry >= 0 {
		h.table[r.entry].Addr = dst
	} else {
		h.levels[r.levelPos].shadows[r.shadowPos].OldAddr = dst
	}
}

// markMajor runs a full mark phase: roots, speculation continuations (via
// root providers), and all checkpoint records. Shadowed entries and their
// preserved originals are pinned — they are the "valid blocks in the heap
// whose pointer table entry refers to a different block" of §4.1.
func (h *Heap) markMajor() {
	h.markScratch = h.markScratch[:0]
	h.gatherRoots(h.markRootMajor)
	h.drainMarkStack(false)
	for lp := range h.levels {
		lv := &h.levels[lp]
		for sp := range lv.shadows {
			s := &lv.shadows[sp]
			h.markFrom(s.Idx, false)
			h.drainMarkStack(false)
			h.scanRun(s.OldAddr, s.OldSize, false)
			h.drainMarkStack(false)
		}
		// Blocks owned by open levels are pinned conservatively: the saved
		// continuation may be the only path back to them after a rollback.
		for _, r := range lv.owned {
			if h.refValid(r) {
				h.markFrom(r.idx, false)
				h.drainMarkStack(false)
			}
		}
	}
}

// sweepUnmarked frees every live-but-unmarked entry (minYoung restricts the
// sweep to the young generation for minor collections).
func (h *Heap) sweepUnmarked(youngOnly bool) {
	for i := range h.table {
		e := &h.table[i]
		if e.Addr < 0 {
			continue
		}
		if youngOnly && e.Gen == genOld {
			continue
		}
		if !e.Mark {
			h.freeEntry(int64(i))
		}
	}
}

func (h *Heap) clearMarks() {
	for i := range h.table {
		h.table[i].Mark = false
	}
}

// promoteAll moves every surviving entry and shadow into the old
// generation and resets the young-region watermark to the allocation
// frontier.
func (h *Heap) promoteAll() {
	for i := range h.table {
		if h.table[i].Addr >= 0 {
			h.table[i].Gen = genOld
		}
	}
	for lp := range h.levels {
		for sp := range h.levels[lp].shadows {
			h.levels[lp].shadows[sp].OldGen = genOld
		}
	}
	h.watermark = h.allocPtr
	clear(h.remembered)
	clear(h.clonedOld)
}

// CollectMajor performs a full mark-sweep-compact collection: mark from
// all roots and checkpoint records, free unmarked entries, then slide
// every live run downward preserving allocation (temporal) order.
func (h *Heap) CollectMajor() {
	h.markMajor()
	h.sweepUnmarked(false)
	runs := h.liveRuns(0)
	dst := 0
	for _, r := range runs {
		h.relocate(r, dst)
		dst += r.size
	}
	h.allocPtr = dst
	h.clearMarks()
	h.promoteAll()
	h.stats.MajorGCs++
}

// CollectMinor performs a young-generation collection: mark young entries
// reachable from roots, the remembered set, speculation-owned blocks and
// checkpoint records; free dead young entries; slide surviving young runs
// down to the watermark; promote survivors.
func (h *Heap) CollectMinor() {
	h.markScratch = h.markScratch[:0]
	h.gatherRoots(h.markRootMinor)
	h.drainMarkStack(true)
	// Remembered old entries may hold the only references to young blocks.
	for idx := range h.remembered {
		if h.validLive(idx) {
			e := &h.table[idx]
			h.scanRun(e.Addr, e.Size, true)
		}
	}
	h.drainMarkStack(true)
	// Young clones of previously old entries are referenced from old blocks
	// the write barrier never saw change; pin them like roots.
	for idx := range h.clonedOld {
		h.markFrom(idx, true)
	}
	h.drainMarkStack(true)
	// Checkpoint records pin their entries and their preserved copies may
	// reference young blocks regardless of the record's own region.
	for lp := range h.levels {
		lv := &h.levels[lp]
		for sp := range lv.shadows {
			s := &lv.shadows[sp]
			h.markFrom(s.Idx, true)
			h.drainMarkStack(true)
			h.scanRun(s.OldAddr, s.OldSize, true)
			h.drainMarkStack(true)
		}
		for _, r := range lv.owned {
			if h.refValid(r) {
				h.markFrom(r.idx, true)
				h.drainMarkStack(true)
			}
		}
	}
	h.sweepUnmarked(true)
	// Slide live young runs down onto the watermark, preserving temporal
	// order within the nursery.
	runs := h.liveRuns(h.watermark)
	dst := h.watermark
	for _, r := range runs {
		h.relocate(r, dst)
		dst += r.size
	}
	h.allocPtr = dst
	h.clearMarks()
	h.promoteAll()
	h.stats.MinorGCs++
}

// CollectMajorBFS is the ablation baseline for experiment A4: a full
// collection that relocates live runs in breadth-first reachability order
// from the roots (the order a Cheney-style copying collector produces)
// instead of sliding in allocation order. It is correct but destroys
// temporal locality, which BenchmarkGCCompactionLocality quantifies.
func (h *Heap) CollectMajorBFS() {
	h.markMajor()
	h.sweepUnmarked(false)

	// Determine BFS order over entries.
	order := make([]int64, 0, len(h.table))
	seen := make(map[int64]bool)
	var queue []int64
	enqueue := func(idx int64) {
		if h.validLive(idx) && !seen[idx] {
			seen[idx] = true
			queue = append(queue, idx)
		}
	}
	h.gatherRoots(func(v Value) {
		if v.Kind == KPtr && v.I >= 0 {
			enqueue(v.I)
		}
	})
	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		order = append(order, idx)
		e := &h.table[idx]
		for i := e.Addr; i < e.Addr+e.Size; i++ {
			if w := h.arena[i]; w.Kind == KPtr && w.I >= 0 {
				enqueue(w.I)
			}
		}
	}
	// Entries live but unreached by BFS (pinned by checkpoint records)
	// go after the reachable ones, in table order.
	for i := range h.table {
		if h.table[i].Addr >= 0 && h.table[i].Mark && !seen[int64(i)] {
			order = append(order, int64(i))
		}
	}

	// Copy into a fresh semispace in BFS order; shadows follow at the end.
	to := make([]Value, len(h.arena))
	dst := 0
	for _, idx := range order {
		e := &h.table[idx]
		copy(to[dst:dst+e.Size], h.arena[e.Addr:e.Addr+e.Size])
		h.stats.WordsMoved += uint64(e.Size)
		e.Addr = dst
		dst += e.Size
	}
	for lp := range h.levels {
		for sp := range h.levels[lp].shadows {
			s := &h.levels[lp].shadows[sp]
			copy(to[dst:dst+s.OldSize], h.arena[s.OldAddr:s.OldAddr+s.OldSize])
			s.OldAddr = dst
			dst += s.OldSize
		}
	}
	h.arena = to
	h.allocPtr = dst
	h.clearMarks()
	h.promoteAll()
	h.stats.MajorGCs++
}

// TemporalLocalityScore measures how well the arena layout preserves
// temporal allocation order: the mean absolute arena distance between the
// current copies of consecutively-allocated live blocks. Lower is better;
// sliding compaction keeps it low, breadth-first copying inflates it.
func (h *Heap) TemporalLocalityScore() float64 {
	type sb struct {
		seq  uint64
		addr int
	}
	var blocks []sb
	for i := range h.table {
		if h.table[i].Addr >= 0 {
			blocks = append(blocks, sb{seq: h.table[i].Seq, addr: h.table[i].Addr})
		}
	}
	if len(blocks) < 2 {
		return 0
	}
	slices.SortFunc(blocks, func(a, b sb) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
	total := 0.0
	for i := 1; i < len(blocks); i++ {
		d := blocks[i].addr - blocks[i-1].addr
		if d < 0 {
			d = -d
		}
		total += float64(d)
	}
	return total / float64(len(blocks)-1)
}

// CheckInvariants verifies the heap's representation invariants. It is
// called from property-based tests after randomized operation sequences;
// any violation is a bug in the heap, the collector or the speculation
// machinery.
func (h *Heap) CheckInvariants() error {
	if h.allocPtr < 0 || h.allocPtr > len(h.arena) {
		return fmt.Errorf("allocPtr %d outside arena [0,%d]", h.allocPtr, len(h.arena))
	}
	if h.watermark < 0 || h.watermark > h.allocPtr {
		return fmt.Errorf("watermark %d outside [0,%d]", h.watermark, h.allocPtr)
	}
	free := make(map[int64]bool, len(h.freeList))
	for _, idx := range h.freeList {
		if idx < 0 || idx >= int64(len(h.table)) {
			return fmt.Errorf("free-list index %d out of table range", idx)
		}
		if free[idx] {
			return fmt.Errorf("free-list index %d duplicated", idx)
		}
		free[idx] = true
	}
	type span struct{ lo, hi int }
	var spans []span
	for i := range h.table {
		e := &h.table[i]
		if e.Addr < 0 {
			if !free[int64(i)] {
				return fmt.Errorf("entry %d is free but not on the free list", i)
			}
			continue
		}
		if free[int64(i)] {
			return fmt.Errorf("entry %d is live but on the free list", i)
		}
		if e.Addr+e.Size > h.allocPtr {
			return fmt.Errorf("entry %d run [%d,%d) beyond allocPtr %d", i, e.Addr, e.Addr+e.Size, h.allocPtr)
		}
		if e.Gen == genYoung && e.Addr < h.watermark {
			return fmt.Errorf("young entry %d below watermark (%d < %d)", i, e.Addr, h.watermark)
		}
		if e.Gen == genOld && e.Addr >= h.watermark && e.Size > 0 {
			return fmt.Errorf("old entry %d above watermark (%d >= %d)", i, e.Addr, h.watermark)
		}
		spans = append(spans, span{e.Addr, e.Addr + e.Size})
	}
	for lp := range h.levels {
		for sp := range h.levels[lp].shadows {
			s := &h.levels[lp].shadows[sp]
			if !h.validLive(s.Idx) {
				return fmt.Errorf("shadow at level %d refers to free entry %d", lp+1, s.Idx)
			}
			if s.OldAddr < 0 || s.OldAddr+s.OldSize > h.allocPtr {
				return fmt.Errorf("shadow run [%d,%d) beyond allocPtr %d", s.OldAddr, s.OldAddr+s.OldSize, h.allocPtr)
			}
			spans = append(spans, span{s.OldAddr, s.OldAddr + s.OldSize})
		}
	}
	slices.SortFunc(spans, func(a, b span) int { return a.lo - b.lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return fmt.Errorf("overlapping runs [%d,%d) and [%d,%d)", spans[i-1].lo, spans[i-1].hi, spans[i].lo, spans[i].hi)
		}
	}
	// No live run may contain a dangling pointer word.
	for i := range h.table {
		e := &h.table[i]
		if e.Addr < 0 {
			continue
		}
		for j := e.Addr; j < e.Addr+e.Size; j++ {
			if w := h.arena[j]; w.Kind == KPtr && w.I >= 0 && !h.validLive(w.I) {
				return fmt.Errorf("entry %d word %d holds dangling pointer to %d", i, j-e.Addr, w.I)
			}
		}
	}
	return nil
}
