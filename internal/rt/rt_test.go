package rt

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/spec"
)

// fakeRuntime is a minimal Runtime for extern unit tests.
type fakeRuntime struct {
	h    *heap.Heap
	mgr  *spec.Manager
	out  bytes.Buffer
	args []int64
}

func newFake() *fakeRuntime {
	h := heap.New(heap.Config{})
	return &fakeRuntime{h: h, mgr: spec.New(h), args: []int64{10, 20}}
}

func (f *fakeRuntime) Name() string          { return "fake" }
func (f *fakeRuntime) Program() *fir.Program { return nil }
func (f *fakeRuntime) Heap() *heap.Heap      { return f.h }
func (f *fakeRuntime) Spec() *spec.Manager   { return f.mgr }
func (f *fakeRuntime) Stdout() io.Writer     { return &f.out }
func (f *fakeRuntime) Pin(v heap.Value)      {}
func (f *fakeRuntime) NArgs() int64          { return int64(len(f.args)) }
func (f *fakeRuntime) Rand(n int64) int64    { return n / 2 }
func (f *fakeRuntime) Arg(i int64) int64 {
	if i < 0 || i >= int64(len(f.args)) {
		return 0
	}
	return f.args[i]
}

func call(t *testing.T, r Runtime, name string, args ...heap.Value) heap.Value {
	t.Helper()
	e, ok := StdExterns()[name]
	if !ok {
		t.Fatalf("extern %q missing", name)
	}
	v, err := e.Fn(r, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestPrintExterns(t *testing.T) {
	f := newFake()
	call(t, f, "print_int", heap.IntVal(42))
	call(t, f, "print_float", heap.FloatVal(1.5))
	call(t, f, "print_char", heap.IntVal('x'))
	s, err := f.h.AllocString("hey")
	if err != nil {
		t.Fatal(err)
	}
	call(t, f, "print_str", s)
	if got := f.out.String(); got != "42\n1.5\nxhey\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestArgExterns(t *testing.T) {
	f := newFake()
	if v := call(t, f, "getarg", heap.IntVal(1)); v.I != 20 {
		t.Fatalf("getarg(1) = %s", v)
	}
	if v := call(t, f, "getarg", heap.IntVal(9)); v.I != 0 {
		t.Fatalf("getarg(9) = %s", v)
	}
	if v := call(t, f, "nargs"); v.I != 2 {
		t.Fatalf("nargs = %s", v)
	}
	if v := call(t, f, "rand_int", heap.IntVal(10)); v.I != 5 {
		t.Fatalf("rand_int = %s (delegates to Runtime.Rand)", v)
	}
}

func TestSpecExterns(t *testing.T) {
	f := newFake()
	if v := call(t, f, "spec_id"); v.I != 0 {
		t.Fatalf("spec_id outside speculation = %s", v)
	}
	if v := call(t, f, "spec_depth"); v.I != 0 {
		t.Fatalf("spec_depth = %s", v)
	}
	_, id := f.mgr.Enter(spec.Continuation{})
	if v := call(t, f, "spec_id"); v.I != id {
		t.Fatalf("spec_id = %s, want %d", v, id)
	}
	if v := call(t, f, "spec_ordinal", heap.IntVal(id)); v.I != 1 {
		t.Fatalf("spec_ordinal = %s", v)
	}
	if v := call(t, f, "spec_ordinal", heap.IntVal(999)); v.I != 0 {
		t.Fatalf("spec_ordinal(bogus) = %s", v)
	}
	if v := call(t, f, "spec_depth"); v.I != 1 {
		t.Fatalf("spec_depth = %s", v)
	}
}

func TestRegistrySigs(t *testing.T) {
	reg := StdExterns()
	sigs := reg.Sigs()
	if len(sigs) != len(reg) {
		t.Fatalf("Sigs lost entries: %d vs %d", len(sigs), len(reg))
	}
	if sig, ok := sigs["print_int"]; !ok || len(sig.Args) != 1 || sig.Args[0].Kind != fir.KindInt {
		t.Fatalf("print_int sig = %+v", sig)
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		StatusReady: "ready", StatusRunning: "running", StatusHalted: "halted",
		StatusMigrated: "migrated", StatusSuspended: "suspended", StatusFailed: "failed",
	} {
		if st.String() != want {
			t.Errorf("%d -> %q", st, st.String())
		}
	}
}
