// Package rt defines the runtime surface shared by the two MCC backends —
// the FIR interpreter (internal/vm) and the RISC machine (internal/risc).
// Externals, migration handlers and process status are expressed against
// this package so that a program behaves identically on either backend and
// a process can migrate between heterogeneous nodes (§3, §4.2).
package rt

import (
	"fmt"
	"io"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/spec"
)

// Status describes a process's lifecycle state on any backend.
type Status int

const (
	// StatusReady means the process has been created but not started.
	StatusReady Status = iota
	// StatusRunning means the process can make progress.
	StatusRunning
	// StatusHalted means the process executed halt; see HaltCode.
	StatusHalted
	// StatusMigrated means the process shipped itself to another machine
	// and terminated locally (the migrate protocol, §4.2.1).
	StatusMigrated
	// StatusSuspended means the process wrote itself to a file and
	// terminated (the suspend protocol).
	StatusSuspended
	// StatusFailed means a runtime error stopped the process.
	StatusFailed
)

func (s Status) String() string {
	switch s {
	case StatusReady:
		return "ready"
	case StatusRunning:
		return "running"
	case StatusHalted:
		return "halted"
	case StatusMigrated:
		return "migrated"
	case StatusSuspended:
		return "suspended"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// MigrateOutcome is a migration handler's disposition for the process.
type MigrateOutcome int

const (
	// OutcomeContinueLocal resumes the continuation on this machine
	// (failed migrate, or the checkpoint protocol).
	OutcomeContinueLocal MigrateOutcome = iota
	// OutcomeMigrated terminates the local process: it now runs elsewhere.
	OutcomeMigrated
	// OutcomeSuspended terminates the local process: its image is on disk.
	OutcomeSuspended
)

// Runtime is the backend-independent view of a running MCC process that
// externals and the migration subsystem program against.
type Runtime interface {
	// Name identifies the process.
	Name() string
	// Program returns the FIR program being executed.
	Program() *fir.Program
	// Heap returns the process heap.
	Heap() *heap.Heap
	// Spec returns the speculation manager.
	Spec() *spec.Manager
	// Stdout is the sink for the print externs.
	Stdout() io.Writer
	// Pin registers a temporary GC root; the backend clears pins after
	// each external returns.
	Pin(v heap.Value)
	// Arg returns the i-th process argument (0 when out of range).
	Arg(i int64) int64
	// NArgs returns the process argument count.
	NArgs() int64
	// Rand returns a deterministic pseudo-random integer in [0, n).
	Rand(n int64) int64
}

// MigrationRequest carries everything a migration handler needs at a
// migrate pseudo-instruction.
type MigrationRequest struct {
	Rt      Runtime
	Label   int
	Target  string // full target string, e.g. "migrate://host:port"
	FnIndex int64
	Args    []heap.Value
}

// MigrateHandler implements the pack/transmit half of process migration.
type MigrateHandler func(req *MigrationRequest) (MigrateOutcome, error)

// ExternFn is a runtime-provided external function. The args slice is a
// scratch buffer owned by the backend and only valid for the duration of
// the call: implementations must copy any values they retain.
type ExternFn func(r Runtime, args []heap.Value) (heap.Value, error)

// Extern pairs an external's type signature with its implementation.
type Extern struct {
	Sig fir.ExternSig
	Fn  ExternFn
}

// Registry is a named set of externals.
type Registry map[string]Extern

// Sigs projects the registry onto the signature map the type checker
// consumes.
func (r Registry) Sigs() map[string]fir.ExternSig {
	out := make(map[string]fir.ExternSig, len(r))
	for n, e := range r {
		out[n] = e.Sig
	}
	return out
}

// Proc is the backend-independent handle to a resumable process that both
// vm.Process and risc.Machine satisfy. The migration server and the cluster
// layer drive processes through this interface so a node's backend choice
// is invisible to the rest of the system.
type Proc interface {
	Runtime
	RegisterExtern(name string, sig fir.ExternSig, fn ExternFn)
	SetMigrateHandler(h MigrateHandler)
	ExternSigs() map[string]fir.ExternSig
	Run() (Status, error)
	RunSteps(n uint64) (Status, error)
	Status() Status
	HaltCode() int64
	Err() error
	Steps() uint64
}

// Exec is the full execution-engine surface the cluster and the workload
// harness drive: a Proc plus its lifecycle entry points. Start positions a
// fresh process at its entry function (type-checking first); StartAt is
// the unpack resume path, invoking the function at table index fnIdx with
// already-validated argument values; Yield asks the backend to end the
// current bounded RunSteps quantum after the active step. Engines are
// constructed through internal/engine's registry.
type Exec interface {
	Proc
	Start() error
	StartAt(fnIdx int64, args []heap.Value) error
	Yield()
}
