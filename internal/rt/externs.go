package rt

import (
	"fmt"

	"repro/internal/fir"
	"repro/internal/heap"
)

// StdExterns returns the standard external functions every MCC process
// gets, on either backend: console output, process arguments, a
// deterministic PRNG, and speculation introspection (the C-level specid
// machinery lowers onto spec_id / spec_ordinal).
func StdExterns() Registry {
	r := make(Registry)

	r["print_int"] = Extern{
		Sig: fir.ExternSig{Args: []fir.Type{fir.TyInt}, Result: fir.TyUnit},
		Fn: func(rt Runtime, a []heap.Value) (heap.Value, error) {
			fmt.Fprintf(rt.Stdout(), "%d\n", a[0].I)
			return heap.UnitVal(), nil
		},
	}
	r["print_float"] = Extern{
		Sig: fir.ExternSig{Args: []fir.Type{fir.TyFloat}, Result: fir.TyUnit},
		Fn: func(rt Runtime, a []heap.Value) (heap.Value, error) {
			fmt.Fprintf(rt.Stdout(), "%g\n", a[0].F)
			return heap.UnitVal(), nil
		},
	}
	r["print_str"] = Extern{
		Sig: fir.ExternSig{Args: []fir.Type{fir.TyPtr}, Result: fir.TyUnit},
		Fn: func(rt Runtime, a []heap.Value) (heap.Value, error) {
			s, err := rt.Heap().LoadString(a[0])
			if err != nil {
				return heap.Value{}, err
			}
			fmt.Fprintln(rt.Stdout(), s)
			return heap.UnitVal(), nil
		},
	}
	r["print_char"] = Extern{
		Sig: fir.ExternSig{Args: []fir.Type{fir.TyInt}, Result: fir.TyUnit},
		Fn: func(rt Runtime, a []heap.Value) (heap.Value, error) {
			fmt.Fprintf(rt.Stdout(), "%c", rune(a[0].I))
			return heap.UnitVal(), nil
		},
	}

	// getarg(i) returns the i-th process argument, or 0 when out of range.
	// The grid application uses it for the node id and dimensions.
	r["getarg"] = Extern{
		Sig: fir.ExternSig{Args: []fir.Type{fir.TyInt}, Result: fir.TyInt},
		Fn: func(rt Runtime, a []heap.Value) (heap.Value, error) {
			return heap.IntVal(rt.Arg(a[0].I)), nil
		},
	}
	r["nargs"] = Extern{
		Sig: fir.ExternSig{Result: fir.TyInt},
		Fn: func(rt Runtime, a []heap.Value) (heap.Value, error) {
			return heap.IntVal(rt.NArgs()), nil
		},
	}

	// rand_int(n) returns a deterministic pseudo-random integer in [0, n)
	// (seeded per process; n <= 0 yields 0).
	r["rand_int"] = Extern{
		Sig: fir.ExternSig{Args: []fir.Type{fir.TyInt}, Result: fir.TyInt},
		Fn: func(rt Runtime, a []heap.Value) (heap.Value, error) {
			return heap.IntVal(rt.Rand(a[0].I)), nil
		},
	}

	// spec_id returns the stable ID of the innermost speculation level, or
	// 0 when no speculation is open. This is what the C-level
	// `specid = speculate()` evaluates after entry.
	r["spec_id"] = Extern{
		Sig: fir.ExternSig{Result: fir.TyInt},
		Fn: func(rt Runtime, a []heap.Value) (heap.Value, error) {
			id, err := rt.Spec().CurrentID()
			if err != nil {
				return heap.IntVal(0), nil
			}
			return heap.IntVal(id), nil
		},
	}

	// spec_ordinal(id) maps a stable speculation ID to its current level
	// ordinal (1..N), or 0 when the ID is no longer open. The frontend
	// inserts it before commit/rollback, which address levels by ordinal.
	r["spec_ordinal"] = Extern{
		Sig: fir.ExternSig{Args: []fir.Type{fir.TyInt}, Result: fir.TyInt},
		Fn: func(rt Runtime, a []heap.Value) (heap.Value, error) {
			ord, err := rt.Spec().OrdinalOf(a[0].I)
			if err != nil {
				return heap.IntVal(0), nil
			}
			return heap.IntVal(int64(ord)), nil
		},
	}
	r["spec_depth"] = Extern{
		Sig: fir.ExternSig{Result: fir.TyInt},
		Fn: func(rt Runtime, a []heap.Value) (heap.Value, error) {
			return heap.IntVal(int64(rt.Spec().Depth())), nil
		},
	}
	return r
}
