// Package engine is the pluggable execution-engine layer of the cluster
// runtime. An engine is a named factory for rt.Exec backends — the
// slot-resolved FIR interpreter ("vm") and the register-allocated RISC
// simulator ("risc") register themselves here — and every layer above
// (cluster.Engine, migrate.Unpack, the workload harness, mojrun/gridrun's
// -engine flag) selects one by name. Both built-ins execute programs
// bit-exactly against the same heap/ops/spec semantics, so the choice is
// purely a performance knob: results, halt codes and checkpoint recovery
// are identical on either.
package engine

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
	"repro/internal/spec"
)

// DefaultName is the engine used when no selection is made. It is the
// interpreter: the historical behaviour of every runner.
const DefaultName = "vm"

// Config configures a new or resumed process, backend-independently. It
// mirrors vm.Config/risc.Config field for field.
type Config struct {
	// Heap configures the process heap.
	Heap heap.Config
	// Collector overrides the default generational policy.
	Collector heap.Collector
	// Stdout receives output from the print externs (default: discard).
	Stdout io.Writer
	// Fuel bounds the number of execution steps (0 = unlimited).
	Fuel uint64
	// TrapSpeculation turns trapped runtime errors inside a speculation
	// into automatic rollbacks of the innermost level.
	TrapSpeculation bool
	// Name identifies the process in errors and logs.
	Name string
	// Args are process arguments readable through the getarg extern.
	Args []int64
	// Seed seeds the deterministic rand_int extern.
	Seed int64
}

// Factory builds processes on one execution backend.
type Factory interface {
	// Name is the registry key (and the -engine flag value).
	Name() string
	// Description is one line for documentation and -engine error text.
	Description() string
	// New creates a fresh process for prog. Register externs and a
	// migration handler on the result, then call Start.
	New(prog *fir.Program, cfg Config) (rt.Exec, error)
	// Resume builds a process around a restored heap and speculation
	// continuation stack — the unpack path. Register externs on the
	// result, then call StartAt.
	Resume(prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (rt.Exec, error)
}

// Precompiler is implemented by factories whose code generation can be
// performed (and timed) separately from process construction — the
// paper's E1 migration-cost breakdown attributes recompilation at the
// target on its own line. Precompile compiles prog to an opaque
// artifact; ResumeWith resumes a process using it. The artifact is only
// valid for the exact Program it was compiled from.
type Precompiler interface {
	Precompile(prog *fir.Program) (any, error)
	ResumeWith(art any, prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (rt.Exec, error)
}

var registry struct {
	mu sync.Mutex
	m  map[string]Factory
}

// Register installs a factory under its name. Registering a name twice
// panics: it is a wiring bug, not a runtime condition.
func Register(f Factory) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]Factory)
	}
	name := f.Name()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("engine: %q registered twice", name))
	}
	registry.m[name] = f
}

// Get returns a registered factory; the empty name selects the default.
func Get(name string) (Factory, error) {
	if name == "" {
		name = DefaultName
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	f, ok := registry.m[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown execution engine %q (have %v)", name, namesLocked())
	}
	return f, nil
}

// Names lists registered engines, sorted.
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
