package engine

// The two built-in execution backends, registered at init. They are
// defined here rather than in their own packages so vm and risc stay free
// of registry plumbing (and of this package).

import (
	"sync"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/jit"
	"repro/internal/risc"
	"repro/internal/rt"
	"repro/internal/spec"
	"repro/internal/vm"
)

func init() {
	Register(vmFactory{})
	Register(riscFactory{})
	Register(jitFactory{})
}

// artifactCache memoizes per-program compiled artifacts by program
// identity, bounded FIFO. Factories assume a program handed to New is not
// mutated afterwards — the cluster engine's usage pattern (one program
// fanned out to every node, run after run). Resume paths never consult it:
// unpack decodes a fresh program each time.
type artifactCache struct {
	name  string
	mu    sync.Mutex
	m     map[*fir.Program]any
	order []*fir.Program
	max   int

	hits, misses, evicts uint64
}

func newArtifactCache(name string, max int) *artifactCache {
	return &artifactCache{name: name, m: make(map[*fir.Program]any), max: max}
}

func (c *artifactCache) get(p *fir.Program) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[p]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *artifactCache) put(p *fir.Program, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[p]; ok {
		return
	}
	c.m[p] = v
	c.order = append(c.order, p)
	for len(c.order) > c.max {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.m, old)
		c.evicts++
	}
}

// stats reports the cache's counters under "<engine>_<counter>" keys.
func (c *artifactCache) stats(into map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	into[c.name+"_hits"] = c.hits
	into[c.name+"_misses"] = c.misses
	into[c.name+"_evicts"] = c.evicts
	into[c.name+"_entries"] = uint64(len(c.order))
}

var (
	vmCache   = newArtifactCache("vm", 16)
	riscCache = newArtifactCache("risc", 16)
	jitCache  = newArtifactCache("jit", 16)
)

// CacheStats snapshots the per-engine artifact-cache counters (hits,
// misses, evictions, live entries). Wire it into an obs.Registry as the
// "engine" source to see compile reuse in daemon snapshots and traces.
func CacheStats() map[string]uint64 {
	out := make(map[string]uint64, 12)
	vmCache.stats(out)
	riscCache.stats(out)
	jitCache.stats(out)
	return out
}

type vmFactory struct{}

func (vmFactory) Name() string { return "vm" }

func (vmFactory) Description() string {
	return "slot-resolved FIR interpreter (the paper's interpreted runtime environment)"
}

func (vmFactory) New(prog *fir.Program, cfg Config) (rt.Exec, error) {
	c := vmConfig(cfg)
	if v, ok := vmCache.get(prog); ok {
		c.Compiled = v.(*vm.Compiled)
	} else if comp, err := vm.Precompile(prog); err == nil {
		// A compile error is left for Start to surface after the type
		// check, matching the uncached path's error order.
		vmCache.put(prog, comp)
		c.Compiled = comp
	}
	return vm.NewProcess(prog, c), nil
}

func (vmFactory) Resume(prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (rt.Exec, error) {
	return vm.ResumeProcess(prog, h, conts, vmConfig(cfg))
}

func (vmFactory) Precompile(prog *fir.Program) (any, error) {
	return vm.Precompile(prog)
}

func (vmFactory) ResumeWith(art any, prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (rt.Exec, error) {
	c := vmConfig(cfg)
	c.Compiled = art.(*vm.Compiled)
	return vm.ResumeProcess(prog, h, conts, c)
}

func vmConfig(cfg Config) vm.Config {
	return vm.Config{
		Heap: cfg.Heap, Collector: cfg.Collector, Stdout: cfg.Stdout,
		Fuel: cfg.Fuel, TrapSpeculation: cfg.TrapSpeculation,
		Name: cfg.Name, Args: cfg.Args, Seed: cfg.Seed,
	}
}

type riscFactory struct{}

func (riscFactory) Name() string { return "risc" }

func (riscFactory) Description() string {
	return "compiled RISC simulator with linear-scan register allocation (the paper's machine-code runtime)"
}

func (riscFactory) New(prog *fir.Program, cfg Config) (rt.Exec, error) {
	var mod *risc.Module
	if v, ok := riscCache.get(prog); ok {
		mod = v.(*risc.Module)
	} else if m, err := risc.Compile(prog); err == nil {
		// A compile error is left for Start to surface after the type
		// check, matching the uncached path's error order.
		riscCache.put(prog, m)
		mod = m
	}
	return risc.NewMachine(prog, mod, riscConfig(cfg))
}

func (riscFactory) Resume(prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (rt.Exec, error) {
	return risc.ResumeMachine(prog, nil, h, conts, riscConfig(cfg))
}

func (riscFactory) Precompile(prog *fir.Program) (any, error) {
	return risc.Compile(prog)
}

func (riscFactory) ResumeWith(art any, prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (rt.Exec, error) {
	return risc.ResumeMachine(prog, art.(*risc.Module), h, conts, riscConfig(cfg))
}

func riscConfig(cfg Config) risc.Config {
	return risc.Config{
		Heap: cfg.Heap, Collector: cfg.Collector, Stdout: cfg.Stdout,
		Fuel: cfg.Fuel, TrapSpeculation: cfg.TrapSpeculation,
		Name: cfg.Name, Args: cfg.Args, Seed: cfg.Seed,
	}
}

type jitFactory struct{}

func (jitFactory) Name() string { return "jit" }

func (jitFactory) Description() string {
	return "threaded-code engine: specialized opcodes + fused superinstructions (compare-and-branch, load/store runs)"
}

func (jitFactory) New(prog *fir.Program, cfg Config) (rt.Exec, error) {
	c := jitConfig(cfg)
	if v, ok := jitCache.get(prog); ok {
		c.Compiled = v.(*jit.Compiled)
	} else if comp, err := jit.Precompile(prog); err == nil {
		// A compile error is left for Start to surface after the type
		// check, matching the uncached path's error order.
		jitCache.put(prog, comp)
		c.Compiled = comp
	}
	return jit.NewMachine(prog, c), nil
}

func (jitFactory) Resume(prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (rt.Exec, error) {
	return jit.ResumeMachine(prog, h, conts, jitConfig(cfg))
}

func (jitFactory) Precompile(prog *fir.Program) (any, error) {
	return jit.Precompile(prog)
}

func (jitFactory) ResumeWith(art any, prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (rt.Exec, error) {
	c := jitConfig(cfg)
	c.Compiled = art.(*jit.Compiled)
	return jit.ResumeMachine(prog, h, conts, c)
}

func jitConfig(cfg Config) jit.Config {
	return jit.Config{
		Heap: cfg.Heap, Collector: cfg.Collector, Stdout: cfg.Stdout,
		Fuel: cfg.Fuel, TrapSpeculation: cfg.TrapSpeculation,
		Name: cfg.Name, Args: cfg.Args, Seed: cfg.Seed,
	}
}
