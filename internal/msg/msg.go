// Package msg implements the "customized message passing interface" the
// grid application of §2 uses for border exchange, including the rollback
// notification (the paper's MSG_ROLL) that makes processes join a failed
// neighbour's speculation and roll back together.
//
// Design notes:
//
//   - Messages are keyed (src, dst, tag); the grid app uses the timestep
//     as the tag. Delivery is idempotent and non-destructive: a receiver
//     can re-read a step's borders after rolling back, and a rolled-back
//     sender re-sends identical values (the computation is deterministic),
//     so replays converge.
//   - When a node fails, the router advances a rollback epoch. Every other
//     process observes MSG_ROLL exactly once on its next receive,
//     mirroring the paper's "all the other processes rollback their last
//     speculation to bring the computation to a consistent state".
//   - Old messages are garbage-collected by msg_gc(tag), called by the
//     application after each committed checkpoint.
package msg

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
)

// Receive status codes returned to MojC/FIR code.
const (
	// StatusOK means the payload was delivered.
	StatusOK = 0
	// StatusRoll is the paper's MSG_ROLL: a failure or rollback elsewhere
	// requires this process to roll back its current speculation.
	StatusRoll = 1
	// StatusClosed means the router shut down (the run is over).
	StatusClosed = 2
)

// ErrClosed is returned by operations on a closed router.
var ErrClosed = errors.New("msg: router closed")

type key struct {
	src, dst, tag int64
}

// Router is the in-memory interconnect between the node processes of a
// simulated cluster.
type Router struct {
	mu     sync.Mutex
	cond   *sync.Cond
	box    map[key][]heap.Value
	failed map[int64]bool
	epoch  int64
	seen   map[int64]int64 // node -> last rollback epoch observed
	closed bool

	stats Stats
}

// Stats counts router activity.
type Stats struct {
	Sends     uint64
	Recvs     uint64
	Rolls     uint64 // MSG_ROLL deliveries
	Failures  uint64 // Fail calls
	GCed      uint64 // messages dropped by msg_gc
	WordsSent uint64
}

// NewRouter creates an empty router.
func NewRouter() *Router {
	r := &Router{
		box:    make(map[key][]heap.Value),
		failed: make(map[int64]bool),
		seen:   make(map[int64]int64),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Stats returns a copy of the counters.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close releases every blocked receiver with StatusClosed.
func (r *Router) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Fail marks a node as failed and advances the rollback epoch: every other
// node's next receive reports MSG_ROLL once.
func (r *Router) Fail(node int64) {
	r.mu.Lock()
	r.failed[node] = true
	r.epoch++
	r.stats.Failures++
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Restore clears a node's failed mark (after resurrection) and marks it as
// having already observed the current epoch — the resurrected process
// resumes from its checkpoint, which is already the rollback point.
func (r *Router) Restore(node int64) {
	r.mu.Lock()
	delete(r.failed, node)
	r.seen[node] = r.epoch
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Failed reports whether a node is currently failed.
func (r *Router) Failed(node int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed[node]
}

// Send stores a message. Sends are non-blocking and idempotent: re-sending
// (src, dst, tag) overwrites with identical content on deterministic
// replays.
func (r *Router) Send(src, dst, tag int64, words []heap.Value) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	cp := make([]heap.Value, len(words))
	copy(cp, words)
	r.box[key{src, dst, tag}] = cp
	r.stats.Sends++
	r.stats.WordsSent += uint64(len(words))
	r.cond.Broadcast()
	return nil
}

// Recv blocks until a message (src→dst, tag) is available, a rollback
// epoch must be observed, or the router closes. It returns the payload and
// a status code.
func (r *Router) Recv(dst, src, tag int64) ([]heap.Value, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return nil, StatusClosed
		}
		// Pending rollback epoch? Deliver MSG_ROLL exactly once per epoch.
		if r.seen[dst] < r.epoch {
			r.seen[dst] = r.epoch
			r.stats.Rolls++
			return nil, StatusRoll
		}
		if m, ok := r.box[key{src, dst, tag}]; ok {
			r.stats.Recvs++
			out := make([]heap.Value, len(m))
			copy(out, m)
			return out, StatusOK
		}
		r.cond.Wait()
	}
}

// GC drops every message addressed TO `node` with tag < below. The grid
// app calls it after each committed checkpoint: once a node has committed
// past a step it can never re-read that step's borders. Outbound messages
// are deliberately retained — a neighbour that resumes from an older
// checkpoint may still need them.
func (r *Router) GC(node, below int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.box {
		if k.dst == node && k.tag < below {
			delete(r.box, k)
			r.stats.GCed++
		}
	}
}

// Externs returns the message-passing externals for a node process:
//
//	msg_send(dst, tag, p, off, n) int   — send n words of p starting at off
//	msg_recv(src, tag, p, off, n) int   — receive into p; returns a status
//	msg_gc(below) int                   — drop messages with tag < below
//	node_id() int                       — this node's id
//
// Payload words must be scalars (int or float); pointers are process-local
// and never cross the interconnect.
func (r *Router) Externs(node int64) rt.Registry {
	reg := make(rt.Registry)
	ptrIntInt := []fir.Type{fir.TyInt, fir.TyInt, fir.TyPtr, fir.TyInt, fir.TyInt}

	reg["msg_send"] = rt.Extern{
		Sig: fir.ExternSig{Args: ptrIntInt, Result: fir.TyInt},
		Fn: func(rtx rt.Runtime, a []heap.Value) (heap.Value, error) {
			dst, tag, p, off, n := a[0].I, a[1].I, a[2], a[3].I, a[4].I
			if n < 0 {
				return heap.Value{}, fmt.Errorf("msg_send: negative length %d", n)
			}
			h := rtx.Heap()
			words := make([]heap.Value, n)
			for i := int64(0); i < n; i++ {
				w, err := h.Load(p, off+i)
				if err != nil {
					return heap.Value{}, err
				}
				if w.Kind != heap.KInt && w.Kind != heap.KFloat {
					return heap.Value{}, fmt.Errorf("msg_send: word %d is %s; only scalars cross the interconnect", i, w.Kind)
				}
				words[i] = w
			}
			if err := r.Send(node, dst, tag, words); err != nil {
				return heap.IntVal(StatusClosed), nil
			}
			return heap.IntVal(StatusOK), nil
		},
	}

	reg["msg_recv"] = rt.Extern{
		Sig: fir.ExternSig{Args: ptrIntInt, Result: fir.TyInt},
		Fn: func(rtx rt.Runtime, a []heap.Value) (heap.Value, error) {
			src, tag, p, off, n := a[0].I, a[1].I, a[2], a[3].I, a[4].I
			words, status := r.Recv(node, src, tag)
			if status != StatusOK {
				return heap.IntVal(status), nil
			}
			if int64(len(words)) < n {
				n = int64(len(words))
			}
			h := rtx.Heap()
			for i := int64(0); i < n; i++ {
				if err := h.Store(p, off+i, words[i]); err != nil {
					return heap.Value{}, err
				}
			}
			return heap.IntVal(StatusOK), nil
		},
	}

	reg["msg_gc"] = rt.Extern{
		Sig: fir.ExternSig{Args: []fir.Type{fir.TyInt}, Result: fir.TyInt},
		Fn: func(rtx rt.Runtime, a []heap.Value) (heap.Value, error) {
			r.GC(node, a[0].I)
			return heap.IntVal(0), nil
		},
	}

	reg["node_id"] = rt.Extern{
		Sig: fir.ExternSig{Result: fir.TyInt},
		Fn: func(rtx rt.Runtime, a []heap.Value) (heap.Value, error) {
			return heap.IntVal(node), nil
		},
	}
	return reg
}

// Sigs returns the extern signatures without binding a node, for
// compilation and unpack-time type checking.
func Sigs() map[string]fir.ExternSig {
	r := NewRouter()
	return r.Externs(0).Sigs()
}
