// Package msg implements the "customized message passing interface" the
// grid application of §2 uses for border exchange, including the rollback
// notification (the paper's MSG_ROLL) that makes processes join a failed
// neighbour's speculation and roll back together.
//
// Design notes:
//
//   - Messages are keyed (src, dst, tag); the grid app uses the timestep
//     as the tag. Delivery is idempotent and non-destructive: a receiver
//     can re-read a step's borders after rolling back, and a rolled-back
//     sender re-sends identical values (the computation is deterministic),
//     so replays converge.
//   - The router is sharded by destination: each node owns a mailbox with
//     per-link (per-source) buffers and its own lock and wakeup. A send
//     touches only the destination's mailbox and wakes only that node's
//     receiver, so concurrent node goroutines never contend on a global
//     lock or suffer broadcast storms. SendBatch delivers several tagged
//     payloads to one destination under a single lock acquisition.
//   - When a node fails, the router advances a rollback epoch. Every other
//     process observes MSG_ROLL exactly once on its next receive,
//     mirroring the paper's "all the other processes rollback their last
//     speculation to bring the computation to a consistent state".
//   - Old messages are garbage-collected by msg_gc(tag), called by the
//     application after each committed checkpoint.
//   - A receive with no matching message parks the calling goroutine on
//     the mailbox. BlockHooks let an execution engine lend the parked
//     node's worker slot to another node (see internal/cluster.Engine),
//     so a bounded worker pool cannot deadlock on a border exchange.
package msg

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
)

// Receive status codes returned to MojC/FIR code.
const (
	// StatusOK means the payload was delivered.
	StatusOK = 0
	// StatusRoll is the paper's MSG_ROLL: a failure or rollback elsewhere
	// requires this process to roll back its current speculation.
	StatusRoll = 1
	// StatusClosed means the router shut down (the run is over).
	StatusClosed = 2
)

// ErrClosed is returned by operations on a closed router.
var ErrClosed = errors.New("msg: router closed")

// Batched is one element of a SendBatch: a tagged payload for a single
// destination.
type Batched struct {
	Tag   int64
	Words []heap.Value
}

// Uplink carries router traffic whose destination is not hosted by this
// router — the transport-pluggable link underneath a distributed cluster.
// SendBatch must preserve the keyed-idempotent contract (re-delivery of a
// (src, dst, tag) key overwrites; deterministic replays converge); GC
// propagates a node's mailbox pruning so remote buffers can shrink too.
type Uplink interface {
	SendBatch(src, dst int64, batch []Batched) error
	GC(node, below int64) error
}

// BlockHooks notifies an execution engine around a parked receive: OnBlock
// runs once just before the receiver goroutine parks, OnUnblock runs after
// it unparks and before Recv returns. A bounded worker pool releases the
// blocked node's slot in OnBlock and reacquires it in OnUnblock so that a
// node waiting for a border cannot starve the node that will send it.
type BlockHooks struct {
	OnBlock   func()
	OnUnblock func()
}

// mailbox is one destination's inbound state: per-link (per-source)
// buffers of tagged payloads, plus the node's rollback-epoch cursor.
type mailbox struct {
	mu    sync.Mutex
	cond  sync.Cond // embedded, L set to &mu at construction
	links map[int64]map[int64][]heap.Value // src -> tag -> payload
	seen  int64                            // last rollback epoch observed
	// free holds payload buffers reclaimed by GC for reuse by later
	// sends: a stepwise exchange retires one tag per step at the same
	// size it sends the next, so steady state allocates nothing.
	free [][]heap.Value
}

func newMailbox() *mailbox {
	mb := &mailbox{links: make(map[int64]map[int64][]heap.Value)}
	mb.cond.L = &mb.mu
	return mb
}

// Router is the in-memory interconnect between the node processes of a
// simulated cluster.
type Router struct {
	epoch      atomic.Int64
	closed     atomic.Bool
	closeCause atomic.Value // *error; see CloseErr

	mu    sync.RWMutex // guards boxes map (not mailbox contents)
	boxes map[int64]*mailbox

	failMu sync.Mutex
	failed map[int64]bool

	// linkMu guards the distributed-transport plumbing: which nodes this
	// router hosts locally and the uplink that carries everything else.
	linkMu sync.RWMutex
	uplink Uplink
	local  map[int64]bool

	sends, recvs, rolls, failures, gced, wordsSent atomic.Uint64

	// partMu guards the scripted network partition: local deliveries
	// crossing the cut are withheld here (not lost) until HealPartition.
	partMu   sync.Mutex
	partCut  func(src, dst int64) bool
	partHeld []partHeldBatch

	// onRoll, when set, observes every MSG_ROLL delivery (SetRollHook).
	onRoll atomic.Value // func(node, epoch int64)
}

// partHeldBatch is one delivery withheld by an active partition.
type partHeldBatch struct {
	src, dst int64
	batch    []Batched
}

// Stats counts router activity.
type Stats struct {
	Sends     uint64
	Recvs     uint64
	Rolls     uint64 // MSG_ROLL deliveries
	Failures  uint64 // Fail calls
	GCed      uint64 // messages dropped by msg_gc
	WordsSent uint64
}

// NewRouter creates an empty router.
func NewRouter() *Router {
	return &Router{
		boxes:  make(map[int64]*mailbox),
		failed: make(map[int64]bool),
	}
}

// Stats returns a copy of the counters.
func (r *Router) Stats() Stats {
	return Stats{
		Sends:     r.sends.Load(),
		Recvs:     r.recvs.Load(),
		Rolls:     r.rolls.Load(),
		Failures:  r.failures.Load(),
		GCed:      r.gced.Load(),
		WordsSent: r.wordsSent.Load(),
	}
}

// mbox returns the destination's mailbox, creating it on first use.
func (r *Router) mbox(dst int64) *mailbox {
	r.mu.RLock()
	mb := r.boxes[dst]
	r.mu.RUnlock()
	if mb != nil {
		return mb
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if mb = r.boxes[dst]; mb == nil {
		mb = newMailbox()
		r.boxes[dst] = mb
	}
	return mb
}

// Register creates a node's mailbox eagerly. The cluster engine registers
// every node at start so failure epochs raised before a node's first
// receive are still observed by it.
func (r *Router) Register(node int64) { r.mbox(node) }

// SetUplink installs the transport link for destinations this router does
// not host. With an uplink set, SendBatch forwards any send whose
// destination is not marked local (see SetLocal), and GC propagates
// pruning upstream. A nil uplink restores pure in-process routing.
func (r *Router) SetUplink(u Uplink) {
	r.linkMu.Lock()
	r.uplink = u
	r.linkMu.Unlock()
}

// SetLocal marks nodes as hosted by this router: their mailboxes live
// here, and sends to them are delivered in-process even when an uplink is
// installed.
func (r *Router) SetLocal(nodes ...int64) {
	r.linkMu.Lock()
	if r.local == nil {
		r.local = make(map[int64]bool)
	}
	for _, n := range nodes {
		r.local[n] = true
	}
	r.linkMu.Unlock()
	for _, n := range nodes {
		r.Register(n)
	}
}

// Local reports whether sends to dst are delivered by this router itself.
// Without an uplink every destination is local.
func (r *Router) Local(dst int64) bool {
	r.linkMu.RLock()
	defer r.linkMu.RUnlock()
	return r.uplink == nil || r.local[dst]
}

// route returns the uplink to forward a send through, or nil for local
// delivery.
func (r *Router) route(dst int64) Uplink {
	r.linkMu.RLock()
	defer r.linkMu.RUnlock()
	if r.uplink == nil || r.local[dst] {
		return nil
	}
	return r.uplink
}

// Epoch returns the current rollback epoch.
func (r *Router) Epoch() int64 { return r.epoch.Load() }

// SetEpoch advances the rollback epoch to at least e and wakes every
// parked receiver, so each hosted node observes MSG_ROLL once. The
// distributed transport calls it when the coordinator announces a remote
// failure; it never moves the epoch backwards.
func (r *Router) SetEpoch(e int64) {
	for {
		cur := r.epoch.Load()
		if cur >= e {
			return
		}
		if r.epoch.CompareAndSwap(cur, e) {
			r.broadcastAll()
			return
		}
	}
}

// Seen returns the last rollback epoch a node has observed.
func (r *Router) Seen(node int64) int64 {
	mb := r.mbox(node)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.seen
}

// SetSeen sets a node's rollback-epoch cursor. A process migrated in from
// another OS process has observed exactly the epochs its source
// incarnation had; the transport carries that cursor across the wire.
func (r *Router) SetSeen(node, seen int64) {
	mb := r.mbox(node)
	mb.mu.Lock()
	mb.seen = seen
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// broadcastAll wakes every parked receiver (epoch advance or shutdown).
func (r *Router) broadcastAll() {
	r.mu.RLock()
	boxes := make([]*mailbox, 0, len(r.boxes))
	for _, mb := range r.boxes {
		boxes = append(boxes, mb)
	}
	r.mu.RUnlock()
	for _, mb := range boxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// Close releases every blocked receiver with StatusClosed.
func (r *Router) Close() {
	r.closed.Store(true)
	r.broadcastAll()
}

// CloseErr closes the router recording cause: sends then fail with cause
// instead of the generic ErrClosed. The transport uses it when the hub is
// permanently unreachable, so a process observes the transport failure
// rather than what looks like an orderly local shutdown. A nil cause is
// Close.
func (r *Router) CloseErr(cause error) {
	if cause != nil {
		r.closeCause.CompareAndSwap(nil, &cause)
	}
	r.Close()
}

// closedErr returns the error a send on a closed router fails with.
func (r *Router) closedErr() error {
	if p := r.closeCause.Load(); p != nil {
		return *p.(*error)
	}
	return ErrClosed
}

// Fail marks a node as failed and advances the rollback epoch: every other
// node's next receive reports MSG_ROLL once.
func (r *Router) Fail(node int64) {
	r.failMu.Lock()
	r.failed[node] = true
	r.failMu.Unlock()
	r.epoch.Add(1)
	r.failures.Add(1)
	r.broadcastAll()
}

// Restore clears a node's failed mark (after resurrection) and marks it as
// having already observed the current epoch — the resurrected process
// resumes from its checkpoint, which is already the rollback point.
func (r *Router) Restore(node int64) {
	r.failMu.Lock()
	delete(r.failed, node)
	r.failMu.Unlock()
	mb := r.mbox(node)
	mb.mu.Lock()
	mb.seen = r.epoch.Load()
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// InheritSeen copies the rollback-epoch cursor from one node to another.
// The engine uses it during a node-to-node handoff: the migrated-in
// incarnation has observed exactly the failures its source incarnation
// had, no more and no fewer.
func (r *Router) InheritSeen(from, to int64) {
	r.SetSeen(to, r.Seen(from))
}

// SetRollHook installs fn, invoked on the receiving node's own goroutine
// at every MSG_ROLL delivery with that node's id and the epoch it just
// observed. It runs under the mailbox lock: fn must be cheap and must not
// call back into the router. The tracing layer records rollback cascades
// through this hook without the router depending on it.
func (r *Router) SetRollHook(fn func(node, epoch int64)) {
	r.onRoll.Store(fn)
}

// Partition installs a network cut between node sets a and b: every local
// delivery crossing the cut (either direction) is withheld — held, not
// dropped — until HealPartition releases it. Senders keep making progress
// (sends are non-blocking); receivers on the far side simply park until
// the heal. Keyed idempotent delivery makes the late release harmless even
// across intervening failures and rollbacks. A second Partition replaces
// the first (healing nothing); fault scripts fire one at a time.
func (r *Router) Partition(a, b []int64) {
	inA := make(map[int64]bool, len(a))
	inB := make(map[int64]bool, len(b))
	for _, n := range a {
		inA[n] = true
	}
	for _, n := range b {
		inB[n] = true
	}
	r.partMu.Lock()
	r.partCut = func(src, dst int64) bool {
		return (inA[src] && inB[dst]) || (inB[src] && inA[dst])
	}
	r.partMu.Unlock()
}

// HealPartition removes the cut and delivers every withheld message
// through the normal send path, in the order it was originally sent.
func (r *Router) HealPartition() {
	r.partMu.Lock()
	r.partCut = nil
	held := r.partHeld
	r.partHeld = nil
	r.partMu.Unlock()
	for _, h := range held {
		_ = r.SendBatch(h.src, h.dst, h.batch)
	}
}

// holdPartitioned withholds a delivery when an active partition cuts the
// (src, dst) link, reporting whether it did. The batch payloads are deep
// copied: senders reuse their staging buffers.
func (r *Router) holdPartitioned(src, dst int64, batch []Batched) bool {
	r.partMu.Lock()
	defer r.partMu.Unlock()
	if r.partCut == nil || !r.partCut(src, dst) {
		return false
	}
	cp := make([]Batched, len(batch))
	for i, b := range batch {
		words := make([]heap.Value, len(b.Words))
		copy(words, b.Words)
		cp[i] = Batched{Tag: b.Tag, Words: words}
	}
	r.partHeld = append(r.partHeld, partHeldBatch{src: src, dst: dst, batch: cp})
	return true
}

// Failed reports whether a node is currently failed.
func (r *Router) Failed(node int64) bool {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	return r.failed[node]
}

// Send stores a message. Sends are non-blocking and idempotent: re-sending
// (src, dst, tag) overwrites with identical content on deterministic
// replays. Only the destination's mailbox is locked and only its receiver
// is woken.
func (r *Router) Send(src, dst, tag int64, words []heap.Value) error {
	if r.closed.Load() {
		return r.closedErr()
	}
	if up := r.route(dst); up != nil {
		r.sends.Add(1)
		r.wordsSent.Add(uint64(len(words)))
		return up.SendBatch(src, dst, []Batched{{Tag: tag, Words: words}})
	}
	if r.holdPartitioned(src, dst, []Batched{{Tag: tag, Words: words}}) {
		r.sends.Add(1)
		r.wordsSent.Add(uint64(len(words)))
		return nil
	}
	mb := r.mbox(dst)
	mb.mu.Lock()
	// Same re-check-under-lock discipline as SendBatch.
	if r.closed.Load() {
		mb.mu.Unlock()
		return r.closedErr()
	}
	link := mb.links[src]
	if link == nil {
		link = make(map[int64][]heap.Value)
		mb.links[src] = link
	}
	mb.storeLocked(link, tag, words)
	r.sends.Add(1)
	r.wordsSent.Add(uint64(len(words)))
	mb.cond.Broadcast()
	mb.mu.Unlock()
	return nil
}

// storeLocked stores a payload copy under (tag). A same-length re-send —
// deterministic replay overwriting with identical content — reuses the
// stored slice in place, and a fresh tag draws its buffer from the
// GC-reclaimed free list when one fits: receivers copy out under the same
// mailbox lock, so stored buffers are never shared outside it.
func (mb *mailbox) storeLocked(link map[int64][]heap.Value, tag int64, words []heap.Value) {
	if cp, ok := link[tag]; ok && len(cp) == len(words) {
		copy(cp, words)
		return
	}
	var cp []heap.Value
	for i, f := range mb.free {
		if cap(f) >= len(words) {
			cp = f[:len(words)]
			mb.free[i] = mb.free[len(mb.free)-1]
			mb.free = mb.free[:len(mb.free)-1]
			break
		}
	}
	if cp == nil {
		cp = make([]heap.Value, len(words))
	}
	copy(cp, words)
	link[tag] = cp
}

// SendBatch delivers several tagged payloads from src to dst under one
// mailbox lock acquisition and a single wakeup — the batched border
// exchange for applications that ship multiple tags per step.
func (r *Router) SendBatch(src, dst int64, batch []Batched) error {
	if r.closed.Load() {
		return r.closedErr()
	}
	if up := r.route(dst); up != nil {
		for _, b := range batch {
			r.sends.Add(1)
			r.wordsSent.Add(uint64(len(b.Words)))
		}
		return up.SendBatch(src, dst, batch)
	}
	if r.holdPartitioned(src, dst, batch) {
		for _, b := range batch {
			r.sends.Add(1)
			r.wordsSent.Add(uint64(len(b.Words)))
		}
		return nil
	}
	mb := r.mbox(dst)
	mb.mu.Lock()
	// Re-check under the mailbox lock: Close's broadcast pass takes every
	// mailbox lock, so a send that got past the fast-path check above must
	// not report delivery after Close has returned — receivers will only
	// ever see StatusClosed.
	if r.closed.Load() {
		mb.mu.Unlock()
		return r.closedErr()
	}
	link := mb.links[src]
	if link == nil {
		link = make(map[int64][]heap.Value)
		mb.links[src] = link
	}
	for _, b := range batch {
		mb.storeLocked(link, b.Tag, b.Words)
		r.sends.Add(1)
		r.wordsSent.Add(uint64(len(b.Words)))
	}
	mb.cond.Broadcast()
	mb.mu.Unlock()
	return nil
}

// Recv blocks until a message (src→dst, tag) is available, a rollback
// epoch must be observed, or the router closes. It returns the payload and
// a status code.
func (r *Router) Recv(dst, src, tag int64) ([]heap.Value, int64) {
	return r.RecvHooked(dst, src, tag, nil)
}

// TryRecv is the non-blocking receive: ok reports whether a status was
// available at all. When ok is false the caller may park or poll.
//
// A returned status carries the same obligations as one from Recv: in
// particular StatusRoll is the node's single MSG_ROLL delivery for the
// current epoch — a caller polling for a specific message must still act
// on a rollback (not discard it and poll again), or the node will never
// join the failure's rollback and the cluster state diverges.
func (r *Router) TryRecv(dst, src, tag int64) (words []heap.Value, status int64, ok bool) {
	mb := r.mbox(dst)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	words, status, ok = r.tryLocked(mb, dst, src, tag)
	return words, status, ok
}

// tryLocked checks the terminal conditions in priority order with the
// mailbox lock held: shutdown, pending rollback epoch, matching message.
func (r *Router) tryLocked(mb *mailbox, dst, src, tag int64) ([]heap.Value, int64, bool) {
	return r.tryLockedInto(nil, mb, dst, src, tag)
}

// tryLockedInto is tryLocked copying the payload into buf when it has the
// capacity (allocating otherwise). The stored slice may be overwritten in
// place by a later send, so the copy-out always happens under the lock.
func (r *Router) tryLockedInto(buf []heap.Value, mb *mailbox, dst, src, tag int64) ([]heap.Value, int64, bool) {
	if r.closed.Load() {
		return nil, StatusClosed, true
	}
	if epoch := r.epoch.Load(); mb.seen < epoch {
		mb.seen = epoch
		r.rolls.Add(1)
		if fn := r.onRoll.Load(); fn != nil {
			fn.(func(node, epoch int64))(dst, epoch)
		}
		return nil, StatusRoll, true
	}
	if m, ok := mb.links[src][tag]; ok {
		r.recvs.Add(1)
		out := buf
		if cap(out) < len(m) {
			out = make([]heap.Value, len(m))
		}
		out = out[:len(m)]
		copy(out, m)
		return out, StatusOK, true
	}
	return nil, 0, false
}

// RecvHooked is Recv with engine notifications around the park: see
// BlockHooks. A nil hooks value makes it identical to Recv.
func (r *Router) RecvHooked(dst, src, tag int64, hooks *BlockHooks) ([]heap.Value, int64) {
	return r.recvHookedInto(nil, dst, src, tag, hooks)
}

// recvHookedInto is RecvHooked receiving into buf when it has the
// capacity. The msg_recv extern threads a per-process scratch buffer
// through here; a process's extern calls are serialized by its machine,
// so the buffer is never shared.
func (r *Router) recvHookedInto(buf []heap.Value, dst, src, tag int64, hooks *BlockHooks) ([]heap.Value, int64) {
	mb := r.mbox(dst)
	mb.mu.Lock()
	blocked := false
	for {
		words, status, ok := r.tryLockedInto(buf, mb, dst, src, tag)
		if ok {
			mb.mu.Unlock()
			if blocked && hooks != nil && hooks.OnUnblock != nil {
				// Reacquire the worker slot outside the mailbox lock: the
				// slot holder may be a sender waiting for this very lock.
				hooks.OnUnblock()
			}
			return words, status
		}
		if !blocked && hooks != nil && hooks.OnBlock != nil {
			// Releasing a held slot never blocks, so it is safe under the
			// mailbox lock; this keeps release-then-park atomic with the
			// availability check above (no missed wakeups).
			hooks.OnBlock()
			blocked = true
		}
		mb.cond.Wait()
	}
}

// GC drops every message addressed TO `node` with tag < below. The grid
// app calls it after each committed checkpoint: once a node has committed
// past a step it can never re-read that step's borders. Outbound messages
// are deliberately retained — a neighbour that resumes from an older
// checkpoint may still need them.
func (r *Router) GC(node, below int64) {
	mb := r.mbox(node)
	mb.mu.Lock()
	for _, link := range mb.links {
		for tag, p := range link {
			if tag < below {
				delete(link, tag)
				if len(mb.free) < 16 {
					mb.free = append(mb.free, p)
				}
				r.gced.Add(1)
			}
		}
	}
	mb.mu.Unlock()
	// Propagate the pruning upstream so a coordinator's store-and-forward
	// buffer for this node shrinks too. Best-effort: a failed propagation
	// only costs remote memory, never correctness.
	r.linkMu.RLock()
	up := r.uplink
	r.linkMu.RUnlock()
	if up != nil {
		_ = up.GC(node, below)
	}
}

// Externs returns the message-passing externals for a node process:
//
//	msg_send(dst, tag, p, off, n) int   — send n words of p starting at off
//	msg_recv(src, tag, p, off, n) int   — receive into p; returns a status
//	msg_gc(below) int                   — drop messages with tag < below
//	node_id() int                       — this node's id
//
// Payload words must be scalars (int or float); pointers are process-local
// and never cross the interconnect.
func (r *Router) Externs(node int64) rt.Registry {
	return r.ExternsHooked(node, nil)
}

// ExternsHooked is Externs with BlockHooks threaded into msg_recv, used by
// the cluster engine's bounded worker pool. The node's mailbox is
// registered eagerly so epochs raised before its first receive are seen.
// msgExternArgs is the shared (dst/src, tag, p, off, n) signature of
// msg_send and msg_recv; msgGCArgs is msg_gc's. Shared across registries
// so building one costs no signature allocations.
var (
	msgExternArgs = []fir.Type{fir.TyInt, fir.TyInt, fir.TyPtr, fir.TyInt, fir.TyInt}
	msgGCArgs     = []fir.Type{fir.TyInt}
)

func (r *Router) ExternsHooked(node int64, hooks *BlockHooks) rt.Registry {
	r.Register(node)
	reg := make(rt.Registry, 4)
	ptrIntInt := msgExternArgs

	// Per-registry payload staging, reused across calls. A registry binds
	// one node process whose extern calls its machine serializes; Send and
	// the transport both copy the payload out before returning.
	var sendBuf, recvBuf []heap.Value

	reg["msg_send"] = rt.Extern{
		Sig: fir.ExternSig{Args: ptrIntInt, Result: fir.TyInt},
		Fn: func(rtx rt.Runtime, a []heap.Value) (heap.Value, error) {
			dst, tag, p, off, n := a[0].I, a[1].I, a[2], a[3].I, a[4].I
			if n < 0 {
				return heap.Value{}, fmt.Errorf("msg_send: negative length %d", n)
			}
			h := rtx.Heap()
			if int64(cap(sendBuf)) < n {
				sendBuf = make([]heap.Value, n)
			}
			words := sendBuf[:n]
			for i := int64(0); i < n; i++ {
				w, err := h.Load(p, off+i)
				if err != nil {
					return heap.Value{}, err
				}
				if w.Kind != heap.KInt && w.Kind != heap.KFloat {
					return heap.Value{}, fmt.Errorf("msg_send: word %d is %s; only scalars cross the interconnect", i, w.Kind)
				}
				words[i] = w
			}
			if err := r.Send(node, dst, tag, words); err != nil {
				return heap.IntVal(StatusClosed), nil
			}
			return heap.IntVal(StatusOK), nil
		},
	}

	reg["msg_recv"] = rt.Extern{
		Sig: fir.ExternSig{Args: ptrIntInt, Result: fir.TyInt},
		Fn: func(rtx rt.Runtime, a []heap.Value) (heap.Value, error) {
			src, tag, p, off, n := a[0].I, a[1].I, a[2], a[3].I, a[4].I
			words, status := r.recvHookedInto(recvBuf, node, src, tag, hooks)
			if cap(words) > cap(recvBuf) {
				recvBuf = words
			}
			if status != StatusOK {
				return heap.IntVal(status), nil
			}
			if int64(len(words)) < n {
				n = int64(len(words))
			}
			h := rtx.Heap()
			for i := int64(0); i < n; i++ {
				if err := h.Store(p, off+i, words[i]); err != nil {
					return heap.Value{}, err
				}
			}
			return heap.IntVal(StatusOK), nil
		},
	}

	reg["msg_gc"] = rt.Extern{
		Sig: fir.ExternSig{Args: msgGCArgs, Result: fir.TyInt},
		Fn: func(rtx rt.Runtime, a []heap.Value) (heap.Value, error) {
			r.GC(node, a[0].I)
			return heap.IntVal(0), nil
		},
	}

	reg["node_id"] = rt.Extern{
		Sig: fir.ExternSig{Result: fir.TyInt},
		Fn: func(rtx rt.Runtime, a []heap.Value) (heap.Value, error) {
			return heap.IntVal(node), nil
		},
	}
	return reg
}

// Sigs returns the extern signatures without binding a node, for
// compilation and unpack-time type checking.
func Sigs() map[string]fir.ExternSig {
	r := NewRouter()
	return r.Externs(0).Sigs()
}
