package msg

import (
	"sync"
	"testing"
	"time"

	"repro/internal/heap"
)

func iv(vs ...int64) []heap.Value {
	out := make([]heap.Value, len(vs))
	for i, v := range vs {
		out[i] = heap.IntVal(v)
	}
	return out
}

func TestSendRecv(t *testing.T) {
	r := NewRouter()
	if err := r.Send(1, 2, 5, iv(10, 20, 30)); err != nil {
		t.Fatal(err)
	}
	got, st := r.Recv(2, 1, 5)
	if st != StatusOK {
		t.Fatalf("status = %d", st)
	}
	if len(got) != 3 || got[1].I != 20 {
		t.Fatalf("payload = %v", got)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	r := NewRouter()
	done := make(chan int64, 1)
	go func() {
		_, st := r.Recv(2, 1, 7)
		done <- st
	}()
	select {
	case st := <-done:
		t.Fatalf("recv returned %d before send", st)
	case <-time.After(20 * time.Millisecond):
	}
	if err := r.Send(1, 2, 7, iv(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case st := <-done:
		if st != StatusOK {
			t.Fatalf("status = %d", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv never woke")
	}
}

func TestRecvNonDestructive(t *testing.T) {
	r := NewRouter()
	_ = r.Send(1, 2, 3, iv(42))
	for i := 0; i < 3; i++ {
		got, st := r.Recv(2, 1, 3)
		if st != StatusOK || got[0].I != 42 {
			t.Fatalf("read %d: %v %d", i, got, st)
		}
	}
}

func TestFailDeliversRollOncePerNode(t *testing.T) {
	r := NewRouter()
	_ = r.Send(1, 2, 1, iv(5))
	r.Fail(3)
	// First recv observes the epoch: MSG_ROLL.
	if _, st := r.Recv(2, 1, 1); st != StatusRoll {
		t.Fatalf("first recv status = %d, want MSG_ROLL", st)
	}
	// Second recv gets the message.
	if _, st := r.Recv(2, 1, 1); st != StatusOK {
		t.Fatalf("second recv status = %d, want OK", st)
	}
	// A different node also sees the epoch once.
	_ = r.Send(2, 4, 1, iv(6))
	if _, st := r.Recv(4, 2, 1); st != StatusRoll {
		t.Fatal("node 4 missed the rollback epoch")
	}
	if _, st := r.Recv(4, 2, 1); st != StatusOK {
		t.Fatal("node 4 did not recover after roll")
	}
}

func TestRestoreSkipsEpochForResurrected(t *testing.T) {
	r := NewRouter()
	r.Fail(1)
	r.Restore(1)
	_ = r.Send(2, 1, 9, iv(7))
	if _, st := r.Recv(1, 2, 9); st != StatusOK {
		t.Fatalf("resurrected node got status %d, want OK (already at rollback point)", st)
	}
	if r.Failed(1) {
		t.Fatal("node still marked failed after Restore")
	}
}

func TestGCInboundOnly(t *testing.T) {
	r := NewRouter()
	_ = r.Send(1, 2, 3, iv(1)) // inbound to 2, old
	_ = r.Send(1, 2, 9, iv(2)) // inbound to 2, new
	_ = r.Send(2, 1, 3, iv(3)) // outbound from 2, old — must survive
	r.GC(2, 5)
	if _, st := r.Recv(1, 2, 3); st != StatusOK {
		t.Fatal("outbound message was GCed")
	}
	if _, st := r.Recv(2, 1, 9); st != StatusOK {
		t.Fatal("new inbound message was GCed")
	}
	done := make(chan int64, 1)
	go func() {
		_, st := r.Recv(2, 1, 3)
		done <- st
	}()
	select {
	case st := <-done:
		if st != StatusClosed {
			t.Fatalf("old inbound message still delivered (status %d)", st)
		}
	case <-time.After(30 * time.Millisecond):
		r.Close()
		if st := <-done; st != StatusClosed {
			t.Fatalf("status = %d", st)
		}
	}
}

func TestCloseReleasesReceivers(t *testing.T) {
	r := NewRouter()
	var wg sync.WaitGroup
	results := make(chan int64, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			_, st := r.Recv(n, 99, 1)
			results <- st
		}(int64(i))
	}
	time.Sleep(10 * time.Millisecond)
	r.Close()
	wg.Wait()
	close(results)
	for st := range results {
		if st != StatusClosed {
			t.Fatalf("status = %d, want closed", st)
		}
	}
	if err := r.Send(0, 1, 1, iv(1)); err == nil {
		t.Fatal("send on closed router accepted")
	}
}

func TestSendOverwriteIdempotent(t *testing.T) {
	r := NewRouter()
	_ = r.Send(1, 2, 4, iv(1))
	_ = r.Send(1, 2, 4, iv(1)) // deterministic re-send
	got, st := r.Recv(2, 1, 4)
	if st != StatusOK || got[0].I != 1 {
		t.Fatalf("got %v %d", got, st)
	}
}

func TestTryRecv(t *testing.T) {
	r := NewRouter()
	// Nothing available: ok=false, caller may park.
	if _, _, ok := r.TryRecv(2, 1, 5); ok {
		t.Fatal("TryRecv reported a status on an empty mailbox")
	}
	_ = r.Send(1, 2, 5, iv(9))
	got, st, ok := r.TryRecv(2, 1, 5)
	if !ok || st != StatusOK || len(got) != 1 || got[0].I != 9 {
		t.Fatalf("TryRecv = %v %d %v", got, st, ok)
	}
	// A pending epoch outranks a deliverable message, exactly as in Recv.
	r.Fail(7)
	if _, st, ok := r.TryRecv(2, 1, 5); !ok || st != StatusRoll {
		t.Fatalf("TryRecv after Fail = %d %v, want MSG_ROLL", st, ok)
	}
	r.Close()
	if _, st, ok := r.TryRecv(2, 1, 5); !ok || st != StatusClosed {
		t.Fatalf("TryRecv after Close = %d %v, want closed", st, ok)
	}
}

func TestSendBatch(t *testing.T) {
	r := NewRouter()
	batch := []Batched{{Tag: 1, Words: iv(10)}, {Tag: 2, Words: iv(20, 21)}, {Tag: 3, Words: iv(30)}}
	if err := r.SendBatch(1, 2, batch); err != nil {
		t.Fatal(err)
	}
	for _, b := range batch {
		got, st := r.Recv(2, 1, b.Tag)
		if st != StatusOK || len(got) != len(b.Words) || got[0].I != b.Words[0].I {
			t.Fatalf("tag %d: %v %d", b.Tag, got, st)
		}
	}
	s := r.Stats()
	if s.Sends != 3 || s.WordsSent != 4 {
		t.Fatalf("stats = %+v, want 3 sends / 4 words", s)
	}
}

func TestStatsCounting(t *testing.T) {
	r := NewRouter()
	_ = r.Send(1, 2, 1, iv(1, 2))
	_, _ = r.Recv(2, 1, 1)
	r.Fail(5)
	_, _ = r.Recv(2, 1, 1) // MSG_ROLL
	r.GC(2, 99)
	s := r.Stats()
	if s.Sends != 1 || s.Recvs != 1 || s.Rolls != 1 || s.Failures != 1 || s.GCed != 1 || s.WordsSent != 2 {
		t.Fatalf("stats = %+v", s)
	}
}
