package msg

import (
	"sync"
	"testing"
	"time"
)

// recordingUplink captures forwarded traffic for assertions.
type recordingUplink struct {
	mu    sync.Mutex
	sends []struct {
		src, dst int64
		batch    []Batched
	}
	gcs []struct{ node, below int64 }
	err error
}

func (u *recordingUplink) SendBatch(src, dst int64, batch []Batched) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	cp := make([]Batched, len(batch))
	copy(cp, batch)
	u.sends = append(u.sends, struct {
		src, dst int64
		batch    []Batched
	}{src, dst, cp})
	return u.err
}

func (u *recordingUplink) GC(node, below int64) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.gcs = append(u.gcs, struct{ node, below int64 }{node, below})
	return nil
}

func TestUplinkForwardsNonLocalSends(t *testing.T) {
	r := NewRouter()
	up := &recordingUplink{}
	r.SetLocal(1)
	r.SetUplink(up)

	// dst 1 is local: delivered in-process, never forwarded.
	if err := r.Send(2, 1, 7, iv(4)); err != nil {
		t.Fatal(err)
	}
	if got, st := r.Recv(1, 2, 7); st != StatusOK || got[0].I != 4 {
		t.Fatalf("local delivery: status %d, payload %v", st, got)
	}

	// dst 9 is remote: forwarded through the uplink.
	if err := r.Send(1, 9, 3, iv(5, 6)); err != nil {
		t.Fatal(err)
	}
	up.mu.Lock()
	defer up.mu.Unlock()
	if len(up.sends) != 1 {
		t.Fatalf("uplink saw %d sends, want 1", len(up.sends))
	}
	s := up.sends[0]
	if s.src != 1 || s.dst != 9 || len(s.batch) != 1 || s.batch[0].Tag != 3 || len(s.batch[0].Words) != 2 {
		t.Fatalf("forwarded send = %+v", s)
	}
}

func TestUplinkGCPropagates(t *testing.T) {
	r := NewRouter()
	up := &recordingUplink{}
	r.SetLocal(1)
	r.SetUplink(up)
	if err := r.Send(2, 1, 1, iv(1)); err != nil {
		t.Fatal(err)
	}
	r.GC(1, 5)
	up.mu.Lock()
	defer up.mu.Unlock()
	if len(up.gcs) != 1 || up.gcs[0].node != 1 || up.gcs[0].below != 5 {
		t.Fatalf("uplink GC calls = %+v", up.gcs)
	}
}

func TestSetEpochDeliversRollOnce(t *testing.T) {
	r := NewRouter()
	r.SetLocal(1)
	r.SetEpoch(3)
	if _, st := r.Recv(1, 2, 1); st != StatusRoll {
		t.Fatalf("first recv status = %d, want MSG_ROLL", st)
	}
	// The epoch was observed; a matching message is now deliverable.
	if err := r.Send(2, 1, 1, iv(9)); err != nil {
		t.Fatal(err)
	}
	if got, st := r.Recv(1, 2, 1); st != StatusOK || got[0].I != 9 {
		t.Fatalf("second recv: status %d, payload %v", st, got)
	}
	// SetEpoch is monotonic: re-announcing an old epoch is a no-op.
	r.SetEpoch(2)
	if _, st, ok := r.TryRecv(1, 2, 99); ok {
		t.Fatalf("stale epoch produced status %d", st)
	}
}

func TestSetEpochWakesParkedReceiver(t *testing.T) {
	r := NewRouter()
	r.SetLocal(1)
	done := make(chan int64, 1)
	go func() {
		_, st := r.Recv(1, 2, 1)
		done <- st
	}()
	time.Sleep(10 * time.Millisecond)
	r.SetEpoch(1)
	select {
	case st := <-done:
		if st != StatusRoll {
			t.Fatalf("status = %d, want MSG_ROLL", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver never woke on remote epoch advance")
	}
}

func TestSeenCursorAcrossRouters(t *testing.T) {
	r := NewRouter()
	r.SetLocal(4)
	r.SetEpoch(7)
	// A process migrated in from elsewhere carries its source's cursor:
	// with seen == epoch it must NOT observe a rollback it already joined.
	r.SetSeen(4, 7)
	if r.Seen(4) != 7 {
		t.Fatalf("Seen = %d, want 7", r.Seen(4))
	}
	if _, st, ok := r.TryRecv(4, 1, 1); ok {
		t.Fatalf("already-observed epoch redelivered with status %d", st)
	}
}
