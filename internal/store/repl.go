package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/migrate"
	"repro/internal/obs"
)

// N-way replication. Every object is wrapped in a version envelope
// before fan-out, because two name classes in the checkpoint protocol
// are *mutable*: head refs (rewritten at every delta publish) and
// full-mode images (overwritten under one name each checkpoint). After
// a partial write — a replica dying mid-commit — surviving replicas can
// hold different generations of the same name, and only the version
// lets Get pick the newest without parsing checkpoint internals.
//
// Write quorum W = N/2+1 (majority) unless overridden; read quorum
// R = N-W+1, so any read set intersects every acknowledged write set.
// Put returns success at W acks and lets stragglers finish in the
// background; Get gathers from all replicas, requires R responses
// (data or a definitive not-exist), returns the max version, and
// read-repairs replicas observed stale or missing.

// replMagic prefixes a version envelope: magic + 8-byte big-endian
// version + payload.
const replMagic = "#!mcc-rv1\n"

// ErrReplicaDown reports an operation against a replica killed by fault
// injection (KillReplica) — it stands in for a crashed store server.
var ErrReplicaDown = errors.New("store: replica down")

// ErrNoQuorum reports that too few replicas answered to satisfy the
// operation's quorum.
var ErrNoQuorum = errors.New("store: quorum not reached")

// Replicated fans a migrate.Store over N replicas with quorum
// acknowledgement and read-repair.
type Replicated struct {
	replicas []migrate.Store
	w        int // write quorum
	r        int // read quorum

	mu      sync.Mutex
	down    []bool // fault injection: replica i refuses all ops
	version uint64 // monotonic envelope version (time-seeded)

	bg sync.WaitGroup // straggler writes after quorum ack

	puts     *obs.Counter
	putFails *obs.Counter // individual replica put failures
	repairs  *obs.Counter
	trace    *obs.Stream
}

// NewReplicated builds a replica set. quorum 0 means majority (N/2+1);
// an explicit quorum must satisfy 1 <= quorum <= N.
func NewReplicated(replicas []migrate.Store, quorum int, opts Options) (*Replicated, error) {
	n := len(replicas)
	if n < 1 {
		return nil, errors.New("store: replicated store needs at least one replica")
	}
	if quorum == 0 {
		quorum = n/2 + 1
	}
	if quorum < 1 || quorum > n {
		return nil, fmt.Errorf("store: write quorum %d out of range for %d replicas", quorum, n)
	}
	r := &Replicated{
		replicas: replicas,
		w:        quorum,
		r:        n - quorum + 1,
		down:     make([]bool, n),
		// Seeding the version counter with wall time keeps versions
		// monotonic across process restarts sharing the same replica
		// directories (a restarted writer must supersede its
		// predecessor's envelopes).
		version: uint64(time.Now().UnixNano()),
	}
	if opts.Registry != nil {
		r.puts = opts.Registry.Counter("store.repl.puts")
		r.putFails = opts.Registry.Counter("store.repl.put_failures")
		r.repairs = opts.Registry.Counter("store.repl.repairs")
	}
	if opts.Trace != nil {
		r.trace = opts.Trace.Stream("store")
	}
	return r, nil
}

// NReplicas returns the replica count.
func (r *Replicated) NReplicas() int { return len(r.replicas) }

// WriteQuorum returns W.
func (r *Replicated) WriteQuorum() int { return r.w }

// KillReplica makes replica i refuse every operation with
// ErrReplicaDown until ReviveReplica — fault injection for tests and
// fault scripts.
func (r *Replicated) KillReplica(i int) {
	r.mu.Lock()
	r.down[i] = true
	r.mu.Unlock()
}

// ReviveReplica brings a killed replica back. Its contents are whatever
// they were at kill time; read-repair re-converges it.
func (r *Replicated) ReviveReplica(i int) {
	r.mu.Lock()
	r.down[i] = false
	r.mu.Unlock()
}

// ReplicaDown reports replica i's fault-injection state.
func (r *Replicated) ReplicaDown(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.down[i]
}

// Wait blocks until background straggler writes have drained — tests
// call it before inspecting replica contents directly.
func (r *Replicated) Wait() { r.bg.Wait() }

// replica returns the store for index i, or ErrReplicaDown.
func (r *Replicated) replica(i int) (migrate.Store, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down[i] {
		return nil, ErrReplicaDown
	}
	return r.replicas[i], nil
}

func (r *Replicated) nextVersion() uint64 {
	r.mu.Lock()
	r.version++
	v := r.version
	r.mu.Unlock()
	return v
}

// envelope wraps payload with the version header.
func envelope(version uint64, payload []byte) []byte {
	out := make([]byte, len(replMagic)+8+len(payload))
	copy(out, replMagic)
	binary.BigEndian.PutUint64(out[len(replMagic):], version)
	copy(out[len(replMagic)+8:], payload)
	return out
}

// openEnvelope splits an envelope; data without the magic (written by a
// bare backend later joined into a replica set) is version 0.
func openEnvelope(data []byte) (version uint64, payload []byte) {
	if !bytes.HasPrefix(data, []byte(replMagic)) || len(data) < len(replMagic)+8 {
		return 0, data
	}
	return binary.BigEndian.Uint64(data[len(replMagic):]), data[len(replMagic)+8:]
}

// Put fans the enveloped object to every replica, returning as soon as
// the write quorum has acknowledged. Remaining replicas finish in the
// background (Wait drains them). The caller's buffer is not retained:
// the envelope is a fresh allocation.
func (r *Replicated) Put(name string, data []byte) error {
	enc := envelope(r.nextVersion(), data)
	n := len(r.replicas)
	results := make(chan error, n)
	r.bg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer r.bg.Done()
			rep, err := r.replica(i)
			if err == nil {
				err = rep.Put(name, enc)
			}
			if err != nil {
				count(r.putFails, 1)
			}
			results <- err
		}(i)
	}
	acks, fails := 0, 0
	var firstErr error
	for acks < r.w && fails <= n-r.w {
		if err := <-results; err != nil {
			fails++
			if firstErr == nil {
				firstErr = err
			}
		} else {
			acks++
		}
	}
	if acks < r.w {
		return fmt.Errorf("store: put %q: %d/%d acks (need %d): %w: %w",
			name, acks, n, r.w, ErrNoQuorum, firstErr)
	}
	count(r.puts, 1)
	return nil
}

// getResult is one replica's answer during a Get gather.
type getResult struct {
	idx      int
	version  uint64
	payload  []byte
	notExist bool
	err      error
}

// Get gathers the object from every live replica, needs readQuorum
// definitive answers (payload or not-exist), returns the max-version
// payload, and read-repairs any replica that returned a stale version
// or not-exist.
func (r *Replicated) Get(name string) ([]byte, error) {
	n := len(r.replicas)
	ch := make(chan getResult, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			rep, err := r.replica(i)
			if err != nil {
				ch <- getResult{idx: i, err: err}
				return
			}
			data, err := rep.Get(name)
			switch {
			case err == nil:
				v, p := openEnvelope(data)
				ch <- getResult{idx: i, version: v, payload: p}
			case errors.Is(err, os.ErrNotExist):
				ch <- getResult{idx: i, notExist: true}
			default:
				ch <- getResult{idx: i, err: err}
			}
		}(i)
	}
	var results []getResult
	definitive := 0
	for i := 0; i < n; i++ {
		res := <-ch
		results = append(results, res)
		if res.err == nil {
			definitive++
		}
	}
	if definitive < r.r {
		return nil, fmt.Errorf("store: get %q: %d/%d replicas answered (need %d): %w",
			name, definitive, n, r.r, ErrNoQuorum)
	}
	best := -1
	for i, res := range results {
		if res.err != nil || res.notExist {
			continue
		}
		if best < 0 || res.version > results[best].version {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("store: checkpoint %q: %w", name, os.ErrNotExist)
	}
	winner := results[best]
	r.repair(name, winner, results)
	return winner.payload, nil
}

// repair re-pushes the winning version to replicas that answered with a
// stale version or not-exist (never to ones that errored — they may be
// down and will converge on revival via the next repair).
func (r *Replicated) repair(name string, winner getResult, results []getResult) {
	var enc []byte
	for _, res := range results {
		if res.err != nil || res.idx == winner.idx {
			continue
		}
		if !res.notExist && res.version >= winner.version {
			continue
		}
		if enc == nil {
			enc = envelope(winner.version, winner.payload)
		}
		idx := res.idx
		r.bg.Add(1)
		go func() {
			defer r.bg.Done()
			rep, err := r.replica(idx)
			if err == nil {
				err = rep.Put(name, enc)
			}
			if err == nil {
				count(r.repairs, 1)
				r.trace.Emit(obs.EvStoreRepair, idx, 0, 0, int64(winner.version), int64(len(winner.payload)), name)
			}
		}()
	}
}

// List unions names across replicas, requiring readQuorum responses so
// a name acknowledged at write quorum is always visible.
func (r *Replicated) List() ([]string, error) {
	n := len(r.replicas)
	type listResult struct {
		names []string
		err   error
	}
	ch := make(chan listResult, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			rep, err := r.replica(i)
			if err != nil {
				ch <- listResult{err: err}
				return
			}
			names, err := rep.List()
			ch <- listResult{names: names, err: err}
		}(i)
	}
	seen := make(map[string]bool)
	ok := 0
	for i := 0; i < n; i++ {
		res := <-ch
		if res.err != nil {
			continue
		}
		ok++
		for _, name := range res.names {
			seen[name] = true
		}
	}
	if ok < r.r {
		return nil, fmt.Errorf("store: list: %d/%d replicas answered (need %d): %w", ok, n, r.r, ErrNoQuorum)
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes the name from every replica, succeeding at write
// quorum (a replica that never had the name counts as deleted).
func (r *Replicated) Delete(name string) error {
	n := len(r.replicas)
	ch := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			rep, err := r.replica(i)
			if err == nil {
				err = deleteFrom(rep, name)
			}
			ch <- err
		}(i)
	}
	acks := 0
	var firstErr error
	for i := 0; i < n; i++ {
		if err := <-ch; err == nil || errors.Is(err, os.ErrNotExist) {
			acks++
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if acks < r.w {
		return fmt.Errorf("store: delete %q: %d/%d acks (need %d): %w: %w",
			name, acks, n, r.w, ErrNoQuorum, firstErr)
	}
	return nil
}
