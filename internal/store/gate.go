package store

import (
	"sync"
	"time"

	"repro/internal/migrate"
	"repro/internal/obs"
)

// The storm scheduler: when hundreds of nodes hit a shared store at a
// checkpoint interval boundary (the mojd deployment), unbounded
// concurrent Puts convoy on the backend — disk seeks interleave, every
// writer's latency degrades together, and the committer backpressure
// bound turns into a cluster-wide stall. The gate bounds concurrency
// and admits waiters strictly FIFO, so each Put sees a predictable
// queue wait (measured in store.gate.wait_ns) instead of a lottery.
//
// A plain buffered-channel semaphore is NOT FIFO under contention (Go
// runtime wakeup order is unspecified), so the gate keeps an explicit
// waiter queue: each waiter parks on its own channel and the releaser
// hands the slot to the queue head.

// Gate is a FIFO admission gate over Put. Get/List/Delete pass through
// ungated — reads are recovery-path traffic that must never queue
// behind a checkpoint storm.
type Gate struct {
	inner migrate.Store
	limit int

	mu      sync.Mutex
	active  int
	waiters []chan struct{}

	depth  *obs.Gauge     // current queue depth (waiting, not admitted)
	waitNs *obs.Histogram // admission wait per Put
	trace  *obs.Stream
}

// NewGate bounds concurrent Puts on inner to limit (>= 1).
func NewGate(inner migrate.Store, limit int, opts Options) *Gate {
	if limit < 1 {
		limit = 1
	}
	g := &Gate{inner: inner, limit: limit}
	if opts.Registry != nil {
		g.depth = opts.Registry.Gauge("store.gate.depth")
		g.waitNs = opts.Registry.Histogram("store.gate.wait_ns")
	}
	if opts.Trace != nil {
		g.trace = opts.Trace.Stream("store")
	}
	return g
}

func (g *Gate) Unwrap() migrate.Store { return g.inner }

// acquire blocks until a slot frees, FIFO.
func (g *Gate) acquire() time.Duration {
	g.mu.Lock()
	if g.active < g.limit && len(g.waiters) == 0 {
		g.active++
		g.mu.Unlock()
		return 0
	}
	slot := make(chan struct{})
	g.waiters = append(g.waiters, slot)
	g.depth.Set(int64(len(g.waiters)))
	g.mu.Unlock()
	t0 := time.Now()
	<-slot
	return time.Since(t0)
}

// release frees a slot, admitting the queue head if one waits.
func (g *Gate) release() {
	g.mu.Lock()
	if len(g.waiters) > 0 {
		head := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.depth.Set(int64(len(g.waiters)))
		// The slot transfers directly: active stays constant.
		g.mu.Unlock()
		close(head)
		return
	}
	g.active--
	g.mu.Unlock()
}

// Put waits for admission, then forwards.
func (g *Gate) Put(name string, data []byte) error {
	wait := g.acquire()
	defer g.release()
	g.waitNs.Record(wait.Nanoseconds())
	if wait > 0 {
		g.trace.Emit(obs.EvStoreGate, 0, 0, 0, int64(len(data)), wait.Nanoseconds(), name)
	}
	return g.inner.Put(name, data)
}

func (g *Gate) Get(name string) ([]byte, error) { return g.inner.Get(name) }

func (g *Gate) List() ([]string, error) { return g.inner.List() }

func (g *Gate) Delete(name string) error { return deleteFrom(g.inner, name) }
