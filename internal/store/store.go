// Package store is the production checkpoint store tier: pluggable
// backends behind the 3-method migrate.Store interface, selected by a
// URL-style spec string. It layers, from the inside out:
//
//	backend   — where bytes live: in-memory (mem), a directory
//	            (dir:PATH), a directory with per-chunk compression at
//	            rest (zdir:PATH), a remote store server (tcp:ADDR), or
//	            an N-way replicated fan-out over any of those
//	            (repl:N,SPEC,...) that acknowledges writes only at
//	            quorum and read-repairs stale replicas on Get;
//	obs       — an instrumentation shim timing every Put/Get and
//	            feeding the metrics registry and event tracer;
//	gate      — the checkpoint-storm scheduler: a FIFO admission gate
//	            in front of Put so hundreds of nodes checkpointing at
//	            once queue fairly instead of convoying on the backend.
//
// Background retention GC (gc.go) walks head refs through
// migrate.ResolveChain to compute the live chain set and deletes dead
// chain members and superseded fulls, replacing the committer's
// best-effort inline prune on deployments that run it.
package store

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/migrate"
	"repro/internal/obs"
)

// Options configures the observability and admission layers Open wraps
// around the backend named by the spec.
type Options struct {
	// Registry, when set, receives the tier's counters and histograms
	// (store.put_ns, store.gate.wait_ns, store.repl.*, store.gc.*).
	Registry *obs.Registry
	// Trace, when set, records store events (put, repair, gate, gc) on
	// the "store" stream.
	Trace *obs.Tracer
	// GateLimit, when > 0, bounds concurrent Puts through a FIFO
	// admission gate (the storm scheduler). 0 disables the gate.
	GateLimit int
}

// Open builds a checkpoint store from a spec string:
//
//	mem                      in-memory (test / single-process)
//	dir:PATH                 directory of checkpoint files
//	zdir:PATH                dir:PATH with per-chunk compression at rest
//	zmem                     mem with compression (tests, benchmarks)
//	tcp:ADDR                 remote store server (cmd/mojstored)
//	repl:N,SPEC,...          N-way replication over N sub-specs, write
//	                         quorum N/2+1 (sub-specs must not contain
//	                         commas and may not nest repl)
//
// The empty spec is "mem". Wrappers from Options are applied outermost
// (gate → obs → backend), so gate wait and put latency are measured
// separately.
func Open(spec string, opts Options) (migrate.Store, error) {
	backend, err := openBackend(spec, opts)
	if err != nil {
		return nil, err
	}
	s := newObsStore(backend, opts)
	if opts.GateLimit > 0 {
		return NewGate(s, opts.GateLimit, opts), nil
	}
	return s, nil
}

// openBackend resolves a spec to a bare backend (no obs/gate layers).
func openBackend(spec string, opts Options) (migrate.Store, error) {
	switch {
	case spec == "" || spec == "mem":
		return cluster.NewMemStore(), nil
	case spec == "zmem":
		return NewCompressed(cluster.NewMemStore(), opts), nil
	case strings.HasPrefix(spec, "dir:"):
		path := spec[len("dir:"):]
		if path == "" {
			return nil, fmt.Errorf("store: spec %q: empty directory path", spec)
		}
		return cluster.NewDirStore(path)
	case strings.HasPrefix(spec, "zdir:"):
		path := spec[len("zdir:"):]
		if path == "" {
			return nil, fmt.Errorf("store: spec %q: empty directory path", spec)
		}
		ds, err := cluster.NewDirStore(path)
		if err != nil {
			return nil, err
		}
		return NewCompressed(ds, opts), nil
	case strings.HasPrefix(spec, "tcp:"):
		addr := spec[len("tcp:"):]
		if addr == "" {
			return nil, fmt.Errorf("store: spec %q: empty address", spec)
		}
		return DialRemote(addr), nil
	case strings.HasPrefix(spec, "repl:"):
		return openReplicated(spec, opts)
	default:
		return nil, fmt.Errorf("store: unknown spec %q (want mem, dir:PATH, zdir:PATH, tcp:ADDR or repl:N,SPEC,...)", spec)
	}
}

// openReplicated parses "repl:N,SPEC,..." and builds the replica set.
func openReplicated(spec string, opts Options) (migrate.Store, error) {
	parts := strings.Split(spec[len("repl:"):], ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("store: spec %q: want repl:N,SPEC,...", spec)
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil || n < 1 {
		return nil, fmt.Errorf("store: spec %q: replica count %q must be a positive integer", spec, parts[0])
	}
	subs := parts[1:]
	if len(subs) != n {
		return nil, fmt.Errorf("store: spec %q: %d replica specs for repl:%d", spec, len(subs), n)
	}
	replicas := make([]migrate.Store, n)
	for i, sub := range subs {
		if strings.HasPrefix(sub, "repl:") {
			return nil, fmt.Errorf("store: spec %q: repl may not nest", spec)
		}
		r, err := openBackend(sub, Options{}) // inner layers stay bare; obs wraps the fan-out
		if err != nil {
			return nil, fmt.Errorf("store: spec %q: replica %d: %w", spec, i, err)
		}
		replicas[i] = r
	}
	return NewReplicated(replicas, 0, opts)
}

// Unwrapper is implemented by every wrapping store in the tier, so
// callers (fault injection, tests) can reach a layer by type.
type Unwrapper interface {
	Unwrap() migrate.Store
}

// FindReplicated walks a wrapped store down to its *Replicated layer;
// nil when the chain has none.
func FindReplicated(s migrate.Store) *Replicated {
	for s != nil {
		if r, ok := s.(*Replicated); ok {
			return r
		}
		u, ok := s.(Unwrapper)
		if !ok {
			return nil
		}
		s = u.Unwrap()
	}
	return nil
}

// deleter is the optional pruning extension of migrate.Store.
type deleter interface {
	Delete(name string) error
}

// deleteFrom forwards a Delete to s when it supports one (no-op
// otherwise — an accumulating store degrades to GC-later).
func deleteFrom(s migrate.Store, name string) error {
	if d, ok := s.(deleter); ok {
		return d.Delete(name)
	}
	return nil
}

// obsStore times every operation and forwards the measurements to the
// registry and tracer. It is the one instrumentation point every
// backend shares, sitting inside the gate so queue wait and backend
// latency are reported separately.
type obsStore struct {
	inner    migrate.Store
	putNs    *obs.Histogram
	getNs    *obs.Histogram
	putBytes *obs.Counter
	puts     *obs.Counter
	failures *obs.Counter
	trace    *obs.Stream
}

func newObsStore(inner migrate.Store, opts Options) *obsStore {
	s := &obsStore{inner: inner}
	if opts.Registry != nil {
		s.putNs = opts.Registry.Histogram("store.put_ns")
		s.getNs = opts.Registry.Histogram("store.get_ns")
		s.putBytes = opts.Registry.Counter("store.put_bytes")
		s.puts = opts.Registry.Counter("store.puts")
		s.failures = opts.Registry.Counter("store.put_failures")
	}
	if opts.Trace != nil {
		s.trace = opts.Trace.Stream("store")
	}
	return s
}

func (s *obsStore) Unwrap() migrate.Store { return s.inner }

func (s *obsStore) Put(name string, data []byte) error {
	t0 := time.Now()
	err := s.inner.Put(name, data)
	d := time.Since(t0)
	if err != nil {
		count(s.failures, 1)
		return err
	}
	record(s.putNs, d.Nanoseconds())
	count(s.putBytes, uint64(len(data)))
	count(s.puts, 1)
	s.trace.Emit(obs.EvStorePut, 0, 0, 0, int64(len(data)), d.Nanoseconds(), name)
	return nil
}

func (s *obsStore) Get(name string) ([]byte, error) {
	t0 := time.Now()
	data, err := s.inner.Get(name)
	if err == nil {
		record(s.getNs, time.Since(t0).Nanoseconds())
	}
	return data, err
}

func (s *obsStore) List() ([]string, error) { return s.inner.List() }

func (s *obsStore) Delete(name string) error { return deleteFrom(s.inner, name) }

// count / record are nil-safe metric helpers: the whole tier works with
// no registry attached.
func count(c *obs.Counter, n uint64) {
	if c != nil {
		c.Add(n)
	}
}

func record(h *obs.Histogram, v int64) {
	if h != nil {
		h.Record(v)
	}
}
