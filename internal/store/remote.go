package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"

	"repro/internal/frame"
	"repro/internal/migrate"
)

// Remote store protocol: a replica endpoint a repl: spec can point at
// over TCP, so quorum members live on separate machines (the paper's
// NFS mount generalized to a replica set). It speaks the repo-standard
// length-prefixed framing.
//
// Request frame:  op byte + u16 name length + name + payload
//	'P' put, 'G' get, 'L' list (empty name), 'D' delete
// Response frame: status byte + body
//	'+' ok (body: data for get, '\n'-joined names for list)
//	'0' not-exist (get only)
//	'-' error (body: message)
//
// One request is in flight per connection at a time; the client
// serializes callers and reconnects on a broken connection.

const (
	opPut    = 'P'
	opGet    = 'G'
	opList   = 'L'
	opDelete = 'D'

	statusOK       = '+'
	statusNotExist = '0'
	statusError    = '-'
)

// Server serves a migrate.Store over TCP (cmd/mojstored wraps it).
type Server struct {
	backing migrate.Store
	ln      net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// Serve listens on addr and serves backing until Close.
func Serve(addr string, backing migrate.Store) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{backing: backing, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and open connections, then waits for the
// handler goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	fc := frame.NewConn(conn)
	for {
		req, err := fc.ReadFrame()
		if err != nil {
			return
		}
		resp := s.dispatch(req)
		if err := fc.WriteFrame(resp); err != nil {
			return
		}
	}
}

// dispatch executes one request and encodes the response.
func (s *Server) dispatch(req []byte) []byte {
	op, name, payload, err := decodeRequest(req)
	if err != nil {
		return statusResp(statusError, err.Error())
	}
	switch op {
	case opPut:
		if err := s.backing.Put(name, payload); err != nil {
			return statusResp(statusError, err.Error())
		}
		return []byte{statusOK}
	case opGet:
		data, err := s.backing.Get(name)
		if errors.Is(err, os.ErrNotExist) {
			return []byte{statusNotExist}
		}
		if err != nil {
			return statusResp(statusError, err.Error())
		}
		resp := make([]byte, 1+len(data))
		resp[0] = statusOK
		copy(resp[1:], data)
		return resp
	case opList:
		names, err := s.backing.List()
		if err != nil {
			return statusResp(statusError, err.Error())
		}
		return statusResp(statusOK, strings.Join(names, "\n"))
	case opDelete:
		if err := deleteFrom(s.backing, name); err != nil && !errors.Is(err, os.ErrNotExist) {
			return statusResp(statusError, err.Error())
		}
		return []byte{statusOK}
	default:
		return statusResp(statusError, fmt.Sprintf("unknown op %q", op))
	}
}

func statusResp(status byte, body string) []byte {
	resp := make([]byte, 1+len(body))
	resp[0] = status
	copy(resp[1:], body)
	return resp
}

func encodeRequest(op byte, name string, payload []byte) ([]byte, error) {
	if len(name) > 1<<16-1 {
		return nil, fmt.Errorf("store: name of %d bytes too long for wire", len(name))
	}
	req := make([]byte, 3+len(name)+len(payload))
	req[0] = op
	binary.BigEndian.PutUint16(req[1:3], uint16(len(name)))
	copy(req[3:], name)
	copy(req[3+len(name):], payload)
	return req, nil
}

func decodeRequest(req []byte) (op byte, name string, payload []byte, err error) {
	if len(req) < 3 {
		return 0, "", nil, errors.New("short request")
	}
	nameLen := int(binary.BigEndian.Uint16(req[1:3]))
	if len(req) < 3+nameLen {
		return 0, "", nil, errors.New("truncated request name")
	}
	return req[0], string(req[3 : 3+nameLen]), req[3+nameLen:], nil
}

// Remote is the client side: a migrate.Store proxying to a Server. It
// holds one connection, serializes requests, and redials a broken
// connection on the next call — a restarted store server is picked up
// transparently.
type Remote struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	fc   *frame.Conn
}

// DialRemote creates a client for addr. The connection is established
// lazily on first use, so constructing a replica set does not require
// every endpoint to be up yet.
func DialRemote(addr string) *Remote { return &Remote{addr: addr} }

// Close drops the connection (a later call redials).
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		err := r.conn.Close()
		r.conn, r.fc = nil, nil
		return err
	}
	return nil
}

// roundTrip sends one request and reads the response, holding the
// connection lock. A transport error tears the connection down so the
// next call redials.
func (r *Remote) roundTrip(op byte, name string, payload []byte) ([]byte, error) {
	req, err := encodeRequest(op, name, payload)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		conn, err := net.Dial("tcp", r.addr)
		if err != nil {
			return nil, fmt.Errorf("store: dial %s: %w", r.addr, err)
		}
		r.conn, r.fc = conn, frame.NewConn(conn)
	}
	if err := r.fc.WriteFrame(req); err != nil {
		r.conn.Close()
		r.conn, r.fc = nil, nil
		return nil, fmt.Errorf("store: %s: %w", r.addr, err)
	}
	resp, err := r.fc.ReadFrame()
	if err != nil {
		r.conn.Close()
		r.conn, r.fc = nil, nil
		return nil, fmt.Errorf("store: %s: %w", r.addr, err)
	}
	if len(resp) == 0 {
		return nil, fmt.Errorf("store: %s: empty response", r.addr)
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusNotExist:
		return nil, fmt.Errorf("store: checkpoint %q: %w", name, os.ErrNotExist)
	case statusError:
		return nil, fmt.Errorf("store: %s: %s", r.addr, resp[1:])
	default:
		return nil, fmt.Errorf("store: %s: bad status %q", r.addr, resp[0])
	}
}

func (r *Remote) Put(name string, data []byte) error {
	_, err := r.roundTrip(opPut, name, data)
	return err
}

func (r *Remote) Get(name string) ([]byte, error) {
	return r.roundTrip(opGet, name, nil)
}

func (r *Remote) List() ([]string, error) {
	body, err := r.roundTrip(opList, "", nil)
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, nil
	}
	return strings.Split(string(body), "\n"), nil
}

func (r *Remote) Delete(name string) error {
	_, err := r.roundTrip(opDelete, name, nil)
	return err
}
