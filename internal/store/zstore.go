package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/migrate"
	"repro/internal/obs"
)

// Compression at rest rides the same 64 KiB chunk granularity as the
// transport's content-hash dedup path (PR 4): each chunk is compressed
// independently, so identical chunks produce identical compressed
// blobs and compression composes with dedup instead of defeating it.
// Every chunk carries the CRC-32 of its *uncompressed* bytes, verified
// on Get after decompression — a bit flipped at rest is an error, never
// silently decompressed garbage.

const (
	// zMagic prefixes every compressed-at-rest object. Objects without
	// it (written before the wrapper was configured, or by a plain
	// backend sharing the directory) pass through Get untouched.
	zMagic = "#!mcc-zst\n"
	// zChunk is the compression granularity — the transport chunk size.
	zChunk = 64 << 10
	// zFlate/zRaw flag how a chunk is stored: deflate-compressed, or
	// raw when compression did not shrink it (already-compressed or
	// high-entropy payloads).
	zRaw   = 0
	zFlate = 1
)

// zScratch pools the flate writer and encode buffer: checkpoint puts
// recur with similar sizes, so the compressor state is reused.
var zScratch = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return &zBufs{w: w}
	},
}

type zBufs struct {
	w    *flate.Writer
	enc  bytes.Buffer // whole encoded object
	cbuf bytes.Buffer // one chunk's compressed bytes
}

// Compressed wraps a store with per-chunk compression at rest.
type Compressed struct {
	inner       migrate.Store
	rawBytes    *obs.Counter // uncompressed payload bytes accepted
	storedBytes *obs.Counter // bytes actually handed to the backend
}

// NewCompressed wraps inner. The counters (store.z.raw_bytes,
// store.z.stored_bytes) land in opts.Registry when one is set.
func NewCompressed(inner migrate.Store, opts Options) *Compressed {
	c := &Compressed{inner: inner}
	if opts.Registry != nil {
		c.rawBytes = opts.Registry.Counter("store.z.raw_bytes")
		c.storedBytes = opts.Registry.Counter("store.z.stored_bytes")
	}
	return c
}

func (c *Compressed) Unwrap() migrate.Store { return c.inner }

// Put compresses data chunk by chunk and stores the framed result.
func (c *Compressed) Put(name string, data []byte) error {
	bufs := zScratch.Get().(*zBufs)
	defer zScratch.Put(bufs)
	enc := &bufs.enc
	enc.Reset()
	enc.WriteString(zMagic)
	var hdr [13]byte
	for off := 0; off < len(data); off += zChunk {
		end := off + zChunk
		if end > len(data) {
			end = len(data)
		}
		raw := data[off:end]
		bufs.cbuf.Reset()
		bufs.w.Reset(&bufs.cbuf)
		if _, err := bufs.w.Write(raw); err != nil {
			return fmt.Errorf("store: compressing %q: %w", name, err)
		}
		if err := bufs.w.Close(); err != nil {
			return fmt.Errorf("store: compressing %q: %w", name, err)
		}
		stored, flag := bufs.cbuf.Bytes(), byte(zFlate)
		if len(stored) >= len(raw) {
			stored, flag = raw, zRaw
		}
		hdr[0] = flag
		binary.BigEndian.PutUint32(hdr[1:5], uint32(len(raw)))
		binary.BigEndian.PutUint32(hdr[5:9], uint32(len(stored)))
		binary.BigEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(raw))
		enc.Write(hdr[:])
		enc.Write(stored)
	}
	count(c.rawBytes, uint64(len(data)))
	count(c.storedBytes, uint64(enc.Len()))
	return c.inner.Put(name, enc.Bytes())
}

// Get decompresses a framed object, verifying each chunk's CRC against
// the decompressed bytes. Objects without the at-rest magic are
// returned untouched.
func (c *Compressed) Get(name string) ([]byte, error) {
	data, err := c.inner.Get(name)
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(data, []byte(zMagic)) {
		return data, nil
	}
	rest := data[len(zMagic):]
	var out []byte
	for chunk := 0; len(rest) > 0; chunk++ {
		if len(rest) < 13 {
			return nil, fmt.Errorf("store: %q chunk %d: truncated header", name, chunk)
		}
		flag := rest[0]
		rawLen := int(binary.BigEndian.Uint32(rest[1:5]))
		storedLen := int(binary.BigEndian.Uint32(rest[5:9]))
		sum := binary.BigEndian.Uint32(rest[9:13])
		rest = rest[13:]
		if storedLen > len(rest) || rawLen > zChunk {
			return nil, fmt.Errorf("store: %q chunk %d: truncated payload", name, chunk)
		}
		stored := rest[:storedLen]
		rest = rest[storedLen:]
		if out == nil {
			out = make([]byte, 0, rawLen*((len(rest)/(storedLen+13))+1))
		}
		start := len(out)
		switch flag {
		case zRaw:
			out = append(out, stored...)
		case zFlate:
			fr := flate.NewReader(bytes.NewReader(stored))
			buf := make([]byte, rawLen)
			if _, err := io.ReadFull(fr, buf); err != nil {
				return nil, fmt.Errorf("store: %q chunk %d: decompress: %w", name, chunk, err)
			}
			fr.Close()
			out = append(out, buf...)
		default:
			return nil, fmt.Errorf("store: %q chunk %d: unknown flag %d", name, chunk, flag)
		}
		raw := out[start:]
		if len(raw) != rawLen {
			return nil, fmt.Errorf("store: %q chunk %d: decompressed to %d bytes, want %d", name, chunk, len(raw), rawLen)
		}
		if crc32.ChecksumIEEE(raw) != sum {
			return nil, fmt.Errorf("store: %q chunk %d: CRC mismatch after decompression (corrupt at rest)", name, chunk)
		}
	}
	if out == nil {
		out = []byte{}
	}
	return out, nil
}

func (c *Compressed) List() ([]string, error) { return c.inner.List() }

func (c *Compressed) Delete(name string) error { return deleteFrom(c.inner, name) }
