package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/heap"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/wire"
)

func TestOpenSpecs(t *testing.T) {
	dir := t.TempDir()
	good := []string{
		"", "mem", "zmem",
		"dir:" + dir, "zdir:" + dir,
		"repl:3,mem,mem,mem",
		"repl:2,mem,dir:" + dir,
	}
	for _, spec := range good {
		if _, err := Open(spec, Options{}); err != nil {
			t.Errorf("Open(%q): %v", spec, err)
		}
	}
	bad := []string{
		"bogus", "dir:", "zdir:", "tcp:",
		"repl:", "repl:3,mem,mem", "repl:0,mem", "repl:x,mem",
		"repl:1,repl:1,mem",
	}
	for _, spec := range bad {
		if _, err := Open(spec, Options{}); err == nil {
			t.Errorf("Open(%q) succeeded, want error", spec)
		}
	}
}

func TestOpenLayering(t *testing.T) {
	s, err := Open("repl:3,mem,mem,mem", Options{GateLimit: 2, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Gate); !ok {
		t.Fatalf("outermost layer is %T, want *Gate", s)
	}
	if FindReplicated(s) == nil {
		t.Fatal("FindReplicated failed to reach the replica layer through gate+obs")
	}
	if err := s.Put("x", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("x")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Get through full stack = %q, %v", got, err)
	}
}

// compressible returns n bytes with long runs and repeated structure —
// the shape of a heap snapshot.
func compressible(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i / 997)
	}
	return out
}

func TestCompressedRoundTrip(t *testing.T) {
	mem := cluster.NewMemStore()
	reg := obs.NewRegistry()
	z := NewCompressed(mem, Options{Registry: reg})

	// Multi-chunk compressible payload.
	data := compressible(300 << 10)
	if err := z.Put("big", data); err != nil {
		t.Fatal(err)
	}
	got, err := z.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip diverged")
	}
	stored, _ := mem.Get("big")
	if len(stored)*2 > len(data) {
		t.Fatalf("compressible payload stored at %d bytes (raw %d), want >=2x smaller", len(stored), len(data))
	}
	if v := reg.Counter("store.z.raw_bytes").Value(); v != uint64(len(data)) {
		t.Fatalf("store.z.raw_bytes = %d, want %d", v, len(data))
	}
	if v := reg.Counter("store.z.stored_bytes").Value(); v != uint64(len(stored)) {
		t.Fatalf("store.z.stored_bytes = %d, want %d", v, len(stored))
	}

	// Incompressible payload survives via the raw-chunk fallback.
	rng := rand.New(rand.NewSource(1))
	noise := make([]byte, 100<<10)
	rng.Read(noise)
	if err := z.Put("noise", noise); err != nil {
		t.Fatal(err)
	}
	got, err = z.Get("noise")
	if err != nil || !bytes.Equal(got, noise) {
		t.Fatalf("incompressible round trip diverged: %v", err)
	}

	// Empty payload.
	if err := z.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if got, err := z.Get("empty"); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip = %q, %v", got, err)
	}

	// An object written by a plain backend (no at-rest magic) passes
	// through Get untouched.
	plain := []byte("#!mcc-run\nnot compressed")
	_ = mem.Put("plain", plain)
	if got, _ := z.Get("plain"); !bytes.Equal(got, plain) {
		t.Fatal("plain object did not pass through")
	}
}

func TestCompressedDetectsCorruption(t *testing.T) {
	mem := cluster.NewMemStore()
	z := NewCompressed(mem, Options{})
	if err := z.Put("ck", compressible(80<<10)); err != nil {
		t.Fatal(err)
	}
	stored, _ := mem.Get("ck")
	// Flip a stored-CRC byte, an early payload byte, and a mid-stream
	// byte (the very last byte can land in flate padding bits that carry
	// no payload — the CRC guards data, not don't-care bits).
	for _, flip := range []int{len(zMagic) + 9, len(zMagic) + 14, len(stored) / 2} {
		bad := append([]byte(nil), stored...)
		bad[flip] ^= 0x40
		_ = mem.Put("ck", bad)
		if _, err := z.Get("ck"); err == nil {
			t.Fatalf("bit flip at %d decompressed without error", flip)
		}
	}
	// Truncation is detected, not silently accepted.
	_ = mem.Put("ck", stored[:len(stored)/2])
	if _, err := z.Get("ck"); err == nil {
		t.Fatal("truncated object decompressed without error")
	}
}

func TestReplicatedQuorumAndReadRepair(t *testing.T) {
	reg := obs.NewRegistry()
	reps := []migrate.Store{cluster.NewMemStore(), cluster.NewMemStore(), cluster.NewMemStore()}
	r, err := NewReplicated(reps, 0, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if r.WriteQuorum() != 2 {
		t.Fatalf("write quorum = %d, want 2", r.WriteQuorum())
	}

	if err := r.Put("h", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	r.Wait()

	// One replica dies; the mutable name is overwritten — the write
	// still acknowledges at quorum 2.
	r.KillReplica(2)
	if err := r.Put("h", []byte("v2")); err != nil {
		t.Fatalf("Put with 1/3 dead: %v", err)
	}
	got, err := r.Get("h")
	if err != nil || string(got) != "v2" {
		t.Fatalf("Get with 1/3 dead = %q, %v", got, err)
	}

	// The replica comes back holding the stale v1: Get must pick the
	// newer version from the surviving quorum and repair the laggard.
	r.ReviveReplica(2)
	got, err = r.Get("h")
	if err != nil || string(got) != "v2" {
		t.Fatalf("Get after revive = %q, %v (stale version won?)", got, err)
	}
	r.Wait()
	raw, err := reps[2].Get("h")
	if err != nil {
		t.Fatalf("repaired replica: %v", err)
	}
	if _, payload := openEnvelope(raw); string(payload) != "v2" {
		t.Fatalf("repaired replica holds %q, want v2", payload)
	}
	if reg.Counter("store.repl.repairs").Value() == 0 {
		t.Fatal("read repair not counted")
	}

	// Below read quorum everything refuses with ErrNoQuorum.
	r.KillReplica(0)
	r.KillReplica(1)
	if _, err := r.Get("h"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Get with 2/3 dead: %v, want ErrNoQuorum", err)
	}
	if err := r.Put("h", []byte("v3")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Put with 2/3 dead: %v, want ErrNoQuorum", err)
	}

	// A name no replica holds keeps the os.ErrNotExist identity.
	r.ReviveReplica(0)
	r.ReviveReplica(1)
	if _, err := r.Get("missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing name: %v, want os.ErrNotExist", err)
	}
}

func TestReplicatedListAndDelete(t *testing.T) {
	reps := []migrate.Store{cluster.NewMemStore(), cluster.NewMemStore(), cluster.NewMemStore()}
	r, _ := NewReplicated(reps, 0, Options{})
	for i := 0; i < 4; i++ {
		if err := r.Put(fmt.Sprintf("ck%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	r.Wait()
	// List sees every acknowledged name even with one replica dead.
	r.KillReplica(1)
	names, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Fatalf("List = %v, want 4 names", names)
	}
	if err := r.Delete("ck0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("ck0"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("deleted name: %v, want os.ErrNotExist", err)
	}
}

// blockingStore parks every Put until released.
type blockingStore struct {
	inner   migrate.Store
	mu      sync.Mutex
	release chan struct{}
	order   []string
}

func newBlockingStore() *blockingStore {
	return &blockingStore{inner: cluster.NewMemStore(), release: make(chan struct{})}
}

func (b *blockingStore) Put(name string, data []byte) error {
	<-b.release
	b.mu.Lock()
	b.order = append(b.order, name)
	b.mu.Unlock()
	return b.inner.Put(name, data)
}

func (b *blockingStore) Get(name string) ([]byte, error) { return b.inner.Get(name) }
func (b *blockingStore) List() ([]string, error)         { return b.inner.List() }

func TestGateFIFOAndBound(t *testing.T) {
	reg := obs.NewRegistry()
	backing := newBlockingStore()
	g := NewGate(backing, 1, Options{Registry: reg})

	const waiters = 6
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		name := fmt.Sprintf("ck%d", i)
		go func() {
			defer wg.Done()
			if err := g.Put(name, []byte("x")); err != nil {
				t.Errorf("Put(%s): %v", name, err)
			}
		}()
		// Serialize arrival so FIFO order is observable: wait until this
		// goroutine is either holding the slot or parked in the queue.
		for {
			g.mu.Lock()
			queued := g.active + len(g.waiters)
			g.mu.Unlock()
			if queued > i {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	if d := reg.Gauge("store.gate.depth").Value(); d != waiters-1 {
		t.Fatalf("gate depth = %d, want %d", d, waiters-1)
	}
	close(backing.release)
	wg.Wait()
	for i, name := range backing.order {
		if want := fmt.Sprintf("ck%d", i); name != want {
			t.Fatalf("admission order %v is not FIFO", backing.order)
		}
	}
	sum := reg.Histogram("store.gate.wait_ns").Summary()
	if sum.Count != waiters {
		t.Fatalf("gate wait histogram has %d samples, want %d", sum.Count, waiters)
	}
	if sum.Max == 0 {
		t.Fatal("gate wait histogram recorded no waiting despite a held slot")
	}
}

func TestRemoteStore(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", cluster.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	s, err := Open("tcp:"+srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := compressible(96 << 10)
	if err := s.Put("ck@0", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("ck@0")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("remote round trip failed: %v", err)
	}
	if _, err := s.Get("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("remote missing name: %v, want os.ErrNotExist", err)
	}
	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "ck@0" {
		t.Fatalf("remote List = %v, %v", names, err)
	}
	if err := deleteFrom(s, "ck@0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("ck@0"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("remote deleted name: %v, want os.ErrNotExist", err)
	}
}

// gcStore builds a store with:
//   - chain "n": head ref → full member n@3, stale members n@0..n@2
//     (superseded by the full at 3), in-flight member n@4
//   - orphan group "m": member m@0 with no head object yet
//   - chain "x": head object is junk (unresolvable)
//   - full-mode head "f" plus a member f@0 GC cannot attribute
func gcStore(t *testing.T) migrate.Store {
	t.Helper()
	s := cluster.NewMemStore()
	h := heap.New(heap.Config{})
	full := &wire.Image{
		Code:  wire.CodePart{Name: "p", Program: []byte("prog"), TableLen: h.TableLen()},
		State: wire.StatePart{Heap: h.Snapshot()},
	}
	enc := wire.EncodeImage(full)
	for _, kv := range [][2]string{
		{"n@0", "old root"}, {"n@1", "old delta"}, {"n@2", "old delta"},
		{"n@4", "in-flight member"},
		{"m@0", "orphan member"},
		{"x", "junk head"}, {"x@0", "member of junk head"},
		{"f@0", "unattributable member"},
	} {
		if err := s.Put(kv[0], []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	for _, full := range []string{"n@3", "f"} {
		if err := s.Put(full, enc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("n", wire.EncodeRef("n@3")); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunGC(t *testing.T) {
	s := gcStore(t)
	reg := obs.NewRegistry()
	stats, err := RunGC(s, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Swept != 3 {
		t.Fatalf("swept %d objects, want 3 (n@0..n@2): %+v", stats.Swept, stats)
	}
	if stats.SweptBytes == 0 {
		t.Fatal("swept bytes not accounted")
	}
	if stats.Failures != 1 { // the junk head "x"
		t.Fatalf("failures = %d, want 1 (unresolvable head x)", stats.Failures)
	}
	for _, dead := range []string{"n@0", "n@1", "n@2"} {
		if _, err := s.Get(dead); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("dead member %q survived GC", dead)
		}
	}
	for _, live := range []string{"n", "n@3", "n@4", "m@0", "x", "x@0", "f", "f@0"} {
		if _, err := s.Get(live); err != nil {
			t.Fatalf("live object %q swept: %v", live, err)
		}
	}
	// The contract that matters: every head still resolves after GC.
	chain, err := migrate.ResolveChain(s, "n")
	if err != nil {
		t.Fatalf("head no longer resolves post-GC: %v", err)
	}
	if len(chain) != 1 || chain[0] != "n@3" {
		t.Fatalf("post-GC chain = %v, want [n@3]", chain)
	}
	if v := reg.Counter("store.gc.swept").Value(); v != 3 {
		t.Fatalf("store.gc.swept = %d, want 3", v)
	}
	// A second sweep is a no-op: the live set is stable.
	stats, err = RunGC(s, Options{Registry: reg})
	if err != nil || stats.Swept != 0 {
		t.Fatalf("second sweep removed %d objects (%v), want 0", stats.Swept, err)
	}
}

func TestStartGC(t *testing.T) {
	s := gcStore(t)
	g := StartGC(s, 5*time.Millisecond, Options{})
	defer g.Stop()
	deadline := time.After(2 * time.Second)
	for {
		if _, err := s.Get("n@0"); errors.Is(err, os.ErrNotExist) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background GC never swept the dead member")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if _, err := migrate.ResolveChain(s, "n"); err != nil {
		t.Fatalf("head no longer resolves under background GC: %v", err)
	}
}
