package store

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/migrate"
	"repro/internal/obs"
)

// Retention GC: the committer's inline prune is best-effort — it runs
// only on a just-published full, only over members the live committer
// remembers, and dies with the process. The GC here is authoritative
// and restartable: it recomputes the live set from durable state alone
// (head refs resolved through migrate.ResolveChain) and deletes chain
// members no resolution can reach.
//
// Safety against racing an in-flight commit: the committer writes a
// member BEFORE the head ref that makes it reachable, so a freshly
// listed member with seq beyond the resolved head may become live a
// moment later. The sweep therefore deletes a member only when its seq
// is *below the resolved chain's root* — the chain now resolves from a
// newer full, so nothing can re-reference it (sequence numbers are
// never reused: probeSeq starts past the max even after resurrection).
// Members above the root, orphan groups with no head object yet, and
// groups whose head fails to resolve are all kept conservatively.

// GCStats is one sweep's outcome.
type GCStats struct {
	Heads      int    // chain groups examined
	Live       int    // members kept as part of a resolved chain
	Swept      int    // objects deleted
	SweptBytes uint64 // bytes reclaimed (as measured before delete)
	Failures   int    // unresolvable heads + failed deletes
}

// member is one parsed "<head>@<seq>" name.
type member struct {
	name string
	seq  int
}

// parseMember splits a chain-member name on its final "@"; ok is false
// for head names and unrelated objects.
func parseMember(name string) (head string, seq int, ok bool) {
	i := strings.LastIndex(name, "@")
	if i <= 0 || i == len(name)-1 {
		return "", 0, false
	}
	seq, err := strconv.Atoi(name[i+1:])
	if err != nil || seq < 0 {
		return "", 0, false
	}
	return name[:i], seq, true
}

// RunGC performs one retention sweep over s — the same logical store
// handle the committer writes through, so compression and replication
// are transparent. Counters land in opts.Registry (store.gc.*), one
// EvStoreGC trace event summarizes the sweep.
func RunGC(s migrate.Store, opts Options) (GCStats, error) {
	var stats GCStats
	names, err := s.List()
	if err != nil {
		return stats, err
	}
	present := make(map[string]bool, len(names))
	groups := make(map[string][]member)
	for _, n := range names {
		present[n] = true
		if head, seq, ok := parseMember(n); ok {
			groups[head] = append(groups[head], member{name: n, seq: seq})
		}
	}

	var dead []member
	for head, members := range groups {
		stats.Heads++
		if !present[head] {
			// No head object yet: the chain's first publish may be in
			// flight. Everything stays.
			stats.Live += len(members)
			continue
		}
		chain, err := migrate.ResolveChain(s, head)
		if err != nil {
			stats.Failures++
			stats.Live += len(members)
			continue
		}
		rootSeq := -1
		for _, cn := range chain {
			h, seq, ok := parseMember(cn)
			if ok && h == head {
				rootSeq = seq
				break
			}
		}
		if rootSeq < 0 {
			// The head resolves without member-form names (full-mode
			// image under the head name). Any members present are from a
			// mode we cannot attribute — keep them.
			stats.Live += len(members)
			continue
		}
		for _, m := range members {
			if m.seq < rootSeq {
				dead = append(dead, m)
			} else {
				stats.Live++
			}
		}
	}

	var swept, sweptBytes, fails *obs.Counter
	var trace *obs.Stream
	if opts.Registry != nil {
		swept = opts.Registry.Counter("store.gc.swept")
		sweptBytes = opts.Registry.Counter("store.gc.swept_bytes")
		fails = opts.Registry.Counter("store.gc.failures")
		opts.Registry.Counter("store.gc.runs").Inc()
	}
	if opts.Trace != nil {
		trace = opts.Trace.Stream("store")
	}
	for _, m := range dead {
		var size int
		if data, err := s.Get(m.name); err == nil {
			size = len(data)
		}
		if err := deleteFrom(s, m.name); err != nil {
			stats.Failures++
			count(fails, 1)
			continue
		}
		stats.Swept++
		stats.SweptBytes += uint64(size)
		count(swept, 1)
		count(sweptBytes, uint64(size))
	}
	trace.Emit(obs.EvStoreGC, 0, 0, 0, int64(stats.Swept), int64(stats.SweptBytes), "")
	return stats, nil
}

// GC runs RunGC on a fixed interval until Stop.
type GC struct {
	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex
	last GCStats
}

// StartGC launches a background retention sweeper over s.
func StartGC(s migrate.Store, interval time.Duration, opts Options) *GC {
	if interval <= 0 {
		interval = time.Minute
	}
	g := &GC{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(g.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				stats, err := RunGC(s, opts)
				if err != nil && opts.Registry != nil {
					opts.Registry.Counter("store.gc.failures").Inc()
				}
				g.mu.Lock()
				g.last = stats
				g.mu.Unlock()
			}
		}
	}()
	return g
}

// Last returns the most recent sweep's stats.
func (g *GC) Last() GCStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.last
}

// Stop halts the sweeper and waits for an in-progress sweep to finish.
func (g *GC) Stop() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	<-g.done
}
