// Distributed mode: the same grid application, speculation/MSG_ROLL
// semantics and checkpoint recovery as the in-process engine, but with
// every node in its own OS process, joined over TCP through a
// transport.Hub. RunDistributed is the coordinator half; RunWorker is the
// per-process worker half (cmd/gridrun wires both to flags). The split is
// engine-shaped, not process-shaped, so tests can also run "workers" as
// goroutines against a real loopback hub — including with fault-injected
// links — and assert bit-identical checksums.
package grid

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/migrate"
	"repro/internal/msg"
	"repro/internal/rt"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrNodeFailed is returned by RunWorker when the coordinator declared
// this worker's node failed: the process must die without flushing
// anything (crash semantics); a resurrection worker takes over from the
// shared store.
var ErrNodeFailed = errors.New("grid: node declared failed by coordinator")

// WorkerConfig configures one distributed grid worker.
type WorkerConfig struct {
	// Join is the coordinator hub address.
	Join string
	// Node is the grid node this process hosts.
	Node int64
	// Params are the grid parameters (identical on every worker — SPMD).
	Params Params
	// Resume, when non-empty, resurrects the node from this checkpoint in
	// the shared store instead of starting fresh.
	Resume string
	// Timeout bounds the node's run (default 2m).
	Timeout time.Duration
	// Stdout receives process output (default: discard).
	Stdout io.Writer
	// Fault, when set, wraps the worker's link with the frame-level fault
	// injector (tests only).
	Fault *transport.FaultSpec
	// RetryBase overrides the client reconnect backoff (tests).
	RetryBase time.Duration
}

// RunWorker hosts one grid node in this OS process: a single-node
// cluster.Engine whose router uplinks to the coordinator and whose
// checkpoint store is served remotely. It reports every terminal node
// state to the coordinator and returns this node's own final state.
func RunWorker(cfg WorkerConfig) (*cluster.ProcState, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}

	router := msg.NewRouter()
	router.SetLocal(cfg.Node)

	var (
		engine      *cluster.Engine
		engineReady = make(chan struct{})
		failedCh    = make(chan struct{})
		failOnce    sync.Once
	)
	clientCfg := transport.ClientConfig{
		Addr:   cfg.Join,
		Node:   cfg.Node,
		Router: router,
		OnFail: func() { failOnce.Do(func() { close(failedCh) }) },
		OnAdopt: func(dst, seen int64, img *wire.Image) error {
			<-engineReady
			router.SetLocal(dst)
			return engine.Adopt(dst, img, seen, CheckpointExtern(dst))
		},
		Resurrect: cfg.Resume != "",
		RetryBase: cfg.RetryBase,
	}
	if cfg.Fault != nil {
		clientCfg.Wrap = cfg.Fault.Wrap
	}
	client, err := transport.Dial(clientCfg)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	router.SetUplink(client)

	engine = cluster.NewEngine(cluster.EngineConfig{
		Store:         client.RemoteStore(),
		Router:        router,
		Stdout:        cfg.Stdout,
		RemoteHandoff: client.Handoff,
		Extra:         func(node int64) rt.Registry { return CheckpointExtern(node) },
	})
	defer engine.Close()
	close(engineReady)

	if cfg.Resume != "" {
		// Resurrect from the shared store. Dial already synced the
		// rollback epoch, and Engine.Resurrect marks the checkpoint as
		// the rollback point (Router.Restore), so this incarnation does
		// not re-observe the failure that killed its predecessor.
		if err := engine.Resurrect(cfg.Node, cfg.Resume, CheckpointExtern(cfg.Node)); err != nil {
			return nil, fmt.Errorf("grid: resurrecting node %d from %q: %w", cfg.Node, cfg.Resume, err)
		}
	} else {
		prog, err := CompileProgram()
		if err != nil {
			return nil, err
		}
		if err := engine.StartProcess(cfg.Node, prog, cfg.Params.NodeArgs(), CheckpointExtern(cfg.Node)); err != nil {
			return nil, err
		}
	}

	type waited struct {
		states map[int64]*cluster.ProcState
		err    error
	}
	done := make(chan waited, 1)
	go func() {
		states, err := engine.Wait(cfg.Timeout)
		done <- waited{states, err}
	}()

	select {
	case <-failedCh:
		// Crash semantics: report nothing, flush nothing. The coordinator
		// already advanced the epoch; survivors are rolling back.
		engine.Close()
		return nil, ErrNodeFailed
	case w := <-done:
		if w.err != nil {
			return nil, w.err
		}
		rolls := router.Stats().Rolls
		var own *cluster.ProcState
		for node, st := range w.states {
			res := transport.Result{
				Node: node, Status: st.Status, Halt: st.Halt,
				Steps: st.Steps,
			}
			if node == cfg.Node {
				// The Rolls counter is router-wide; attach it to exactly
				// one hosted node so the coordinator's sum counts each
				// MSG_ROLL delivery once.
				res.Rolls = rolls
			}
			if st.Err != nil {
				res.Err = st.Err.Error()
			}
			if err := client.Exit(res); err != nil {
				return nil, err
			}
			if node == cfg.Node {
				own = st
			}
		}
		return own, nil
	}
}

// SpawnFunc launches a worker process for a node; resume is empty for a
// fresh start or a checkpoint name for a resurrection. cmd/gridrun
// re-executes its own binary; in-process tests start a goroutine.
type SpawnFunc func(join string, node int64, resume string) error

// DistributedConfig configures the coordinator side of a distributed run.
type DistributedConfig struct {
	// Listen is the hub's listen address (default "127.0.0.1:0").
	Listen string
	// Store backs the shared checkpoint store (default in-memory; real
	// deployments pass a cluster.DirStore on the shared mount).
	Store migrate.Store
	// Spawn launches workers. When nil, the coordinator spawns nothing
	// and waits for externally started workers to join (gridrun
	// -coordinator); a failure plan then cannot resurrect and is
	// rejected.
	Spawn SpawnFunc
	// Logf, when set, receives coordinator progress lines.
	Logf func(format string, args ...any)
}

// RunDistributed executes the grid application across worker processes
// joined through a TCP hub, optionally injecting one node failure (kill
// the worker, resurrect a fresh process from the shared checkpoint
// store), and returns the aggregated result. The caller compares
// Result.Checksums against Reference(p), exactly as with Run.
func RunDistributed(p Params, fail *FailurePlan, cfg DistributedConfig, timeout time.Duration) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if fail != nil && cfg.Spawn == nil {
		return nil, errors.New("grid: a failure plan needs a spawner to resurrect the node")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Store == nil {
		cfg.Store = cluster.NewMemStore()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	hub, err := transport.Listen(cfg.Listen, cfg.Store)
	if err != nil {
		return nil, err
	}
	defer hub.Close()

	res := &Result{}
	var failOnce sync.Once
	resurrected := make(chan error, 1)
	if fail != nil {
		want := CheckpointName(fail.Node)
		plan := *fail
		hub.OnPut = func(name string, count int) {
			if name != want || count < plan.AfterCheckpoints {
				return
			}
			failOnce.Do(func() {
				logf("coordinator: killing node %d (checkpoint %d written)", plan.Node, count)
				hub.Fail(plan.Node)
				go func() {
					time.Sleep(plan.RestartDelay)
					logf("coordinator: resurrecting node %d from %q", plan.Node, want)
					res.Resurrections++
					resurrected <- cfg.Spawn(hub.Addr(), plan.Node, want)
				}()
			})
		}
	}

	start := time.Now()
	if cfg.Spawn != nil {
		for n := int64(0); n < int64(p.Nodes); n++ {
			if err := cfg.Spawn(hub.Addr(), n, ""); err != nil {
				return nil, fmt.Errorf("grid: spawning node %d: %w", n, err)
			}
		}
	} else {
		logf("coordinator: waiting for %d workers to join %s", p.Nodes, hub.Addr())
	}

	results, err := hub.WaitResults(p.Nodes, timeout)
	res.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}
	if fail != nil {
		select {
		case rerr := <-resurrected:
			if rerr != nil {
				return nil, fmt.Errorf("grid: resurrection failed: %w", rerr)
			}
		default:
			return nil, fmt.Errorf("grid: failure plan never triggered (node %d, after %d checkpoints)", fail.Node, fail.AfterCheckpoints)
		}
	}

	res.Checksums = make([]int64, p.Nodes)
	for n := int64(0); n < int64(p.Nodes); n++ {
		st, ok := results[n]
		if !ok {
			return nil, fmt.Errorf("grid: node %d reported no final state", n)
		}
		if st.Status != rt.StatusHalted {
			return nil, fmt.Errorf("grid: node %d finished %s (err: %s)", n, st.Status, st.Err)
		}
		res.Checksums[n] = st.Halt
		res.Rollbacks += st.Rolls
	}
	return res, nil
}
