// Distributed mode: the same grid application, speculation/MSG_ROLL
// semantics and checkpoint recovery as the in-process engine, but with
// every node in its own OS process, joined over TCP through a
// transport.Hub. Since PR 3 both halves are thin wrappers over the
// generic workload runners (internal/workload), which host any
// registered application the same way; the grid-shaped API is kept for
// compatibility and for the benchmarks.
package grid

import (
	"errors"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/migrate"
	"repro/internal/transport"
	"repro/internal/workload"
)

// ErrNodeFailed is returned by RunWorker when the coordinator declared
// this worker's node failed: the process must die without flushing
// anything (crash semantics); a resurrection worker takes over from the
// shared store.
var ErrNodeFailed = workload.ErrNodeFailed

// WorkerConfig configures one distributed grid worker.
type WorkerConfig struct {
	// Join is the coordinator hub address.
	Join string
	// Node is the grid node this process hosts.
	Node int64
	// Params are the grid parameters (identical on every worker — SPMD).
	Params Params
	// Resume, when non-empty, resurrects the node from this checkpoint in
	// the shared store instead of starting fresh.
	Resume string
	// Timeout bounds the node's run (default 2m).
	Timeout time.Duration
	// Stdout receives process output (default: discard).
	Stdout io.Writer
	// Fault, when set, wraps the worker's link with the frame-level fault
	// injector (tests only).
	Fault *transport.FaultSpec
	// RetryBase overrides the client reconnect backoff (tests).
	RetryBase time.Duration
}

// RunWorker hosts one grid node in this OS process: a single-node
// cluster.Engine whose router uplinks to the coordinator and whose
// checkpoint store is served remotely. It reports every terminal node
// state to the coordinator and returns this node's own final state.
func RunWorker(cfg WorkerConfig) (*cluster.ProcState, error) {
	return workload.RunWorker(W{}, workload.WorkerConfig{
		Join: cfg.Join, Node: cfg.Node, Params: fromParams(cfg.Params),
		Resume: cfg.Resume, Timeout: cfg.Timeout, Stdout: cfg.Stdout,
		Fault: cfg.Fault, RetryBase: cfg.RetryBase,
	})
}

// SpawnFunc launches a worker process for a node; resume is empty for a
// fresh start or a checkpoint name for a resurrection.
type SpawnFunc = workload.SpawnFunc

// DistributedConfig configures the coordinator side of a distributed run.
type DistributedConfig struct {
	// Listen is the hub's listen address (default "127.0.0.1:0").
	Listen string
	// Store backs the shared checkpoint store (default in-memory; real
	// deployments pass a cluster.DirStore on the shared mount).
	Store migrate.Store
	// Spawn launches workers. When nil, the coordinator spawns nothing
	// and waits for externally started workers to join (gridrun
	// -coordinator); a failure plan then cannot resurrect and is
	// rejected.
	Spawn SpawnFunc
	// Logf, when set, receives coordinator progress lines.
	Logf func(format string, args ...any)
}

// RunDistributed executes the grid application across worker processes
// joined through a TCP hub, optionally injecting one node failure (kill
// the worker, resurrect a fresh process from the shared checkpoint
// store), and returns the aggregated result. The caller compares
// Result.Checksums against Reference(p), exactly as with Run.
func RunDistributed(p Params, fail *FailurePlan, cfg DistributedConfig, timeout time.Duration) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if fail != nil && cfg.Spawn == nil {
		return nil, errors.New("grid: a failure plan needs a spawner to resurrect the node")
	}
	res, err := workload.RunDistributed(W{}, fromParams(p), fail.Script(), workload.DistributedConfig{
		Listen: cfg.Listen, Store: cfg.Store, Spawn: cfg.Spawn, Logf: cfg.Logf,
	}, timeout)
	if err != nil {
		return nil, err
	}
	return toResult(p, res)
}
