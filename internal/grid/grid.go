// Package grid implements the paper's motivating application (§2,
// Figure 2): a 2D grid computation (Jacobi-style heat diffusion) with
// row-wise domain decomposition, border exchange over the message-passing
// layer, and a speculative main loop that commits and checkpoints every
// checkpoint_interval steps. The per-node program is written in MojC and
// compiled by the MCC frontend — the paper's point is precisely that the
// fault-tolerance annotations are a handful of language primitives.
//
// The package also provides a sequential Go reference implementation that
// replays the identical floating-point operations, so a cluster run —
// with or without injected failures — can be verified bit-exactly.
package grid

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/lang"
	"repro/internal/rt"
)

// Params describes one grid experiment.
type Params struct {
	// Nodes is the number of compute processes (row strips).
	Nodes int
	// RowsPerNode and Cols fix each node's local domain.
	RowsPerNode int
	Cols        int
	// Steps is the number of timesteps.
	Steps int
	// CheckpointInterval is the paper's checkpoint_interval: commit +
	// checkpoint every this many steps.
	CheckpointInterval int
	// Workers bounds how many node quanta execute concurrently on the
	// simulated cluster (0 = one goroutine per node, unbounded). The
	// result is bit-identical for every worker count: each node's
	// floating-point op order is fixed and border exchange is keyed and
	// idempotent, so parallelism only changes wall-clock time.
	Workers int
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Nodes < 1:
		return fmt.Errorf("grid: need at least one node, have %d", p.Nodes)
	case p.RowsPerNode < 1 || p.Cols < 3:
		return fmt.Errorf("grid: local domain %dx%d too small", p.RowsPerNode, p.Cols)
	case p.Steps < 1:
		return fmt.Errorf("grid: need at least one step, have %d", p.Steps)
	case p.CheckpointInterval < 1:
		return fmt.Errorf("grid: checkpoint interval %d must be positive", p.CheckpointInterval)
	case p.Workers < 0:
		return fmt.Errorf("grid: worker count %d must be non-negative", p.Workers)
	}
	return nil
}

// Source is the per-node MojC program: Figure 2's simplified speculative
// main loop, complete. Arguments: getarg(0)=nodes, 1=rows, 2=cols,
// 3=timesteps, 4=checkpoint_interval. The node id comes from node_id(),
// the checkpoint target string from ck_name() (both externs).
const Source = `
// Deterministic initial condition for global row gr, column j.
float initial(int gr, int j) {
	return float((gr * 31 + j * 17) % 100);
}

// Fill u (including ghost rows) for this node's strip.
void init_grid(fptr u, int rows, int cols, int me) {
	for (int i = 0; i < rows + 2; i += 1) {
		int gr = me * rows + i - 1;
		for (int j = 0; j < cols; j += 1) {
			u[i * cols + j] = initial(gr, j);
		}
	}
}

// Exchange border rows with the neighbours for this timestep. Returns the
// message status: 0 ok, 1 MSG_ROLL (a failure requires rollback), 2 the
// run is shutting down.
int get_borders(fptr u, int rows, int cols, int me, int nodes, int step) {
	// Sends are buffered and idempotent; post them all first.
	if (me > 0) {
		int s1 = msg_send(me - 1, step, u, cols, cols); // my top real row
		if (s1 != 0) { return s1; }
	}
	if (me < nodes - 1) {
		int s2 = msg_send(me + 1, step, u, rows * cols, cols); // my bottom real row
		if (s2 != 0) { return s2; }
	}
	if (me > 0) {
		int r1 = msg_recv(me - 1, step, u, 0, cols); // into top ghost row
		if (r1 != 0) { return r1; }
	}
	if (me < nodes - 1) {
		int r2 = msg_recv(me + 1, step, u, (rows + 1) * cols, cols); // bottom ghost
		if (r2 != 0) { return r2; }
	}
	return 0;
}

// One Jacobi relaxation step: v gets the 4-neighbour average of u; global
// boundary cells are held fixed.
void do_computation(fptr u, fptr v, int rows, int cols, int me, int nodes) {
	for (int i = 1; i <= rows; i += 1) {
		for (int j = 0; j < cols; j += 1) {
			int boundary = 0;
			if (me == 0 && i == 1) { boundary = 1; }
			if (me == nodes - 1 && i == rows) { boundary = 1; }
			if (j == 0 || j == cols - 1) { boundary = 1; }
			if (boundary == 1) {
				v[i * cols + j] = u[i * cols + j];
			} else {
				v[i * cols + j] = 0.25 * (u[(i - 1) * cols + j] + u[(i + 1) * cols + j]
					+ u[i * cols + j - 1] + u[i * cols + j + 1]);
			}
		}
	}
}

// Checksum over the real rows, scaled to an integer exit code.
int checksum(fptr u, int rows, int cols) {
	float sum = 0.0;
	for (int i = 1; i <= rows; i += 1) {
		for (int j = 0; j < cols; j += 1) {
			sum += u[i * cols + j];
		}
	}
	return int(sum / float(rows * cols) * 1000.0);
}

int main() {
	int nodes = getarg(0);
	int rows = getarg(1);
	int cols = getarg(2);
	int timesteps = getarg(3);
	int checkpoint_interval = getarg(4);
	int me = node_id();

	fptr u = falloc((rows + 2) * cols);
	fptr v = falloc((rows + 2) * cols);
	init_grid(u, rows, cols, me);
	init_grid(v, rows, cols, me);

	// Figure 2's simplified speculative main loop.
	int specid = speculate();
	int step = 1;
	while (step <= timesteps) {
		/* Get boundary values from neighbors. May have to rollback. */
		int err = get_borders(u, rows, cols, me, nodes, step);
		if (err == 1) {
			retry(specid); // MSG_ROLL: roll back to the last speculation
		}
		if (err == 2) {
			return -1; // shutdown
		}
		/* Perform the computation. */
		do_computation(u, v, rows, cols, me, nodes);
		fptr tmp = u;
		u = v;
		v = tmp;
		/* Save a checkpoint if it's time. */
		if (step % checkpoint_interval == 0) {
			commit(specid);            /* Save the current speculation */
			ptr name = ck_name();
			migrate(name);             /* Save checkpoint to file */
			msg_gc(step);              /* Borders before this step are dead */
			specid = speculate();      /* Start a new speculation */
		}
		step += 1;
	}
	commit(specid);
	return checksum(u, rows, cols);
}
`

// ExternSigs returns the extern signatures the grid program compiles
// against: cluster externs plus ck_name.
func ExternSigs() map[string]fir.ExternSig {
	sigs := cluster.Externs()
	sigs["ck_name"] = fir.ExternSig{Result: fir.TyPtr}
	return sigs
}

// CompileProgram compiles the grid source once; the same program runs on
// every node (SPMD).
func CompileProgram() (*fir.Program, error) {
	return lang.Compile(Source, ExternSigs())
}

// NodeArgs builds the process arguments for a node.
func (p Params) NodeArgs() []int64 {
	return []int64{int64(p.Nodes), int64(p.RowsPerNode), int64(p.Cols), int64(p.Steps), int64(p.CheckpointInterval)}
}

// CheckpointName is the shared-store name a node checkpoints to.
func CheckpointName(node int64) string { return fmt.Sprintf("grid-ck-%d", node) }

// CheckpointExtern builds the ck_name extern for a node: the target
// string its migrate pseudo-instruction checkpoints to.
func CheckpointExtern(node int64) rt.Registry {
	target := "checkpoint://" + CheckpointName(node)
	return rt.Registry{
		"ck_name": {
			Sig: fir.ExternSig{Result: fir.TyPtr},
			Fn: func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
				return r.Heap().AllocString(target)
			},
		},
	}
}

// refCache memoizes Reference per parameter set: the oracle is pure and
// every verification of the same configuration replays it. Cached slices
// are shared — callers treat the result as read-only.
var refCache sync.Map // Params -> []int64

// Reference runs the identical computation sequentially in Go, replaying
// the same floating-point operations in the same order, and returns the
// expected checksum (halt code) per node.
func Reference(p Params) []int64 {
	p.Workers = 0 // the oracle is independent of cluster parallelism
	if v, ok := refCache.Load(p); ok {
		return v.([]int64)
	}
	out := reference(p)
	refCache.Store(p, out)
	return out
}

func reference(p Params) []int64 {
	nodes, rows, cols := p.Nodes, p.RowsPerNode, p.Cols
	total := nodes * rows
	initial := func(gr, j int) float64 {
		v := (gr*31 + j*17) % 100
		if v < 0 {
			v += 100 // mirror MojC % semantics for negative gr (gr=-1 ghost)
		}
		_ = v
		return float64((gr*31 + j*17) % 100)
	}
	// Global grid with one ghost row above and below (initialised like the
	// per-node ghosts so step-1 edge reads match).
	u := make([][]float64, total+2)
	v := make([][]float64, total+2)
	for i := range u {
		u[i] = make([]float64, cols)
		v[i] = make([]float64, cols)
		for j := 0; j < cols; j++ {
			u[i][j] = initial(i-1, j)
			v[i][j] = initial(i-1, j)
		}
	}
	for step := 1; step <= p.Steps; step++ {
		for gi := 1; gi <= total; gi++ {
			for j := 0; j < cols; j++ {
				boundary := gi == 1 || gi == total || j == 0 || j == cols-1
				if boundary {
					v[gi][j] = u[gi][j]
				} else {
					v[gi][j] = 0.25 * (u[gi-1][j] + u[gi+1][j] + u[gi][j-1] + u[gi][j+1])
				}
			}
		}
		u, v = v, u
	}
	out := make([]int64, nodes)
	for n := 0; n < nodes; n++ {
		sum := 0.0
		for i := 1; i <= rows; i++ {
			gi := n*rows + i
			for j := 0; j < cols; j++ {
				sum += u[gi][j]
			}
		}
		out[n] = int64(sum / float64(rows*cols) * 1000.0)
	}
	return out
}
