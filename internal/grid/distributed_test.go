package grid

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// goSpawn runs workers as goroutines against a real loopback hub —
// process-shaped in every way that matters (own router, own engine, own
// TCP connection) but cheap enough for unit tests.
func goSpawn(t *testing.T, p Params, fault func(node int64) *transport.FaultSpec) SpawnFunc {
	t.Helper()
	return func(join string, node int64, resume string) error {
		go func() {
			cfg := WorkerConfig{
				Join: join, Node: node, Params: p, Resume: resume,
				Timeout: time.Minute, RetryBase: 5 * time.Millisecond,
			}
			if fault != nil {
				cfg.Fault = fault(node)
			}
			if _, err := RunWorker(cfg); err != nil && err != ErrNodeFailed {
				t.Errorf("worker %d (resume %q): %v", node, resume, err)
			}
		}()
		return nil
	}
}

func assertReference(t *testing.T, p Params, res *Result) {
	t.Helper()
	want := Reference(p)
	for n := range want {
		if res.Checksums[n] != want[n] {
			t.Errorf("node %d checksum %d, want %d (bit-exact reference)", n, res.Checksums[n], want[n])
		}
	}
}

// TestDistributedMatchesReference: the grid application over the TCP
// transport produces checksums bit-identical to the sequential reference
// (and therefore to the in-process engine).
func TestDistributedMatchesReference(t *testing.T) {
	p := Params{Nodes: 3, RowsPerNode: 4, Cols: 8, Steps: 12, CheckpointInterval: 4}
	res, err := RunDistributed(p, nil, DistributedConfig{Spawn: goSpawn(t, p, nil)}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	assertReference(t, p, res)
	if res.Rollbacks != 0 || res.Resurrections != 0 {
		t.Fatalf("failure-free run saw %d rollbacks, %d resurrections", res.Rollbacks, res.Resurrections)
	}
}

// TestDistributedFailureResurrects: kill a worker after its second
// checkpoint, resurrect a fresh process from the shared store, and still
// match the reference bit-exactly; survivors must have rolled back.
func TestDistributedFailureResurrects(t *testing.T) {
	p := Params{Nodes: 3, RowsPerNode: 4, Cols: 8, Steps: 16, CheckpointInterval: 4}
	fail := &FailurePlan{Node: 1, AfterCheckpoints: 2, RestartDelay: 20 * time.Millisecond}
	res, err := RunDistributed(p, fail, DistributedConfig{Spawn: goSpawn(t, p, nil)}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	assertReference(t, p, res)
	if res.Resurrections != 1 {
		t.Fatalf("resurrections = %d, want 1", res.Resurrections)
	}
	if res.Rollbacks == 0 {
		t.Fatal("survivors never observed MSG_ROLL")
	}
}

// TestDistributedDupReorderConverges: every worker's link duplicates
// every border message and reorders each step's send burst; keyed
// idempotent delivery makes the result bit-identical anyway.
func TestDistributedDupReorderConverges(t *testing.T) {
	p := Params{Nodes: 3, RowsPerNode: 4, Cols: 8, Steps: 12, CheckpointInterval: 4}
	var mu sync.Mutex
	specs := make(map[int64]*transport.FaultSpec)
	fault := func(node int64) *transport.FaultSpec {
		mu.Lock()
		defer mu.Unlock()
		if specs[node] == nil {
			specs[node] = &transport.FaultSpec{
				Dup:           func(src, dst, tag int64, occ int) bool { return true },
				ReorderWindow: 2,
			}
		}
		return specs[node]
	}
	res, err := RunDistributed(p, nil, DistributedConfig{Spawn: goSpawn(t, p, fault)}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	assertReference(t, p, res)
	mu.Lock()
	defer mu.Unlock()
	duped := 0
	for _, s := range specs {
		duped += s.Duplicated()
	}
	if duped == 0 {
		t.Fatal("fault injector never duplicated a frame; the test proved nothing")
	}
}

// tagged reports whether tags contains tag.
func tagged(tags []int64, tag int64) bool {
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

// TestDistributedDropRecoversViaRoll: drop the first transmission of one
// border message. The receiver wedges waiting for it — exactly the state
// an undetected message loss would leave a real cluster in — until the
// failure detector kills the sender; the MSG_ROLL broadcast rolls the
// receiver back, the sender's resurrected incarnation re-executes from
// its checkpoint and re-sends the dropped border, and the run converges
// to the reference result.
func TestDistributedDropRecoversViaRoll(t *testing.T) {
	p := Params{Nodes: 2, RowsPerNode: 4, Cols: 8, Steps: 12, CheckpointInterval: 4}
	// Tag 6 is inside the second speculation interval (checkpoint at 4),
	// so the resurrected node re-executes step 6 and re-sends the border.
	spec := &transport.FaultSpec{
		Drop: func(src, dst, tag int64, occ int) bool {
			return src == 0 && dst == 1 && tag == 6 && occ == 1
		},
	}

	hub, err := transport.Listen("127.0.0.1:0", cluster.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	fault := func(node int64) *transport.FaultSpec {
		if node == 0 {
			return spec
		}
		return nil
	}
	spawn := goSpawn(t, p, fault)
	for n := int64(0); n < int64(p.Nodes); n++ {
		if err := spawn(hub.Addr(), n, ""); err != nil {
			t.Fatal(err)
		}
	}

	// Wait until the drop has happened. Node 0's step-4 checkpoint is
	// causally before its step-6 send, so the shared store already holds
	// the image the resurrection needs.
	deadline := time.Now().Add(30 * time.Second)
	for spec.Dropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if spec.Dropped() == 0 {
		t.Fatal("the drop never triggered")
	}
	if _, err := hub.Store().Get(CheckpointName(0)); err != nil {
		t.Fatalf("checkpoint missing at drop time: %v", err)
	}

	// Wait until the receiver has wedged on the lost border: grid sends
	// both borders before receiving, so once the hub buffers node 1's own
	// step-6 border for node 0, node 1 is parked in its step-6 receive of
	// the frame the injector dropped — it has nowhere else to go.
	for deadline := time.Now().Add(30 * time.Second); ; {
		if tagged(hub.BufferedTags(0, 1), 6) {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("receiver never reached the wedge point (hub buffers %v)", hub.BufferedTags(0, 1))
		}
		time.Sleep(time.Millisecond)
	}

	// Play failure detector: kill node 0, wait for the kill to actually
	// tear down its session (the event the old sleep guessed at), then
	// resurrect it from the shared store. The replacement worker runs
	// without the fault injector.
	hub.Fail(0)
	for deadline := time.Now().Add(30 * time.Second); hub.HasSession(0); {
		if !time.Now().Before(deadline) {
			t.Fatal("failed node's session never closed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := goSpawn(t, p, nil)(hub.Addr(), 0, CheckpointName(0)); err != nil {
		t.Fatal(err)
	}

	results, err := hub.WaitResults(p.Nodes, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(p)
	for n := range want {
		res, ok := results[int64(n)]
		if !ok || res.Halt != want[n] {
			t.Errorf("node %d: result %+v, want halt %d", n, res, want[n])
		}
	}
	if results[1].Rolls == 0 {
		t.Fatal("the wedged receiver never rolled back; the drop was not exercised")
	}
}
