package grid

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fir"
	"repro/internal/migrate"
	"repro/internal/rt"
)

// FailurePlan injects one node failure: kill Node after it has written
// AfterCheckpoints checkpoints, then resurrect it from its latest
// checkpoint after RestartDelay (the time a failure detector plus
// resurrection daemon would need).
type FailurePlan struct {
	Node             int64
	AfterCheckpoints int
	RestartDelay     time.Duration
}

// Result summarizes a cluster run of the grid application.
type Result struct {
	// Checksums holds each node's halt code.
	Checksums []int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Rollbacks is the number of MSG_ROLL deliveries (survivor rollbacks).
	Rollbacks uint64
	// Resurrections counts checkpoint restores performed.
	Resurrections int
}

// observableStore wraps a checkpoint store with a put callback, used to
// trigger failure injection at checkpoint boundaries.
type observableStore struct {
	migrate.Store
	mu    sync.Mutex
	onPut func(name string, count int)
	puts  map[string]int
}

func (s *observableStore) Put(name string, data []byte) error {
	if err := s.Store.Put(name, data); err != nil {
		return err
	}
	s.mu.Lock()
	if s.puts == nil {
		s.puts = make(map[string]int)
	}
	s.puts[name]++
	n := s.puts[name]
	cb := s.onPut
	s.mu.Unlock()
	if cb != nil {
		cb(name, n)
	}
	return nil
}

// Run executes the grid application on a simulated cluster, optionally
// injecting a failure, and verifies nothing is left running. The caller
// compares Result.Checksums against Reference(p).
func Run(p Params, fail *FailurePlan, timeout time.Duration) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	prog, err := CompileProgram()
	if err != nil {
		return nil, err
	}
	return RunProgram(prog, p, fail, timeout)
}

// RunProgram is Run with a pre-compiled program (benchmarks reuse one).
func RunProgram(prog *fir.Program, p Params, fail *FailurePlan, timeout time.Duration) (*Result, error) {
	base := cluster.NewMemStore()
	store := &observableStore{Store: base}
	c := cluster.New(cluster.Config{Store: store, Workers: p.Workers})
	defer c.Close()

	ckExtern := CheckpointExtern

	failOnce := sync.Once{}
	resurrected := make(chan error, 1)
	res := &Result{}
	if fail != nil {
		want := CheckpointName(fail.Node)
		store.onPut = func(name string, count int) {
			if name != want || count < fail.AfterCheckpoints {
				return
			}
			failOnce.Do(func() {
				c.Fail(fail.Node)
				go func() {
					time.Sleep(fail.RestartDelay)
					res.Resurrections++
					resurrected <- c.Resurrect(fail.Node, want, ckExtern(fail.Node))
				}()
			})
		}
	}

	start := time.Now()
	for n := int64(0); n < int64(p.Nodes); n++ {
		if err := c.StartProcess(n, prog, p.NodeArgs(), ckExtern(n)); err != nil {
			return nil, fmt.Errorf("grid: starting node %d: %w", n, err)
		}
	}
	states, err := c.Wait(timeout)
	res.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}
	if fail != nil {
		select {
		case rerr := <-resurrected:
			if rerr != nil {
				return nil, fmt.Errorf("grid: resurrection failed: %w", rerr)
			}
		default:
			// Failure never triggered (run too short for the plan).
			return nil, fmt.Errorf("grid: failure plan never triggered (node %d, after %d checkpoints)", fail.Node, fail.AfterCheckpoints)
		}
	}

	res.Checksums = make([]int64, p.Nodes)
	for n := int64(0); n < int64(p.Nodes); n++ {
		st, ok := states[n]
		if !ok {
			return nil, fmt.Errorf("grid: node %d has no final state", n)
		}
		if st.Killed {
			return nil, fmt.Errorf("grid: node %d still marked killed at exit", n)
		}
		if st.Status != rt.StatusHalted {
			return nil, fmt.Errorf("grid: node %d finished %s (err: %v)", n, st.Status, st.Err)
		}
		res.Checksums[n] = st.Halt
	}
	res.Rollbacks = c.Router.Stats().Rolls
	return res, nil
}
