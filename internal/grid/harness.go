package grid

import (
	"fmt"
	"time"

	"repro/internal/fir"
	"repro/internal/rt"
	"repro/internal/workload"
)

// FailurePlan injects one node failure: kill Node after it has written
// AfterCheckpoints checkpoints, then resurrect it from its latest
// checkpoint after RestartDelay (the time a failure detector plus
// resurrection daemon would need). It is the single-event sugar over
// workload.FaultScript.
type FailurePlan struct {
	Node             int64
	AfterCheckpoints int
	RestartDelay     time.Duration
}

// Script converts the plan to the general fault-script form.
func (f *FailurePlan) Script() *workload.FaultScript {
	if f == nil {
		return nil
	}
	return workload.OneFailure(f.Node, f.AfterCheckpoints, f.RestartDelay)
}

// Result summarizes a cluster run of the grid application.
type Result struct {
	// Checksums holds each node's halt code.
	Checksums []int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Rollbacks is the number of MSG_ROLL deliveries (survivor rollbacks).
	Rollbacks uint64
	// Resurrections counts checkpoint restores performed.
	Resurrections int
}

// toResult reshapes a generic workload result into the grid's form,
// requiring every node to have halted.
func toResult(p Params, res *workload.Result) (*Result, error) {
	out := &Result{
		Elapsed:       res.Elapsed,
		Rollbacks:     res.Rollbacks,
		Resurrections: res.Resurrections,
		Checksums:     make([]int64, p.Nodes),
	}
	for n := int64(0); n < int64(p.Nodes); n++ {
		st, ok := res.Nodes[n]
		if !ok {
			return nil, fmt.Errorf("grid: node %d has no final state", n)
		}
		if st.Status != rt.StatusHalted {
			return nil, fmt.Errorf("grid: node %d finished %s (err: %s)", n, st.Status, st.Err)
		}
		out.Checksums[n] = st.Halt
	}
	return out, nil
}

// Run executes the grid application on a simulated cluster, optionally
// injecting a failure, and verifies nothing is left running. The caller
// compares Result.Checksums against Reference(p).
func Run(p Params, fail *FailurePlan, timeout time.Duration) (*Result, error) {
	return RunProgram(nil, p, fail, timeout)
}

// RunProgram is Run with a pre-compiled program (benchmarks reuse one);
// a nil prog compiles fresh. Both are thin wrappers over the generic
// workload harness — the grid is simply the first registered workload.
func RunProgram(prog *fir.Program, p Params, fail *FailurePlan, timeout time.Duration) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res, err := workload.Run(W{}, fromParams(p), workload.RunConfig{
		Script:  fail.Script(),
		Timeout: timeout,
		Program: prog,
		// Pin the engine's historical dispatch quantum: the generic runner
		// otherwise shrinks it under fault scripts (so kills land inside
		// small programs), which would shift the grid recovery benchmarks'
		// measurement conditions across commits. Grid steps are large
		// enough that kills always land at 20k.
		Quantum: 20_000,
	})
	if err != nil {
		return nil, err
	}
	return toResult(p, res)
}
