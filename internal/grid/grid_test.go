package grid

import (
	"testing"
	"time"
)

func params(nodes, rows, cols, steps, ck int) Params {
	return Params{Nodes: nodes, RowsPerNode: rows, Cols: cols, Steps: steps, CheckpointInterval: ck}
}

func TestValidate(t *testing.T) {
	good := params(2, 4, 8, 10, 5)
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate(%+v): %v", good, err)
	}
	for _, bad := range []Params{
		params(0, 4, 8, 10, 5),
		params(2, 0, 8, 10, 5),
		params(2, 4, 2, 10, 5),
		params(2, 4, 8, 0, 5),
		params(2, 4, 8, 10, 0),
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", bad)
		}
	}
}

func TestCompileProgram(t *testing.T) {
	if _, err := CompileProgram(); err != nil {
		t.Fatalf("CompileProgram: %v", err)
	}
}

func TestSingleNodeMatchesReference(t *testing.T) {
	p := params(1, 6, 8, 12, 4)
	res, err := Run(p, nil, 60*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := Reference(p)
	if res.Checksums[0] != want[0] {
		t.Fatalf("checksum = %d, want %d", res.Checksums[0], want[0])
	}
}

func TestMultiNodeMatchesReference(t *testing.T) {
	p := params(3, 4, 8, 12, 4)
	res, err := Run(p, nil, 120*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := Reference(p)
	for n := range want {
		if res.Checksums[n] != want[n] {
			t.Fatalf("node %d checksum = %d, want %d (all: got %v want %v)",
				n, res.Checksums[n], want[n], res.Checksums, want)
		}
	}
}

func TestFourNodesLongerRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long grid run")
	}
	p := params(4, 5, 10, 24, 6)
	res, err := Run(p, nil, 120*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := Reference(p)
	for n := range want {
		if res.Checksums[n] != want[n] {
			t.Fatalf("node %d checksum = %d, want %d", n, res.Checksums[n], want[n])
		}
	}
}

// TestWorkersMatchReference pins the parallel engine's headline
// guarantee: a bounded worker pool of any width — including width 1,
// where a node parked in a border receive must lend its slot to the node
// that will send to it — produces checksums bit-identical to the
// sequential Go reference, with and without an injected failure.
func TestWorkersMatchReference(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := params(3, 4, 8, 12, 4)
		p.Workers = workers
		res, err := Run(p, nil, 120*time.Second)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := Reference(p)
		for n := range want {
			if res.Checksums[n] != want[n] {
				t.Fatalf("workers=%d node %d checksum = %d, want %d", workers, n, res.Checksums[n], want[n])
			}
		}
	}
	p := params(3, 4, 8, 16, 4)
	p.Workers = 2
	fail := &FailurePlan{Node: 1, AfterCheckpoints: 1, RestartDelay: 20 * time.Millisecond}
	res, err := Run(p, fail, 120*time.Second)
	if err != nil {
		t.Fatalf("workers=2 with failure: %v", err)
	}
	want := Reference(p)
	for n := range want {
		if res.Checksums[n] != want[n] {
			t.Fatalf("workers=2 failure run: node %d checksum = %d, want %d", n, res.Checksums[n], want[n])
		}
	}
}

// TestFailureRecoveryMatchesReference is the paper's headline behaviour
// (Figure 2): kill a node mid-run, resurrect it from its checkpoint on
// another (virtual) machine, survivors roll back their last speculation —
// and the final answer is bit-identical to the failure-free run.
func TestFailureRecoveryMatchesReference(t *testing.T) {
	p := params(3, 4, 8, 20, 4)
	fail := &FailurePlan{Node: 1, AfterCheckpoints: 2, RestartDelay: 30 * time.Millisecond}
	res, err := Run(p, fail, 120*time.Second)
	if err != nil {
		t.Fatalf("Run with failure: %v", err)
	}
	want := Reference(p)
	for n := range want {
		if res.Checksums[n] != want[n] {
			t.Fatalf("node %d checksum = %d, want %d (failure corrupted the computation)",
				n, res.Checksums[n], want[n])
		}
	}
	if res.Resurrections != 1 {
		t.Fatalf("resurrections = %d, want 1", res.Resurrections)
	}
	if res.Rollbacks == 0 {
		t.Fatal("no MSG_ROLL deliveries: survivors never rolled back")
	}
}

func TestFailureOfEdgeNode(t *testing.T) {
	if testing.Short() {
		t.Skip("long grid run")
	}
	p := params(3, 4, 8, 16, 4)
	fail := &FailurePlan{Node: 0, AfterCheckpoints: 1, RestartDelay: 20 * time.Millisecond}
	res, err := Run(p, fail, 120*time.Second)
	if err != nil {
		t.Fatalf("Run with failure: %v", err)
	}
	want := Reference(p)
	for n := range want {
		if res.Checksums[n] != want[n] {
			t.Fatalf("node %d checksum = %d, want %d", n, res.Checksums[n], want[n])
		}
	}
}

func TestReferenceDeterministic(t *testing.T) {
	p := params(2, 4, 6, 10, 5)
	a := Reference(p)
	b := Reference(p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reference not deterministic: %v vs %v", a, b)
		}
	}
}

func TestCheckpointNameDistinct(t *testing.T) {
	if CheckpointName(0) == CheckpointName(1) {
		t.Fatal("checkpoint names collide")
	}
}
