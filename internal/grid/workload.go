package grid

import (
	"repro/internal/fir"
	"repro/internal/rt"
	"repro/internal/workload"
)

// W is the grid application as a registered workload: the paper's §2
// Jacobi heat-diffusion grid, adapted onto the generic workload
// interface. internal/workload/apps registers it under "grid".
//
// Parameter mapping: Size = rows per node, Aux = columns.
type W struct{}

// Name implements workload.Workload.
func (W) Name() string { return "grid" }

// Description implements workload.Workload.
func (W) Description() string {
	return "the paper's §2 grid computation: Jacobi heat diffusion, row strips, border exchange (Size=rows/node, Aux=cols)"
}

// Defaults implements workload.Workload.
func (W) Defaults() workload.Params {
	return workload.Params{Nodes: 3, Size: 4, Aux: 8, Steps: 20, CheckpointInterval: 4}
}

// params converts generic parameters to the grid's own.
func (W) params(p workload.Params) Params {
	return Params{
		Nodes: p.Nodes, RowsPerNode: p.Size, Cols: p.Aux,
		Steps: p.Steps, CheckpointInterval: p.CheckpointInterval,
		Workers: p.Workers,
	}
}

// fromParams converts grid parameters to the generic form.
func fromParams(p Params) workload.Params {
	return workload.Params{
		Nodes: p.Nodes, Size: p.RowsPerNode, Aux: p.Cols,
		Steps: p.Steps, CheckpointInterval: p.CheckpointInterval,
		Workers: p.Workers,
	}
}

// Validate implements workload.Workload.
func (w W) Validate(p workload.Params) error { return w.params(p).Validate() }

// Program implements workload.Workload.
func (W) Program(p workload.Params) (*fir.Program, error) { return CompileProgram() }

// NodeArgs implements workload.Workload.
func (w W) NodeArgs(p workload.Params) []int64 { return w.params(p).NodeArgs() }

// StartNodes implements workload.Workload.
func (W) StartNodes(p workload.Params) []int64 { return workload.Range(p.Nodes) }

// SpareNodes implements workload.Workload.
func (W) SpareNodes(p workload.Params) []int64 { return nil }

// CheckpointName implements workload.Workload.
func (W) CheckpointName(node int64) string { return CheckpointName(node) }

// Externs implements workload.Workload.
func (W) Externs(p workload.Params, node int64) rt.Registry { return CheckpointExtern(node) }

// Reference implements workload.Workload.
func (w W) Reference(p workload.Params) map[int64]int64 {
	ref := Reference(w.params(p))
	out := make(map[int64]int64, len(ref))
	for n, v := range ref {
		out[int64(n)] = v
	}
	return out
}

// Verify implements workload.Workload.
func (w W) Verify(p workload.Params, nodes map[int64]workload.NodeResult) error {
	return workload.VerifyHalted(w.Reference(p), nodes)
}
