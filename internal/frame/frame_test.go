package frame

import (
	"bytes"
	"encoding/binary"
	"io"
	"runtime"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xab}, 1<<20),
	}
	for _, p := range payloads {
		if err := Write(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func TestReadRejectsOversizedHeader(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, err := Read(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("want error for frame above MaxPayload")
	}
}

// TestBogusHeaderDoesNotPreallocate is the regression test for the
// allocation hazard: a header advertising a huge (but in-cap) payload with
// no bytes behind it must fail with ErrUnexpectedEOF without the reader
// ever allocating the advertised size.
func TestBogusHeaderDoesNotPreallocate(t *testing.T) {
	var hdr [4]byte
	const advertised = 200 << 20 // under the 256 MiB cap
	binary.BigEndian.PutUint32(hdr[:], advertised)
	body := strings.Repeat("z", 4096) // far fewer bytes than advertised

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := Read(io.MultiReader(bytes.NewReader(hdr[:]), strings.NewReader(body)))
	runtime.ReadMemStats(&after)

	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want %v", err, io.ErrUnexpectedEOF)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > advertised/4 {
		t.Fatalf("reader allocated %d bytes for a %d-byte lie backed by %d real bytes",
			grew, advertised, len(body))
	}
}

func TestReadLimitTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(trunc)); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want %v", err, io.ErrUnexpectedEOF)
	}
}

func TestConn(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteFrame([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
}

// BenchmarkWrite measures the framing hot path (-benchmem documents the
// pooled write-combining: one staged write, no per-frame allocation).
func BenchmarkWrite(b *testing.B) {
	payload := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Write(io.Discard, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundTrip measures a write+read cycle through an in-memory
// pipe buffer — the transport's per-message cost floor.
func BenchmarkRoundTrip(b *testing.B) {
	payload := make([]byte, 4096)
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Write(&buf, payload); err != nil {
			b.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(payload) {
			b.Fatalf("read %d bytes, want %d", len(got), len(payload))
		}
	}
}
