// Package frame implements the length-prefixed framing every TCP protocol
// in this repository speaks: the migration sessions of internal/migrate
// (§4.2.2's two-phase transfer) and the distributed cluster transport of
// internal/transport. A frame is a 4-byte big-endian length followed by
// that many payload bytes.
//
// ReadFrame never trusts the length prefix: the payload is read through a
// limited, chunk-growing copy, so a bogus or hostile header can at most
// make the reader wait for bytes that never arrive — it cannot make the
// process allocate the advertised size up front.
package frame

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// MaxPayload is the default frame-size cap (256 MiB), chosen to fit the
// largest realistic process image (a multi-MiB heap snapshot) with a wide
// margin.
const MaxPayload = 256 << 20

// initialChunk bounds the first allocation of a read: the buffer grows
// geometrically from here as payload bytes actually arrive.
const initialChunk = 64 << 10

// combineLimit bounds the write-combining copy: payloads up to this size
// are staged with their header in one pooled buffer and written with a
// single Write call (one syscall on a net.Conn); larger payloads are
// written header-then-payload to avoid copying megabyte images.
const combineLimit = 64 << 10

// writeBufs pools the write-combining scratch. Message frames on the
// transport hot path are small and frequent; without the pool every send
// paid a header write plus a payload write, and callers that built a
// combined buffer themselves allocated per frame.
var writeBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4+combineLimit)
		return &b
	},
}

// Write writes one length-prefixed frame.
func Write(w io.Writer, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("frame: payload of %d bytes exceeds limit", len(payload))
	}
	if len(payload) <= combineLimit {
		bp := writeBufs.Get().(*[]byte)
		buf := (*bp)[:4]
		binary.BigEndian.PutUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
		_, err := w.Write(buf)
		*bp = buf[:0]
		writeBufs.Put(bp)
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Read reads one length-prefixed frame, rejecting payloads larger than
// MaxPayload.
func Read(r io.Reader) ([]byte, error) {
	return ReadLimit(r, MaxPayload)
}

// ReadLimit reads one length-prefixed frame, rejecting payloads larger
// than max. Allocation is driven by the bytes that arrive, never by the
// header alone: the result starts at initialChunk and grows geometrically
// only as payload bytes land, reading directly into the result's spare
// capacity (no intermediate buffer, no per-read reader allocations).
func ReadLimit(r io.Reader, max uint32) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if uint32(n) > max {
		return nil, fmt.Errorf("frame: frame of %d bytes exceeds limit", n)
	}
	if n == 0 {
		return []byte{}, nil
	}
	first := n
	if first > initialChunk {
		first = initialChunk
	}
	out := make([]byte, 0, first)
	for len(out) < n {
		if len(out) == cap(out) {
			// Grow geometrically via append, then reclaim the length.
			out = append(out, 0)[:len(out)]
		}
		target := cap(out)
		if target > n {
			target = n
		}
		m, err := io.ReadFull(r, out[len(out):target])
		out = out[:len(out)+m]
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return out, nil
}

// Conn frames an underlying byte stream. It performs no locking: callers
// serialize writers themselves (reads and writes may proceed
// concurrently with each other).
type Conn struct {
	RW  io.ReadWriter
	Max uint32
}

// NewConn wraps rw with the default payload cap.
func NewConn(rw io.ReadWriter) *Conn { return &Conn{RW: rw, Max: MaxPayload} }

// ReadFrame reads the next frame.
func (c *Conn) ReadFrame() ([]byte, error) { return ReadLimit(c.RW, c.Max) }

// WriteFrame writes one frame.
func (c *Conn) WriteFrame(payload []byte) error { return Write(c.RW, payload) }
