// Package frame implements the length-prefixed framing every TCP protocol
// in this repository speaks: the migration sessions of internal/migrate
// (§4.2.2's two-phase transfer) and the distributed cluster transport of
// internal/transport. A frame is a 4-byte big-endian length followed by
// that many payload bytes.
//
// ReadFrame never trusts the length prefix: the payload is read through a
// limited, chunk-growing copy, so a bogus or hostile header can at most
// make the reader wait for bytes that never arrive — it cannot make the
// process allocate the advertised size up front.
package frame

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// MaxPayload is the default frame-size cap (256 MiB), chosen to fit the
// largest realistic process image (a multi-MiB heap snapshot) with a wide
// margin.
const MaxPayload = 256 << 20

// initialChunk bounds the first allocation of a read: the buffer grows
// geometrically from here as payload bytes actually arrive.
const initialChunk = 64 << 10

// Write writes one length-prefixed frame.
func Write(w io.Writer, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("frame: payload of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Read reads one length-prefixed frame, rejecting payloads larger than
// MaxPayload.
func Read(r io.Reader) ([]byte, error) {
	return ReadLimit(r, MaxPayload)
}

// ReadLimit reads one length-prefixed frame, rejecting payloads larger
// than max. Allocation is driven by the bytes that arrive, never by the
// header alone.
func ReadLimit(r io.Reader, max uint32) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > max {
		return nil, fmt.Errorf("frame: frame of %d bytes exceeds limit", n)
	}
	if n == 0 {
		return []byte{}, nil
	}
	grow := n
	if grow > initialChunk {
		grow = initialChunk
	}
	var buf bytes.Buffer
	buf.Grow(int(grow))
	copied, err := io.Copy(&buf, io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, err
	}
	if copied < int64(n) {
		return nil, io.ErrUnexpectedEOF
	}
	return buf.Bytes(), nil
}

// Conn frames an underlying byte stream. It performs no locking: callers
// serialize writers themselves (reads and writes may proceed
// concurrently with each other).
type Conn struct {
	RW  io.ReadWriter
	Max uint32
}

// NewConn wraps rw with the default payload cap.
func NewConn(rw io.ReadWriter) *Conn { return &Conn{RW: rw, Max: MaxPayload} }

// ReadFrame reads the next frame.
func (c *Conn) ReadFrame() ([]byte, error) { return ReadLimit(c.RW, c.Max) }

// WriteFrame writes one frame.
func (c *Conn) WriteFrame(payload []byte) error { return Write(c.RW, payload) }
