// Package vm implements the MCC interpreted runtime environment: it
// executes FIR programs against the runtime heap, wiring the speculate,
// commit, rollback and migrate pseudo-instructions to the speculation
// manager and the migration subsystem. It corresponds to the paper's
// "interpreted runtime environment" backend (§3); internal/risc provides
// the machine-code-style backend.
package vm

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/fir"
	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/ops"
	"repro/internal/rt"
	"repro/internal/spec"
)

// Status re-exports the backend-independent process status from rt.
type Status = rt.Status

// Status values (see rt for documentation).
const (
	StatusReady     = rt.StatusReady
	StatusRunning   = rt.StatusRunning
	StatusHalted    = rt.StatusHalted
	StatusMigrated  = rt.StatusMigrated
	StatusSuspended = rt.StatusSuspended
	StatusFailed    = rt.StatusFailed
)

// Errors returned by the interpreter.
var (
	ErrFuelExhausted = errors.New("vm: fuel exhausted")
	ErrNotRunning    = errors.New("vm: process is not running")
	ErrNoMigration   = errors.New("vm: no migration handler installed")
)

// RuntimeError is a trapped execution error: a failed safety check,
// arithmetic trap, or extern failure. When the process is inside a
// speculation and TrapSpeculation is enabled, a RuntimeError triggers an
// automatic rollback of the innermost level instead of killing the process
// (the exception-style use of speculations described in §2).
type RuntimeError struct {
	Fn  string
	Err error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("vm: runtime error in %s: %v", e.Fn, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// TrapC is the speculation status value c passed to a continuation when a
// level is rolled back by a trapped runtime error rather than an explicit
// rollback instruction.
const TrapC = 2

// Migration and extern types are shared across backends; see rt.
type (
	MigrateOutcome   = rt.MigrateOutcome
	MigrationRequest = rt.MigrationRequest
	MigrateHandler   = rt.MigrateHandler
	ExternFn         = rt.ExternFn
)

// Re-exported migration outcomes (see rt for documentation).
const (
	OutcomeContinueLocal = rt.OutcomeContinueLocal
	OutcomeMigrated      = rt.OutcomeMigrated
	OutcomeSuspended     = rt.OutcomeSuspended
)

// Config configures a new process.
type Config struct {
	// Heap configures the process heap.
	Heap heap.Config
	// Collector overrides the default generational policy.
	Collector heap.Collector
	// Stdout receives output from the print externs (default: discard).
	Stdout io.Writer
	// Fuel bounds the number of interpreter steps (0 = unlimited).
	Fuel uint64
	// TrapSpeculation turns trapped runtime errors inside a speculation
	// into automatic rollbacks of the innermost level with c = TrapC.
	TrapSpeculation bool
	// Name identifies the process in errors and logs.
	Name string
	// Args are process arguments readable through the getarg extern.
	Args []int64
	// Seed seeds the deterministic rand_int extern.
	Seed int64
	// Compiled, when set, is the precompiled slot code for the process's
	// program (Precompile); Start/StartAt then skip compilation. It is
	// ignored when it was built from a different program.
	Compiled *Compiled
}

// Process is one executing FIR program: the paper's unit of migration and
// speculation. All process state lives in the heap, the current frame, and
// the speculation manager — which is exactly what pack captures (the frame
// itself never crosses a pack boundary: the continuation and its arguments
// are written into the heap, so images stay frame-layout-independent).
//
// Execution runs on the slot-resolved core (slots.go): Start/StartAt
// compile the program to linear instructions whose variables are dense
// frame-slot indices, replacing the historical per-step name→value map.
type Process struct {
	name    string
	prog    *fir.Program
	h       *heap.Heap
	mgr     *spec.Manager
	externs rt.Registry
	migrate MigrateHandler

	compiled *Compiled
	fp       *frameProg
	frame    []heap.Value
	extVals  []rt.Extern // extern table resolved from fp.extNames
	pc       int
	curFn    string
	status   Status
	halt     int64
	err      error

	stdout io.Writer
	fuel   uint64 // remaining; only enforced when fuelCap is true
	fuelOn bool
	steps  uint64
	pins   []heap.Value
	args   []int64
	rng    uint64
	yield  bool

	// Hot-path scratch, reused across steps. Callees never retain these
	// slices (rt.ExternFn documents the contract); paths that hand values
	// to components that do retain them (speculation continuations,
	// migration handlers) copy into fresh slices.
	letbuf  [3]heap.Value
	argbuf  []heap.Value
	callbuf []heap.Value

	trapSpec bool
}

// NewProcess creates a process for prog. The program is not type-checked
// until Start, so externs can still be registered.
func NewProcess(prog *fir.Program, cfg Config) *Process {
	h := heap.New(cfg.Heap)
	if cfg.Collector != nil {
		h.SetCollector(cfg.Collector)
	} else {
		h.SetCollector(gc.New())
	}
	out := cfg.Stdout
	if out == nil {
		out = io.Discard
	}
	p := &Process{
		name:     cfg.Name,
		prog:     prog,
		h:        h,
		mgr:      spec.New(h),
		externs:  make(rt.Registry),
		stdout:   out,
		fuel:     cfg.Fuel,
		fuelOn:   cfg.Fuel > 0,
		args:     cfg.Args,
		rng:      uint64(cfg.Seed)*2862933555777941757 + 3037000493,
		trapSpec: cfg.TrapSpeculation,
		compiled: cfg.Compiled,
	}
	h.AddRoots(p.yieldRoots)
	registerStdExterns(p)
	return p
}

// yieldRoots enumerates the process's GC roots: the live frame slots of
// the current instruction plus the extern pins. frame[:depth] is exactly
// the value set of the historical environment map at this program point.
func (p *Process) yieldRoots(yield func(heap.Value)) {
	if p.fp != nil && p.pc < len(p.fp.code) {
		for _, v := range p.frame[:p.fp.code[p.pc].depth] {
			yield(v)
		}
	}
	for _, v := range p.pins {
		yield(v)
	}
}

// Accessors used by the migration subsystem, the scheduler, and tests.

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Program returns the FIR program the process executes.
func (p *Process) Program() *fir.Program { return p.prog }

// Heap returns the process heap.
func (p *Process) Heap() *heap.Heap { return p.h }

// Spec returns the speculation manager.
func (p *Process) Spec() *spec.Manager { return p.mgr }

// Status returns the lifecycle state.
func (p *Process) Status() Status { return p.status }

// HaltCode returns the exit code after StatusHalted.
func (p *Process) HaltCode() int64 { return p.halt }

// Err returns the terminal error after StatusFailed.
func (p *Process) Err() error { return p.err }

// Steps returns the number of interpreter steps executed.
func (p *Process) Steps() uint64 { return p.steps }

// Stdout returns the writer print externs use.
func (p *Process) Stdout() io.Writer { return p.stdout }

// SetMigrateHandler installs the migration implementation.
func (p *Process) SetMigrateHandler(h MigrateHandler) { p.migrate = h }

// RegisterExtern adds or replaces an external function. Must be called
// before Start so the type checker sees its signature.
func (p *Process) RegisterExtern(name string, sig fir.ExternSig, fn ExternFn) {
	p.externs[name] = rt.Extern{Sig: sig, Fn: fn}
	if p.fp != nil {
		for i, n := range p.fp.extNames {
			if n == name {
				p.extVals[i] = p.externs[name]
			}
		}
	}
}

// ExternSigs returns the signature registry for type checking.
func (p *Process) ExternSigs() map[string]fir.ExternSig {
	return p.externs.Sigs()
}

// Pin registers a temporary GC root, protecting a fresh allocation that is
// not yet reachable from the environment. Externs that allocate more than
// one block use it; pins are cleared automatically after every extern.
func (p *Process) Pin(v heap.Value) { p.pins = append(p.pins, v) }

// Start type-checks the program, compiles it to slot-resolved code, and
// positions the process at its entry point.
func (p *Process) Start() error {
	if p.status != StatusReady {
		return fmt.Errorf("vm: Start on a %s process", p.status)
	}
	if err := fir.Check(p.prog, p.ExternSigs()); err != nil {
		return err
	}
	if err := p.prepare(); err != nil {
		return err
	}
	_, idx := p.prog.Lookup(p.prog.Entry)
	f := &p.fp.fns[idx]
	p.pc = f.entry
	p.curFn = f.fn.Name
	p.status = StatusRunning
	return nil
}

// prepare compiles the program to slot-resolved code (or adopts the
// precompiled artifact) and sizes the frame and extern table.
func (p *Process) prepare() error {
	var fp *frameProg
	if p.compiled != nil && p.compiled.prog == p.prog {
		fp = p.compiled.fp
	} else {
		var err error
		if fp, err = compileFrames(p.prog); err != nil {
			return err
		}
	}
	p.fp = fp
	p.frame = make([]heap.Value, fp.slots)
	p.extVals = make([]rt.Extern, len(fp.extNames))
	for i, n := range fp.extNames {
		if e, ok := p.externs[n]; ok {
			p.extVals[i] = e
		}
	}
	return nil
}

// StartAt positions the process to invoke the function at table index
// fnIdx with the given argument values — the unpack operation's resume
// path (§4.2.2). The caller provides the heap and speculation state
// separately via ResumeProcess and is responsible for having type-checked
// the program when it came from an untrusted peer.
func (p *Process) StartAt(fnIdx int64, args []heap.Value) error {
	if p.status != StatusReady {
		return fmt.Errorf("vm: StartAt on a %s process", p.status)
	}
	// No type check here: StartAt is the unpack resume path, where the
	// caller has already verified the program (or deliberately skipped
	// verification under the trusted binary protocol, experiment E2).
	if err := p.prepare(); err != nil {
		p.status = StatusFailed
		p.err = err
		return err
	}
	p.status = StatusRunning
	if err := p.invoke(fnIdx, args); err != nil {
		p.status = StatusFailed
		p.err = err
		return err
	}
	return nil
}

// ResumeProcess builds a process around a restored heap and speculation
// continuation stack. Used by unpack: the program has already been decoded
// and (for untrusted peers) type-checked.
func ResumeProcess(prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (*Process, error) {
	out := cfg.Stdout
	if out == nil {
		out = io.Discard
	}
	if cfg.Collector != nil {
		h.SetCollector(cfg.Collector)
	} else {
		h.SetCollector(gc.New())
	}
	p := &Process{
		name:     cfg.Name,
		prog:     prog,
		h:        h,
		mgr:      spec.New(h),
		externs:  make(rt.Registry),
		stdout:   out,
		fuel:     cfg.Fuel,
		fuelOn:   cfg.Fuel > 0,
		args:     cfg.Args,
		rng:      uint64(cfg.Seed)*2862933555777941757 + 3037000493,
		trapSpec: cfg.TrapSpeculation,
		compiled: cfg.Compiled,
	}
	if err := p.mgr.RestoreStack(conts); err != nil {
		return nil, err
	}
	h.AddRoots(p.yieldRoots)
	registerStdExterns(p)
	return p, nil
}

// invoke positions the process at function fnIdx with args bound to its
// parameter slots, applying the runtime type checks on every value. args
// may be a scratch buffer: the values are copied into the frame before
// invoke returns.
func (p *Process) invoke(fnIdx int64, args []heap.Value) error {
	if fnIdx < 0 || fnIdx >= int64(len(p.fp.fns)) {
		_, err := p.prog.FuncByIndex(int(fnIdx))
		return err
	}
	f := &p.fp.fns[fnIdx]
	fn := f.fn
	if len(args) != len(fn.Params) {
		return fmt.Errorf("vm: %s takes %d arguments, given %d", fn.Name, len(fn.Params), len(args))
	}
	for i, a := range args {
		if err := checkKind(a, fn.Params[i].Type); err != nil {
			return fmt.Errorf("vm: %s argument %d (%s): %w", fn.Name, i, fn.Params[i].Name, err)
		}
	}
	copy(p.frame[:len(args)], args)
	p.pc = f.entry
	p.curFn = fn.Name
	return nil
}

// checkKind verifies a runtime value against a FIR type. This is the
// dynamic half of the safety story: statically-checked code only ever
// loads through it when the value came from the untyped heap.
func checkKind(v heap.Value, t fir.Type) error {
	return ops.CheckKind(v, t)
}

// Run executes until the process leaves StatusRunning or fuel runs out.
func (p *Process) Run() (Status, error) {
	return p.RunSteps(0)
}

// Yield requests that the current RunSteps quantum end after the active
// step. It is called from inside externs (on the executing goroutine):
// an extern that woke from a blocking wait yields so the driving scheduler
// or cluster engine regains control — and can deliver a pending kill or
// quiesce — without waiting out the rest of the quantum.
func (p *Process) Yield() { p.yield = true }

// RunSteps executes at most n interpreter steps (0 = unlimited). It
// returns the resulting status; StatusRunning means the quantum expired —
// the scheduler's context-switch point.
func (p *Process) RunSteps(n uint64) (Status, error) {
	if p.status != StatusRunning {
		return p.status, fmt.Errorf("%w (%s)", ErrNotRunning, p.status)
	}
	for i := uint64(0); n == 0 || i < n; i++ {
		if p.fuelOn {
			if p.fuel == 0 {
				p.status = StatusFailed
				p.err = ErrFuelExhausted
				return p.status, p.err
			}
			p.fuel--
		}
		p.steps++
		if err := p.step(); err != nil {
			if p.trap(err) {
				continue
			}
			p.status = StatusFailed
			p.err = err
			return p.status, err
		}
		if p.status != StatusRunning {
			return p.status, nil
		}
		if p.yield {
			// A yield ends a bounded quantum early; an unbounded Run has
			// no scheduler to yield to, so the request is dropped.
			p.yield = false
			if n != 0 {
				return p.status, nil
			}
		}
	}
	return p.status, nil
}

// trap converts a trappable runtime error into an automatic rollback of
// the innermost speculation level when TrapSpeculation is on (§2's
// exception-style speculations). It reports whether execution continues.
func (p *Process) trap(err error) bool {
	var rte *RuntimeError
	if !p.trapSpec || !errors.As(err, &rte) || p.mgr.Depth() == 0 {
		return false
	}
	cont, rbErr := p.mgr.Rollback(p.mgr.Depth())
	if rbErr != nil {
		return false
	}
	args := append([]heap.Value{heap.IntVal(TrapC)}, cont.Args...)
	if ivErr := p.invoke(cont.FnIndex, args); ivErr != nil {
		return false
	}
	return true
}

func (p *Process) rterr(err error) error {
	return &RuntimeError{Fn: p.curFn, Err: err}
}

func (p *Process) rterrf(format string, args ...any) error {
	return &RuntimeError{Fn: p.curFn, Err: fmt.Errorf(format, args...)}
}

// operand reads one resolved operand: a live frame slot or an immediate.
func (p *Process) operand(a *fatom) heap.Value {
	if a.slot >= 0 {
		return p.frame[a.slot]
	}
	return a.imm
}

// gather reads an operand list into the reused argument scratch buffer.
// The result is valid until the next gather; callees must not retain it.
func (p *Process) gather(args []fatom) []heap.Value {
	buf := p.argbuf[:0]
	for i := range args {
		buf = append(buf, p.operand(&args[i]))
	}
	p.argbuf = buf
	return buf
}

// step executes one instruction — exactly one FIR node.
func (p *Process) step() error {
	in := &p.fp.code[p.pc]
	switch in.op {
	case fLet:
		var args []heap.Value
		if in.args == nil {
			switch in.nargs {
			case 1:
				p.letbuf[0] = p.operand(&in.a)
			case 2:
				p.letbuf[0] = p.operand(&in.a)
				p.letbuf[1] = p.operand(&in.b)
			case 3:
				p.letbuf[0] = p.operand(&in.a)
				p.letbuf[1] = p.operand(&in.b)
				p.letbuf[2] = p.operand(&in.c)
			}
			args = p.letbuf[:in.nargs]
		} else {
			args = p.gather(in.args)
		}
		v, err := ops.Eval(p.h, in.alu, args, in.dstTy)
		if err != nil {
			return p.rterr(err)
		}
		p.frame[in.dst] = v
		p.pc++
		return nil

	case fExtern:
		ext := &p.extVals[in.extIdx]
		if ext.Fn == nil {
			return p.rterrf("unknown extern %q", p.fp.extNames[in.extIdx])
		}
		args := p.gather(in.args)
		v, err := ext.Fn(p, args)
		p.pins = p.pins[:0]
		if err != nil {
			return p.rterr(err)
		}
		if err := checkKind(v, ext.Sig.Result); err != nil {
			return p.rterrf("extern %q result: %v", p.fp.extNames[in.extIdx], err)
		}
		p.frame[in.dst] = v
		p.pc++
		return nil

	case fIf:
		c := p.operand(&in.a)
		if c.Kind != heap.KInt {
			return p.rterrf("if condition is %s, want int", c.Kind)
		}
		if c.I != 0 {
			p.pc++
		} else {
			p.pc = int(in.target)
		}
		return nil

	case fCall:
		fnv := p.operand(&in.a)
		if fnv.Kind != heap.KFun {
			return p.rterrf("call target is %s, want fun", fnv)
		}
		if err := p.invoke(fnv.I, p.gather(in.args)); err != nil {
			return p.rterr(err)
		}
		return nil

	case fHalt:
		c := p.operand(&in.a)
		if c.Kind != heap.KInt {
			return p.rterrf("halt code is %s, want int", c.Kind)
		}
		p.status = StatusHalted
		p.halt = c.I
		return nil

	case fSpeculate:
		fnv := p.operand(&in.a)
		if fnv.Kind != heap.KFun {
			return p.rterrf("speculate target is %s, want fun", fnv)
		}
		// The continuation's arguments outlive this step inside the
		// speculation manager: they need a fresh slice.
		saved := make([]heap.Value, len(in.args))
		for i := range in.args {
			saved[i] = p.operand(&in.args[i])
		}
		p.mgr.Enter(spec.Continuation{FnIndex: fnv.I, Args: saved})
		call := append(p.callbuf[:0], heap.IntVal(0))
		call = append(call, saved...)
		p.callbuf = call
		if err := p.invoke(fnv.I, call); err != nil {
			return p.rterr(err)
		}
		return nil

	case fCommit:
		lv := p.operand(&in.a)
		if lv.Kind != heap.KInt {
			return p.rterrf("commit level is %s, want int", lv.Kind)
		}
		fnv := p.operand(&in.b)
		if fnv.Kind != heap.KFun {
			return p.rterrf("commit target is %s, want fun", fnv)
		}
		args := p.gather(in.args)
		if err := p.mgr.Commit(int(lv.I)); err != nil {
			return p.rterr(err)
		}
		if err := p.invoke(fnv.I, args); err != nil {
			return p.rterr(err)
		}
		return nil

	case fRollback:
		lv := p.operand(&in.a)
		cv := p.operand(&in.b)
		if lv.Kind != heap.KInt || cv.Kind != heap.KInt {
			return p.rterrf("rollback operands must be int")
		}
		cont, err := p.mgr.Rollback(int(lv.I))
		if err != nil {
			return p.rterr(err)
		}
		call := append(p.callbuf[:0], cv)
		call = append(call, cont.Args...)
		p.callbuf = call
		if err := p.invoke(cont.FnIndex, call); err != nil {
			return p.rterr(err)
		}
		return nil

	case fMigrate:
		tp := p.operand(&in.a)
		toff := p.operand(&in.b)
		if tp.Kind != heap.KPtr || toff.Kind != heap.KInt {
			return p.rterrf("migrate target must be (ptr, int)")
		}
		eff := tp
		eff.Off += toff.I
		target, err := p.h.LoadString(eff)
		if err != nil {
			return p.rterr(err)
		}
		fnv := p.operand(&in.c)
		if fnv.Kind != heap.KFun {
			return p.rterrf("migrate continuation is %s, want fun", fnv)
		}
		// Migration handlers may retain the arguments (pack, remote
		// handoff): fresh slice, never scratch.
		args := make([]heap.Value, len(in.args))
		for i := range in.args {
			args[i] = p.operand(&in.args[i])
		}
		if p.migrate == nil {
			return p.rterr(ErrNoMigration)
		}
		outcome, err := p.migrate(&rt.MigrationRequest{
			Rt: p, Label: int(in.target), Target: target, FnIndex: fnv.I, Args: args,
		})
		p.pins = p.pins[:0]
		if err != nil {
			// "If migration fails for any reason, the process will
			// continue to execute on the original machine." (§4.2.1)
			outcome = OutcomeContinueLocal
		}
		switch outcome {
		case OutcomeMigrated:
			p.status = StatusMigrated
		case OutcomeSuspended:
			p.status = StatusSuspended
		default:
			if err := p.invoke(fnv.I, args); err != nil {
				return p.rterr(err)
			}
		}
		return nil

	default:
		return p.rterrf("unknown opcode %d", in.op)
	}
}
