// Package vm implements the MCC interpreted runtime environment: it
// executes FIR programs against the runtime heap, wiring the speculate,
// commit, rollback and migrate pseudo-instructions to the speculation
// manager and the migration subsystem. It corresponds to the paper's
// "interpreted runtime environment" backend (§3); internal/risc provides
// the machine-code-style backend.
package vm

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/fir"
	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/ops"
	"repro/internal/rt"
	"repro/internal/spec"
)

// Status re-exports the backend-independent process status from rt.
type Status = rt.Status

// Status values (see rt for documentation).
const (
	StatusReady     = rt.StatusReady
	StatusRunning   = rt.StatusRunning
	StatusHalted    = rt.StatusHalted
	StatusMigrated  = rt.StatusMigrated
	StatusSuspended = rt.StatusSuspended
	StatusFailed    = rt.StatusFailed
)

// Errors returned by the interpreter.
var (
	ErrFuelExhausted = errors.New("vm: fuel exhausted")
	ErrNotRunning    = errors.New("vm: process is not running")
	ErrNoMigration   = errors.New("vm: no migration handler installed")
)

// RuntimeError is a trapped execution error: a failed safety check,
// arithmetic trap, or extern failure. When the process is inside a
// speculation and TrapSpeculation is enabled, a RuntimeError triggers an
// automatic rollback of the innermost level instead of killing the process
// (the exception-style use of speculations described in §2).
type RuntimeError struct {
	Fn  string
	Err error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("vm: runtime error in %s: %v", e.Fn, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// TrapC is the speculation status value c passed to a continuation when a
// level is rolled back by a trapped runtime error rather than an explicit
// rollback instruction.
const TrapC = 2

// Migration and extern types are shared across backends; see rt.
type (
	MigrateOutcome   = rt.MigrateOutcome
	MigrationRequest = rt.MigrationRequest
	MigrateHandler   = rt.MigrateHandler
	ExternFn         = rt.ExternFn
)

// Re-exported migration outcomes (see rt for documentation).
const (
	OutcomeContinueLocal = rt.OutcomeContinueLocal
	OutcomeMigrated      = rt.OutcomeMigrated
	OutcomeSuspended     = rt.OutcomeSuspended
)

// Config configures a new process.
type Config struct {
	// Heap configures the process heap.
	Heap heap.Config
	// Collector overrides the default generational policy.
	Collector heap.Collector
	// Stdout receives output from the print externs (default: discard).
	Stdout io.Writer
	// Fuel bounds the number of interpreter steps (0 = unlimited).
	Fuel uint64
	// TrapSpeculation turns trapped runtime errors inside a speculation
	// into automatic rollbacks of the innermost level with c = TrapC.
	TrapSpeculation bool
	// Name identifies the process in errors and logs.
	Name string
	// Args are process arguments readable through the getarg extern.
	Args []int64
	// Seed seeds the deterministic rand_int extern.
	Seed int64
}

// Process is one executing FIR program: the paper's unit of migration and
// speculation. All process state lives in the heap, the current
// environment, and the speculation manager — which is exactly what pack
// captures.
type Process struct {
	name    string
	prog    *fir.Program
	h       *heap.Heap
	mgr     *spec.Manager
	externs rt.Registry
	migrate MigrateHandler

	env    map[string]heap.Value
	cur    fir.Expr
	curFn  string
	status Status
	halt   int64
	err    error

	stdout io.Writer
	fuel   uint64 // remaining; only enforced when fuelCap is true
	fuelOn bool
	steps  uint64
	pins   []heap.Value
	args   []int64
	rng    uint64
	yield  bool

	trapSpec bool
}

// NewProcess creates a process for prog. The program is not type-checked
// until Start, so externs can still be registered.
func NewProcess(prog *fir.Program, cfg Config) *Process {
	h := heap.New(cfg.Heap)
	if cfg.Collector != nil {
		h.SetCollector(cfg.Collector)
	} else {
		h.SetCollector(gc.New())
	}
	out := cfg.Stdout
	if out == nil {
		out = io.Discard
	}
	p := &Process{
		name:     cfg.Name,
		prog:     prog,
		h:        h,
		mgr:      spec.New(h),
		externs:  make(rt.Registry),
		stdout:   out,
		fuel:     cfg.Fuel,
		fuelOn:   cfg.Fuel > 0,
		args:     cfg.Args,
		rng:      uint64(cfg.Seed)*2862933555777941757 + 3037000493,
		trapSpec: cfg.TrapSpeculation,
	}
	h.AddRoots(func(yield func(heap.Value)) {
		for _, v := range p.env {
			yield(v)
		}
		for _, v := range p.pins {
			yield(v)
		}
	})
	registerStdExterns(p)
	return p
}

// Accessors used by the migration subsystem, the scheduler, and tests.

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Program returns the FIR program the process executes.
func (p *Process) Program() *fir.Program { return p.prog }

// Heap returns the process heap.
func (p *Process) Heap() *heap.Heap { return p.h }

// Spec returns the speculation manager.
func (p *Process) Spec() *spec.Manager { return p.mgr }

// Status returns the lifecycle state.
func (p *Process) Status() Status { return p.status }

// HaltCode returns the exit code after StatusHalted.
func (p *Process) HaltCode() int64 { return p.halt }

// Err returns the terminal error after StatusFailed.
func (p *Process) Err() error { return p.err }

// Steps returns the number of interpreter steps executed.
func (p *Process) Steps() uint64 { return p.steps }

// Stdout returns the writer print externs use.
func (p *Process) Stdout() io.Writer { return p.stdout }

// SetMigrateHandler installs the migration implementation.
func (p *Process) SetMigrateHandler(h MigrateHandler) { p.migrate = h }

// RegisterExtern adds or replaces an external function. Must be called
// before Start so the type checker sees its signature.
func (p *Process) RegisterExtern(name string, sig fir.ExternSig, fn ExternFn) {
	p.externs[name] = rt.Extern{Sig: sig, Fn: fn}
}

// ExternSigs returns the signature registry for type checking.
func (p *Process) ExternSigs() map[string]fir.ExternSig {
	return p.externs.Sigs()
}

// Pin registers a temporary GC root, protecting a fresh allocation that is
// not yet reachable from the environment. Externs that allocate more than
// one block use it; pins are cleared automatically after every extern.
func (p *Process) Pin(v heap.Value) { p.pins = append(p.pins, v) }

// Start type-checks the program and positions the process at its entry
// point.
func (p *Process) Start() error {
	if p.status != StatusReady {
		return fmt.Errorf("vm: Start on a %s process", p.status)
	}
	if err := fir.Check(p.prog, p.ExternSigs()); err != nil {
		return err
	}
	entry, _ := p.prog.Lookup(p.prog.Entry)
	p.cur = entry.Body
	p.curFn = entry.Name
	p.env = make(map[string]heap.Value)
	p.status = StatusRunning
	return nil
}

// StartAt positions the process to invoke the function at table index
// fnIdx with the given argument values — the unpack operation's resume
// path (§4.2.2). The caller provides the heap and speculation state
// separately via ResumeProcess and is responsible for having type-checked
// the program when it came from an untrusted peer.
func (p *Process) StartAt(fnIdx int64, args []heap.Value) error {
	if p.status != StatusReady {
		return fmt.Errorf("vm: StartAt on a %s process", p.status)
	}
	// No type check here: StartAt is the unpack resume path, where the
	// caller has already verified the program (or deliberately skipped
	// verification under the trusted binary protocol, experiment E2).
	p.status = StatusRunning
	if err := p.invoke(fnIdx, args); err != nil {
		p.status = StatusFailed
		p.err = err
		return err
	}
	return nil
}

// ResumeProcess builds a process around a restored heap and speculation
// continuation stack. Used by unpack: the program has already been decoded
// and (for untrusted peers) type-checked.
func ResumeProcess(prog *fir.Program, h *heap.Heap, conts []spec.Continuation, cfg Config) (*Process, error) {
	out := cfg.Stdout
	if out == nil {
		out = io.Discard
	}
	if cfg.Collector != nil {
		h.SetCollector(cfg.Collector)
	} else {
		h.SetCollector(gc.New())
	}
	p := &Process{
		name:     cfg.Name,
		prog:     prog,
		h:        h,
		mgr:      spec.New(h),
		externs:  make(rt.Registry),
		stdout:   out,
		fuel:     cfg.Fuel,
		fuelOn:   cfg.Fuel > 0,
		args:     cfg.Args,
		rng:      uint64(cfg.Seed)*2862933555777941757 + 3037000493,
		trapSpec: cfg.TrapSpeculation,
	}
	if err := p.mgr.RestoreStack(conts); err != nil {
		return nil, err
	}
	h.AddRoots(func(yield func(heap.Value)) {
		for _, v := range p.env {
			yield(v)
		}
		for _, v := range p.pins {
			yield(v)
		}
	})
	registerStdExterns(p)
	return p, nil
}

// invoke positions the process at function fnIdx with args bound to its
// parameters, applying the runtime type checks on every value.
func (p *Process) invoke(fnIdx int64, args []heap.Value) error {
	fn, err := p.prog.FuncByIndex(int(fnIdx))
	if err != nil {
		return err
	}
	if len(args) != len(fn.Params) {
		return fmt.Errorf("vm: %s takes %d arguments, given %d", fn.Name, len(fn.Params), len(args))
	}
	env := make(map[string]heap.Value, len(args))
	for i, a := range args {
		if err := checkKind(a, fn.Params[i].Type); err != nil {
			return fmt.Errorf("vm: %s argument %d (%s): %w", fn.Name, i, fn.Params[i].Name, err)
		}
		env[fn.Params[i].Name] = a
	}
	p.env = env
	p.cur = fn.Body
	p.curFn = fn.Name
	return nil
}

// checkKind verifies a runtime value against a FIR type. This is the
// dynamic half of the safety story: statically-checked code only ever
// loads through it when the value came from the untyped heap.
func checkKind(v heap.Value, t fir.Type) error {
	return ops.CheckKind(v, t)
}

// Run executes until the process leaves StatusRunning or fuel runs out.
func (p *Process) Run() (Status, error) {
	return p.RunSteps(0)
}

// Yield requests that the current RunSteps quantum end after the active
// step. It is called from inside externs (on the executing goroutine):
// an extern that woke from a blocking wait yields so the driving scheduler
// or cluster engine regains control — and can deliver a pending kill or
// quiesce — without waiting out the rest of the quantum.
func (p *Process) Yield() { p.yield = true }

// RunSteps executes at most n interpreter steps (0 = unlimited). It
// returns the resulting status; StatusRunning means the quantum expired —
// the scheduler's context-switch point.
func (p *Process) RunSteps(n uint64) (Status, error) {
	if p.status != StatusRunning {
		return p.status, fmt.Errorf("%w (%s)", ErrNotRunning, p.status)
	}
	for i := uint64(0); n == 0 || i < n; i++ {
		if p.fuelOn {
			if p.fuel == 0 {
				p.status = StatusFailed
				p.err = ErrFuelExhausted
				return p.status, p.err
			}
			p.fuel--
		}
		p.steps++
		if err := p.step(); err != nil {
			if p.trap(err) {
				continue
			}
			p.status = StatusFailed
			p.err = err
			return p.status, err
		}
		if p.status != StatusRunning {
			return p.status, nil
		}
		if p.yield {
			// A yield ends a bounded quantum early; an unbounded Run has
			// no scheduler to yield to, so the request is dropped.
			p.yield = false
			if n != 0 {
				return p.status, nil
			}
		}
	}
	return p.status, nil
}

// trap converts a trappable runtime error into an automatic rollback of
// the innermost speculation level when TrapSpeculation is on (§2's
// exception-style speculations). It reports whether execution continues.
func (p *Process) trap(err error) bool {
	var rte *RuntimeError
	if !p.trapSpec || !errors.As(err, &rte) || p.mgr.Depth() == 0 {
		return false
	}
	cont, rbErr := p.mgr.Rollback(p.mgr.Depth())
	if rbErr != nil {
		return false
	}
	args := append([]heap.Value{heap.IntVal(TrapC)}, cont.Args...)
	if ivErr := p.invoke(cont.FnIndex, args); ivErr != nil {
		return false
	}
	return true
}

func (p *Process) rterr(err error) error {
	return &RuntimeError{Fn: p.curFn, Err: err}
}

func (p *Process) rterrf(format string, args ...any) error {
	return &RuntimeError{Fn: p.curFn, Err: fmt.Errorf(format, args...)}
}

// atom evaluates an atomic expression.
func (p *Process) atom(a fir.Atom) (heap.Value, error) {
	switch a := a.(type) {
	case fir.Var:
		v, ok := p.env[a.Name]
		if !ok {
			return heap.Value{}, p.rterrf("unbound variable %q", a.Name)
		}
		return v, nil
	case fir.IntLit:
		return heap.IntVal(a.V), nil
	case fir.FloatLit:
		return heap.FloatVal(a.V), nil
	case fir.FunLit:
		_, idx := p.prog.Lookup(a.Name)
		if idx < 0 {
			return heap.Value{}, p.rterrf("undefined function %q", a.Name)
		}
		return heap.FunVal(int64(idx)), nil
	case fir.UnitLit:
		return heap.UnitVal(), nil
	default:
		return heap.Value{}, p.rterrf("unknown atom %T", a)
	}
}

func (p *Process) atoms(as []fir.Atom) ([]heap.Value, error) {
	out := make([]heap.Value, len(as))
	for i, a := range as {
		v, err := p.atom(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// step executes one FIR node.
func (p *Process) step() error {
	switch e := p.cur.(type) {
	case fir.Let:
		args, err := p.atoms(e.Args)
		if err != nil {
			return err
		}
		v, err := p.applyOp(e.Op, args, e.DstType)
		if err != nil {
			return err
		}
		p.env[e.Dst] = v
		p.cur = e.Body
		return nil

	case fir.Extern:
		ext, ok := p.externs[e.Name]
		if !ok {
			return p.rterrf("unknown extern %q", e.Name)
		}
		args, err := p.atoms(e.Args)
		if err != nil {
			return err
		}
		v, err := ext.Fn(p, args)
		p.pins = p.pins[:0]
		if err != nil {
			return p.rterr(err)
		}
		if err := checkKind(v, ext.Sig.Result); err != nil {
			return p.rterrf("extern %q result: %v", e.Name, err)
		}
		p.env[e.Dst] = v
		p.cur = e.Body
		return nil

	case fir.If:
		c, err := p.atom(e.Cond)
		if err != nil {
			return err
		}
		if c.Kind != heap.KInt {
			return p.rterrf("if condition is %s, want int", c.Kind)
		}
		if c.I != 0 {
			p.cur = e.Then
		} else {
			p.cur = e.Else
		}
		return nil

	case fir.Call:
		fnv, err := p.atom(e.Fn)
		if err != nil {
			return err
		}
		if fnv.Kind != heap.KFun {
			return p.rterrf("call target is %s, want fun", fnv)
		}
		args, err := p.atoms(e.Args)
		if err != nil {
			return err
		}
		if err := p.invoke(fnv.I, args); err != nil {
			return p.rterr(err)
		}
		return nil

	case fir.Halt:
		c, err := p.atom(e.Code)
		if err != nil {
			return err
		}
		if c.Kind != heap.KInt {
			return p.rterrf("halt code is %s, want int", c.Kind)
		}
		p.status = StatusHalted
		p.halt = c.I
		return nil

	case fir.Speculate:
		fnv, err := p.atom(e.Fn)
		if err != nil {
			return err
		}
		if fnv.Kind != heap.KFun {
			return p.rterrf("speculate target is %s, want fun", fnv)
		}
		args, err := p.atoms(e.Args)
		if err != nil {
			return err
		}
		saved := make([]heap.Value, len(args))
		copy(saved, args)
		p.mgr.Enter(spec.Continuation{FnIndex: fnv.I, Args: saved})
		call := append([]heap.Value{heap.IntVal(0)}, args...)
		if err := p.invoke(fnv.I, call); err != nil {
			return p.rterr(err)
		}
		return nil

	case fir.Commit:
		lv, err := p.atom(e.Level)
		if err != nil {
			return err
		}
		if lv.Kind != heap.KInt {
			return p.rterrf("commit level is %s, want int", lv.Kind)
		}
		fnv, err := p.atom(e.Fn)
		if err != nil {
			return err
		}
		if fnv.Kind != heap.KFun {
			return p.rterrf("commit target is %s, want fun", fnv)
		}
		args, err := p.atoms(e.Args)
		if err != nil {
			return err
		}
		if err := p.mgr.Commit(int(lv.I)); err != nil {
			return p.rterr(err)
		}
		if err := p.invoke(fnv.I, args); err != nil {
			return p.rterr(err)
		}
		return nil

	case fir.Rollback:
		lv, err := p.atom(e.Level)
		if err != nil {
			return err
		}
		cv, err := p.atom(e.C)
		if err != nil {
			return err
		}
		if lv.Kind != heap.KInt || cv.Kind != heap.KInt {
			return p.rterrf("rollback operands must be int")
		}
		cont, err := p.mgr.Rollback(int(lv.I))
		if err != nil {
			return p.rterr(err)
		}
		args := append([]heap.Value{cv}, cont.Args...)
		if err := p.invoke(cont.FnIndex, args); err != nil {
			return p.rterr(err)
		}
		return nil

	case fir.Migrate:
		tp, err := p.atom(e.Target)
		if err != nil {
			return err
		}
		toff, err := p.atom(e.TargetOff)
		if err != nil {
			return err
		}
		if tp.Kind != heap.KPtr || toff.Kind != heap.KInt {
			return p.rterrf("migrate target must be (ptr, int)")
		}
		eff := tp
		eff.Off += toff.I
		target, err := p.h.LoadString(eff)
		if err != nil {
			return p.rterr(err)
		}
		fnv, err := p.atom(e.Fn)
		if err != nil {
			return err
		}
		if fnv.Kind != heap.KFun {
			return p.rterrf("migrate continuation is %s, want fun", fnv)
		}
		args, err := p.atoms(e.Args)
		if err != nil {
			return err
		}
		if p.migrate == nil {
			return p.rterr(ErrNoMigration)
		}
		outcome, err := p.migrate(&rt.MigrationRequest{
			Rt: p, Label: e.Label, Target: target, FnIndex: fnv.I, Args: args,
		})
		p.pins = p.pins[:0]
		if err != nil {
			// "If migration fails for any reason, the process will
			// continue to execute on the original machine." (§4.2.1)
			outcome = OutcomeContinueLocal
		}
		switch outcome {
		case OutcomeMigrated:
			p.status = StatusMigrated
		case OutcomeSuspended:
			p.status = StatusSuspended
		default:
			if err := p.invoke(fnv.I, args); err != nil {
				return p.rterr(err)
			}
		}
		return nil

	default:
		return p.rterrf("unknown expression %T", e)
	}
}

// applyOp evaluates a primitive operator through the shared semantics in
// internal/ops, wrapping failures as trappable runtime errors.
func (p *Process) applyOp(op fir.Op, a []heap.Value, dst fir.Type) (heap.Value, error) {
	v, err := ops.Eval(p.h, op, a, dst)
	if err != nil {
		return heap.Value{}, p.rterr(err)
	}
	return v, nil
}
