package vm

// This file implements the slot-resolved execution core of the
// interpreter. At Start/StartAt time every fir.Var is resolved to a dense
// frame-slot index and each function body is flattened into straight-line
// instructions (FIR is CPS: a body is a Let/Extern chain ending in one
// control transfer, and an If simply forks two such chains — no joins, no
// back edges). The per-step name→value map of the historical tree-walking
// interpreter is gone from the hot path.
//
// Bit-exactness contract with the tree-walking interpreter it replaces:
//
//   - exactly one instruction per FIR node, so step counts, fuel
//     accounting, quantum boundaries and Steps() are identical;
//   - the GC root set while executing any instruction is frame[:depth],
//     which equals the value set of the historical environment map: a
//     binding enters the root set when its Let/Extern completes, and a
//     rebound name reuses its slot, so the shadowed value leaves the root
//     set exactly when the map overwrite would have dropped it;
//   - heap operations, extern invocation order, operator evaluation and
//     error text are unchanged, so snapshots and migration images are
//     bit-identical to the tree interpreter's.
//
// Frames exist only between pack/unpack boundaries: a migration image
// still carries no frame — the continuation function and arguments are
// written into the heap by pack, and unpack rebinds them through StartAt,
// exactly as before.

import (
	"fmt"
	"maps"

	"repro/internal/fir"
	"repro/internal/heap"
)

// fop is a flattened-instruction opcode; one per FIR node kind.
type fop uint8

const (
	fLet fop = iota
	fExtern
	fIf
	fCall
	fHalt
	fSpeculate
	fCommit
	fRollback
	fMigrate
)

// fatom is a resolved operand: a frame slot or an immediate value.
type fatom struct {
	slot int32 // >= 0: frame slot; < 0: immediate
	imm  heap.Value
}

// fin is one flattened instruction. Layout notes: a/b/c carry up to three
// fixed operands (the common Let/If/branch path never touches args);
// target is the else-branch pc for fIf and the migration label for
// fMigrate; depth is the number of live frame slots while this
// instruction executes — the GC root window.
type fin struct {
	op      fop
	nargs   uint8
	alu     fir.Op
	dstTy   fir.Type
	dst     int32
	depth   int32
	target  int32
	extIdx  int32
	a, b, c fatom
	args    []fatom
}

// frameFn is one function's compiled view.
type frameFn struct {
	entry int
	fn    *fir.Function
}

// frameProg is a program compiled to slot-resolved linear code.
type frameProg struct {
	code     []fin
	fns      []frameFn
	extNames []string
	slots    int // frame size: max live slots over all paths
}

// Compiled is an opaque slot-compiled program. It is immutable after
// construction and may be shared by any number of processes created from
// the same (unmutated) fir.Program — the cluster engine compiles once per
// program and fans the artifact out to every node.
type Compiled struct {
	prog *fir.Program
	fp   *frameProg
}

// Precompile lowers prog to slot-resolved code without building a
// process. Pass the result through Config.Compiled to skip per-process
// compilation.
func Precompile(prog *fir.Program) (*Compiled, error) {
	fp, err := compileFrames(prog)
	if err != nil {
		return nil, err
	}
	return &Compiled{prog: prog, fp: fp}, nil
}

// compileFrames lowers prog to slot-resolved code. It fails on references
// a type-checked program cannot contain (unbound variables, undefined
// functions); Start always checks first, and the trusted StartAt path
// surfaces the same malformations at resume time instead of mid-run.
func compileFrames(prog *fir.Program) (*frameProg, error) {
	fp := &frameProg{fns: make([]frameFn, len(prog.Funcs))}
	extIdx := make(map[string]int32)
	for i, f := range prog.Funcs {
		fp.fns[i] = frameFn{entry: len(fp.code), fn: f}
		fc := &frameCompiler{prog: prog, fp: fp, fn: f, extIdx: extIdx}
		env := make(map[string]int32, len(f.Params))
		for j, prm := range f.Params {
			env[prm.Name] = int32(j)
		}
		if err := fc.expr(f.Body, env, int32(len(f.Params))); err != nil {
			return nil, err
		}
	}
	return fp, nil
}

type frameCompiler struct {
	prog   *fir.Program
	fp     *frameProg
	fn     *fir.Function
	extIdx map[string]int32 // shared across functions: extern table is per program
}

func (fc *frameCompiler) extern(name string) int32 {
	if i, ok := fc.extIdx[name]; ok {
		return i
	}
	i := int32(len(fc.fp.extNames))
	fc.fp.extNames = append(fc.fp.extNames, name)
	fc.extIdx[name] = i
	return i
}

func (fc *frameCompiler) grow(depth int32) {
	if int(depth) > fc.fp.slots {
		fc.fp.slots = int(depth)
	}
}

func (fc *frameCompiler) atom(a fir.Atom, env map[string]int32) (fatom, error) {
	switch a := a.(type) {
	case fir.Var:
		s, ok := env[a.Name]
		if !ok {
			return fatom{}, fmt.Errorf("vm: unbound variable %q in %s", a.Name, fc.fn.Name)
		}
		return fatom{slot: s}, nil
	case fir.IntLit:
		return fatom{slot: -1, imm: heap.IntVal(a.V)}, nil
	case fir.FloatLit:
		return fatom{slot: -1, imm: heap.FloatVal(a.V)}, nil
	case fir.FunLit:
		_, idx := fc.prog.Lookup(a.Name)
		if idx < 0 {
			return fatom{}, fmt.Errorf("vm: undefined function %q in %s", a.Name, fc.fn.Name)
		}
		return fatom{slot: -1, imm: heap.FunVal(int64(idx))}, nil
	case fir.UnitLit:
		return fatom{slot: -1, imm: heap.UnitVal()}, nil
	default:
		return fatom{}, fmt.Errorf("vm: unknown atom %T in %s", a, fc.fn.Name)
	}
}

func (fc *frameCompiler) atoms(as []fir.Atom, env map[string]int32) ([]fatom, error) {
	if len(as) == 0 {
		return nil, nil
	}
	out := make([]fatom, len(as))
	for i, a := range as {
		fa, err := fc.atom(a, env)
		if err != nil {
			return nil, err
		}
		out[i] = fa
	}
	return out, nil
}

// bind assigns the destination slot for a binding. A rebound name reuses
// its existing slot — the overwrite drops the shadowed value from the
// root window exactly as the map overwrite did; a fresh name takes the
// next slot. Extension is in place: a CPS chain never forks, and sibling
// If branches are kept independent by the clone at the branch point.
func (fc *frameCompiler) bind(env map[string]int32, name string, depth int32) (map[string]int32, int32, int32) {
	if s, ok := env[name]; ok {
		return env, s, depth
	}
	env[name] = depth
	return env, depth, depth + 1
}

// setABC spreads up to three operands over the fixed slots.
func (in *fin) setABC(i int, fa fatom) {
	switch i {
	case 0:
		in.a = fa
	case 1:
		in.b = fa
	case 2:
		in.c = fa
	}
}

func (fc *frameCompiler) expr(e fir.Expr, env map[string]int32, depth int32) error {
	fc.grow(depth)
	for {
		switch e2 := e.(type) {
		case fir.Let:
			in := fin{op: fLet, alu: e2.Op, dstTy: e2.DstType, depth: depth}
			if n := len(e2.Args); n <= 3 {
				in.nargs = uint8(n)
				for i, a := range e2.Args {
					fa, err := fc.atom(a, env)
					if err != nil {
						return err
					}
					in.setABC(i, fa)
				}
			} else {
				args, err := fc.atoms(e2.Args, env)
				if err != nil {
					return err
				}
				in.args = args
			}
			env, in.dst, depth = fc.bind(env, e2.Dst, depth)
			fc.grow(depth)
			fc.emit(in)
			e = e2.Body

		case fir.Extern:
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			in := fin{op: fExtern, dstTy: e2.DstType, depth: depth, extIdx: fc.extern(e2.Name), args: args}
			env, in.dst, depth = fc.bind(env, e2.Dst, depth)
			fc.grow(depth)
			fc.emit(in)
			e = e2.Body

		case fir.If:
			ca, err := fc.atom(e2.Cond, env)
			if err != nil {
				return err
			}
			pos := len(fc.fp.code)
			fc.emit(fin{op: fIf, a: ca, depth: depth})
			// The then branch gets a clone so its bindings stay invisible
			// to the else branch; bind can then mutate in place.
			if err := fc.expr(e2.Then, maps.Clone(env), depth); err != nil {
				return err
			}
			fc.fp.code[pos].target = int32(len(fc.fp.code))
			e = e2.Else

		case fir.Call:
			fa, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(fin{op: fCall, a: fa, args: args, depth: depth})
			return nil

		case fir.Halt:
			ca, err := fc.atom(e2.Code, env)
			if err != nil {
				return err
			}
			fc.emit(fin{op: fHalt, a: ca, depth: depth})
			return nil

		case fir.Speculate:
			fa, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(fin{op: fSpeculate, a: fa, args: args, depth: depth})
			return nil

		case fir.Commit:
			la, err := fc.atom(e2.Level, env)
			if err != nil {
				return err
			}
			fa, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(fin{op: fCommit, a: la, b: fa, args: args, depth: depth})
			return nil

		case fir.Rollback:
			la, err := fc.atom(e2.Level, env)
			if err != nil {
				return err
			}
			ca, err := fc.atom(e2.C, env)
			if err != nil {
				return err
			}
			fc.emit(fin{op: fRollback, a: la, b: ca, depth: depth})
			return nil

		case fir.Migrate:
			ta, err := fc.atom(e2.Target, env)
			if err != nil {
				return err
			}
			oa, err := fc.atom(e2.TargetOff, env)
			if err != nil {
				return err
			}
			fa, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(fin{op: fMigrate, a: ta, b: oa, c: fa, target: int32(e2.Label), args: args, depth: depth})
			return nil

		default:
			return fmt.Errorf("vm: unknown expression %T in %s", e2, fc.fn.Name)
		}
	}
}

func (fc *frameCompiler) emit(in fin) {
	fc.fp.code = append(fc.fp.code, in)
}
