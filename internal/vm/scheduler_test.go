package vm

import (
	"testing"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
)

// spinProg builds `loop(n): if n <= 0 halt 0 else tick(); loop(n-1)` —
// one extern call per iteration so a yield point exists on every step.
func spinProg(iters int64) *fir.Program {
	b := fir.NewBuilder()
	b.Let("done", fir.TyInt, fir.OpLe, fir.V("n"), fir.I(0))
	loop := fir.Fn("loop", fir.Ps("n", fir.TyInt),
		b.If(fir.V("done"),
			fir.Halt{Code: fir.I(0)},
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Extern("t", fir.TyInt, "tick")
				b2.Let("n2", fir.TyInt, fir.OpSub, fir.V("n"), fir.I(1))
				return b2.CallNamed("loop", fir.V("n2"))
			}()))
	main := fir.Fn("main", nil, fir.NewBuilder().CallNamed("loop", fir.I(iters)))
	return fir.NewProgram("main", main, loop)
}

func startSpin(t *testing.T, iters int64, tick func(p *Process)) *Process {
	t.Helper()
	p := NewProcess(spinProg(iters), Config{Fuel: 10_000_000})
	p.RegisterExtern("tick", fir.ExternSig{Result: fir.TyInt},
		func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
			if tick != nil {
				tick(p)
			}
			return heap.IntVal(0), nil
		})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestYieldEndsQuantumEarly: an extern calling Yield must end a bounded
// RunSteps after the current step, while an unbounded Run ignores it.
func TestYieldEndsQuantumEarly(t *testing.T) {
	p := startSpin(t, 1000, func(p *Process) { p.Yield() })
	before := p.Steps()
	st, err := p.RunSteps(500)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusRunning {
		t.Fatalf("status = %s, want running", st)
	}
	// The first tick extern fires on the third step of an iteration; the
	// yield must have stopped the quantum right there, far short of 500.
	if used := p.Steps() - before; used >= 500 || used == 0 {
		t.Fatalf("quantum used %d steps, want an early yield", used)
	}

	// Unbounded Run drops yield requests and finishes the program.
	st, err = p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusHalted {
		t.Fatalf("status = %s, want halted", st)
	}
}

// TestRunQuantumDrivesOneProcess: RunQuantum steps exactly the chosen
// process and counts one context switch.
func TestRunQuantumDrivesOneProcess(t *testing.T) {
	s := NewScheduler(50)
	a := startSpin(t, 100_000, nil)
	b := startSpin(t, 100_000, nil)
	if err := s.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(b); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Proc(0) != a || s.Proc(1) != b {
		t.Fatalf("Len/Proc wiring broken")
	}
	st, err := s.RunQuantum(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusRunning {
		t.Fatalf("status = %s", st)
	}
	if a.Steps() != 50 {
		t.Fatalf("process 0 ran %d steps, want 50", a.Steps())
	}
	if b.Steps() != 0 {
		t.Fatalf("process 1 ran %d steps, want 0", b.Steps())
	}
	if s.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", s.Switches())
	}
}
