package vm

import (
	"repro/internal/rt"
)

// registerStdExterns installs the shared standard externals.
func registerStdExterns(p *Process) {
	for name, e := range rt.StdExterns() {
		p.externs[name] = e
	}
}

// The Process implements rt.Runtime so externals and the migration
// subsystem work identically on both backends.
var _ rt.Runtime = (*Process)(nil)

// Arg returns the i-th process argument, or 0 when out of range.
func (p *Process) Arg(i int64) int64 {
	if i < 0 || i >= int64(len(p.args)) {
		return 0
	}
	return p.args[i]
}

// NArgs returns the process argument count.
func (p *Process) NArgs() int64 { return int64(len(p.args)) }

// Rand returns a deterministic pseudo-random integer in [0, n) from the
// process-seeded xorshift* stream.
func (p *Process) Rand(n int64) int64 {
	if n <= 0 {
		return 0
	}
	p.rng ^= p.rng >> 12
	p.rng ^= p.rng << 25
	p.rng ^= p.rng >> 27
	v := (p.rng * 2685821657736338717) >> 1
	return int64(v) % n
}
