package vm

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
)

func runProgram(t *testing.T, p *fir.Program, cfg Config) (*Process, Status) {
	t.Helper()
	if cfg.Fuel == 0 {
		cfg.Fuel = 1_000_000
	}
	proc := NewProcess(p, cfg)
	if err := proc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st, err := proc.Run()
	if err != nil && st != StatusFailed {
		t.Fatalf("Run: %v", err)
	}
	return proc, st
}

func TestFactorial(t *testing.T) {
	// fact(n, acc): if n <= 1 halt acc else fact(n-1, acc*n)
	b := fir.NewBuilder()
	b.Let("done", fir.TyInt, fir.OpLe, fir.V("n"), fir.I(1))
	fact := fir.Fn("fact", fir.Ps("n", fir.TyInt, "acc", fir.TyInt),
		b.If(fir.V("done"),
			fir.Halt{Code: fir.V("acc")},
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Let("n2", fir.TyInt, fir.OpSub, fir.V("n"), fir.I(1))
				b2.Let("acc2", fir.TyInt, fir.OpMul, fir.V("acc"), fir.V("n"))
				return b2.CallNamed("fact", fir.V("n2"), fir.V("acc2"))
			}()))
	main := fir.Fn("main", nil, fir.NewBuilder().CallNamed("fact", fir.I(10), fir.I(1)))
	proc, st := runProgram(t, fir.NewProgram("main", main, fact), Config{})
	if st != StatusHalted || proc.HaltCode() != 3628800 {
		t.Fatalf("status=%s code=%d, want halted 3628800", st, proc.HaltCode())
	}
}

func TestHeapSumProgram(t *testing.T) {
	// Fill a 100-word block with i*i, then sum it.
	b := fir.NewBuilder()
	b.Let("p", fir.TyPtr, fir.OpAlloc, fir.I(100))
	main := fir.Fn("main", nil, b.CallNamed("fill", fir.V("p"), fir.I(0)))

	fb := fir.NewBuilder()
	fb.Let("done", fir.TyInt, fir.OpGe, fir.V("i"), fir.I(100))
	fill := fir.Fn("fill", fir.Ps("p", fir.TyPtr, "i", fir.TyInt),
		fb.If(fir.V("done"),
			fir.NewBuilder().CallNamed("sum", fir.V("p"), fir.I(0), fir.I(0)),
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Let("sq", fir.TyInt, fir.OpMul, fir.V("i"), fir.V("i"))
				b2.Let("u", fir.TyUnit, fir.OpStore, fir.V("p"), fir.V("i"), fir.V("sq"))
				b2.Let("i2", fir.TyInt, fir.OpAdd, fir.V("i"), fir.I(1))
				return b2.CallNamed("fill", fir.V("p"), fir.V("i2"))
			}()))

	sb := fir.NewBuilder()
	sb.Let("done", fir.TyInt, fir.OpGe, fir.V("i"), fir.I(100))
	sum := fir.Fn("sum", fir.Ps("p", fir.TyPtr, "i", fir.TyInt, "acc", fir.TyInt),
		sb.If(fir.V("done"),
			fir.Halt{Code: fir.V("acc")},
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Let("x", fir.TyInt, fir.OpLoad, fir.V("p"), fir.V("i"))
				b2.Let("acc2", fir.TyInt, fir.OpAdd, fir.V("acc"), fir.V("x"))
				b2.Let("i2", fir.TyInt, fir.OpAdd, fir.V("i"), fir.I(1))
				return b2.CallNamed("sum", fir.V("p"), fir.V("i2"), fir.V("acc2"))
			}()))

	proc, st := runProgram(t, fir.NewProgram("main", main, fill, sum), Config{})
	want := int64(0)
	for i := int64(0); i < 100; i++ {
		want += i * i
	}
	if st != StatusHalted || proc.HaltCode() != want {
		t.Fatalf("status=%s code=%d, want halted %d", st, proc.HaltCode(), want)
	}
}

// specRetryProgram speculates, increments a counter block, and rolls back
// until c is non-zero; the continuation then commits and halts with the
// counter value. Exercises the retry semantics: rollback restores the heap,
// so the counter visible at halt is the pre-speculation value plus exactly
// the committed run's single increment.
func specRetryProgram() *fir.Program {
	b := fir.NewBuilder()
	b.Let("p", fir.TyPtr, fir.OpAlloc, fir.I(1))
	main := fir.Fn("main", nil, b.Speculate("body", fir.V("p")))

	// body(c, p): p[0]++; if c == 0 rollback(1, 1) else commit(1) -> end(p)
	bb := fir.NewBuilder()
	bb.Let("x", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(0))
	bb.Let("x2", fir.TyInt, fir.OpAdd, fir.V("x"), fir.I(1))
	bb.Let("u", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(0), fir.V("x2"))
	bb.Let("first", fir.TyInt, fir.OpEq, fir.V("c"), fir.I(0))
	body := fir.Fn("body", fir.Ps("c", fir.TyInt, "p", fir.TyPtr),
		bb.If(fir.V("first"),
			fir.NewBuilder().Rollback(fir.I(1), fir.I(1)),
			fir.NewBuilder().Commit(fir.I(1), "end", fir.V("p"))))

	eb := fir.NewBuilder()
	eb.Let("v", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(0))
	end := fir.Fn("end", fir.Ps("p", fir.TyPtr), eb.Halt(fir.V("v")))
	return fir.NewProgram("main", main, body, end)
}

func TestSpeculateRollbackRetryCommit(t *testing.T) {
	proc, st := runProgram(t, specRetryProgram(), Config{})
	// First entry increments to 1, rolls back (restores 0), re-enters with
	// c=1, increments to 1, commits: halt code 1.
	if st != StatusHalted || proc.HaltCode() != 1 {
		t.Fatalf("status=%s code=%d, want halted 1", st, proc.HaltCode())
	}
	ss := proc.Spec().Stats()
	if ss.Enters != 1 || ss.Rollbacks != 1 || ss.Commits != 1 {
		t.Fatalf("spec stats = %+v, want 1 enter, 1 rollback, 1 commit", ss)
	}
	if proc.Spec().Depth() != 0 {
		t.Fatalf("depth = %d, want 0", proc.Spec().Depth())
	}
}

func TestTrapSpeculationRollsBackOnRuntimeError(t *testing.T) {
	// body(c, p): if c == 0, store out of bounds (traps -> rollback with
	// c=TrapC); else commit and halt with p[0], which must be the restored
	// pre-trap value.
	b := fir.NewBuilder()
	b.Let("p", fir.TyPtr, fir.OpAlloc, fir.I(2))
	b.Let("u", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(0), fir.I(5))
	main := fir.Fn("main", nil, b.Speculate("body", fir.V("p")))

	bb := fir.NewBuilder()
	bb.Let("first", fir.TyInt, fir.OpEq, fir.V("c"), fir.I(0))
	body := fir.Fn("body", fir.Ps("c", fir.TyInt, "p", fir.TyPtr),
		bb.If(fir.V("first"),
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Let("u1", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(0), fir.I(99)) // speculative write
				b2.Let("u2", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(50), fir.I(1)) // out of bounds: trap
				return b2.Halt(fir.I(42))                                              // unreachable
			}(),
			fir.NewBuilder().Commit(fir.I(1), "end", fir.V("p"))))

	eb := fir.NewBuilder()
	eb.Let("v", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(0))
	end := fir.Fn("end", fir.Ps("p", fir.TyPtr), eb.Halt(fir.V("v")))

	proc, st := runProgram(t, fir.NewProgram("main", main, body, end), Config{TrapSpeculation: true})
	if st != StatusHalted || proc.HaltCode() != 5 {
		t.Fatalf("status=%s code=%d err=%v, want halted 5", st, proc.HaltCode(), proc.Err())
	}
}

func TestRuntimeErrorWithoutTrapFails(t *testing.T) {
	b := fir.NewBuilder()
	b.Let("p", fir.TyPtr, fir.OpAlloc, fir.I(1))
	b.Let("x", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(5))
	main := fir.Fn("main", nil, b.Halt(fir.V("x")))
	proc, st := runProgram(t, fir.NewProgram("main", main), Config{})
	if st != StatusFailed {
		t.Fatalf("status = %s, want failed", st)
	}
	if !errors.Is(proc.Err(), heap.ErrBounds) {
		t.Fatalf("err = %v, want bounds error", proc.Err())
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	b := fir.NewBuilder()
	b.Let("x", fir.TyInt, fir.OpDiv, fir.I(1), fir.I(0))
	main := fir.Fn("main", nil, b.Halt(fir.V("x")))
	_, st := runProgram(t, fir.NewProgram("main", main), Config{})
	if st != StatusFailed {
		t.Fatalf("status = %s, want failed", st)
	}
}

func TestLoadTypeMismatchTraps(t *testing.T) {
	// Store a float, load it as int: the runtime tag check must fire.
	b := fir.NewBuilder()
	b.Let("p", fir.TyPtr, fir.OpAlloc, fir.I(1))
	b.Let("u", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(0), fir.F(1.5))
	b.Let("x", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(0))
	main := fir.Fn("main", nil, b.Halt(fir.V("x")))
	proc, st := runProgram(t, fir.NewProgram("main", main), Config{})
	if st != StatusFailed {
		t.Fatalf("status = %s (err=%v), want failed", st, proc.Err())
	}
}

func TestPrintExterns(t *testing.T) {
	var out bytes.Buffer
	b := fir.NewBuilder()
	b.Extern("u1", fir.TyUnit, "print_int", fir.I(7))
	b.Extern("u2", fir.TyUnit, "print_float", fir.F(1.5))
	b.Let("s", fir.TyPtr, fir.OpAlloc, fir.I(3))
	b.Let("u3", fir.TyUnit, fir.OpStore, fir.V("s"), fir.I(0), fir.I('h'))
	b.Let("u4", fir.TyUnit, fir.OpStore, fir.V("s"), fir.I(1), fir.I('i'))
	b.Extern("u5", fir.TyUnit, "print_str", fir.V("s"))
	main := fir.Fn("main", nil, b.Halt(fir.I(0)))
	_, st := runProgram(t, fir.NewProgram("main", main), Config{Stdout: &out})
	if st != StatusHalted {
		t.Fatalf("status = %s", st)
	}
	want := "7\n1.5\nhi\n"
	if out.String() != want {
		t.Fatalf("output = %q, want %q", out.String(), want)
	}
}

func TestGetargAndSpecIDExterns(t *testing.T) {
	b := fir.NewBuilder()
	b.Extern("a0", fir.TyInt, "getarg", fir.I(0))
	b.Extern("a9", fir.TyInt, "getarg", fir.I(9)) // out of range -> 0
	b.Let("sum", fir.TyInt, fir.OpAdd, fir.V("a0"), fir.V("a9"))
	main := fir.Fn("main", nil, b.Halt(fir.V("sum")))
	proc, st := runProgram(t, fir.NewProgram("main", main), Config{Args: []int64{41}})
	if st != StatusHalted || proc.HaltCode() != 41 {
		t.Fatalf("halt = %d, want 41", proc.HaltCode())
	}
}

func TestSpecIDOrdinalExterns(t *testing.T) {
	// Inside a speculation, spec_id returns a stable non-zero ID and
	// spec_ordinal maps it to 1.
	main := fir.Fn("main", nil, fir.NewBuilder().Speculate("body"))
	bb := fir.NewBuilder()
	bb.Extern("id", fir.TyInt, "spec_id")
	bb.Extern("ord", fir.TyInt, "spec_ordinal", fir.V("id"))
	body := fir.Fn("body", fir.Ps("c", fir.TyInt),
		bb.Commit(fir.V("ord"), "end", fir.V("id")))
	end := fir.Fn("end", fir.Ps("id", fir.TyInt), fir.NewBuilder().Halt(fir.V("id")))
	proc, st := runProgram(t, fir.NewProgram("main", main, body, end), Config{})
	if st != StatusHalted || proc.HaltCode() == 0 {
		t.Fatalf("status=%s code=%d, want halted with non-zero id", st, proc.HaltCode())
	}
}

func TestFuelExhaustion(t *testing.T) {
	// Infinite loop must stop at the fuel limit.
	loop := fir.Fn("loop", nil, fir.Call{Fn: fir.FunLit{Name: "loop"}})
	lp := fir.NewProgram("loop", loop)
	proc := NewProcess(lp, Config{Fuel: 100})
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if st != StatusFailed || !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("status=%s err=%v, want fuel exhaustion", st, err)
	}
}

func TestStartRejectsIllTypedProgram(t *testing.T) {
	bad := fir.NewProgram("main", fir.Fn("main", nil, fir.Halt{Code: fir.F(1)}))
	proc := NewProcess(bad, Config{})
	if err := proc.Start(); err == nil {
		t.Fatal("Start accepted ill-typed program")
	}
}

func TestMigrateCheckpointContinues(t *testing.T) {
	// migrate with a handler that reports OutcomeContinueLocal: the
	// continuation runs locally.
	b := fir.NewBuilder()
	b.Extern("tgt", fir.TyPtr, "mkstr")
	main := fir.Fn("main", nil, b.Migrate(1, fir.V("tgt"), fir.I(0), "after"))
	after := fir.Fn("after", nil, fir.NewBuilder().Halt(fir.I(5)))
	p := fir.NewProgram("main", main, after)

	proc := NewProcess(p, Config{Fuel: 1000})
	proc.RegisterExtern("mkstr", fir.ExternSig{Result: fir.TyPtr},
		func(p rt.Runtime, a []heap.Value) (heap.Value, error) {
			return p.Heap().AllocString("checkpoint://test")
		})
	var gotTarget string
	var gotLabel int
	proc.SetMigrateHandler(func(req *MigrationRequest) (MigrateOutcome, error) {
		gotTarget = req.Target
		gotLabel = req.Label
		return OutcomeContinueLocal, nil
	})
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusHalted || proc.HaltCode() != 5 {
		t.Fatalf("status=%s code=%d, want halted 5", st, proc.HaltCode())
	}
	if gotTarget != "checkpoint://test" || gotLabel != 1 {
		t.Fatalf("handler saw target=%q label=%d", gotTarget, gotLabel)
	}
}

func TestMigrateOutcomeTerminates(t *testing.T) {
	b := fir.NewBuilder()
	b.Extern("tgt", fir.TyPtr, "mkstr")
	main := fir.Fn("main", nil, b.Migrate(1, fir.V("tgt"), fir.I(0), "after"))
	after := fir.Fn("after", nil, fir.NewBuilder().Halt(fir.I(5)))
	p := fir.NewProgram("main", main, after)

	for _, tc := range []struct {
		outcome MigrateOutcome
		want    Status
	}{
		{OutcomeMigrated, StatusMigrated},
		{OutcomeSuspended, StatusSuspended},
	} {
		proc := NewProcess(p, Config{Fuel: 1000})
		proc.RegisterExtern("mkstr", fir.ExternSig{Result: fir.TyPtr},
			func(p rt.Runtime, a []heap.Value) (heap.Value, error) {
				return p.Heap().AllocString("x://y")
			})
		proc.SetMigrateHandler(func(req *MigrationRequest) (MigrateOutcome, error) {
			return tc.outcome, nil
		})
		if err := proc.Start(); err != nil {
			t.Fatal(err)
		}
		st, err := proc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st != tc.want {
			t.Fatalf("status = %s, want %s", st, tc.want)
		}
	}
}

func TestMigrateFailureContinuesLocally(t *testing.T) {
	// Handler errors: §4.2.1 — the process continues on the original
	// machine.
	b := fir.NewBuilder()
	b.Extern("tgt", fir.TyPtr, "mkstr")
	main := fir.Fn("main", nil, b.Migrate(1, fir.V("tgt"), fir.I(0), "after"))
	after := fir.Fn("after", nil, fir.NewBuilder().Halt(fir.I(9)))
	p := fir.NewProgram("main", main, after)

	proc := NewProcess(p, Config{Fuel: 1000})
	proc.RegisterExtern("mkstr", fir.ExternSig{Result: fir.TyPtr},
		func(p rt.Runtime, a []heap.Value) (heap.Value, error) {
			return p.Heap().AllocString("migrate://unreachable:1")
		})
	proc.SetMigrateHandler(func(req *MigrationRequest) (MigrateOutcome, error) {
		return OutcomeMigrated, errors.New("connection refused")
	})
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	st, _ := proc.Run()
	if st != StatusHalted || proc.HaltCode() != 9 {
		t.Fatalf("status=%s code=%d, want halted 9 (local continuation)", st, proc.HaltCode())
	}
}

func TestNoMigrationHandler(t *testing.T) {
	b := fir.NewBuilder()
	b.Let("tgt", fir.TyPtr, fir.OpAlloc, fir.I(1))
	main := fir.Fn("main", nil, b.Migrate(1, fir.V("tgt"), fir.I(0), "main2"))
	main2 := fir.Fn("main2", nil, fir.Halt{Code: fir.I(0)})
	proc, st := runProgram(t, fir.NewProgram("main", main, main2), Config{})
	if st != StatusFailed || !errors.Is(proc.Err(), ErrNoMigration) {
		t.Fatalf("status=%s err=%v, want ErrNoMigration", st, proc.Err())
	}
}

func TestIndirectCallThroughHeap(t *testing.T) {
	// Store a function value in the heap, load it, call it.
	b := fir.NewBuilder()
	b.Let("p", fir.TyPtr, fir.OpAlloc, fir.I(1))
	b.Let("f", fir.TyFun(fir.TyInt), fir.OpMove, fir.FunLit{Name: "target"})
	b.Let("u", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(0), fir.V("f"))
	b.Let("g", fir.TyFun(fir.TyInt), fir.OpLoad, fir.V("p"), fir.I(0))
	main := fir.Fn("main", nil, b.Call(fir.V("g"), fir.I(88)))
	target := fir.Fn("target", fir.Ps("x", fir.TyInt), fir.NewBuilder().Halt(fir.V("x")))
	proc, st := runProgram(t, fir.NewProgram("main", main, target), Config{})
	if st != StatusHalted || proc.HaltCode() != 88 {
		t.Fatalf("status=%s code=%d, want halted 88", st, proc.HaltCode())
	}
}

func TestGCDuringExecution(t *testing.T) {
	// Allocate garbage in a loop far exceeding the arena; the default
	// collector policy must keep the process alive.
	b := fir.NewBuilder()
	b.Let("done", fir.TyInt, fir.OpGe, fir.V("i"), fir.I(2000))
	loop := fir.Fn("loop", fir.Ps("i", fir.TyInt, "keep", fir.TyPtr),
		b.If(fir.V("done"),
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Let("v", fir.TyInt, fir.OpLoad, fir.V("keep"), fir.I(0))
				return b2.Halt(fir.V("v"))
			}(),
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Let("junk", fir.TyPtr, fir.OpAlloc, fir.I(32))
				b2.Let("u", fir.TyUnit, fir.OpStore, fir.V("junk"), fir.I(0), fir.V("i"))
				b2.Let("i2", fir.TyInt, fir.OpAdd, fir.V("i"), fir.I(1))
				return b2.CallNamed("loop", fir.V("i2"), fir.V("keep"))
			}()))
	mb := fir.NewBuilder()
	mb.Let("keep", fir.TyPtr, fir.OpAlloc, fir.I(1))
	mb.Let("u", fir.TyUnit, fir.OpStore, fir.V("keep"), fir.I(0), fir.I(123))
	main := fir.Fn("main", nil, mb.CallNamed("loop", fir.I(0), fir.V("keep")))

	proc, st := runProgram(t, fir.NewProgram("main", main, loop),
		Config{Heap: heap.Config{InitialWords: 1024, MaxWords: 8192}})
	if st != StatusHalted || proc.HaltCode() != 123 {
		t.Fatalf("status=%s code=%d err=%v, want halted 123", st, proc.HaltCode(), proc.Err())
	}
	hs := proc.Heap().Stats()
	if hs.MinorGCs+hs.MajorGCs == 0 {
		t.Fatal("no collections ran despite allocation pressure")
	}
	if err := proc.Heap().CheckInvariants(); err != nil {
		t.Fatalf("invariants after run: %v", err)
	}
}

func TestSchedulerRunsProcessesToCompletion(t *testing.T) {
	mk := func(n int64) *Process {
		b := fir.NewBuilder()
		b.Let("done", fir.TyInt, fir.OpGe, fir.V("i"), fir.I(n))
		loop := fir.Fn("loop", fir.Ps("i", fir.TyInt),
			b.If(fir.V("done"),
				fir.Halt{Code: fir.V("i")},
				func() fir.Expr {
					b2 := fir.NewBuilder()
					b2.Let("i2", fir.TyInt, fir.OpAdd, fir.V("i"), fir.I(1))
					return b2.CallNamed("loop", fir.V("i2"))
				}()))
		main := fir.Fn("main", nil, fir.NewBuilder().CallNamed("loop", fir.I(0)))
		p := NewProcess(fir.NewProgram("main", main, loop), Config{Fuel: 1_000_000})
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	s := NewScheduler(10)
	p1, p2, p3 := mk(100), mk(500), mk(50)
	for _, p := range []*Process{p1, p2, p3} {
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, p := range []*Process{p1, p2, p3} {
		if p.Status() != StatusHalted {
			t.Fatalf("process %d status = %s", i, p.Status())
		}
	}
	if s.Switches() == 0 {
		t.Fatal("no context switches recorded")
	}
}

func TestRandIntDeterministic(t *testing.T) {
	b := fir.NewBuilder()
	b.Extern("r1", fir.TyInt, "rand_int", fir.I(1000))
	b.Extern("r2", fir.TyInt, "rand_int", fir.I(1000))
	b.Let("s", fir.TyInt, fir.OpMul, fir.V("r1"), fir.I(1000))
	b.Let("code", fir.TyInt, fir.OpAdd, fir.V("s"), fir.V("r2"))
	main := fir.Fn("main", nil, b.Halt(fir.V("code")))
	p := fir.NewProgram("main", main)
	a, _ := runProgram(t, p, Config{Seed: 42})
	c, _ := runProgram(t, p, Config{Seed: 42})
	if a.HaltCode() != c.HaltCode() {
		t.Fatalf("same seed produced %d and %d", a.HaltCode(), c.HaltCode())
	}
	d, _ := runProgram(t, p, Config{Seed: 43})
	if a.HaltCode() == d.HaltCode() {
		t.Fatalf("different seeds produced identical stream %d", a.HaltCode())
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusReady: "ready", StatusRunning: "running", StatusHalted: "halted",
		StatusMigrated: "migrated", StatusSuspended: "suspended", StatusFailed: "failed",
	} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st, want)
		}
	}
	if !strings.Contains(Status(99).String(), "99") {
		t.Error("unknown status should include its number")
	}
}
