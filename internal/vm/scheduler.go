package vm

import (
	"errors"
	"fmt"
)

// Scheduler multiplexes several processes on one OS thread with a fixed
// step quantum, round-robin. It is the footing for the paper's §5
// context-switch yardstick: speculation operation costs are compared
// against the cost of switching between two processes with resident heaps.
type Scheduler struct {
	procs    []*Process
	quantum  uint64
	switches uint64
}

// NewScheduler creates a scheduler with the given step quantum per turn
// (minimum 1).
func NewScheduler(quantum uint64) *Scheduler {
	if quantum == 0 {
		quantum = 1
	}
	return &Scheduler{quantum: quantum}
}

// Add registers a process. The process must already be started.
func (s *Scheduler) Add(p *Process) error {
	if p.Status() != StatusRunning {
		return fmt.Errorf("vm: scheduler requires a running process, got %s", p.Status())
	}
	s.procs = append(s.procs, p)
	return nil
}

// Switches returns the number of context switches performed.
func (s *Scheduler) Switches() uint64 { return s.switches }

// Run executes all processes round-robin until every one reaches a
// terminal state. Individual process failures do not stop the scheduler;
// the first failure is returned after everything settles.
func (s *Scheduler) Run() error {
	var firstErr error
	for {
		running := 0
		for _, p := range s.procs {
			if p.Status() != StatusRunning {
				continue
			}
			running++
			_, err := p.RunSteps(s.quantum)
			s.switches++
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if running == 0 {
			return firstErr
		}
	}
}

// Turn gives every running process one quantum and reports whether any
// process is still running. Benchmarks drive Turn directly to time the
// switch path.
func (s *Scheduler) Turn() bool {
	any := false
	for _, p := range s.procs {
		if p.Status() != StatusRunning {
			continue
		}
		_, _ = p.RunSteps(s.quantum)
		s.switches++
		if p.Status() == StatusRunning {
			any = true
		}
	}
	return any
}

// ErrDeadlock is reserved for cooperative blocking externs (message
// receive) that can detect a cycle; the message layer returns it when
// every process is blocked on an empty channel.
var ErrDeadlock = errors.New("vm: all processes blocked")
