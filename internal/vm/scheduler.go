package vm

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Scheduler multiplexes several processes on one OS thread with a fixed
// step quantum, round-robin. It is the footing for the paper's §5
// context-switch yardstick: speculation operation costs are compared
// against the cost of switching between two processes with resident heaps.
type Scheduler struct {
	procs   []*Process
	quantum uint64
	// switches is atomic: RunQuantum may be invoked for distinct
	// processes from concurrent goroutines.
	switches atomic.Uint64
}

// NewScheduler creates a scheduler with the given step quantum per turn
// (minimum 1).
func NewScheduler(quantum uint64) *Scheduler {
	if quantum == 0 {
		quantum = 1
	}
	return &Scheduler{quantum: quantum}
}

// Add registers a process. The process must already be started.
func (s *Scheduler) Add(p *Process) error {
	if p.Status() != StatusRunning {
		return fmt.Errorf("vm: scheduler requires a running process, got %s", p.Status())
	}
	s.procs = append(s.procs, p)
	return nil
}

// Switches returns the number of context switches performed.
func (s *Scheduler) Switches() uint64 { return s.switches.Load() }

// Len returns the number of registered processes.
func (s *Scheduler) Len() int { return len(s.procs) }

// Proc returns the i-th registered process.
func (s *Scheduler) Proc(i int) *Process { return s.procs[i] }

// RunQuantum gives the i-th process one quantum (or less, if it yields or
// reaches a terminal state mid-quantum) and returns its resulting status.
// It is the scheduler's single dispatch point: Run and Turn are loops over
// it, and a concurrent execution engine may invoke it for distinct i from
// different goroutines — each process is only ever stepped through its own
// RunQuantum call, preserving the deterministic per-process step order.
func (s *Scheduler) RunQuantum(i int) (Status, error) {
	p := s.procs[i]
	if p.Status() != StatusRunning {
		return p.Status(), nil
	}
	st, err := p.RunSteps(s.quantum)
	s.switches.Add(1)
	return st, err
}

// Run executes all processes round-robin until every one reaches a
// terminal state. Individual process failures do not stop the scheduler;
// the first failure is returned after everything settles.
func (s *Scheduler) Run() error {
	var firstErr error
	for {
		running := 0
		for i, p := range s.procs {
			if p.Status() != StatusRunning {
				continue
			}
			running++
			_, err := s.RunQuantum(i)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if running == 0 {
			return firstErr
		}
	}
}

// Turn gives every running process one quantum and reports whether any
// process is still running. Benchmarks drive Turn directly to time the
// switch path.
func (s *Scheduler) Turn() bool {
	any := false
	for i, p := range s.procs {
		if p.Status() != StatusRunning {
			continue
		}
		_, _ = s.RunQuantum(i)
		if p.Status() == StatusRunning {
			any = true
		}
	}
	return any
}

// ErrDeadlock is reserved for cooperative blocking externs (message
// receive) that can detect a cycle; the message layer returns it when
// every process is blocked on an empty channel.
var ErrDeadlock = errors.New("vm: all processes blocked")
