package spec

import (
	"errors"
	"testing"

	"repro/internal/heap"
)

func newMgr(t *testing.T) (*Manager, *heap.Heap) {
	t.Helper()
	h := heap.New(heap.Config{})
	return New(h), h
}

func TestEnterCommitLifecycle(t *testing.T) {
	m, _ := newMgr(t)
	ord, id := m.Enter(Continuation{FnIndex: 3})
	if ord != 1 || id <= 0 {
		t.Fatalf("Enter = (%d, %d)", ord, id)
	}
	if d := m.Depth(); d != 1 {
		t.Fatalf("Depth = %d", d)
	}
	got, err := m.CurrentID()
	if err != nil || got != id {
		t.Fatalf("CurrentID = %d, %v", got, err)
	}
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	if m.Depth() != 0 {
		t.Fatalf("Depth after commit = %d", m.Depth())
	}
	if _, err := m.CurrentID(); !errors.Is(err, ErrNoLevels) {
		t.Fatalf("CurrentID on empty = %v", err)
	}
}

func TestStableIDsSurviveRenumbering(t *testing.T) {
	m, _ := newMgr(t)
	_, id1 := m.Enter(Continuation{FnIndex: 1})
	_, id2 := m.Enter(Continuation{FnIndex: 2})
	_, id3 := m.Enter(Continuation{FnIndex: 3})
	// Commit the middle level out of order; id3's ordinal shifts down.
	ord2, err := m.OrdinalOf(id2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(ord2); err != nil {
		t.Fatal(err)
	}
	ord3, err := m.OrdinalOf(id3)
	if err != nil || ord3 != 2 {
		t.Fatalf("OrdinalOf(id3) = %d, %v (want 2)", ord3, err)
	}
	ord1, err := m.OrdinalOf(id1)
	if err != nil || ord1 != 1 {
		t.Fatalf("OrdinalOf(id1) = %d, %v (want 1)", ord1, err)
	}
	if _, err := m.OrdinalOf(id2); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("committed id still resolvable: %v", err)
	}
}

func TestRollbackReturnsContinuationAndReenters(t *testing.T) {
	m, h := newMgr(t)
	args := []heap.Value{heap.IntVal(7), heap.PtrVal(0, 0)}
	_, id := m.Enter(Continuation{FnIndex: 9, Args: args})
	cont, err := m.Rollback(1)
	if err != nil {
		t.Fatal(err)
	}
	if cont.FnIndex != 9 || len(cont.Args) != 2 || cont.Args[0].I != 7 {
		t.Fatalf("cont = %+v", cont)
	}
	// Retry semantics: the level is re-entered with the same stable ID.
	if m.Depth() != 1 {
		t.Fatalf("Depth after rollback = %d, want 1 (re-entered)", m.Depth())
	}
	got, err := m.CurrentID()
	if err != nil || got != id {
		t.Fatalf("re-entered id = %d, want %d", got, id)
	}
	if h.LevelCount() != 1 {
		t.Fatalf("heap levels = %d", h.LevelCount())
	}
}

func TestRollbackDiscardsInnerLevels(t *testing.T) {
	m, _ := newMgr(t)
	_, id1 := m.Enter(Continuation{FnIndex: 1})
	m.Enter(Continuation{FnIndex: 2})
	m.Enter(Continuation{FnIndex: 3})
	cont, err := m.Rollback(1)
	if err != nil {
		t.Fatal(err)
	}
	if cont.FnIndex != 1 {
		t.Fatalf("cont.FnIndex = %d", cont.FnIndex)
	}
	if m.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", m.Depth())
	}
	if got, _ := m.CurrentID(); got != id1 {
		t.Fatalf("id = %d, want %d", got, id1)
	}
	if s := m.Stats(); s.LevelsDiscarded != 2 {
		t.Fatalf("LevelsDiscarded = %d, want 2", s.LevelsDiscarded)
	}
}

func TestInvalidOperations(t *testing.T) {
	m, _ := newMgr(t)
	if err := m.Commit(1); err == nil {
		t.Fatal("Commit on empty stack accepted")
	}
	if _, err := m.Rollback(1); err == nil {
		t.Fatal("Rollback on empty stack accepted")
	}
	if _, err := m.OrdinalOf(42); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("OrdinalOf(42) = %v", err)
	}
	if _, err := m.IDAt(0); err == nil {
		t.Fatal("IDAt(0) accepted")
	}
	m.Enter(Continuation{})
	if err := m.Commit(2); err == nil {
		t.Fatal("Commit(2) with one level accepted")
	}
}

func TestSnapshotRestoreStack(t *testing.T) {
	m, h := newMgr(t)
	m.Enter(Continuation{FnIndex: 4, Args: []heap.Value{heap.IntVal(1)}})
	m.Enter(Continuation{FnIndex: 5})
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].FnIndex != 4 || snap[1].FnIndex != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Mutating the snapshot must not alias the manager.
	snap[0].Args[0] = heap.IntVal(99)
	cont, _ := m.Rollback(1)
	if cont.Args[0].I != 1 {
		t.Fatal("snapshot aliased manager state")
	}

	// Restore onto a fresh manager whose heap has matching level count.
	h2 := heap.New(heap.Config{})
	h2.EnterLevel()
	h2.EnterLevel()
	m2 := New(h2)
	if err := m2.RestoreStack(snap); err != nil {
		t.Fatal(err)
	}
	if m2.Depth() != 2 {
		t.Fatalf("restored depth = %d", m2.Depth())
	}
	// Mismatched count is rejected.
	h3 := heap.New(heap.Config{})
	m3 := New(h3)
	if err := m3.RestoreStack(snap); err == nil {
		t.Fatal("RestoreStack accepted level-count mismatch")
	}
	_ = h
}

func TestContinuationArgsAreGCRoots(t *testing.T) {
	h := heap.New(heap.Config{})
	m := New(h)
	p, err := h.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Store(p, 0, heap.IntVal(77)); err != nil {
		t.Fatal(err)
	}
	// The only reference to p is the saved continuation argument.
	m.Enter(Continuation{FnIndex: 0, Args: []heap.Value{p}})
	h.CollectMajor()
	v, err := h.Load(p, 0)
	if err != nil {
		t.Fatalf("continuation arg was collected: %v", err)
	}
	if v.I != 77 {
		t.Fatalf("value = %s", v)
	}
}

func TestStatsCounters(t *testing.T) {
	m, _ := newMgr(t)
	m.Enter(Continuation{})
	m.Enter(Continuation{})
	_ = m.Commit(2)
	_, _ = m.Rollback(1)
	s := m.Stats()
	if s.Enters != 2 || s.Commits != 1 || s.Rollbacks != 1 || s.MaxDepth != 2 {
		t.Fatalf("stats = %+v", s)
	}
}
