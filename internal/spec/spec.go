// Package spec implements the speculation manager: the runtime half of the
// speculate/commit/rollback primitives (§4.3). The heap provides the
// block-level copy-on-write machinery; this package owns the level
// lifecycle — saved continuations, stable speculation IDs, out-of-order
// commit bookkeeping, and the retry semantics of rollback ("level l is
// automatically re-entered after it has been rolled back").
package spec

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/heap"
)

// Errors returned by the manager.
var (
	ErrNoLevels  = errors.New("spec: no speculation in progress")
	ErrBadLevel  = errors.New("spec: no such speculation level")
	ErrUnknownID = errors.New("spec: unknown speculation id")
)

// Continuation is the saved re-entry point of a speculation level: the
// function-table index of the continuation f passed to speculate, and the
// original arguments a_1..a_n (excluding the status integer c, which is
// supplied fresh on every entry).
type Continuation struct {
	FnIndex int64
	Args    []heap.Value
}

// Stats is a point-in-time copy of the speculation counters.
type Stats struct {
	Enters    uint64
	Commits   uint64
	Rollbacks uint64
	// LevelsDiscarded counts inner levels destroyed because an outer level
	// rolled back past them.
	LevelsDiscarded uint64
	MaxDepth        int
}

// Observer receives speculation lifecycle callbacks, invoked on the
// process's own goroutine immediately after each transition. The fields
// are plain funcs (any of which may be nil) so the tracing layer can
// hook in without this package depending on it. Callbacks must be cheap:
// they run on the execution hot path.
type Observer struct {
	Enter    func(ordinal int, id int64)
	Commit   func(ordinal int, id int64)
	Rollback func(ordinal int, id int64, discarded int)
}

// Manager tracks the speculation level stack for one process. Levels are
// addressed two ways: by 1-based ordinal (the paper's l ∈ {1..N}, which
// shifts when a lower level commits) and by stable ID (what the C-level
// specid holds; IDs survive renumbering).
//
// All execution-path methods are single-goroutine (the owning process
// driver), but Stats() may be called concurrently by metrics scrapes, so
// the counters are atomics — the same discipline msg.Router uses.
type Manager struct {
	h     *heap.Heap
	conts []Continuation // parallel to the heap's level stack
	ids   []int64        // stable IDs, parallel to conts
	next  int64
	obs   Observer

	enters          atomic.Uint64
	commits         atomic.Uint64
	rollbacks       atomic.Uint64
	levelsDiscarded atomic.Uint64
	maxDepth        atomic.Int64
}

// New creates a manager bound to a heap and registers the saved
// continuation arguments as GC roots (a rollback may be the only remaining
// path to blocks referenced solely by a saved continuation).
func New(h *heap.Heap) *Manager {
	m := &Manager{h: h, next: 1}
	h.AddRoots(func(yield func(heap.Value)) {
		for _, c := range m.conts {
			for _, v := range c.Args {
				yield(v)
			}
		}
	})
	return m
}

// Stats returns a copy of the counters. Safe to call from any goroutine
// while the owning process is running.
func (m *Manager) Stats() Stats {
	return Stats{
		Enters:          m.enters.Load(),
		Commits:         m.commits.Load(),
		Rollbacks:       m.rollbacks.Load(),
		LevelsDiscarded: m.levelsDiscarded.Load(),
		MaxDepth:        int(m.maxDepth.Load()),
	}
}

// SetObserver installs lifecycle callbacks. Must be called before the
// owning process starts executing (it is not synchronized against the
// execution path).
func (m *Manager) SetObserver(o Observer) { m.obs = o }

// Depth returns the number of open levels (the paper's N).
func (m *Manager) Depth() int { return len(m.conts) }

// Enter starts a new speculation level with the given continuation and
// returns its ordinal (= new depth) and stable ID.
func (m *Manager) Enter(c Continuation) (ordinal int, id int64) {
	ordinal = m.h.EnterLevel()
	id = m.next
	m.next++
	m.conts = append(m.conts, c)
	m.ids = append(m.ids, id)
	m.enters.Add(1)
	if d := int64(len(m.conts)); d > m.maxDepth.Load() {
		m.maxDepth.Store(d)
	}
	if ordinal != len(m.conts) {
		// The heap's level stack and ours move in lockstep; disagreement
		// means the heap was driven directly behind the manager's back.
		panic(fmt.Sprintf("spec: level stacks diverged (heap %d, manager %d)", ordinal, len(m.conts)))
	}
	if m.obs.Enter != nil {
		m.obs.Enter(ordinal, id)
	}
	return ordinal, id
}

// OrdinalOf resolves a stable speculation ID to its current ordinal.
func (m *Manager) OrdinalOf(id int64) (int, error) {
	for i, v := range m.ids {
		if v == id {
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("%w: %d", ErrUnknownID, id)
}

// IDAt returns the stable ID of the level with the given ordinal.
func (m *Manager) IDAt(ordinal int) (int64, error) {
	if ordinal < 1 || ordinal > len(m.ids) {
		return 0, fmt.Errorf("%w: %d (depth %d)", ErrBadLevel, ordinal, len(m.ids))
	}
	return m.ids[ordinal-1], nil
}

// CurrentID returns the stable ID of the innermost level.
func (m *Manager) CurrentID() (int64, error) {
	if len(m.ids) == 0 {
		return 0, ErrNoLevels
	}
	return m.ids[len(m.ids)-1], nil
}

// Commit folds level `ordinal` into the level below it (§4.3.1: "commits
// for speculations can occur out of order"). The level's saved continuation
// is discarded; higher levels shift down one ordinal.
func (m *Manager) Commit(ordinal int) error {
	if ordinal < 1 || ordinal > len(m.conts) {
		return fmt.Errorf("%w: commit %d (depth %d)", ErrBadLevel, ordinal, len(m.conts))
	}
	if err := m.h.CommitLevel(ordinal); err != nil {
		return err
	}
	i := ordinal - 1
	id := m.ids[i]
	m.conts = append(m.conts[:i], m.conts[i+1:]...)
	m.ids = append(m.ids[:i], m.ids[i+1:]...)
	m.commits.Add(1)
	if m.obs.Commit != nil {
		m.obs.Commit(ordinal, id)
	}
	return nil
}

// Rollback reverts every change made in level `ordinal` and all later
// levels, re-enters the level (retry semantics) preserving its stable ID,
// and returns the saved continuation to re-invoke with the new value of c.
func (m *Manager) Rollback(ordinal int) (Continuation, error) {
	if ordinal < 1 || ordinal > len(m.conts) {
		return Continuation{}, fmt.Errorf("%w: rollback %d (depth %d)", ErrBadLevel, ordinal, len(m.conts))
	}
	discarded := len(m.conts) - ordinal
	if err := m.h.RollbackLevel(ordinal); err != nil {
		return Continuation{}, err
	}
	cont := m.conts[ordinal-1]
	id := m.ids[ordinal-1]
	m.conts = m.conts[:ordinal-1]
	m.ids = m.ids[:ordinal-1]
	// Automatic re-entry: the state captured and restored is the state
	// immediately after level l was entered.
	reOrd := m.h.EnterLevel()
	m.conts = append(m.conts, cont)
	m.ids = append(m.ids, id)
	if reOrd != ordinal {
		panic(fmt.Sprintf("spec: re-entered level has ordinal %d, want %d", reOrd, ordinal))
	}
	m.rollbacks.Add(1)
	m.levelsDiscarded.Add(uint64(discarded))
	if m.obs.Rollback != nil {
		m.obs.Rollback(ordinal, id, discarded)
	}
	return cont, nil
}

// Abandon closes level `ordinal` without restoring or preserving anything
// beyond a commit. It is the C-level abort epilogue: after a rollback
// re-enters a level, user code that chose the failure path commits the
// (empty) re-entered level to leave speculation entirely.
func (m *Manager) Abandon(ordinal int) error { return m.Commit(ordinal) }

// Snapshot captures the continuation stack for migration (IDs are
// reassigned on restore; ordinals are preserved).
func (m *Manager) Snapshot() []Continuation {
	out := make([]Continuation, len(m.conts))
	for i, c := range m.conts {
		args := make([]heap.Value, len(c.Args))
		copy(args, c.Args)
		out[i] = Continuation{FnIndex: c.FnIndex, Args: args}
	}
	return out
}

// RestoreStack reinstalls a continuation stack on a manager whose heap was
// rebuilt from a snapshot containing the matching number of open levels.
func (m *Manager) RestoreStack(conts []Continuation) error {
	if m.h.LevelCount() != len(conts) {
		return fmt.Errorf("spec: heap has %d levels, continuation stack has %d", m.h.LevelCount(), len(conts))
	}
	if len(m.conts) != 0 {
		return errors.New("spec: RestoreStack on a manager with open levels")
	}
	m.conts = append(m.conts, conts...)
	for range conts {
		m.ids = append(m.ids, m.next)
		m.next++
	}
	return nil
}
