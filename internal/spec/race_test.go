package spec

import (
	"sync"
	"testing"
)

// TestStatsConcurrentScrape is the -race regression for the metrics
// path: one goroutine drives the enter/commit/rollback lifecycle (the
// engine worker) while others call Stats() (a metrics scrape). Before
// the counters moved to atomics this was a plain-read/plain-write race
// on Manager.stats.
func TestStatsConcurrentScrape(t *testing.T) {
	m, _ := newMgr(t)
	var events int
	m.SetObserver(Observer{
		Enter:    func(int, int64) { events++ },
		Commit:   func(int, int64) { events++ },
		Rollback: func(int, int64, int) { events++ },
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Stats()
			}
		}()
	}

	const iters = 500
	for i := 0; i < iters; i++ {
		m.Enter(Continuation{FnIndex: int64(i)})
		m.Enter(Continuation{FnIndex: int64(i)})
		if _, err := m.Rollback(2); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(2); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(1); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	s := m.Stats()
	if s.Enters != 2*iters || s.Commits != 2*iters || s.Rollbacks != iters {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDepth != 2 {
		t.Fatalf("MaxDepth = %d", s.MaxDepth)
	}
	// Observer fires once per transition, on the driving goroutine.
	if want := 5 * iters; events != want {
		t.Fatalf("observer events = %d, want %d", events, want)
	}
}
