package chaos

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Outcome classifies one scenario execution.
type Outcome int

const (
	// OutcomeOK: the run completed and matched the sequential reference
	// bit-exactly.
	OutcomeOK Outcome = iota
	// OutcomeShort: a scripted event never triggered — the randomized
	// run finished before its trigger condition was reachable. Not a
	// bug; the scenario simply over-asked (the shrinker never has to
	// see these).
	OutcomeShort
	// OutcomeMismatch: the run completed but a node's result diverged
	// from the reference — the oracle failure the fuzzer hunts.
	OutcomeMismatch
	// OutcomeHang: the run exceeded its deadline.
	OutcomeHang
	// OutcomeError: the run failed before producing a verifiable result
	// (resurrection error, spawn error, …).
	OutcomeError
	// OutcomePanic: the run panicked.
	OutcomePanic
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeShort:
		return "short"
	case OutcomeMismatch:
		return "mismatch"
	case OutcomeHang:
		return "hang"
	case OutcomeError:
		return "error"
	case OutcomePanic:
		return "panic"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Failed reports whether the outcome is one the fuzzer must shrink and
// report.
func (o Outcome) Failed() bool {
	return o == OutcomeMismatch || o == OutcomeHang || o == OutcomeError || o == OutcomePanic
}

// Report is the result of executing one scenario.
type Report struct {
	Scenario *Scenario
	Outcome  Outcome
	Err      error
	Elapsed  time.Duration
}

// ExecConfig tunes scenario execution.
type ExecConfig struct {
	// Timeout bounds one scenario run (default 20s). A run that exceeds
	// it is classified OutcomeHang.
	Timeout time.Duration
	// Metrics, when set, receives the fuzzer's coverage counters
	// (chaos.scenarios, chaos.outcome.*, chaos.event.*, chaos.net.*).
	Metrics *obs.Registry
	// Logf, when set, receives per-scenario progress lines.
	Logf func(format string, args ...any)
}

// counter is nil-registry-safe.
func (c ExecConfig) count(name string, delta uint64) {
	if c.Metrics != nil {
		c.Metrics.Counter(name).Add(delta)
	}
}

// Execute runs one scenario against its bit-exact oracle and classifies
// the outcome. The run happens on a separate goroutine so a hang (or a
// panic on a runner goroutine that the runner surfaces as an error) is
// caught at the deadline rather than wedging the fuzzer.
func Execute(s *Scenario, cfg ExecConfig) *Report {
	if cfg.Timeout == 0 {
		cfg.Timeout = 20 * time.Second
	}
	start := time.Now()
	rep := &Report{Scenario: s}

	type done struct {
		err      error
		panicked bool
	}
	ch := make(chan done, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- done{err: fmt.Errorf("panic: %v\n%s", r, debug.Stack()), panicked: true}
			}
		}()
		ch <- done{err: runScenario(s, cfg)}
	}()

	select {
	case d := <-ch:
		rep.Elapsed = time.Since(start)
		switch {
		case d.panicked:
			rep.Outcome, rep.Err = OutcomePanic, d.err
		case d.err == nil:
			rep.Outcome = OutcomeOK
		case isShortErr(d.err):
			rep.Outcome, rep.Err = OutcomeShort, d.err
		case isMismatchErr(d.err):
			rep.Outcome, rep.Err = OutcomeMismatch, d.err
		case isHangErr(d.err):
			rep.Outcome, rep.Err = OutcomeHang, d.err
		default:
			rep.Outcome, rep.Err = OutcomeError, d.err
		}
	case <-time.After(cfg.Timeout):
		rep.Elapsed = time.Since(start)
		rep.Outcome = OutcomeHang
		rep.Err = fmt.Errorf("scenario still running after %s", cfg.Timeout)
	}

	cfg.count("chaos.scenarios", 1)
	cfg.count("chaos.outcome."+rep.Outcome.String(), 1)
	cfg.count("chaos.app."+s.App, 1)
	if s.Script != nil {
		for _, ev := range s.Script.Events {
			kind := ev.Kind
			if kind == "" {
				kind = workload.KindFail
			}
			cfg.count("chaos.event."+kind, 1)
		}
	}
	return rep
}

// isShortErr matches the script driver's "event never completed" report:
// the generated run ended before the event's trigger was reachable.
func isShortErr(err error) bool {
	return err != nil && contains(err.Error(), "never completed")
}

// mismatchError marks an oracle divergence: the run completed but the
// workload's verifier rejected the result.
type mismatchError struct{ err error }

func (e mismatchError) Error() string { return e.err.Error() }
func (e mismatchError) Unwrap() error { return e.err }

func isMismatchErr(err error) bool {
	var m mismatchError
	return errors.As(err, &m)
}

// isHangErr matches in-run deadline expiry surfaced as an error.
func isHangErr(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return contains(msg, "timed out") || contains(msg, "timeout") || contains(msg, "deadline")
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// runScenario executes the scenario once: in-process when it has no
// network conditions, distributed (goroutine workers over a loopback
// hub, each link wrapped in the profile's fault injector) when it does.
func runScenario(s *Scenario, cfg ExecConfig) error {
	w, err := workload.Get(s.App)
	if err != nil {
		return err
	}
	p, err := workload.Normalize(w, s.Params)
	if err != nil {
		return err
	}
	timeout := cfg.Timeout - time.Second
	if timeout < time.Second {
		timeout = time.Second
	}

	if s.Net.Zero() {
		rc := workload.RunConfig{
			Script:  s.Script,
			Timeout: timeout,
			// Keep put-count trigger stalls well under the scenario
			// deadline so an unreachable trigger classifies as short, not
			// as a hang.
			StallTimeout: 2 * time.Second,
		}
		if s.Replicas > 0 {
			repl, err := replStore(s.Replicas)
			if err != nil {
				return err
			}
			rc.Store = repl
		}
		res, err := workload.Run(w, p, rc)
		if err != nil {
			return err
		}
		if err := w.Verify(p, res.Nodes); err != nil {
			return mismatchError{err}
		}
		return nil
	}

	var (
		specMu sync.Mutex
		specs  []*workload.WorkerConfig
	)
	spawn := func(join string, node int64, resume string) error {
		wc := &workload.WorkerConfig{
			Join: join, Node: node, Params: p, Resume: resume,
			Timeout:   timeout,
			RetryBase: 5 * time.Millisecond,
			Fault:     s.Net.Spec(),
		}
		specMu.Lock()
		specs = append(specs, wc)
		specMu.Unlock()
		go func() {
			if _, err := workload.RunWorker(w, *wc); err != nil && err != workload.ErrNodeFailed {
				if cfg.Logf != nil {
					cfg.Logf("chaos: seed %d: worker %d: %v", s.Seed, node, err)
				}
			}
		}()
		return nil
	}
	dc := workload.DistributedConfig{Spawn: spawn}
	if s.Replicas > 0 {
		repl, err := replStore(s.Replicas)
		if err != nil {
			return err
		}
		dc.Store = repl
	}
	res, err := workload.RunDistributed(w, p, s.Script, dc, timeout)
	if err != nil {
		return err
	}
	specMu.Lock()
	for _, wc := range specs {
		countNet(cfg, wc.Fault)
	}
	specMu.Unlock()
	if err := w.Verify(p, res.Nodes); err != nil {
		return mismatchError{err}
	}
	return nil
}

// countNet folds one link's fault counters into the coverage metrics.
func countNet(cfg ExecConfig, f *transport.FaultSpec) {
	if f == nil {
		return
	}
	cfg.count("chaos.net.dropped", uint64(f.Dropped()))
	cfg.count("chaos.net.duplicated", uint64(f.Duplicated()))
	cfg.count("chaos.net.held", uint64(f.Held()))
	cfg.count("chaos.net.reordered", uint64(f.Reordered()))
}

// replStore builds an n-way replicated in-memory store (majority write
// quorum) for storekill scenarios.
func replStore(n int) (migrate.Store, error) {
	replicas := make([]migrate.Store, n)
	for i := range replicas {
		replicas[i] = cluster.NewMemStore()
	}
	return store.NewReplicated(replicas, 0, store.Options{})
}
