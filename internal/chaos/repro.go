package chaos

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// Repro files are fault-script files (directly loadable by mojrun
// -script: every chaos-specific line is a '#' comment) with "#!"
// directive comments that carry the rest of the scenario — app,
// parameters, network profile, originating seed — so the chaos loader
// replays the whole thing exactly:
//
//	#! app=kvserve nodes=4 size=4 steps=6 ck=2 aux=4 workers=2 engine=jit ckpt=async replicas=3
//	#! net salt=42 drop=10 dup=20 hold=10 holdbudget=2 reorder=2
//	#! seed=1234
//	fail 1@1 delay=ck:1
//	partition 0,1|2,3 after=2 heal=3

// FormatRepro renders a scenario as a repro file.
func FormatRepro(s *Scenario) string {
	var b strings.Builder
	p := s.Params
	fmt.Fprintf(&b, "#! app=%s nodes=%d size=%d steps=%d ck=%d", s.App, p.Nodes, p.Size, p.Steps, p.CheckpointInterval)
	if p.Aux != 0 {
		fmt.Fprintf(&b, " aux=%d", p.Aux)
	}
	if p.Workers != 0 {
		fmt.Fprintf(&b, " workers=%d", p.Workers)
	}
	if p.Engine != "" {
		fmt.Fprintf(&b, " engine=%s", p.Engine)
	}
	if p.Ckpt != "" {
		fmt.Fprintf(&b, " ckpt=%s", p.Ckpt)
	}
	if s.Replicas > 0 {
		fmt.Fprintf(&b, " replicas=%d", s.Replicas)
	}
	b.WriteByte('\n')
	if !s.Net.Zero() {
		n := s.Net
		fmt.Fprintf(&b, "#! net salt=%d drop=%d dup=%d hold=%d holdbudget=%d reorder=%d\n",
			n.Salt, n.DropPct, n.DupPct, n.HoldPct, n.HoldBudget, n.Reorder)
	}
	if s.Seed != 0 {
		fmt.Fprintf(&b, "#! seed=%d\n", s.Seed)
	}
	b.WriteString(workload.FormatScript(s.Script))
	return b.String()
}

// WriteRepro writes the scenario's repro file.
func WriteRepro(path string, s *Scenario) error {
	return os.WriteFile(path, []byte(FormatRepro(s)), 0o644)
}

// ParseRepro loads a repro file: "#!" directives rebuild the scenario,
// the remaining lines parse as a fault script.
func ParseRepro(r io.Reader) (*Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := &Scenario{}
	var scriptLines []string
	for lineno, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if d, ok := strings.CutPrefix(line, "#!"); ok {
			if err := parseDirective(strings.TrimSpace(d), s); err != nil {
				return nil, fmt.Errorf("repro line %d: %v", lineno+1, err)
			}
			continue
		}
		scriptLines = append(scriptLines, raw)
	}
	if s.App == "" {
		return nil, fmt.Errorf("repro file has no \"#! app=...\" directive")
	}
	script, err := workload.ParseScriptString(strings.Join(scriptLines, "\n"))
	if err != nil {
		return nil, err
	}
	s.Script = script
	return s, nil
}

// LoadRepro is ParseRepro over a file.
func LoadRepro(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ParseRepro(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// parseDirective applies one "#!" directive body to the scenario.
func parseDirective(d string, s *Scenario) error {
	fields := strings.Fields(d)
	if len(fields) == 0 {
		return fmt.Errorf("empty directive")
	}
	if fields[0] == "net" {
		if s.Net == nil {
			s.Net = &NetProfile{}
		}
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return fmt.Errorf("malformed net option %q", f)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("net option %q: %v", f, err)
			}
			switch key {
			case "salt":
				s.Net.Salt = n
			case "drop":
				s.Net.DropPct = int(n)
			case "dup":
				s.Net.DupPct = int(n)
			case "hold":
				s.Net.HoldPct = int(n)
			case "holdbudget":
				s.Net.HoldBudget = int(n)
			case "reorder":
				s.Net.Reorder = int(n)
			default:
				return fmt.Errorf("unknown net option %q", key)
			}
		}
		return nil
	}
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("malformed option %q", f)
		}
		switch key {
		case "app":
			s.App = val
		case "engine":
			s.Params.Engine = val
		case "ckpt":
			s.Params.Ckpt = val
		default:
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("option %q: %v", f, err)
			}
			switch key {
			case "nodes":
				s.Params.Nodes = int(n)
			case "size":
				s.Params.Size = int(n)
			case "steps":
				s.Params.Steps = int(n)
			case "ck":
				s.Params.CheckpointInterval = int(n)
			case "aux":
				s.Params.Aux = int(n)
			case "workers":
				s.Params.Workers = int(n)
			case "replicas":
				s.Replicas = int(n)
			case "seed":
				s.Seed = n
			default:
				return fmt.Errorf("unknown option %q", key)
			}
		}
	}
	return nil
}
