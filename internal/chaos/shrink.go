package chaos

import (
	"time"

	"repro/internal/workload"
)

// Shrink minimizes a failing scenario: it repeatedly proposes simpler
// candidates — drop a script event, strip or narrow the network
// conditions, shrink parameters — re-executes each, keeps any candidate
// that still fails, and loops to a fixpoint. The result is the smallest
// scenario the shrinker could confirm still reproduces a failure, ready
// to be written as a repro file.
//
// Re-execution is inherently timing-dependent (kills race checkpoint
// boundaries), so a candidate is only accepted when it fails; a
// candidate that passes may still be flaky, but the shrinker errs
// toward keeping reproducers that actually fired. Attempts counts every
// candidate execution, so callers can budget shrinking.
func Shrink(s *Scenario, cfg ExecConfig, maxAttempts int) (*Scenario, int) {
	if maxAttempts <= 0 {
		maxAttempts = 40
	}
	// Shrinking re-runs many candidates; don't let each one burn the
	// full scenario deadline.
	if cfg.Timeout == 0 || cfg.Timeout > 10*time.Second {
		cfg.Timeout = 10 * time.Second
	}
	cfg.Metrics = nil // candidate runs must not pollute coverage counters

	cur := cloneScenario(s)
	attempts := 0
	stillFails := func(c *Scenario) bool {
		if attempts >= maxAttempts {
			return false
		}
		attempts++
		return Execute(c, cfg).Outcome.Failed()
	}

	for changed := true; changed && attempts < maxAttempts; {
		changed = false
		for _, cand := range candidates(cur) {
			if stillFails(cand) {
				cur = cand
				changed = true
				break // restart candidate generation from the smaller scenario
			}
		}
	}
	return cur, attempts
}

// candidates proposes one-step simplifications, most aggressive first.
func candidates(s *Scenario) []*Scenario {
	var out []*Scenario
	add := func(mutate func(*Scenario) bool) {
		c := cloneScenario(s)
		if mutate(c) && validScenario(c) {
			out = append(out, c)
		}
	}

	// Drop the whole network profile (moves the run in-process).
	add(func(c *Scenario) bool {
		if c.Net.Zero() {
			return false
		}
		c.Net = nil
		return true
	})
	// Drop each script event.
	if s.Script != nil {
		for i := range s.Script.Events {
			i := i
			add(func(c *Scenario) bool {
				evs := c.Script.Events
				c.Script.Events = append(append([]workload.FaultEvent{}, evs[:i]...), evs[i+1:]...)
				if !hasStoreKill(c.Script) {
					c.Replicas = 0
				}
				return true
			})
		}
	}
	// Narrow individual network conditions.
	for _, f := range []func(*NetProfile) bool{
		func(n *NetProfile) bool { old := n.Reorder; n.Reorder = 0; return old != 0 },
		func(n *NetProfile) bool { old := n.HoldPct; n.HoldPct, n.HoldBudget = 0, 0; return old != 0 },
		func(n *NetProfile) bool { old := n.DropPct; n.DropPct = 0; return old != 0 },
		func(n *NetProfile) bool { old := n.DupPct; n.DupPct = 0; return old != 0 },
	} {
		f := f
		add(func(c *Scenario) bool {
			if c.Net == nil {
				return false
			}
			if !f(c.Net) {
				return false
			}
			if c.Net.Zero() {
				c.Net = nil
			}
			return true
		})
	}
	// Simplify parameters.
	add(func(c *Scenario) bool {
		if c.Params.Workers == 0 {
			return false
		}
		c.Params.Workers = 0
		return true
	})
	add(func(c *Scenario) bool {
		if c.Params.Ckpt == "" {
			return false
		}
		c.Params.Ckpt = ""
		return true
	})
	add(func(c *Scenario) bool {
		if c.Params.Steps <= 2*c.Params.CheckpointInterval {
			return false
		}
		c.Params.Steps -= c.Params.CheckpointInterval
		if c.Params.Aux > c.Params.Steps {
			c.Params.Aux = c.Params.Steps
		}
		return true
	})
	add(func(c *Scenario) bool {
		if c.Params.Size <= 1 {
			return false
		}
		c.Params.Size = c.Params.Size / 2
		if c.Params.Size < 1 {
			c.Params.Size = 1
		}
		return true
	})
	return out
}

func hasStoreKill(s *workload.FaultScript) bool {
	if s == nil {
		return false
	}
	for _, ev := range s.Events {
		if ev.Kind == workload.KindStoreKill {
			return true
		}
	}
	return false
}

// validScenario rejects candidates whose mutated parameters the
// workload's own validation refuses, and scripts that reference nodes
// the shrunken topology no longer has.
func validScenario(s *Scenario) bool {
	w, err := workload.Get(s.App)
	if err != nil {
		return false
	}
	if _, err := workload.Normalize(w, s.Params); err != nil {
		return false
	}
	if hasStoreKill(s.Script) && s.Replicas == 0 {
		return false
	}
	return true
}

func cloneScenario(s *Scenario) *Scenario {
	c := *s
	if s.Net != nil {
		n := *s.Net
		c.Net = &n
	}
	if s.Script != nil {
		evs := make([]workload.FaultEvent, len(s.Script.Events))
		copy(evs, s.Script.Events)
		for i := range evs {
			evs[i].SetA = append([]int64{}, evs[i].SetA...)
			evs[i].SetB = append([]int64{}, evs[i].SetB...)
		}
		c.Script = &workload.FaultScript{Events: evs}
	}
	return &c
}
