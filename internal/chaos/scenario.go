// Package chaos is the adversarial scenario fuzzer: from a single int64
// seed it deterministically generates a Scenario — a workload, randomized
// parameters, a randomized fault script mixing node kills, store-replica
// kills, network partitions and resurrection-window re-kills, and
// per-node frame-level network conditions — executes it against the
// workload's bit-exact sequential reference, and when a run diverges,
// hangs or panics, shrinks the scenario to a minimal reproducer in the
// -script file format.
//
// Everything about a scenario derives from its seed via a private
// math/rand stream and splitmix-style per-message hashes, so a failing
// seed replays exactly (mojfuzz -seed S) and a committed repro file
// replays forever (internal/chaos/corpus).
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/transport"
	"repro/internal/workload"
)

// engineNames is the registered engine list (sorted by the registry).
func engineNames() []string { return engine.Names() }

// NetProfile is a deterministic, serializable description of per-link
// network misbehaviour. It compiles to transport.FaultSpec predicates
// driven by a splitmix hash of (salt, src, dst, tag, occurrence), so the
// same profile always perturbs the same messages.
//
// DropPct applies only to occurrence >= 2 — duplicate transmissions and
// replays. The first transmission of every message always passes, which
// keeps every generated scenario live by construction: the keyed
// idempotent delivery layer treats the lost duplicates as the no-ops
// they are.
type NetProfile struct {
	Salt       int64 `json:"salt"`
	DropPct    int   `json:"drop_pct"`    // drop duplicate transmissions (occ >= 2)
	DupPct     int   `json:"dup_pct"`     // duplicate a frame
	HoldPct    int   `json:"hold_pct"`    // withhold a frame (latency skew)
	HoldBudget int   `json:"hold_budget"` // writes a held frame waits out
	Reorder    int   `json:"reorder"`     // reorder window (0 or >= 2)
}

// Zero reports whether the profile perturbs nothing.
func (n *NetProfile) Zero() bool {
	return n == nil || (n.DropPct == 0 && n.DupPct == 0 && n.HoldPct == 0 && n.Reorder == 0)
}

// splitmix64 is the finalizer from the splitmix64 generator: a cheap,
// well-mixed hash for per-message fault decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (n *NetProfile) roll(kind, src, dst, tag int64, occ int) int {
	h := splitmix64(uint64(n.Salt) ^ uint64(kind)<<56 ^
		uint64(src)<<40 ^ uint64(dst)<<24 ^ uint64(tag)<<8 ^ uint64(occ))
	return int(h % 100)
}

// Spec compiles the profile into a fresh transport.FaultSpec for one
// worker link. Each call returns a new spec (counters are per-link).
func (n *NetProfile) Spec() *transport.FaultSpec {
	if n.Zero() {
		return nil
	}
	spec := &transport.FaultSpec{
		ReorderWindow: n.Reorder,
		// Tight wall-clock bound: a withheld trailing frame stalls its
		// receiver until the safety flush, and chaos runs thousands of
		// scenarios — keep each stall short.
		MaxHold: 50 * time.Millisecond,
	}
	if n.DropPct > 0 {
		spec.Drop = func(src, dst, tag int64, occ int) bool {
			return occ >= 2 && n.roll(1, src, dst, tag, occ) < n.DropPct
		}
	}
	if n.DupPct > 0 {
		spec.Dup = func(src, dst, tag int64, occ int) bool {
			return n.roll(2, src, dst, tag, occ) < n.DupPct
		}
	}
	if n.HoldPct > 0 && n.HoldBudget > 0 {
		spec.Hold = func(src, dst, tag int64, occ int) int {
			if n.roll(3, src, dst, tag, occ) < n.HoldPct {
				return n.HoldBudget
			}
			return 0
		}
	}
	return spec
}

// Scenario is one fully-determined adversarial run: a workload, its
// parameters, an ordered fault script, and (optionally) network
// conditions. A scenario with a nil Net runs on the in-process cluster;
// one with conditions runs distributed, every worker link wrapped in the
// profile's fault injector.
type Scenario struct {
	Seed   int64
	App    string
	Params workload.Params
	Script *workload.FaultScript
	Net    *NetProfile
	// Replicas, when > 0, backs the run with an N-way replicated
	// in-memory store so storekill events have replicas to kill.
	Replicas int
}

// String renders a one-line summary for logs.
func (s *Scenario) String() string {
	p := s.Params
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d %s nodes=%d size=%d steps=%d ck=%d", s.Seed, s.App, p.Nodes, p.Size, p.Steps, p.CheckpointInterval)
	if p.Aux != 0 {
		fmt.Fprintf(&b, " aux=%d", p.Aux)
	}
	if p.Workers != 0 {
		fmt.Fprintf(&b, " workers=%d", p.Workers)
	}
	fmt.Fprintf(&b, " engine=%s ckpt=%s", engineName(p.Engine), ckptName(p.Ckpt))
	if s.Replicas > 0 {
		fmt.Fprintf(&b, " replicas=%d", s.Replicas)
	}
	if !s.Net.Zero() {
		n := s.Net
		fmt.Fprintf(&b, " net[drop=%d dup=%d hold=%d/%d reorder=%d]", n.DropPct, n.DupPct, n.HoldPct, n.HoldBudget, n.Reorder)
	}
	if s.Script != nil && len(s.Script.Events) > 0 {
		fmt.Fprintf(&b, " events=%d", len(s.Script.Events))
	}
	return b.String()
}

func engineName(e string) string {
	if e == "" {
		return "vm"
	}
	return e
}

func ckptName(c string) string {
	if c == "" {
		return "full"
	}
	return c
}

// GenConfig bounds scenario generation.
type GenConfig struct {
	// Apps restricts generation to these workload names. Empty means
	// every registered workload.
	Apps []string
	// Engines restricts the engine choice. Empty means every registered
	// engine.
	Engines []string
}

// migratingNode returns the node that live-migrates away mid-run for
// apps that have one (its checkpoint name stops accumulating writes
// after the handoff, so kills of it must trigger on its first
// checkpoint), or -1.
func migratingNode(app string) int64 {
	switch app {
	case "pipeline", "kvserve":
		return 1
	}
	return -1
}

// Generate deterministically derives the scenario for a seed. The same
// seed, app list and engine list always produce the same scenario.
func Generate(seed int64, cfg GenConfig) (*Scenario, error) {
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = workload.Names()
	}
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = engineNames()
	}
	sort.Strings(apps)
	sort.Strings(engines)

	rng := rand.New(rand.NewSource(seed))
	app := apps[rng.Intn(len(apps))]
	w, err := workload.Get(app)
	if err != nil {
		return nil, err
	}

	s := &Scenario{Seed: seed, App: app}
	s.Params = genParams(rng, app)
	s.Params.Engine = genEngine(rng, engines)
	if _, err := workload.Normalize(w, s.Params); err != nil {
		return nil, fmt.Errorf("chaos: seed %d generated invalid params for %s: %w", seed, app, err)
	}

	// Half the scenarios run distributed with network conditions; the
	// other half run in-process (which is where the worker-pool widths
	// and speculation scheduling get shaken).
	if rng.Intn(2) == 0 {
		s.Net = genNet(rng)
	}

	wantStoreKill := rng.Intn(4) == 0 && s.Net.Zero()
	if wantStoreKill {
		s.Replicas = 3
	}
	s.Script = genScript(rng, w, s.Params, wantStoreKill)
	return s, nil
}

// genParams randomizes the workload parameters within each app's valid
// envelope.
func genParams(rng *rand.Rand, app string) workload.Params {
	var p workload.Params
	p.CheckpointInterval = 1 + rng.Intn(3) // 1..3
	rounds := 2 + rng.Intn(3)              // checkpoint rounds: 2..4
	p.Steps = p.CheckpointInterval * rounds
	p.Size = 2 + rng.Intn(4) // 2..5
	p.Workers = []int{0, 1, 2, 4}[rng.Intn(4)]
	p.Ckpt = []string{"", "delta", "async"}[rng.Intn(3)]

	switch app {
	case "grid":
		p.Nodes = 2 + rng.Intn(3) // 2..4
		p.Aux = 4 + rng.Intn(5)   // columns
	case "allreduce":
		p.Nodes = 2 + rng.Intn(3)
	case "taskfarm":
		p.Nodes = 3 + rng.Intn(2) // master + >= 2 workers
	case "pipeline":
		p.Nodes = 4 + rng.Intn(2) // >= 3 stages + spare
		// The migration batch must be a checkpoint boundary within Steps.
		p.Aux = p.CheckpointInterval * (1 + rng.Intn(rounds))
	case "kvserve":
		p.Nodes = 4 + rng.Intn(2) // front-end + >= 2 shards + spare
		p.Aux = p.CheckpointInterval * (1 + rng.Intn(rounds))
	}
	return p
}

// genEngine picks the engine after params (kept separate so the param
// stream is engine-independent).
func genEngine(rng *rand.Rand, engines []string) string {
	return engines[rng.Intn(len(engines))]
}

// genNet randomizes a network profile. At least one condition is always
// active (a zero profile would be a plain in-process-equivalent run).
func genNet(rng *rand.Rand) *NetProfile {
	n := &NetProfile{Salt: rng.Int63()}
	for n.Zero() {
		if rng.Intn(2) == 0 {
			n.DupPct = 5 + rng.Intn(45)
		}
		if rng.Intn(2) == 0 {
			n.DropPct = 5 + rng.Intn(45) // duplicates only; see NetProfile
		}
		if rng.Intn(2) == 0 {
			n.HoldPct = 5 + rng.Intn(25)
			n.HoldBudget = 1 + rng.Intn(3)
		}
		if rng.Intn(3) == 0 {
			n.Reorder = 2 + rng.Intn(2)
		}
	}
	return n
}

// genScript randomizes the fault script: 0..3 events drawn from the full
// event mix, each constrained so it can actually fire against the
// generated topology.
func genScript(rng *rand.Rand, w workload.Workload, p workload.Params, storeKill bool) *workload.FaultScript {
	script := &workload.FaultScript{}
	nEvents := rng.Intn(4) // 0..3
	if storeKill && nEvents == 0 {
		nEvents = 1
	}
	starts := w.StartNodes(p)
	rounds := p.Steps / p.CheckpointInterval
	mig := migratingNode(w.Name())
	usedNoRevive := false
	for i := 0; i < nEvents; i++ {
		kind := rng.Intn(4)
		if !storeKill && kind == 1 {
			kind = 0 // storekill needs the replicated backing store
		}
		switch kind {
		case 1: // storekill
			ev := workload.FaultEvent{
				Kind:             workload.KindStoreKill,
				Node:             int64(rng.Intn(3)),
				AfterCheckpoints: 1 + rng.Intn(3),
				Delay:            time.Duration(1+rng.Intn(10)) * time.Millisecond,
			}
			// At most one permanently-down replica: a 3-way quorum
			// tolerates exactly one.
			if !usedNoRevive && rng.Intn(3) == 0 {
				ev.NoRevive = true
				ev.Delay = 0
				usedNoRevive = true
			}
			script.Events = append(script.Events, ev)
		case 2: // partition
			nodes := allNodes(w, p)
			if len(nodes) < 2 {
				continue
			}
			cut := 1 + rng.Intn(len(nodes)-1)
			perm := rng.Perm(len(nodes))
			var a, b []int64
			for j, idx := range perm {
				if j < cut {
					a = append(a, nodes[idx])
				} else {
					b = append(b, nodes[idx])
				}
			}
			// Sort both sides so the scenario round-trips bit-exactly
			// through the repro-file grammar (the parser emits sorted sets).
			sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
			sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
			script.Events = append(script.Events, workload.FaultEvent{
				Kind:             workload.KindPartition,
				SetA:             a,
				SetB:             b,
				AfterCheckpoints: 1 + rng.Intn(3),
				HealWrites:       1 + rng.Intn(3),
			})
		default: // fail / crashresurrect
			node := starts[rng.Intn(len(starts))]
			after := 1 + rng.Intn(rounds)
			if node == mig {
				// The migrating node writes exactly one checkpoint under
				// its own name before handing off, and trigger counts are
				// cumulative since run start — so its kill only hits the
				// pre-migration window when it is the script's FIRST event
				// (armed from the start). A later slot would arm after the
				// hand-off and resurrect a stale pre-migration copy, which
				// is a script-authoring error, not a runtime bug.
				if i != 0 {
					node = starts[0] // front-end / non-migrating fallback
				} else {
					after = 1
				}
			}
			ev := workload.FaultEvent{Node: node, AfterCheckpoints: after}
			if kind == 3 {
				ev.Kind = workload.KindCrashResurrect
			}
			switch rng.Intn(3) {
			case 0:
				ev.DelayCk = 1 + rng.Intn(2)
			default:
				ev.Delay = time.Duration(1+rng.Intn(20)) * time.Millisecond
			}
			script.Events = append(script.Events, ev)
		}
	}
	return script
}

func allNodes(w workload.Workload, p workload.Params) []int64 {
	nodes := append([]int64{}, w.StartNodes(p)...)
	nodes = append(nodes, w.SpareNodes(p)...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}
