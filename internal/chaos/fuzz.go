package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
)

// FuzzConfig drives a fuzzing campaign.
type FuzzConfig struct {
	// Seeds is the number of scenarios to run, starting at StartSeed.
	// Ignored when Budget is set.
	Seeds int
	// StartSeed is the first seed (default 1).
	StartSeed int64
	// Budget, when set, runs scenarios until the wall-clock budget is
	// spent instead of a fixed count.
	Budget time.Duration
	// Gen bounds scenario generation (app/engine filters).
	Gen GenConfig
	// Exec tunes per-scenario execution.
	Exec ExecConfig
	// MaxFailures stops the campaign early after this many failures
	// (default 5 — each failure costs a shrinking pass).
	MaxFailures int
	// ShrinkAttempts budgets each failure's shrinking pass.
	ShrinkAttempts int
	// ReproDir, when set, receives one shrunk repro file per failure
	// (chaos-seed-<seed>.script).
	ReproDir string
	// Logf, when set, receives campaign progress.
	Logf func(format string, args ...any)
}

// Failure records one failing scenario and its shrunk form.
type Failure struct {
	Seed      int64
	Outcome   Outcome
	Err       error
	Shrunk    *Scenario
	ReproPath string
}

// FuzzResult summarizes a campaign.
type FuzzResult struct {
	Scenarios int
	OK        int
	Short     int
	Failures  []Failure
	Elapsed   time.Duration
}

// Fuzz runs the campaign: generate, execute, classify; shrink and dump a
// repro for every failure.
func Fuzz(cfg FuzzConfig) (*FuzzResult, error) {
	if cfg.Seeds == 0 {
		cfg.Seeds = 50
	}
	if cfg.StartSeed == 0 {
		cfg.StartSeed = 1
	}
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = 5
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()
	res := &FuzzResult{}
	deadline := time.Time{}
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}

	for i := 0; ; i++ {
		if cfg.Budget > 0 {
			if !time.Now().Before(deadline) {
				break
			}
		} else if i >= cfg.Seeds {
			break
		}
		seed := cfg.StartSeed + int64(i)
		s, err := Generate(seed, cfg.Gen)
		if err != nil {
			return nil, fmt.Errorf("chaos: generating seed %d: %w", seed, err)
		}
		rep := Execute(s, cfg.Exec)
		res.Scenarios++
		switch {
		case rep.Outcome == OutcomeOK:
			res.OK++
		case rep.Outcome == OutcomeShort:
			res.Short++
			logf("seed %d short (%s): %v", seed, s.App, rep.Err)
		default:
			logf("seed %d FAILED (%s): %s: %v", seed, rep.Outcome, s.String(), rep.Err)
			fail := Failure{Seed: seed, Outcome: rep.Outcome, Err: rep.Err}
			shrunk, attempts := Shrink(s, cfg.Exec, cfg.ShrinkAttempts)
			fail.Shrunk = shrunk
			logf("seed %d shrunk after %d attempts: %s", seed, attempts, shrunk.String())
			if cfg.ReproDir != "" {
				path := filepath.Join(cfg.ReproDir, fmt.Sprintf("chaos-seed-%d.script", seed))
				if err := WriteRepro(path, shrunk); err != nil {
					logf("seed %d: writing repro: %v", seed, err)
				} else {
					fail.ReproPath = path
					logf("seed %d repro written to %s", seed, path)
				}
			}
			res.Failures = append(res.Failures, fail)
			if len(res.Failures) >= cfg.MaxFailures {
				logf("stopping after %d failures", len(res.Failures))
				res.Elapsed = time.Since(start)
				return res, nil
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Replay executes a scenario loaded from a repro file (or rebuilt from a
// seed) once and returns its report.
func Replay(s *Scenario, cfg ExecConfig) *Report {
	return Execute(s, cfg)
}

// ReplayCorpus executes every *.script repro in dir and returns the
// reports keyed by file path, in sorted order.
func ReplayCorpus(dir string, cfg ExecConfig) (map[string]*Report, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.script"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make(map[string]*Report, len(paths))
	for _, path := range paths {
		s, err := LoadRepro(path)
		if err != nil {
			return nil, err
		}
		out[path] = Execute(s, cfg)
	}
	return out, nil
}

// WriteBench writes the campaign's BENCH_chaos.json: throughput plus the
// event-mix and network coverage counters accumulated in reg.
func WriteBench(w io.Writer, res *FuzzResult, reg *obs.Registry) error {
	doc := map[string]any{
		"scenarios":   res.Scenarios,
		"ok":          res.OK,
		"short":       res.Short,
		"failures":    len(res.Failures),
		"elapsed_sec": res.Elapsed.Seconds(),
	}
	if res.Elapsed > 0 {
		doc["scenarios_per_sec"] = float64(res.Scenarios) / res.Elapsed.Seconds()
	}
	var seeds []int64
	for _, f := range res.Failures {
		seeds = append(seeds, f.Seed)
	}
	doc["failing_seeds"] = seeds
	if reg != nil {
		doc["coverage"] = reg.Snapshot()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteBenchFile is WriteBench to a path.
func WriteBenchFile(path string, res *FuzzResult, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteBench(f, res, reg)
}
