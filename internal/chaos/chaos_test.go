package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"

	_ "repro/internal/workload/apps" // register the workloads
)

// TestGenerateDeterministic: the same seed always derives the same
// scenario, and nearby seeds differ (the generator actually draws from
// the stream).
func TestGenerateDeterministic(t *testing.T) {
	var prev *Scenario
	same := 0
	for seed := int64(1); seed <= 50; seed++ {
		a, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d not deterministic:\n%s\nvs\n%s", seed, a, b)
		}
		if prev != nil && reflect.DeepEqual(a.Params, prev.Params) && a.App == prev.App {
			same++
		}
		prev = a
	}
	if same > 25 {
		t.Fatalf("%d/50 consecutive seeds produced identical scenarios", same)
	}
}

// TestGenerateValid: every generated scenario passes its workload's own
// validation and its script events reference real nodes.
func TestGenerateValid(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		s, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		w, err := workload.Get(s.App)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := workload.Normalize(w, s.Params); err != nil {
			t.Fatalf("seed %d: invalid params: %v", seed, err)
		}
		for _, ev := range s.Script.Events {
			if ev.Kind == workload.KindStoreKill && s.Replicas == 0 {
				t.Fatalf("seed %d: storekill event without a replicated store", seed)
			}
		}
	}
}

// TestGenerateCoversEventMix: across a modest seed range the generator
// emits every event kind and every network condition.
func TestGenerateCoversEventMix(t *testing.T) {
	kinds := map[string]int{}
	net := map[string]int{}
	for seed := int64(1); seed <= 400; seed++ {
		s, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range s.Script.Events {
			k := ev.Kind
			if k == "" {
				k = workload.KindFail
			}
			kinds[k]++
			if ev.DelayCk > 0 {
				kinds["delay=ck"]++
			}
		}
		if n := s.Net; !n.Zero() {
			if n.DropPct > 0 {
				net["drop"]++
			}
			if n.DupPct > 0 {
				net["dup"]++
			}
			if n.HoldPct > 0 {
				net["hold"]++
			}
			if n.Reorder > 0 {
				net["reorder"]++
			}
		}
	}
	for _, k := range []string{workload.KindFail, workload.KindStoreKill, workload.KindPartition, workload.KindCrashResurrect, "delay=ck"} {
		if kinds[k] == 0 {
			t.Errorf("no %s events in 400 seeds (mix: %v)", k, kinds)
		}
	}
	for _, k := range []string{"drop", "dup", "hold", "reorder"} {
		if net[k] == 0 {
			t.Errorf("no %s network condition in 400 seeds (mix: %v)", k, net)
		}
	}
}

// TestReproRoundTrip: FormatRepro → ParseRepro reproduces the scenario
// exactly (script events included) for a spread of generated scenarios.
func TestReproRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		s, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseRepro(strings.NewReader(FormatRepro(s)))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, FormatRepro(s))
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("seed %d round-trip mismatch:\n%#v\nvs\n%#v\nfile:\n%s", seed, got, s, FormatRepro(s))
		}
	}
}

// TestReproIsValidMojrunScript: every chaos-specific line in a repro
// file is a comment, so the workload script parser accepts the file
// as-is (what makes repros directly usable with mojrun -script).
func TestReproIsValidMojrunScript(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		s, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		script, err := workload.ParseScriptString(FormatRepro(s))
		if err != nil {
			t.Fatalf("seed %d: mojrun-compatible parse failed: %v\n%s", seed, err, FormatRepro(s))
		}
		want := 0
		if s.Script != nil {
			want = len(s.Script.Events)
		}
		if len(script.Events) != want {
			t.Fatalf("seed %d: script parse saw %d events, scenario has %d", seed, len(script.Events), want)
		}
	}
}

// TestExecuteSmallSweep: a short live campaign over the real workloads —
// every scenario must be ok or short (any failure here is a genuine
// robustness bug; commit a repro to the corpus alongside the fix).
func TestExecuteSmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos sweep")
	}
	reg := obs.NewRegistry()
	res, err := Fuzz(FuzzConfig{
		Seeds: 12,
		Exec:  ExecConfig{Timeout: 30 * time.Second, Metrics: reg, Logf: t.Logf},
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Failures {
		t.Errorf("seed %d failed (%s): %v\nshrunk: %s\nrepro:\n%s",
			f.Seed, f.Outcome, f.Err, f.Shrunk, FormatRepro(f.Shrunk))
	}
	if res.Scenarios != 12 {
		t.Fatalf("ran %d scenarios, want 12", res.Scenarios)
	}
}

// TestShrinkDropsIrrelevantParts: shrinking a scenario whose failure is
// injected (a canned predicate, not a real run) strips the events and
// conditions the failure does not depend on.
func TestShrinkCandidatesShrink(t *testing.T) {
	s, err := Generate(7, GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Force a rich scenario for the structural check.
	s.Net = &NetProfile{Salt: 1, DupPct: 20, HoldPct: 10, HoldBudget: 2, Reorder: 2}
	s.Script = &workload.FaultScript{Events: []workload.FaultEvent{
		{Node: 0, AfterCheckpoints: 1, Delay: time.Millisecond},
		{Node: 1, AfterCheckpoints: 1, DelayCk: 1},
	}}
	cands := candidates(s)
	if len(cands) == 0 {
		t.Fatal("no candidates for a rich scenario")
	}
	droppedNet, droppedEvent := false, false
	for _, c := range cands {
		if c.Net.Zero() && !s.Net.Zero() {
			droppedNet = true
		}
		if c.Script != nil && len(c.Script.Events) == len(s.Script.Events)-1 {
			droppedEvent = true
		}
		if !validScenario(c) {
			t.Fatalf("invalid candidate: %s", c)
		}
	}
	if !droppedNet || !droppedEvent {
		t.Fatalf("candidate set misses basic shrinks (net=%v event=%v)", droppedNet, droppedEvent)
	}
}

// TestCorpusReplays: every committed repro in the regression corpus
// still executes clean (ok or short — never mismatch/hang/panic). Run
// under -race in CI.
func TestCorpusReplays(t *testing.T) {
	reports, err := ReplayCorpus("corpus", ExecConfig{Timeout: 45 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("regression corpus is empty")
	}
	for path, rep := range reports {
		if rep.Outcome.Failed() {
			t.Errorf("%s: %s: %v", path, rep.Outcome, rep.Err)
		} else {
			t.Logf("%s: %s in %s", path, rep.Outcome, rep.Elapsed)
		}
	}
}
