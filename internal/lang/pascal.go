package lang

import (
	"strconv"
	"strings"
	"unicode"

	"repro/internal/fir"
)

// MCC is a multi-language compiler: the paper's frontends are C, Pascal,
// ML and Java, all lowered to the same FIR. This file implements MojPascal
// — a Pascal dialect with the same primitives — as a second frontend. It
// parses into the shared AST, so semantic analysis and CPS lowering are
// reused verbatim; only the concrete syntax differs.
//
// Dialect summary:
//
//	function fact(n: integer): integer;
//	var acc: integer;
//	begin
//	  if n <= 1 then begin fact := 1; exit; end;
//	  fact := n * fact(n - 1);
//	end;
//
//	procedure shout(v: integer);
//	begin print_int(v * 2); end;
//
// Types: integer, real, pointer (integer words), fpointer (real words).
// The function result is assigned to the function's name (or `result`);
// `exit` returns early. Loops: while..do, for i := a to b do, repeat-less.
// Relational: = <> < <= > >=; arithmetic: + - * div mod (integers), / on
// reals; boolean: and, or, not over integers; true/false are 1/0.
// Speculation/migration builtins are the same identifiers as MojC.

// CompilePascal translates MojPascal source into a type-checked FIR
// program against the given extern signatures.
func CompilePascal(src string, externs map[string]fir.ExternSig) (*fir.Program, error) {
	ast, err := parsePascal(src)
	if err != nil {
		return nil, err
	}
	sm, err := analyze(ast, externs)
	if err != nil {
		return nil, err
	}
	p, err := lower(ast, sm)
	if err != nil {
		return nil, err
	}
	if err := fir.Check(p, externs); err != nil {
		return nil, err
	}
	return p, nil
}

// Pascal lexer. Pascal is case-insensitive for keywords; we lowercase
// identifiers that match keywords but preserve user identifiers.

var pascalKeywords = map[string]bool{
	"function": true, "procedure": true, "var": true, "begin": true,
	"end": true, "if": true, "then": true, "else": true, "while": true,
	"do": true, "for": true, "to": true, "downto": true, "exit": true,
	"break": true, "continue": true, "integer": true, "real": true,
	"pointer": true, "fpointer": true, "and": true, "or": true,
	"not": true, "div": true, "mod": true, "true": true, "false": true,
}

var pascalPuncts = []string{
	":=", "<=", ">=", "<>", "+", "-", "*", "/", "=", "<", ">",
	"(", ")", "[", "]", ",", ";", ":",
}

func lexPascal(src string) ([]Token, error) {
	runes := []rune(src)
	pos, line, col := 0, 1, 1
	adv := func() rune {
		r := runes[pos]
		pos++
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
		return r
	}
	peek := func(i int) rune {
		if pos+i >= len(runes) {
			return 0
		}
		return runes[pos+i]
	}
	var toks []Token
	for {
		// Skip spaces and comments: { ... }, (* ... *), // line.
		for pos < len(runes) {
			switch {
			case unicode.IsSpace(peek(0)):
				adv()
			case peek(0) == '{':
				l0, c0 := line, col
				adv()
				closed := false
				for pos < len(runes) {
					if adv() == '}' {
						closed = true
						break
					}
				}
				if !closed {
					return nil, errf(l0, c0, "unterminated { comment")
				}
			case peek(0) == '(' && peek(1) == '*':
				l0, c0 := line, col
				adv()
				adv()
				closed := false
				for pos < len(runes) {
					if peek(0) == '*' && peek(1) == ')' {
						adv()
						adv()
						closed = true
						break
					}
					adv()
				}
				if !closed {
					return nil, errf(l0, c0, "unterminated (* comment")
				}
			case peek(0) == '/' && peek(1) == '/':
				for pos < len(runes) && peek(0) != '\n' {
					adv()
				}
			default:
				goto token
			}
		}
	token:
		l0, c0 := line, col
		if pos >= len(runes) {
			toks = append(toks, Token{Kind: TokEOF, Line: l0, Col: c0})
			return toks, nil
		}
		r := peek(0)
		switch {
		case unicode.IsLetter(r) || r == '_':
			var b strings.Builder
			for pos < len(runes) && (unicode.IsLetter(peek(0)) || unicode.IsDigit(peek(0)) || peek(0) == '_') {
				b.WriteRune(adv())
			}
			word := b.String()
			lw := strings.ToLower(word)
			if pascalKeywords[lw] {
				toks = append(toks, Token{Kind: TokKeyword, Text: lw, Line: l0, Col: c0})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Line: l0, Col: c0})
			}
		case unicode.IsDigit(r):
			var b strings.Builder
			isReal := false
			for pos < len(runes) {
				c := peek(0)
				if unicode.IsDigit(c) {
					b.WriteRune(adv())
				} else if c == '.' && !isReal && unicode.IsDigit(peek(1)) {
					isReal = true
					b.WriteRune(adv())
				} else {
					break
				}
			}
			if isReal {
				f, err := strconv.ParseFloat(b.String(), 64)
				if err != nil {
					return nil, errf(l0, c0, "bad real literal %q", b.String())
				}
				toks = append(toks, Token{Kind: TokFloat, Text: b.String(), FloatVal: f, Line: l0, Col: c0})
			} else {
				v, err := strconv.ParseInt(b.String(), 10, 64)
				if err != nil {
					return nil, errf(l0, c0, "bad integer literal %q", b.String())
				}
				toks = append(toks, Token{Kind: TokInt, Text: b.String(), IntVal: v, Line: l0, Col: c0})
			}
		case r == '\'':
			// Pascal string literal: 'text''with quotes'.
			adv()
			var b strings.Builder
			for {
				if pos >= len(runes) {
					return nil, errf(l0, c0, "unterminated string literal")
				}
				c := adv()
				if c == '\'' {
					if peek(0) == '\'' {
						adv()
						b.WriteRune('\'')
						continue
					}
					break
				}
				b.WriteRune(c)
			}
			toks = append(toks, Token{Kind: TokString, Text: b.String(), StrVal: b.String(), Line: l0, Col: c0})
		default:
			matched := false
			for _, p := range pascalPuncts {
				if strings.HasPrefix(string(runes[pos:]), p) {
					for range p {
						adv()
					}
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: l0, Col: c0})
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf(l0, c0, "unexpected character %q", r)
			}
		}
	}
}

// pparser is a recursive-descent parser for MojPascal producing the shared
// AST.
type pparser struct {
	toks   []Token
	pos    int
	fnName string // current function, for `fname := e` result assignment
	hasRes bool   // current decl is a function (not a procedure)
}

// resultVar is the synthetic local holding a Pascal function's result.
const resultVar = "__result"

func parsePascal(src string) (*Program, error) {
	toks, err := lexPascal(src)
	if err != nil {
		return nil, err
	}
	p := &pparser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF, "") {
		fn, err := p.decl()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	return prog, nil
}

func (p *pparser) cur() Token  { return p.toks[p.pos] }
func (p *pparser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *pparser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *pparser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *pparser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" && kind == TokIdent {
		want = "identifier"
	}
	return t, errf(t.Line, t.Col, "expected %q, found %s", want, t)
}

func (p *pparser) typeName() (Type, bool) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return 0, false
	}
	switch t.Text {
	case "integer":
		return TInt, true
	case "real":
		return TFloat, true
	case "pointer":
		return TPtr, true
	case "fpointer":
		return TFptr, true
	}
	return 0, false
}

// decl parses `function f(a: integer; b, c: real): integer; var ...;
// begin ... end;` or a procedure.
func (p *pparser) decl() (*FuncDecl, error) {
	t := p.cur()
	isFunc := p.accept(TokKeyword, "function")
	if !isFunc {
		if !p.accept(TokKeyword, "procedure") {
			return nil, errf(t.Line, t.Col, "expected function or procedure, found %s", t)
		}
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	fn := &FuncDecl{P: pos{t.Line, t.Col}, Name: name.Text, Ret: TVoid}

	if p.accept(TokPunct, "(") && !p.accept(TokPunct, ")") {
		for {
			var group []string
			for {
				id, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				group = append(group, id.Text)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ":"); err != nil {
				return nil, err
			}
			pt := p.cur()
			ptype, ok := p.typeName()
			if !ok {
				return nil, errf(pt.Line, pt.Col, "expected parameter type, found %s", pt)
			}
			p.next()
			for _, g := range group {
				fn.Params = append(fn.Params, Param{Type: ptype, Name: g})
			}
			if p.accept(TokPunct, ")") {
				break
			}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
		}
	}
	if isFunc {
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		rt := p.cur()
		ret, ok := p.typeName()
		if !ok {
			return nil, errf(rt.Line, rt.Col, "expected return type, found %s", rt)
		}
		p.next()
		fn.Ret = ret
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}

	// var sections.
	var vars []Stmt
	for p.accept(TokKeyword, "var") {
		for p.at(TokIdent, "") {
			var group []string
			for {
				id, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				group = append(group, id.Text)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ":"); err != nil {
				return nil, err
			}
			vt := p.cur()
			vtype, ok := p.typeName()
			if !ok {
				return nil, errf(vt.Line, vt.Col, "expected type, found %s", vt)
			}
			p.next()
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
			for _, g := range group {
				vars = append(vars, &DeclStmt{P: pos{vt.Line, vt.Col}, Type: vtype, Name: g})
			}
		}
	}

	p.fnName, p.hasRes = fn.Name, isFunc
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}

	// Assemble: result declaration, user vars, body, implicit return.
	var stmts []Stmt
	if isFunc {
		stmts = append(stmts, &DeclStmt{P: fn.P, Type: fn.Ret, Name: resultVar})
	}
	stmts = append(stmts, vars...)
	stmts = append(stmts, body...)
	if isFunc {
		stmts = append(stmts, &ReturnStmt{P: fn.P, Val: &Ident{P: fn.P, Name: resultVar}})
	}
	fn.Body = stmts
	return fn, nil
}

// block parses begin ... end.
func (p *pparser) block() ([]Stmt, error) {
	if _, err := p.expect(TokKeyword, "begin"); err != nil {
		return nil, err
	}
	var out []Stmt
	for {
		if p.accept(TokKeyword, "end") {
			return out, nil
		}
		if p.at(TokEOF, "") {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "unexpected end of file inside begin/end")
		}
		if p.accept(TokPunct, ";") {
			continue // empty statement
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.at(TokKeyword, "end") {
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
		}
	}
}

// stmtOrBlock parses either a begin..end block or a single statement.
func (p *pparser) stmtOrBlock() ([]Stmt, error) {
	if p.at(TokKeyword, "begin") {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *pparser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(TokKeyword, "begin"):
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{P: pos{t.Line, t.Col}, Body: body}, nil

	case p.accept(TokKeyword, "if"):
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "then"); err != nil {
			return nil, err
		}
		then, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{P: pos{t.Line, t.Col}, Cond: cond, Then: then}
		if p.accept(TokKeyword, "else") {
			els, err := p.stmtOrBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case p.accept(TokKeyword, "while"):
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "do"); err != nil {
			return nil, err
		}
		body, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{P: pos{t.Line, t.Col}, Cond: cond, Body: body}, nil

	case p.accept(TokKeyword, "for"):
		id, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":="); err != nil {
			return nil, err
		}
		from, err := p.expr()
		if err != nil {
			return nil, err
		}
		down := false
		if p.accept(TokKeyword, "downto") {
			down = true
		} else if _, err := p.expect(TokKeyword, "to"); err != nil {
			return nil, err
		}
		limit, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "do"); err != nil {
			return nil, err
		}
		body, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		// Desugar to the shared ForStmt. The loop variable comes from the
		// var section (Pascal requires it declared).
		pp := pos{t.Line, t.Col}
		cmp, step := "<=", "+"
		if down {
			cmp, step = ">=", "-"
		}
		return &ForStmt{
			P:    pp,
			Init: &AssignStmt{P: pp, Name: id.Text, Val: from},
			Cond: &Binary{P: pp, Op: cmp, L: &Ident{P: pp, Name: id.Text}, R: limit},
			Post: &AssignStmt{P: pp, Name: id.Text, Op: step, Val: &IntLit{P: pp, V: 1}},
			Body: body,
		}, nil

	case p.accept(TokKeyword, "exit"):
		pp := pos{t.Line, t.Col}
		if p.hasRes {
			return &ReturnStmt{P: pp, Val: &Ident{P: pp, Name: resultVar}}, nil
		}
		return &ReturnStmt{P: pp}, nil

	case p.accept(TokKeyword, "break"):
		return &BreakStmt{P: pos{t.Line, t.Col}}, nil
	case p.accept(TokKeyword, "continue"):
		return &ContinueStmt{P: pos{t.Line, t.Col}}, nil

	default:
		// Assignment, store, or call.
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		pp := pos{t.Line, t.Col}
		if p.accept(TokPunct, ":=") {
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			switch lhs := x.(type) {
			case *Ident:
				name := lhs.Name
				if p.hasRes && name == p.fnName {
					name = resultVar // `fname := e` sets the result
				}
				return &AssignStmt{P: pp, Name: name, Val: val}, nil
			case *Index:
				return &StoreStmt{P: pp, Base: lhs.Base, Idx: lhs.Idx, Val: val}, nil
			default:
				return nil, errf(pp.Line, pp.Col, "left side of := must be a variable or p[i]")
			}
		}
		if _, ok := x.(*Call); !ok {
			return nil, errf(pp.Line, pp.Col, "expression used as a statement must be a call")
		}
		return &ExprStmt{P: pp, X: x}, nil
	}
}

// Pascal expression precedence: or < and < relational < additive <
// multiplicative < unary.
func (p *pparser) expr() (Expr, error) { return p.orExpr() }

func (p *pparser) orExpr() (Expr, error) {
	lhs, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "or") {
		t := p.next()
		rhs, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{P: pos{t.Line, t.Col}, Op: "||", L: lhs, R: rhs}
	}
	return lhs, nil
}

func (p *pparser) andExpr() (Expr, error) {
	lhs, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "and") {
		t := p.next()
		rhs, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{P: pos{t.Line, t.Col}, Op: "&&", L: lhs, R: rhs}
	}
	return lhs, nil
}

var pascalRelOps = map[string]string{"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

func (p *pparser) relExpr() (Expr, error) {
	lhs, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		if op, ok := pascalRelOps[t.Text]; ok {
			p.next()
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &Binary{P: pos{t.Line, t.Col}, Op: op, L: lhs, R: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *pparser) addExpr() (Expr, error) {
	lhs, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, "+") || p.at(TokPunct, "-") {
		t := p.next()
		rhs, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{P: pos{t.Line, t.Col}, Op: t.Text, L: lhs, R: rhs}
	}
	return lhs, nil
}

func (p *pparser) mulExpr() (Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op string
		switch {
		case p.at(TokPunct, "*"):
			op = "*"
		case p.at(TokPunct, "/"):
			op = "/"
		case p.at(TokKeyword, "div"):
			op = "/"
		case p.at(TokKeyword, "mod"):
			op = "%"
		default:
			return lhs, nil
		}
		p.next()
		rhs, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{P: pos{t.Line, t.Col}, Op: op, L: lhs, R: rhs}
	}
}

func (p *pparser) unaryExpr() (Expr, error) {
	t := p.cur()
	if p.accept(TokKeyword, "not") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{P: pos{t.Line, t.Col}, Op: "!", X: x}, nil
	}
	if p.accept(TokPunct, "-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{P: pos{t.Line, t.Col}, Op: "-", X: x}, nil
	}
	return p.postfixExpr()
}

func (p *pparser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if p.accept(TokPunct, "[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{P: pos{t.Line, t.Col}, Base: x, Idx: idx}
			continue
		}
		return x, nil
	}
}

func (p *pparser) primaryExpr() (Expr, error) {
	t := p.cur()
	pp := pos{t.Line, t.Col}
	switch {
	case t.Kind == TokInt:
		p.next()
		return &IntLit{P: pp, V: t.IntVal}, nil
	case t.Kind == TokFloat:
		p.next()
		return &FloatLit{P: pp, V: t.FloatVal}, nil
	case t.Kind == TokString:
		p.next()
		return &StrLit{P: pp, V: t.StrVal}, nil
	case t.Kind == TokKeyword && t.Text == "true":
		p.next()
		return &IntLit{P: pp, V: 1}, nil
	case t.Kind == TokKeyword && t.Text == "false":
		p.next()
		return &IntLit{P: pp, V: 0}, nil
	case t.Kind == TokKeyword && (t.Text == "integer" || t.Text == "real"):
		// Casts: integer(e), real(e) map to the shared int()/float().
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		name := "int"
		if t.Text == "real" {
			name = "float"
		}
		return &Call{P: pp, Name: name, Args: []Expr{a}}, nil
	case t.Kind == TokIdent:
		p.next()
		if p.accept(TokPunct, "(") {
			call := &Call{P: pp, Name: t.Text}
			if !p.accept(TokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(TokPunct, ")") {
						break
					}
					if _, err := p.expect(TokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		return &Ident{P: pp, Name: t.Text}, nil
	case p.accept(TokPunct, "("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, errf(t.Line, t.Col, "expected expression, found %s", t)
	}
}
