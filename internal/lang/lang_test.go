package lang

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/risc"
	"repro/internal/rt"
	"repro/internal/vm"
)

// compileAndRun compiles MojC source and runs it on the interpreter,
// returning the exit code and output.
func compileAndRun(t *testing.T, src string, extra rt.Registry, args ...int64) (int64, string) {
	t.Helper()
	sigs := rt.StdExterns().Sigs()
	for n, e := range extra {
		sigs[n] = e.Sig
	}
	prog, err := Compile(src, sigs)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var out bytes.Buffer
	p := vm.NewProcess(prog, vm.Config{Fuel: 5_000_000, Stdout: &out, Args: args})
	for n, e := range extra {
		p.RegisterExtern(n, e.Sig, e.Fn)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v\nFIR:\n%s", err, fir.Format(prog))
	}
	st, err := p.Run()
	if st != vm.StatusHalted {
		t.Fatalf("status=%s err=%v (vm err=%v)\noutput: %s", st, err, p.Err(), out.String())
	}
	return p.HaltCode(), out.String()
}

func compileErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Compile(src, rt.StdExterns().Sigs())
	if err == nil {
		t.Fatalf("Compile accepted bad program:\n%s", src)
	}
	return err
}

func TestReturnConstant(t *testing.T) {
	code, _ := compileAndRun(t, `int main() { return 42; }`, nil)
	if code != 42 {
		t.Fatalf("code = %d", code)
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	code, _ := compileAndRun(t, `int main() { return 2 + 3 * 4 - 10 / 2 % 3; }`, nil)
	// 2 + 12 - (5 % 3) = 14 - 2 = 12
	if code != 12 {
		t.Fatalf("code = %d, want 12", code)
	}
}

func TestLocalsAndAssignment(t *testing.T) {
	code, _ := compileAndRun(t, `
int main() {
	int x = 3;
	int y;
	y = x * 2;
	x += y;
	x *= 2;
	return x;
}`, nil)
	if code != 18 {
		t.Fatalf("code = %d, want 18", code)
	}
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	code, _ := compileAndRun(t, `
int fact(int n) {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
int main() { return fact(10); }`, nil)
	if code != 3628800 {
		t.Fatalf("fact(10) = %d", code)
	}
}

func TestMutualRecursion(t *testing.T) {
	code, _ := compileAndRun(t, `
int isOdd(int n) {
	if (n == 0) { return 0; }
	return isEven(n - 1);
}
int isEven(int n) {
	if (n == 0) { return 1; }
	return isOdd(n - 1);
}
int main() { return isOdd(101) * 10 + isEven(101); }`, nil)
	if code != 10 {
		t.Fatalf("code = %d, want 10", code)
	}
}

func TestNestedCallsInExpressions(t *testing.T) {
	code, _ := compileAndRun(t, `
int add(int a, int b) { return a + b; }
int main() {
	int x = 5;
	int r = add(add(1, 2), add(3, x)) * 2;
	return r + x; // live variable survives the calls
}`, nil)
	if code != (3+8)*2+5 {
		t.Fatalf("code = %d, want %d", code, (3+8)*2+5)
	}
}

func TestWhileLoop(t *testing.T) {
	code, _ := compileAndRun(t, `
int main() {
	int i = 0;
	int sum = 0;
	while (i < 10) {
		sum += i;
		i += 1;
	}
	return sum;
}`, nil)
	if code != 45 {
		t.Fatalf("code = %d, want 45", code)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	code, _ := compileAndRun(t, `
int main() {
	int sum = 0;
	for (int i = 0; i < 100; i += 1) {
		if (i % 2 == 0) { continue; }
		if (i > 20) { break; }
		sum += i;
	}
	return sum; // 1+3+...+19 = 100
}`, nil)
	if code != 100 {
		t.Fatalf("code = %d, want 100", code)
	}
}

func TestNestedLoops(t *testing.T) {
	code, _ := compileAndRun(t, `
int main() {
	int total = 0;
	for (int i = 0; i < 5; i += 1) {
		for (int j = 0; j < 5; j += 1) {
			if (j == i) { continue; }
			total += 1;
		}
	}
	return total;
}`, nil)
	if code != 20 {
		t.Fatalf("code = %d, want 20", code)
	}
}

func TestArraysAndCompoundStores(t *testing.T) {
	code, _ := compileAndRun(t, `
int main() {
	ptr a = alloc(10);
	for (int i = 0; i < 10; i += 1) {
		a[i] = i * i;
	}
	a[3] += 100;
	int sum = 0;
	for (int i = 0; i < 10; i += 1) {
		sum += a[i];
	}
	return sum;
}`, nil)
	want := int64(100)
	for i := int64(0); i < 10; i++ {
		want += i * i
	}
	if code != want {
		t.Fatalf("code = %d, want %d", code, want)
	}
}

func TestFloatArrays(t *testing.T) {
	code, _ := compileAndRun(t, `
int main() {
	fptr u = falloc(4);
	u[0] = 1.5;
	u[1] = 2.5;
	u[2] = u[0] + u[1];
	u[3] = u[2] * 2.0;
	float total = u[0] + u[1] + u[2] + u[3];
	return int(total); // 1.5+2.5+4+8 = 16
}`, nil)
	if code != 16 {
		t.Fatalf("code = %d, want 16", code)
	}
}

func TestCasts(t *testing.T) {
	code, _ := compileAndRun(t, `
int main() {
	float f = float(7) / 2.0;
	return int(f * 10.0); // 35
}`, nil)
	if code != 35 {
		t.Fatalf("code = %d, want 35", code)
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	code, out := compileAndRun(t, `
int noisy(int v) {
	print_int(v);
	return v;
}
int main() {
	int a = 0 && noisy(1); // noisy must not run
	int b = 1 || noisy(2); // noisy must not run
	int c = 1 && noisy(3); // runs
	int d = 0 || noisy(0); // runs
	return a * 1000 + b * 100 + c * 10 + d;
}`, nil)
	if code != 110 {
		t.Fatalf("code = %d, want 110", code)
	}
	if out != "3\n0\n" {
		t.Fatalf("output = %q (short circuit violated)", out)
	}
}

func TestStringsAndPrint(t *testing.T) {
	code, out := compileAndRun(t, `
int main() {
	print_str("hello mojave");
	ptr s = "abc";
	return s[0] + s[1] + s[2] + s[3] * 1000; // NUL terminator
}`, nil)
	if !strings.Contains(out, "hello mojave") {
		t.Fatalf("output = %q", out)
	}
	if code != 'a'+'b'+'c' {
		t.Fatalf("code = %d", code)
	}
}

func TestVoidFunctions(t *testing.T) {
	code, out := compileAndRun(t, `
void shout(int n) {
	print_int(n * 2);
}
int main() {
	shout(21);
	return 7;
}`, nil)
	if code != 7 || out != "42\n" {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestGetarg(t *testing.T) {
	code, _ := compileAndRun(t, `int main() { return getarg(0) + getarg(1); }`, nil, 30, 12)
	if code != 42 {
		t.Fatalf("code = %d", code)
	}
}

func TestPointerComparison(t *testing.T) {
	code, _ := compileAndRun(t, `
int main() {
	ptr a = alloc(1);
	ptr b = alloc(1);
	ptr c = a;
	int r = 0;
	if (a == c) { r += 1; }
	if (a != b) { r += 10; }
	return r;
}`, nil)
	if code != 11 {
		t.Fatalf("code = %d, want 11", code)
	}
}

func TestSpeculateCommit(t *testing.T) {
	// Figure 1's success path: speculate, do work, commit.
	code, _ := compileAndRun(t, `
int main() {
	ptr acct = alloc(2);
	acct[0] = 100;
	acct[1] = 50;
	int specid = speculate();
	if (specid > 0) {
		acct[0] -= 30;
		acct[1] += 30;
		commit(specid);
		return acct[0] * 1000 + acct[1]; // 70*1000 + 80
	}
	return -1;
}`, nil)
	if code != 70080 {
		t.Fatalf("code = %d, want 70080", code)
	}
}

func TestSpeculateAbortRestoresState(t *testing.T) {
	// Figure 1's failure path: abort rolls the heap back and speculate()
	// yields a non-positive value, taking the else branch.
	code, _ := compileAndRun(t, `
int main() {
	ptr acct = alloc(2);
	acct[0] = 100;
	acct[1] = 50;
	int specid = speculate();
	if (specid > 0) {
		acct[0] = 0;
		acct[1] = 0;
		abort(specid);
		return 999; // unreachable
	}
	// Heap must be restored.
	return acct[0] * 1000 + acct[1]; // 100*1000 + 50
}`, nil)
	if code != 100050 {
		t.Fatalf("code = %d, want 100050", code)
	}
}

func TestSpeculateRetryWithExternalProgress(t *testing.T) {
	// Retry with progress recorded outside the rolled-back state: an
	// extern counter survives rollbacks (models the neighbor's border data
	// arriving on the retry pass, Figure 2).
	calls := 0
	extra := rt.Registry{
		"attempt": {
			Sig: fir.ExternSig{Result: fir.TyInt},
			Fn: func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
				calls++
				return heap.IntVal(int64(calls)), nil
			},
		},
	}
	code, _ := compileAndRun(t, `
int main() {
	ptr cell = alloc(1);
	cell[0] = 10;
	int specid = speculate();
	int n = attempt();
	cell[0] += n; // speculative write
	if (n < 3) {
		retry(specid); // rollback: cell[0] back to 10, re-enter
	}
	commit(specid);
	return cell[0]; // 10 + 3 (only the committed pass survives)
}`, extra)
	if code != 13 {
		t.Fatalf("code = %d, want 13", code)
	}
	if calls != 3 {
		t.Fatalf("attempt() called %d times, want 3", calls)
	}
}

func TestNestedSpeculations(t *testing.T) {
	code, _ := compileAndRun(t, `
int main() {
	ptr p = alloc(1);
	p[0] = 1;
	int outer = speculate();
	if (outer > 0) {
		p[0] = 2;
		int innerid = speculate();
		if (innerid > 0) {
			p[0] = 3;
			abort(innerid); // inner rolled back: p[0] == 2
			return 90;
		}
		int mid = p[0]; // 2
		commit(outer);
		return mid * 10 + p[0]; // 22
	}
	return -1;
}`, nil)
	if code != 22 {
		t.Fatalf("code = %d, want 22", code)
	}
}

func TestMojCOnRiscBackend(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(15); }`
	prog, err := Compile(src, rt.StdExterns().Sigs())
	if err != nil {
		t.Fatal(err)
	}
	m, err := risc.NewMachine(prog, nil, risc.Config{Fuel: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != rt.StatusHalted || m.HaltCode() != 610 {
		t.Fatalf("risc: status=%s code=%d, want halted 610", st, m.HaltCode())
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no main":           `int notmain() { return 0; }`,
		"bad main sig":      `float main() { return 1.0; }`,
		"undeclared var":    `int main() { return x; }`,
		"type mismatch":     `int main() { int x = 1.5; return x; }`,
		"mixed arithmetic":  `int main() { return 1 + int(2.5) + (1 * 2); } int f() { float x = 1.0; return int(x + 1); }`,
		"bad call arity":    `int f(int a) { return a; } int main() { return f(1, 2); }`,
		"unknown function":  `int main() { return ghost(); }`,
		"break outside":     `int main() { break; return 0; }`,
		"void returns val":  `void f() { return 3; } int main() { f(); return 0; }`,
		"spec as expr":      `int main() { return speculate() + 1; }`,
		"commit not stmt":   `int main() { int x = commit(1); return x; }`,
		"store to int":      `int main() { int x = 1; x[0] = 2; return 0; }`,
		"float index":       `int main() { ptr p = alloc(1); return p[1.5]; }`,
		"redeclare":         `int main() { int x = 1; int x = 2; return x; }`,
		"assign undeclared": `int main() { y = 3; return 0; }`,
		"float mod":         `int main() { float f = 1.0; f %= 2.0; return 0; }`,
		"unterminated str":  `int main() { print_str("oops); return 0; }`,
		"stray char":        `int main() { return 1 @ 2; }`,
		"shadow builtin":    `int alloc(int n) { return n; } int main() { return 0; }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if name == "mixed arithmetic" {
				// This one is actually legal; replace with a real mix error.
				src = `int main() { return 1 + 2.5; }`
			}
			compileErr(t, src)
		})
	}
}

func TestDollarIdentifiersRejected(t *testing.T) {
	compileErr(t, `int main() { int $x = 1; return $x; }`)
}

func TestElseIfChain(t *testing.T) {
	src := `
int classify(int n) {
	if (n < 0) { return -1; }
	else if (n == 0) { return 0; }
	else if (n < 10) { return 1; }
	else { return 2; }
}
int main() {
	return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
}`
	code, _ := compileAndRun(t, src, nil)
	if code != -1000+0+10+2 {
		t.Fatalf("code = %d, want %d", code, -1000+0+10+2)
	}
}

func TestComments(t *testing.T) {
	code, _ := compileAndRun(t, `
// line comment
int main() {
	/* block
	   comment */
	return 5; // trailing
}`, nil)
	if code != 5 {
		t.Fatalf("code = %d", code)
	}
}
