package lang

import (
	"fmt"

	"repro/internal/fir"
)

// expr compiles an expression in CPS: k receives an atom holding the
// value. Expressions never mutate the environment (MojC has no assignment
// expressions), so env is read-only here; calls to user functions split
// the control flow into a materialized continuation with a heap-allocated
// closure environment.
func (f *fnLower) expr(e Expr, ev *env, k func(fir.Atom) fir.Expr) fir.Expr {
	switch e := e.(type) {
	case *IntLit:
		return k(fir.I(e.V))
	case *FloatLit:
		return k(fir.F(e.V))

	case *StrLit:
		// Strings are NUL-terminated int-word blocks built inline.
		runes := []rune(e.V)
		t := f.l.fresh("str")
		inner := k(fir.V(t))
		u := f.l.fresh("u")
		inner = fir.Let{Dst: u, DstType: fir.TyUnit, Op: fir.OpStore,
			Args: []fir.Atom{fir.V(t), fir.I(int64(len(runes))), fir.I(0)}, Body: inner}
		for i := len(runes) - 1; i >= 0; i-- {
			u := f.l.fresh("u")
			inner = fir.Let{Dst: u, DstType: fir.TyUnit, Op: fir.OpStore,
				Args: []fir.Atom{fir.V(t), fir.I(int64(i)), fir.I(int64(runes[i]))}, Body: inner}
		}
		return fir.Let{Dst: t, DstType: fir.TyPtr, Op: fir.OpAlloc,
			Args: []fir.Atom{fir.I(int64(len(runes)) + 1)}, Body: inner}

	case *Ident:
		b := ev.find(e.Name)
		if b == nil {
			panic(lowerPanic{errf(e.P.Line, e.P.Col, "internal: unbound %q after sema", e.Name)})
		}
		return k(fir.V(b.fir))

	case *Unary:
		return f.expr(e.X, ev, func(a fir.Atom) fir.Expr {
			dst := f.l.fresh("t")
			switch e.Op {
			case "!":
				return fir.Let{Dst: dst, DstType: fir.TyInt, Op: fir.OpNot, Args: []fir.Atom{a}, Body: k(fir.V(dst))}
			case "-":
				if f.l.sm.types[e.X] == TFloat {
					return fir.Let{Dst: dst, DstType: fir.TyFloat, Op: fir.OpFNeg, Args: []fir.Atom{a}, Body: k(fir.V(dst))}
				}
				return fir.Let{Dst: dst, DstType: fir.TyInt, Op: fir.OpNeg, Args: []fir.Atom{a}, Body: k(fir.V(dst))}
			}
			panic(lowerPanic{errf(e.P.Line, e.P.Col, "internal: unary %q", e.Op)})
		})

	case *Binary:
		if e.Op == "&&" || e.Op == "||" {
			return f.logical(e, ev, k)
		}
		lt := f.l.sm.types[e.L]
		return f.expr(e.L, ev, func(la fir.Atom) fir.Expr {
			return f.protect(ev, firType(lt), la, func(getL func() fir.Atom) fir.Expr {
				return f.expr(e.R, ev, func(ra fir.Atom) fir.Expr {
					la := getL()
					dst := f.l.fresh("t")
					if lt.pointer() && e.Op == "!=" {
						ne := f.l.fresh("t")
						return fir.Let{Dst: dst, DstType: fir.TyInt, Op: fir.OpPtrEq, Args: []fir.Atom{la, ra},
							Body: fir.Let{Dst: ne, DstType: fir.TyInt, Op: fir.OpNot, Args: []fir.Atom{fir.V(dst)}, Body: k(fir.V(ne))}}
					}
					op, rt := binaryOp(e.Op, lt)
					return fir.Let{Dst: dst, DstType: rt, Op: op, Args: []fir.Atom{la, ra}, Body: k(fir.V(dst))}
				})
			})
		})

	case *Index:
		elem := f.l.sm.types[e.Base].elem()
		return f.expr(e.Base, ev, func(ba fir.Atom) fir.Expr {
			return f.protect(ev, fir.TyPtr, ba, func(getB func() fir.Atom) fir.Expr {
				return f.expr(e.Idx, ev, func(ia fir.Atom) fir.Expr {
					dst := f.l.fresh("t")
					return fir.Let{Dst: dst, DstType: firType(elem), Op: fir.OpLoad, Args: []fir.Atom{getB(), ia}, Body: k(fir.V(dst))}
				})
			})
		})

	case *Call:
		return f.callExpr(e, ev, k)

	default:
		panic(lowerPanic{fmt.Errorf("mojc: cannot lower expression %T", e)})
	}
}

// exprs compiles an argument list left to right, protecting every earlier
// argument across the compilation of the later ones.
func (f *fnLower) exprs(list []Expr, ev *env, k func([]fir.Atom) fir.Expr) fir.Expr {
	if len(list) == 0 {
		return k(nil)
	}
	t := firType(f.l.sm.types[list[0]])
	return f.expr(list[0], ev, func(a fir.Atom) fir.Expr {
		return f.protect(ev, t, a, func(get func() fir.Atom) fir.Expr {
			return f.exprs(list[1:], ev, func(rest []fir.Atom) fir.Expr {
				return k(append([]fir.Atom{get()}, rest...))
			})
		})
	})
}

// protect keeps an intermediate atom alive across a subcompilation that
// may split the current function (a user call materializes a continuation
// and reloads only environment bindings, so bare atoms held in Go closures
// would dangle). It binds the atom as an anonymous environment temporary;
// gen receives a getter that resolves the temporary's current FIR name at
// generation time.
func (f *fnLower) protect(ev *env, ft fir.Type, a fir.Atom, gen func(get func() fir.Atom) fir.Expr) fir.Expr {
	switch a.(type) {
	case fir.IntLit, fir.FloatLit, fir.FunLit, fir.UnitLit:
		// Literals survive splits unchanged.
		return gen(func() fir.Atom { return a })
	}
	tmp := f.l.fresh("tmp")
	name := tmp // unique, never collides with source names
	m := ev.mark()
	ev.declareTyped(name, ft, tmp)
	body := gen(func() fir.Atom { return fir.V(ev.find(name).fir) })
	ev.release(m)
	return fir.Let{Dst: tmp, DstType: ft, Op: fir.OpMove, Args: []fir.Atom{a}, Body: body}
}

// logical compiles short-circuit && and || with a materialized join so the
// continuation is generated exactly once.
func (f *fnLower) logical(e *Binary, ev *env, k func(fir.Atom) fir.Expr) fir.Expr {
	n := len(ev.vars)
	name := f.materialize("bjoin", ev, []fir.Param{{Name: "$t", Type: fir.TyInt}},
		func(inner *env) fir.Expr {
			// k reads env lazily: rebind during generation, then restore.
			saved := ev.vars
			ev.vars = inner.vars
			body := k(fir.V("$t"))
			ev.vars = saved
			return body
		})

	jump := func(a fir.Atom) fir.Expr {
		// Slice to the capture-time prefix: evaluating the right operand
		// may have pushed protect() temporaries past it.
		return fir.Call{Fn: fir.FunLit{Name: name}, Args: append([]fir.Atom{a}, ev.atoms()[:n]...)}
	}
	norm := func(a fir.Atom) fir.Expr {
		dst := f.l.fresh("b")
		return fir.Let{Dst: dst, DstType: fir.TyInt, Op: fir.OpNe, Args: []fir.Atom{a, fir.I(0)}, Body: jump(fir.V(dst))}
	}

	return f.expr(e.L, ev, func(la fir.Atom) fir.Expr {
		evalR := f.expr(e.R, ev, norm)
		if e.Op == "&&" {
			return fir.If{Cond: la, Then: evalR, Else: jump(fir.I(0))}
		}
		return fir.If{Cond: la, Then: jump(fir.I(1)), Else: evalR}
	})
}

// callExpr compiles calls in expression position: builtins, externs, and
// user functions (which require a continuation split with closure
// conversion: live variables are spilled into a heap block the
// continuation reloads).
func (f *fnLower) callExpr(e *Call, ev *env, k func(fir.Atom) fir.Expr) fir.Expr {
	switch e.Name {
	case "int":
		at := f.l.sm.types[e.Args[0]]
		return f.expr(e.Args[0], ev, func(a fir.Atom) fir.Expr {
			if at == TInt {
				return k(a)
			}
			dst := f.l.fresh("t")
			return fir.Let{Dst: dst, DstType: fir.TyInt, Op: fir.OpFloatToInt, Args: []fir.Atom{a}, Body: k(fir.V(dst))}
		})
	case "float":
		at := f.l.sm.types[e.Args[0]]
		return f.expr(e.Args[0], ev, func(a fir.Atom) fir.Expr {
			if at == TFloat {
				return k(a)
			}
			dst := f.l.fresh("t")
			return fir.Let{Dst: dst, DstType: fir.TyFloat, Op: fir.OpIntToFloat, Args: []fir.Atom{a}, Body: k(fir.V(dst))}
		})
	case "alloc", "falloc":
		return f.expr(e.Args[0], ev, func(a fir.Atom) fir.Expr {
			dst := f.l.fresh("p")
			return fir.Let{Dst: dst, DstType: fir.TyPtr, Op: fir.OpAlloc, Args: []fir.Atom{a}, Body: k(fir.V(dst))}
		})
	case "len":
		return f.expr(e.Args[0], ev, func(a fir.Atom) fir.Expr {
			dst := f.l.fresh("n")
			return fir.Let{Dst: dst, DstType: fir.TyInt, Op: fir.OpLen, Args: []fir.Atom{a}, Body: k(fir.V(dst))}
		})
	case "speculate", "commit", "abort", "retry", "migrate":
		panic(lowerPanic{errf(e.P.Line, e.P.Col, "internal: %s reached expression lowering", e.Name)})
	}

	if sig, ok := f.l.sm.externs[e.Name]; ok {
		return f.exprs(e.Args, ev, func(args []fir.Atom) fir.Expr {
			dst := f.l.fresh("x")
			res := fir.Atom(fir.V(dst))
			ft := firType(sig.ret)
			if sig.ret == TVoid {
				ft = fir.TyUnit
				res = fir.UnitLit{}
			}
			return fir.Extern{Dst: dst, DstType: ft, Name: e.Name, Args: args, Body: k(res)}
		})
	}

	sig, ok := f.l.sm.funcs[e.Name]
	if !ok {
		panic(lowerPanic{errf(e.P.Line, e.P.Col, "internal: unknown callee %q after sema", e.Name)})
	}
	return f.exprs(e.Args, ev, func(args []fir.Atom) fir.Expr {
		// Materialize the return continuation: ($kenv, res?) reloading
		// every live binding from the environment block.
		retName := f.l.fresh("ret")
		kenvP := f.l.fresh("kenv")
		var lead []fir.Param
		lead = append(lead, fir.Param{Name: kenvP, Type: fir.TyPtr})
		resName := ""
		if sig.ret != TVoid {
			resName = f.l.fresh("res")
			lead = append(lead, fir.Param{Name: resName, Type: firType(sig.ret)})
		}
		inner := ev.clone()
		body := func() fir.Expr {
			// Reload bindings from the closure environment. Snapshot the
			// reload names first: k may rebind variables (assignments),
			// and the load destinations must be the names k started from.
			names := make([]string, len(inner.vars))
			types := make([]fir.Type, len(inner.vars))
			for i := range inner.vars {
				names[i] = f.l.fresh(inner.vars[i].name)
				types[i] = inner.vars[i].ftype
				inner.vars[i].fir = names[i]
			}
			saved := ev.vars
			ev.vars = inner.vars
			var tail fir.Expr
			if sig.ret != TVoid {
				tail = k(fir.V(resName))
			} else {
				tail = k(fir.UnitLit{})
			}
			ev.vars = saved
			// Wrap loads back-to-front.
			for i := len(names) - 1; i >= 0; i-- {
				tail = fir.Let{Dst: names[i], DstType: types[i], Op: fir.OpLoad,
					Args: []fir.Atom{fir.V(kenvP), fir.I(int64(i))}, Body: tail}
			}
			return tail
		}()
		f.l.emit(&fir.Function{Name: retName, Params: lead, Body: body})

		// Call site: allocate and fill the environment block, then tail
		// call the callee with (args..., envblock, $retN).
		blk := f.l.fresh("clo")
		var out fir.Expr = fir.Call{Fn: fir.FunLit{Name: e.Name},
			Args: append(append([]fir.Atom{}, args...), fir.V(blk), fir.FunLit{Name: retName})}
		for i := len(ev.vars) - 1; i >= 0; i-- {
			u := f.l.fresh("u")
			out = fir.Let{Dst: u, DstType: fir.TyUnit, Op: fir.OpStore,
				Args: []fir.Atom{fir.V(blk), fir.I(int64(i)), fir.V(ev.vars[i].fir)}, Body: out}
		}
		return fir.Let{Dst: blk, DstType: fir.TyPtr, Op: fir.OpAlloc,
			Args: []fir.Atom{fir.I(int64(len(ev.vars)))}, Body: out}
	})
}

// binaryOp maps a MojC binary operator at an operand type to a FIR op and
// result type.
func binaryOp(op string, lt Type) (fir.Op, fir.Type) {
	if lt == TFloat {
		switch op {
		case "+":
			return fir.OpFAdd, fir.TyFloat
		case "-":
			return fir.OpFSub, fir.TyFloat
		case "*":
			return fir.OpFMul, fir.TyFloat
		case "/":
			return fir.OpFDiv, fir.TyFloat
		case "==":
			return fir.OpFEq, fir.TyInt
		case "!=":
			return fir.OpFNe, fir.TyInt
		case "<":
			return fir.OpFLt, fir.TyInt
		case "<=":
			return fir.OpFLe, fir.TyInt
		case ">":
			return fir.OpFGt, fir.TyInt
		case ">=":
			return fir.OpFGe, fir.TyInt
		}
	}
	if lt.pointer() {
		switch op {
		case "==":
			return fir.OpPtrEq, fir.TyInt

		}
	}
	switch op {
	case "+":
		return fir.OpAdd, fir.TyInt
	case "-":
		return fir.OpSub, fir.TyInt
	case "*":
		return fir.OpMul, fir.TyInt
	case "/":
		return fir.OpDiv, fir.TyInt
	case "%":
		return fir.OpMod, fir.TyInt
	case "&":
		return fir.OpAnd, fir.TyInt
	case "|":
		return fir.OpOr, fir.TyInt
	case "^":
		return fir.OpXor, fir.TyInt
	case "==":
		return fir.OpEq, fir.TyInt
	case "!=":
		return fir.OpNe, fir.TyInt
	case "<":
		return fir.OpLt, fir.TyInt
	case "<=":
		return fir.OpLe, fir.TyInt
	case ">":
		return fir.OpGt, fir.TyInt
	case ">=":
		return fir.OpGe, fir.TyInt
	}
	return fir.OpMove, fir.TyInt
}
