package lang

import (
	"fmt"

	"repro/internal/fir"
)

// Lowering converts MojC to FIR. The transformation is a classic CPS
// conversion with closure conversion, driven by the constraints FIR
// imposes (§3):
//
//   - FIR variables are immutable → mutable MojC locals become SSA-style
//     rebindings, with join points materialized as top-level FIR functions
//     whose parameters carry the live variables;
//   - FIR functions never return → every source function receives an
//     explicit continuation; because FIR has no closures, a continuation
//     is a (environment pointer, function index) pair, and call sites spill
//     their live variables into a heap-allocated environment block the
//     continuation reloads (closure conversion);
//   - loops become recursive functions with the loop-carried variables
//     (including the caller's continuation pair) as parameters;
//   - `x = speculate()` becomes the FIR speculate pseudo-instruction whose
//     continuation receives the status integer c and dispatches: first
//     entry and retry() re-entries bind x to the positive stable specid;
//     abort() re-entries commit the empty re-entered level and bind x to
//     -c, reproducing Figure 1's `if ((specid=speculate())>0)` pattern.

// cRetry is the rollback status the retry() builtin passes; cAbort is what
// abort() passes (the interpreter's TrapC = 2 is reserved for trapped
// runtime errors, which take the abort path).
const (
	cAbort = 1
	cRetry = 3
)

// Names of the implicit continuation bindings threaded through every
// function. '$' never appears in source identifiers, so no collisions.
const (
	kEnvVar = "$kenv"
	kFunVar = "$k"
)

// binding is one live variable tracked during lowering. ftype is the FIR
// type ($k bindings have function types not expressible as MojC types).
type binding struct {
	name  string
	typ   Type
	ftype fir.Type
	fir   string
}

// env is the ordered set of live bindings. Order is significant: it
// defines the parameter lists and environment-block layouts of
// materialized functions.
type env struct {
	vars []binding
}

func (e *env) clone() *env {
	out := &env{vars: make([]binding, len(e.vars))}
	copy(out.vars, e.vars)
	return out
}

func (e *env) declare(name string, t Type, firName string) {
	e.vars = append(e.vars, binding{name: name, typ: t, ftype: firType(t), fir: firName})
}

func (e *env) declareTyped(name string, ft fir.Type, firName string) {
	e.vars = append(e.vars, binding{name: name, typ: TInt, ftype: ft, fir: firName})
}

func (e *env) find(name string) *binding {
	for i := len(e.vars) - 1; i >= 0; i-- {
		if e.vars[i].name == name {
			return &e.vars[i]
		}
	}
	return nil
}

func (e *env) mark() int     { return len(e.vars) }
func (e *env) release(n int) { e.vars = e.vars[:n] }

func (e *env) atoms() []fir.Atom {
	out := make([]fir.Atom, len(e.vars))
	for i, b := range e.vars {
		out[i] = fir.V(b.fir)
	}
	return out
}

func firType(t Type) fir.Type {
	switch t {
	case TFloat:
		return fir.TyFloat
	case TPtr, TFptr:
		return fir.TyPtr
	default:
		return fir.TyInt
	}
}

// lowerer holds program-wide lowering state.
type lowerer struct {
	sm       *sema
	out      []*fir.Function
	gen      int
	migLabel int
}

func (l *lowerer) fresh(prefix string) string {
	l.gen++
	// Strip any $ from reused prefixes to keep names readable.
	if len(prefix) > 0 && prefix[0] == '$' {
		prefix = prefix[1:]
	}
	return fmt.Sprintf("$%s_%d", prefix, l.gen)
}

func (l *lowerer) emit(f *fir.Function) { l.out = append(l.out, f) }

// kType returns the FIR type of a continuation function for a return type:
// fun(envptr) for void, fun(envptr, T) otherwise.
func kType(ret Type) fir.Type {
	if ret == TVoid {
		return fir.TyFun(fir.TyPtr)
	}
	return fir.TyFun(fir.TyPtr, firType(ret))
}

// lower converts an analyzed program to FIR.
func lower(prog *Program, sm *sema) (*fir.Program, error) {
	l := &lowerer{sm: sm}
	for _, fn := range prog.Funcs {
		fl := &fnLower{l: l, fn: fn}
		if err := fl.lower(); err != nil {
			return nil, err
		}
	}
	// $halt(env, code) terminates the process; $start invokes main with a
	// null environment and $halt as its continuation.
	l.emit(fir.Fn("$halt", fir.Ps("env", fir.TyPtr, "code", fir.TyInt), fir.Halt{Code: fir.V("code")}))
	l.emit(fir.Fn("$start", nil,
		fir.Let{Dst: "$null", DstType: fir.TyPtr, Op: fir.OpPtrNull,
			Body: fir.Call{Fn: fir.FunLit{Name: "main"}, Args: []fir.Atom{fir.V("$null"), fir.FunLit{Name: "$halt"}}}}))
	return fir.NewProgram("$start", l.out...), nil
}

// fnLower lowers one source function.
type fnLower struct {
	l  *lowerer
	fn *FuncDecl
}

// loopCtx carries the targets of break and continue: materialized FIR
// functions whose parameters are the bindings captured at loop entry.
type loopCtx struct {
	breakFn  string
	contFn   string
	captured []string
}

func (f *fnLower) lower() error {
	var params []fir.Param
	e0 := &env{}
	for _, p := range f.fn.Params {
		firName := f.l.fresh(p.Name)
		params = append(params, fir.Param{Name: firName, Type: firType(p.Type)})
		e0.declare(p.Name, p.Type, firName)
	}
	kenvName := f.l.fresh("kenv")
	kName := f.l.fresh("k")
	params = append(params,
		fir.Param{Name: kenvName, Type: fir.TyPtr},
		fir.Param{Name: kName, Type: kType(f.fn.Ret)})
	e0.declareTyped(kEnvVar, fir.TyPtr, kenvName)
	e0.declareTyped(kFunVar, kType(f.fn.Ret), kName)

	body, err := f.stmts(f.fn.Body, e0, nil, func(e *env) fir.Expr {
		return f.emitReturn(e, nil)
	})
	if err != nil {
		return err
	}
	f.l.emit(fir.Fn(f.fn.Name, params, body))
	return nil
}

// emitReturn calls the function's continuation with val (nil = implicit
// zero-value/void return).
func (f *fnLower) emitReturn(e *env, val fir.Atom) fir.Expr {
	kenv := e.find(kEnvVar)
	k := e.find(kFunVar)
	if f.fn.Ret == TVoid {
		return fir.Call{Fn: fir.V(k.fir), Args: []fir.Atom{fir.V(kenv.fir)}}
	}
	if val != nil {
		return fir.Call{Fn: fir.V(k.fir), Args: []fir.Atom{fir.V(kenv.fir), val}}
	}
	switch f.fn.Ret {
	case TFloat:
		return fir.Call{Fn: fir.V(k.fir), Args: []fir.Atom{fir.V(kenv.fir), fir.F(0)}}
	case TPtr, TFptr:
		z := f.l.fresh("z")
		return fir.Let{Dst: z, DstType: fir.TyPtr, Op: fir.OpPtrNull,
			Body: fir.Call{Fn: fir.V(k.fir), Args: []fir.Atom{fir.V(kenv.fir), fir.V(z)}}}
	default:
		return fir.Call{Fn: fir.V(k.fir), Args: []fir.Atom{fir.V(kenv.fir), fir.I(0)}}
	}
}

// materialize creates a top-level FIR function over env's bindings (after
// optional leading params) whose body is produced by gen with the bindings
// rebound to the new parameters. It returns the function name.
func (f *fnLower) materialize(prefix string, e *env, lead []fir.Param, gen func(inner *env) fir.Expr) string {
	name := f.l.fresh(prefix)
	inner := e.clone()
	params := append([]fir.Param{}, lead...)
	for i := range inner.vars {
		pn := f.l.fresh(inner.vars[i].name)
		inner.vars[i].fir = pn
		params = append(params, fir.Param{Name: pn, Type: inner.vars[i].ftype})
	}
	f.l.emit(fir.Fn(name, params, gen(inner)))
	return name
}

// join materializes k over env and returns a call generator.
func (f *fnLower) join(e *env, k func(*env) fir.Expr) func(*env) fir.Expr {
	n := len(e.vars)
	name := f.materialize("join", e, nil, k)
	return func(at *env) fir.Expr {
		return fir.Call{Fn: fir.FunLit{Name: name}, Args: at.atoms()[:n]}
	}
}

// callCaptured emits a call to a materialized function with the current
// values of the captured binding names.
func (f *fnLower) callCaptured(fnName string, captured []string, e *env) (fir.Expr, error) {
	args := make([]fir.Atom, len(captured))
	for i, n := range captured {
		b := e.find(n)
		if b == nil {
			return nil, fmt.Errorf("mojc: internal: captured variable %q vanished", n)
		}
		args[i] = fir.V(b.fir)
	}
	return fir.Call{Fn: fir.FunLit{Name: fnName}, Args: args}, nil
}

// stmts compiles a statement list; k generates everything that follows.
func (f *fnLower) stmts(list []Stmt, e *env, lp *loopCtx, k func(*env) fir.Expr) (fir.Expr, error) {
	if len(list) == 0 {
		return k(e), nil
	}
	head, rest := list[0], list[1:]
	return f.stmt(head, e, lp, func(e2 *env) fir.Expr {
		out, err := f.stmts(rest, e2, lp, k)
		if err != nil {
			panic(lowerPanic{err})
		}
		return out
	})
}

// lowerPanic tunnels errors out of generator closures.
type lowerPanic struct{ err error }

func (f *fnLower) stmt(st Stmt, e *env, lp *loopCtx, k func(*env) fir.Expr) (out fir.Expr, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(lowerPanic); ok {
				out, err = nil, pe.err
				return
			}
			panic(r)
		}
	}()

	switch st := st.(type) {
	case *DeclStmt:
		if call, ok := st.Init.(*Call); ok && call.Name == "speculate" {
			dst := f.l.fresh(st.Name)
			e.declare(st.Name, st.Type, dst)
			// Bind x to 0 before entering the speculation so the saved
			// continuation arguments are well-formed; every entry path
			// rebinds it.
			return fir.Let{Dst: dst, DstType: fir.TyInt, Op: fir.OpMove, Args: []fir.Atom{fir.I(0)},
				Body: f.lowerSpeculate(st.Name, e, k)}, nil
		}
		if st.Init == nil {
			dst := f.l.fresh(st.Name)
			e.declare(st.Name, st.Type, dst)
			switch st.Type {
			case TFloat:
				return fir.Let{Dst: dst, DstType: fir.TyFloat, Op: fir.OpMove, Args: []fir.Atom{fir.F(0)}, Body: k(e)}, nil
			case TPtr, TFptr:
				return fir.Let{Dst: dst, DstType: fir.TyPtr, Op: fir.OpPtrNull, Body: k(e)}, nil
			default:
				return fir.Let{Dst: dst, DstType: fir.TyInt, Op: fir.OpMove, Args: []fir.Atom{fir.I(0)}, Body: k(e)}, nil
			}
		}
		return f.expr(st.Init, e, func(a fir.Atom) fir.Expr {
			dst := f.l.fresh(st.Name)
			e.declare(st.Name, st.Type, dst)
			return fir.Let{Dst: dst, DstType: firType(st.Type), Op: fir.OpMove, Args: []fir.Atom{a}, Body: k(e)}
		}), nil

	case *AssignStmt:
		if call, ok := st.Val.(*Call); ok && call.Name == "speculate" && st.Op == "" {
			return f.lowerSpeculate(st.Name, e, k), nil
		}
		vt := e.find(st.Name).typ
		return f.expr(st.Val, e, func(a fir.Atom) fir.Expr {
			dst := f.l.fresh(st.Name)
			b := e.find(st.Name)
			if st.Op == "" {
				b.fir = dst
				return fir.Let{Dst: dst, DstType: firType(vt), Op: fir.OpMove, Args: []fir.Atom{a}, Body: k(e)}
			}
			old := fir.V(b.fir)
			b.fir = dst
			return fir.Let{Dst: dst, DstType: firType(vt), Op: arithOp(st.Op, vt), Args: []fir.Atom{old, a}, Body: k(e)}
		}), nil

	case *StoreStmt:
		return f.expr(st.Base, e, func(ba fir.Atom) fir.Expr {
			return f.protect(e, fir.TyPtr, ba, func(getB func() fir.Atom) fir.Expr {
				return f.expr(st.Idx, e, func(ia fir.Atom) fir.Expr {
					return f.protect(e, fir.TyInt, ia, func(getI func() fir.Atom) fir.Expr {
						return f.expr(st.Val, e, func(va fir.Atom) fir.Expr {
							ba, ia := getB(), getI()
							u := f.l.fresh("u")
							if st.Op == "" {
								return fir.Let{Dst: u, DstType: fir.TyUnit, Op: fir.OpStore, Args: []fir.Atom{ba, ia, va}, Body: k(e)}
							}
							elemT := f.l.sm.types[st.Base].elem()
							old := f.l.fresh("old")
							nv := f.l.fresh("nv")
							return fir.Let{Dst: old, DstType: firType(elemT), Op: fir.OpLoad, Args: []fir.Atom{ba, ia},
								Body: fir.Let{Dst: nv, DstType: firType(elemT), Op: arithOp(st.Op, elemT), Args: []fir.Atom{fir.V(old), va},
									Body: fir.Let{Dst: u, DstType: fir.TyUnit, Op: fir.OpStore, Args: []fir.Atom{ba, ia, fir.V(nv)}, Body: k(e)}}}
						})
					})
				})
			})
		}), nil

	case *IfStmt:
		jcall := f.join(e, k)
		return f.expr(st.Cond, e, func(ca fir.Atom) fir.Expr {
			thenEnv := e.clone()
			m := thenEnv.mark()
			thenCode, err := f.stmts(st.Then, thenEnv, lp, func(e2 *env) fir.Expr {
				e2.release(m)
				return jcall(e2)
			})
			if err != nil {
				panic(lowerPanic{err})
			}
			elseEnv := e.clone()
			m2 := elseEnv.mark()
			elseCode, err := f.stmts(st.Else, elseEnv, lp, func(e2 *env) fir.Expr {
				e2.release(m2)
				return jcall(e2)
			})
			if err != nil {
				panic(lowerPanic{err})
			}
			return fir.If{Cond: ca, Then: thenCode, Else: elseCode}
		}), nil

	case *WhileStmt:
		return f.lowerLoop(st.Cond, nil, st.Body, e, k)

	case *ForStmt:
		m := e.mark()
		inner := e.clone()
		after := func(e3 *env) fir.Expr {
			e3.release(m)
			return k(e3)
		}
		if st.Init != nil {
			return f.stmt(st.Init, inner, nil, func(e2 *env) fir.Expr {
				out, err := f.lowerLoop(st.Cond, st.Post, st.Body, e2, after)
				if err != nil {
					panic(lowerPanic{err})
				}
				return out
			})
		}
		return f.lowerLoop(st.Cond, st.Post, st.Body, inner, after)

	case *ReturnStmt:
		if st.Val == nil {
			return f.emitReturn(e, nil), nil
		}
		return f.expr(st.Val, e, func(a fir.Atom) fir.Expr {
			return f.emitReturn(e, a)
		}), nil

	case *BreakStmt:
		if lp == nil {
			return nil, errf(st.P.Line, st.P.Col, "break outside loop")
		}
		return f.callCaptured(lp.breakFn, lp.captured, e)

	case *ContinueStmt:
		if lp == nil {
			return nil, errf(st.P.Line, st.P.Col, "continue outside loop")
		}
		return f.callCaptured(lp.contFn, lp.captured, e)

	case *ExprStmt:
		call := st.X.(*Call)
		switch call.Name {
		case "abort", "retry":
			c := int64(cAbort)
			if call.Name == "retry" {
				c = cRetry
			}
			return f.expr(call.Args[0], e, func(ida fir.Atom) fir.Expr {
				ord := f.l.fresh("ord")
				// Code after abort/retry is unreachable: rollback transfers
				// control to the speculation's continuation.
				return fir.Extern{Dst: ord, DstType: fir.TyInt, Name: "spec_ordinal", Args: []fir.Atom{ida},
					Body: fir.Rollback{Level: fir.V(ord), C: fir.I(c)}}
			}), nil

		case "commit":
			return f.expr(call.Args[0], e, func(ida fir.Atom) fir.Expr {
				ord := f.l.fresh("ord")
				name := f.materialize("commitk", e, nil, k)
				return fir.Extern{Dst: ord, DstType: fir.TyInt, Name: "spec_ordinal", Args: []fir.Atom{ida},
					Body: fir.Commit{Level: fir.V(ord), Fn: fir.FunLit{Name: name}, Args: e.atoms()}}
			}), nil

		case "migrate":
			return f.expr(call.Args[0], e, func(ta fir.Atom) fir.Expr {
				name := f.materialize("migk", e, nil, k)
				f.l.migLabel++
				return fir.Migrate{Label: f.l.migLabel, Target: ta, TargetOff: fir.I(0),
					Fn: fir.FunLit{Name: name}, Args: e.atoms()}
			}), nil

		default:
			// Ordinary call for effect; discard the result.
			return f.expr(st.X, e, func(fir.Atom) fir.Expr { return k(e) }), nil
		}

	case *BlockStmt:
		m := e.mark()
		return f.stmts(st.Body, e, lp, func(e2 *env) fir.Expr {
			e2.release(m)
			return k(e2)
		})

	default:
		return nil, fmt.Errorf("mojc: cannot lower %T", st)
	}
}

// lowerLoop materializes a while/for loop as mutually recursive FIR
// functions: $loop evaluates the condition and either runs the body or
// exits to $brk; continue jumps to $cont, which runs the post statement
// and re-enters $loop.
func (f *fnLower) lowerLoop(cond Expr, post Stmt, body []Stmt, e *env, k func(*env) fir.Expr) (fir.Expr, error) {
	// Names are created first so the bodies can reference each other.
	loopName := f.l.fresh("loop")

	captured := make([]string, len(e.vars))
	for i, b := range e.vars {
		captured[i] = b.name
	}

	brkName := f.materialize("brk", e, nil, k)

	contName := f.materialize("cont", e, nil, func(inner *env) fir.Expr {
		if post == nil {
			return fir.Call{Fn: fir.FunLit{Name: loopName}, Args: inner.atoms()}
		}
		out, err := f.stmt(post, inner, nil, func(e2 *env) fir.Expr {
			out2, err := f.callCaptured(loopName, captured, e2)
			if err != nil {
				panic(lowerPanic{err})
			}
			return out2
		})
		if err != nil {
			panic(lowerPanic{err})
		}
		return out
	})

	lp := &loopCtx{breakFn: brkName, contFn: contName, captured: captured}

	// $loop must be emitted with exactly the fresh name allocated above;
	// materialize allocates its own name, so build it manually.
	inner := e.clone()
	params := make([]fir.Param, len(inner.vars))
	for i := range inner.vars {
		pn := f.l.fresh(inner.vars[i].name)
		inner.vars[i].fir = pn
		params[i] = fir.Param{Name: pn, Type: inner.vars[i].ftype}
	}
	emitBody := func(e2 *env) (fir.Expr, error) {
		m := e2.mark()
		return f.stmts(body, e2, lp, func(e3 *env) fir.Expr {
			e3.release(m)
			out, err := f.callCaptured(contName, captured, e3)
			if err != nil {
				panic(lowerPanic{err})
			}
			return out
		})
	}
	var loopBody fir.Expr
	var err error
	if cond == nil {
		loopBody, err = emitBody(inner)
	} else {
		loopBody = f.expr(cond, inner, func(ca fir.Atom) fir.Expr {
			bodyEnv := inner.clone()
			bodyCode, berr := emitBody(bodyEnv)
			if berr != nil {
				panic(lowerPanic{berr})
			}
			exit, berr := f.callCaptured(brkName, captured, inner)
			if berr != nil {
				panic(lowerPanic{berr})
			}
			return fir.If{Cond: ca, Then: bodyCode, Else: exit}
		})
	}
	if err != nil {
		return nil, err
	}
	f.l.emit(fir.Fn(loopName, params, loopBody))

	return fir.Call{Fn: fir.FunLit{Name: loopName}, Args: e.atoms()}, nil
}

// lowerSpeculate compiles `x = speculate();` into the FIR speculate
// pseudo-instruction (§4.3.1). The saved continuation receives (c, live…);
// on c==0 (first entry) and c==cRetry (retry) x binds to the positive
// stable specid; otherwise the re-entered empty level is committed and x
// binds to -c (Figure 1's abort path).
func (f *fnLower) lowerSpeculate(varName string, e *env, k func(*env) fir.Expr) fir.Expr {
	jcall := f.join(e, k)

	// Abort path: after rollback re-entered the level, commit it (empty)
	// and continue with x = -c.
	abortName := f.materialize("specabort", e, []fir.Param{{Name: "$c", Type: fir.TyInt}},
		func(inner *env) fir.Expr {
			xa := f.l.fresh(varName)
			inner.find(varName).fir = xa
			return fir.Let{Dst: xa, DstType: fir.TyInt, Op: fir.OpSub, Args: []fir.Atom{fir.I(0), fir.V("$c")},
				Body: jcall(inner)}
		})

	contName := f.materialize("speck", e, []fir.Param{{Name: "$c", Type: fir.TyInt}},
		func(inner *env) fir.Expr {
			first := f.l.fresh("isfirst")
			retr := f.l.fresh("isretry")
			either := f.l.fresh("run")
			xv := f.l.fresh(varName)
			runEnv := inner.clone()
			runEnv.find(varName).fir = xv
			depth := f.l.fresh("depth")
			return fir.Let{Dst: first, DstType: fir.TyInt, Op: fir.OpEq, Args: []fir.Atom{fir.V("$c"), fir.I(0)},
				Body: fir.Let{Dst: retr, DstType: fir.TyInt, Op: fir.OpEq, Args: []fir.Atom{fir.V("$c"), fir.I(cRetry)},
					Body: fir.Let{Dst: either, DstType: fir.TyInt, Op: fir.OpOr, Args: []fir.Atom{fir.V(first), fir.V(retr)},
						Body: fir.If{
							Cond: fir.V(either),
							Then: fir.Extern{Dst: xv, DstType: fir.TyInt, Name: "spec_id",
								Body: jcall(runEnv)},
							Else: fir.Extern{Dst: depth, DstType: fir.TyInt, Name: "spec_depth",
								Body: fir.Commit{Level: fir.V(depth), Fn: fir.FunLit{Name: abortName},
									Args: append([]fir.Atom{fir.V("$c")}, inner.atoms()...)}},
						}}}}
		})

	return fir.Speculate{Fn: fir.FunLit{Name: contName}, Args: e.atoms()}
}

func arithOp(op string, t Type) fir.Op {
	if t == TFloat {
		switch op {
		case "+":
			return fir.OpFAdd
		case "-":
			return fir.OpFSub
		case "*":
			return fir.OpFMul
		case "/":
			return fir.OpFDiv
		}
	}
	switch op {
	case "+":
		return fir.OpAdd
	case "-":
		return fir.OpSub
	case "*":
		return fir.OpMul
	case "/":
		return fir.OpDiv
	case "%":
		return fir.OpMod
	}
	return fir.OpMove
}
