package lang

import (
	"fmt"

	"repro/internal/fir"
)

// funcSig is a user function's signature.
type funcSig struct {
	ret    Type
	params []Type
}

// builtins whose calls the lowering treats specially. speculate is only
// legal as the sole initializer/RHS of a declaration or assignment;
// commit/abort/retry/migrate are only legal as expression statements.
var builtinSigs = map[string]funcSig{
	"speculate": {ret: TInt},
	"commit":    {ret: TVoid, params: []Type{TInt}},
	"abort":     {ret: TVoid, params: []Type{TInt}},
	"retry":     {ret: TVoid, params: []Type{TInt}},
	"migrate":   {ret: TVoid, params: []Type{TPtr}},
	"alloc":     {ret: TPtr, params: []Type{TInt}},
	"falloc":    {ret: TFptr, params: []Type{TInt}},
	"len":       {ret: TInt, params: []Type{TPtr}}, // accepts fptr too
}

// sema type-checks a program and annotates expression types.
type sema struct {
	funcs   map[string]*funcSig
	externs map[string]funcSig
	types   map[Expr]Type
}

func mojType(t fir.Type) (Type, error) {
	switch t.Kind {
	case fir.KindInt:
		return TInt, nil
	case fir.KindFloat:
		return TFloat, nil
	case fir.KindPtr:
		return TPtr, nil
	case fir.KindUnit:
		return TVoid, nil
	default:
		return 0, fmt.Errorf("mojc: extern type %s not expressible", t)
	}
}

func analyze(prog *Program, externs map[string]fir.ExternSig) (*sema, error) {
	s := &sema{
		funcs:   make(map[string]*funcSig),
		externs: make(map[string]funcSig),
		types:   make(map[Expr]Type),
	}
	for name, sig := range externs {
		fs := funcSig{}
		var err error
		if fs.ret, err = mojType(sig.Result); err != nil {
			return nil, err
		}
		for _, a := range sig.Args {
			t, err := mojType(a)
			if err != nil {
				return nil, err
			}
			fs.params = append(fs.params, t)
		}
		s.externs[name] = fs
	}
	for _, f := range prog.Funcs {
		if _, dup := s.funcs[f.Name]; dup {
			return nil, errf(f.P.Line, f.P.Col, "function %q redefined", f.Name)
		}
		if _, isB := builtinSigs[f.Name]; isB {
			return nil, errf(f.P.Line, f.P.Col, "function %q shadows a builtin", f.Name)
		}
		if _, isE := s.externs[f.Name]; isE {
			return nil, errf(f.P.Line, f.P.Col, "function %q shadows an extern", f.Name)
		}
		sig := &funcSig{ret: f.Ret}
		for _, p := range f.Params {
			sig.params = append(sig.params, p.Type)
		}
		s.funcs[f.Name] = sig
	}
	mainSig, ok := s.funcs["main"]
	if !ok {
		return nil, fmt.Errorf("mojc: no main function")
	}
	if mainSig.ret != TInt || len(mainSig.params) != 0 {
		return nil, fmt.Errorf("mojc: main must be declared `int main()`")
	}
	for _, f := range prog.Funcs {
		fc := &funcCheck{s: s, fn: f, scopes: []map[string]Type{{}}}
		for _, p := range f.Params {
			if err := fc.declare(p.Name, p.Type, f.P); err != nil {
				return nil, err
			}
		}
		if err := fc.stmts(f.Body, false); err != nil {
			return nil, err
		}
	}
	return s, nil
}

type funcCheck struct {
	s      *sema
	fn     *FuncDecl
	scopes []map[string]Type
}

func (fc *funcCheck) push() { fc.scopes = append(fc.scopes, map[string]Type{}) }
func (fc *funcCheck) pop()  { fc.scopes = fc.scopes[:len(fc.scopes)-1] }

func (fc *funcCheck) declare(name string, t Type, p pos) error {
	top := fc.scopes[len(fc.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(p.Line, p.Col, "variable %q redeclared in this scope", name)
	}
	top[name] = t
	return nil
}

func (fc *funcCheck) lookup(name string) (Type, bool) {
	for i := len(fc.scopes) - 1; i >= 0; i-- {
		if t, ok := fc.scopes[i][name]; ok {
			return t, true
		}
	}
	return 0, false
}

func (fc *funcCheck) stmts(list []Stmt, inLoop bool) error {
	for _, st := range list {
		if err := fc.stmt(st, inLoop); err != nil {
			return err
		}
	}
	return nil
}

func (fc *funcCheck) stmt(st Stmt, inLoop bool) error {
	switch st := st.(type) {
	case *DeclStmt:
		if st.Init != nil {
			t, err := fc.exprAllowSpeculate(st.Init)
			if err != nil {
				return err
			}
			if t != st.Type {
				return errf(st.P.Line, st.P.Col, "cannot initialize %s %q with %s", st.Type, st.Name, t)
			}
		}
		return fc.declare(st.Name, st.Type, st.P)

	case *AssignStmt:
		vt, ok := fc.lookup(st.Name)
		if !ok {
			return errf(st.P.Line, st.P.Col, "assignment to undeclared variable %q", st.Name)
		}
		var t Type
		var err error
		if st.Op == "" {
			t, err = fc.exprAllowSpeculate(st.Val)
		} else {
			t, err = fc.expr(st.Val)
		}
		if err != nil {
			return err
		}
		if t != vt {
			return errf(st.P.Line, st.P.Col, "cannot assign %s to %s %q", t, vt, st.Name)
		}
		if st.Op != "" {
			if vt != TInt && vt != TFloat {
				return errf(st.P.Line, st.P.Col, "compound assignment needs int or float, have %s", vt)
			}
			if st.Op == "%" && vt != TInt {
				return errf(st.P.Line, st.P.Col, "%%= needs int")
			}
		}
		return nil

	case *StoreStmt:
		bt, err := fc.expr(st.Base)
		if err != nil {
			return err
		}
		if !bt.pointer() {
			return errf(st.P.Line, st.P.Col, "store target must be a pointer, have %s", bt)
		}
		it, err := fc.expr(st.Idx)
		if err != nil {
			return err
		}
		if it != TInt {
			return errf(st.P.Line, st.P.Col, "index must be int, have %s", it)
		}
		vt, err := fc.expr(st.Val)
		if err != nil {
			return err
		}
		if vt != bt.elem() {
			return errf(st.P.Line, st.P.Col, "cannot store %s into %s element", vt, bt)
		}
		if st.Op == "%" && bt.elem() != TInt {
			return errf(st.P.Line, st.P.Col, "%%= needs int elements")
		}
		return nil

	case *IfStmt:
		t, err := fc.expr(st.Cond)
		if err != nil {
			return err
		}
		if t != TInt {
			return errf(st.P.Line, st.P.Col, "if condition must be int, have %s", t)
		}
		fc.push()
		if err := fc.stmts(st.Then, inLoop); err != nil {
			return err
		}
		fc.pop()
		fc.push()
		defer fc.pop()
		return fc.stmts(st.Else, inLoop)

	case *WhileStmt:
		t, err := fc.expr(st.Cond)
		if err != nil {
			return err
		}
		if t != TInt {
			return errf(st.P.Line, st.P.Col, "while condition must be int, have %s", t)
		}
		fc.push()
		defer fc.pop()
		return fc.stmts(st.Body, true)

	case *ForStmt:
		fc.push()
		defer fc.pop()
		if st.Init != nil {
			if err := fc.stmt(st.Init, false); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			t, err := fc.expr(st.Cond)
			if err != nil {
				return err
			}
			if t != TInt {
				return errf(st.P.Line, st.P.Col, "for condition must be int, have %s", t)
			}
		}
		if st.Post != nil {
			if err := fc.stmt(st.Post, false); err != nil {
				return err
			}
		}
		fc.push()
		defer fc.pop()
		return fc.stmts(st.Body, true)

	case *ReturnStmt:
		if st.Val == nil {
			if fc.fn.Ret != TVoid {
				return errf(st.P.Line, st.P.Col, "function %q must return %s", fc.fn.Name, fc.fn.Ret)
			}
			return nil
		}
		t, err := fc.expr(st.Val)
		if err != nil {
			return err
		}
		if fc.fn.Ret == TVoid {
			return errf(st.P.Line, st.P.Col, "void function %q returns a value", fc.fn.Name)
		}
		if t != fc.fn.Ret {
			return errf(st.P.Line, st.P.Col, "function %q returns %s, have %s", fc.fn.Name, fc.fn.Ret, t)
		}
		return nil

	case *BreakStmt:
		if !inLoop {
			return errf(st.P.Line, st.P.Col, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if !inLoop {
			return errf(st.P.Line, st.P.Col, "continue outside loop")
		}
		return nil

	case *ExprStmt:
		call, ok := st.X.(*Call)
		if !ok {
			return errf(st.P.Line, st.P.Col, "expression statement must be a call")
		}
		_, err := fc.callExpr(call, true)
		return err

	case *BlockStmt:
		fc.push()
		defer fc.pop()
		return fc.stmts(st.Body, inLoop)

	default:
		return fmt.Errorf("mojc: unknown statement %T", st)
	}
}

// exprAllowSpeculate types an initializer/assignment RHS, where a bare
// speculate() call is permitted.
func (fc *funcCheck) exprAllowSpeculate(e Expr) (Type, error) {
	if c, ok := e.(*Call); ok && c.Name == "speculate" {
		if len(c.Args) != 0 {
			return 0, errf(c.P.Line, c.P.Col, "speculate takes no arguments")
		}
		fc.s.types[e] = TInt
		return TInt, nil
	}
	return fc.expr(e)
}

func (fc *funcCheck) expr(e Expr) (Type, error) {
	t, err := fc.exprInner(e)
	if err != nil {
		return 0, err
	}
	fc.s.types[e] = t
	return t, nil
}

func (fc *funcCheck) exprInner(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return TInt, nil
	case *FloatLit:
		return TFloat, nil
	case *StrLit:
		return TPtr, nil
	case *Ident:
		t, ok := fc.lookup(e.Name)
		if !ok {
			return 0, errf(e.P.Line, e.P.Col, "undeclared variable %q", e.Name)
		}
		return t, nil

	case *Unary:
		t, err := fc.expr(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "!":
			if t != TInt {
				return 0, errf(e.P.Line, e.P.Col, "! needs int, have %s", t)
			}
			return TInt, nil
		case "-":
			if t != TInt && t != TFloat {
				return 0, errf(e.P.Line, e.P.Col, "unary - needs int or float, have %s", t)
			}
			return t, nil
		}
		return 0, errf(e.P.Line, e.P.Col, "unknown unary %q", e.Op)

	case *Binary:
		lt, err := fc.expr(e.L)
		if err != nil {
			return 0, err
		}
		rt, err := fc.expr(e.R)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "&&", "||", "&", "|", "^":
			if lt != TInt || rt != TInt {
				return 0, errf(e.P.Line, e.P.Col, "%s needs int operands, have %s and %s", e.Op, lt, rt)
			}
			return TInt, nil
		case "%":
			if lt != TInt || rt != TInt {
				return 0, errf(e.P.Line, e.P.Col, "%% needs int operands, have %s and %s", lt, rt)
			}
			return TInt, nil
		case "+", "-", "*", "/":
			if lt != rt || (lt != TInt && lt != TFloat) {
				return 0, errf(e.P.Line, e.P.Col, "%s needs matching numeric operands, have %s and %s (use int()/float() casts)", e.Op, lt, rt)
			}
			return lt, nil
		case "==", "!=", "<", "<=", ">", ">=":
			if lt != rt {
				return 0, errf(e.P.Line, e.P.Col, "%s needs matching operands, have %s and %s", e.Op, lt, rt)
			}
			if lt.pointer() && (e.Op != "==" && e.Op != "!=") {
				return 0, errf(e.P.Line, e.P.Col, "pointers support only == and !=")
			}
			return TInt, nil
		}
		return 0, errf(e.P.Line, e.P.Col, "unknown operator %q", e.Op)

	case *Index:
		bt, err := fc.expr(e.Base)
		if err != nil {
			return 0, err
		}
		if !bt.pointer() {
			return 0, errf(e.P.Line, e.P.Col, "indexing needs a pointer, have %s", bt)
		}
		it, err := fc.expr(e.Idx)
		if err != nil {
			return 0, err
		}
		if it != TInt {
			return 0, errf(e.P.Line, e.P.Col, "index must be int, have %s", it)
		}
		return bt.elem(), nil

	case *Call:
		return fc.callExpr(e, false)

	default:
		return 0, fmt.Errorf("mojc: unknown expression %T", e)
	}
}

// callExpr types a call. asStmt is true when the call is an expression
// statement, which is where the effectful builtins are allowed.
func (fc *funcCheck) callExpr(e *Call, asStmt bool) (Type, error) {
	check := func(sig funcSig, ptrFlexible bool) (Type, error) {
		if len(e.Args) != len(sig.params) {
			return 0, errf(e.P.Line, e.P.Col, "%s takes %d arguments, given %d", e.Name, len(sig.params), len(e.Args))
		}
		for i, a := range e.Args {
			t, err := fc.expr(a)
			if err != nil {
				return 0, err
			}
			want := sig.params[i]
			if ptrFlexible && want == TPtr && t.pointer() {
				continue
			}
			if t != want {
				return 0, errf(e.P.Line, e.P.Col, "%s argument %d must be %s, have %s", e.Name, i+1, want, t)
			}
		}
		fc.s.types[e] = sig.ret
		return sig.ret, nil
	}

	switch e.Name {
	case "int":
		if len(e.Args) != 1 {
			return 0, errf(e.P.Line, e.P.Col, "int() takes one argument")
		}
		t, err := fc.expr(e.Args[0])
		if err != nil {
			return 0, err
		}
		if t != TFloat && t != TInt {
			return 0, errf(e.P.Line, e.P.Col, "int() needs float or int, have %s", t)
		}
		fc.s.types[e] = TInt
		return TInt, nil
	case "float":
		if len(e.Args) != 1 {
			return 0, errf(e.P.Line, e.P.Col, "float() takes one argument")
		}
		t, err := fc.expr(e.Args[0])
		if err != nil {
			return 0, err
		}
		if t != TFloat && t != TInt {
			return 0, errf(e.P.Line, e.P.Col, "float() needs int or float, have %s", t)
		}
		fc.s.types[e] = TFloat
		return TFloat, nil
	case "speculate":
		return 0, errf(e.P.Line, e.P.Col, "speculate() may only appear as `x = speculate();`")
	case "commit", "abort", "retry", "migrate":
		if !asStmt {
			return 0, errf(e.P.Line, e.P.Col, "%s is only valid as a statement", e.Name)
		}
		sig := builtinSigs[e.Name]
		return check(sig, e.Name == "migrate")
	case "alloc", "falloc":
		return check(builtinSigs[e.Name], false)
	case "len":
		return check(builtinSigs["len"], true)
	}

	if sig, ok := fc.s.funcs[e.Name]; ok {
		return check(*sig, false)
	}
	if sig, ok := fc.s.externs[e.Name]; ok {
		return check(sig, true)
	}
	return 0, errf(e.P.Line, e.P.Col, "call to undefined function %q", e.Name)
}
