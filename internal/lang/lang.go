package lang

import "repro/internal/fir"

// Compile translates MojC source into a type-checked FIR program. externs
// declares the external functions the target runtime provides (pass
// rt.StdExterns().Sigs(), plus any message-passing or application externs);
// extern calls are type-checked against these signatures both here and
// again by fir.Check on the result.
func Compile(src string, externs map[string]fir.ExternSig) (*fir.Program, error) {
	ast, err := parse(src)
	if err != nil {
		return nil, err
	}
	sm, err := analyze(ast, externs)
	if err != nil {
		return nil, err
	}
	p, err := lower(ast, sm)
	if err != nil {
		return nil, err
	}
	// The lowering must always produce well-typed FIR; checking here turns
	// any lowering bug into a compile-time failure instead of a runtime
	// surprise.
	if err := fir.Check(p, externs); err != nil {
		return nil, err
	}
	return p, nil
}
