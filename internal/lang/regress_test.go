package lang

import (
	"bytes"
	"testing"

	"repro/internal/fir"
	"repro/internal/rt"
	"repro/internal/vm"
)

// Regression: a compound assignment whose right side is a user call used
// to generate a return continuation whose reload destinations were read
// AFTER the assignment rebound the variable, leaving the add's operand
// unbound.

func TestCompoundAssignWithCall(t *testing.T) {
	src := `
int t(int a) { return a + 1; }
int main() {
	int s = 0;
	for (int i = 0; i < 3; i += 1) {
		s += t(i);
	}
	return s;
}`
	code, _ := compileAndRun(t, src, nil)
	if code != 6 {
		t.Fatalf("code = %d, want 6", code)
	}
}

// TestOptimizerDifferential compiles a corpus of MojC programs with and
// without the FIR optimizer and requires identical observable behaviour
// (status, exit code, output).
func TestOptimizerDifferential(t *testing.T) {
	corpus := map[string]string{
		"fact": `
int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
int main() { return fact(9); }`,
		"loops": `
int main() {
	int s = 0;
	for (int i = 0; i < 50; i += 1) {
		if (i % 4 == 0) { continue; }
		if (i > 40) { break; }
		s += i * 2;
	}
	return s;
}`,
		"heapAndPrint": `
int main() {
	ptr a = alloc(8);
	for (int i = 0; i < 8; i += 1) { a[i] = i * i + 3; }
	int s = 0;
	for (int i = 0; i < 8; i += 1) { s += a[i]; }
	print_int(s);
	return s;
}`,
		"spec": `
int main() {
	ptr p = alloc(1);
	p[0] = 5;
	int id = speculate();
	if (id > 0) {
		p[0] = 50;
		abort(id);
		return 0;
	}
	return p[0];
}`,
		"constFoldable": `
int main() {
	int a = 2 + 3 * 4;
	float f = 1.5 * 2.0;
	if (a == 14 && int(f) == 3) { return 7 * 6; }
	return 0;
}`,
	}
	for name, src := range corpus {
		t.Run(name, func(t *testing.T) {
			sigs := rt.StdExterns().Sigs()
			plain, err := Compile(src, sigs)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := Compile(src, sigs)
			if err != nil {
				t.Fatal(err)
			}
			st := fir.Optimize(opt)
			if err := fir.Check(opt, sigs); err != nil {
				t.Fatalf("optimized program fails Check: %v", err)
			}
			run := func(p *fir.Program) (int64, string, uint64) {
				var out bytes.Buffer
				proc := vm.NewProcess(p, vm.Config{Fuel: 5_000_000, Stdout: &out})
				if err := proc.Start(); err != nil {
					t.Fatal(err)
				}
				if _, err := proc.Run(); err != nil {
					t.Fatal(err)
				}
				return proc.HaltCode(), out.String(), proc.Steps()
			}
			c1, o1, s1 := run(plain)
			c2, o2, s2 := run(opt)
			if c1 != c2 || o1 != o2 {
				t.Fatalf("optimizer changed behaviour: (%d,%q) vs (%d,%q)", c1, o1, c2, o2)
			}
			if s2 > s1 {
				t.Fatalf("optimized program runs MORE steps (%d > %d)", s2, s1)
			}
			if st.Folded+st.CopiesProp+st.DeadLets == 0 {
				t.Fatalf("optimizer did nothing on %s", name)
			}
		})
	}
}
