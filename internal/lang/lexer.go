package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// lexer tokenizes MojC source.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() rune {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peek2() == '*':
			line, col := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(line, col, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-rune operators, longest first.
var punctuations = []string{
	"&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
	"+", "-", "*", "/", "%", "!", "<", ">", "=", "(", ")", "{", "}",
	"[", "]", ",", ";", "&", "|", "^",
}

// lex tokenizes the whole input.
func lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		if err := lx.skipSpaceAndComments(); err != nil {
			return nil, err
		}
		line, col := lx.line, lx.col
		if lx.pos >= len(lx.src) {
			toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
			return toks, nil
		}
		r := lx.peek()
		switch {
		case unicode.IsLetter(r) || r == '_':
			var b strings.Builder
			for lx.pos < len(lx.src) && (unicode.IsLetter(lx.peek()) || unicode.IsDigit(lx.peek()) || lx.peek() == '_') {
				b.WriteRune(lx.advance())
			}
			text := b.String()
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: line, Col: col})

		case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(lx.peek2())):
			var b strings.Builder
			isFloat := false
			for lx.pos < len(lx.src) {
				c := lx.peek()
				if unicode.IsDigit(c) {
					b.WriteRune(lx.advance())
				} else if c == '.' && !isFloat && unicode.IsDigit(lx.peek2()) {
					isFloat = true
					b.WriteRune(lx.advance())
				} else if (c == 'e' || c == 'E') && b.Len() > 0 {
					nx := lx.peek2()
					if unicode.IsDigit(nx) || nx == '+' || nx == '-' {
						isFloat = true
						b.WriteRune(lx.advance()) // e
						if lx.peek() == '+' || lx.peek() == '-' {
							b.WriteRune(lx.advance())
						}
					} else {
						break
					}
				} else {
					break
				}
			}
			text := b.String()
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, errf(line, col, "bad float literal %q: %v", text, err)
				}
				toks = append(toks, Token{Kind: TokFloat, Text: text, FloatVal: f, Line: line, Col: col})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, errf(line, col, "bad integer literal %q: %v", text, err)
				}
				toks = append(toks, Token{Kind: TokInt, Text: text, IntVal: v, Line: line, Col: col})
			}

		case r == '"':
			lx.advance()
			var b strings.Builder
			for {
				if lx.pos >= len(lx.src) {
					return nil, errf(line, col, "unterminated string literal")
				}
				c := lx.advance()
				if c == '"' {
					break
				}
				if c == '\\' {
					if lx.pos >= len(lx.src) {
						return nil, errf(line, col, "unterminated escape")
					}
					e := lx.advance()
					switch e {
					case 'n':
						b.WriteRune('\n')
					case 't':
						b.WriteRune('\t')
					case '\\':
						b.WriteRune('\\')
					case '"':
						b.WriteRune('"')
					case '0':
						b.WriteRune(0)
					default:
						return nil, errf(line, col, "unknown escape \\%c", e)
					}
					continue
				}
				b.WriteRune(c)
			}
			toks = append(toks, Token{Kind: TokString, Text: b.String(), StrVal: b.String(), Line: line, Col: col})

		case r == '\'':
			lx.advance()
			if lx.pos >= len(lx.src) {
				return nil, errf(line, col, "unterminated char literal")
			}
			c := lx.advance()
			if c == '\\' {
				e := lx.advance()
				switch e {
				case 'n':
					c = '\n'
				case 't':
					c = '\t'
				case '\\':
					c = '\\'
				case '\'':
					c = '\''
				case '0':
					c = 0
				default:
					return nil, errf(line, col, "unknown escape \\%c", e)
				}
			}
			if lx.pos >= len(lx.src) || lx.advance() != '\'' {
				return nil, errf(line, col, "unterminated char literal")
			}
			toks = append(toks, Token{Kind: TokChar, Text: fmt.Sprintf("'%c'", c), IntVal: int64(c), Line: line, Col: col})

		default:
			matched := false
			for _, p := range punctuations {
				if strings.HasPrefix(string(lx.src[lx.pos:]), p) {
					for range p {
						lx.advance()
					}
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line, Col: col})
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf(line, col, "unexpected character %q", r)
			}
		}
	}
}
