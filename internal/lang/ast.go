package lang

// Type is a MojC source type.
type Type int

const (
	// TVoid is only valid as a function return type.
	TVoid Type = iota
	// TInt is a 64-bit signed integer (also booleans and characters).
	TInt
	// TFloat is a 64-bit float.
	TFloat
	// TPtr points to a block of integer words (C-style buffers, strings).
	TPtr
	// TFptr points to a block of float words (numeric arrays).
	TFptr
)

func (t Type) String() string {
	switch t {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TPtr:
		return "ptr"
	case TFptr:
		return "fptr"
	default:
		return "type?"
	}
}

// pointer reports whether t is one of the pointer types.
func (t Type) pointer() bool { return t == TPtr || t == TFptr }

// elem returns the element type of a pointer type.
func (t Type) elem() Type {
	if t == TFptr {
		return TFloat
	}
	return TInt
}

// Node positions help diagnostics.
type pos struct{ Line, Col int }

// Expressions.

type Expr interface{ exprPos() pos }

// IntLit / FloatLit / StrLit are literals.
type IntLit struct {
	P pos
	V int64
}

type FloatLit struct {
	P pos
	V float64
}

type StrLit struct {
	P pos
	V string
}

// Ident references a variable.
type Ident struct {
	P    pos
	Name string
}

// Unary is !x or -x.
type Unary struct {
	P  pos
	Op string
	X  Expr
}

// Binary is x op y (arithmetic, comparison, logical, bitwise).
type Binary struct {
	P    pos
	Op   string
	L, R Expr
}

// Index is p[i].
type Index struct {
	P    pos
	Base Expr
	Idx  Expr
}

// Call invokes a user function, builtin, or extern.
type Call struct {
	P    pos
	Name string
	Args []Expr
}

func (e *IntLit) exprPos() pos   { return e.P }
func (e *FloatLit) exprPos() pos { return e.P }
func (e *StrLit) exprPos() pos   { return e.P }
func (e *Ident) exprPos() pos    { return e.P }
func (e *Unary) exprPos() pos    { return e.P }
func (e *Binary) exprPos() pos   { return e.P }
func (e *Index) exprPos() pos    { return e.P }
func (e *Call) exprPos() pos     { return e.P }

// Statements.

type Stmt interface{ stmtPos() pos }

// DeclStmt declares a local: `int x = e;` (Init may be nil → zero value).
type DeclStmt struct {
	P    pos
	Type Type
	Name string
	Init Expr
}

// AssignStmt is `x = e;` (Op empty) or compound `x += e;`.
type AssignStmt struct {
	P    pos
	Name string
	Op   string // "", "+", "-", "*", "/", "%"
	Val  Expr
}

// StoreStmt is `p[i] = e;` or compound `p[i] += e;`.
type StoreStmt struct {
	P    pos
	Base Expr
	Idx  Expr
	Op   string
	Val  Expr
}

// IfStmt is if/else.
type IfStmt struct {
	P    pos
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
}

// WhileStmt loops while Cond is non-zero.
type WhileStmt struct {
	P    pos
	Cond Expr
	Body []Stmt
}

// ForStmt is C-style for.
type ForStmt struct {
	P    pos
	Init Stmt // nil, DeclStmt, AssignStmt or ExprStmt
	Cond Expr // nil = true
	Post Stmt // nil, AssignStmt or ExprStmt
	Body []Stmt
}

// ReturnStmt exits the function.
type ReturnStmt struct {
	P   pos
	Val Expr // nil for void
}

// BreakStmt / ContinueStmt control loops.
type BreakStmt struct{ P pos }
type ContinueStmt struct{ P pos }

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	P pos
	X Expr
}

// BlockStmt is a nested scope.
type BlockStmt struct {
	P    pos
	Body []Stmt
}

func (s *DeclStmt) stmtPos() pos     { return s.P }
func (s *AssignStmt) stmtPos() pos   { return s.P }
func (s *StoreStmt) stmtPos() pos    { return s.P }
func (s *IfStmt) stmtPos() pos       { return s.P }
func (s *WhileStmt) stmtPos() pos    { return s.P }
func (s *ForStmt) stmtPos() pos      { return s.P }
func (s *ReturnStmt) stmtPos() pos   { return s.P }
func (s *BreakStmt) stmtPos() pos    { return s.P }
func (s *ContinueStmt) stmtPos() pos { return s.P }
func (s *ExprStmt) stmtPos() pos     { return s.P }
func (s *BlockStmt) stmtPos() pos    { return s.P }

// Declarations.

// Param is a function parameter.
type Param struct {
	Type Type
	Name string
}

// FuncDecl is a function definition.
type FuncDecl struct {
	P      pos
	Ret    Type
	Name   string
	Params []Param
	Body   []Stmt
}

// Program is a parsed MojC compilation unit.
type Program struct {
	Funcs []*FuncDecl
}
