package lang

import "fmt"

// parser is a recursive-descent parser for MojC.
type parser struct {
	toks []Token
	pos  int
}

func parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF, "") {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	return prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		switch kind {
		case TokIdent:
			want = "identifier"
		case TokEOF:
			want = "end of file"
		default:
			want = fmt.Sprintf("token kind %d", kind)
		}
	} else {
		want = fmt.Sprintf("%q", want)
	}
	return t, errf(t.Line, t.Col, "expected %s, found %s", want, t)
}

func (p *parser) typeName() (Type, bool) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return 0, false
	}
	switch t.Text {
	case "int":
		return TInt, true
	case "float":
		return TFloat, true
	case "ptr":
		return TPtr, true
	case "fptr":
		return TFptr, true
	case "void":
		return TVoid, true
	}
	return 0, false
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	t := p.cur()
	ret, ok := p.typeName()
	if !ok {
		return nil, errf(t.Line, t.Col, "expected return type, found %s", t)
	}
	p.next()
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{P: pos{t.Line, t.Col}, Ret: ret, Name: name.Text}
	if !p.accept(TokPunct, ")") {
		for {
			pt := p.cur()
			ptype, ok := p.typeName()
			if !ok || ptype == TVoid {
				return nil, errf(pt.Line, pt.Col, "expected parameter type, found %s", pt)
			}
			p.next()
			pname, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, Param{Type: ptype, Name: pname.Text})
			if p.accept(TokPunct, ")") {
				break
			}
			if _, err := p.expect(TokPunct, ","); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept(TokPunct, "}") {
		if p.at(TokEOF, "") {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "unexpected end of file inside block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(TokPunct, "{"):
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{P: pos{t.Line, t.Col}, Body: body}, nil

	case p.at(TokKeyword, "if"):
		return p.ifStmt()

	case p.at(TokKeyword, "while"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{P: pos{t.Line, t.Col}, Cond: cond, Body: body}, nil

	case p.at(TokKeyword, "for"):
		return p.forStmt()

	case p.at(TokKeyword, "return"):
		p.next()
		if p.accept(TokPunct, ";") {
			return &ReturnStmt{P: pos{t.Line, t.Col}}, nil
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{P: pos{t.Line, t.Col}, Val: v}, nil

	case p.at(TokKeyword, "break"):
		p.next()
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{P: pos{t.Line, t.Col}}, nil

	case p.at(TokKeyword, "continue"):
		p.next()
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{P: pos{t.Line, t.Col}}, nil

	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{P: pos{t.Line, t.Col}, Cond: cond, Then: then}
	if p.accept(TokKeyword, "else") {
		if p.at(TokKeyword, "if") {
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{nested}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	st := &ForStmt{P: pos{t.Line, t.Col}}
	if !p.accept(TokPunct, ";") {
		init, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		st.Init = init
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(TokPunct, ";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(TokPunct, ")") {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// simpleStmt parses declarations, assignments, stores, and expression
// statements (no trailing semicolon).
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	if ty, ok := p.typeName(); ok {
		if ty == TVoid {
			return nil, errf(t.Line, t.Col, "void is not a variable type")
		}
		p.next()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		st := &DeclStmt{P: pos{t.Line, t.Col}, Type: ty, Name: name.Text}
		if p.accept(TokPunct, "=") {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Init = init
		}
		return st, nil
	}

	// Could be assignment `x = e`, compound `x += e`, store `p[i] = e`, or
	// an expression statement (a call).
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	compound := ""
	switch {
	case p.at(TokPunct, "="):
	case p.at(TokPunct, "+="):
		compound = "+"
	case p.at(TokPunct, "-="):
		compound = "-"
	case p.at(TokPunct, "*="):
		compound = "*"
	case p.at(TokPunct, "/="):
		compound = "/"
	case p.at(TokPunct, "%="):
		compound = "%"
	default:
		return &ExprStmt{P: pos{t.Line, t.Col}, X: x}, nil
	}
	p.next()
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	switch lhs := x.(type) {
	case *Ident:
		return &AssignStmt{P: pos{t.Line, t.Col}, Name: lhs.Name, Op: compound, Val: val}, nil
	case *Index:
		return &StoreStmt{P: pos{t.Line, t.Col}, Base: lhs.Base, Idx: lhs.Idx, Op: compound, Val: val}, nil
	default:
		return nil, errf(t.Line, t.Col, "left side of assignment must be a variable or p[i]")
	}
}

// Expression parsing with precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3, "^": 3,
	"&":  4,
	"==": 5, "!=": 5,
	"<": 6, "<=": 6, ">": 6, ">=": 6,
	"+": 7, "-": 7,
	"*": 8, "/": 8, "%": 8,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{P: pos{t.Line, t.Col}, Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if p.accept(TokPunct, "!") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{P: pos{t.Line, t.Col}, Op: "!", X: x}, nil
	}
	if p.accept(TokPunct, "-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{P: pos{t.Line, t.Col}, Op: "-", X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if p.accept(TokPunct, "[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{P: pos{t.Line, t.Col}, Base: x, Idx: idx}
			continue
		}
		return x, nil
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.next()
		return &IntLit{P: pos{t.Line, t.Col}, V: t.IntVal}, nil
	case t.Kind == TokChar:
		p.next()
		return &IntLit{P: pos{t.Line, t.Col}, V: t.IntVal}, nil
	case t.Kind == TokFloat:
		p.next()
		return &FloatLit{P: pos{t.Line, t.Col}, V: t.FloatVal}, nil
	case t.Kind == TokString:
		p.next()
		return &StrLit{P: pos{t.Line, t.Col}, V: t.StrVal}, nil
	case t.Kind == TokIdent:
		p.next()
		if p.accept(TokPunct, "(") {
			call := &Call{P: pos{t.Line, t.Col}, Name: t.Text}
			if !p.accept(TokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(TokPunct, ")") {
						break
					}
					if _, err := p.expect(TokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		return &Ident{P: pos{t.Line, t.Col}, Name: t.Text}, nil
	case t.Kind == TokKeyword && (t.Text == "int" || t.Text == "float"):
		// Cast syntax: int(e), float(e) — parsed as calls.
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &Call{P: pos{t.Line, t.Col}, Name: t.Text, Args: []Expr{a}}, nil
	case p.accept(TokPunct, "("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, errf(t.Line, t.Col, "expected expression, found %s", t)
	}
}
