// Package lang implements MojC, the C-like MCC source language with
// first-class migration and speculation primitives (§2 of the paper). The
// frontend comprises a lexer, a recursive-descent parser, a semantic
// analyzer, and a CPS lowering pass that converts MojC functions — which
// have mutable locals, loops, and returning calls — into FIR, where
// variables are immutable, loops are recursive functions, and every call
// is a tail call ("Function calls in the source language are converted to
// tail-calls using continuation passing style. Loops are expressed with
// recursive functions.", §3).
//
// MojC types: int (64-bit), float (64-bit), ptr (pointer to int-word
// block), fptr (pointer to float-word block). Speculation builtins follow
// the paper's two examples: speculate() enters a level and yields a
// positive specid (or -c after an abort-path rollback); commit(id) folds
// the level down; abort(id) cancels the speculation Figure-1 style
// (speculate() then yields <= 0); retry(id) rolls back and re-runs the
// speculative region Figure-2 style. migrate(s) packs the process to the
// target described by the string s.
package lang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokChar
	TokPunct   // operators and delimiters
	TokKeyword // reserved words
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	// Literal payloads.
	IntVal   int64
	FloatVal float64
	StrVal   string
	// Position (1-based).
	Line, Col int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokString:
		return fmt.Sprintf("string %q", t.StrVal)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"int": true, "float": true, "ptr": true, "fptr": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
}

// Error is a positioned front-end diagnostic.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("mojc:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
