package lang

import (
	"bytes"
	"testing"

	"repro/internal/rt"
	"repro/internal/vm"
)

func compileAndRunPascal(t *testing.T, src string, args ...int64) (int64, string) {
	t.Helper()
	prog, err := CompilePascal(src, rt.StdExterns().Sigs())
	if err != nil {
		t.Fatalf("CompilePascal: %v", err)
	}
	var out bytes.Buffer
	p := vm.NewProcess(prog, vm.Config{Fuel: 5_000_000, Stdout: &out, Args: args})
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st, _ := p.Run()
	if st != vm.StatusHalted {
		t.Fatalf("status=%s err=%v\noutput: %s", st, p.Err(), out.String())
	}
	return p.HaltCode(), out.String()
}

func TestPascalFactorial(t *testing.T) {
	code, _ := compileAndRunPascal(t, `
function fact(n: integer): integer;
begin
  if n <= 1 then begin fact := 1; exit; end;
  fact := n * fact(n - 1);
end;

function main(): integer;
begin
  main := fact(10);
end;
`)
	if code != 3628800 {
		t.Fatalf("fact(10) = %d", code)
	}
}

func TestPascalForLoopAndVarSection(t *testing.T) {
	code, _ := compileAndRunPascal(t, `
function main(): integer;
var i, s: integer;
begin
  s := 0;
  for i := 1 to 10 do begin
    s := s + i;
  end;
  for i := 3 downto 1 do s := s + i * 100;
  main := s;
end;
`)
	if code != 55+600 {
		t.Fatalf("code = %d, want %d", code, 55+600)
	}
}

func TestPascalWhileAndOperators(t *testing.T) {
	code, _ := compileAndRunPascal(t, `
function main(): integer;
var i, s: integer;
begin
  i := 20;
  s := 0;
  while i > 0 do begin
    if (i mod 3 = 0) and (i <> 12) then s := s + i;
    i := i - 1;
  end;
  main := s;  { 3+6+9+15+18 }
end;
`)
	if code != 3+6+9+15+18 {
		t.Fatalf("code = %d, want %d", code, 3+6+9+15+18)
	}
}

func TestPascalIntegerDivision(t *testing.T) {
	code, _ := compileAndRunPascal(t, `
function main(): integer;
begin
  main := 17 div 5 * 100 + 17 mod 5;
end;
`)
	if code != 302 {
		t.Fatalf("code = %d, want 302", code)
	}
}

func TestPascalRealsAndCasts(t *testing.T) {
	code, _ := compileAndRunPascal(t, `
function half(x: real): real;
begin
  half := x / 2.0;
end;

function main(): integer;
var r: real;
begin
  r := half(real(7));
  main := integer(r * 10.0);  (* 35 *)
end;
`)
	if code != 35 {
		t.Fatalf("code = %d, want 35", code)
	}
}

func TestPascalArraysAndProcedures(t *testing.T) {
	code, out := compileAndRunPascal(t, `
procedure fill(a: pointer; n: integer);
var i: integer;
begin
  for i := 0 to n - 1 do a[i] := i * i;
end;

function main(): integer;
var a: pointer; s, i: integer;
begin
  a := alloc(10);
  fill(a, 10);
  s := 0;
  for i := 0 to 9 do s := s + a[i];
  print_int(s);
  main := s;
end;
`)
	want := int64(0)
	for i := int64(0); i < 10; i++ {
		want += i * i
	}
	if code != want || out != "285\n" {
		t.Fatalf("code=%d out=%q, want %d", code, out, want)
	}
}

func TestPascalSpeculationPrimitives(t *testing.T) {
	// The same Figure 1 semantics, in Pascal syntax.
	code, _ := compileAndRunPascal(t, `
function main(): integer;
var acct: pointer; specid: integer;
begin
  acct := alloc(2);
  acct[0] := 100;
  acct[1] := 50;
  specid := speculate();
  if specid > 0 then begin
    acct[0] := 0;
    acct[1] := 0;
    abort(specid);
    main := 999; exit;
  end;
  main := acct[0] * 1000 + acct[1];  { restored: 100050 }
end;
`)
	if code != 100050 {
		t.Fatalf("code = %d, want 100050", code)
	}
}

func TestPascalStringsAndBooleans(t *testing.T) {
	code, out := compileAndRunPascal(t, `
function main(): integer;
var s: pointer;
begin
  print_str('it''s pascal');
  s := 'ab';
  if true and not false then begin main := s[0] + s[1]; exit; end;
  main := 0;
end;
`)
	if out != "it's pascal\n" {
		t.Fatalf("output = %q", out)
	}
	if code != 'a'+'b' {
		t.Fatalf("code = %d", code)
	}
}

func TestPascalGridFragmentMatchesMojC(t *testing.T) {
	// The same numeric kernel in both frontends must agree exactly —
	// the FIR is language-agnostic.
	pascal := `
function main(): integer;
var u: fpointer; i: integer; sum: real;
begin
  u := falloc(16);
  for i := 0 to 15 do u[i] := real((i * 31) mod 100);
  sum := 0.0;
  for i := 1 to 14 do u[i] := 0.25 * (u[i-1] + u[i+1]) + 0.5 * u[i];
  for i := 0 to 15 do sum := sum + u[i];
  main := integer(sum * 1000.0);
end;
`
	mojc := `
int main() {
	fptr u = falloc(16);
	for (int i = 0; i <= 15; i += 1) { u[i] = float((i * 31) % 100); }
	float sum = 0.0;
	for (int i = 1; i <= 14; i += 1) { u[i] = 0.25 * (u[i-1] + u[i+1]) + 0.5 * u[i]; }
	for (int i = 0; i <= 15; i += 1) { sum += u[i]; }
	return int(sum * 1000.0);
}
`
	pcode, _ := compileAndRunPascal(t, pascal)
	ccode, _ := compileAndRun(t, mojc, nil)
	if pcode != ccode {
		t.Fatalf("pascal = %d, mojc = %d (frontends disagree)", pcode, ccode)
	}
}

func TestPascalErrors(t *testing.T) {
	cases := map[string]string{
		"missing then":   `function main(): integer; begin if 1 begin end; main := 0; end;`,
		"missing begin":  `function main(): integer; main := 0; end;`,
		"bad assign":     `function main(): integer; begin 3 := 4; end;`,
		"unknown var":    `function main(): integer; begin main := zz; end;`,
		"type mismatch":  `function main(): integer; var r: real; begin r := 1; main := 0; end;`,
		"unterm comment": `function main(): integer; begin main := 0; end; { oops`,
		"unterm string":  `function main(): integer; begin print_str('x); main := 0; end;`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := CompilePascal(src, rt.StdExterns().Sigs()); err == nil {
				t.Fatalf("accepted bad program:\n%s", src)
			}
		})
	}
}
