package fir

import "fmt"

// Atom is an atomic FIR value expression: a variable reference or a
// literal. Atoms are the only operands instructions accept; compound
// expressions are flattened by the frontend into Let chains.
type Atom interface {
	isAtom()
	String() string
}

// Var references an immutable FIR variable bound by a parameter, a Let, or
// an Extern.
type Var struct{ Name string }

// IntLit is an integer literal (also used for booleans: 0/1).
type IntLit struct{ V int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

// FunLit references a top-level function by name; at runtime it denotes an
// index into the function table.
type FunLit struct{ Name string }

// UnitLit is the unit value.
type UnitLit struct{}

func (Var) isAtom()      {}
func (IntLit) isAtom()   {}
func (FloatLit) isAtom() {}
func (FunLit) isAtom()   {}
func (UnitLit) isAtom()  {}

func (a Var) String() string      { return a.Name }
func (a IntLit) String() string   { return fmt.Sprintf("%d", a.V) }
func (a FloatLit) String() string { return fmt.Sprintf("%g", a.V) }
func (a FunLit) String() string   { return "@" + a.Name }
func (UnitLit) String() string    { return "()" }

// Expr is a FIR expression. Because FIR is in continuation-passing style,
// an expression is a straight-line sequence of Let/Extern bindings ending
// in exactly one control transfer (Call, If, Halt, or one of the
// migration/speculation pseudo-instructions).
type Expr interface {
	isExpr()
}

// Let binds Dst to the result of applying Op to Args, then continues with
// Body. FIR variables are immutable: Dst must be a fresh name.
type Let struct {
	Dst     string
	DstType Type
	Op      Op
	Args    []Atom
	Body    Expr
}

// Extern invokes a named external (runtime-provided) function, binds its
// result to Dst, and continues with Body. Externals are the FFI boundary:
// printing, messaging, random sources and clocks live here. They are the
// only non-tail calls in FIR.
type Extern struct {
	Dst     string
	DstType Type
	Name    string
	Args    []Atom
	Body    Expr
}

// If transfers control to Then when Cond (an int) is non-zero and to Else
// otherwise.
type If struct {
	Cond Atom
	Then Expr
	Else Expr
}

// Call is a tail call. Fn is either a FunLit (direct call) or a Var of
// function type (indirect call through the function table). Call never
// returns.
type Call struct {
	Fn   Atom
	Args []Atom
}

// Halt terminates the process with the given integer exit code.
type Halt struct{ Code Atom }

// MigrateProtocol selects how a migrate pseudo-instruction disposes of the
// packed process image (paper §4.2.1).
type MigrateProtocol uint8

const (
	// ProtoMigrate ships the process to a remote migration server for
	// immediate execution and terminates the local copy on success. On
	// failure the process continues locally, indifferent to the outcome.
	ProtoMigrate MigrateProtocol = iota
	// ProtoSuspend writes the process image to a file and terminates the
	// process if the write succeeded.
	ProtoSuspend
	// ProtoCheckpoint writes the process image to a file and continues
	// running regardless.
	ProtoCheckpoint
)

func (p MigrateProtocol) String() string {
	switch p {
	case ProtoMigrate:
		return "migrate"
	case ProtoSuspend:
		return "suspend"
	case ProtoCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("protocol(%d)", uint8(p))
	}
}

// Migrate is the migration pseudo-instruction
//
//	migrate [i, a_ptr, a_off] f(a_1, …, a_n)
//
// Label is the unique integer i identifying this migration point; the
// backend uses it to correlate the runtime execution point with the FIR
// when execution resumes on the target. (Target, TargetOff) is a pointer
// (block + offset) to a heap string naming the migration target; the string
// encodes the protocol, e.g. "migrate://host:port", "checkpoint://name" or
// "suspend://name". Fn/Args form the continuation invoked after the
// migration completes (on whichever machine the process ends up on).
type Migrate struct {
	Label     int
	Target    Atom
	TargetOff Atom
	Fn        Atom
	Args      []Atom
}

// Speculate is the pseudo-instruction speculate f(c, a_1, …, a_n): enter a
// new speculation level and invoke Fn with an integer first argument c and
// Args after it. On the initial entry c is 0; if the level is later rolled
// back, Fn is re-invoked with the same Args but the rollback's new value of
// c — the only way state crosses a rollback (paper §4.3.1).
type Speculate struct {
	Fn   Atom
	Args []Atom
}

// Commit is the pseudo-instruction commit [l] f(a_1, …, a_n): fold all
// changes of speculation level l into the level below it (commits may occur
// out of order), then invoke the continuation.
type Commit struct {
	Level Atom
	Fn    Atom
	Args  []Atom
}

// Rollback is the pseudo-instruction rollback [l, c]: revert every change
// made in level l and all later levels, then re-enter level l by
// re-invoking its saved continuation with the new value of c (the retry
// semantics of §4.3.1).
type Rollback struct {
	Level Atom
	C     Atom
}

func (Let) isExpr()       {}
func (Extern) isExpr()    {}
func (If) isExpr()        {}
func (Call) isExpr()      {}
func (Halt) isExpr()      {}
func (Migrate) isExpr()   {}
func (Speculate) isExpr() {}
func (Commit) isExpr()    {}
func (Rollback) isExpr()  {}

// Function is a top-level FIR function. Functions never return; the body
// ends in a control transfer.
type Function struct {
	Name   string
	Params []Param
	Body   Expr
}

// Type returns the function type of f.
func (f *Function) Type() Type {
	ps := make([]Type, len(f.Params))
	for i, p := range f.Params {
		ps[i] = p.Type
	}
	return TyFun(ps...)
}

// Program is a complete FIR program: an ordered list of functions and the
// name of the entry function. Function order is significant — the function
// table index of a function is its position in Funcs, and migration
// preserves order so indices stored in the heap stay valid (§4.2.2).
type Program struct {
	Funcs []*Function
	Entry string

	index map[string]int
}

// NewProgram assembles a program from functions and an entry point name.
func NewProgram(entry string, funcs ...*Function) *Program {
	p := &Program{Funcs: funcs, Entry: entry}
	p.reindex()
	return p
}

func (p *Program) reindex() {
	p.index = make(map[string]int, len(p.Funcs))
	for i, f := range p.Funcs {
		p.index[f.Name] = i
	}
}

// AddFunc appends a function to the program.
func (p *Program) AddFunc(f *Function) {
	p.Funcs = append(p.Funcs, f)
	if p.index == nil {
		p.index = make(map[string]int)
	}
	p.index[f.Name] = len(p.Funcs) - 1
}

// Lookup returns the function with the given name and its function-table
// index, or nil and -1 when absent.
func (p *Program) Lookup(name string) (*Function, int) {
	if p.index == nil {
		p.reindex()
	}
	i, ok := p.index[name]
	if !ok {
		return nil, -1
	}
	return p.Funcs[i], i
}

// FuncByIndex returns the function at a function-table index.
func (p *Program) FuncByIndex(i int) (*Function, error) {
	if i < 0 || i >= len(p.Funcs) {
		return nil, fmt.Errorf("fir: function index %d out of range [0,%d)", i, len(p.Funcs))
	}
	return p.Funcs[i], nil
}
