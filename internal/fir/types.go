// Package fir implements the Mojave functional intermediate representation
// (FIR): a type-safe, semi-functional, continuation-passing-style language
// into which every MCC source language is lowered.
//
// FIR variables are immutable; all mutation happens through heap blocks.
// Functions never return — control transfers only via tail calls — so the
// complete execution state of a process is (current function, argument
// values, heap). That property is what makes whole-process migration and
// speculative rollback expressible as ordinary data operations: capturing a
// continuation is capturing a function index plus a vector of arguments.
//
// The package provides the instruction set (including the migrate,
// speculate, commit and rollback pseudo-instructions of the paper's §4.2.1
// and §4.3.1), a type checker, a validator, a pretty-printer, a canonical
// binary encoding used by the migration subsystem, and a builder API used
// by the MojC frontend and by tests.
package fir

import "fmt"

// Kind enumerates the base kinds of FIR types.
type Kind uint8

// The FIR type kinds. Pointers are untyped at the FIR level (blocks hold
// tagged words that the runtime checks on every access), mirroring the
// paper's treatment of C memory. Function types carry parameter types so
// indirect tail calls through the function table can be checked.
const (
	KindUnit Kind = iota
	KindInt
	KindFloat
	KindPtr
	KindFun
)

func (k Kind) String() string {
	switch k {
	case KindUnit:
		return "unit"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindPtr:
		return "ptr"
	case KindFun:
		return "fun"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Type is a FIR type. Params is non-nil only for KindFun, in which case it
// holds the parameter types of the function (FIR functions do not return).
type Type struct {
	Kind   Kind
	Params []Type
}

// Convenient type singletons for the non-function kinds.
var (
	TyUnit  = Type{Kind: KindUnit}
	TyInt   = Type{Kind: KindInt}
	TyFloat = Type{Kind: KindFloat}
	TyPtr   = Type{Kind: KindPtr}
)

// TyFun constructs a function type with the given parameter types.
func TyFun(params ...Type) Type {
	return Type{Kind: KindFun, Params: params}
}

// Equal reports whether two FIR types are structurally equal.
func (t Type) Equal(u Type) bool {
	if t.Kind != u.Kind {
		return false
	}
	if t.Kind != KindFun {
		return true
	}
	if len(t.Params) != len(u.Params) {
		return false
	}
	for i := range t.Params {
		if !t.Params[i].Equal(u.Params[i]) {
			return false
		}
	}
	return true
}

func (t Type) String() string {
	if t.Kind != KindFun {
		return t.Kind.String()
	}
	s := "fun("
	for i, p := range t.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + ")"
}

// Param is a named, typed function parameter.
type Param struct {
	Name string
	Type Type
}
