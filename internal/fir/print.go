package fir

import (
	"fmt"
	"strings"
)

// Format renders a program in a readable textual form, used by `mcc -emit
// fir` and by test failure output. The format is stable but not parsed
// back; the canonical interchange form is the binary encoding.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program entry=%s\n", p.Entry)
	for _, f := range p.Funcs {
		b.WriteString(FormatFunc(f))
	}
	return b.String()
}

// FormatFunc renders a single function.
func FormatFunc(f *Function) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fun %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", p.Name, p.Type)
	}
	b.WriteString(") =\n")
	writeExpr(&b, f.Body, 1)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr, depth int) {
	ind := strings.Repeat("  ", depth)
	for {
		switch e2 := e.(type) {
		case Let:
			fmt.Fprintf(b, "%slet %s: %s = %s%s\n", ind, e2.Dst, e2.DstType, e2.Op, atomList(e2.Args, "(", ")"))
			e = e2.Body
		case Extern:
			fmt.Fprintf(b, "%slet %s: %s = extern %q%s\n", ind, e2.Dst, e2.DstType, e2.Name, atomList(e2.Args, "(", ")"))
			e = e2.Body
		case If:
			fmt.Fprintf(b, "%sif %s then\n", ind, e2.Cond)
			writeExpr(b, e2.Then, depth+1)
			fmt.Fprintf(b, "%selse\n", ind)
			writeExpr(b, e2.Else, depth+1)
			return
		case Call:
			fmt.Fprintf(b, "%s%s%s\n", ind, e2.Fn, atomList(e2.Args, "(", ")"))
			return
		case Halt:
			fmt.Fprintf(b, "%shalt %s\n", ind, e2.Code)
			return
		case Migrate:
			fmt.Fprintf(b, "%smigrate [%d, %s, %s] %s%s\n", ind, e2.Label, e2.Target, e2.TargetOff, e2.Fn, atomList(e2.Args, "(", ")"))
			return
		case Speculate:
			fmt.Fprintf(b, "%sspeculate %s%s\n", ind, e2.Fn, atomList(e2.Args, "(c; ", ")"))
			return
		case Commit:
			fmt.Fprintf(b, "%scommit [%s] %s%s\n", ind, e2.Level, e2.Fn, atomList(e2.Args, "(", ")"))
			return
		case Rollback:
			fmt.Fprintf(b, "%srollback [%s, %s]\n", ind, e2.Level, e2.C)
			return
		case nil:
			fmt.Fprintf(b, "%s<nil>\n", ind)
			return
		default:
			fmt.Fprintf(b, "%s<unknown %T>\n", ind, e2)
			return
		}
	}
}

func atomList(args []Atom, open, close string) string {
	var b strings.Builder
	b.WriteString(open)
	for i, a := range args {
		if i > 0 {
			b.WriteString(", ")
		}
		if a == nil {
			b.WriteString("<nil>")
		} else {
			b.WriteString(a.String())
		}
	}
	b.WriteString(close)
	return b.String()
}
