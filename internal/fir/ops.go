package fir

import "fmt"

// Op enumerates the primitive operators usable in a Let binding. Heap
// operators (OpAlloc, OpLoad, OpStore, …) are the only way FIR code touches
// mutable state; everything else is pure.
type Op uint8

const (
	// Integer arithmetic. Args: int, int → int (OpNeg/OpNot take one arg).
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv // traps on divide by zero
	OpMod // traps on divide by zero
	OpNeg
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr

	// Integer comparison. Args: int, int → int (0 or 1).
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Float arithmetic. Args: float, float → float (OpFNeg takes one).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Float comparison. Args: float, float → int (0 or 1).
	OpFEq
	OpFNe
	OpFLt
	OpFLe
	OpFGt
	OpFGe

	// Conversions.
	OpIntToFloat // int → float
	OpFloatToInt // float → int (truncating)

	// Heap operations. Pointers are (base, offset) pairs; OpAlloc yields a
	// pointer with offset 0. All accesses are bounds- and tag-checked by
	// the runtime through the pointer table (§4.1.1).
	OpAlloc    // size:int → ptr          allocate a block of `size` words
	OpLoad     // ptr, off:int → any      load word at base.offset+off (result type from DstType)
	OpStore    // ptr, off:int, val → unit
	OpLen      // ptr → int               number of words in the block
	OpPtrAdd   // ptr, delta:int → ptr    adjust the offset component
	OpPtrBase  // ptr → ptr               reset offset to zero
	OpPtrOff   // ptr → int               current offset component
	OpPtrEq    // ptr, ptr → int          same block and offset
	OpPtrNull  // → ptr                   the null pointer
	OpPtrIsNil // ptr → int               1 when the pointer is null

	// OpMove copies any value unchanged; used by the frontend to rename.
	OpMove
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpFEq: "feq", OpFNe: "fne", OpFLt: "flt", OpFLe: "fle", OpFGt: "fgt", OpFGe: "fge",
	OpIntToFloat: "itof", OpFloatToInt: "ftoi",
	OpAlloc: "alloc", OpLoad: "load", OpStore: "store", OpLen: "len",
	OpPtrAdd: "ptradd", OpPtrBase: "ptrbase", OpPtrOff: "ptroff",
	OpPtrEq: "ptreq", OpPtrNull: "ptrnull", OpPtrIsNil: "ptrisnil",
	OpMove: "move",
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// opSig describes an operator's argument types and result type for the type
// checker. A nil entry in args means "any value type" (used by store/move);
// a nil result means "result type is taken from the Let's DstType" (load,
// move).
type opSig struct {
	args   []*Type
	result *Type
}

var (
	tInt   = &TyInt
	tFloat = &TyFloat
	tPtr   = &TyPtr
	tUnit  = &TyUnit
)

var opSigs = map[Op]opSig{
	OpAdd: {[]*Type{tInt, tInt}, tInt},
	OpSub: {[]*Type{tInt, tInt}, tInt},
	OpMul: {[]*Type{tInt, tInt}, tInt},
	OpDiv: {[]*Type{tInt, tInt}, tInt},
	OpMod: {[]*Type{tInt, tInt}, tInt},
	OpNeg: {[]*Type{tInt}, tInt},
	OpAnd: {[]*Type{tInt, tInt}, tInt},
	OpOr:  {[]*Type{tInt, tInt}, tInt},
	OpXor: {[]*Type{tInt, tInt}, tInt},
	OpNot: {[]*Type{tInt}, tInt},
	OpShl: {[]*Type{tInt, tInt}, tInt},
	OpShr: {[]*Type{tInt, tInt}, tInt},

	OpEq: {[]*Type{tInt, tInt}, tInt},
	OpNe: {[]*Type{tInt, tInt}, tInt},
	OpLt: {[]*Type{tInt, tInt}, tInt},
	OpLe: {[]*Type{tInt, tInt}, tInt},
	OpGt: {[]*Type{tInt, tInt}, tInt},
	OpGe: {[]*Type{tInt, tInt}, tInt},

	OpFAdd: {[]*Type{tFloat, tFloat}, tFloat},
	OpFSub: {[]*Type{tFloat, tFloat}, tFloat},
	OpFMul: {[]*Type{tFloat, tFloat}, tFloat},
	OpFDiv: {[]*Type{tFloat, tFloat}, tFloat},
	OpFNeg: {[]*Type{tFloat}, tFloat},

	OpFEq: {[]*Type{tFloat, tFloat}, tInt},
	OpFNe: {[]*Type{tFloat, tFloat}, tInt},
	OpFLt: {[]*Type{tFloat, tFloat}, tInt},
	OpFLe: {[]*Type{tFloat, tFloat}, tInt},
	OpFGt: {[]*Type{tFloat, tFloat}, tInt},
	OpFGe: {[]*Type{tFloat, tFloat}, tInt},

	OpIntToFloat: {[]*Type{tInt}, tFloat},
	OpFloatToInt: {[]*Type{tFloat}, tInt},

	OpAlloc:    {[]*Type{tInt}, tPtr},
	OpLoad:     {[]*Type{tPtr, tInt}, nil},
	OpStore:    {[]*Type{tPtr, tInt, nil}, tUnit},
	OpLen:      {[]*Type{tPtr}, tInt},
	OpPtrAdd:   {[]*Type{tPtr, tInt}, tPtr},
	OpPtrBase:  {[]*Type{tPtr}, tPtr},
	OpPtrOff:   {[]*Type{tPtr}, tInt},
	OpPtrEq:    {[]*Type{tPtr, tPtr}, tInt},
	OpPtrNull:  {[]*Type{}, tPtr},
	OpPtrIsNil: {[]*Type{tPtr}, tInt},

	OpMove: {[]*Type{nil}, nil},
}
