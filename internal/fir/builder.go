package fir

import "fmt"

// Builder constructs a FIR expression as a linear sequence of bindings
// terminated by a control transfer. It exists because CPS expressions nest
// to the right, which is awkward to write literally; the MojC frontend,
// the core API and the test suites all build FIR through it.
//
//	b := fir.NewBuilder()
//	b.Let("x", fir.TyInt, fir.OpAdd, fir.IntLit{V: 1}, fir.IntLit{V: 2})
//	body := b.Halt(fir.Var{Name: "x"})
type Builder struct {
	frames []func(Expr) Expr
	gensym int
}

// NewBuilder returns an empty expression builder.
func NewBuilder() *Builder { return &Builder{} }

// Fresh returns a variable name guaranteed unique within this builder.
func (b *Builder) Fresh(prefix string) string {
	b.gensym++
	return fmt.Sprintf("%s$%d", prefix, b.gensym)
}

// Let appends a primitive-operator binding.
func (b *Builder) Let(dst string, t Type, op Op, args ...Atom) *Builder {
	b.frames = append(b.frames, func(body Expr) Expr {
		return Let{Dst: dst, DstType: t, Op: op, Args: args, Body: body}
	})
	return b
}

// Extern appends an external-call binding.
func (b *Builder) Extern(dst string, t Type, name string, args ...Atom) *Builder {
	b.frames = append(b.frames, func(body Expr) Expr {
		return Extern{Dst: dst, DstType: t, Name: name, Args: args, Body: body}
	})
	return b
}

func (b *Builder) finish(term Expr) Expr {
	e := term
	for i := len(b.frames) - 1; i >= 0; i-- {
		e = b.frames[i](e)
	}
	b.frames = nil
	return e
}

// Call terminates the sequence with a tail call.
func (b *Builder) Call(fn Atom, args ...Atom) Expr {
	return b.finish(Call{Fn: fn, Args: args})
}

// CallNamed terminates with a direct tail call to a named function.
func (b *Builder) CallNamed(fn string, args ...Atom) Expr {
	return b.Call(FunLit{Name: fn}, args...)
}

// Halt terminates the sequence with process exit.
func (b *Builder) Halt(code Atom) Expr {
	return b.finish(Halt{Code: code})
}

// If terminates the sequence with a conditional branch.
func (b *Builder) If(cond Atom, then, els Expr) Expr {
	return b.finish(If{Cond: cond, Then: then, Else: els})
}

// Speculate terminates the sequence by entering a new speculation level.
func (b *Builder) Speculate(fn string, args ...Atom) Expr {
	return b.finish(Speculate{Fn: FunLit{Name: fn}, Args: args})
}

// Commit terminates the sequence by committing a speculation level.
func (b *Builder) Commit(level Atom, fn string, args ...Atom) Expr {
	return b.finish(Commit{Level: level, Fn: FunLit{Name: fn}, Args: args})
}

// Rollback terminates the sequence by rolling back to a speculation level.
func (b *Builder) Rollback(level, c Atom) Expr {
	return b.finish(Rollback{Level: level, C: c})
}

// Migrate terminates the sequence with a migration pseudo-instruction.
func (b *Builder) Migrate(label int, target, targetOff Atom, fn string, args ...Atom) Expr {
	return b.finish(Migrate{Label: label, Target: target, TargetOff: targetOff, Fn: FunLit{Name: fn}, Args: args})
}

// Fn is a convenience constructor for a Function.
func Fn(name string, params []Param, body Expr) *Function {
	return &Function{Name: name, Params: params, Body: body}
}

// Ps builds a parameter list from alternating name, Type pairs.
func Ps(pairs ...any) []Param {
	if len(pairs)%2 != 0 {
		panic("fir.Ps: odd argument count")
	}
	out := make([]Param, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("fir.Ps: argument %d is %T, want string", i, pairs[i]))
		}
		t, ok := pairs[i+1].(Type)
		if !ok {
			panic(fmt.Sprintf("fir.Ps: argument %d is %T, want fir.Type", i+1, pairs[i+1]))
		}
		out = append(out, Param{Name: name, Type: t})
	}
	return out
}

// I, F and V are literal/variable shorthands for building FIR in Go.
func I(v int64) IntLit     { return IntLit{V: v} }
func F(v float64) FloatLit { return FloatLit{V: v} }
func V(name string) Var    { return Var{Name: name} }
