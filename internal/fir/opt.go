package fir

// Optimize is the FIR optimization pass the MCC pipeline runs between
// lowering and the backend: constant folding, copy propagation, branch
// folding, and dead-binding elimination. The CPS lowering emits many
// move/literal temporaries (every literal argument gets its own binding on
// the RISC path), so this pass pays for itself in both interpreter steps
// and generated code size.
//
// The pass is deliberately conservative about effects: heap operators
// (alloc/load/store/len) and externals are never folded or dropped — loads
// can trap and allocations are observable — and integer division is folded
// only when the divisor is a non-zero literal, preserving trap behaviour.

// OptStats reports what Optimize did.
type OptStats struct {
	Folded     int // operator applications replaced by literals
	CopiesProp int // move bindings propagated away
	DeadLets   int // pure bindings removed
	IfsFolded  int // branches with literal conditions removed
}

// Optimize rewrites every function body in place and returns statistics.
func Optimize(p *Program) OptStats {
	var st OptStats
	for _, f := range p.Funcs {
		f.Body = optExpr(f.Body, map[string]Atom{}, &st)
		f.Body = dropDead(f.Body, &st)
	}
	return st
}

// subst resolves an atom through the copy/constant environment.
func subst(a Atom, env map[string]Atom) Atom {
	if v, ok := a.(Var); ok {
		if r, ok := env[v.Name]; ok {
			return r
		}
	}
	return a
}

func substAll(args []Atom, env map[string]Atom) []Atom {
	out := make([]Atom, len(args))
	for i, a := range args {
		out[i] = subst(a, env)
	}
	return out
}

// optExpr performs constant folding, copy propagation and branch folding.
func optExpr(e Expr, env map[string]Atom, st *OptStats) Expr {
	switch e2 := e.(type) {
	case Let:
		args := substAll(e2.Args, env)
		// Copy propagation: let x = move a ↦ uses of x become a.
		if e2.Op == OpMove {
			st.CopiesProp++
			env[e2.Dst] = args[0]
			return optExpr(e2.Body, env, st)
		}
		if lit, ok := foldOp(e2.Op, args); ok {
			st.Folded++
			env[e2.Dst] = lit
			return optExpr(e2.Body, env, st)
		}
		delete(env, e2.Dst) // a fresh binding shadows any propagated copy
		e2.Args = args
		e2.Body = optExpr(e2.Body, env, st)
		return e2

	case Extern:
		e2.Args = substAll(e2.Args, env)
		delete(env, e2.Dst)
		e2.Body = optExpr(e2.Body, env, st)
		return e2

	case If:
		cond := subst(e2.Cond, env)
		if lit, ok := cond.(IntLit); ok {
			st.IfsFolded++
			if lit.V != 0 {
				return optExpr(e2.Then, env, st)
			}
			return optExpr(e2.Else, env, st)
		}
		e2.Cond = cond
		// Branches need independent environments: a propagation valid in
		// one arm must not leak into the other.
		thenEnv := cloneEnv(env)
		e2.Then = optExpr(e2.Then, thenEnv, st)
		elseEnv := cloneEnv(env)
		e2.Else = optExpr(e2.Else, elseEnv, st)
		return e2

	case Call:
		e2.Fn = subst(e2.Fn, env)
		e2.Args = substAll(e2.Args, env)
		return e2
	case Halt:
		e2.Code = subst(e2.Code, env)
		return e2
	case Migrate:
		e2.Target = subst(e2.Target, env)
		e2.TargetOff = subst(e2.TargetOff, env)
		e2.Fn = subst(e2.Fn, env)
		e2.Args = substAll(e2.Args, env)
		return e2
	case Speculate:
		e2.Fn = subst(e2.Fn, env)
		e2.Args = substAll(e2.Args, env)
		return e2
	case Commit:
		e2.Level = subst(e2.Level, env)
		e2.Fn = subst(e2.Fn, env)
		e2.Args = substAll(e2.Args, env)
		return e2
	case Rollback:
		e2.Level = subst(e2.Level, env)
		e2.C = subst(e2.C, env)
		return e2
	default:
		return e
	}
}

func cloneEnv(env map[string]Atom) map[string]Atom {
	out := make(map[string]Atom, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// foldOp evaluates a pure operator over literal operands. It returns
// (result, true) only when folding cannot change observable behaviour.
func foldOp(op Op, args []Atom) (Atom, bool) {
	i2 := func() (int64, int64, bool) {
		a, okA := args[0].(IntLit)
		b, okB := args[1].(IntLit)
		return a.V, b.V, okA && okB
	}
	f2 := func() (float64, float64, bool) {
		a, okA := args[0].(FloatLit)
		b, okB := args[1].(FloatLit)
		return a.V, b.V, okA && okB
	}
	bi := func(b bool) Atom {
		if b {
			return IntLit{V: 1}
		}
		return IntLit{V: 0}
	}
	switch op {
	case OpAdd:
		if a, b, ok := i2(); ok {
			return IntLit{V: a + b}, true
		}
	case OpSub:
		if a, b, ok := i2(); ok {
			return IntLit{V: a - b}, true
		}
	case OpMul:
		if a, b, ok := i2(); ok {
			return IntLit{V: a * b}, true
		}
	case OpDiv:
		if a, b, ok := i2(); ok && b != 0 {
			return IntLit{V: a / b}, true
		}
	case OpMod:
		if a, b, ok := i2(); ok && b != 0 {
			return IntLit{V: a % b}, true
		}
	case OpAnd:
		if a, b, ok := i2(); ok {
			return IntLit{V: a & b}, true
		}
	case OpOr:
		if a, b, ok := i2(); ok {
			return IntLit{V: a | b}, true
		}
	case OpXor:
		if a, b, ok := i2(); ok {
			return IntLit{V: a ^ b}, true
		}
	case OpShl:
		if a, b, ok := i2(); ok && b >= 0 && b <= 63 {
			return IntLit{V: a << uint(b)}, true
		}
	case OpShr:
		if a, b, ok := i2(); ok && b >= 0 && b <= 63 {
			return IntLit{V: a >> uint(b)}, true
		}
	case OpEq:
		if a, b, ok := i2(); ok {
			return bi(a == b), true
		}
	case OpNe:
		if a, b, ok := i2(); ok {
			return bi(a != b), true
		}
	case OpLt:
		if a, b, ok := i2(); ok {
			return bi(a < b), true
		}
	case OpLe:
		if a, b, ok := i2(); ok {
			return bi(a <= b), true
		}
	case OpGt:
		if a, b, ok := i2(); ok {
			return bi(a > b), true
		}
	case OpGe:
		if a, b, ok := i2(); ok {
			return bi(a >= b), true
		}
	case OpNeg:
		if a, ok := args[0].(IntLit); ok {
			return IntLit{V: -a.V}, true
		}
	case OpNot:
		if a, ok := args[0].(IntLit); ok {
			return bi(a.V == 0), true
		}
	case OpFAdd:
		if a, b, ok := f2(); ok {
			return FloatLit{V: a + b}, true
		}
	case OpFSub:
		if a, b, ok := f2(); ok {
			return FloatLit{V: a - b}, true
		}
	case OpFMul:
		if a, b, ok := f2(); ok {
			return FloatLit{V: a * b}, true
		}
	case OpFDiv:
		if a, b, ok := f2(); ok {
			return FloatLit{V: a / b}, true
		}
	case OpFNeg:
		if a, ok := args[0].(FloatLit); ok {
			return FloatLit{V: -a.V}, true
		}
	case OpFEq:
		if a, b, ok := f2(); ok {
			return bi(a == b), true
		}
	case OpFNe:
		if a, b, ok := f2(); ok {
			return bi(a != b), true
		}
	case OpFLt:
		if a, b, ok := f2(); ok {
			return bi(a < b), true
		}
	case OpFLe:
		if a, b, ok := f2(); ok {
			return bi(a <= b), true
		}
	case OpFGt:
		if a, b, ok := f2(); ok {
			return bi(a > b), true
		}
	case OpFGe:
		if a, b, ok := f2(); ok {
			return bi(a >= b), true
		}
	case OpIntToFloat:
		if a, ok := args[0].(IntLit); ok {
			return FloatLit{V: float64(a.V)}, true
		}
	case OpFloatToInt:
		if a, ok := args[0].(FloatLit); ok {
			return IntLit{V: int64(a.V)}, true
		}
	}
	return nil, false
}

// pureOp reports whether dropping an unused binding of op is unobservable.
func pureOp(op Op) bool {
	switch op {
	case OpAlloc, OpLoad, OpStore, OpLen:
		// alloc is an effect (memory), load/len can trap, store mutates.
		return false
	case OpDiv, OpMod, OpShl, OpShr:
		// These trap on bad right operands; an unfolded instance was not
		// proven safe, so its trap is observable.
		return false
	default:
		return true
	}
}

// dropDead removes pure Let bindings whose destination is never used.
func dropDead(e Expr, st *OptStats) Expr {
	used := make(map[string]bool)
	var scan func(Expr)
	touch := func(a Atom) {
		if v, ok := a.(Var); ok {
			used[v.Name] = true
		}
	}
	scan = func(e Expr) {
		switch e2 := e.(type) {
		case Let:
			for _, a := range e2.Args {
				touch(a)
			}
			scan(e2.Body)
		case Extern:
			for _, a := range e2.Args {
				touch(a)
			}
			scan(e2.Body)
		case If:
			touch(e2.Cond)
			scan(e2.Then)
			scan(e2.Else)
		case Call:
			touch(e2.Fn)
			for _, a := range e2.Args {
				touch(a)
			}
		case Halt:
			touch(e2.Code)
		case Migrate:
			touch(e2.Target)
			touch(e2.TargetOff)
			touch(e2.Fn)
			for _, a := range e2.Args {
				touch(a)
			}
		case Speculate:
			touch(e2.Fn)
			for _, a := range e2.Args {
				touch(a)
			}
		case Commit:
			touch(e2.Level)
			touch(e2.Fn)
			for _, a := range e2.Args {
				touch(a)
			}
		case Rollback:
			touch(e2.Level)
			touch(e2.C)
		}
	}
	scan(e)

	var rw func(Expr) Expr
	rw = func(e Expr) Expr {
		switch e2 := e.(type) {
		case Let:
			e2.Body = rw(e2.Body)
			if !used[e2.Dst] && pureOp(e2.Op) {
				st.DeadLets++
				return e2.Body
			}
			return e2
		case Extern:
			e2.Body = rw(e2.Body)
			return e2
		case If:
			e2.Then = rw(e2.Then)
			e2.Else = rw(e2.Else)
			return e2
		default:
			return e
		}
	}
	return rw(e)
}
