package fir

import (
	"strings"
	"testing"
)

func TestOptimizeFoldsConstants(t *testing.T) {
	b := NewBuilder()
	b.Let("a", TyInt, OpAdd, I(2), I(3))
	b.Let("c", TyInt, OpMul, V("a"), I(4))
	p := NewProgram("main", Fn("main", nil, b.Halt(V("c"))))
	st := Optimize(p)
	if st.Folded < 2 {
		t.Fatalf("Folded = %d, want >= 2", st.Folded)
	}
	out := Format(p)
	if !strings.Contains(out, "halt 20") {
		t.Fatalf("folding did not reach the halt:\n%s", out)
	}
	if err := Check(p, nil); err != nil {
		t.Fatalf("optimized program fails Check: %v", err)
	}
}

func TestOptimizeCopyPropagationAndDeadLets(t *testing.T) {
	b := NewBuilder()
	b.Let("x", TyInt, OpMove, I(7))
	b.Let("unused", TyInt, OpAdd, V("x"), I(1))
	p := NewProgram("main", Fn("main", nil, b.Halt(V("x"))))
	st := Optimize(p)
	if st.CopiesProp == 0 {
		t.Fatal("no copies propagated")
	}
	out := Format(p)
	if !strings.Contains(out, "halt 7") {
		t.Fatalf("move not propagated:\n%s", out)
	}
	if strings.Contains(out, "unused") {
		t.Fatalf("dead binding survived:\n%s", out)
	}
}

func TestOptimizeFoldsBranches(t *testing.T) {
	b := NewBuilder()
	b.Let("c", TyInt, OpLt, I(1), I(2))
	body := b.If(V("c"), Halt{Code: I(10)}, Halt{Code: I(20)})
	p := NewProgram("main", Fn("main", nil, body))
	st := Optimize(p)
	if st.IfsFolded != 1 {
		t.Fatalf("IfsFolded = %d", st.IfsFolded)
	}
	if !strings.Contains(Format(p), "halt 10") || strings.Contains(Format(p), "halt 20") {
		t.Fatalf("branch not folded:\n%s", Format(p))
	}
}

func TestOptimizePreservesTraps(t *testing.T) {
	// Division by a zero literal must NOT fold — the trap is observable.
	b := NewBuilder()
	b.Let("d", TyInt, OpDiv, I(1), I(0))
	p := NewProgram("main", Fn("main", nil, b.Halt(I(0))))
	Optimize(p)
	out := Format(p)
	if !strings.Contains(out, "div") {
		t.Fatalf("div-by-zero was folded or dropped:\n%s", out)
	}
	// Loads are never dropped even when unused (they can trap).
	b2 := NewBuilder()
	b2.Let("p", TyPtr, OpAlloc, I(1))
	b2.Let("x", TyInt, OpLoad, V("p"), I(5))
	p2 := NewProgram("main", Fn("main", nil, b2.Halt(I(0))))
	Optimize(p2)
	if !strings.Contains(Format(p2), "load") {
		t.Fatalf("trapping load dropped:\n%s", Format(p2))
	}
}

func TestOptimizeBranchEnvIsolation(t *testing.T) {
	// A copy propagated inside one branch must not leak into the other.
	b := NewBuilder()
	b.Let("p", TyPtr, OpAlloc, I(2))
	b.Let("c", TyInt, OpLoad, V("p"), I(0)) // opaque condition
	thenB := NewBuilder()
	thenB.Let("t", TyInt, OpMove, I(1))
	then := thenB.Halt(V("t"))
	elseB := NewBuilder()
	elseB.Let("t", TyInt, OpMove, I(2))
	els := elseB.Halt(V("t"))
	p := NewProgram("main", Fn("main", nil, b.If(V("c"), then, els)))
	Optimize(p)
	out := Format(p)
	if !strings.Contains(out, "halt 1") || !strings.Contains(out, "halt 2") {
		t.Fatalf("branch environments leaked:\n%s", out)
	}
	if err := Check(p, nil); err != nil {
		t.Fatalf("Check after optimize: %v", err)
	}
}
