package fir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// testExterns is a small registry for checker tests.
var testExterns = map[string]ExternSig{
	"print_int": {Args: []Type{TyInt}, Result: TyUnit},
	"getarg":    {Args: []Type{TyInt}, Result: TyInt},
}

// loopProgram is a canonical well-typed program: sums 0..9 with a
// recursive function (FIR expresses loops as recursion).
func loopProgram() *Program {
	b := NewBuilder()
	b.Let("done", TyInt, OpGe, V("i"), I(10))
	loopBody := b.If(V("done"),
		Halt{Code: V("acc")},
		func() Expr {
			b2 := NewBuilder()
			b2.Let("acc2", TyInt, OpAdd, V("acc"), V("i"))
			b2.Let("i2", TyInt, OpAdd, V("i"), I(1))
			return b2.CallNamed("loop", V("i2"), V("acc2"))
		}(),
	)
	loop := Fn("loop", Ps("i", TyInt, "acc", TyInt), loopBody)
	main := Fn("main", nil, NewBuilder().CallNamed("loop", I(0), I(0)))
	return NewProgram("main", main, loop)
}

func TestCheckAcceptsLoopProgram(t *testing.T) {
	if err := Check(loopProgram(), testExterns); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{
			"missing entry",
			NewProgram("nope", Fn("main", nil, Halt{Code: I(0)})),
			"entry function",
		},
		{
			"entry with params",
			NewProgram("main", Fn("main", Ps("x", TyInt), Halt{Code: I(0)})),
			"no parameters",
		},
		{
			"duplicate function",
			NewProgram("main", Fn("main", nil, Halt{Code: I(0)}), Fn("main", nil, Halt{Code: I(0)})),
			"duplicate function",
		},
		{
			"unbound variable",
			NewProgram("main", Fn("main", nil, Halt{Code: V("ghost")})),
			"unbound variable",
		},
		{
			"operand type mismatch",
			NewProgram("main", Fn("main", nil,
				Let{Dst: "x", DstType: TyInt, Op: OpAdd, Args: []Atom{I(1), F(2.0)}, Body: Halt{Code: V("x")}})),
			"operand 1",
		},
		{
			"result type mismatch",
			NewProgram("main", Fn("main", nil,
				Let{Dst: "x", DstType: TyFloat, Op: OpAdd, Args: []Atom{I(1), I(2)}, Body: Halt{Code: I(0)}})),
			"yields int",
		},
		{
			"call arity",
			NewProgram("main",
				Fn("main", nil, Call{Fn: FunLit{Name: "f"}, Args: []Atom{I(1)}}),
				Fn("f", Ps("a", TyInt, "b", TyInt), Halt{Code: I(0)})),
			"takes 2 arguments",
		},
		{
			"call arg type",
			NewProgram("main",
				Fn("main", nil, Call{Fn: FunLit{Name: "f"}, Args: []Atom{F(1)}}),
				Fn("f", Ps("a", TyInt), Halt{Code: I(0)})),
			"argument 0",
		},
		{
			"call non-function",
			NewProgram("main", Fn("main", nil,
				Let{Dst: "x", DstType: TyInt, Op: OpMove, Args: []Atom{I(1)}, Body: Call{Fn: V("x")}})),
			"want a function",
		},
		{
			"undefined callee",
			NewProgram("main", Fn("main", nil, Call{Fn: FunLit{Name: "ghost"}})),
			"undefined function",
		},
		{
			"halt code not int",
			NewProgram("main", Fn("main", nil, Halt{Code: F(1)})),
			"halt code",
		},
		{
			"if condition not int",
			NewProgram("main", Fn("main", nil, If{Cond: F(1), Then: Halt{Code: I(0)}, Else: Halt{Code: I(0)}})),
			"if condition",
		},
		{
			"unknown extern",
			NewProgram("main", Fn("main", nil,
				Extern{Dst: "x", DstType: TyInt, Name: "ghost", Body: Halt{Code: V("x")}})),
			"unknown extern",
		},
		{
			"extern result mismatch",
			NewProgram("main", Fn("main", nil,
				Extern{Dst: "x", DstType: TyFloat, Name: "getarg", Args: []Atom{I(0)}, Body: Halt{Code: I(0)}})),
			"yields int",
		},
		{
			"speculate continuation missing c",
			NewProgram("main",
				Fn("main", nil, Speculate{Fn: FunLit{Name: "k"}, Args: nil}),
				Fn("k", nil, Halt{Code: I(0)})),
			"takes 0 arguments",
		},
		{
			"speculate c wrong type",
			NewProgram("main",
				Fn("main", nil, Speculate{Fn: FunLit{Name: "k"}, Args: nil}),
				Fn("k", Ps("c", TyFloat), Halt{Code: I(0)})),
			"implicit argument",
		},
		{
			"rollback c not int",
			NewProgram("main", Fn("main", nil, Rollback{Level: I(1), C: F(0)})),
			"rollback c",
		},
		{
			"migrate label negative",
			NewProgram("main",
				Fn("main", nil,
					Let{Dst: "p", DstType: TyPtr, Op: OpAlloc, Args: []Atom{I(4)},
						Body: Migrate{Label: -1, Target: V("p"), TargetOff: I(0), Fn: FunLit{Name: "k"}}}),
				Fn("k", nil, Halt{Code: I(0)})),
			"label",
		},
		{
			"store unit",
			NewProgram("main", Fn("main", nil,
				Let{Dst: "p", DstType: TyPtr, Op: OpAlloc, Args: []Atom{I(1)},
					Body: Let{Dst: "u", DstType: TyUnit, Op: OpStore, Args: []Atom{V("p"), I(0), UnitLit{}},
						Body: Halt{Code: I(0)}}})),
			"not a storable value",
		},
		{
			"nil body",
			NewProgram("main", Fn("main", nil, nil)),
			"nil expression",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Check(tc.prog, testExterns)
			if err == nil {
				t.Fatalf("Check accepted bad program")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCheckSpeculationPrimitives(t *testing.T) {
	// speculate k(c; x) where k(c: int, x: ptr); commit [l] f(); rollback.
	b := NewBuilder()
	b.Let("p", TyPtr, OpAlloc, I(4))
	main := Fn("main", nil, b.Speculate("body", V("p")))

	bb := NewBuilder()
	bb.Let("rolled", TyInt, OpNe, V("c"), I(0))
	body := Fn("body", Ps("c", TyInt, "p", TyPtr),
		bb.If(V("rolled"),
			Halt{Code: I(1)},
			NewBuilder().Commit(I(1), "done")))
	done := Fn("done", nil, Halt{Code: I(0)})
	p := NewProgram("main", main, body, done)
	if err := Check(p, testExterns); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestTypeEqualAndString(t *testing.T) {
	if !TyFun(TyInt, TyPtr).Equal(TyFun(TyInt, TyPtr)) {
		t.Fatal("identical fun types not equal")
	}
	if TyFun(TyInt).Equal(TyFun(TyFloat)) {
		t.Fatal("different fun types equal")
	}
	if TyFun(TyInt).Equal(TyFun(TyInt, TyInt)) {
		t.Fatal("different arity fun types equal")
	}
	if TyInt.Equal(TyFloat) {
		t.Fatal("int equal to float")
	}
	if got := TyFun(TyInt, TyFun(TyPtr)).String(); got != "fun(int, fun(ptr))" {
		t.Fatalf("String = %q", got)
	}
}

func specProgram() *Program {
	b := NewBuilder()
	b.Let("p", TyPtr, OpAlloc, I(8))
	b.Let("u", TyUnit, OpStore, V("p"), I(0), F(3.14))
	main := Fn("main", nil, b.Speculate("k", V("p")))
	kb := NewBuilder()
	kb.Let("x", TyFloat, OpLoad, V("p"), I(0))
	kb.Extern("u", TyUnit, "print_int", V("c"))
	k := Fn("k", Ps("c", TyInt, "p", TyPtr),
		kb.If(V("c"),
			NewBuilder().Rollback(I(1), I(3)),
			NewBuilder().Commit(I(1), "end")))
	end := Fn("end", nil, NewBuilder().Migrate(7, V("tgt"), I(0), "fin"))
	_ = end
	endB := NewBuilder()
	endB.Let("tgt", TyPtr, OpAlloc, I(4))
	end2 := Fn("end", nil, endB.Migrate(7, V("tgt"), I(0), "fin"))
	fin := Fn("fin", nil, Halt{Code: I(0)})
	return NewProgram("main", main, k, end2, fin)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, p := range []*Program{loopProgram(), specProgram()} {
		data := EncodeProgram(p)
		q, err := DecodeProgram(data)
		if err != nil {
			t.Fatalf("DecodeProgram: %v", err)
		}
		if Format(p) != Format(q) {
			t.Fatalf("round trip changed program:\n-- original --\n%s\n-- decoded --\n%s", Format(p), Format(q))
		}
		// Decoded program must still type-check identically.
		if err := Check(q, testExterns); err != nil {
			t.Fatalf("decoded program fails Check: %v", err)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data := EncodeProgram(loopProgram())
	for i := 0; i < len(data); i += 7 {
		bad := make([]byte, len(data))
		copy(bad, data)
		bad[i] ^= 0x55
		if _, err := DecodeProgram(bad); err == nil {
			// A flip may survive only if it produced an identical checksum,
			// which CRC-32 makes impossible for single-byte changes.
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
	if _, err := DecodeProgram(data[:4]); err == nil {
		t.Fatal("truncated program accepted")
	}
	if _, err := DecodeProgram(append(data, 0, 0, 0, 0)); err == nil {
		t.Fatal("extended program accepted")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	// Property: any program built from random atoms survives the round
	// trip with identical formatting.
	f := func(name string, ints []int64, fs []float64) bool {
		if name == "" {
			name = "x"
		}
		name = sanitize(name)
		b := NewBuilder()
		prev := Atom(I(1))
		for i, v := range ints {
			dst := b.Fresh("i")
			b.Let(dst, TyInt, OpAdd, prev, I(v))
			prev = V(dst)
			if i > 8 {
				break
			}
		}
		fprev := Atom(F(1))
		for i, v := range fs {
			if math.IsNaN(v) {
				v = 0
			}
			dst := b.Fresh("f")
			b.Let(dst, TyFloat, OpFAdd, fprev, F(v))
			fprev = V(dst)
			if i > 8 {
				break
			}
		}
		p := NewProgram("main", Fn("main", nil, b.Halt(I(0))), Fn(name+"_aux", nil, Halt{Code: I(1)}))
		q, err := DecodeProgram(EncodeProgram(p))
		if err != nil {
			return false
		}
		return Format(p) == Format(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}

func TestMigrateLabels(t *testing.T) {
	p := specProgram()
	labels, err := MigrateLabels(p)
	if err != nil {
		t.Fatalf("MigrateLabels: %v", err)
	}
	if fn, ok := labels[7]; !ok || fn != "end" {
		t.Fatalf("labels = %v, want {7: end}", labels)
	}

	dup := NewProgram("main",
		Fn("main", nil,
			Let{Dst: "p", DstType: TyPtr, Op: OpAlloc, Args: []Atom{I(1)},
				Body: Migrate{Label: 3, Target: V("p"), TargetOff: I(0), Fn: FunLit{Name: "main"}}}),
		Fn("aux", nil,
			Let{Dst: "p", DstType: TyPtr, Op: OpAlloc, Args: []Atom{I(1)},
				Body: Migrate{Label: 3, Target: V("p"), TargetOff: I(0), Fn: FunLit{Name: "aux"}}}))
	if _, err := MigrateLabels(dup); err == nil {
		t.Fatal("duplicate migrate label accepted")
	}
}

func TestFormatStable(t *testing.T) {
	s := Format(loopProgram())
	for _, want := range []string{"program entry=main", "fun main()", "fun loop(i: int, acc: int)", "halt acc", "loop(i2, acc2)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Format output missing %q:\n%s", want, s)
		}
	}
}

func TestProgramLookup(t *testing.T) {
	p := loopProgram()
	f, idx := p.Lookup("loop")
	if f == nil || f.Name != "loop" {
		t.Fatalf("Lookup(loop) = %v", f)
	}
	if g, err := p.FuncByIndex(idx); err != nil || g != f {
		t.Fatalf("FuncByIndex(%d) = %v, %v", idx, g, err)
	}
	if f, idx := p.Lookup("ghost"); f != nil || idx != -1 {
		t.Fatal("Lookup(ghost) found something")
	}
	if _, err := p.FuncByIndex(99); err == nil {
		t.Fatal("FuncByIndex(99) accepted")
	}
}

func TestBuilderFresh(t *testing.T) {
	b := NewBuilder()
	a, c := b.Fresh("t"), b.Fresh("t")
	if a == c {
		t.Fatalf("Fresh returned duplicate %q", a)
	}
}
