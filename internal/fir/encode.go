package fir

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// The canonical binary encoding of FIR programs. Migration never ships
// machine code; it ships this encoding, which the target decodes,
// type-checks and recompiles (§4.2.2). The format is self-delimiting,
// byte-order independent (everything is explicit little-ended varints or
// big-endian fixed words) and integrity-checked with a trailing CRC-32.

const (
	firMagic   = "MCCFIR"
	firVersion = 1
)

// Expression tag bytes.
const (
	tagLet byte = iota + 1
	tagExtern
	tagIf
	tagCall
	tagHalt
	tagMigrate
	tagSpeculate
	tagCommit
	tagRollback
)

// Atom tag bytes.
const (
	atomVar byte = iota + 1
	atomInt
	atomFloat
	atomFun
	atomUnit
)

// EncodeProgram serializes a program to its canonical binary form.
func EncodeProgram(p *Program) []byte {
	e := &encoder{}
	e.buf.WriteString(firMagic)
	e.buf.WriteByte(firVersion)
	e.str(p.Entry)
	e.uvarint(uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		e.str(f.Name)
		e.uvarint(uint64(len(f.Params)))
		for _, prm := range f.Params {
			e.str(prm.Name)
			e.typ(prm.Type)
		}
		e.expr(f.Body)
	}
	sum := crc32.ChecksumIEEE(e.buf.Bytes())
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], sum)
	e.buf.Write(tail[:])
	return e.buf.Bytes()
}

// DecodeProgram parses the canonical binary form, verifying the checksum.
// It performs structural validation only; callers that received the bytes
// from an untrusted peer must still run Check before executing the result.
func DecodeProgram(data []byte) (*Program, error) {
	if len(data) < len(firMagic)+1+4 {
		return nil, fmt.Errorf("fir: encoded program too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, fmt.Errorf("fir: program checksum mismatch")
	}
	d := &decoder{data: body}
	if string(d.take(len(firMagic))) != firMagic {
		return nil, fmt.Errorf("fir: bad magic")
	}
	if v := d.byte(); v != firVersion {
		return nil, fmt.Errorf("fir: unsupported version %d", v)
	}
	entry := d.str()
	n := d.uvarint()
	if n > uint64(len(body)) {
		return nil, fmt.Errorf("fir: implausible function count %d", n)
	}
	p := &Program{Entry: entry}
	for i := uint64(0); i < n && d.err == nil; i++ {
		f := &Function{Name: d.str()}
		np := d.uvarint()
		if np > uint64(len(body)) {
			return nil, fmt.Errorf("fir: implausible parameter count %d", np)
		}
		for j := uint64(0); j < np && d.err == nil; j++ {
			name := d.str()
			t := d.typ()
			f.Params = append(f.Params, Param{Name: name, Type: t})
		}
		f.Body = d.expr(0)
		p.AddFunc(f)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("fir: %d trailing bytes after program", len(d.data)-d.pos)
	}
	p.reindex()
	return p, nil
}

type encoder struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *encoder) varint(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) f64(f float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	e.buf.Write(b[:])
}

func (e *encoder) typ(t Type) {
	e.buf.WriteByte(byte(t.Kind))
	if t.Kind == KindFun {
		e.uvarint(uint64(len(t.Params)))
		for _, p := range t.Params {
			e.typ(p)
		}
	}
}

func (e *encoder) atom(a Atom) {
	switch a := a.(type) {
	case Var:
		e.buf.WriteByte(atomVar)
		e.str(a.Name)
	case IntLit:
		e.buf.WriteByte(atomInt)
		e.varint(a.V)
	case FloatLit:
		e.buf.WriteByte(atomFloat)
		e.f64(a.V)
	case FunLit:
		e.buf.WriteByte(atomFun)
		e.str(a.Name)
	case UnitLit:
		e.buf.WriteByte(atomUnit)
	default:
		// Unknown atoms indicate a corrupted in-memory program; encode a
		// unit so decoding fails type-checking rather than panicking here.
		e.buf.WriteByte(atomUnit)
	}
}

func (e *encoder) atoms(as []Atom) {
	e.uvarint(uint64(len(as)))
	for _, a := range as {
		e.atom(a)
	}
}

func (e *encoder) expr(x Expr) {
	for {
		switch x2 := x.(type) {
		case Let:
			e.buf.WriteByte(tagLet)
			e.str(x2.Dst)
			e.typ(x2.DstType)
			e.buf.WriteByte(byte(x2.Op))
			e.atoms(x2.Args)
			x = x2.Body
		case Extern:
			e.buf.WriteByte(tagExtern)
			e.str(x2.Dst)
			e.typ(x2.DstType)
			e.str(x2.Name)
			e.atoms(x2.Args)
			x = x2.Body
		case If:
			e.buf.WriteByte(tagIf)
			e.atom(x2.Cond)
			e.expr(x2.Then)
			x = x2.Else
		case Call:
			e.buf.WriteByte(tagCall)
			e.atom(x2.Fn)
			e.atoms(x2.Args)
			return
		case Halt:
			e.buf.WriteByte(tagHalt)
			e.atom(x2.Code)
			return
		case Migrate:
			e.buf.WriteByte(tagMigrate)
			e.uvarint(uint64(x2.Label))
			e.atom(x2.Target)
			e.atom(x2.TargetOff)
			e.atom(x2.Fn)
			e.atoms(x2.Args)
			return
		case Speculate:
			e.buf.WriteByte(tagSpeculate)
			e.atom(x2.Fn)
			e.atoms(x2.Args)
			return
		case Commit:
			e.buf.WriteByte(tagCommit)
			e.atom(x2.Level)
			e.atom(x2.Fn)
			e.atoms(x2.Args)
			return
		case Rollback:
			e.buf.WriteByte(tagRollback)
			e.atom(x2.Level)
			e.atom(x2.C)
			return
		default:
			// A nil or unknown terminator; emit halt 255 so the decoded
			// program is structurally complete and fails loudly if run.
			e.buf.WriteByte(tagHalt)
			e.atom(IntLit{V: 255})
			return
		}
	}
}

type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("fir: decode at offset %d: %s", d.pos, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.data) {
		d.fail("truncated (need %d bytes)", n)
		return nil
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if n > uint64(len(d.data)) {
		d.fail("implausible string length %d", n)
		return ""
	}
	return string(d.take(int(n)))
}

func (d *decoder) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

const maxTypeDepth = 64

func (d *decoder) typDepth(depth int) Type {
	if depth > maxTypeDepth {
		d.fail("type nesting exceeds %d", maxTypeDepth)
		return Type{}
	}
	k := Kind(d.byte())
	switch k {
	case KindUnit, KindInt, KindFloat, KindPtr:
		return Type{Kind: k}
	case KindFun:
		n := d.uvarint()
		if n > uint64(len(d.data)) {
			d.fail("implausible param count %d", n)
			return Type{}
		}
		t := Type{Kind: KindFun, Params: make([]Type, 0, n)}
		for i := uint64(0); i < n && d.err == nil; i++ {
			t.Params = append(t.Params, d.typDepth(depth+1))
		}
		return t
	default:
		d.fail("unknown type kind %d", k)
		return Type{}
	}
}

func (d *decoder) typ() Type { return d.typDepth(0) }

func (d *decoder) atom() Atom {
	switch t := d.byte(); t {
	case atomVar:
		return Var{Name: d.str()}
	case atomInt:
		return IntLit{V: d.varint()}
	case atomFloat:
		return FloatLit{V: d.f64()}
	case atomFun:
		return FunLit{Name: d.str()}
	case atomUnit:
		return UnitLit{}
	default:
		d.fail("unknown atom tag %d", t)
		return UnitLit{}
	}
}

func (d *decoder) atoms() []Atom {
	n := d.uvarint()
	if n > uint64(len(d.data)) {
		d.fail("implausible atom count %d", n)
		return nil
	}
	as := make([]Atom, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		as = append(as, d.atom())
	}
	return as
}

const maxExprDepth = 100000

func (d *decoder) expr(depth int) Expr {
	if depth > maxExprDepth {
		d.fail("expression nesting exceeds %d", maxExprDepth)
		return Halt{Code: IntLit{V: 255}}
	}
	if d.err != nil {
		return Halt{Code: IntLit{V: 255}}
	}
	switch t := d.byte(); t {
	case tagLet:
		dst := d.str()
		dt := d.typ()
		op := Op(d.byte())
		args := d.atoms()
		return Let{Dst: dst, DstType: dt, Op: op, Args: args, Body: d.expr(depth + 1)}
	case tagExtern:
		dst := d.str()
		dt := d.typ()
		name := d.str()
		args := d.atoms()
		return Extern{Dst: dst, DstType: dt, Name: name, Args: args, Body: d.expr(depth + 1)}
	case tagIf:
		cond := d.atom()
		then := d.expr(depth + 1)
		els := d.expr(depth + 1)
		return If{Cond: cond, Then: then, Else: els}
	case tagCall:
		fn := d.atom()
		return Call{Fn: fn, Args: d.atoms()}
	case tagHalt:
		return Halt{Code: d.atom()}
	case tagMigrate:
		label := d.uvarint()
		if label > math.MaxInt32 {
			d.fail("implausible migrate label %d", label)
		}
		target := d.atom()
		off := d.atom()
		fn := d.atom()
		return Migrate{Label: int(label), Target: target, TargetOff: off, Fn: fn, Args: d.atoms()}
	case tagSpeculate:
		fn := d.atom()
		return Speculate{Fn: fn, Args: d.atoms()}
	case tagCommit:
		lvl := d.atom()
		fn := d.atom()
		return Commit{Level: lvl, Fn: fn, Args: d.atoms()}
	case tagRollback:
		lvl := d.atom()
		return Rollback{Level: lvl, C: d.atom()}
	default:
		d.fail("unknown expression tag %d", t)
		return Halt{Code: IntLit{V: 255}}
	}
}
