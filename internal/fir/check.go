package fir

import (
	"fmt"
	"maps"
	"sort"
)

// ExternSig declares the signature of an external (runtime-provided)
// function: argument types and a result type. Unlike FIR functions,
// externals return a value to their caller.
type ExternSig struct {
	Args   []Type
	Result Type
}

// CheckError is a type error located in a specific function.
type CheckError struct {
	Fn  string
	Msg string
}

func (e *CheckError) Error() string {
	if e.Fn == "" {
		return "fir: " + e.Msg
	}
	return fmt.Sprintf("fir: in %s: %s", e.Fn, e.Msg)
}

// Check type-checks a whole program against a registry of external
// signatures. It verifies that function names are unique, that the entry
// point exists and takes no parameters, and that every function body is
// well-typed: operators applied at their signatures, tail calls matching
// callee parameter lists, speculation continuations taking an int first
// parameter, and every control path ending in a transfer.
//
// This is the check a migration server runs on inbound FIR before
// recompiling and resuming a process (§4.2.2): a process is only accepted
// from an untrusted peer when Check passes.
func Check(p *Program, externs map[string]ExternSig) error {
	if p == nil {
		return &CheckError{Msg: "nil program"}
	}
	seen := make(map[string]bool, len(p.Funcs))
	for _, f := range p.Funcs {
		if f == nil {
			return &CheckError{Msg: "nil function"}
		}
		if f.Name == "" {
			return &CheckError{Msg: "function with empty name"}
		}
		if seen[f.Name] {
			return &CheckError{Fn: f.Name, Msg: "duplicate function name"}
		}
		seen[f.Name] = true
	}
	entry, _ := p.Lookup(p.Entry)
	if entry == nil {
		return &CheckError{Msg: fmt.Sprintf("entry function %q not found", p.Entry)}
	}
	if len(entry.Params) != 0 {
		return &CheckError{Fn: entry.Name, Msg: "entry function must take no parameters"}
	}
	for _, f := range p.Funcs {
		c := &checker{prog: p, externs: externs, fn: f.Name}
		env := make(map[string]Type, len(f.Params))
		names := make(map[string]bool, len(f.Params))
		for _, prm := range f.Params {
			if prm.Name == "" {
				return &CheckError{Fn: f.Name, Msg: "parameter with empty name"}
			}
			if names[prm.Name] {
				return &CheckError{Fn: f.Name, Msg: fmt.Sprintf("duplicate parameter %q", prm.Name)}
			}
			names[prm.Name] = true
			env[prm.Name] = prm.Type
		}
		if err := c.expr(f.Body, env); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog    *Program
	externs map[string]ExternSig
	fn      string
}

func (c *checker) errf(format string, args ...any) error {
	return &CheckError{Fn: c.fn, Msg: fmt.Sprintf(format, args...)}
}

// atom returns the type of an atom under env.
func (c *checker) atom(a Atom, env map[string]Type) (Type, error) {
	switch a := a.(type) {
	case Var:
		t, ok := env[a.Name]
		if !ok {
			return Type{}, c.errf("unbound variable %q", a.Name)
		}
		return t, nil
	case IntLit:
		return TyInt, nil
	case FloatLit:
		return TyFloat, nil
	case UnitLit:
		return TyUnit, nil
	case FunLit:
		f, _ := c.prog.Lookup(a.Name)
		if f == nil {
			return Type{}, c.errf("reference to undefined function %q", a.Name)
		}
		return f.Type(), nil
	case nil:
		return Type{}, c.errf("nil atom")
	default:
		return Type{}, c.errf("unknown atom %T", a)
	}
}

func (c *checker) want(a Atom, env map[string]Type, want Type, ctx string) error {
	t, err := c.atom(a, env)
	if err != nil {
		return err
	}
	if !t.Equal(want) {
		return c.errf("%s: have %s, want %s", ctx, t, want)
	}
	return nil
}

// callable checks that fn is a function atom whose parameters accept args
// (optionally with extra leading parameter types, used by speculate's c).
func (c *checker) callable(fn Atom, args []Atom, env map[string]Type, lead []Type, ctx string) error {
	ft, err := c.atom(fn, env)
	if err != nil {
		return err
	}
	if ft.Kind != KindFun {
		return c.errf("%s: callee has type %s, want a function", ctx, ft)
	}
	want := ft.Params
	if len(want) != len(lead)+len(args) {
		return c.errf("%s: callee takes %d arguments, given %d", ctx, len(want), len(lead)+len(args))
	}
	for i, lt := range lead {
		if !want[i].Equal(lt) {
			return c.errf("%s: implicit argument %d has type %s, callee wants %s", ctx, i, lt, want[i])
		}
	}
	for i, a := range args {
		at, err := c.atom(a, env)
		if err != nil {
			return err
		}
		if !want[len(lead)+i].Equal(at) {
			return c.errf("%s: argument %d has type %s, callee wants %s", ctx, i, at, want[len(lead)+i])
		}
	}
	return nil
}

func (c *checker) expr(e Expr, env map[string]Type) error {
	for {
		switch e2 := e.(type) {
		case Let:
			sig, ok := opSigs[e2.Op]
			if !ok {
				return c.errf("unknown operator %v", e2.Op)
			}
			if len(e2.Args) != len(sig.args) {
				return c.errf("%s takes %d operands, given %d", e2.Op, len(sig.args), len(e2.Args))
			}
			var moveType Type
			for i, wt := range sig.args {
				at, err := c.atom(e2.Args[i], env)
				if err != nil {
					return err
				}
				if wt == nil {
					// "any value" operand: store/move payloads. Unit is not
					// a storable value.
					if at.Kind == KindUnit {
						return c.errf("%s operand %d: unit is not a storable value", e2.Op, i)
					}
					moveType = at
					continue
				}
				if !at.Equal(*wt) {
					return c.errf("%s operand %d: have %s, want %s", e2.Op, i, at, *wt)
				}
			}
			var rt Type
			switch {
			case sig.result != nil:
				rt = *sig.result
			case e2.Op == OpMove:
				rt = moveType
			case e2.Op == OpLoad:
				// Result type is declared by the binding; the runtime
				// checks the loaded word's tag against it.
				rt = e2.DstType
				if rt.Kind == KindUnit {
					return c.errf("load destination cannot be unit")
				}
			default:
				return c.errf("operator %s has no result rule", e2.Op)
			}
			if e2.Dst == "" {
				return c.errf("let with empty destination")
			}
			if !rt.Equal(e2.DstType) {
				return c.errf("let %s: operator %s yields %s, binding declares %s", e2.Dst, e2.Op, rt, e2.DstType)
			}
			env = extend(env, e2.Dst, rt)
			e = e2.Body

		case Extern:
			if c.externs == nil {
				return c.errf("extern %q used but no extern registry supplied", e2.Name)
			}
			sig, ok := c.externs[e2.Name]
			if !ok {
				return c.errf("unknown extern %q (known: %s)", e2.Name, externNames(c.externs))
			}
			if len(e2.Args) != len(sig.Args) {
				return c.errf("extern %q takes %d arguments, given %d", e2.Name, len(sig.Args), len(e2.Args))
			}
			for i, wt := range sig.Args {
				if err := c.want(e2.Args[i], env, wt, fmt.Sprintf("extern %q argument %d", e2.Name, i)); err != nil {
					return err
				}
			}
			if e2.Dst == "" {
				return c.errf("extern with empty destination")
			}
			if !sig.Result.Equal(e2.DstType) {
				return c.errf("extern %q yields %s, binding declares %s", e2.Name, sig.Result, e2.DstType)
			}
			env = extend(env, e2.Dst, sig.Result)
			e = e2.Body

		case If:
			if err := c.want(e2.Cond, env, TyInt, "if condition"); err != nil {
				return err
			}
			// The then branch gets a clone so its bindings stay invisible
			// to the else branch; extend can then mutate in place.
			if err := c.expr(e2.Then, maps.Clone(env)); err != nil {
				return err
			}
			e = e2.Else

		case Call:
			return c.callable(e2.Fn, e2.Args, env, nil, "tail call")

		case Halt:
			return c.want(e2.Code, env, TyInt, "halt code")

		case Migrate:
			if e2.Label < 0 {
				return c.errf("migrate label %d must be non-negative", e2.Label)
			}
			if err := c.want(e2.Target, env, TyPtr, "migrate target"); err != nil {
				return err
			}
			if err := c.want(e2.TargetOff, env, TyInt, "migrate target offset"); err != nil {
				return err
			}
			return c.callable(e2.Fn, e2.Args, env, nil, "migrate continuation")

		case Speculate:
			// The continuation receives the speculation status c as an
			// implicit leading int argument (§4.3.1).
			return c.callable(e2.Fn, e2.Args, env, []Type{TyInt}, "speculate continuation")

		case Commit:
			if err := c.want(e2.Level, env, TyInt, "commit level"); err != nil {
				return err
			}
			return c.callable(e2.Fn, e2.Args, env, nil, "commit continuation")

		case Rollback:
			if err := c.want(e2.Level, env, TyInt, "rollback level"); err != nil {
				return err
			}
			return c.want(e2.C, env, TyInt, "rollback c")

		case nil:
			return c.errf("nil expression (missing control transfer)")

		default:
			return c.errf("unknown expression %T", e2)
		}
	}
}

func extend(env map[string]Type, name string, t Type) map[string]Type {
	// In-place extension: along a CPS chain there are no forks, so no copy
	// is needed — sibling If branches are kept independent by the clone at
	// the branch point. Copying here instead made checking O(bindings²).
	env[name] = t
	return env
}

func externNames(externs map[string]ExternSig) string {
	names := make([]string, 0, len(externs))
	for n := range externs {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	if s == "" {
		return "none"
	}
	return s
}

// MigrateLabels returns the migrate labels appearing in the program mapped
// to the name of the function containing them, and an error when a label is
// duplicated. The migration subsystem uses this to validate that a resume
// label in a packed image corresponds to a real migration point.
func MigrateLabels(p *Program) (map[int]string, error) {
	labels := make(map[int]string)
	var walk func(fn string, e Expr) error
	walk = func(fn string, e Expr) error {
		switch e2 := e.(type) {
		case Let:
			return walk(fn, e2.Body)
		case Extern:
			return walk(fn, e2.Body)
		case If:
			if err := walk(fn, e2.Then); err != nil {
				return err
			}
			return walk(fn, e2.Else)
		case Migrate:
			if prev, dup := labels[e2.Label]; dup {
				return fmt.Errorf("fir: migrate label %d duplicated (in %s and %s)", e2.Label, prev, fn)
			}
			labels[e2.Label] = fn
		}
		return nil
	}
	for _, f := range p.Funcs {
		if err := walk(f.Name, f.Body); err != nil {
			return nil, err
		}
	}
	return labels, nil
}
