package conformance

// Differential engine testing at the application level: the shared .mc
// corpus (conformance_test.go) exercises single processes; this file runs
// every registered workload — the paper's grid plus allreduce, taskfarm
// and pipeline — through the in-process cluster on each execution engine
// and requires the engines to agree on every observable: process output,
// per-node halt codes, and the exact per-node step counts. Step counts
// are comparable across engines because both execute exactly one
// instruction per FIR node (the RISC backend's literal operands live in
// its constant pool, not in load instructions), and they must also be
// identical run-to-run within an engine — the cluster's bit-exact replay
// after a failure depends on that determinism.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/rt"
	"repro/internal/workload"

	_ "repro/internal/workload/apps" // register grid, allreduce, taskfarm, pipeline
)

// appParams shrinks each app so the full matrix stays test-suite fast.
func appParams(name string) workload.Params {
	switch name {
	case "grid":
		return workload.Params{Nodes: 3, Size: 3, Aux: 6, Steps: 8, CheckpointInterval: 4}
	case "allreduce":
		return workload.Params{Nodes: 3, Size: 4, Steps: 6, CheckpointInterval: 2}
	case "taskfarm":
		return workload.Params{Nodes: 3, Size: 4, Steps: 4, CheckpointInterval: 2}
	case "pipeline":
		return workload.Params{Nodes: 4, Size: 3, Aux: 4, Steps: 6, CheckpointInterval: 2}
	}
	return workload.Params{}
}

type appRun struct {
	halts map[int64]int64
	steps map[int64]uint64
	out   string
}

// runApp executes one workload on one engine, verified against its
// sequential reference, and returns its observables. Output lines are
// sorted: nodes share the stdout and interleave nondeterministically,
// but the multiset of lines is engine-invariant.
func runApp(t *testing.T, w workload.Workload, eng string) appRun {
	t.Helper()
	p := appParams(w.Name())
	p.Engine = eng
	p.Workers = 2
	var out bytes.Buffer
	res, err := workload.RunVerified(w, p, workload.RunConfig{Timeout: time.Minute, Stdout: &out})
	if err != nil {
		t.Fatalf("%s on %s: %v", w.Name(), eng, err)
	}
	run := appRun{halts: make(map[int64]int64), steps: make(map[int64]uint64)}
	for n, st := range res.Nodes {
		if st.Status == rt.StatusHalted {
			run.halts[n] = st.Halt
		}
		run.steps[n] = st.Steps
	}
	lines := strings.Split(out.String(), "\n")
	sort.Strings(lines)
	run.out = strings.Join(lines, "\n")
	return run
}

func haltString(m map[int64]int64) string {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d:%d ", k, m[k])
	}
	return b.String()
}

// TestAppsEnginesAgree: for every registered workload, the interpreter
// and the RISC engine produce identical outputs and per-node halt codes,
// and each engine's per-node step counts are identical across repeated
// runs (the cluster's bit-exact replay after failure depends on that
// determinism).
func TestAppsEnginesAgree(t *testing.T) {
	engines := engine.Names()
	if len(engines) < 2 {
		t.Fatalf("engine registry has %v, want at least vm and risc", engines)
	}
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			runs := make(map[string]appRun, len(engines))
			for _, eng := range engines {
				first := runApp(t, w, eng)
				second := runApp(t, w, eng)
				for n, s := range first.steps {
					if second.steps[n] != s {
						t.Errorf("%s: node %d steps not deterministic: %d vs %d", eng, n, s, second.steps[n])
					}
				}
				runs[eng] = first
			}
			base := runs[engines[0]]
			for _, eng := range engines[1:] {
				got := runs[eng]
				if haltString(got.halts) != haltString(base.halts) {
					t.Errorf("halt codes diverged:\n%s: %s\n%s: %s", eng, haltString(got.halts), engines[0], haltString(base.halts))
				}
				if got.out != base.out {
					t.Errorf("output diverged:\n%s: %q\n%s: %q", eng, got.out, engines[0], base.out)
				}
				for n, s := range base.steps {
					if got.steps[n] != s {
						t.Errorf("node %d steps diverged: %s=%d %s=%d", n, eng, got.steps[n], engines[0], s)
					}
				}
			}
		})
	}
}

// TestAppsEnginesAgreeUnderFaults: both engines also agree on halt codes
// when the run is driven through a one-failure fault script — checkpoint
// recovery is engine-independent. (Step counts are not compared: kill
// timing is wall-clock dependent.)
func TestAppsEnginesAgreeUnderFaults(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			node := int64(1)
			if name == "pipeline" {
				node = 0
			}
			script := workload.OneFailure(node, 1, 10*time.Millisecond)
			for _, eng := range engine.Names() {
				p := appParams(name)
				p.Engine = eng
				res, err := workload.RunVerified(w, p, workload.RunConfig{Script: script, Timeout: 2 * time.Minute})
				if err != nil {
					t.Fatalf("%s on %s under faults: %v", name, eng, err)
				}
				if res.Resurrections != 1 {
					t.Fatalf("%s on %s: resurrections = %d, want 1", name, eng, res.Resurrections)
				}
			}
		})
	}
}
