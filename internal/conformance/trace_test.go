package conformance

// Tracing must be observationally free: attaching a tracer to a run may
// not change a single observable — output bytes, halt codes, or per-node
// step counts — on either execution engine. This is the conformance-level
// check behind the engine hot path's "tracing off is a nop, tracing on
// never touches program state" contract.

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/workload"
)

// runAppTraced mirrors runApp with a tracer attached.
func runAppTraced(t *testing.T, w workload.Workload, eng string) appRun {
	t.Helper()
	p := appParams(w.Name())
	p.Engine = eng
	p.Workers = 2
	var out bytes.Buffer
	tr := obs.NewTracer(0)
	res, err := workload.RunVerified(w, p, workload.RunConfig{Timeout: time.Minute, Stdout: &out, Trace: tr})
	if err != nil {
		t.Fatalf("%s on %s (traced): %v", w.Name(), eng, err)
	}
	if len(tr.Snapshot()) == 0 {
		t.Fatalf("%s on %s: tracer attached but recorded nothing", w.Name(), eng)
	}
	run := appRun{halts: make(map[int64]int64), steps: make(map[int64]uint64)}
	for n, st := range res.Nodes {
		if st.Status == rt.StatusHalted {
			run.halts[n] = st.Halt
		}
		run.steps[n] = st.Steps
	}
	lines := strings.Split(out.String(), "\n")
	sort.Strings(lines)
	run.out = strings.Join(lines, "\n")
	return run
}

// TestAppsBitExactWithTracing: every workload, on every engine, produces
// byte-identical observables with and without a tracer attached.
func TestAppsBitExactWithTracing(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range engine.Names() {
				plain := runApp(t, w, eng)
				traced := runAppTraced(t, w, eng)
				if haltString(traced.halts) != haltString(plain.halts) {
					t.Errorf("%s: tracing changed halt codes: %s vs %s",
						eng, haltString(traced.halts), haltString(plain.halts))
				}
				if traced.out != plain.out {
					t.Errorf("%s: tracing changed output:\ntraced: %q\nplain:  %q", eng, traced.out, plain.out)
				}
				for n, s := range plain.steps {
					if traced.steps[n] != s {
						t.Errorf("%s: tracing changed node %d steps: %d vs %d", eng, n, traced.steps[n], s)
					}
				}
			}
		})
	}
}
