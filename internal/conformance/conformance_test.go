// Package conformance is the differential backend test suite: every MojC
// program in testdata is compiled once and executed on every runtime
// backend — the FIR interpreter (internal/vm), the RISC simulator
// (internal/risc) and the threaded-code engine (internal/jit) — which
// must produce byte-identical output, the same exit status and the same
// halt code. The paper's migration story (§3,
// §4.2) depends on exactly this property: a process may hop between
// heterogeneous nodes mid-run, so the backends cannot be allowed to
// drift. Each program is additionally run through the FIR optimizer and
// re-checked, giving four executions per program that must all agree.
package conformance

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rt"
)

// run executes a compiled program on one backend and returns its
// observable behaviour.
func run(t *testing.T, prog *core.Program, backend core.Backend, label string) (rt.Status, int64, string) {
	t.Helper()
	var out bytes.Buffer
	p, err := core.NewProcess(prog, core.ProcessConfig{
		Backend: backend,
		Stdout:  &out,
		Fuel:    50_000_000,
		Args:    []int64{3, 4},
		Seed:    12345,
	})
	if err != nil {
		t.Fatalf("%s: NewProcess: %v", label, err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("%s: Start: %v", label, err)
	}
	st, err := p.Run()
	if st == rt.StatusFailed {
		t.Fatalf("%s: runtime failure: %v", label, err)
	}
	return st, p.HaltCode(), out.String()
}

func loadCorpus(t *testing.T) map[string]string {
	t.Helper()
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	corpus := make(map[string]string)
	for _, e := range ents {
		name, ok := strings.CutSuffix(e.Name(), ".mc")
		if !ok {
			continue
		}
		src, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		corpus[name] = string(src)
	}
	if len(corpus) == 0 {
		t.Fatal("no .mc programs in testdata")
	}
	return corpus
}

func TestBackendsAgree(t *testing.T) {
	for name, src := range loadCorpus(t) {
		t.Run(name, func(t *testing.T) {
			prog, err := core.Compile(src, nil)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			opt, err := core.Compile(src, nil)
			if err != nil {
				t.Fatal(err)
			}
			opt.Optimize()

			type variant struct {
				label   string
				prog    *core.Program
				backend core.Backend
			}
			variants := []variant{
				{"vm", prog, core.BackendVM},
				{"risc", prog, core.BackendRISC},
				{"jit", prog, core.BackendJIT},
				{"vm+opt", opt, core.BackendVM},
				{"risc+opt", opt, core.BackendRISC},
				{"jit+opt", opt, core.BackendJIT},
			}
			baseSt, baseHalt, baseOut := run(t, variants[0].prog, variants[0].backend, variants[0].label)
			if baseSt != rt.StatusHalted {
				t.Fatalf("vm: status = %s, want halted", baseSt)
			}
			for _, v := range variants[1:] {
				st, halt, out := run(t, v.prog, v.backend, v.label)
				if st != baseSt {
					t.Errorf("%s: status = %s, vm = %s", v.label, st, baseSt)
				}
				if halt != baseHalt {
					t.Errorf("%s: halt = %d, vm = %d", v.label, halt, baseHalt)
				}
				if out != baseOut {
					t.Errorf("%s: output diverged\n%s: %q\nvm:   %q", v.label, v.label, out, baseOut)
				}
			}
		})
	}
}

// TestBackendsDeterministic re-runs each program per backend and requires
// run-to-run identical behaviour (the cluster's bit-exact replay after a
// failure depends on it).
func TestBackendsDeterministic(t *testing.T) {
	for name, src := range loadCorpus(t) {
		t.Run(name, func(t *testing.T) {
			prog, err := core.Compile(src, nil)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, backend := range []core.Backend{core.BackendVM, core.BackendRISC, core.BackendJIT} {
				_, h1, o1 := run(t, prog, backend, fmt.Sprintf("%v/first", backend))
				_, h2, o2 := run(t, prog, backend, fmt.Sprintf("%v/second", backend))
				if h1 != h2 || o1 != o2 {
					t.Errorf("backend %v not deterministic: halt %d vs %d, out %q vs %q",
						backend, h1, h2, o1, o2)
				}
			}
		})
	}
}
