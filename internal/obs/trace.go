package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind classifies a trace event. The numeric values are stable wire
// constants (they appear in drained JSONL), so append only.
type Kind uint8

const (
	EvNone Kind = iota

	// Cluster engine lifecycle (ctl stream + node streams).
	EvQuiesce
	EvResume
	EvFail
	EvResurrect
	EvHandoff
	EvAdopt
	EvHalt

	// Speculation (node streams).
	EvSpecEnter
	EvSpecCommit
	EvSpecRollback

	// Checkpoint pipeline (node streams for capture, chain streams for
	// the async committer's put/publish).
	EvCkptCapture
	EvCkptPut
	EvCkptPublish

	// Messaging / transport.
	EvMsgRoll
	EvFrameSend
	EvFrameRecv
	EvFrameReplay

	// Serving daemon.
	EvServeAdmit
	EvServeReject
	EvServeStart
	EvServeVerify
	EvServeSweep

	// Checkpoint store tier (store stream): backend puts, replica
	// read-repair, retention GC sweeps, storm-gate admissions.
	EvStorePut
	EvStoreRepair
	EvStoreGC
	EvStoreGate
)

var kindNames = [...]string{
	EvNone:         "none",
	EvQuiesce:      "quiesce",
	EvResume:       "resume",
	EvFail:         "fail",
	EvResurrect:    "resurrect",
	EvHandoff:      "handoff",
	EvAdopt:        "adopt",
	EvHalt:         "halt",
	EvSpecEnter:    "spec.enter",
	EvSpecCommit:   "spec.commit",
	EvSpecRollback: "spec.rollback",
	EvCkptCapture:  "ckpt.capture",
	EvCkptPut:      "ckpt.put",
	EvCkptPublish:  "ckpt.publish",
	EvMsgRoll:      "msg.roll",
	EvFrameSend:    "frame.send",
	EvFrameRecv:    "frame.recv",
	EvFrameReplay:  "frame.replay",
	EvServeAdmit:   "serve.admit",
	EvServeReject:  "serve.reject",
	EvServeStart:   "serve.start",
	EvServeVerify:  "serve.verify",
	EvServeSweep:   "serve.sweep",
	EvStorePut:     "store.put",
	EvStoreRepair:  "store.repair",
	EvStoreGC:      "store.gc",
	EvStoreGate:    "store.gate",
}

// String returns the stable event-kind name used in JSONL.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString inverts String; returns EvNone for unknown names.
func KindFromString(s string) Kind {
	for i, n := range kindNames {
		if n == s {
			return Kind(i)
		}
	}
	return EvNone
}

// Event is one trace record. Logical time is (Node, Epoch, Step): the
// node id, the rollback epoch it was in, and its deterministic step
// count at the instant of the event. Wall is nanoseconds since the Unix
// epoch, recorded for human timelines but excluded from any determinism
// comparison — it is the only nondeterministic field on a failure-free
// run. A and B are event-specific operands (e.g. spec level ordinal and
// id, checkpoint seq and byte size, frame src and payload words); Name
// carries an identifier when one exists (chain member, tenant, app).
type Event struct {
	Stream string `json:"stream"`
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Node   int    `json:"node"`
	Epoch  uint64 `json:"epoch"`
	Step   uint64 `json:"step"`
	A      int64  `json:"a,omitempty"`
	B      int64  `json:"b,omitempty"`
	Name   string `json:"name,omitempty"`
	Wall   int64  `json:"wall"`
}

// rawEvent is the in-ring representation (Kind kept numeric, stream
// implied by the ring it sits in).
type rawEvent struct {
	seq   uint64
	kind  Kind
	node  int
	epoch uint64
	step  uint64
	a, b  int64
	name  string
	wall  int64
}

// Stream is one bounded event ring with a single logical producer (a
// node's driver goroutine, the engine's control path, an async
// checkpoint committer). The per-stream mutex is therefore uncontended
// in steady state — it exists so concurrent Snapshot/Drain calls (a
// metrics scrape racing the producer) are race-detector clean, while
// Emit stays O(1) with no allocation beyond the fixed ring.
type Stream struct {
	mu      sync.Mutex
	name    string
	ring    []rawEvent
	next    uint64 // seq of the next event to be written
	dropped uint64 // events overwritten before being drained
	base    uint64 // seq of the oldest event still in the ring
}

// Emit appends one event. Nil-safe: a nil stream is a single branch.
func (s *Stream) Emit(kind Kind, node int, epoch, step uint64, a, b int64, name string) {
	if s == nil {
		return
	}
	wall := time.Now().UnixNano()
	s.mu.Lock()
	i := s.next % uint64(len(s.ring))
	if s.next >= uint64(len(s.ring)) && s.next-s.base >= uint64(len(s.ring)) {
		s.dropped++
		s.base++
	}
	s.ring[i] = rawEvent{
		seq: s.next, kind: kind, node: node, epoch: epoch, step: step,
		a: a, b: b, name: name, wall: wall,
	}
	s.next++
	s.mu.Unlock()
}

// events copies the live window oldest-first, optionally consuming it.
func (s *Stream) events(drain bool) (out []Event, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next - s.base
	out = make([]Event, 0, n)
	for seq := s.base; seq < s.next; seq++ {
		e := s.ring[seq%uint64(len(s.ring))]
		out = append(out, Event{
			Stream: s.name, Seq: e.seq, Kind: e.kind.String(),
			Node: e.node, Epoch: e.epoch, Step: e.step,
			A: e.a, B: e.b, Name: e.name, Wall: e.wall,
		})
	}
	dropped = s.dropped
	if drain {
		s.base = s.next
		s.dropped = 0
	}
	return out, dropped
}

// DefaultStreamCap is the per-stream ring size when the caller does not
// choose one. At ~80 bytes per slot this is ~320 KiB per stream — deep
// enough to hold a full rollback cascade on every node of a large run.
const DefaultStreamCap = 4096

// Tracer owns a set of named streams. A nil *Tracer is the disabled
// tracer: Stream() returns nil, and every Emit on that nil stream is a
// predictable branch — subsystems hold the *Stream, not the *Tracer, so
// the disabled cost is paid once per event site, not per lookup.
type Tracer struct {
	mu      sync.Mutex
	perCap  int
	streams map[string]*Stream
	order   []string // creation order, for stable export
}

// NewTracer creates a tracer whose streams each hold perStreamCap
// events (DefaultStreamCap if <= 0).
func NewTracer(perStreamCap int) *Tracer {
	if perStreamCap <= 0 {
		perStreamCap = DefaultStreamCap
	}
	return &Tracer{perCap: perStreamCap, streams: make(map[string]*Stream)}
}

// Stream returns (creating on first use) the named stream. Nil-safe:
// a nil tracer yields a nil stream.
func (t *Tracer) Stream(name string) *Stream {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.streams[name]
	if s == nil {
		s = &Stream{name: name, ring: make([]rawEvent, t.perCap)}
		t.streams[name] = s
		t.order = append(t.order, name)
	}
	return s
}

// Dropped sums overwritten-before-drain counts across streams.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	streams := make([]*Stream, 0, len(t.streams))
	for _, s := range t.streams {
		streams = append(streams, s)
	}
	t.mu.Unlock()
	var total uint64
	for _, s := range streams {
		s.mu.Lock()
		total += s.dropped
		s.mu.Unlock()
	}
	return total
}

func (t *Tracer) collect(drain bool) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	names := append([]string(nil), t.order...)
	streams := make([]*Stream, len(names))
	for i, n := range names {
		streams[i] = t.streams[n]
	}
	t.mu.Unlock()
	sort.SliceStable(streams, func(i, j int) bool { return streams[i].name < streams[j].name })
	var out []Event
	for _, s := range streams {
		evs, _ := s.events(drain)
		out = append(out, evs...)
	}
	return out
}

// Snapshot returns all buffered events, sorted by (stream, seq),
// without consuming them.
func (t *Tracer) Snapshot() []Event { return t.collect(false) }

// Drain returns all buffered events, sorted by (stream, seq), and
// empties the rings (mojd's trace-drain RPC semantics: each event is
// delivered to at most one drainer).
func (t *Tracer) Drain() []Event { return t.collect(true) }

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses events written by WriteJSONL (blank lines skipped).
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var out []Event
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace jsonl line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
