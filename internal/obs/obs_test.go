package obs

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// The disabled path: nil registry, tracer, and instruments must all
	// be usable with zero effect — this is the contract every
	// instrumented call site relies on.
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h").Record(5)
	r.AddSource("s", func() map[string]uint64 { return nil })
	r.RemoveSource("s")
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot: %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "{}\n" {
		t.Fatalf("nil registry json: %q", buf.String())
	}

	var tr *Tracer
	s := tr.Stream("node/0")
	if s != nil {
		t.Fatal("nil tracer must yield nil stream")
	}
	s.Emit(EvFail, 0, 1, 2, 3, 4, "x")
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot: %v", got)
	}
	if tr.Dropped() != 0 {
		t.Fatal("nil tracer dropped")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("counter not interned")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	s := h.Summary()
	if s.Count != 100 || s.Sum != 5050 || s.Min != 1 || s.Max != 100 || s.Mean != 50 {
		t.Fatalf("summary = %+v", s)
	}
	// Power-of-two upper bounds: p50 of 1..100 lands in bucket (32,63],
	// p95 and p99 in (64,127] clamped to the observed max.
	if s.P50 != 63 {
		t.Fatalf("p50 = %d", s.P50)
	}
	if s.P95 != 100 || s.P99 != 100 {
		t.Fatalf("p95 = %d p99 = %d", s.P95, s.P99)
	}
	if (&Histogram{}).Summary() != (LatencySummary{}) {
		t.Fatal("empty histogram summary not zero")
	}

	var neg Histogram
	neg.Record(-5)
	if got := neg.Summary(); got.Min != 0 || got.Max != 0 || got.Count != 1 {
		t.Fatalf("negative clamp: %+v", got)
	}
}

func TestRegistrySnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Add(2)
	r.Gauge("active").Set(1)
	r.Histogram("wait_ns").Record(100)
	r.AddSource("msg", func() map[string]uint64 {
		return map[string]uint64{"sends": 9, "rolls": 1}
	})
	snap := r.Snapshot()
	if snap["runs"] != uint64(2) || snap["active"] != int64(1) {
		t.Fatalf("snapshot: %v", snap)
	}
	if snap["msg.sends"] != uint64(9) || snap["msg.rolls"] != uint64(1) {
		t.Fatalf("source keys: %v", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output not valid json: %v\n%s", err, buf.String())
	}
	// Deterministic ordering: keys sorted.
	out := buf.String()
	if !(strings.Index(out, `"active"`) < strings.Index(out, `"msg.rolls"`) &&
		strings.Index(out, `"msg.rolls"`) < strings.Index(out, `"runs"`)) {
		t.Fatalf("keys not sorted: %s", out)
	}
}

func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	n0 := tr.Stream("node/0")
	ctl := tr.Stream("ctl")
	n0.Emit(EvSpecEnter, 0, 0, 10, 1, 100, "")
	ctl.Emit(EvFail, 2, 0, 0, 0, 0, "")
	n0.Emit(EvSpecRollback, 0, 1, 12, 1, 0, "")
	if tr.Stream("node/0") != n0 {
		t.Fatal("stream not interned")
	}

	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	// Sorted by stream name, then seq.
	if snap[0].Stream != "ctl" || snap[1].Stream != "node/0" || snap[2].Stream != "node/0" {
		t.Fatalf("order: %+v", snap)
	}
	if snap[1].Seq != 0 || snap[2].Seq != 1 {
		t.Fatalf("seqs: %+v", snap)
	}
	if snap[1].Kind != "spec.enter" || snap[2].Kind != "spec.rollback" {
		t.Fatalf("kinds: %+v", snap)
	}
	if snap[2].Epoch != 1 || snap[2].Step != 12 {
		t.Fatalf("logical time: %+v", snap[2])
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(snap) {
		t.Fatalf("round trip len %d != %d", len(back), len(snap))
	}
	for i := range back {
		if back[i] != snap[i] {
			t.Fatalf("round trip [%d]: %+v != %+v", i, back[i], snap[i])
		}
	}

	// Snapshot does not consume; Drain does.
	if got := tr.Snapshot(); len(got) != 3 {
		t.Fatalf("second snapshot len = %d", len(got))
	}
	if got := tr.Drain(); len(got) != 3 {
		t.Fatalf("drain len = %d", len(got))
	}
	if got := tr.Drain(); len(got) != 0 {
		t.Fatalf("post-drain len = %d", len(got))
	}
}

func TestStreamOverwrite(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Stream("node/0")
	for i := 0; i < 10; i++ {
		s.Emit(EvSpecCommit, 0, 0, uint64(i), int64(i), 0, "")
	}
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events", len(evs))
	}
	// Oldest-first window over the last 4 emits.
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("ev[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	// Drain resets the dropped count with the window.
	tr.Drain()
	if tr.Dropped() != 0 {
		t.Fatalf("dropped after drain = %d", tr.Dropped())
	}
}

func TestKindNamesStable(t *testing.T) {
	for k := EvNone; k <= EvServeSweep; k++ {
		name := k.String()
		if strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if KindFromString(name) != k {
			t.Fatalf("KindFromString(%q) != %v", name, k)
		}
	}
	if KindFromString("bogus") != EvNone {
		t.Fatal("unknown name must map to EvNone")
	}
}

func TestConcurrentScrape(t *testing.T) {
	// Producers hammer instruments and streams while scrapers snapshot;
	// run under -race this is the registry/tracer thread-safety proof.
	r := NewRegistry()
	tr := NewTracer(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h")
			s := tr.Stream("node/" + string(rune('0'+p)))
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Record(int64(i))
				s.Emit(EvSpecCommit, p, 0, uint64(i), 0, 0, "")
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Snapshot()
			tr.Snapshot()
			tr.Dropped()
		}
	}()
	// Producers finish on their own; the scraper needs the stop signal
	// once the counter shows all work done.
	for r.Counter("c").Value() < 8000 {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d", got)
	}
}
