// Package obs is the unified observability layer: a metrics registry the
// per-package Stats surfaces register into, a structured event tracer
// recording lifecycle events in logical time, and the JSON/JSONL export
// both are drained through (mojrun -metrics/-trace, mojd's obs RPCs,
// cmd/mojtrace).
//
// The package is a leaf: it imports nothing from the rest of the system,
// so any subsystem (msg, ckpt, cluster, transport, serve) can depend on
// it without cycles. Every entry point is nil-receiver safe — an
// uninstrumented run passes nil and pays one predictable branch, no
// allocation and no atomic traffic, which is what keeps the engine hot
// path at its PR 5 numbers when observability is off (the CI
// trace-overhead gate enforces it).
package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named monotonic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe (zero).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a named instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta. Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value. Nil-safe (zero).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: one bucket per bit length of the
// recorded value (0..63), so the histogram covers the full uint64 range
// with power-of-two resolution and needs no configuration.
const histBuckets = 65

// Histogram accumulates a distribution of non-negative values (typically
// durations in nanoseconds) into power-of-two buckets, race-free: Record
// touches only atomics, so scrapes under load never block recorders.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // offset by +1 so zero means "unset"
	max     atomic.Uint64
}

// Record adds one observation. Negative values clamp to zero. Nil-safe.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	h.buckets[bits.Len64(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= u+1 {
			break
		}
		if h.min.CompareAndSwap(cur, u+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= u {
			break
		}
		if h.max.CompareAndSwap(cur, u) {
			break
		}
	}
}

// LatencySummary is a histogram's JSON-ready digest. Quantiles are upper
// bounds of the power-of-two bucket the quantile falls in — within 2× of
// the true value, which is the right resolution for spotting a latency
// regression without per-sample storage.
type LatencySummary struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
	Mean  uint64 `json:"mean"`
	P50   uint64 `json:"p50"`
	P95   uint64 `json:"p95"`
	P99   uint64 `json:"p99"`
}

// Summary digests the histogram. Nil-safe (zero summary).
func (h *Histogram) Summary() LatencySummary {
	if h == nil {
		return LatencySummary{}
	}
	var s LatencySummary
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / s.Count
	if m := h.min.Load(); m > 0 {
		s.Min = m - 1
	}
	s.Max = h.max.Load()
	s.P50 = h.quantile(0.50, s.Count)
	s.P95 = h.quantile(0.95, s.Count)
	s.P99 = h.quantile(0.99, s.Count)
	// The top bucket's upper bound overshoots the largest recorded value;
	// clamp every quantile to the observed max.
	for _, q := range []*uint64{&s.P50, &s.P95, &s.P99} {
		if *q > s.Max {
			*q = s.Max
		}
	}
	return s
}

// quantile returns the upper bound of the bucket holding the q-quantile.
func (h *Histogram) quantile(q float64, count uint64) uint64 {
	rank := uint64(math.Ceil(q * float64(count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			if i >= 64 {
				return math.MaxUint64
			}
			return 1<<uint(i) - 1
		}
	}
	return math.MaxUint64
}

// Registry is a named set of instruments plus snapshot sources — the
// adapters existing per-package Stats structs register through, so one
// Snapshot call yields a single coherent JSON document without rewriting
// any of those packages' counters.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sources  map[string]func() map[string]uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		sources:  make(map[string]func() map[string]uint64),
	}
}

// Counter returns (creating on first use) the named counter. Nil-safe:
// a nil registry returns a nil counter, whose methods are nops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AddSource registers a snapshot adapter: fn is called at every Snapshot
// and its keys appear as "<name>.<key>". The function must be safe to
// call concurrently with whatever mutates the underlying counters (the
// per-package Stats() copies built on atomics qualify). Registering a
// name again replaces the previous source. Nil-safe.
func (r *Registry) AddSource(name string, fn func() map[string]uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sources[name] = fn
	r.mu.Unlock()
}

// RemoveSource drops a snapshot adapter. Nil-safe.
func (r *Registry) RemoveSource(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.sources, name)
	r.mu.Unlock()
}

// Snapshot captures every instrument and source into one flat, JSON-ready
// document: counters and sources as numbers, gauges as numbers,
// histograms as LatencySummary objects. The map is a fresh copy — safe to
// marshal while recording continues.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	sources := make(map[string]func() map[string]uint64, len(r.sources))
	for k, v := range r.sources {
		sources[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		out[k] = c.Value()
	}
	for k, g := range gauges {
		out[k] = g.Value()
	}
	for k, h := range hists {
		out[k] = h.Summary()
	}
	for name, fn := range sources {
		for k, v := range fn() {
			out[name+"."+k] = v
		}
	}
	return out
}

// WriteJSON marshals a Snapshot with deterministic key order (sorted),
// one document, trailing newline.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]byte, 0, 64*len(keys))
	ordered = append(ordered, '{')
	for i, k := range keys {
		if i > 0 {
			ordered = append(ordered, ',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return err
		}
		vb, err := json.Marshal(snap[k])
		if err != nil {
			return err
		}
		ordered = append(ordered, kb...)
		ordered = append(ordered, ':')
		ordered = append(ordered, vb...)
	}
	ordered = append(ordered, '}', '\n')
	_, err := w.Write(ordered)
	return err
}
