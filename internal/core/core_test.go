package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/rt"
)

func TestCompileAndRunBothBackends(t *testing.T) {
	prog, err := Compile(`
int square(int x) { return x * x; }
int main() { return square(9); }`, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, backend := range []Backend{BackendVM, BackendRISC} {
		p, err := NewProcess(prog, ProcessConfig{Backend: backend, Fuel: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
		st, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st != rt.StatusHalted || p.HaltCode() != 81 {
			t.Fatalf("backend %d: status=%s code=%d", backend, st, p.HaltCode())
		}
	}
}

func TestProgramEncodeDecode(t *testing.T) {
	prog, err := Compile(`int main() { return 3; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(prog.Encode())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(q, ProcessConfig{Fuel: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if p.HaltCode() != 3 {
		t.Fatalf("code = %d", p.HaltCode())
	}
}

func TestProcessStdout(t *testing.T) {
	prog, err := Compile(`int main() { print_str("via core"); return 0; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	p, err := NewProcess(prog, ProcessConfig{Stdout: &out, Fuel: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "via core\n" {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRegionBasics(t *testing.T) {
	r := NewRegion(heap.Config{})
	ref, err := r.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetInt(ref, 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := r.SetFloat(ref, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if v, err := r.GetInt(ref, 0); err != nil || v != 7 {
		t.Fatalf("GetInt = %d, %v", v, err)
	}
	if v, err := r.GetFloat(ref, 1); err != nil || v != 2.5 {
		t.Fatalf("GetFloat = %v, %v", v, err)
	}
	if _, err := r.GetFloat(ref, 0); err == nil {
		t.Fatal("type confusion accepted")
	}
	if _, err := r.GetInt(ref, 99); err == nil {
		t.Fatal("out of bounds accepted")
	}
}

func TestRegionSpeculationAbort(t *testing.T) {
	r := NewRegion(heap.Config{})
	ref, _ := r.Alloc(2)
	_ = r.SetInt(ref, 0, 100)

	id := r.Speculate()
	if id <= 0 {
		t.Fatalf("Speculate = %d, want positive", id)
	}
	_ = r.SetInt(ref, 0, 999)
	other, _ := r.Alloc(8) // allocated inside the speculation
	_ = r.SetInt(other, 0, 1)

	if err := r.Abort(id); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if v, _ := r.GetInt(ref, 0); v != 100 {
		t.Fatalf("post-abort value = %d, want 100", v)
	}
	if _, err := r.GetInt(other, 0); !errors.Is(err, heap.ErrFreeEntry) {
		t.Fatalf("in-speculation allocation survived abort: %v", err)
	}
	if r.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", r.Depth())
	}
}

func TestRegionSpeculationCommit(t *testing.T) {
	r := NewRegion(heap.Config{})
	ref, _ := r.Alloc(1)
	_ = r.SetInt(ref, 0, 1)
	id := r.Speculate()
	_ = r.SetInt(ref, 0, 2)
	if err := r.Commit(id); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.GetInt(ref, 0); v != 2 {
		t.Fatalf("post-commit value = %d, want 2", v)
	}
}

func TestRegionNestedOutOfOrderCommit(t *testing.T) {
	r := NewRegion(heap.Config{})
	ref, _ := r.Alloc(1)
	_ = r.SetInt(ref, 0, 1)
	outer := r.Speculate()
	_ = r.SetInt(ref, 0, 2)
	inner := r.Speculate()
	_ = r.SetInt(ref, 0, 3)
	// Commit the outer level first (out of order), then abort the inner:
	// the heap must return to the state at the inner speculation's entry.
	if err := r.Commit(outer); err != nil {
		t.Fatal(err)
	}
	if err := r.Abort(inner); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.GetInt(ref, 0); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestRegionLinkedStructureRollback(t *testing.T) {
	r := NewRegion(heap.Config{})
	head, _ := r.Alloc(2)
	r.Pin(head)
	_ = r.SetInt(head, 0, 1)

	id := r.Speculate()
	n2, _ := r.Alloc(2)
	_ = r.SetInt(n2, 0, 2)
	_ = r.SetRef(head, 1, n2)
	if err := r.Abort(id); err != nil {
		t.Fatal(err)
	}
	// head's link word must be back to its original (integer 0) value.
	if _, err := r.GetRef(head, 1); err == nil {
		t.Fatal("rolled-back link still present")
	}
	if v, _ := r.GetInt(head, 1); v != 0 {
		t.Fatalf("link word = %d, want 0", v)
	}
}

func TestRegionSurvivesCollection(t *testing.T) {
	r := NewRegion(heap.Config{InitialWords: 512, MaxWords: 1 << 16})
	keep, _ := r.Alloc(4)
	r.Pin(keep)
	_ = r.SetInt(keep, 0, 41)
	id := r.Speculate()
	_ = r.SetInt(keep, 0, 42)
	for i := 0; i < 500; i++ {
		if _, err := r.Alloc(16); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	r.Collect()
	if v, _ := r.GetInt(keep, 0); v != 42 {
		t.Fatalf("value after GC = %d, want 42", v)
	}
	if err := r.Abort(id); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.GetInt(keep, 0); v != 41 {
		t.Fatalf("value after GC+abort = %d, want 41 (shadow lost)", v)
	}
	if err := r.Heap().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any interleaving of writes inside a speculation, abort
// restores exactly the pre-speculation contents.
func TestRegionAbortIsExactQuick(t *testing.T) {
	f := func(initial []int64, writes []uint16) bool {
		if len(initial) == 0 {
			initial = []int64{0}
		}
		if len(initial) > 64 {
			initial = initial[:64]
		}
		r := NewRegion(heap.Config{})
		ref, err := r.Alloc(int64(len(initial)))
		if err != nil {
			return false
		}
		r.Pin(ref)
		for i, v := range initial {
			if r.SetInt(ref, int64(i), v) != nil {
				return false
			}
		}
		id := r.Speculate()
		for _, w := range writes {
			off := int64(w) % int64(len(initial))
			if r.SetInt(ref, off, int64(w)*7) != nil {
				return false
			}
		}
		if r.Abort(id) != nil {
			return false
		}
		for i, v := range initial {
			got, err := r.GetInt(ref, int64(i))
			if err != nil || got != v {
				return false
			}
		}
		return r.Heap().CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
