// Package core is the public API of the Mojave reproduction: the paper's
// language primitives — whole-process migration and speculative execution
// — packaged for three kinds of users.
//
//  1. Language users write MojC (a C dialect with speculate/commit/abort/
//     retry/migrate builtins), compile it with Compile, and run it with
//     Process on either runtime backend. This is the paper's headline
//     interface (§2): checkpointing a long-running application is a
//     handful of annotations.
//
//  2. Systems embedders use Region, a Go-level speculative memory: a heap
//     with copy-on-write speculation levels, stable speculation IDs, and
//     the paper's commit/rollback semantics, usable directly from Go code
//     without going through the compiler.
//
//  3. Distributed-systems users combine Process with a Migrator
//     (checkpoint stores, migration servers) and the cluster/grid layers
//     to build fault-tolerant distributed applications; see
//     examples/grid.
package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/fir"
	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/jit"
	"repro/internal/lang"
	"repro/internal/migrate"
	"repro/internal/risc"
	"repro/internal/rt"
	"repro/internal/spec"
	"repro/internal/vm"
)

// Backend selects a runtime environment.
type Backend int

const (
	// BackendVM is the FIR interpreter (the paper's interpreted runtime).
	BackendVM Backend = iota
	// BackendRISC compiles to the RISC target and simulates it (the
	// paper's machine-code runtime).
	BackendRISC
	// BackendJIT compiles to threaded code with fused superinstructions
	// (the fastest backend; bit-exact with the other two).
	BackendJIT
)

// Program is a compiled MCC program.
type Program struct {
	FIR *fir.Program
}

// Compile compiles MojC source against the standard externals plus any
// extra signatures.
func Compile(src string, extra map[string]fir.ExternSig) (*Program, error) {
	sigs := rt.StdExterns().Sigs()
	for n, s := range extra {
		sigs[n] = s
	}
	p, err := lang.Compile(src, sigs)
	if err != nil {
		return nil, err
	}
	return &Program{FIR: p}, nil
}

// CompilePascal compiles MojPascal source (the second MCC frontend; the
// paper's compiler collection accepts C, Pascal, ML and Java).
func CompilePascal(src string, extra map[string]fir.ExternSig) (*Program, error) {
	sigs := rt.StdExterns().Sigs()
	for n, s := range extra {
		sigs[n] = s
	}
	p, err := lang.CompilePascal(src, sigs)
	if err != nil {
		return nil, err
	}
	return &Program{FIR: p}, nil
}

// Optimize runs the FIR optimization pass (constant folding, copy
// propagation, branch folding, dead-binding elimination) in place.
func (p *Program) Optimize() fir.OptStats { return fir.Optimize(p.FIR) }

// Encode serializes the program in the canonical migration format.
func (p *Program) Encode() []byte { return fir.EncodeProgram(p.FIR) }

// DecodeProgram parses a canonically-encoded program.
func DecodeProgram(data []byte) (*Program, error) {
	fp, err := fir.DecodeProgram(data)
	if err != nil {
		return nil, err
	}
	return &Program{FIR: fp}, nil
}

// ProcessConfig configures a process.
type ProcessConfig struct {
	// Backend selects the runtime (default interpreter).
	Backend Backend
	// Stdout receives print output (default discard).
	Stdout io.Writer
	// Fuel bounds execution steps (0 = unlimited).
	Fuel uint64
	// Args are process arguments (getarg).
	Args []int64
	// TrapSpeculation turns runtime errors inside speculations into
	// automatic rollbacks (§2's exception-style speculation).
	TrapSpeculation bool
	// Heap configures the process heap.
	Heap heap.Config
	// Name labels the process in diagnostics.
	Name string
	// Seed seeds the deterministic rand_int extern.
	Seed int64
}

// Process is a running MCC program on either backend.
type Process struct {
	proc rt.Proc
}

// NewProcess creates a process; register externs and a migrator before
// Start.
func NewProcess(p *Program, cfg ProcessConfig) (*Process, error) {
	switch cfg.Backend {
	case BackendJIT:
		return &Process{proc: jit.NewMachine(p.FIR, jit.Config{
			Heap: cfg.Heap, Stdout: cfg.Stdout, Fuel: cfg.Fuel,
			TrapSpeculation: cfg.TrapSpeculation, Name: cfg.Name,
			Args: cfg.Args, Seed: cfg.Seed,
		})}, nil
	case BackendRISC:
		m, err := risc.NewMachine(p.FIR, nil, risc.Config{
			Heap: cfg.Heap, Stdout: cfg.Stdout, Fuel: cfg.Fuel,
			TrapSpeculation: cfg.TrapSpeculation, Name: cfg.Name,
			Args: cfg.Args, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return &Process{proc: m}, nil
	default:
		return &Process{proc: vm.NewProcess(p.FIR, vm.Config{
			Heap: cfg.Heap, Stdout: cfg.Stdout, Fuel: cfg.Fuel,
			TrapSpeculation: cfg.TrapSpeculation, Name: cfg.Name,
			Args: cfg.Args, Seed: cfg.Seed,
		})}, nil
	}
}

// RegisterExtern installs an external function before Start.
func (p *Process) RegisterExtern(name string, sig fir.ExternSig, fn rt.ExternFn) {
	p.proc.RegisterExtern(name, sig, fn)
}

// UseMigrator wires the process to a migration client so migrate()
// statements work. Store receives checkpoint/suspend images; dial may be
// nil for plain TCP.
func (p *Process) UseMigrator(store migrate.Store, dial migrate.Dialer) {
	m := &migrate.Migrator{Store: store, Dial: dial}
	p.proc.SetMigrateHandler(m.Handle)
}

// Start type-checks and positions the process at its entry point.
func (p *Process) Start() error {
	switch q := p.proc.(type) {
	case *vm.Process:
		return q.Start()
	case *risc.Machine:
		return q.Start()
	case *jit.Machine:
		return q.Start()
	default:
		return errors.New("core: unknown backend process type")
	}
}

// Run executes to a terminal state.
func (p *Process) Run() (rt.Status, error) { return p.proc.Run() }

// RunSteps executes at most n steps.
func (p *Process) RunSteps(n uint64) (rt.Status, error) { return p.proc.RunSteps(n) }

// Status returns the lifecycle state.
func (p *Process) Status() rt.Status { return p.proc.Status() }

// HaltCode returns the exit code after a halt.
func (p *Process) HaltCode() int64 { return p.proc.HaltCode() }

// Err returns the terminal error after a failure.
func (p *Process) Err() error { return p.proc.Err() }

// Steps returns the number of executed steps.
func (p *Process) Steps() uint64 { return p.proc.Steps() }

// Proc exposes the backend-independent handle for advanced integration
// (cluster placement, custom migration handlers).
func (p *Process) Proc() rt.Proc { return p.proc }

// Region is the Go-level speculative memory: the paper's speculation
// primitives applied directly to a managed heap, without the compiler.
// All mutable state lives in heap blocks addressed by Ref; Go code keeping
// its data in a Region gets the same rollback guarantees MojC code does.
type Region struct {
	h   *heap.Heap
	mgr *spec.Manager
}

// Ref is a handle to a block in a Region (a pointer-table index — the
// paper's base pointer).
type Ref struct{ v heap.Value }

// NewRegion creates a speculative memory with the default collector.
func NewRegion(cfg heap.Config) *Region {
	h := heap.New(cfg)
	h.SetCollector(gc.New())
	return &Region{h: h, mgr: spec.New(h)}
}

// Alloc allocates a block of n words (zero-initialized integers).
func (r *Region) Alloc(n int64) (Ref, error) {
	v, err := r.h.Alloc(n)
	if err != nil {
		return Ref{}, err
	}
	return Ref{v: v}, nil
}

// Pin registers a Ref as a GC root for the life of the region; everything
// reachable from a pinned block survives collection.
func (r *Region) Pin(ref Ref) {
	v := ref.v
	r.h.AddRoots(func(yield func(heap.Value)) { yield(v) })
}

// SetInt stores an integer word (with the §4.1.1 safety checks).
func (r *Region) SetInt(ref Ref, off, val int64) error {
	return r.h.Store(ref.v, off, heap.IntVal(val))
}

// GetInt loads an integer word.
func (r *Region) GetInt(ref Ref, off int64) (int64, error) {
	v, err := r.h.Load(ref.v, off)
	if err != nil {
		return 0, err
	}
	if v.Kind != heap.KInt {
		return 0, fmt.Errorf("core: word %d holds %s, want int", off, v.Kind)
	}
	return v.I, nil
}

// SetFloat stores a float word.
func (r *Region) SetFloat(ref Ref, off int64, val float64) error {
	return r.h.Store(ref.v, off, heap.FloatVal(val))
}

// GetFloat loads a float word.
func (r *Region) GetFloat(ref Ref, off int64) (float64, error) {
	v, err := r.h.Load(ref.v, off)
	if err != nil {
		return 0, err
	}
	if v.Kind != heap.KFloat {
		return 0, fmt.Errorf("core: word %d holds %s, want float", off, v.Kind)
	}
	return v.F, nil
}

// SetRef stores a reference word (building linked structures).
func (r *Region) SetRef(ref Ref, off int64, val Ref) error {
	return r.h.Store(ref.v, off, val.v)
}

// GetRef loads a reference word.
func (r *Region) GetRef(ref Ref, off int64) (Ref, error) {
	v, err := r.h.Load(ref.v, off)
	if err != nil {
		return Ref{}, err
	}
	if v.Kind != heap.KPtr {
		return Ref{}, fmt.Errorf("core: word %d holds %s, want ptr", off, v.Kind)
	}
	return Ref{v: v}, nil
}

// Speculate enters a new speculation level and returns its stable ID
// (always positive). Region speculations have no saved continuation — Go
// code drives control flow — so Abort restores state and returns to the
// caller instead of re-entering.
func (r *Region) Speculate() int64 {
	_, id := r.mgr.Enter(spec.Continuation{FnIndex: -1})
	return id
}

// Commit folds the identified level into the one below it; commits may
// occur out of order (§4.3.1).
func (r *Region) Commit(id int64) error {
	ord, err := r.mgr.OrdinalOf(id)
	if err != nil {
		return err
	}
	return r.mgr.Commit(ord)
}

// Abort reverts every change made in the identified level and all later
// levels, then closes the level: the heap is restored to its state at the
// matching Speculate call.
func (r *Region) Abort(id int64) error {
	ord, err := r.mgr.OrdinalOf(id)
	if err != nil {
		return err
	}
	if _, err := r.mgr.Rollback(ord); err != nil {
		return err
	}
	// The manager re-entered the level (retry semantics, §4.3.1); Go
	// callers use explicit control flow, so close the re-entered level.
	return r.mgr.Commit(ord)
}

// Depth returns the number of open speculation levels.
func (r *Region) Depth() int { return r.mgr.Depth() }

// Collect forces a full compacting collection.
func (r *Region) Collect() { r.h.CollectMajor() }

// Heap exposes the underlying heap for statistics and snapshots.
func (r *Region) Heap() *heap.Heap { return r.h }

// MutateFraction reports the fraction of live blocks modified inside open
// speculations (§5's "mutation percentile").
func (r *Region) MutateFraction() float64 { return r.h.MutateFraction() }
