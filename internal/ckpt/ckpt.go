// Package ckpt is the checkpoint pipeline: the capture/commit engine the
// cluster runtime routes every checkpoint:// migrate through. It supports
// three modes.
//
//	full  — the classic path: synchronous full image per checkpoint
//	        (bit-identical to the pre-pipeline behaviour; the default).
//	delta — synchronous incremental checkpoints: a full image opens a
//	        chain, then each checkpoint writes only the heap blocks
//	        dirtied since the previous one; a full image is forced every
//	        K deltas to bound recovery chains.
//	async — delta capture plus write-behind commit: the node resumes
//	        execution the moment its state is captured, while a
//	        background committer encodes and writes, double-buffered (at
//	        most one commit in flight and one queued per node — a node
//	        that checkpoints faster than the store can absorb blocks).
//
// Durability watermark: chain members are written under immutable names
// ("<head>@<seq>"); the head name holds a tiny ref record pointing at the
// newest member and is published only after that member's payload is
// durable. Readers of the head (Fail/Resurrect, -resume, rollback
// recovery) therefore always observe the last durable checkpoint and
// never an in-flight one. A node killed mid-commit simply loses that
// commit: its chain's head still names the previous durable member.
package ckpt

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/wire"
)

// Mode selects the checkpoint pipeline behaviour.
type Mode int

const (
	// ModeFull is the synchronous full-image path (default).
	ModeFull Mode = iota
	// ModeDelta writes synchronous incremental checkpoints.
	ModeDelta
	// ModeAsync writes incremental checkpoints on a background committer.
	ModeAsync
)

func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeDelta:
		return "delta"
	case ModeAsync:
		return "async"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a -ckpt flag value. The empty string is ModeFull.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "full":
		return ModeFull, nil
	case "delta":
		return ModeDelta, nil
	case "async":
		return ModeAsync, nil
	default:
		return ModeFull, fmt.Errorf(`ckpt: unknown mode %q (want "full", "delta" or "async")`, s)
	}
}

// DefaultK is the delta-chain bound: a full image is forced every K
// deltas so recovery never replays an unbounded chain.
const DefaultK = 8

// imgBufPool recycles full-image encode buffers across checkpoint
// intervals (Checkpoint may run concurrently for different nodes, so
// the scratch cannot live on the Committer itself).
var imgBufPool = sync.Pool{New: func() any { return new([]byte) }}

// Options configures a Committer.
type Options struct {
	// Mode selects the pipeline behaviour (default ModeFull).
	Mode Mode
	// K bounds delta chains (default DefaultK). Ignored in ModeFull.
	K int
	// OnPruneError, when set, observes every failed best-effort delete of
	// a superseded chain member. Pruning stays best-effort — a failure
	// only leaves dead objects behind — but the failures are no longer
	// silent: they also count in Stats.PruneFailures.
	OnPruneError func(name string, err error)
	// NoInlinePrune disables the best-effort inline prune on published
	// full images. Deployments running the store tier's retention GC
	// (internal/store.RunGC) set it: the GC recomputes the live set from
	// durable state and sweeps authoritatively, so the inline path would
	// only duplicate deletes.
	NoInlinePrune bool
	// Trace, when set, records commit-side pipeline events (member put,
	// watermark publish) on the "ckpt/<head>" streams. Capture-side events
	// are the engine's: only it knows the node's logical time.
	Trace *obs.Tracer
}

// Stats counts pipeline activity. All times are cumulative nanoseconds.
type Stats struct {
	Checkpoints   uint64 // checkpoints captured
	Fulls         uint64 // full images among them
	Deltas        uint64 // delta images among them
	BytesWritten  uint64 // store bytes written (payloads + head refs)
	PauseNs       uint64 // time the node was quiesced in the checkpoint path
	CaptureNs     uint64 // GC + snapshot part of the pause
	CommitNs      uint64 // encode + store-write time (background in async)
	Aborted       uint64 // commits discarded because the owner failed first
	Recoveries    uint64 // checkpoint restores observed
	RecoveryNs    uint64 // chain fetch + unpack time
	Pruned        uint64 // superseded chain members deleted
	PruneFailures uint64 // best-effort deletes that failed (objects leaked)
}

// job is one captured checkpoint awaiting encode + write.
type job struct {
	head   string
	member string
	seq    int
	base   string
	full   bool
	owner  int64
	img    *wire.Image
	delta  *wire.DeltaImage
}

// memberRec tracks a chain member this committer wrote, for pruning.
type memberRec struct {
	name string
	seq  int
}

// deleter is the optional store extension pruning uses. Stores without
// it (e.g. the remote store) simply accumulate members.
type deleter interface {
	Delete(name string) error
}

// chain is the per-checkpoint-name pipeline state. One node owns a chain
// (checkpoint names are per-node); ownership can move on adoption.
type chain struct {
	owner   int64
	seq     int    // next member sequence number
	base    string // newest member name; "" forces a full image
	deltas  int    // deltas since the last full image
	err     error  // sticky commit/capture failure
	aborted bool   // owner failed; pending commits must not publish

	queue   []job
	running bool
	cond    *sync.Cond // on Committer.mu

	// members lists chain members this committer wrote and has not yet
	// pruned; publishing a full image makes everything older dead weight.
	members []memberRec

	// pending counts captured-but-not-yet-settled commits (queued or in
	// flight); afterDurable holds waits to release once it reaches zero
	// with nothing aborted or failed — the durability-watermark hook side
	// effects like message-buffer GC hang off.
	pending      int
	afterDurable []*durableWait
}

// durableWait is one AfterOwnerDurable callback, possibly attached to
// several chains of the same owner: it fires only when the last of them
// settles cleanly, and is dropped if any of them aborts or fails (its
// checkpoint never published, so its side effects must not happen).
type durableWait struct {
	remaining int
	dropped   bool
	fn        func()
}

// Committer drives checkpoint captures and commits against a store.
// A single Committer serves every node of an engine.
type Committer struct {
	store migrate.DeltaStore
	raw   migrate.Store // the undecorated store, probed for Delete
	opts  Options

	mu     sync.Mutex
	chains map[string]*chain
	stats  Stats
}

// New creates a committer over store. A plain 3-method store is upgraded
// with the generic delta adapter.
func New(store migrate.Store, opts Options) *Committer {
	if opts.K <= 0 {
		opts.K = DefaultK
	}
	return &Committer{
		store:  migrate.AsDeltaStore(store),
		raw:    store,
		opts:   opts,
		chains: make(map[string]*chain),
	}
}

// Mode returns the configured pipeline mode.
func (c *Committer) Mode() Mode { return c.opts.Mode }

// traceStream returns the commit-side trace stream for head, nil when
// tracing is off (one branch on the untraced path).
func (c *Committer) traceStream(head string) *obs.Stream {
	if c.opts.Trace == nil {
		return nil
	}
	return c.opts.Trace.Stream("ckpt/" + head)
}

// Stats returns a copy of the activity counters.
func (c *Committer) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RecordRecovery accounts one checkpoint restore (chain fetch + unpack).
func (c *Committer) RecordRecovery(d time.Duration) {
	c.mu.Lock()
	c.stats.Recoveries++
	c.stats.RecoveryNs += uint64(d.Nanoseconds())
	c.mu.Unlock()
}

// MemberName returns the immutable store name of chain member seq of
// head.
func MemberName(head string, seq int) string {
	return fmt.Sprintf("%s@%d", head, seq)
}

// probeSeq returns the next free member sequence number for head, so a
// new incarnation (a resurrected worker process with a fresh committer)
// never reuses a name an older incarnation may still be writing. A List
// failure is an error, not zero: starting over at @0 could overwrite a
// live chain's root while the durable head still resolves through it —
// silent state corruption on the next resurrect.
func probeSeq(store migrate.Store, head string) (int, error) {
	names, err := store.List()
	if err != nil {
		return 0, fmt.Errorf("ckpt: probing sequence for %q: %w", head, err)
	}
	next := 0
	for _, n := range names {
		rest, ok := strings.CutPrefix(n, head+"@")
		if !ok {
			continue
		}
		if seq, err := strconv.Atoi(rest); err == nil && seq+1 > next {
			next = seq + 1
		}
	}
	return next, nil
}

// chainFor returns (creating if needed) the chain for head, owned by
// owner. A failed sequence probe surfaces as an error and leaves no
// chain behind, so the next checkpoint re-probes instead of running
// with a possibly colliding sequence.
func (c *Committer) chainFor(head string, owner int64) (*chain, error) {
	c.mu.Lock()
	ch := c.chains[head]
	if ch == nil {
		ch = &chain{owner: owner, cond: sync.NewCond(&c.mu)}
		c.chains[head] = ch
		c.mu.Unlock()
		// Probe outside the lock: over a remote store this is an RPC.
		seq, err := probeSeq(c.store, head)
		c.mu.Lock()
		if err != nil {
			delete(c.chains, head)
			c.mu.Unlock()
			return nil, err
		}
		if seq > ch.seq {
			ch.seq = seq
		}
	}
	ch.owner = owner
	c.mu.Unlock()
	return ch, nil
}

// Checkpoint runs one checkpoint for the process behind req, writing
// under the head name. owner is the cluster node the process runs as
// (AbortOwner/ResumeOwner key on it). It is called on the node's own
// goroutine: the time spent here is exactly the checkpoint pause.
func (c *Committer) Checkpoint(req *rt.MigrationRequest, head string, owner int64) error {
	t0 := time.Now()

	if c.opts.Mode == ModeFull {
		img, err := migrate.Pack(req.Rt, req.Label, req.FnIndex, req.Args)
		if err != nil {
			return err
		}
		capture := time.Since(t0)
		// The encode buffer is recycled across intervals: migrate.Store
		// forbids Put from retaining data, and every interval writes an
		// image of roughly the same size under the same head name.
		bufp := imgBufPool.Get().(*[]byte)
		data := wire.AppendImage((*bufp)[:0], img)
		*bufp = data[:0]
		defer imgBufPool.Put(bufp)
		if err := c.store.Put(head, data); err != nil {
			return err
		}
		pause := time.Since(t0)
		if s := c.traceStream(head); s != nil {
			// In full mode the head write is both the member and the
			// watermark: one put that is immediately the published state.
			s.Emit(obs.EvCkptPut, int(owner), 0, 0, 0, int64(len(data)), head)
			s.Emit(obs.EvCkptPublish, int(owner), 0, 0, 0, 0, head)
		}
		c.mu.Lock()
		c.stats.Checkpoints++
		c.stats.Fulls++
		c.stats.BytesWritten += uint64(len(data))
		c.stats.CaptureNs += uint64(capture.Nanoseconds())
		c.stats.CommitNs += uint64((pause - capture).Nanoseconds())
		c.stats.PauseNs += uint64(pause.Nanoseconds())
		c.mu.Unlock()
		return nil
	}

	h := req.Rt.Heap()
	h.EnableDeltaTracking()
	ch, err := c.chainFor(head, owner)
	if err != nil {
		return err
	}

	c.mu.Lock()
	// Double-buffer backpressure: at most one queued job on top of the
	// one the worker is processing.
	for ch.err == nil && len(ch.queue) >= 1 {
		ch.cond.Wait()
	}
	// Re-checked after the wait: a commit may have failed while this
	// capture was blocked, and a poisoned chain must not grow.
	if ch.err != nil {
		err := ch.err
		c.mu.Unlock()
		return fmt.Errorf("ckpt: chain %q is poisoned by an earlier failure: %w", head, err)
	}
	full := ch.base == "" || ch.deltas >= c.opts.K || !h.DeltaReady()
	seq := ch.seq
	ch.seq++
	base := ch.base
	member := MemberName(head, seq)
	ch.base = member
	if full {
		ch.deltas = 0
	} else {
		ch.deltas++
	}
	c.mu.Unlock()

	j := job{head: head, member: member, seq: seq, base: base, full: full, owner: owner}
	if full {
		j.img, err = migrate.Pack(req.Rt, req.Label, req.FnIndex, req.Args)
		if err == nil {
			h.MarkSnapshotBase()
		}
	} else {
		j.delta, err = migrate.PackDelta(req.Rt, req.Label, req.FnIndex, req.Args, base, seq)
		if err == nil && j.delta == nil {
			// The baseline vanished between the decision and the capture
			// (cannot happen on a single goroutine, but stay defensive).
			j.full = true
			j.img, err = migrate.Pack(req.Rt, req.Label, req.FnIndex, req.Args)
			if err == nil {
				h.MarkSnapshotBase()
			}
		}
	}
	capture := time.Since(t0)
	if err != nil {
		c.mu.Lock()
		if ch.err == nil {
			ch.err = err
		}
		c.mu.Unlock()
		return err
	}

	c.mu.Lock()
	c.stats.Checkpoints++
	if j.full {
		c.stats.Fulls++
	} else {
		c.stats.Deltas++
	}
	c.stats.CaptureNs += uint64(capture.Nanoseconds())
	c.mu.Unlock()

	if c.opts.Mode == ModeDelta {
		err := c.commit(ch, j)
		pause := time.Since(t0)
		c.mu.Lock()
		c.stats.PauseNs += uint64(pause.Nanoseconds())
		c.mu.Unlock()
		return err
	}

	// Async: hand the captured state to the background committer and
	// resume the node immediately. The snapshot inside the job is a deep
	// copy — the heap may mutate freely while the commit is in flight.
	c.mu.Lock()
	ch.queue = append(ch.queue, j)
	ch.pending++
	if !ch.running {
		ch.running = true
		go c.worker(ch)
	}
	pause := time.Since(t0)
	c.stats.PauseNs += uint64(pause.Nanoseconds())
	c.mu.Unlock()
	return nil
}

// worker drains one chain's queue; it exits when the queue is empty and
// restarts on the next enqueue, so idle committers hold no goroutine.
func (c *Committer) worker(ch *chain) {
	for {
		c.mu.Lock()
		if len(ch.queue) == 0 {
			ch.running = false
			ch.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		j := ch.queue[0]
		ch.queue = ch.queue[1:]
		// A failed owner's commits are discarded; so are commits queued
		// behind a failed one — writing a delta whose base never landed
		// would point the durability watermark at a chain with a hole.
		skip := ch.aborted || ch.err != nil
		ch.cond.Broadcast() // free the backpressure slot
		c.mu.Unlock()
		if skip {
			c.mu.Lock()
			c.stats.Aborted++
			c.settleLocked(ch)
			c.mu.Unlock()
			continue
		}
		_ = c.commit(ch, j)
		c.mu.Lock()
		c.settleLocked(ch)
		c.mu.Unlock()
	}
}

// settleLocked retires one pending commit; when the chain fully settles,
// its durability waits release (and fire once their last chain has). A
// chain that aborted (owner failed) or failed (commit error — its head
// ref was never published either) drops its waits instead: those side
// effects belong to checkpoints that never became the watermark, and the
// resurrected incarnation will redo them.
func (c *Committer) settleLocked(ch *chain) {
	if ch.pending > 0 {
		ch.pending--
	}
	if ch.aborted || ch.err != nil {
		for _, w := range ch.afterDurable {
			w.dropped = true
		}
		ch.afterDurable = nil
		return
	}
	if ch.pending == 0 && len(ch.afterDurable) > 0 {
		waits := ch.afterDurable
		ch.afterDurable = nil
		var fns []func()
		for _, w := range waits {
			w.remaining--
			if w.remaining == 0 && !w.dropped {
				fns = append(fns, w.fn)
			}
		}
		if len(fns) > 0 {
			c.mu.Unlock()
			for _, fn := range fns {
				fn()
			}
			c.mu.Lock()
		}
	}
}

// AfterOwnerDurable runs fn once every checkpoint the owner has captured
// so far — across all of its chains — is durable and published;
// immediately when nothing is in flight (always the case in the
// synchronous modes). If any of the owner's chains has failed or its
// owner was declared failed, fn is dropped entirely: a zombie
// incarnation that outruns its kill by a quantum may still be
// checkpointing, but those checkpoints' head refs are withheld, so side
// effects keyed on them (message-buffer pruning) must die with the
// zombie — the resurrected incarnation redoes them against the last
// published checkpoint.
func (c *Committer) AfterOwnerDurable(owner int64, fn func()) {
	c.mu.Lock()
	w := &durableWait{fn: fn}
	for _, ch := range c.chains {
		if ch.owner != owner {
			continue
		}
		if ch.aborted || ch.err != nil {
			c.mu.Unlock()
			return
		}
		if ch.pending > 0 {
			ch.afterDurable = append(ch.afterDurable, w)
			w.remaining++
		}
	}
	attached := w.remaining // w is shared with settleLocked once attached
	c.mu.Unlock()
	if attached == 0 {
		fn()
	}
}

// commit encodes and writes one captured checkpoint: the immutable chain
// member first, then — only if the owner has not failed meanwhile — the
// head ref that makes it the durable watermark.
func (c *Committer) commit(ch *chain, j job) error {
	t0 := time.Now()
	var data []byte
	if j.full {
		data = wire.EncodeImage(j.img)
	} else {
		data = wire.EncodeDeltaImage(j.delta)
	}
	var err error
	if j.full {
		err = c.store.Put(j.member, data)
	} else {
		err = c.store.PutDelta(j.member, j.base, data)
	}
	written := 0
	published := false
	if err == nil {
		written += len(data)
		if s := c.traceStream(j.head); s != nil {
			full := int64(0)
			if j.full {
				full = 1
			}
			s.Emit(obs.EvCkptPut, int(j.owner), 0, uint64(j.seq), full, int64(len(data)), j.member)
		}
		c.mu.Lock()
		ch.members = append(ch.members, memberRec{name: j.member, seq: j.seq})
		aborted := ch.aborted
		c.mu.Unlock()
		if !aborted {
			ref := wire.EncodeRef(j.member)
			if err = c.store.Put(j.head, ref); err == nil {
				written += len(ref)
				published = true
				if s := c.traceStream(j.head); s != nil {
					s.Emit(obs.EvCkptPublish, int(j.owner), 0, uint64(j.seq),
						0, time.Since(t0).Nanoseconds(), j.member)
				}
			}
		}
	}
	c.mu.Lock()
	if err != nil && ch.err == nil {
		ch.err = err
	}
	c.stats.BytesWritten += uint64(written)
	c.stats.CommitNs += uint64(time.Since(t0).Nanoseconds())
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("ckpt: committing %q: %w", j.member, err)
	}
	if published && j.full && !c.opts.NoInlinePrune {
		c.prune(ch, j.seq)
	}
	return nil
}

// prune deletes chain members older than a just-published full image:
// the head now resolves without them. Best-effort and only on stores
// that support Delete — a failure (or an unsupporting store, like the
// remote one) merely leaves dead objects behind. Failures are counted
// (Stats.PruneFailures) and reported through Options.OnPruneError so a
// leaking store is visible instead of silently filling up.
func (c *Committer) prune(ch *chain, fullSeq int) {
	d, ok := c.raw.(deleter)
	if !ok {
		return
	}
	c.mu.Lock()
	var dead []string
	kept := ch.members[:0]
	for _, m := range ch.members {
		if m.seq < fullSeq {
			dead = append(dead, m.name)
		} else {
			kept = append(kept, m)
		}
	}
	ch.members = kept
	c.mu.Unlock()
	var pruned, failed uint64
	for _, name := range dead {
		if err := d.Delete(name); err != nil {
			failed++
			if c.opts.OnPruneError != nil {
				c.opts.OnPruneError(name, err)
			}
		} else {
			pruned++
		}
	}
	if pruned+failed > 0 {
		c.mu.Lock()
		c.stats.Pruned += pruned
		c.stats.PruneFailures += failed
		c.mu.Unlock()
	}
}

// AbortOwner marks every chain owned by node as failed: queued commits
// are discarded and an in-flight commit will not publish its head ref.
// The chain stays refusing work until ResumeOwner. Called by the engine
// when a node fails; never blocks.
func (c *Committer) AbortOwner(node int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.chains {
		if ch.owner == node {
			ch.aborted = true
		}
	}
}

// ResumeOwner re-opens the chains of a resurrected node: the abort and
// any sticky error are cleared and the next checkpoint is forced full
// (the restored heap has no delta baseline; the chain restarts from a
// fresh root, with sequence numbers that never collide with the dead
// incarnation's).
func (c *Committer) ResumeOwner(node int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.chains {
		if ch.owner == node {
			ch.aborted = false
			ch.err = nil
			ch.base = ""
			ch.deltas = 0
		}
	}
}

// Drain blocks until no commit for head is queued or in flight. Readers
// that must observe a stable head (Resurrect) call this first.
func (c *Committer) Drain(head string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := c.chains[head]
	if ch == nil {
		return
	}
	for ch.running || len(ch.queue) > 0 {
		ch.cond.Wait()
	}
}

// DrainOwner drains every chain owned by node.
func (c *Committer) DrainOwner(node int64) {
	c.mu.Lock()
	var heads []string
	for head, ch := range c.chains {
		if ch.owner == node {
			heads = append(heads, head)
		}
	}
	c.mu.Unlock()
	for _, head := range heads {
		c.Drain(head)
	}
}
