package ckpt

import (
	"io"
	"testing"
	"time"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
	"repro/internal/spec"
)

// ckptRuntime is a minimal rt.Runtime over a real heap — enough for
// migrate.Pack/PackDelta to capture genuine images in committer tests.
type ckptRuntime struct {
	h    *heap.Heap
	mgr  *spec.Manager
	prog *fir.Program
}

func newCkptRuntime() *ckptRuntime {
	h := heap.New(heap.Config{})
	return &ckptRuntime{h: h, mgr: spec.New(h), prog: &fir.Program{}}
}

func (r *ckptRuntime) Name() string          { return "ckpt-test" }
func (r *ckptRuntime) Program() *fir.Program { return r.prog }
func (r *ckptRuntime) Heap() *heap.Heap      { return r.h }
func (r *ckptRuntime) Spec() *spec.Manager   { return r.mgr }
func (r *ckptRuntime) Stdout() io.Writer     { return io.Discard }
func (r *ckptRuntime) Pin(heap.Value)        {}
func (r *ckptRuntime) Arg(int64) int64       { return 0 }
func (r *ckptRuntime) NArgs() int64          { return 0 }
func (r *ckptRuntime) Rand(n int64) int64    { return 0 }

// stallStore delays every Put until the test releases it: each arriving
// Put announces its name on arrived, then blocks until a receive from
// release (or until release is closed).
type stallStore struct {
	*fakeStore
	arrived chan string
	release chan struct{}
}

func newStallStore() *stallStore {
	return &stallStore{
		fakeStore: newFakeStore(),
		arrived:   make(chan string, 16),
		release:   make(chan struct{}),
	}
}

func (s *stallStore) Put(name string, data []byte) error {
	s.arrived <- name
	<-s.release
	return s.fakeStore.Put(name, data)
}

func (s *stallStore) has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[name]
	return ok
}

func waitArrival(t *testing.T, s *stallStore, want string) {
	t.Helper()
	select {
	case got := <-s.arrived:
		if got != want {
			t.Fatalf("store saw Put(%q), want %q", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for Put(%q)", want)
	}
}

// TestAsyncDoubleBufferBoundUnderSlowStore: with a store Put stalled
// indefinitely, the async pipeline admits exactly one more capture (the
// queue slot) and blocks the third — the double-buffer bound holds under
// backpressure instead of buffering unboundedly — then releases it as
// soon as the stalled commit drains.
func TestAsyncDoubleBufferBoundUnderSlowStore(t *testing.T) {
	st := newStallStore()
	c := New(st, Options{Mode: ModeAsync})
	req := &rt.MigrationRequest{Rt: newCkptRuntime()}

	// #1 returns immediately; its commit stalls inside the member Put.
	if err := c.Checkpoint(req, "ck", 1); err != nil {
		t.Fatal(err)
	}
	waitArrival(t, st, "ck@0") // the worker is now mid-put

	// #2 fills the single queue slot without blocking the node.
	done2 := make(chan error, 1)
	go func() { done2 <- c.Checkpoint(req, "ck", 1) }()
	select {
	case err := <-done2:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second checkpoint blocked: the queue slot was not available")
	}

	// #3 must block: one commit in flight + one queued is the bound.
	done3 := make(chan error, 1)
	go func() { done3 <- c.Checkpoint(req, "ck", 1) }()
	select {
	case <-done3:
		t.Fatal("third checkpoint was admitted while the pipeline was full: double-buffer bound broken")
	case <-time.After(100 * time.Millisecond):
	}

	// Draining the stalled commit (member put, then head-ref put) frees
	// the slot and unblocks the third capture.
	st.release <- struct{}{}
	waitArrival(t, st, "ck")
	st.release <- struct{}{}
	select {
	case err := <-done3:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("third checkpoint never unblocked after the stalled commit drained")
	}

	close(st.release) // let the remaining commits run at full speed
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Checkpoints != 3 || !st.has("ck@2") {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never drained: stats %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if !st.has("ck") {
		t.Fatal("head ref never published")
	}
}

// TestAbortDuringStalledPutWithholdsRef: a node failure while its
// commit is stalled inside the store write must withhold the head ref —
// the member write itself may land, but the durability watermark never
// moves to a checkpoint taken by a failed incarnation — and the commit
// queued behind it is discarded.
func TestAbortDuringStalledPutWithholdsRef(t *testing.T) {
	st := newStallStore()
	c := New(st, Options{Mode: ModeAsync})
	req := &rt.MigrationRequest{Rt: newCkptRuntime()}

	if err := c.Checkpoint(req, "ck", 1); err != nil {
		t.Fatal(err)
	}
	waitArrival(t, st, "ck@0") // commit 1 stalled mid-put
	if err := c.Checkpoint(req, "ck", 1); err != nil {
		t.Fatal(err) // commit 2 queued behind it
	}

	// A durability wait registered now must be dropped by the abort: its
	// checkpoint never publishes.
	ran := 0
	c.AfterOwnerDurable(1, func() { ran++ })

	c.AbortOwner(1)   // the node dies while the put is stalled
	close(st.release) // the in-flight write itself completes

	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Aborted != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queued commit was never discarded: stats %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if !st.has("ck@0") {
		t.Fatal("stalled member write should have completed")
	}
	if st.has("ck") {
		t.Fatal("head ref published for a failed owner: watermark moved past the failure")
	}
	if st.has("ck@1") {
		t.Fatal("commit queued behind the failure was written")
	}
	if ran != 0 {
		t.Fatal("durability callback fired although the owner failed mid-commit")
	}
}
