package ckpt

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/migrate"
)

type fakeStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newFakeStore() *fakeStore { return &fakeStore{m: make(map[string][]byte)} }

func (s *fakeStore) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
	return nil
}

func (s *fakeStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	if !ok {
		return nil, fmt.Errorf("ckpt_test: %q not found", name)
	}
	return d, nil
}

func (s *fakeStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

func TestParseMode(t *testing.T) {
	cases := map[string]Mode{"": ModeFull, "full": ModeFull, "delta": ModeDelta, "async": ModeAsync}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if ModeAsync.String() != "async" || ModeFull.String() != "full" {
		t.Fatal("mode String() mismatch")
	}
}

// TestProbeSeq: a fresh committer never reuses member names an earlier
// incarnation (possibly still mid-write) may own.
func TestProbeSeq(t *testing.T) {
	s := newFakeStore()
	if got, err := probeSeq(s, "ck"); err != nil || got != 0 {
		t.Fatalf("empty store: seq %d, %v, want 0", got, err)
	}
	_ = s.Put("ck@0", []byte("a"))
	_ = s.Put("ck@7", []byte("b"))
	_ = s.Put("ck", []byte("head"))
	_ = s.Put("other@99", []byte("c"))
	_ = s.Put("ck@junk", []byte("d"))
	if got, err := probeSeq(s, "ck"); err != nil || got != 8 {
		t.Fatalf("seq %d, %v, want 8 (max member + 1)", got, err)
	}
}

// TestAfterOwnerDurable pins the watermark hook semantics: inline when
// nothing is pending, queued behind pending commits, dropped entirely
// for a failed owner.
func TestAfterOwnerDurable(t *testing.T) {
	c := New(newFakeStore(), Options{Mode: ModeAsync})
	ran := 0

	// No chains yet: runs inline.
	c.AfterOwnerDurable(1, func() { ran++ })
	if ran != 1 {
		t.Fatalf("inline run: %d", ran)
	}

	ch, err := c.chainFor("ck-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	ch.pending = 1
	c.mu.Unlock()
	c.AfterOwnerDurable(1, func() { ran++ })
	if ran != 1 {
		t.Fatal("callback ran while a commit was pending")
	}
	// Settling the pending commit releases the callback.
	c.mu.Lock()
	c.settleLocked(ch)
	c.mu.Unlock()
	if ran != 2 {
		t.Fatalf("callback not released on settle: %d", ran)
	}

	// A failed owner's callbacks are dropped — pending or not.
	c.AbortOwner(1)
	c.AfterOwnerDurable(1, func() { ran++ })
	if ran != 2 {
		t.Fatal("callback ran for a failed owner")
	}
	c.mu.Lock()
	ch.pending = 1
	ch.afterDurable = append(ch.afterDurable, &durableWait{remaining: 1, fn: func() { ran++ }})
	c.settleLocked(ch)
	c.mu.Unlock()
	if ran != 2 {
		t.Fatal("queued callback survived the abort")
	}

	// Resurrection reopens the chain.
	c.ResumeOwner(1)
	c.AfterOwnerDurable(1, func() { ran++ })
	if ran != 3 {
		t.Fatal("callback blocked after ResumeOwner")
	}

	// A commit failure (sticky error, head ref never published) drops
	// callbacks exactly like an abort: the announced floor belongs to a
	// checkpoint that never became the watermark.
	c.mu.Lock()
	ch.pending = 1
	c.mu.Unlock()
	c.AfterOwnerDurable(1, func() { ran++ })
	c.mu.Lock()
	ch.err = fmt.Errorf("store went away")
	c.settleLocked(ch)
	c.mu.Unlock()
	if ran != 3 {
		t.Fatal("callback ran although the commit failed")
	}
	c.AfterOwnerDurable(1, func() { ran++ })
	if ran != 3 {
		t.Fatal("callback ran on a poisoned chain")
	}
}

// TestAfterOwnerDurableSpansChains: an owner checkpointing under two
// names releases the callback only when BOTH chains settle, and an
// abort on either drops it.
func TestAfterOwnerDurableSpansChains(t *testing.T) {
	c := New(newFakeStore(), Options{Mode: ModeAsync})
	a, err := c.chainFor("ck-a", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.chainFor("ck-b", 1)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	c.mu.Lock()
	a.pending, b.pending = 1, 1
	c.mu.Unlock()
	c.AfterOwnerDurable(1, func() { ran++ })
	c.mu.Lock()
	c.settleLocked(a)
	c.mu.Unlock()
	if ran != 0 {
		t.Fatal("callback fired with the second chain still pending")
	}
	c.mu.Lock()
	c.settleLocked(b)
	c.mu.Unlock()
	if ran != 1 {
		t.Fatalf("callback did not fire after both chains settled (ran=%d)", ran)
	}

	// Abort on one chain drops a wait spanning both.
	c.mu.Lock()
	a.pending, b.pending = 1, 1
	c.mu.Unlock()
	c.AfterOwnerDurable(1, func() { ran++ })
	c.mu.Lock()
	c.settleLocked(a) // a settles cleanly: wait now rides on b alone
	b.aborted = true
	c.settleLocked(b)
	c.mu.Unlock()
	if ran != 1 {
		t.Fatal("callback survived an abort on one of its chains")
	}
}

// flakyDeleteStore is a fakeStore whose Delete fails for names in bad.
type flakyDeleteStore struct {
	*fakeStore
	bad map[string]bool
}

func (s *flakyDeleteStore) Delete(name string) error {
	if s.bad[name] {
		return fmt.Errorf("ckpt_test: delete %q refused", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, name)
	return nil
}

// TestPruneObservability: best-effort chain pruning stays best-effort,
// but failed deletes are counted and surfaced through OnPruneError
// instead of being swallowed.
func TestPruneObservability(t *testing.T) {
	store := &flakyDeleteStore{fakeStore: newFakeStore(), bad: map[string]bool{"ck@1": true}}
	var failures []string
	c := New(store, Options{
		Mode: ModeDelta,
		OnPruneError: func(name string, err error) {
			if err == nil {
				t.Errorf("OnPruneError(%q) with nil error", name)
			}
			failures = append(failures, name)
		},
	})
	ch, err := c.chainFor("ck", 1)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 4; seq++ {
		_ = store.Put(MemberName("ck", seq), []byte("member"))
		ch.members = append(ch.members, memberRec{name: MemberName("ck", seq), seq: seq})
	}

	// Publishing full image @3 makes @0..@2 dead; @1's delete fails.
	c.prune(ch, 3)

	st := c.Stats()
	if st.Pruned != 2 || st.PruneFailures != 1 {
		t.Fatalf("stats Pruned=%d PruneFailures=%d, want 2/1", st.Pruned, st.PruneFailures)
	}
	if len(failures) != 1 || failures[0] != "ck@1" {
		t.Fatalf("OnPruneError saw %v, want [ck@1]", failures)
	}
	if len(ch.members) != 1 || ch.members[0].name != "ck@3" {
		t.Fatalf("surviving members %v, want just ck@3", ch.members)
	}
	names, _ := store.List()
	want := []string{"ck@1", "ck@3"} // @1 leaked (delete refused), @3 is live
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("store holds %v, want %v", names, want)
	}

	// A second prune with nothing dead touches no counters.
	c.prune(ch, 3)
	if st2 := c.Stats(); st2.Pruned != 2 || st2.PruneFailures != 1 {
		t.Fatalf("idle prune moved counters: %+v", st2)
	}
}

// TestAdapterResolveChain: the generic 3-method adapter resolves chains
// through the linkage inside the images (no native store support).
func TestAdapterResolveChain(t *testing.T) {
	ds := migrate.AsDeltaStore(newFakeStore())
	if err := ds.PutDelta("x@1", "x@0", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if got, err := ds.Get("x@1"); err != nil || string(got) != "payload" {
		t.Fatalf("adapter PutDelta did not store: %q %v", got, err)
	}
}
